type suite_entry = {
  bench : Bench_suite.bench;
  netflow : Flow.outcome;
  ilp : (Rc_assign.Assign.t * Rc_assign.Assign.ilp_stats) option;
}

let log_progress log fmt =
  if log then Printf.eprintf (fmt ^^ "\n%!") else Printf.ifprintf stderr fmt

(* The suite arms (one per circuit: the network-flow run plus the
   optional ILP re-assignment that depends on it) are independent, so
   they fan out across the domain pool; results come back in bench
   order, and each run's trace events are tagged with its arm, so suite
   output is identical for any job count. *)
let run_suite ?plan ?(benches = Bench_suite.all) ?(with_ilp = true) ?(log = false) () =
  Rc_par.Pool.map_list
    (fun bench ->
      log_progress log "[suite] %s: network-flow flow..." bench.Bench_suite.bname;
      let arm = bench.Bench_suite.bname ^ "/netflow" in
      let netflow = Flow.run ?plan ~arm (Flow.default_config ~mode:Flow.Netflow bench) in
      let ilp =
        if with_ilp then begin
          log_progress log "[suite] %s: ILP assignment on the final state..."
            bench.Bench_suite.bname;
          let ffs, _ = Flow.ff_index netflow.Flow.netlist in
          let ff_positions = Array.map (fun c -> netflow.Flow.positions.(c)) ffs in
          Some
            (Rc_assign.Assign.by_ilp netflow.Flow.cfg.Flow.tech netflow.Flow.rings
               ~ff_positions ~targets:netflow.Flow.skews)
        end
        else None
      in
      { bench; netflow; ilp })
    benches

(* ---- Table I --------------------------------------------------------- *)

type table1_row = {
  t1_name : string;
  greedy_ig : float;
  greedy_cpu : float;
  bb_ig : float;
  bb_cpu : float;
  bb_optimal : bool;
}

let stage2_state bench =
  let tech = Rc_tech.Tech.default in
  let netlist = Bench_suite.netlist bench in
  let chip = Bench_suite.chip bench in
  let rings =
    Rc_rotary.Ring_array.create ~period:tech.Rc_tech.Tech.clock_period ~chip
      ~grid:bench.Bench_suite.ring_grid ()
  in
  let placed = Rc_place.Qplace.initial netlist ~chip in
  let sta = Rc_timing.Sta.analyze tech netlist ~positions:placed.Rc_place.Qplace.positions in
  let problem = Flow.skew_problem_of_sta tech netlist sta in
  let schedule =
    match Rc_skew.Max_slack.solve_graph problem with
    | Some s -> s
    | None -> failwith "Experiments: scheduling infeasible"
  in
  let ffs, _ = Flow.ff_index netlist in
  let ff_positions = Array.map (fun c -> placed.Rc_place.Qplace.positions.(c)) ffs in
  (tech, rings, ff_positions, schedule.Rc_skew.Max_slack.skews)

let table1 ?(benches = Bench_suite.all) ?(bb_seconds = 120.0) () =
  let rows =
    List.map
      (fun bench ->
        let tech, rings, ff_positions, targets = stage2_state bench in
        let _, greedy =
          Rc_assign.Assign.by_ilp tech rings ~ff_positions ~targets
        in
        let limits = { Rc_ilp.Branch_bound.max_nodes = 500_000; max_seconds = bb_seconds } in
        let _, bb =
          Rc_assign.Assign.by_branch_bound ~limits tech rings ~ff_positions ~targets
        in
        {
          t1_name = bench.Bench_suite.bname;
          greedy_ig = greedy.Rc_assign.Assign.integrality_gap;
          greedy_cpu = greedy.Rc_assign.Assign.elapsed_s;
          bb_ig = bb.Rc_assign.Assign.bb_gap;
          bb_cpu = bb.Rc_assign.Assign.bb_elapsed_s;
          bb_optimal = bb.Rc_assign.Assign.proved_optimal;
        })
      benches
  in
  let text =
    Report.render
      ~title:
        (Printf.sprintf
           "Table I: IG of greedy rounding and generic ILP solver (B&B, %.0f s budget)"
           bb_seconds)
      ~header:[ "Circuit"; "Greedy IG"; "Greedy CPU(s)"; "B&B IG"; "B&B CPU(s)"; "B&B status" ]
      (List.map
         (fun r ->
           [
             r.t1_name;
             Report.fmt_f ~dp:2 r.greedy_ig;
             Report.fmt_f ~dp:2 r.greedy_cpu;
             (if Float.is_nan r.bb_ig then "no soln" else Report.fmt_f ~dp:2 r.bb_ig);
             Report.fmt_f ~dp:2 r.bb_cpu;
             (if r.bb_optimal then "optimal"
              else if Float.is_nan r.bb_ig then "budget, none"
              else "budget, best");
           ])
         rows)
  in
  (rows, text)

(* ---- Table II -------------------------------------------------------- *)

type table2_row = {
  t2_name : string;
  cells : int;
  ffs : int;
  nets : int;
  pl : float;
  rings : int;
}

let table2 ?(benches = Bench_suite.all) () =
  let tech = Rc_tech.Tech.default in
  let rows =
    List.map
      (fun bench ->
        let netlist = Bench_suite.netlist bench in
        let chip = Bench_suite.chip bench in
        let placed = Rc_place.Qplace.initial netlist ~chip in
        let ffs = Rc_netlist.Netlist.flip_flops netlist in
        let sinks =
          Array.to_list
            (Array.map
               (fun c -> (placed.Rc_place.Qplace.positions.(c), tech.Rc_tech.Tech.c_ff))
               ffs)
        in
        let tree = Rc_ctree.Ctree.build tech ~sinks in
        let stats = Rc_ctree.Ctree.stats tree in
        {
          t2_name = bench.Bench_suite.bname;
          cells = Array.length (Rc_netlist.Netlist.logic_cells netlist);
          ffs = Array.length ffs;
          nets = Rc_netlist.Netlist.n_nets netlist;
          pl = stats.Rc_ctree.Ctree.avg_path_length;
          rings = bench.Bench_suite.ring_grid * bench.Bench_suite.ring_grid;
        })
      benches
  in
  let text =
    Report.render ~title:"Table II: test cases (PL = avg source-sink path in a zero-skew clock tree)"
      ~header:[ "Circuit"; "#Cells"; "#Flip-flops"; "#Nets"; "PL(um)"; "#Rings" ]
      (List.map
         (fun r ->
           [
             r.t2_name;
             string_of_int r.cells;
             string_of_int r.ffs;
             string_of_int r.nets;
             Report.fmt_f ~dp:0 r.pl;
             string_of_int r.rings;
           ])
         rows)
  in
  (rows, text)

(* ---- Tables III-VII -------------------------------------------------- *)

let table3 suite =
  Report.render
    ~title:"Table III: base case (stages 1-3, network flow), wirelength um, power mW"
    ~header:
      [ "Circuit"; "AFD"; "Tap. WL"; "Signal WL"; "Tot. WL"; "Clock Pwr"; "Signal Pwr"; "Tot. Pwr"; "CPU(s)" ]
    (List.map
       (fun e ->
         let b = e.netflow.Flow.base in
         [
           e.bench.Bench_suite.bname;
           Report.fmt_f b.Flow.afd;
           Report.fmt_f ~dp:0 b.Flow.tapping_wl;
           Report.fmt_f ~dp:0 b.Flow.signal_wl;
           Report.fmt_f ~dp:0 b.Flow.total_wl;
           Report.fmt_f ~dp:2 b.Flow.clock_mw;
           Report.fmt_f ~dp:2 b.Flow.signal_mw;
           Report.fmt_f ~dp:2 b.Flow.total_mw;
           Report.fmt_f ~dp:1 (e.netflow.Flow.cpu_flow_s +. e.netflow.Flow.cpu_placer_s);
         ])
       suite)

let table4 suite =
  Report.render
    ~title:"Table IV: network-flow optimization after stage 4-6 iterations (improvement vs base)"
    ~header:
      [ "Circuit"; "AFD"; "Tap. WL"; "Tap Imp"; "Signal WL"; "Sig Imp"; "Tot. WL"; "Tot Imp";
        "CPU flow(s)"; "CPU placer(s)" ]
    (List.map
       (fun e ->
         let b = e.netflow.Flow.base and f = e.netflow.Flow.final in
         [
           e.bench.Bench_suite.bname;
           Report.fmt_f f.Flow.afd;
           Report.fmt_f ~dp:0 f.Flow.tapping_wl;
           Report.fmt_pct (Report.pct_improvement ~from:b.Flow.tapping_wl ~to_:f.Flow.tapping_wl);
           Report.fmt_f ~dp:0 f.Flow.signal_wl;
           Report.fmt_pct (Report.pct_improvement ~from:b.Flow.signal_wl ~to_:f.Flow.signal_wl);
           Report.fmt_f ~dp:0 f.Flow.total_wl;
           Report.fmt_pct (Report.pct_improvement ~from:b.Flow.total_wl ~to_:f.Flow.total_wl);
           Report.fmt_f ~dp:1 e.netflow.Flow.cpu_flow_s;
           Report.fmt_f ~dp:1 e.netflow.Flow.cpu_placer_s;
         ])
       suite)

let table5 suite =
  Report.render
    ~title:
      "Table V: max load capacitance (fF), network flow vs ILP formulation on the final state (improvements vs network flow)"
    ~header:
      [ "Circuit"; "NF Cap"; "NF AFD"; "ILP AFD"; "AFD Imp"; "ILP Cap"; "Cap Imp"; "ILP Tot WL";
        "WL Imp"; "ILP CPU(s)" ]
    (List.filter_map
       (fun e ->
         Option.map
           (fun ((ilp : Rc_assign.Assign.t), (stats : Rc_assign.Assign.ilp_stats)) ->
             let nf = e.netflow.Flow.final in
             let n_ffs = Rc_netlist.Netlist.n_ffs e.netflow.Flow.netlist in
             let ilp_afd = ilp.Rc_assign.Assign.total_cost /. float_of_int (max n_ffs 1) in
             let ilp_tot = nf.Flow.signal_wl +. ilp.Rc_assign.Assign.total_cost in
             [
               e.bench.Bench_suite.bname;
               Report.fmt_f ~dp:1 nf.Flow.max_load_ff;
               Report.fmt_f nf.Flow.afd;
               Report.fmt_f ilp_afd;
               Report.fmt_pct (Report.pct_improvement ~from:nf.Flow.afd ~to_:ilp_afd);
               Report.fmt_f ~dp:1 ilp.Rc_assign.Assign.max_load;
               Report.fmt_pct
                 (Report.pct_improvement ~from:nf.Flow.max_load_ff
                    ~to_:ilp.Rc_assign.Assign.max_load);
               Report.fmt_f ~dp:0 ilp_tot;
               Report.fmt_pct (Report.pct_improvement ~from:nf.Flow.total_wl ~to_:ilp_tot);
               Report.fmt_f ~dp:2 stats.Rc_assign.Assign.elapsed_s;
             ])
           e.ilp)
       suite)

let table6 suite =
  Report.render
    ~title:"Table VI: power dissipation (mW) for network flow and ILP formulations vs base"
    ~header:
      [ "Circuit"; "NF Clock"; "Imp"; "NF Signal"; "Imp"; "NF Total"; "Imp"; "ILP Clock"; "Imp";
        "ILP Signal"; "Imp"; "ILP Total"; "Imp" ]
    (List.filter_map
       (fun e ->
         Option.map
           (fun ((ilp : Rc_assign.Assign.t), _) ->
             let tech = e.netflow.Flow.cfg.Flow.tech in
             let b = e.netflow.Flow.base in
             let nf = e.netflow.Flow.final in
             let n_ffs = Rc_netlist.Netlist.n_ffs e.netflow.Flow.netlist in
             let ilp_clock =
               Rc_power.Power.clock_power_mw tech
                 ~tapping_wirelength:ilp.Rc_assign.Assign.total_cost ~n_ffs
             in
             (* same placement, same signal net *)
             let ilp_signal = nf.Flow.signal_mw in
             let ilp_total = ilp_clock +. ilp_signal in
             let imp from to_ = Report.fmt_pct (Report.pct_improvement ~from ~to_) in
             [
               e.bench.Bench_suite.bname;
               Report.fmt_f ~dp:2 nf.Flow.clock_mw;
               imp b.Flow.clock_mw nf.Flow.clock_mw;
               Report.fmt_f ~dp:2 nf.Flow.signal_mw;
               imp b.Flow.signal_mw nf.Flow.signal_mw;
               Report.fmt_f ~dp:2 nf.Flow.total_mw;
               imp b.Flow.total_mw nf.Flow.total_mw;
               Report.fmt_f ~dp:2 ilp_clock;
               imp b.Flow.clock_mw ilp_clock;
               Report.fmt_f ~dp:2 ilp_signal;
               imp b.Flow.signal_mw ilp_signal;
               Report.fmt_f ~dp:2 ilp_total;
               imp b.Flow.total_mw ilp_total;
             ])
           e.ilp)
       suite)

let table7 suite =
  Report.render
    ~title:"Table VII: wirelength-capacitance product (um x pF; lower is better)"
    ~header:[ "Circuit"; "Network Flow WCP"; "ILP WCP"; "Imp" ]
    (List.filter_map
       (fun e ->
         Option.map
           (fun ((ilp : Rc_assign.Assign.t), _) ->
             let nf = e.netflow.Flow.final in
             let ilp_tot = nf.Flow.signal_wl +. ilp.Rc_assign.Assign.total_cost in
             let wcp wl cap = wl *. (cap /. 1000.0) in
             let nf_wcp = wcp nf.Flow.total_wl nf.Flow.max_load_ff in
             let ilp_wcp = wcp ilp_tot ilp.Rc_assign.Assign.max_load in
             [
               e.bench.Bench_suite.bname;
               Report.fmt_f ~dp:1 nf_wcp;
               Report.fmt_f ~dp:1 ilp_wcp;
               Report.fmt_pct (Report.pct_improvement ~from:nf_wcp ~to_:ilp_wcp);
             ])
           e.ilp)
       suite)

(* ---- Fig. 2 ---------------------------------------------------------- *)

let fig2 ?(samples = 81) () =
  let tech = Rc_tech.Tech.default in
  let ring =
    Rc_rotary.Ring.make ~id:0
      ~rect:(Rc_geom.Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:600.0 ~ymax:600.0)
      ~clockwise:true ~t_ref:0.0 ~period:1000.0
  in
  let ff = Rc_geom.Point.make 350.0 820.0 in
  let curve = Rc_rotary.Tapping.curve tech ring ~segment:0 ~ff ~samples in
  let tmin = List.fold_left (fun acc (_, t) -> Float.min acc t) infinity curve in
  let tmax = List.fold_left (fun acc (_, t) -> Float.max acc t) neg_infinity curve in
  (* the paper's four cases relative to the curve extremes *)
  let cases =
    [
      ("t_f1 (case 1: below curve, +kT shift)", tmin +. 50.0 -. 1000.0);
      ("t_f2 (case 2: two roots, shorter stub)", tmin +. ((tmax -. tmin) *. 0.35));
      ("t_f3 (case 3: near-tangent point)", tmin +. 0.5);
      ("t_f4 (case 4: above curve, snaking)", tmax +. 40.0);
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fig. 2: t_f(x) on the top segment for a flip-flop at (350, 820), ring 600 um\n\
       \  curve: %d samples, min %.2f ps at the kink region, max %.2f ps\n"
       samples tmin tmax);
  List.iter
    (fun (label, target) ->
      let tap =
        Rc_rotary.Tapping.solve_on_segment tech ring ~segment:0 ~conductor:Rc_rotary.Ring.Outer
          ~ff ~target
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-42s target %8.2f ps -> tap x=%6.1f um, stub %7.1f um%s%s\n" label
           target
           (tap.Rc_rotary.Tapping.point.Rc_geom.Point.x)
           tap.Rc_rotary.Tapping.wirelength
           (if tap.Rc_rotary.Tapping.snaked then ", snaked" else "")
           (if tap.Rc_rotary.Tapping.periods_shifted <> 0 then
              Printf.sprintf ", shifted %+dT" tap.Rc_rotary.Tapping.periods_shifted
            else "")))
    cases;
  Buffer.add_string buf "  x(um)    t_f(ps)\n";
  List.iteri
    (fun i (x, t) ->
      if i mod 10 = 0 then Buffer.add_string buf (Printf.sprintf "  %6.1f  %8.3f\n" x t))
    curve;
  (curve, Buffer.contents buf)

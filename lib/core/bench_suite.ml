type bench = {
  bname : string;
  gen : Rc_netlist.Generator.config;
  ring_grid : int;
}

let ring_pitch = 600.0

let chip_of_grid g =
  let side = float_of_int g *. ring_pitch in
  Rc_geom.Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:side ~ymax:side

let mk ~bname ~n_logic ~n_ffs ~n_nets ~grid ~seed =
  let io = max 8 (n_logic / 50) in
  {
    bname;
    ring_grid = grid;
    gen =
      {
        Rc_netlist.Generator.name = bname;
        n_logic;
        n_ffs;
        n_nets;
        n_inputs = io;
        n_outputs = io;
        depth = 10;
        max_fanin = 3;
        clusters = max 2 (n_ffs / 10);
        locality = 0.93;
        chip = chip_of_grid grid;
        seed;
      };
  }

(* Table II profiles: #Cells, #Flip-flops, #Nets, #Rings. *)
let s9234 = mk ~bname:"s9234" ~n_logic:1510 ~n_ffs:135 ~n_nets:1471 ~grid:4 ~seed:92340
let s5378 = mk ~bname:"s5378" ~n_logic:1112 ~n_ffs:164 ~n_nets:1063 ~grid:5 ~seed:53780
let s15850 = mk ~bname:"s15850" ~n_logic:3549 ~n_ffs:566 ~n_nets:3462 ~grid:6 ~seed:158500
let s38417 = mk ~bname:"s38417" ~n_logic:11651 ~n_ffs:1463 ~n_nets:11545 ~grid:7 ~seed:384170
let s35932 = mk ~bname:"s35932" ~n_logic:17005 ~n_ffs:1728 ~n_nets:16685 ~grid:7 ~seed:359320

let all = [ s9234; s5378; s15850; s38417; s35932 ]

let tiny = mk ~bname:"tiny" ~n_logic:220 ~n_ffs:32 ~n_nets:230 ~grid:2 ~seed:420

(* the --quick subset shared by the CLI and the bench harness *)
let quick = [ tiny; s9234 ]

let names = List.map (fun b -> b.bname) (tiny :: all)

let find name =
  List.find_opt (fun b -> b.bname = name) (tiny :: all)

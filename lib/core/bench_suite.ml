(* Circuit source: the paper's Table II profiles go through the flat
   levelized generator; the scaling suite goes through the hierarchical
   Rent's-rule generator, which streams million-cell circuits. *)
type source =
  | Flat of Rc_netlist.Generator.config
  | Hier of Rc_netlist.Generator.hier_config

type bench = {
  bname : string;
  gen : source;
  ring_grid : int;
}

let ring_pitch = 600.0

let chip_of_grid g =
  let side = float_of_int g *. ring_pitch in
  Rc_geom.Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:side ~ymax:side

let chip b =
  match b.gen with
  | Flat g -> g.Rc_netlist.Generator.chip
  | Hier h -> h.Rc_netlist.Generator.hchip

let netlist b =
  match b.gen with
  | Flat g -> Rc_netlist.Generator.generate g
  | Hier h -> Rc_netlist.Generator.generate_hier h

let profile b =
  match b.gen with
  | Flat g -> (g.Rc_netlist.Generator.n_logic, g.Rc_netlist.Generator.n_ffs)
  | Hier h -> Rc_netlist.Generator.hier_counts h

let mk ~bname ~n_logic ~n_ffs ~n_nets ~grid ~seed =
  let io = max 8 (n_logic / 50) in
  {
    bname;
    ring_grid = grid;
    gen =
      Flat
        {
          Rc_netlist.Generator.name = bname;
          n_logic;
          n_ffs;
          n_nets;
          n_inputs = io;
          n_outputs = io;
          depth = 10;
          max_fanin = 3;
          clusters = max 2 (n_ffs / 10);
          locality = 0.93;
          chip = chip_of_grid grid;
          seed;
        };
  }

(* Table II profiles: #Cells, #Flip-flops, #Nets, #Rings. *)
let s9234 = mk ~bname:"s9234" ~n_logic:1510 ~n_ffs:135 ~n_nets:1471 ~grid:4 ~seed:92340
let s5378 = mk ~bname:"s5378" ~n_logic:1112 ~n_ffs:164 ~n_nets:1063 ~grid:5 ~seed:53780
let s15850 = mk ~bname:"s15850" ~n_logic:3549 ~n_ffs:566 ~n_nets:3462 ~grid:6 ~seed:158500
let s38417 = mk ~bname:"s38417" ~n_logic:11651 ~n_ffs:1463 ~n_nets:11545 ~grid:7 ~seed:384170
let s35932 = mk ~bname:"s35932" ~n_logic:17005 ~n_ffs:1728 ~n_nets:16685 ~grid:7 ~seed:359320

let all = [ s9234; s5378; s15850; s38417; s35932 ]

let tiny = mk ~bname:"tiny" ~n_logic:220 ~n_ffs:32 ~n_nets:230 ~grid:2 ~seed:420

(* the --quick subset shared by the CLI and the bench harness *)
let quick = [ tiny; s9234 ]

(* Scaling suite: hierarchical circuits sized so the ring array keeps a
   paper-like FF-per-ring load (~35-50) as the cell count grows two
   orders of magnitude past s35932. *)
let mk_size ~bname ~n_cells ~grid ~seed =
  {
    bname;
    ring_grid = grid;
    gen =
      Hier
        (Rc_netlist.Generator.hier ~name:bname ~n_cells ~chip:(chip_of_grid grid)
           ~seed ());
  }

let size20k = mk_size ~bname:"size20k" ~n_cells:20_000 ~grid:8 ~seed:200001
let size100k = mk_size ~bname:"size100k" ~n_cells:100_000 ~grid:16 ~seed:1000001
let size1m = mk_size ~bname:"size1m" ~n_cells:1_000_000 ~grid:50 ~seed:10000001

let sizes = [ size20k; size100k; size1m ]

let registry = (tiny :: all) @ sizes

let names = List.map (fun b -> b.bname) registry

let find name = List.find_opt (fun b -> b.bname = name) registry

(** The integrated placement and skew optimization flow of Fig. 3,
    expressed as a composition of first-class stages (see
    {!Flow_stage}) over a typed context ({!Flow_ctx}):

    1. initial placement (quadratic placer, optionally + detailed
       refinement);
    2. max-slack skew scheduling on the placed design;
    3. flip-flop-to-ring assignment (network flow, or the min-max-load
       ILP heuristic);
    4. cost-driven skew scheduling at a prespecified slack, pulling each
       delay target toward the phase of its ring's closest point;
    5. cost evaluation (tapping + signal wirelength) — keeps the best
       state seen and decides convergence;
    6. incremental placement with a pseudo-net per flip-flop pulling it
       toward its tapping point — then back to 3, until converged or
       [max_iterations] passes ran.

    The variant filling each swappable slot (stage 1, 3, 4, 6) is chosen
    once in {!plan_of_config}; the driver itself contains no behavior
    branching.  Callers can swap any slot by passing a custom {!plan}.
    The "base case" of Table III is the state right after the first pass
    of stage 3. *)

type mode = Flow_ctx.mode = Netflow | Ilp

type config = Flow_ctx.config = {
  tech : Rc_tech.Tech.t;
  bench : Bench_suite.bench;
  mode : mode;
  candidates : int;  (** Nearest rings considered per flip-flop. *)
  capacity_slack : float;  (** Ring capacity headroom factor (network flow). *)
  max_iterations : int;  (** Stage 3-6 loop bound (the paper converges in ≤5). *)
  pseudo_weight : float;  (** Pseudo-net spring weight at iteration 1. *)
  pseudo_growth : float;  (** Multiplier per iteration. *)
  stability : float;  (** Incremental-placement stability spring. *)
  slack_fraction : float;  (** Prespecified M for stage 4, as a fraction of the stage-2 maximum slack. *)
  use_weighted_skew : bool;  (** Stage 4 default: exact weighted-sum scheduling (min-cost-flow dual) instead of min-max Δ. *)
  convergence_tol : float;  (** Stop when total cost improves less than this fraction. *)
  detail_passes : int;  (** Detailed-placement refinement passes after each placement (0 disables; flip-flops are frozen during incremental refinement). *)
  tapping_weight : float;  (** Stage-5 evaluates signal_wl + weight × tapping_wl (the paper's "weighted sum of total tapping cost and traditional placement cost"). *)
  incremental : bool;  (** Reuse STA cones, Eq. 1 candidate taps, and the assignment flow network across loop iterations ({!Flow_cache}). Exact-input caching: results are bit-identical either way. *)
}

val default_config : ?mode:mode -> Bench_suite.bench -> config
(** The paper's methodology: quadratic incremental placement with
    pseudo-net springs (no detailed placement). *)

val improved_config : ?mode:mode -> Bench_suite.bench -> config
(** Beyond-paper variant: detailed-placement refinement after global
    placement, and stage 6 replaced by direct flip-flop relocation plus
    flip-flop-frozen healing — cuts tapping wirelength much harder at no
    signal cost (see the bench's "beyond the paper" section). *)

type snapshot = Flow_ctx.snapshot = {
  iteration : int;
  afd : float;  (** Average flip-flop distance = tapping WL / #FFs, µm. *)
  tapping_wl : float;  (** Total tapping wirelength, µm. *)
  signal_wl : float;  (** Total signal HPWL, µm. *)
  total_wl : float;
  clock_mw : float;
  signal_mw : float;
  total_mw : float;
  max_load_ff : float;  (** Max ring load capacitance, fF. *)
}

type outcome = {
  cfg : config;
  netlist : Rc_netlist.Netlist.t;
  rings : Rc_rotary.Ring_array.t;
  base : snapshot;  (** After the first assignment (Table III). *)
  final : snapshot;  (** After the stage 3-6 iterations (Tables IV-VII). *)
  history : snapshot list;  (** One snapshot per iteration, oldest first. *)
  positions : Rc_geom.Point.t array;  (** Final legalized cell positions. *)
  assignment : Rc_assign.Assign.t;  (** Final flip-flop→ring assignment. *)
  skews : float array;  (** Final delay target per flip-flop index. *)
  slack : float;  (** Stage-2 maximum slack M*. *)
  stage4_slack : float;  (** The prespecified M used by stage 4. *)
  n_pairs : int;  (** Sequentially adjacent pairs seen by scheduling. *)
  ilp_stats : Rc_assign.Assign.ilp_stats option;  (** Set in [Ilp] mode. *)
  trace : Flow_trace.t;
      (** Structured per-stage trace: one event per stage execution with
          wall time, objective delta and the stage's decision note. *)
  cpu_flow_s : float;  (** Derived from [trace]: total over {!Flow_trace.Optimizer} stages, s. *)
  cpu_placer_s : float;  (** Derived from [trace]: total over {!Flow_trace.Placer} stages, s. *)
}

(** One stage value per slot of the six-stage flow.  [assign] is also
    re-run inside each iteration (after stage 4) and once more in the
    epilogue, exactly as in the paper's loop. *)
type plan = {
  place : Flow_stage.t;  (** stage 1 *)
  schedule : Flow_stage.t;  (** stage 2 *)
  assign : Flow_stage.t;  (** stage 3 *)
  cost_schedule : Flow_stage.t;  (** stage 4 *)
  evaluate : Flow_stage.t;  (** stage 5 *)
  replace : Flow_stage.t;  (** stage 6 *)
}

val plan_of_config : config -> plan
(** Select the stage variant for every swappable slot from the config:
    [detail_passes] picks the placement/replacement pair, [mode] the
    assignment engine, [use_weighted_skew] the stage-4 objective. *)

val stages_of_plan : plan -> Flow_stage.t list
(** The six stage values in flow order. *)

val describe_plan : plan -> string list
(** One line per stage: name, variant, declared inputs/outputs. *)

val run :
  ?plan:plan ->
  ?arm:string ->
  ?guard:(Flow_ctx.t -> unit) ->
  ?on_iteration:(Flow_ctx.t -> unit) ->
  config ->
  outcome
(** Execute the full flow on the benchmark's generated circuit, with
    [plan] (default [plan_of_config cfg]) filling the stage slots and
    [arm] (default [""]) tagging every trace event of the run.

    [guard] runs before every stage execution and may raise to abort
    the run — the cooperative cancellation point used by the serve
    scheduler for deadlines and client cancels.  [on_iteration] runs at
    every iteration boundary (after the prologue, and after each
    completed stage 4-6 iteration) with a consistent context — the
    checkpoint hook (see [Rc_serve.Checkpoint]).
    @raise Failure when skew scheduling is infeasible (the generated
    circuit violates the clock period — does not happen for the shipped
    benchmarks). *)

val run_on :
  ?plan:plan ->
  ?arm:string ->
  ?guard:(Flow_ctx.t -> unit) ->
  ?on_iteration:(Flow_ctx.t -> unit) ->
  config ->
  Rc_netlist.Netlist.t ->
  outcome
(** Execute the flow on a caller-supplied netlist (e.g. an imported
    ISCAS89 .bench circuit). The config's benchmark record still
    provides the die outline and ring grid. *)

val resume_on :
  ?plan:plan ->
  ?guard:(Flow_ctx.t -> unit) ->
  ?on_iteration:(Flow_ctx.t -> unit) ->
  Flow_ctx.t ->
  outcome
(** Continue a flow from an iteration-boundary context (as restored by
    [Rc_serve.Checkpoint.load]): runs the remaining stage 4-6
    iterations and the epilogue through exactly the code path of an
    uninterrupted {!run}, so the outcome is bit-identical to never
    having stopped.  The context's [cfg] provides the plan defaults. *)

(** {1 ECO edits}

    Incremental engineering-change-order primitives against a held-open
    flow context — the core of the online session subsystem
    ([Rc_serve.Session]).  An edit batch mutates the context state,
    re-runs {e only} the stages whose inputs changed, and reports the
    quality delta.  The stage schedule is a function of the edit kinds
    alone (never of cache state), and every incremental cache validates
    against exact inputs, so replaying an edit sequence onto a freshly
    built context is bit-identical to the live incremental session —
    [Rc_serve.Checkpoint.digest_of_ctx] agrees at every step. *)

type edit =
  | Move_cells of (int * Rc_geom.Point.t) list
      (** [(cell id, new position)] writes, applied in order and clamped
          to the chip outline. *)
  | Shift_block of Rc_geom.Rect.t * float * float
      (** [(block, dx, dy)]: every cell inside the rectangle moves by
          the offset. *)
  | Retarget_ff of int * int
      (** [(flip-flop index, ring id)]: reassign one flip-flop's tap to
          the named ring (applied after the batch's stage re-runs, so it
          patches the final assignment). *)
  | Set_clock_period of float
      (** Retune the rotary rings: rebuilds the ring array, re-derives
          the skew baseline, and drops every cache keyed against the old
          geometry. *)

type edit_report = {
  er_before : snapshot;  (** State the batch started from. *)
  er_after : snapshot;  (** State after the batch's stage re-runs. *)
  er_stages : string list;  (** Names of the stages the batch re-ran. *)
  er_cells_moved : int;  (** Distinct cells repositioned by the batch. *)
  er_slack : float;  (** Stage-2 maximum slack after the batch. *)
}

val apply_edits :
  ?plan:plan ->
  ?guard:(Flow_ctx.t -> unit) ->
  Flow_ctx.t ->
  edit list ->
  Flow_ctx.t * edit_report
(** Apply one edit batch: position/period mutations first, then the
    dirty stages (a period change replays stages 2-3, any placement
    change replays one stage 4-3 loop body), then retarget patches,
    then a snapshot push.  [Flow_ctx.iteration] counts applied batches.
    [guard] is the cooperative-cancellation hook, as in {!run}.
    @raise Invalid_argument on an unplaced context, out-of-range cell,
    flip-flop or ring ids, or a non-positive clock period. *)

val context_of_outcome : ?arm:string -> ?warm:bool -> outcome -> Flow_ctx.t
(** An edit-session context over a finished flow: the outcome's shipped
    state becomes the baseline, [Flow_ctx.iteration] restarts at 0 (it
    counts applied edit batches), and fresh caches are attached —
    [warm] (default true) primes the incremental STA session from the
    restored placement.  Contexts built from equal outcomes are
    digest-equal. *)

val ff_index : Rc_netlist.Netlist.t -> int array * (int -> int)
(** [(ffs, index_of_cell)]: the flip-flop cell ids and the inverse
    mapping used to order skew/assignment arrays. *)

val skew_problem_of_sta :
  Rc_tech.Tech.t -> Rc_netlist.Netlist.t -> Rc_timing.Sta.t -> Rc_skew.Skew_problem.t
(** Bridge STA adjacencies (cell ids) to the dense flip-flop indexing of
    the skew formulations. *)

val anchors_of_assignment :
  Rc_tech.Tech.t ->
  Rc_rotary.Ring_array.t ->
  Rc_assign.Assign.t ->
  ff_positions:Rc_geom.Point.t array ->
  skews:float array ->
  Rc_skew.Cost_driven.anchor array
(** Build the stage-4 anchors: per flip-flop, the delay [t_c] at the
    closest point of its assigned ring (conductor and period shift
    chosen nearest to the current target) and the stub delay [t_ci] of
    the shortest stub, weighted by the stub length l_i. *)

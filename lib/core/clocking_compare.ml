type row = {
  scheme : string;
  clock_wire : float;
  clock_cap : float;
  clock_power : float;
  skew_spread : float;
  extra : string;
}

let run ?(model = Rc_variation.Variation.default_model) (o : Flow.outcome) =
  let tech = o.Flow.cfg.Flow.tech in
  let ffs, _ = Flow.ff_index o.Flow.netlist in
  let n_ffs = Array.length ffs in
  let chip = Bench_suite.chip o.Flow.cfg.Flow.bench in
  let sink_list =
    Array.to_list (Array.map (fun c -> (o.Flow.positions.(c), tech.Rc_tech.Tech.c_ff)) ffs)
  in
  let pin_cap = float_of_int n_ffs *. tech.Rc_tech.Tech.c_ff in
  let power cap = Rc_power.Power.dynamic_mw tech ~alpha:1.0 ~cap_ff:cap in
  (* conventional zero-skew tree *)
  let ctree = Rc_ctree.Ctree.build tech ~sinks:sink_list in
  let tstats = Rc_ctree.Ctree.stats ctree in
  let tree_cap =
    (tstats.Rc_ctree.Ctree.total_wirelength *. tech.Rc_tech.Tech.c_wire) +. pin_cap
  in
  let tree_var = Rc_variation.Variation.tree_skew model ctree in
  let tree_row =
    {
      scheme = "zero-skew tree";
      clock_wire = tstats.Rc_ctree.Ctree.total_wirelength;
      clock_cap = tree_cap;
      clock_power = power tree_cap;
      skew_spread = tree_var.Rc_variation.Variation.mean_spread;
      extra = Printf.sprintf "PL %.0f um" tstats.Rc_ctree.Ctree.avg_path_length;
    }
  in
  (* clock mesh at a realistic ~100 µm pitch — meshes buy their low skew
     with a dense grid, which is the overhead the paper criticizes *)
  let mesh_grid =
    max o.Flow.cfg.Flow.bench.Bench_suite.ring_grid
      (int_of_float (Float.ceil (Rc_geom.Rect.width chip /. 100.0)))
  in
  let mesh = Rc_ctree.Mesh.create ~chip ~grid:mesh_grid in
  let mstats = Rc_ctree.Mesh.stats tech mesh ~sinks:sink_list in
  let mesh_sinks =
    Array.map
      (fun c ->
        {
          Rc_variation.Variation.ring_delay = 0.0;
          stub_delay =
            Rc_rotary.Tapping.stub_delay tech
              (Rc_ctree.Mesh.stub_length mesh o.Flow.positions.(c));
        })
      ffs
  in
  let mesh_var = Rc_variation.Variation.rotary_skew model mesh_sinks in
  let mesh_row =
    {
      scheme = "clock mesh";
      clock_wire = mstats.Rc_ctree.Mesh.mesh_wl +. mstats.Rc_ctree.Mesh.stub_wl;
      clock_cap = mstats.Rc_ctree.Mesh.total_cap;
      clock_power = mstats.Rc_ctree.Mesh.clock_power_mw;
      skew_spread = mesh_var.Rc_variation.Variation.mean_spread;
      extra = Printf.sprintf "max stub %.0f um" mstats.Rc_ctree.Mesh.max_stub;
    }
  in
  (* rotary: switched load = tapping stubs + pins; ring metal recirculates *)
  let tap_wl = o.Flow.final.Flow.tapping_wl in
  let rot_cap = (tap_wl *. tech.Rc_tech.Tech.c_wire) +. pin_cap in
  let vs = Variation_study.run ~model o in
  let ring_metal =
    Array.fold_left
      (fun acc r -> acc +. (2.0 *. Rc_rotary.Ring.perimeter r))
      0.0
      (Rc_rotary.Ring_array.rings o.Flow.rings)
  in
  let rotary_row =
    {
      scheme = "rotary (this flow)";
      clock_wire = tap_wl;
      clock_cap = rot_cap;
      clock_power = power rot_cap;
      skew_spread = vs.Variation_study.rotary.Rc_variation.Variation.mean_spread;
      extra = Printf.sprintf "+%.0f um ring metal (recirculating)" ring_metal;
    }
  in
  let rows = [ tree_row; mesh_row; rotary_row ] in
  let text =
    Report.render
      ~title:
        (Printf.sprintf "Clocking-scheme comparison (%s): Section I motivation quantified"
           o.Flow.cfg.Flow.bench.Bench_suite.bname)
      ~header:
        [ "Scheme"; "Clock wire (um)"; "Switched cap (fF)"; "Power (mW)"; "Skew spread (ps)"; "Note" ]
      (List.map
         (fun r ->
           [
             r.scheme;
             Report.fmt_f ~dp:0 r.clock_wire;
             Report.fmt_f ~dp:0 r.clock_cap;
             Report.fmt_f ~dp:2 r.clock_power;
             Report.fmt_f ~dp:2 r.skew_spread;
             r.extra;
           ])
         rows)
  in
  (rows, text)

(* The paper-table report: run the flow per circuit, collect per-circuit
   solver-metric deltas, and assemble a Rc_obs.Report document with the
   paper's headline tables (skew-scheduling slack, tapping wirelength /
   ring load, Table-I-style ILP vs greedy rounding) plus the solver
   metrics behind them.

   Determinism: circuits run sequentially here (the kernels inside each
   flow still fan out over the domain pool), so per-circuit metric
   attribution is exact and — because every reported metric is an
   integer counter/histogram merge or a value computed by the
   deterministic solvers — the whole document is bit-identical for any
   job count.  Wall-clock columns are only emitted with [~timings:true]
   (the default); golden tests use [~timings:false]. *)

module Metrics = Rc_obs.Metrics
module R = Rc_obs.Report

type circuit_report = {
  bench : Bench_suite.bench;
  outcome : Flow.outcome;  (* full six-stage flow, netflow assignment *)
  ilp_result : Rc_assign.Assign.t;  (* min-max-load ILP on the final placement *)
  ilp_stats : Rc_assign.Assign.ilp_stats;
  metrics : Metrics.snapshot;  (* metric delta attributed to this circuit *)
}

let collect ?(benches = Bench_suite.all) () =
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled was_enabled)
    (fun () ->
      List.map
        (fun bench ->
          let before = Metrics.snapshot () in
          let cfg = Flow.default_config ~mode:Flow.Netflow bench in
          let outcome = Flow.run ~arm:(bench.Bench_suite.bname ^ "/report") cfg in
          (* Table-I comparison: the min-max-load ILP heuristic on the
             same final placement and schedule the netflow flow produced *)
          let ffs, _ = Flow.ff_index outcome.Flow.netlist in
          let ff_positions = Array.map (fun c -> outcome.Flow.positions.(c)) ffs in
          let ilp_result, ilp_stats =
            Rc_assign.Assign.by_ilp ~candidates:cfg.Flow.candidates cfg.Flow.tech
              outcome.Flow.rings ~ff_positions ~targets:outcome.Flow.skews
          in
          let after = Metrics.snapshot () in
          { bench; outcome; ilp_result; ilp_stats; metrics = Metrics.diff ~before ~after })
        benches)

(* ---- metric lookup helpers ------------------------------------------- *)

let metric_int snap name =
  match List.assoc_opt name snap with
  | Some (Metrics.Count n) -> n
  | Some (Metrics.Hist { n; _ }) -> n
  | _ -> 0

let hist_mean snap name =
  match List.assoc_opt name snap with
  | Some (Metrics.Hist { n; sum; _ }) when n > 0 ->
      float_of_int sum /. float_of_int n
  | _ -> nan

let pct_reduction ~base ~final =
  if Float.abs base < 1e-300 then nan else (base -. final) /. base *. 100.0

(* ---- the document ----------------------------------------------------- *)

let circuits_section reports =
  let rows =
    List.map
      (fun r ->
        let o = r.outcome in
        let n_logic, n_ffs = Bench_suite.profile r.bench in
        [
          R.Str r.bench.Bench_suite.bname;
          R.Int n_logic;
          R.Int n_ffs;
          R.Int (r.bench.Bench_suite.ring_grid * r.bench.Bench_suite.ring_grid);
          R.Int o.Flow.n_pairs;
          R.Float (o.Flow.slack, 1);
          R.Float (o.Flow.stage4_slack, 1);
        ])
      reports
  in
  R.section "Circuits and skew scheduling"
    ~prose:
      "Table II circuit profile plus the scheduling outcome: the number of \
       sequentially adjacent pairs seen by the skew LPs, the stage-2 maximum \
       slack M* (ps), and the prespecified slack used by stage-4 cost-driven \
       rescheduling."
    ~tables:
      [
        {
          R.title = "";
          columns =
            [ "Circuit"; "Cells"; "FFs"; "Rings"; "Adj pairs"; "M* (ps)"; "Stage-4 M (ps)" ];
          rows;
        };
      ]

let tapping_section reports =
  let rows =
    List.map
      (fun r ->
        let o = r.outcome in
        let base = o.Flow.base and final = o.Flow.final in
        [
          R.Str r.bench.Bench_suite.bname;
          R.Float (base.Flow.tapping_wl, 0);
          R.Float (final.Flow.tapping_wl, 0);
          R.Pct
            (pct_reduction ~base:base.Flow.tapping_wl ~final:final.Flow.tapping_wl);
          R.Pct
            (-.pct_reduction ~base:base.Flow.signal_wl ~final:final.Flow.signal_wl);
          R.Float (final.Flow.afd, 2);
          R.Float (final.Flow.max_load_ff, 1);
        ])
      reports
  in
  R.section "Tapping wirelength and ring load"
    ~prose:
      "Stage 3-6 iterations versus the base case (the state right after the \
       first assignment): total tapping wirelength (um) and its reduction, the \
       signal-wirelength impact paid for it, the final average flip-flop \
       distance (um), and the maximum ring load (fF) under the network-flow \
       assignment."
    ~tables:
      [
        {
          R.title = "";
          columns =
            [
              "Circuit";
              "Base tap WL";
              "Final tap WL";
              "Tap WL cut";
              "Signal WL impact";
              "AFD (um)";
              "NF max load (fF)";
            ];
          rows;
        };
      ]

let ilp_section ~timings reports =
  let rows =
    List.map
      (fun r ->
        let s = r.ilp_stats in
        let nf_load = r.outcome.Flow.final.Flow.max_load_ff in
        let base =
          [
            R.Str r.bench.Bench_suite.bname;
            R.Float (s.Rc_assign.Assign.lp_optimum, 2);
            R.Float (s.Rc_assign.Assign.ilp_objective, 2);
            R.Float (s.Rc_assign.Assign.integrality_gap, 3);
            R.Int s.Rc_assign.Assign.lp_iterations;
            R.Float (nf_load, 1);
            R.Pct (pct_reduction ~base:nf_load ~final:r.ilp_result.Rc_assign.Assign.max_load);
          ]
        in
        if timings then base @ [ R.Float (s.Rc_assign.Assign.elapsed_s, 2) ] else base)
      reports
  in
  let columns =
    [
      "Circuit";
      "OPT(LP) (fF)";
      "SOLN(ILP) (fF)";
      "IG";
      "LP pivots";
      "NF max load (fF)";
      "Cap cut vs NF";
    ]
    @ (if timings then [ "CPU (s)" ] else [])
  in
  R.section "ILP vs greedy rounding (Table I)"
    ~prose:
      "The Section VI min-max-load formulation solved by LP relaxation + Fig. 5 \
       greedy rounding, on each circuit's final placement: the LP lower bound, \
       the rounded objective, the integrality gap IG = SOLN/OPT (Eq. 4), the \
       simplex pivot count of the relaxation, and the maximum-load reduction \
       against the network-flow assignment of the same placement."
    ~tables:[ { R.title = ""; columns; rows } ]

let solver_metrics_section reports =
  let rows =
    List.map
      (fun r ->
        let m = r.metrics in
        [
          R.Str r.bench.Bench_suite.bname;
          R.Int (metric_int m "sparse.cg.solves");
          R.Int (metric_int m "sparse.cg.iterations");
          R.Int (metric_int m "lp.simplex.pivots");
          R.Int (metric_int m "netflow.mcmf.augmentations");
          R.Int (metric_int m "assign.candidate_solves");
          R.Int (metric_int m "timing.sta.pairs");
          R.Float (hist_mean m "timing.sta.cone_sinks", 1);
        ])
      reports
  in
  let case_rows =
    List.map
      (fun r ->
        let m = r.metrics in
        let c1 = metric_int m "assign.tap.case1_period_shift"
        and c2 = metric_int m "assign.tap.case2_two_root"
        and c3 = metric_int m "assign.tap.case3_tangent"
        and c4 = metric_int m "assign.tap.case4_snaked" in
        let total = c1 + c2 + c3 + c4 in
        [
          R.Str r.bench.Bench_suite.bname;
          R.Int c1;
          R.Int c2;
          R.Int c3;
          R.Int c4;
          R.Pct
            (if total = 0 then nan
             else float_of_int c4 /. float_of_int total *. 100.0);
        ])
      reports
  in
  R.section "Solver metrics"
    ~prose:
      "Work done inside the solvers while producing the numbers above, from \
       the metrics registry (cumulative over all flow iterations of each \
       circuit, including the Table-I ILP solve). The tapping-case split \
       classifies every tap of every assignment built for the circuit by its \
       Eq. 1 solution case: case 1 period shift, case 2 two roots, case 3 \
       near-tangent, case 4 stub snaking."
    ~tables:
      [
        {
          R.title = "Solver work";
          columns =
            [
              "Circuit";
              "CG solves";
              "CG iters";
              "LP pivots";
              "NF augmentations";
              "Eq.1 solves";
              "STA pairs";
              "Mean cone sinks";
            ];
          rows;
        };
        {
          R.title = "Tapping-case distribution (Eq. 1)";
          columns =
            [ "Circuit"; "Case 1 shift"; "Case 2 two-root"; "Case 3 tangent"; "Case 4 snaked"; "Snaked" ];
          rows = case_rows;
        };
      ]
    ~data:
      [
        ( "metrics",
          Rc_util.Json.Obj
            (List.map
               (fun r -> (r.bench.Bench_suite.bname, Metrics.to_json r.metrics))
               reports) );
      ]

let build ?(timings = true) reports =
  let reports =
    if timings then reports
    else List.map (fun r -> { r with metrics = Metrics.strip_timers r.metrics }) reports
  in
  {
    R.title = "Rotary clocking: paper-table report";
    intro =
      "Generated by `rotary_cli report` from the integrated placement and skew \
       optimization flow (Venkataraman, Hu, Liu — DATE 2006). One full \
       six-stage netflow-mode flow per circuit, plus the Section VI min-max \
       ILP on each final placement. All numbers are deterministic and \
       identical for any --jobs value.";
    sections =
      [
        circuits_section reports;
        tapping_section reports;
        ilp_section ~timings reports;
        solver_metrics_section reports;
      ];
  }

let schema_version = 1

let json_of doc =
  let module J = Rc_util.Json in
  match R.to_json doc with
  | J.Obj fields -> J.Obj (("schema_version", J.Int schema_version) :: fields)
  | other -> other

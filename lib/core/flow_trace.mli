(** Structured per-stage trace of a flow run.

    One {!event} is recorded per stage execution.  The legacy
    [cpu_flow_s]/[cpu_placer_s] split of {!Flow.outcome} is derived from
    the trace by summing per {!category}, so the per-stage breakdown and
    the reported totals cannot disagree. *)

type category =
  | Placer  (** initial + incremental placement (the old [cpu_placer_s]) *)
  | Optimizer  (** scheduling, assignment, evaluation (the old [cpu_flow_s]) *)

type event = {
  arm : string;
      (** experiment arm (e.g. ["s9234/netflow"]) the run belongs to;
          [""] for runs outside a suite *)
  stage : string;  (** canonical stage name, one of the six *)
  variant : string;  (** implementation plugged into that slot *)
  category : category;
  iteration : int;  (** 0 = prologue, 1..k = loop, k+1 = epilogue *)
  wall_s : float;
  cost_delta : float option;
      (** change of the stage-5 objective across the stage; [None] while
          the objective is undefined (no assignment yet) *)
  note : string;  (** stage-reported decision, e.g. convergence verdict *)
  metrics : Rc_obs.Metrics.snapshot;
      (** solver-metric delta across the stage; [[]] when the registry
          is disabled.  Exact in sequential runs; approximate inside
          parallel suite arms, where concurrent stages share the global
          registry. *)
}

type t

val empty : t
val record : t -> event -> t
val length : t -> int

val events : t -> event list
(** Chronological. *)

val total_wall : ?category:category -> t -> float
(** Sum of wall times, optionally restricted to one category. *)

val events_of_arm : t -> string -> event list
(** Chronological events carrying one arm tag. *)

val arms : t -> string list
(** Distinct arm tags, in first-appearance order. *)

val iterations : t -> int list
(** Distinct iteration numbers, ascending. *)

val stages_of_iteration : t -> int -> event list
(** Chronological events of one iteration. *)

val stage_names : t -> string list
(** Distinct canonical stage names, in first-appearance order. *)

val render : ?title:string -> t -> string
(** Per-event table: one row per stage execution, chronological. *)

val summary : ?title:string -> t -> string
(** Aggregate table: one row per (stage, variant) with call count,
    total/mean wall time, and summed objective movement. *)

(** First-class flow stages and the driver primitives that execute them.

    A stage is a named, categorized [Flow_ctx.t -> Flow_ctx.t] function
    with declared inputs/outputs (the context fields it consumes and
    produces).  {!exec} times every execution, measures the stage-5
    objective delta across it, and appends a {!Flow_trace.event}. *)

type t = {
  name : string;  (** canonical stage name, shared by all variants of a slot *)
  variant : string;  (** which implementation fills the slot *)
  category : Flow_trace.category;
  inputs : string list;  (** {!Flow_ctx} fields consumed *)
  outputs : string list;  (** {!Flow_ctx} fields produced or updated *)
  advance : bool;  (** only prepares the next iteration; skipped when the loop ends *)
  run : Flow_ctx.t -> Flow_ctx.t;
}

val make :
  name:string ->
  variant:string ->
  category:Flow_trace.category ->
  ?inputs:string list ->
  ?outputs:string list ->
  ?advance:bool ->
  (Flow_ctx.t -> Flow_ctx.t) ->
  t

val describe : t -> string
(** ["name [variant] inputs -> outputs"], for --trace and docs. *)

val exec : t -> Flow_ctx.t -> Flow_ctx.t
(** Run one stage: time it, compute the objective delta across it, and
    record the trace event (consuming the stage's note). *)

val run_sequence : ?guard:(Flow_ctx.t -> unit) -> t list -> Flow_ctx.t -> Flow_ctx.t
(** [exec] each stage in order.  [guard] runs before every stage
    execution; raising from it aborts the run — the flow's cooperative
    cancellation point (deadlines, client cancels). *)

val run_loop :
  ?guard:(Flow_ctx.t -> unit) ->
  ?on_iteration:(Flow_ctx.t -> unit) ->
  max_iterations:int ->
  t list ->
  Flow_ctx.t ->
  Flow_ctx.t
(** The stage 4-6 iteration scheme: repeat the stage list, incrementing
    [Flow_ctx.iteration], until the evaluation stage reports convergence
    or [max_iterations] is reached; once convergence is flagged the rest
    of the iteration is skipped, and [advance]-only stages (stage 6) are
    skipped on the final iteration because no later iteration will
    consume their output.  [guard] is the per-stage cancellation hook
    (see {!run_sequence}); [on_iteration] runs after each completed
    iteration with the consistent boundary context — the checkpoint
    hook: resuming a saved boundary context via {!Flow.resume_on}
    replays the remaining iterations exactly as an uninterrupted run. *)

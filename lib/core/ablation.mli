(** Ablation studies for the design choices DESIGN.md calls out. Each
    returns a rendered table; all run on small circuits so the whole set
    completes in seconds. *)

val pseudo_weight_schedule : ?bench:Bench_suite.bench -> unit -> string
(** Flow outcomes across pseudo-net spring weights and growth factors:
    the knob that trades signal-wirelength penalty for tapping-cost
    reduction (stage 6). *)

val candidate_rings : ?bench:Bench_suite.bench -> unit -> string
(** Effect of the per-flip-flop candidate-ring count on the assignment
    quality and runtime (the Section V network pruning). *)

val skew_objectives : ?bench:Bench_suite.bench -> unit -> string
(** Stage-4 objective: min-max Δ (graph) vs weighted-sum (LP) — final
    tapping cost and CPU. Runs two flows that differ only in the
    [cost_schedule] slot of the stage plan. *)

val incremental_engines : ?bench:Bench_suite.bench -> unit -> string
(** Stage-6 slot: pseudo-net quadratic re-solve vs direct
    relocate-and-heal, with the per-category CPU split from the trace. *)

val scheduling_engines : ?bench:Bench_suite.bench -> unit -> string
(** Max-slack scheduling: graph binary search vs LP simplex — same
    optimum, different CPU (the reason the flow defaults to the graph
    engine). *)

val complementary_phase : ?bench:Bench_suite.bench -> unit -> string
(** Tapping cost with and without the complementary-phase (polarity
    flipping) trick of Section III. *)

val all : ?bench:Bench_suite.bench -> unit -> string
(** Every ablation, concatenated. *)

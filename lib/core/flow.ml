(* The paper's Fig. 3 six-stage flow, expressed as a composition of
   first-class stages (Flow_stage) over a typed context (Flow_ctx):

     1. initial placement            (qplace | qplace+detail)
     2. max-slack skew scheduling
     3. flip-flop-to-ring assignment (netflow | ilp)
     4. cost-driven skew scheduling  (min-max graph | weighted MCF)
     5. evaluation (best-state keeping + convergence decision)
     6. pseudo-net incremental placement (qplace | relocate+heal)

   Stages 1-3 run once, stages 4-6 iterate until the evaluation stage
   reports convergence or the iteration budget is exhausted, then the
   driver re-runs the assignment on the final placement and enforces the
   stage-5 invariant: the shipped state is the minimum-cost snapshot
   ever evaluated.  Which variant fills each swappable slot is chosen
   once, up front, in `plan_of_config` — the driver loop itself contains
   no behavior branching, and callers (Ablation, Experiments) may swap
   any slot by passing a custom plan.  Every stage execution is recorded
   in a structured Flow_trace carried in the outcome. *)

type mode = Flow_ctx.mode = Netflow | Ilp

type config = Flow_ctx.config = {
  tech : Rc_tech.Tech.t;
  bench : Bench_suite.bench;
  mode : mode;
  candidates : int;
  capacity_slack : float;
  max_iterations : int;
  pseudo_weight : float;
  pseudo_growth : float;
  stability : float;
  slack_fraction : float;
  use_weighted_skew : bool;
  convergence_tol : float;
  detail_passes : int;
  tapping_weight : float;
  incremental : bool;
}

let default_config ?(mode = Netflow) bench =
  {
    tech = Rc_tech.Tech.default;
    bench;
    mode;
    candidates = 6;
    capacity_slack = 3.0;
    max_iterations = 5;
    pseudo_weight = 0.08;
    pseudo_growth = 1.8;
    stability = 0.004;
    slack_fraction = 0.5;
    use_weighted_skew = false;
    convergence_tol = 0.002;
    detail_passes = 0;
    tapping_weight = 8.0;
    incremental = true;
  }

(* Beyond-paper configuration: detailed-placement refinement after the
   global placement, and a direct relocate-and-heal stage 6 instead of
   pseudo-net springs in a quadratic re-solve. *)
let improved_config ?mode bench =
  { (default_config ?mode bench) with detail_passes = 3; pseudo_weight = 0.35 }

type snapshot = Flow_ctx.snapshot = {
  iteration : int;
  afd : float;
  tapping_wl : float;
  signal_wl : float;
  total_wl : float;
  clock_mw : float;
  signal_mw : float;
  total_mw : float;
  max_load_ff : float;
}

type outcome = {
  cfg : config;
  netlist : Rc_netlist.Netlist.t;
  rings : Rc_rotary.Ring_array.t;
  base : snapshot;
  final : snapshot;
  history : snapshot list;
  positions : Rc_geom.Point.t array;
  assignment : Rc_assign.Assign.t;
  skews : float array;
  slack : float;
  stage4_slack : float;
  n_pairs : int;
  ilp_stats : Rc_assign.Assign.ilp_stats option;
  trace : Flow_trace.t;
  cpu_flow_s : float;  (* derived: trace total over Optimizer stages *)
  cpu_placer_s : float;  (* derived: trace total over Placer stages *)
}

(* context helpers re-exported for Experiments/Ablation/bench kernels *)
let ff_index = Flow_ctx.ff_index
let skew_problem_of_sta = Flow_ctx.skew_problem_of_sta
let anchors_of_assignment = Flow_ctx.anchors_of_assignment

(* ---- the stage plan --------------------------------------------------- *)

(* one stage value per slot of the six-stage flow; swap any slot to run
   a variant flow without touching the driver *)
type plan = {
  place : Flow_stage.t;  (* stage 1 *)
  schedule : Flow_stage.t;  (* stage 2 *)
  assign : Flow_stage.t;  (* stage 3 (also re-run per iteration and at the end) *)
  cost_schedule : Flow_stage.t;  (* stage 4 *)
  evaluate : Flow_stage.t;  (* stage 5 *)
  replace : Flow_stage.t;  (* stage 6 *)
}

let plan_of_config cfg =
  {
    place = Flow_stages.placement_of cfg;
    schedule = Flow_stages.max_slack_scheduling;
    assign = Flow_stages.assignment_of cfg.mode;
    cost_schedule = Flow_stages.cost_driven_of cfg;
    evaluate = Flow_stages.evaluation;
    replace = Flow_stages.incremental_of cfg;
  }

let stages_of_plan p =
  [ p.place; p.schedule; p.assign; p.cost_schedule; p.evaluate; p.replace ]

let describe_plan p = List.map Flow_stage.describe (stages_of_plan p)

(* ---- the driver -------------------------------------------------------- *)

let outcome_of (ctx : Flow_ctx.t) =
  let history = List.rev ctx.Flow_ctx.history in
  let base = List.hd history in
  let final = List.hd ctx.Flow_ctx.history in
  {
    cfg = ctx.Flow_ctx.cfg;
    netlist = ctx.Flow_ctx.netlist;
    rings = ctx.Flow_ctx.rings;
    base;
    final;
    history;
    positions = ctx.Flow_ctx.positions;
    assignment = Flow_ctx.assignment_exn ctx;
    skews = ctx.Flow_ctx.skews;
    slack = ctx.Flow_ctx.slack;
    stage4_slack = ctx.Flow_ctx.stage4_slack;
    n_pairs = ctx.Flow_ctx.n_pairs;
    ilp_stats = ctx.Flow_ctx.ilp_stats;
    trace = ctx.Flow_ctx.trace;
    cpu_flow_s = Flow_trace.total_wall ~category:Flow_trace.Optimizer ctx.Flow_ctx.trace;
    cpu_placer_s = Flow_trace.total_wall ~category:Flow_trace.Placer ctx.Flow_ctx.trace;
  }

(* stage 4-6 iterations plus the epilogue, shared by a fresh run and a
   checkpoint resume: from an iteration-boundary context both paths are
   literally the same code, which is what makes resume bit-identical *)
let finish ?plan ?guard ?on_iteration (ctx : Flow_ctx.t) =
  let cfg = ctx.Flow_ctx.cfg in
  let plan = match plan with Some p -> p | None -> plan_of_config cfg in
  (* one batch region across the whole stage 4-6 loop and epilogue:
     every parallel kernel inside (CG solve pairs, candidate-tap
     batches, STA cone sweeps) publishes a sub-job to the same captive
     workers instead of waking the pool per call *)
  Rc_par.Pool.region (fun () ->
      let ctx =
        Flow_stage.run_loop ?guard ?on_iteration ~max_iterations:cfg.max_iterations
          [ plan.cost_schedule; plan.assign; plan.evaluate; plan.replace ]
          ctx
      in
      (* epilogue: re-assign on the final placement, then enforce the stage-5
         best-state-keeping invariant (ship the minimum-cost snapshot) *)
      let ctx = { ctx with Flow_ctx.iteration = ctx.Flow_ctx.iteration + 1 } in
      let ctx = Flow_stage.run_sequence ?guard [ plan.assign ] ctx in
      let ctx = Flow_stage.exec Flow_stages.finalize ctx in
      outcome_of ctx)

let run_on ?plan ?arm ?guard ?on_iteration cfg netlist =
  let plan = match plan with Some p -> p | None -> plan_of_config cfg in
  let ctx = Flow_ctx.create ?arm cfg netlist in
  (* prologue (iteration 0): place, schedule, assign, evaluate the base —
     one batch region, like the iteration loop in [finish] *)
  let ctx =
    Rc_par.Pool.region (fun () ->
        Flow_stage.run_sequence ?guard
          [ plan.place; plan.schedule; plan.assign; plan.evaluate ]
          ctx)
  in
  (* the prologue's end is iteration boundary 0: checkpointable too *)
  (match on_iteration with Some f -> f ctx | None -> ());
  finish ~plan ?guard ?on_iteration ctx

let resume_on ?plan ?guard ?on_iteration ctx = finish ?plan ?guard ?on_iteration ctx

let run ?plan ?arm ?guard ?on_iteration cfg =
  run_on ?plan ?arm ?guard ?on_iteration cfg
    (Bench_suite.netlist cfg.bench)

(* ---- the ECO edit engine ----------------------------------------------- *)

(* One engineering-change-order primitive against a held-open flow.
   Every edit is deterministic data: the stages re-run for a batch are
   a function of the edit *kinds* alone (never of cache state), so an
   edit sequence replayed onto a freshly built context runs exactly the
   same stage schedule — and because every incremental cache validates
   against exact inputs, the replay is bit-identical to the live
   session.  That is the subsystem's correctness anchor. *)
type edit =
  | Move_cells of (int * Rc_geom.Point.t) list
      (* (cell id, new position); positions are clamped to the chip *)
  | Shift_block of Rc_geom.Rect.t * float * float
      (* every cell inside the rectangle moves by (dx, dy) *)
  | Retarget_ff of int * int
      (* (flip-flop index, ring id): reassign one flip-flop's tap *)
  | Set_clock_period of float
      (* retune the rotary rings; rebuilds the ring array *)

type edit_report = {
  er_before : snapshot;  (* state the batch started from *)
  er_after : snapshot;  (* state after re-running the dirty stages *)
  er_stages : string list;  (* names of the stages the batch re-ran *)
  er_cells_moved : int;  (* distinct cells repositioned by the batch *)
  er_slack : float;  (* stage-2 maximum slack after the batch *)
}

let apply_edits ?plan ?guard (ctx : Flow_ctx.t) (edits : edit list) =
  let cfg = ctx.Flow_ctx.cfg in
  if Array.length ctx.Flow_ctx.positions = 0 then
    invalid_arg "Flow.apply_edits: context has no placement";
  let before =
    match ctx.Flow_ctx.history with
    | snap :: _ -> snap
    | [] -> Flow_ctx.take_snapshot ctx ~iteration:ctx.Flow_ctx.iteration
  in
  (* 1. fold the raw state mutations: position writes in edit order,
     the last period edit wins, retargets are queued for after the
     stage re-runs (so they patch the batch's *final* assignment) *)
  let positions = Array.copy ctx.Flow_ctx.positions in
  let n = Array.length positions in
  let moved = ref [] in
  let positions_edited = ref false in
  let new_period = ref None in
  let retargets = ref [] in
  let clamp p = Rc_geom.Rect.clamp_point ctx.Flow_ctx.chip p in
  List.iter
    (fun e ->
      match e with
      | Move_cells ms ->
          positions_edited := true;
          List.iter
            (fun (c, p) ->
              if c < 0 || c >= n then invalid_arg "Flow.apply_edits: cell out of range";
              positions.(c) <- clamp p;
              moved := c :: !moved)
            ms
      | Shift_block (r, dx, dy) ->
          positions_edited := true;
          for c = 0 to n - 1 do
            if Rc_geom.Rect.contains r positions.(c) then begin
              positions.(c) <-
                clamp
                  {
                    Rc_geom.Point.x = positions.(c).Rc_geom.Point.x +. dx;
                    y = positions.(c).Rc_geom.Point.y +. dy;
                  };
              moved := c :: !moved
            end
          done
      | Retarget_ff (ff, ring) -> retargets := (ff, ring) :: !retargets
      | Set_clock_period p ->
          if not (Float.is_finite p) || p <= 0.0 then
            invalid_arg "Flow.apply_edits: clock period must be positive";
          new_period := Some p)
    edits;
  let retargets = List.rev !retargets in
  let period_changed =
    match !new_period with
    | Some p -> p <> cfg.tech.Rc_tech.Tech.clock_period
    | None -> false
  in
  (* 2. a period change moves the anchors every cache is implicitly
     keyed against (ring geometry, timing constraints): rebuild the
     rings from the new tech and drop the caches wholesale *)
  let cfg, rings =
    if period_changed then begin
      let p = Option.get !new_period in
      let tech = { cfg.tech with Rc_tech.Tech.clock_period = p } in
      Flow_cache.reset ctx.Flow_ctx.caches;
      ( { cfg with tech },
        Rc_rotary.Ring_array.create ~period:p ~chip:ctx.Flow_ctx.chip
          ~grid:cfg.bench.Bench_suite.ring_grid () )
    end
    else (cfg, ctx.Flow_ctx.rings)
  in
  (* 3. targeted invalidation: mark the moved cones dirty explicitly
     (position compare would catch them too — this also covers a cell
     "moved" onto its own coordinates) and drop the retargeted
     flip-flops' cached taps.  Forced recomputation is bit-identical,
     so these are work hints, not correctness hooks. *)
  if cfg.incremental && not period_changed then begin
    if !moved <> [] then
      Rc_timing.Sta.invalidate_cells
        (Flow_cache.sta_session ctx.Flow_ctx.caches cfg.tech ctx.Flow_ctx.netlist)
        !moved;
    List.iter
      (fun (ff, _) ->
        Rc_assign.Assign.cache_invalidate (Flow_cache.assign_cache ctx.Flow_ctx.caches) ~ff)
      retargets
  end;
  (* 4. re-run only the stages whose inputs changed — chosen from the
     edit kinds alone.  A period change re-derives the skew baseline
     and re-assigns against the new rings before the cost-driven pass;
     a placement change replays one loop body (stage 4 then 3), the
     paper's own reconvergence step. *)
  let plan = match plan with Some p -> p | None -> plan_of_config cfg in
  let stages =
    (if period_changed then [ plan.schedule; plan.assign ] else [])
    @
    if !positions_edited || period_changed then [ plan.cost_schedule; plan.assign ]
    else []
  in
  let ctx = { ctx with Flow_ctx.cfg; rings; positions } in
  let ctx =
    if stages = [] then ctx
    else Rc_par.Pool.region (fun () -> Flow_stage.run_sequence ?guard stages ctx)
  in
  (* 5. retarget patches, applied to the batch's final assignment in
     edit order *)
  let ctx =
    List.fold_left
      (fun (ctx : Flow_ctx.t) (ff, ring) ->
        if ff < 0 || ff >= Array.length ctx.Flow_ctx.skews then
          invalid_arg "Flow.apply_edits: flip-flop out of range";
        let a =
          Rc_assign.Assign.retarget ctx.Flow_ctx.cfg.tech ctx.Flow_ctx.rings
            (Flow_ctx.assignment_exn ctx)
            ~ff_positions:(Flow_ctx.ff_positions ctx)
            ~ff ~ring ~target:ctx.Flow_ctx.skews.(ff)
        in
        { ctx with Flow_ctx.assignment = Some a })
      ctx retargets
  in
  (* 6. snapshot the result and advance the session's batch counter *)
  let it = ctx.Flow_ctx.iteration + 1 in
  let after = Flow_ctx.take_snapshot ctx ~iteration:it in
  let ctx = { ctx with Flow_ctx.iteration = it; history = after :: ctx.Flow_ctx.history } in
  let report =
    {
      er_before = before;
      er_after = after;
      er_stages = List.map (fun (s : Flow_stage.t) -> s.Flow_stage.name) stages;
      er_cells_moved = List.length (List.sort_uniq compare !moved);
      er_slack = ctx.Flow_ctx.slack;
    }
  in
  (ctx, report)

(* An edit-session context over a finished flow: the outcome's shipped
   state (the minimum-cost snapshot) becomes the session baseline, the
   iteration counter restarts at 0 (it counts applied edit batches from
   here), and the caches are fresh — [warm] primes the incremental STA
   session from the restored placement so the first edit does an
   incremental, not cold, timing update.  Two contexts built from
   equal outcomes are digest-equal by construction. *)
let context_of_outcome ?(arm = "") ?(warm = true) (o : outcome) =
  let ctx = Flow_ctx.create ~arm o.cfg o.netlist in
  let ctx =
    {
      ctx with
      Flow_ctx.positions = o.positions;
      skews = o.skews;
      assignment = Some o.assignment;
      slack = o.slack;
      stage4_slack = o.stage4_slack;
      n_pairs = o.n_pairs;
      ilp_stats = o.ilp_stats;
      iteration = 0;
      history = [ o.final ];
    }
  in
  if warm && o.cfg.incremental then
    ignore
      (Rc_timing.Sta.analyze_incremental
         (Flow_cache.sta_session ctx.Flow_ctx.caches o.cfg.tech o.netlist)
         ~positions:o.positions);
  ctx

(* Typed context threaded through the six-stage flow.

   A stage is a function ctx -> ctx (see Flow_stage); everything the
   stages read or write lives here: the evolving placement, schedule and
   assignment, the snapshot history, the best state seen so far (the
   stage-5 best-state-keeping invariant), convergence bookkeeping, and
   the structured per-stage trace. *)

open Rc_geom
open Rc_rotary

type mode = Netflow | Ilp

type config = {
  tech : Rc_tech.Tech.t;
  bench : Bench_suite.bench;
  mode : mode;
  candidates : int;
  capacity_slack : float;
  max_iterations : int;
  pseudo_weight : float;
  pseudo_growth : float;
  stability : float;
  slack_fraction : float;
  use_weighted_skew : bool;
  convergence_tol : float;
  detail_passes : int;
  tapping_weight : float;
  incremental : bool;
}

type snapshot = {
  iteration : int;
  afd : float;
  tapping_wl : float;
  signal_wl : float;
  total_wl : float;
  clock_mw : float;
  signal_mw : float;
  total_mw : float;
  max_load_ff : float;
}

(* best state seen by stage 5, restored when the flow ships *)
type best = {
  best_cost : float;
  best_positions : Point.t array;
  best_skews : float array;
  best_assignment : Rc_assign.Assign.t;
}

type t = {
  cfg : config;
  arm : string;  (* experiment-arm tag stamped onto trace events; "" outside a suite *)
  netlist : Rc_netlist.Netlist.t;
  chip : Rect.t;
  rings : Ring_array.t;
  ffs : int array;  (* cell index of flip-flop i *)
  positions : Point.t array;  (* per cell; empty until stage 1 *)
  skews : float array;  (* per flip-flop; empty until stage 2 *)
  assignment : Rc_assign.Assign.t option;  (* None until stage 3 *)
  slack : float;  (* stage-2 maximum slack M* *)
  stage4_slack : float;  (* prespecified slack for cost-driven scheduling *)
  n_pairs : int;
  ilp_stats : Rc_assign.Assign.ilp_stats option;
  iteration : int;  (* 0 = prologue; incremented by the loop driver *)
  history : snapshot list;  (* newest first *)
  best : best option;
  current_cost : float;  (* convergence reference (monotone min) *)
  converged : bool;
  trace : Flow_trace.t;
  note : string;  (* set by a stage, moved into the trace by the driver *)
  obs : Rc_obs.Metrics.t;
      (* the solver-metrics registry the stage driver snapshots around
         each stage; the process-global one — stages record into it
         implicitly through the instrumented solver layers *)
  caches : Flow_cache.t;
      (* cross-iteration recomputation state (incremental STA session,
         tap cache, warm assignment solver, dirty-set tracker); consulted
         by stages only when [cfg.incremental] is set *)
}

let ff_index netlist =
  let ffs = Rc_netlist.Netlist.flip_flops netlist in
  let index = Array.make (Rc_netlist.Netlist.n_cells netlist) (-1) in
  Array.iteri (fun i c -> index.(c) <- i) ffs;
  (ffs, fun c -> index.(c))

let create ?(arm = "") cfg netlist =
  let chip = Bench_suite.chip cfg.bench in
  let rings =
    Ring_array.create ~period:cfg.tech.Rc_tech.Tech.clock_period ~chip
      ~grid:cfg.bench.Bench_suite.ring_grid ()
  in
  let ffs, _ = ff_index netlist in
  {
    cfg;
    arm;
    netlist;
    chip;
    rings;
    ffs;
    positions = [||];
    skews = [||];
    assignment = None;
    slack = nan;
    stage4_slack = 0.0;
    n_pairs = 0;
    ilp_stats = None;
    iteration = 0;
    history = [];
    best = None;
    current_cost = infinity;
    converged = false;
    trace = Flow_trace.empty;
    note = "";
    obs = Rc_obs.Metrics.global;
    caches = Flow_cache.create ();
  }

let assignment_exn ctx =
  match ctx.assignment with
  | Some a -> a
  | None -> invalid_arg "Flow_ctx.assignment_exn: no assignment yet (stage 3 has not run)"

let best_exn ctx =
  match ctx.best with
  | Some b -> b
  | None -> invalid_arg "Flow_ctx.best_exn: no snapshot evaluated yet (stage 5 has not run)"

let ff_positions ctx = Array.map (fun c -> ctx.positions.(c)) ctx.ffs

let skew_problem_of_sta tech netlist sta =
  let _, idx = ff_index netlist in
  let pairs =
    List.map
      (fun (a : Rc_timing.Sta.adjacency) ->
        {
          Rc_skew.Skew_problem.i = idx a.Rc_timing.Sta.src_ff;
          j = idx a.Rc_timing.Sta.dst_ff;
          d_max = a.Rc_timing.Sta.d_max;
          d_min = a.Rc_timing.Sta.d_min;
        })
      (Rc_timing.Sta.adjacencies sta)
  in
  Rc_skew.Skew_problem.make
    ~n:(Rc_netlist.Netlist.n_ffs netlist)
    ~pairs ~period:tech.Rc_tech.Tech.clock_period ~t_setup:tech.Rc_tech.Tech.t_setup
    ~t_hold:tech.Rc_tech.Tech.t_hold

let anchors_of_assignment tech rings (assignment : Rc_assign.Assign.t) ~ff_positions ~skews =
  let period = Ring_array.period rings in
  Array.mapi
    (fun i pos ->
      let ring = Ring_array.ring rings assignment.Rc_assign.Assign.ring_of_ff.(i) in
      let l_i = Ring.closest_boundary_distance ring pos in
      let arc = Ring.arc_of_point ring pos in
      let t_ci = Tapping.stub_delay tech l_i in
      (* pick the conductor and whole-period shift that land t_c nearest
         to the current target *)
      let representative conductor =
        let tc = Ring.delay_at ring ~arc ~conductor in
        let k = Float.round ((skews.(i) -. tc) /. period) in
        tc +. (k *. period)
      in
      let t_outer = representative Ring.Outer and t_inner = representative Ring.Inner in
      let t_c =
        if Float.abs (skews.(i) -. t_outer) <= Float.abs (skews.(i) -. t_inner) then t_outer
        else t_inner
      in
      { Rc_skew.Cost_driven.t_c; t_ci; weight = l_i })
    ff_positions

let take_snapshot ctx ~iteration =
  let cfg = ctx.cfg in
  let assignment = assignment_exn ctx in
  let tech = cfg.tech in
  let n_ffs = Rc_netlist.Netlist.n_ffs ctx.netlist in
  let tapping_wl = assignment.Rc_assign.Assign.total_cost in
  let signal_wl = Rc_place.Wirelength.total ctx.netlist ctx.positions in
  let clock_mw = Rc_power.Power.clock_power_mw tech ~tapping_wirelength:tapping_wl ~n_ffs in
  let signal_mw = Rc_power.Power.signal_power_mw tech ctx.netlist ctx.positions in
  {
    iteration;
    afd = (if n_ffs = 0 then 0.0 else tapping_wl /. float_of_int n_ffs);
    tapping_wl;
    signal_wl;
    total_wl = tapping_wl +. signal_wl;
    clock_mw;
    signal_mw;
    total_mw = clock_mw +. signal_mw;
    max_load_ff = assignment.Rc_assign.Assign.max_load;
  }

(* stage-5 objective: weighted sum of tapping and signal wirelength *)
let cost_of cfg snap = snap.signal_wl +. (cfg.tapping_weight *. snap.tapping_wl)

(* same objective read directly off the context, for stage-boundary
   deltas in the trace; undefined until placement + assignment exist *)
let current_objective ctx =
  match ctx.assignment with
  | None -> None
  | Some a ->
      if Array.length ctx.positions = 0 then None
      else
        Some
          (Rc_place.Wirelength.total ctx.netlist ctx.positions
          +. (ctx.cfg.tapping_weight *. a.Rc_assign.Assign.total_cost))

(* the stage-5 best-state-keeping rule: keep the cheapest snapshot's
   state; ties keep the earlier one *)
let remember ctx snap =
  let cost = cost_of ctx.cfg snap in
  match ctx.best with
  | Some b when b.best_cost <= cost -> ctx
  | _ ->
      {
        ctx with
        best =
          Some
            {
              best_cost = cost;
              best_positions = ctx.positions;
              best_skews = ctx.skews;
              best_assignment = assignment_exn ctx;
            };
      }

let pseudo_weight_schedule ?(bench = Bench_suite.tiny) () =
  let rows =
    List.map
      (fun (w, g) ->
        let cfg = { (Flow.default_config bench) with Flow.pseudo_weight = w; pseudo_growth = g } in
        let o = Flow.run cfg in
        let b = o.Flow.base and f = o.Flow.final in
        [
          Printf.sprintf "w=%.2f growth=%.1f" w g;
          Report.fmt_f f.Flow.afd;
          Report.fmt_pct (Report.pct_improvement ~from:b.Flow.tapping_wl ~to_:f.Flow.tapping_wl);
          Report.fmt_pct (-.Report.pct_improvement ~from:b.Flow.signal_wl ~to_:f.Flow.signal_wl);
        ])
      [ (0.05, 1.0); (0.35, 1.0); (0.35, 1.8); (1.0, 1.8); (3.0, 1.8) ]
  in
  Report.render
    ~title:
      (Printf.sprintf "Ablation: pseudo-net weight schedule (%s)" bench.Bench_suite.bname)
    ~header:[ "Schedule"; "final AFD"; "tapping reduction"; "signal WL penalty" ]
    rows

let stage2_state bench =
  let tech = Rc_tech.Tech.default in
  let netlist = Bench_suite.netlist bench in
  let chip = Bench_suite.chip bench in
  let rings =
    Rc_rotary.Ring_array.create ~period:tech.Rc_tech.Tech.clock_period ~chip
      ~grid:bench.Bench_suite.ring_grid ()
  in
  let placed = Rc_place.Qplace.initial netlist ~chip in
  let sta = Rc_timing.Sta.analyze tech netlist ~positions:placed.Rc_place.Qplace.positions in
  let problem = Flow.skew_problem_of_sta tech netlist sta in
  let schedule = Option.get (Rc_skew.Max_slack.solve_graph problem) in
  let ffs, _ = Flow.ff_index netlist in
  let ff_positions = Array.map (fun c -> placed.Rc_place.Qplace.positions.(c)) ffs in
  (tech, rings, problem, ff_positions, schedule.Rc_skew.Max_slack.skews)

let candidate_rings ?(bench = Bench_suite.s9234) () =
  let tech, rings, _, ff_positions, targets = stage2_state bench in
  let rows =
    List.map
      (fun k ->
        let (a : Rc_assign.Assign.t), cpu =
          Rc_util.Timer.time (fun () ->
              Rc_assign.Assign.by_netflow ~candidates:k tech rings ~ff_positions ~targets)
        in
        [
          string_of_int k;
          Report.fmt_f ~dp:0 a.Rc_assign.Assign.total_cost;
          Report.fmt_f ~dp:1 a.Rc_assign.Assign.max_load;
          Report.fmt_f ~dp:3 cpu;
        ])
      [ 1; 2; 4; 6; 9; 16 ]
  in
  Report.render
    ~title:(Printf.sprintf "Ablation: candidate rings per flip-flop (%s)" bench.Bench_suite.bname)
    ~header:[ "k nearest"; "tapping WL"; "max load fF"; "CPU(s)" ]
    rows

let skew_objectives ?(bench = Bench_suite.tiny) () =
  (* swap the stage-4 slot of the plan rather than re-branching on a
     behavior flag: both runs share every other stage implementation *)
  let run stage =
    let cfg = Flow.default_config bench in
    let plan = { (Flow.plan_of_config cfg) with Flow.cost_schedule = stage } in
    let o, cpu = Rc_util.Timer.time (fun () -> Flow.run ~plan cfg) in
    (o, cpu)
  in
  let minmax, t1 = run Flow_stages.cost_driven_minmax in
  let weighted, t2 = run Flow_stages.cost_driven_weighted in
  Report.render
    ~title:(Printf.sprintf "Ablation: stage-4 objective (%s)" bench.Bench_suite.bname)
    ~header:[ "Objective"; "final tapping WL"; "final AFD"; "signal WL"; "CPU(s)" ]
    [
      [
        "min-max Delta (graph)";
        Report.fmt_f ~dp:0 minmax.Flow.final.Flow.tapping_wl;
        Report.fmt_f minmax.Flow.final.Flow.afd;
        Report.fmt_f ~dp:0 minmax.Flow.final.Flow.signal_wl;
        Report.fmt_f ~dp:2 t1;
      ];
      [
        "weighted-sum (MCF dual)";
        Report.fmt_f ~dp:0 weighted.Flow.final.Flow.tapping_wl;
        Report.fmt_f weighted.Flow.final.Flow.afd;
        Report.fmt_f ~dp:0 weighted.Flow.final.Flow.signal_wl;
        Report.fmt_f ~dp:2 t2;
      ];
    ]

let incremental_engines ?(bench = Bench_suite.tiny) () =
  (* swap only the stage-6 slot: pseudo-net quadratic re-solve vs direct
     relocate-and-heal, under the same placement/assignment/scheduling
     stages; the trace supplies the per-category CPU split *)
  let run stage =
    let cfg = Flow.improved_config bench in
    let plan = { (Flow.plan_of_config cfg) with Flow.replace = stage } in
    Flow.run ~plan cfg
  in
  let rows =
    List.map
      (fun stage ->
        let o = run stage in
        [
          stage.Flow_stage.variant;
          Report.fmt_f ~dp:0 o.Flow.final.Flow.tapping_wl;
          Report.fmt_pct
            (Report.pct_improvement ~from:o.Flow.base.Flow.tapping_wl
               ~to_:o.Flow.final.Flow.tapping_wl);
          Report.fmt_f ~dp:0 o.Flow.final.Flow.signal_wl;
          Report.fmt_f ~dp:2 o.Flow.cpu_placer_s;
          Report.fmt_f ~dp:2 o.Flow.cpu_flow_s;
        ])
      [ Flow_stages.incremental_qplace; Flow_stages.incremental_relocate ]
  in
  Report.render
    ~title:(Printf.sprintf "Ablation: stage-6 slot (%s)" bench.Bench_suite.bname)
    ~header:
      [ "Stage-6 variant"; "final tap WL"; "tap reduction"; "signal WL"; "CPU placer(s)";
        "CPU flow(s)" ]
    rows

let scheduling_engines ?(bench = Bench_suite.tiny) () =
  let _, _, problem, _, _ = stage2_state bench in
  let g, tg = Rc_util.Timer.time (fun () -> Rc_skew.Max_slack.solve_graph problem) in
  let l, tl = Rc_util.Timer.time (fun () -> Rc_skew.Max_slack.solve_lp problem) in
  let slack = function Some r -> r.Rc_skew.Max_slack.slack | None -> nan in
  Report.render
    ~title:
      (Printf.sprintf "Ablation: max-slack engine (%s, %d pairs)" bench.Bench_suite.bname
         (List.length problem.Rc_skew.Skew_problem.pairs))
    ~header:[ "Engine"; "slack M (ps)"; "CPU(s)" ]
    [
      [ "graph (SPFA binary search)"; Report.fmt_f ~dp:3 (slack g); Report.fmt_f ~dp:3 tg ];
      [ "LP (revised simplex)"; Report.fmt_f ~dp:3 (slack l); Report.fmt_f ~dp:3 tl ];
    ]

let complementary_phase ?(bench = Bench_suite.s9234) () =
  let tech, rings, _, ff_positions, targets = stage2_state bench in
  let cost use_complement =
    let acc = ref 0.0 in
    Array.iteri
      (fun i ff ->
        let ring =
          Rc_rotary.Ring_array.ring rings (Rc_rotary.Ring_array.containing_ring rings ff)
        in
        let tap = Rc_rotary.Tapping.solve ~use_complement tech ring ~ff ~target:targets.(i) in
        acc := !acc +. tap.Rc_rotary.Tapping.wirelength)
      ff_positions;
    !acc
  in
  let with_c = cost true and without_c = cost false in
  Report.render
    ~title:
      (Printf.sprintf "Ablation: complementary-phase tapping (%s, containing ring per FF)"
         bench.Bench_suite.bname)
    ~header:[ "Mode"; "total tapping WL"; "vs both conductors" ]
    [
      [ "both conductors (polarity flip)"; Report.fmt_f ~dp:0 with_c; "--" ];
      [
        "outer conductor only";
        Report.fmt_f ~dp:0 without_c;
        Report.fmt_pct (-.Report.pct_improvement ~from:with_c ~to_:without_c);
      ];
    ]

let all ?bench () =
  String.concat "\n\n"
    [
      pseudo_weight_schedule ?bench ();
      candidate_rings ();
      skew_objectives ?bench ();
      incremental_engines ?bench ();
      scheduling_engines ();
      complementary_phase ();
    ]

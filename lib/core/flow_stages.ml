(* The six stage implementations of the paper's Fig. 3 flow, as
   pluggable Flow_stage values.  Slots with more than one implementation
   (placement, assignment, cost-driven scheduling, incremental
   placement) expose each variant as its own stage value plus an
   `*_of` selector that picks the config's default; Ablation and
   Experiments swap variants by building a custom Flow.plan instead of
   branching on behavior flags inside the driver loop. *)

open Rc_rotary

let site = 10.0 (* legalization site pitch, um *)

(* STA entry point shared by stages 2 and 4: the incremental session
   when the config enables reuse (bit-identical to the cold path — the
   session compares exact positions), the plain analyze otherwise. *)
let run_sta ctx =
  let cfg = ctx.Flow_ctx.cfg in
  let tech = cfg.Flow_ctx.tech in
  if cfg.Flow_ctx.incremental then
    let session = Flow_cache.sta_session ctx.Flow_ctx.caches tech ctx.Flow_ctx.netlist in
    Rc_timing.Sta.analyze_incremental session ~positions:ctx.Flow_ctx.positions
  else Rc_timing.Sta.analyze tech ctx.Flow_ctx.netlist ~positions:ctx.Flow_ctx.positions

(* ---- stage 1: initial placement -------------------------------------- *)

let placement_global =
  Flow_stage.make ~name:"placement" ~variant:"qplace" ~category:Flow_trace.Placer
    ~inputs:[ "netlist"; "chip" ] ~outputs:[ "positions" ]
    (fun ctx ->
      let global = Rc_place.Qplace.initial ctx.Flow_ctx.netlist ~chip:ctx.Flow_ctx.chip in
      { ctx with Flow_ctx.positions = global.Rc_place.Qplace.positions })

let placement_detailed =
  Flow_stage.make ~name:"placement" ~variant:"qplace+detail" ~category:Flow_trace.Placer
    ~inputs:[ "netlist"; "chip" ] ~outputs:[ "positions" ]
    (fun ctx ->
      let netlist = ctx.Flow_ctx.netlist and chip = ctx.Flow_ctx.chip in
      let global = Rc_place.Qplace.initial netlist ~chip in
      let refined =
        fst
          (Rc_place.Detail.refine ~max_passes:ctx.Flow_ctx.cfg.Flow_ctx.detail_passes netlist
             ~chip ~site global.Rc_place.Qplace.positions)
      in
      { ctx with Flow_ctx.positions = refined })

let placement_of (cfg : Flow_ctx.config) =
  if cfg.Flow_ctx.detail_passes > 0 then placement_detailed else placement_global

(* ---- stage 2: max-slack skew scheduling ------------------------------- *)

let max_slack_scheduling =
  Flow_stage.make ~name:"max-slack scheduling" ~variant:"graph" ~category:Flow_trace.Optimizer
    ~inputs:[ "positions" ] ~outputs:[ "skews"; "slack"; "stage4_slack"; "n_pairs" ]
    (fun ctx ->
      let cfg = ctx.Flow_ctx.cfg in
      let tech = cfg.Flow_ctx.tech in
      let sta = run_sta ctx in
      let problem = Flow_ctx.skew_problem_of_sta tech ctx.Flow_ctx.netlist sta in
      match Rc_skew.Max_slack.solve_graph problem with
      | None -> failwith "Flow.run: max-slack scheduling infeasible"
      | Some schedule ->
          let slack_star = schedule.Rc_skew.Max_slack.slack in
          let stage4_slack =
            if Float.is_finite slack_star then
              cfg.Flow_ctx.slack_fraction *. Float.max slack_star 0.0
            else 0.0
          in
          let n_pairs = List.length problem.Rc_skew.Skew_problem.pairs in
          {
            ctx with
            Flow_ctx.skews = schedule.Rc_skew.Max_slack.skews;
            slack = slack_star;
            stage4_slack;
            n_pairs;
            note = Printf.sprintf "M* %.2f ps over %d pairs" slack_star n_pairs;
          })

(* ---- stage 3: flip-flop-to-ring assignment ---------------------------- *)

let assignment_netflow =
  Flow_stage.make ~name:"assignment" ~variant:"netflow" ~category:Flow_trace.Optimizer
    ~inputs:[ "positions"; "skews"; "rings" ] ~outputs:[ "assignment" ]
    (fun ctx ->
      let cfg = ctx.Flow_ctx.cfg in
      let capacities =
        Ring_array.default_capacities ctx.Flow_ctx.rings
          ~n_ffs:(Array.length ctx.Flow_ctx.ffs)
          ~slack:cfg.Flow_ctx.capacity_slack
      in
      let cache =
        if cfg.Flow_ctx.incremental then Some (Flow_cache.assign_cache ctx.Flow_ctx.caches)
        else None
      in
      let a =
        Rc_assign.Assign.by_netflow ~candidates:cfg.Flow_ctx.candidates ~capacities ?cache
          cfg.Flow_ctx.tech ctx.Flow_ctx.rings
          ~ff_positions:(Flow_ctx.ff_positions ctx) ~targets:ctx.Flow_ctx.skews
      in
      { ctx with Flow_ctx.assignment = Some a })

let assignment_ilp =
  Flow_stage.make ~name:"assignment" ~variant:"ilp" ~category:Flow_trace.Optimizer
    ~inputs:[ "positions"; "skews"; "rings" ] ~outputs:[ "assignment"; "ilp_stats" ]
    (fun ctx ->
      let cfg = ctx.Flow_ctx.cfg in
      let a, stats =
        Rc_assign.Assign.by_ilp ~candidates:cfg.Flow_ctx.candidates cfg.Flow_ctx.tech
          ctx.Flow_ctx.rings
          ~ff_positions:(Flow_ctx.ff_positions ctx) ~targets:ctx.Flow_ctx.skews
      in
      { ctx with Flow_ctx.assignment = Some a; ilp_stats = Some stats })

let assignment_of = function
  | Flow_ctx.Netflow -> assignment_netflow
  | Flow_ctx.Ilp -> assignment_ilp

(* ---- stage 4: cost-driven skew scheduling ----------------------------- *)

let cost_driven solver ~variant =
  Flow_stage.make ~name:"cost-driven scheduling" ~variant ~category:Flow_trace.Optimizer
    ~inputs:[ "positions"; "skews"; "assignment"; "stage4_slack" ] ~outputs:[ "skews" ]
    (fun ctx ->
      let tech = ctx.Flow_ctx.cfg.Flow_ctx.tech in
      let sta = run_sta ctx in
      let problem = Flow_ctx.skew_problem_of_sta tech ctx.Flow_ctx.netlist sta in
      let anchors =
        Flow_ctx.anchors_of_assignment tech ctx.Flow_ctx.rings (Flow_ctx.assignment_exn ctx)
          ~ff_positions:(Flow_ctx.ff_positions ctx) ~skews:ctx.Flow_ctx.skews
      in
      let slack = ctx.Flow_ctx.stage4_slack in
      match solver problem ~slack ~anchors with
      | Some (r : Rc_skew.Cost_driven.result) ->
          (* polish the extreme-point schedule: pull every target as
             close to its anchor as the constraints allow *)
          {
            ctx with
            Flow_ctx.skews =
              Rc_skew.Cost_driven.refine_toward_anchors problem ~slack ~anchors
                ~skews:r.Rc_skew.Cost_driven.skews;
          }
      | None -> { ctx with Flow_ctx.note = "infeasible; schedule kept" })

let cost_driven_minmax =
  cost_driven
    (fun problem ~slack ~anchors ->
      Rc_skew.Cost_driven.solve_minmax_graph problem ~slack ~anchors)
    ~variant:"min-max graph"

let cost_driven_weighted =
  cost_driven
    (fun problem ~slack ~anchors ->
      Rc_skew.Cost_driven.solve_weighted_mcf problem ~slack ~anchors)
    ~variant:"weighted MCF"

let cost_driven_of (cfg : Flow_ctx.config) =
  if cfg.Flow_ctx.use_weighted_skew then cost_driven_weighted else cost_driven_minmax

(* ---- stage 5: evaluation --------------------------------------------- *)

let evaluation =
  Flow_stage.make ~name:"evaluation" ~variant:"weighted objective"
    ~category:Flow_trace.Optimizer
    ~inputs:[ "positions"; "assignment" ]
    ~outputs:[ "history"; "best"; "current_cost"; "converged" ]
    (fun ctx ->
      let cfg = ctx.Flow_ctx.cfg in
      let snap = Flow_ctx.take_snapshot ctx ~iteration:ctx.Flow_ctx.iteration in
      let cost = Flow_ctx.cost_of cfg snap in
      let ctx = Flow_ctx.remember ctx snap in
      let ctx = { ctx with Flow_ctx.history = snap :: ctx.Flow_ctx.history } in
      if ctx.Flow_ctx.iteration = 0 then
        { ctx with Flow_ctx.current_cost = cost; note = "base case" }
      else
        let improvement =
          (ctx.Flow_ctx.current_cost -. cost) /. Float.max ctx.Flow_ctx.current_cost 1.0
        in
        let converged =
          improvement < cfg.Flow_ctx.convergence_tol && ctx.Flow_ctx.iteration > 1
        in
        {
          ctx with
          Flow_ctx.current_cost = Float.min ctx.Flow_ctx.current_cost cost;
          converged = ctx.Flow_ctx.converged || converged;
          note =
            Printf.sprintf "cost %+.2f%%%s" (-100.0 *. improvement)
              (if converged then " -> converged" else "");
        })

(* ---- stage 6: incremental placement ----------------------------------- *)

let pseudo_nets ctx weight =
  let assignment = Flow_ctx.assignment_exn ctx in
  Array.to_list
    (Array.mapi
       (fun i cell ->
         {
           Rc_place.Qplace.cell;
           anchor = assignment.Rc_assign.Assign.taps.(i).Tapping.point;
           weight;
         })
       ctx.Flow_ctx.ffs)

let pseudo_weight_at (cfg : Flow_ctx.config) ~iteration =
  cfg.Flow_ctx.pseudo_weight
  *. (cfg.Flow_ctx.pseudo_growth ** float_of_int (iteration - 1))

let incremental_qplace =
  Flow_stage.make ~name:"incremental placement" ~variant:"pseudo-net qplace"
    ~category:Flow_trace.Placer ~advance:true
    ~inputs:[ "positions"; "assignment" ] ~outputs:[ "positions" ]
    (fun ctx ->
      let cfg = ctx.Flow_ctx.cfg in
      let weight = pseudo_weight_at cfg ~iteration:ctx.Flow_ctx.iteration in
      let pseudo = pseudo_nets ctx weight in
      let inc =
        Rc_place.Qplace.incremental ~stability:cfg.Flow_ctx.stability ctx.Flow_ctx.netlist
          ~chip:ctx.Flow_ctx.chip ~prev:ctx.Flow_ctx.positions ~pseudo
      in
      Flow_cache.note_displacement ctx.Flow_ctx.caches ~prev:ctx.Flow_ctx.positions
        ~next:inc.Rc_place.Qplace.positions;
      {
        ctx with
        Flow_ctx.positions = inc.Rc_place.Qplace.positions;
        note =
          Printf.sprintf "pseudo weight %.3f, %d cells moved" weight
            (Flow_cache.dirty_cells ctx.Flow_ctx.caches);
      })

let incremental_relocate =
  Flow_stage.make ~name:"incremental placement" ~variant:"relocate+heal"
    ~category:Flow_trace.Placer ~advance:true
    ~inputs:[ "positions"; "assignment" ] ~outputs:[ "positions" ]
    (fun ctx ->
      let cfg = ctx.Flow_ctx.cfg in
      let netlist = ctx.Flow_ctx.netlist and chip = ctx.Flow_ctx.chip in
      let weight = pseudo_weight_at cfg ~iteration:ctx.Flow_ctx.iteration in
      let pseudo = pseudo_nets ctx weight in
      (* minimal disturbance: step flip-flops toward their taps and heal
         the logic around them with flip-flops frozen, preserving the
         refined placement's quality *)
      let moved =
        Rc_place.Qplace.relocate netlist ~chip ~site ~prev:ctx.Flow_ctx.positions ~pseudo
      in
      let healed =
        fst
          (Rc_place.Detail.refine ~max_passes:cfg.Flow_ctx.detail_passes
             ~frozen:(Rc_netlist.Netlist.is_ff netlist) netlist ~chip ~site moved)
      in
      Flow_cache.note_displacement ctx.Flow_ctx.caches ~prev:ctx.Flow_ctx.positions
        ~next:healed;
      {
        ctx with
        Flow_ctx.positions = healed;
        note =
          Printf.sprintf "pseudo weight %.3f, %d cells moved" weight
            (Flow_cache.dirty_cells ctx.Flow_ctx.caches);
      })

let incremental_of (cfg : Flow_ctx.config) =
  if cfg.Flow_ctx.detail_passes > 0 then incremental_relocate else incremental_qplace

(* ---- epilogue: best-state restore ------------------------------------- *)

(* Driver-owned (not part of the swappable plan): evaluate the state
   after the last movement + re-assignment, then ship the minimum-cost
   snapshot stage 5 ever saw.  Named "evaluation" because it is the
   final run of that stage's bookkeeping. *)
let finalize =
  Flow_stage.make ~name:"evaluation" ~variant:"best-state restore"
    ~category:Flow_trace.Optimizer
    ~inputs:[ "positions"; "assignment"; "best"; "history" ]
    ~outputs:[ "positions"; "skews"; "assignment"; "history" ]
    (fun ctx ->
      let last = Flow_ctx.take_snapshot ctx ~iteration:ctx.Flow_ctx.iteration in
      let ctx = Flow_ctx.remember ctx last in
      let b = Flow_ctx.best_exn ctx in
      let ctx =
        {
          ctx with
          Flow_ctx.positions = b.Flow_ctx.best_positions;
          skews = b.Flow_ctx.best_skews;
          assignment = Some b.Flow_ctx.best_assignment;
        }
      in
      let final = Flow_ctx.take_snapshot ctx ~iteration:ctx.Flow_ctx.iteration in
      {
        ctx with
        Flow_ctx.history = final :: ctx.Flow_ctx.history;
        note = Printf.sprintf "shipped min-cost snapshot (%.0f um)" b.Flow_ctx.best_cost;
      })

(* First-class flow stages and the driver that executes them.

   A stage is a named, categorized ctx -> ctx function with declared
   inputs/outputs (context fields it consumes/produces — documentation
   that is also surfaced by `describe`).  The driver `exec` times every
   execution, measures how the stage moved the stage-5 objective, and
   appends a Flow_trace event; `run_loop` implements the stage 4-6
   iteration scheme: stop when the evaluation stage reports convergence
   or the iteration budget is exhausted, and skip advance-only stages
   (stage 6) when no further iteration will consume their output. *)

type t = {
  name : string;  (* canonical stage name, shared by all variants of a slot *)
  variant : string;  (* which implementation fills the slot *)
  category : Flow_trace.category;
  inputs : string list;  (* Flow_ctx fields consumed *)
  outputs : string list;  (* Flow_ctx fields produced/updated *)
  advance : bool;  (* only prepares the next iteration; skip when the loop ends *)
  run : Flow_ctx.t -> Flow_ctx.t;
}

let make ~name ~variant ~category ?(inputs = []) ?(outputs = []) ?(advance = false) run =
  { name; variant; category; inputs; outputs; advance; run }

let describe st =
  Printf.sprintf "%-24s [%s] %s -> %s" st.name st.variant
    (String.concat ", " st.inputs)
    (String.concat ", " st.outputs)

(* run one stage: time it, compute the objective delta across it, and
   record the trace event (consuming the stage's note) *)
let exec st (ctx : Flow_ctx.t) =
  let cost_before = Flow_ctx.current_objective ctx in
  let metrics_before = Rc_obs.Metrics.snapshot ~reg:ctx.Flow_ctx.obs () in
  let ctx', wall_s = Rc_util.Timer.time (fun () -> st.run ctx) in
  let cost_after = Flow_ctx.current_objective ctx' in
  let cost_delta =
    match (cost_before, cost_after) with
    | Some b, Some a -> Some (a -. b)
    | _ -> None
  in
  let metrics =
    if metrics_before = [] then []
    else
      Rc_obs.Metrics.diff ~before:metrics_before
        ~after:(Rc_obs.Metrics.snapshot ~reg:ctx'.Flow_ctx.obs ())
  in
  let event =
    {
      Flow_trace.arm = ctx'.Flow_ctx.arm;
      stage = st.name;
      variant = st.variant;
      category = st.category;
      iteration = ctx'.Flow_ctx.iteration;
      wall_s;
      cost_delta;
      note = ctx'.Flow_ctx.note;
      metrics;
    }
  in
  { ctx' with Flow_ctx.trace = Flow_trace.record ctx'.Flow_ctx.trace event; note = "" }

(* the guard hook is the flow's cooperative-cancellation point: it runs
   before every stage execution and aborts the run by raising (the
   serve scheduler raises its Cancelled exception here on deadline
   expiry or client cancellation) *)
let checked ?guard st (ctx : Flow_ctx.t) =
  (match guard with Some g -> g ctx | None -> ());
  exec st ctx

let run_sequence ?guard stages ctx =
  List.fold_left (fun c st -> checked ?guard st c) ctx stages

let run_loop ?guard ?on_iteration ~max_iterations stages ctx =
  let rec go (ctx : Flow_ctx.t) =
    if ctx.Flow_ctx.converged || ctx.Flow_ctx.iteration >= max_iterations then ctx
    else
      let ctx = { ctx with Flow_ctx.iteration = ctx.Flow_ctx.iteration + 1 } in
      let ctx =
        List.fold_left
          (fun (c : Flow_ctx.t) st ->
            if c.Flow_ctx.converged then c
              (* evaluation decided this iteration is the last *)
            else if st.advance && c.Flow_ctx.iteration >= max_iterations then c
              (* no next iteration to prepare *)
            else checked ?guard st c)
          ctx stages
      in
      (* iteration boundary: a consistent context a checkpoint hook may
         persist — resuming from here re-enters [go] exactly as an
         uninterrupted run would *)
      (match on_iteration with Some f -> f ctx | None -> ());
      go ctx
  in
  go ctx

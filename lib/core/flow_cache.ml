(* Mutable cross-iteration recomputation state carried by the flow
   context. The context itself is functional (stages map ctx -> ctx);
   the caches are deliberately not — they are sessions whose whole point
   is to persist across iterations: the incremental STA session, the
   Eq. 1 candidate-tap cache with its warm-started assignment solver,
   and the dirty-set tracker fed by stage 6's displacement vector.

   Every cache matches on exact inputs, so a flow run with caching
   enabled is bit-identical to one without — the caches only skip
   recomputation of values they can prove unchanged. *)

let m_dirty_cells = Rc_obs.Metrics.counter "flow.dirty.cells"
let m_moved = Rc_obs.Metrics.histogram "flow.dirty.displacement_um"
let g_max_disp = Rc_obs.Metrics.gauge "flow.dirty.max_displacement_um"

type t = {
  mutable sta : Rc_timing.Sta.session option;
  assign : Rc_assign.Assign.cache;
  epsilon : float;  (* movement threshold for the dirty set, um *)
  mutable dirty_cells : int;  (* cells moved > epsilon in the last stage-6 pass *)
  mutable max_displacement : float;  (* largest move of that pass, um *)
}

let create ?(epsilon = 0.0) () =
  {
    sta = None;
    assign = Rc_assign.Assign.make_cache ();
    epsilon;
    dirty_cells = 0;
    max_displacement = 0.0;
  }

let sta_session t tech netlist =
  match t.sta with
  | Some s -> s
  | None ->
      let s = Rc_timing.Sta.make_session tech netlist in
      t.sta <- Some s;
      s

let assign_cache t = t.assign

(* Full invalidation, for edits that change what the caches are keyed
   against implicitly (the STA session embeds the tech, the tap cache
   the ring array): drop the session and empty the assignment cache in
   place so the next consumers rebuild against the new inputs. *)
let reset t =
  t.sta <- None;
  Rc_assign.Assign.cache_reset t.assign;
  t.dirty_cells <- 0;
  t.max_displacement <- 0.0

(* Stage 6 reports its displacement vector here: the dirty set of the
   iteration is every cell that moved more than epsilon. The counts and
   magnitudes surface in the metrics registry; the per-subsystem caches
   detect staleness themselves from exact positions, so an epsilon
   greater than 0 only coarsens the *reported* dirty set, never the
   recomputation. *)
let note_displacement t ~prev ~next =
  let n = min (Array.length prev) (Array.length next) in
  let dirty = ref 0 and max_d = ref 0.0 in
  for c = 0 to n - 1 do
    let d = Rc_geom.Point.manhattan prev.(c) next.(c) in
    if d > t.epsilon then begin
      incr dirty;
      if d > !max_d then max_d := d
    end
  done;
  t.dirty_cells <- !dirty;
  t.max_displacement <- !max_d;
  if Rc_obs.Metrics.enabled () then begin
    Rc_obs.Metrics.add m_dirty_cells !dirty;
    Rc_obs.Metrics.observe m_moved (int_of_float (Float.round !max_d));
    Rc_obs.Metrics.set_gauge g_max_disp !max_d
  end

let dirty_cells t = t.dirty_cells
let max_displacement t = t.max_displacement

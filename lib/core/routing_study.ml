type result = {
  signal_routed : float;
  signal_hpwl : float;
  signal_steiner : float;
  clock_routed : float;
  clock_estimate : float;
  overflow : int;
  max_congestion : float;
  report : string;
}

let run ?(nx = 32) ?(ny = 32) ?(capacity = 48) (o : Flow.outcome) =
  let chip = Bench_suite.chip o.Flow.cfg.Flow.bench in
  let grid = Rc_route.Grid.create ~chip ~nx ~ny ~capacity in
  (* signal nets *)
  let signal = Rc_route.Router.route_netlist ~chip o.Flow.netlist o.Flow.positions in
  let signal_routed = signal.Rc_route.Router.wirelength in
  (* clock stubs on a shared grid with the signal usage as background *)
  let ffs, _ = Flow.ff_index o.Flow.netlist in
  let stubs =
    Array.to_list
      (Array.mapi
         (fun i cell ->
           (o.Flow.positions.(cell), o.Flow.assignment.Rc_assign.Assign.taps.(i).Rc_rotary.Tapping.point))
         ffs)
  in
  let clock = Rc_route.Router.route_connections grid stubs in
  let congestion =
    Array.fold_left
      (fun acc col -> Array.fold_left Float.max acc col)
      0.0
      (Rc_route.Grid.congestion_map signal.Rc_route.Router.grid)
  in
  let signal_hpwl = Rc_place.Wirelength.total o.Flow.netlist o.Flow.positions in
  let signal_steiner = Rc_place.Steiner.total o.Flow.netlist o.Flow.positions in
  let clock_estimate = o.Flow.final.Flow.tapping_wl in
  let report =
    Printf.sprintf
      "Routing study (%s, %dx%d g-cells, %d tracks):\n\
      \  signal: HPWL %10.0f um | Steiner %10.0f um | routed %10.0f um (x%.2f HPWL)\n\
      \  clock stubs: estimate %8.0f um | routed %8.0f um\n\
      \  overflow %d, peak congestion %.0f%% of capacity\n"
      o.Flow.cfg.Flow.bench.Bench_suite.bname nx ny capacity signal_hpwl signal_steiner
      signal_routed
      (signal_routed /. Float.max signal_hpwl 1.0)
      clock_estimate clock.Rc_route.Router.wirelength
      (signal.Rc_route.Router.overflow + clock.Rc_route.Router.overflow)
      (100.0 *. congestion)
  in
  {
    signal_routed;
    signal_hpwl;
    signal_steiner;
    clock_routed = clock.Rc_route.Router.wirelength;
    clock_estimate;
    overflow = signal.Rc_route.Router.overflow + clock.Rc_route.Router.overflow;
    max_congestion = congestion;
    report;
  }

(** The six stage implementations of the paper's Fig. 3 flow, as
    pluggable {!Flow_stage.t} values.  Slots with multiple
    implementations expose each variant plus an [*_of] selector that
    picks the config's default; {!Flow.plan_of_config} wires them into a
    plan, and callers swap variants by building a custom plan. *)

(** {2 Stage 1: initial placement} *)

val placement_global : Flow_stage.t
(** Quadratic global placement only (the paper's flow). *)

val placement_detailed : Flow_stage.t
(** Global placement + [detail_passes] detailed-refinement passes. *)

val placement_of : Flow_ctx.config -> Flow_stage.t

(** {2 Stage 2: max-slack skew scheduling} *)

val max_slack_scheduling : Flow_stage.t
(** Fishburn's difference-constraint problem via SPFA binary search.
    @raise Failure when infeasible. *)

(** {2 Stage 3: flip-flop-to-ring assignment} *)

val assignment_netflow : Flow_stage.t
(** Min-cost network flow under ring capacities (Sec. V). *)

val assignment_ilp : Flow_stage.t
(** Min-max ring load ILP via LP relaxation + greedy rounding (Sec. VI);
    also records [ilp_stats]. *)

val assignment_of : Flow_ctx.mode -> Flow_stage.t

(** {2 Stage 4: cost-driven skew scheduling} *)

val cost_driven_minmax : Flow_stage.t
(** Min-max Δ objective on the constraint graph. *)

val cost_driven_weighted : Flow_stage.t
(** Exact weighted-sum objective (min-cost-flow dual). *)

val cost_driven_of : Flow_ctx.config -> Flow_stage.t

(** {2 Stage 5: evaluation} *)

val evaluation : Flow_stage.t
(** Snapshot the current state, keep the best state seen (stage-5
    invariant), and decide convergence from the cost improvement. *)

(** {2 Stage 6: incremental placement} *)

val incremental_qplace : Flow_stage.t
(** Quadratic re-solve with pseudo-net springs to the tapping points
    (the paper's flow). *)

val incremental_relocate : Flow_stage.t
(** Beyond-paper: step flip-flops toward their taps directly and heal
    the surrounding logic with flip-flops frozen. *)

val incremental_of : Flow_ctx.config -> Flow_stage.t

(** {2 Epilogue} *)

val finalize : Flow_stage.t
(** Driver-owned (not part of the swappable plan): evaluate the state
    after the last movement + re-assignment, then restore the
    minimum-cost snapshot's state so a regressing last iteration cannot
    ship. *)

(** The five ISCAS89-profile benchmarks of Table II, reproduced by the
    synthetic generator with the published cell / flip-flop / net counts
    and ring-array sizes, plus the hierarchical scaling suite (20k to
    1M cells). The die is sized from the ring grid at a fixed ring
    pitch. *)

type source =
  | Flat of Rc_netlist.Generator.config
      (** The paper's flat levelized generator (Table II profiles). *)
  | Hier of Rc_netlist.Generator.hier_config
      (** The hierarchical Rent's-rule generator (scaling suite). *)

type bench = {
  bname : string;
  gen : source;
  ring_grid : int;  (** g for a g×g ring array (Table II's #Rings = g²). *)
}

val ring_pitch : float
(** Side of one ring tile, µm (600). *)

val chip_of_grid : int -> Rc_geom.Rect.t
(** Die outline of a g×g ring array at {!ring_pitch}. *)

val chip : bench -> Rc_geom.Rect.t
(** Die outline of a benchmark, whatever its generator. *)

val netlist : bench -> Rc_netlist.Netlist.t
(** Generate the benchmark's circuit (deterministic in its seed). *)

val profile : bench -> int * int
(** [(n_logic, n_ffs)] of the benchmark's circuit, without generating
    it. *)

(** The five Table II circuits, in the paper's size order. *)

val s9234 : bench
val s5378 : bench
val s15850 : bench
val s38417 : bench
val s35932 : bench

val all : bench list
(** The five circuits in Table II order. *)

val tiny : bench
(** A fast miniature circuit for tests and the quickstart example. *)

val quick : bench list
(** The fast sanity subset ([tiny] + the smallest Table II circuit),
    shared by the CLI's and the bench harness's [--quick] modes. *)

(** The scaling suite: hierarchical circuits two orders of magnitude
    past s35932, with paper-like FF-per-ring load. *)

val size20k : bench
val size100k : bench
val size1m : bench

val sizes : bench list
(** The scaling suite in size order ([size20k; size100k; size1m]). *)

val names : string list
(** Every known benchmark name ([tiny], {!all} and {!sizes}), for lookup
    error messages — derived, so new circuits cannot drift out of
    sync. *)

val find : string -> bench option
(** Look up a benchmark (including "tiny" and the scaling suite) by
    name. *)

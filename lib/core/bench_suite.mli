(** The five ISCAS89-profile benchmarks of Table II, reproduced by the
    synthetic generator with the published cell / flip-flop / net counts
    and ring-array sizes. The die is sized from the ring grid at a fixed
    ring pitch. *)

type bench = {
  bname : string;
  gen : Rc_netlist.Generator.config;
  ring_grid : int;  (** g for a g×g ring array (Table II's #Rings = g²). *)
}

val ring_pitch : float
(** Side of one ring tile, µm (600). *)

(** The five Table II circuits, in the paper's size order. *)

val s9234 : bench
val s5378 : bench
val s15850 : bench
val s38417 : bench
val s35932 : bench

val all : bench list
(** The five circuits in Table II order. *)

val tiny : bench
(** A fast miniature circuit for tests and the quickstart example. *)

val quick : bench list
(** The fast sanity subset ([tiny] + the smallest Table II circuit),
    shared by the CLI's and the bench harness's [--quick] modes. *)

val names : string list
(** Every known benchmark name ([tiny] plus {!all}), for lookup error
    messages — derived, so new circuits cannot drift out of sync. *)

val find : string -> bench option
(** Look up a benchmark (including "tiny") by name. *)

(** The paper-table report behind [rotary_cli report]: run the flow per
    circuit with the metrics registry enabled, and assemble an
    {!Rc_obs.Report.doc} with the paper's headline tables —
    skew-scheduling slack, tapping wirelength / ring load, the
    Table-I-style ILP-vs-greedy comparison — plus the solver metrics
    behind them (CG iterations, simplex pivots, netflow augmentations,
    Eq. 1 tapping-case distribution, STA cone sizes).

    Circuits run sequentially (the kernels inside each flow still use
    the domain pool), so per-circuit metric attribution is exact and the
    document is bit-identical for any job count; only wall-clock columns
    vary, and they are omitted with [~timings:false]. *)

type circuit_report = {
  bench : Bench_suite.bench;
  outcome : Flow.outcome;
      (** The full six-stage flow in netflow mode. *)
  ilp_result : Rc_assign.Assign.t;
      (** Section VI min-max-load ILP heuristic on the final placement. *)
  ilp_stats : Rc_assign.Assign.ilp_stats;
  metrics : Rc_obs.Metrics.snapshot;
      (** Solver-metric delta attributed to this circuit. *)
}

val collect : ?benches:Bench_suite.bench list -> unit -> circuit_report list
(** Run every benchmark (default {!Bench_suite.all}) sequentially with
    metrics recording enabled (the previous enabled state is restored
    afterwards, also on exceptions). *)

val build : ?timings:bool -> circuit_report list -> Rc_obs.Report.doc
(** Assemble the document. [timings] (default [true]) controls the
    wall-clock columns and timer metrics — pass [false] for
    reproducible output (golden tests, cross-job comparisons). *)

val schema_version : int
(** Version stamp of the JSON rendering (see [docs/metrics.md]). *)

val json_of : Rc_obs.Report.doc -> Rc_util.Json.t
(** {!Rc_obs.Report.to_json} plus the [schema_version] field. *)

(** One driver per table and figure of the paper's evaluation
    (Section VIII). Each returns the rendered table plus the structured
    numbers, so the benchmark harness can both print and post-process.

    Flow executions are the expensive part; {!run_suite} runs each
    circuit once per assignment mode and the table builders share the
    results. *)

type suite_entry = {
  bench : Bench_suite.bench;
  netflow : Flow.outcome;  (** The full six-stage flow (network-flow assignment). *)
  ilp : (Rc_assign.Assign.t * Rc_assign.Assign.ilp_stats) option;
      (** The Section VI min-max-load assignment run once on the flow's
          final state — the paper's Table V/VI comparison point (its CPU
          column repeats Table I's, showing the ILP was a drop-in
          alternative at stage 3, not a separate iterated flow). *)
}

val run_suite :
  ?plan:Flow.plan ->
  ?benches:Bench_suite.bench list ->
  ?with_ilp:bool ->
  ?log:bool ->
  unit ->
  suite_entry list
(** Run the full flow on each benchmark (default: the five Table II
    circuits); when [with_ilp] (default true) also evaluate the ILP
    assignment on each final state. [plan] swaps stage implementations
    for every run (default: each config's own [Flow.plan_of_config]).
    [log] prints per-circuit progress to stderr. *)

(** {1 Table I — integrality gap of greedy rounding vs. a generic ILP solver} *)

type table1_row = {
  t1_name : string;
  greedy_ig : float;
  greedy_cpu : float;
  bb_ig : float;  (** NaN when the solver found no incumbent in budget. *)
  bb_cpu : float;
  bb_optimal : bool;
}

val table1 : ?benches:Bench_suite.bench list -> ?bb_seconds:float -> unit -> table1_row list * string
(** Standalone (does not need {!run_suite}): initial placement + stage-2
    scheduling per circuit, then the min-max-capacitance assignment by
    greedy rounding and by branch & bound with a [bb_seconds] budget
    (default 120 s — standing in for the paper's 10-hour GLPK cap; big
    circuits overshoot it by one LP solve, exactly as GLPK overshot). *)

(** {1 Table II — benchmark characteristics} *)

type table2_row = {
  t2_name : string;
  cells : int;
  ffs : int;
  nets : int;
  pl : float;  (** Average source-sink path length of a conventional zero-skew clock tree, µm. *)
  rings : int;
}

val table2 : ?benches:Bench_suite.bench list -> unit -> table2_row list * string

(** {1 Tables III-VII — flow results} *)

val table3 : suite_entry list -> string
(** Base case (stage 1-3) metrics: AFD, tapping/signal/total WL, clock/
    signal/total power, CPU. *)

val table4 : suite_entry list -> string
(** Network-flow optimization after the stage 4-6 iterations, with
    improvements over the base case and the CPU split (flow vs placer). *)

val table5 : suite_entry list -> string
(** Max load capacitance: network flow vs ILP (AFD, cap, total WL, CPU).
    Rows are omitted for entries without an ILP run. *)

val table6 : suite_entry list -> string
(** Power dissipation for both formulations vs the base case. *)

val table7 : suite_entry list -> string
(** Wirelength-capacitance product comparison. *)

(** {1 Fig. 2 — the tapping-delay curve} *)

val fig2 : ?samples:int -> unit -> (float * float) list * string
(** Sample [t_f(x)] of Eq. 1 along one ring segment for a
    representative flip-flop, and solve the four target cases; returns
    the curve points and a small report locating each case's tap. *)

(** Typed context threaded through the six-stage flow.

    A stage is a function [t -> t] (see {!Flow_stage}); everything
    stages read or write lives here.  The record is deliberately fully
    exposed: custom stages are plain functions over it. *)

type mode = Netflow | Ilp

type config = {
  tech : Rc_tech.Tech.t;
  bench : Bench_suite.bench;
  mode : mode;
  candidates : int;
  capacity_slack : float;
  max_iterations : int;
  pseudo_weight : float;
  pseudo_growth : float;
  stability : float;
  slack_fraction : float;
  use_weighted_skew : bool;
  convergence_tol : float;
  detail_passes : int;
  tapping_weight : float;
  incremental : bool;
}
(** See {!Flow.config} for per-field documentation. *)

type snapshot = {
  iteration : int;
  afd : float;
  tapping_wl : float;
  signal_wl : float;
  total_wl : float;
  clock_mw : float;
  signal_mw : float;
  total_mw : float;
  max_load_ff : float;
}
(** See {!Flow.snapshot} for per-field documentation. *)

(** Best state seen by stage 5, restored when the flow ships. *)
type best = {
  best_cost : float;
  best_positions : Rc_geom.Point.t array;
  best_skews : float array;
  best_assignment : Rc_assign.Assign.t;
}

type t = {
  cfg : config;
  arm : string;
      (** experiment-arm tag stamped onto trace events; [""] outside a suite *)
  netlist : Rc_netlist.Netlist.t;
  chip : Rc_geom.Rect.t;
  rings : Rc_rotary.Ring_array.t;
  ffs : int array;  (** cell index of flip-flop i *)
  positions : Rc_geom.Point.t array;  (** per cell; empty until stage 1 *)
  skews : float array;  (** per flip-flop; empty until stage 2 *)
  assignment : Rc_assign.Assign.t option;  (** [None] until stage 3 *)
  slack : float;  (** stage-2 maximum slack M* *)
  stage4_slack : float;  (** prespecified slack for cost-driven scheduling *)
  n_pairs : int;
  ilp_stats : Rc_assign.Assign.ilp_stats option;
  iteration : int;  (** 0 = prologue; incremented by the loop driver *)
  history : snapshot list;  (** newest first *)
  best : best option;
  current_cost : float;  (** convergence reference (monotone min) *)
  converged : bool;
  trace : Flow_trace.t;
  note : string;  (** set by a stage, moved into the trace by the driver *)
  obs : Rc_obs.Metrics.t;
      (** solver-metrics registry ({!Rc_obs.Metrics.global}); the stage
          driver snapshots it around each stage so trace events carry
          per-stage metric deltas when recording is enabled *)
  caches : Flow_cache.t;
      (** cross-iteration recomputation state (incremental STA session,
          candidate-tap cache, warm assignment solver, dirty-set
          tracker); consulted by stages only when [cfg.incremental] *)
}

val create : ?arm:string -> config -> Rc_netlist.Netlist.t -> t
(** Fresh context: rings built from the benchmark's grid, nothing placed
    or scheduled yet. [arm] tags every trace event of the run (default
    [""]). *)

val assignment_exn : t -> Rc_assign.Assign.t
(** @raise Invalid_argument before stage 3 has run. *)

val best_exn : t -> best
(** @raise Invalid_argument before stage 5 has run. *)

val ff_positions : t -> Rc_geom.Point.t array
(** Current position of every flip-flop, in flip-flop index order. *)

val ff_index : Rc_netlist.Netlist.t -> int array * (int -> int)
(** See {!Flow.ff_index}. *)

val skew_problem_of_sta :
  Rc_tech.Tech.t -> Rc_netlist.Netlist.t -> Rc_timing.Sta.t -> Rc_skew.Skew_problem.t
(** See {!Flow.skew_problem_of_sta}. *)

val anchors_of_assignment :
  Rc_tech.Tech.t ->
  Rc_rotary.Ring_array.t ->
  Rc_assign.Assign.t ->
  ff_positions:Rc_geom.Point.t array ->
  skews:float array ->
  Rc_skew.Cost_driven.anchor array
(** See {!Flow.anchors_of_assignment}. *)

val take_snapshot : t -> iteration:int -> snapshot
(** Evaluate the current placement + assignment into a snapshot. *)

val cost_of : config -> snapshot -> float
(** The stage-5 objective: signal WL + [tapping_weight] × tapping WL. *)

val current_objective : t -> float option
(** Same objective read directly off the context; [None] until placement
    and assignment both exist. *)

val remember : t -> snapshot -> t
(** The stage-5 best-state-keeping rule: keep the cheapest snapshot's
    state; ties keep the earlier one. *)

(** Cross-iteration recomputation caches for the Fig. 3 stage 3–6 loop.

    One value of this type rides in {!Flow_ctx.t} and persists across
    stages and iterations (it is mutable by design, unlike the context).
    It bundles the incremental STA session
    ({!Rc_timing.Sta.analyze_incremental}), the Eq. 1 candidate-tap
    cache with the warm-started assignment solver
    ({!Rc_assign.Assign.by_netflow} with [~cache]), and the dirty-set
    tracker that stage 6 feeds with its displacement vector.

    All caches validate against exact inputs, so enabling them cannot
    change any flow result — see [docs/incremental.md]. *)

type t

val create : ?epsilon:float -> unit -> t
(** Fresh, empty caches. [epsilon] (default 0) is the movement
    threshold, in um, above which a cell counts as dirty in the
    *reported* dirty set; the caches themselves always compare exact
    positions. *)

val sta_session : t -> Rc_tech.Tech.t -> Rc_netlist.Netlist.t -> Rc_timing.Sta.session
(** The lazily created incremental STA session for this flow's
    netlist. *)

val assign_cache : t -> Rc_assign.Assign.cache
(** The candidate-tap + warm-assignment cache for stage 3. *)

val reset : t -> unit
(** Drop everything: the STA session (which embeds the technology) and
    the assignment cache contents (which embed the ring array).  Called
    when an ECO edit changes those anchors — e.g. a clock-period change
    rebuilds the rings — so stale sessions can never be consulted. *)

val note_displacement : t -> prev:Rc_geom.Point.t array -> next:Rc_geom.Point.t array -> unit
(** Record stage 6's displacement vector: updates {!dirty_cells} /
    {!max_displacement} and the [flow.dirty.*] metrics. *)

val dirty_cells : t -> int
(** Cells that moved more than epsilon in the last reported pass. *)

val max_displacement : t -> float
(** Largest single-cell move of the last reported pass, um. *)

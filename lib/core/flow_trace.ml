(* Structured per-stage trace of a flow run.

   Every stage execution appends one event: which stage ran (canonical
   name + the variant actually plugged in), at which iteration, how long
   it took, and how it moved the stage-5 objective.  The trace replaces
   the old cpu_flow_s/cpu_placer_s ref pair: those totals are now
   derived by summing events per category, so the per-stage breakdown
   and the reported CPU split can never disagree. *)

(* the legacy CPU split: placement-type stages vs everything else
   (scheduling, assignment, evaluation) *)
type category = Placer | Optimizer

type event = {
  arm : string;  (* experiment arm ("circuit/mode") the run belongs to; "" outside a suite *)
  stage : string;  (* canonical stage name, one of six *)
  variant : string;  (* implementation plugged into that slot *)
  category : category;
  iteration : int;  (* 0 = prologue, 1..k = loop, k+1 = epilogue *)
  wall_s : float;
  cost_delta : float option;
      (* change of the stage-5 objective (signal WL + w * tapping WL)
         across the stage; None while the objective is not yet defined
         (before the first assignment exists) *)
  note : string;  (* stage-reported decision, e.g. convergence verdict *)
  metrics : Rc_obs.Metrics.snapshot;
      (* solver-metric delta across the stage ([] when the registry is
         disabled).  Per-stage attribution is exact in sequential runs;
         inside parallel suite arms concurrent stages share the global
         registry, so deltas are approximate there *)
}

type t = { rev_events : event list; n : int }

let empty = { rev_events = []; n = 0 }
let record t event = { rev_events = event :: t.rev_events; n = t.n + 1 }
let length t = t.n
let events t = List.rev t.rev_events

let total_wall ?category t =
  List.fold_left
    (fun acc e ->
      match category with
      | Some c when c <> e.category -> acc
      | _ -> acc +. e.wall_s)
    0.0 t.rev_events

let events_of_arm t arm = List.filter (fun e -> e.arm = arm) (events t)

let arms t =
  (* distinct arm tags, in first-appearance order *)
  List.rev
    (List.fold_left
       (fun acc e -> if List.mem e.arm acc then acc else e.arm :: acc)
       [] (events t))

let iterations t =
  List.sort_uniq compare (List.map (fun e -> e.iteration) (events t))

let stages_of_iteration t i =
  List.filter (fun e -> e.iteration = i) (events t)

let stage_names t =
  (* distinct canonical names, in first-appearance order *)
  List.rev
    (List.fold_left
       (fun acc e -> if List.mem e.stage acc then acc else e.stage :: acc)
       [] (events t))

let fmt_delta = function
  | None -> "--"
  | Some d -> Printf.sprintf "%+.0f" d

(* per-event table: one row per stage execution, chronological *)
let render ?(title = "Per-stage trace") t =
  Report.render ~title
    ~header:[ "Iter"; "Stage"; "Variant"; "Wall (ms)"; "dCost (um)"; "Note" ]
    ~aligns:[ Report.R; L; L; R; R; L ]
    (List.map
       (fun e ->
         [
           string_of_int e.iteration;
           e.stage;
           e.variant;
           Printf.sprintf "%.3f" (e.wall_s *. 1000.0);
           fmt_delta e.cost_delta;
           e.note;
         ])
       (events t))

(* aggregate table: one row per (stage, variant) with call count, total
   and mean wall time, and the summed objective movement *)
let summary ?(title = "Per-stage summary") t =
  let keys =
    List.rev
      (List.fold_left
         (fun acc e ->
           let k = (e.stage, e.variant) in
           if List.mem k acc then acc else k :: acc)
         [] (events t))
  in
  let rows =
    List.map
      (fun (stage, variant) ->
        let es =
          List.filter (fun e -> e.stage = stage && e.variant = variant) (events t)
        in
        let calls = List.length es in
        let wall = List.fold_left (fun a e -> a +. e.wall_s) 0.0 es in
        let delta =
          List.fold_left
            (fun a e -> match e.cost_delta with Some d -> a +. d | None -> a)
            0.0 es
        in
        [
          stage;
          variant;
          string_of_int calls;
          Printf.sprintf "%.3f" (wall *. 1000.0);
          Printf.sprintf "%.3f" (wall /. float_of_int (max calls 1) *. 1000.0);
          Printf.sprintf "%+.0f" delta;
        ])
      keys
  in
  Report.render ~title
    ~header:[ "Stage"; "Variant"; "Calls"; "Total (ms)"; "Mean (ms)"; "Sum dCost (um)" ]
    ~aligns:[ Report.L; L; R; R; R; R ]
    rows

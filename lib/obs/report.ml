(* A tiny report-document model: titled sections of prose + tables,
   rendered to GitHub Markdown or JSON.  Deliberately knows nothing
   about the flow — lib/core/paper_report.ml builds the docs. *)

type cell =
  | Str of string
  | Int of int
  | Float of float * int  (* value, decimal places *)
  | Pct of float  (* rendered "12.3 %" *)

type table = { title : string; columns : string list; rows : cell list list }

type section = {
  heading : string;
  prose : string;
  tables : table list;
  data : (string * Rc_util.Json.t) list;
}

type doc = { title : string; intro : string; sections : section list }

let section ?(prose = "") ?(tables = []) ?(data = []) heading =
  { heading; prose; tables; data }

let cell_text = function
  | Str s -> s
  | Int n -> string_of_int n
  | Float (v, dp) ->
      if Float.is_nan v then "-" else Printf.sprintf "%.*f" dp v
  | Pct v -> if Float.is_nan v then "-" else Printf.sprintf "%.1f %%" v

(* numbers right-align in GitHub pipe tables via the delimiter row *)
let cell_is_num = function Str _ -> false | Int _ | Float _ | Pct _ -> true

let to_markdown doc =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# %s" doc.title;
  if doc.intro <> "" then begin
    line "";
    line "%s" doc.intro
  end;
  List.iter
    (fun sec ->
      line "";
      line "## %s" sec.heading;
      if sec.prose <> "" then begin
        line "";
        line "%s" sec.prose
      end;
      List.iter
        (fun (t : table) ->
          line "";
          if t.title <> "" then begin
            line "### %s" t.title;
            line ""
          end;
          line "| %s |" (String.concat " | " t.columns);
          let aligns =
            List.mapi
              (fun i _ ->
                let numeric =
                  t.rows <> []
                  && List.for_all
                       (fun row ->
                         match List.nth_opt row i with
                         | Some c -> cell_is_num c
                         | None -> true)
                       t.rows
                in
                if numeric then "---:" else "---")
              t.columns
          in
          line "| %s |" (String.concat " | " aligns);
          List.iter
            (fun row -> line "| %s |" (String.concat " | " (List.map cell_text row)))
            t.rows)
        sec.tables)
    doc.sections;
  Buffer.contents buf

let cell_json =
  let module J = Rc_util.Json in
  function
  | Str s -> J.String s
  | Int n -> J.Int n
  | Float (v, _) -> J.Float v
  | Pct v -> J.Float v

let table_json (t : table) =
  let module J = Rc_util.Json in
  J.Obj
    [
      ("title", J.String t.title);
      ("columns", J.List (List.map (fun c -> J.String c) t.columns));
      ("rows", J.List (List.map (fun row -> J.List (List.map cell_json row)) t.rows));
    ]

let to_json doc =
  let module J = Rc_util.Json in
  J.Obj
    [
      ("title", J.String doc.title);
      ("intro", J.String doc.intro);
      ( "sections",
        J.List
          (List.map
             (fun sec ->
               J.Obj
                 (("heading", J.String sec.heading)
                 :: ("prose", J.String sec.prose)
                 :: ("tables", J.List (List.map table_json sec.tables))
                 :: sec.data))
             doc.sections) );
    ]

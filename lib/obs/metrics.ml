(* Process-global solver-metrics registry.

   Design constraints, in priority order:

   1. Near-zero overhead when disabled: every recording operation is a
      single atomic-flag read followed by a return — no allocation, no
      clock read, no hash lookup.  Cells are interned once (usually at
      module initialization) and held in module-level lets by the
      instrumented code.
   2. Safe and deterministic under `Rc_par.Pool`: every cell is sharded
      per domain (one cache-line-padded slot per domain), so recording
      never contends and never loses updates.  Reads merge the shards in
      fixed slot order at sync points (after a parallel region has
      quiesced), so integer metrics — counters, histograms — are
      bit-identical for any job count.  Floating-point merges (timers)
      are deterministic for a fixed job count but may differ across job
      counts by summation order; gauges are last-write-wins per domain.
   3. No dependencies beyond the stdlib and Rc_util (for JSON).

   Shard slots: slot 0..63 are reserved for `Rc_par.Pool` worker
   domains, which call [set_shard_slot id] (their stable worker id) at
   startup; the pool joins the previous generation's domains before
   spawning new ones, so a slot is never owned by two live domains.
   Any other domain (including the main domain) lazily draws a slot
   from 64..127 on first use.  Shards are cumulative: a slot re-used by
   a later domain keeps accumulating into the same totals, which is
   exactly what a process-global registry wants. *)

let capacity = 128

(* one cache line (8 words) per slot so domains never write the same
   line; histograms use a larger per-slot block, see below *)
let stride = 8

let spare = Atomic.make 0

let slot_key =
  Domain.DLS.new_key (fun () -> 64 + (Atomic.fetch_and_add spare 1 mod 64))

let set_shard_slot i = if i >= 0 && i < 64 then Domain.DLS.set slot_key i
let shard_slot () = Domain.DLS.get slot_key

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

(* ---- cells ----------------------------------------------------------- *)

type counter = { c_name : string; c : int array }

type gauge = {
  g_name : string;
  gv : float array;  (* per-slot last value *)
  gn : int array;  (* per-slot set count *)
}

type timer = {
  t_name : string;
  tn : int array;  (* per-slot call count *)
  ts : float array;  (* per-slot total seconds *)
}

(* histogram per-slot block: count, sum, min, max, then n_buckets
   power-of-two buckets (bucket 0: v <= 0; bucket k: 2^(k-1) <= v < 2^k,
   top bucket open-ended) *)
let n_buckets = 32

let h_stride = 4 + n_buckets (* 36 words; block-per-slot, lines don't interleave *)

type histogram = { h_name : string; h : int array }

let init_histogram_slots a =
  for s = 0 to capacity - 1 do
    a.((s * h_stride) + 2) <- max_int;
    a.((s * h_stride) + 3) <- min_int
  done

type cell =
  | C of counter
  | G of gauge
  | T of timer
  | H of histogram

let kind_name = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | T _ -> "timer"
  | H _ -> "histogram"

(* ---- the registry ---------------------------------------------------- *)

type t = { cells : (string, cell) Hashtbl.t; lock : Mutex.t }

let global = { cells = Hashtbl.create 64; lock = Mutex.create () }

let intern ?(reg = global) name make same =
  Mutex.lock reg.lock;
  let cell =
    match Hashtbl.find_opt reg.cells name with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.add reg.cells name c;
        c
  in
  Mutex.unlock reg.lock;
  match same cell with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name (kind_name cell))

let counter ?reg name =
  intern ?reg name
    (fun () -> C { c_name = name; c = Array.make (capacity * stride) 0 })
    (function C c -> Some c | _ -> None)

let gauge ?reg name =
  intern ?reg name
    (fun () ->
      G
        {
          g_name = name;
          gv = Array.make (capacity * stride) 0.0;
          gn = Array.make (capacity * stride) 0;
        })
    (function G g -> Some g | _ -> None)

let timer ?reg name =
  intern ?reg name
    (fun () ->
      T
        {
          t_name = name;
          tn = Array.make (capacity * stride) 0;
          ts = Array.make (capacity * stride) 0.0;
        })
    (function T t -> Some t | _ -> None)

let histogram ?reg name =
  intern ?reg name
    (fun () ->
      let h = Array.make (capacity * h_stride) 0 in
      init_histogram_slots h;
      H { h_name = name; h })
    (function H h -> Some h | _ -> None)

(* ---- recording (the hot path) ---------------------------------------- *)

let add c n =
  if Atomic.get on then begin
    let i = Domain.DLS.get slot_key * stride in
    c.c.(i) <- c.c.(i) + n
  end

let incr c = add c 1

let set_gauge g v =
  if Atomic.get on then begin
    let i = Domain.DLS.get slot_key * stride in
    g.gv.(i) <- v;
    g.gn.(i) <- g.gn.(i) + 1
  end

let add_time t s =
  if Atomic.get on then begin
    let i = Domain.DLS.get slot_key * stride in
    t.tn.(i) <- t.tn.(i) + 1;
    t.ts.(i) <- t.ts.(i) +. s
  end

let time t f =
  if Atomic.get on then begin
    let t0 = Rc_util.Timer.start () in
    let r = f () in
    add_time t (Rc_util.Timer.elapsed_s t0);
    r
  end
  else f ()

(* bucket k holds values needing k bits: 0 -> v <= 0, 1 -> 1, 2 -> 2..3,
   3 -> 4..7, ...; the top bucket absorbs everything wider *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      Stdlib.incr b;
      v := !v lsr 1
    done;
    min !b (n_buckets - 1)
  end

let observe hist v =
  if Atomic.get on then begin
    let base = Domain.DLS.get slot_key * h_stride in
    let a = hist.h in
    a.(base) <- a.(base) + 1;
    a.(base + 1) <- a.(base + 1) + v;
    if v < a.(base + 2) then a.(base + 2) <- v;
    if v > a.(base + 3) then a.(base + 3) <- v;
    let b = base + 4 + bucket_of v in
    a.(b) <- a.(b) + 1
  end

(* ---- merged reads (sync points only) ---------------------------------- *)

type value =
  | Count of int
  | Gauge of float
  | Timer of { calls : int; total_s : float }
  | Hist of { n : int; sum : int; min : int; max : int; buckets : int array }

let count c =
  let acc = ref 0 in
  for s = 0 to capacity - 1 do
    acc := !acc + c.c.(s * stride)
  done;
  !acc

let gauge_value g =
  (* the shard that recorded the most sets wins; ties go to the lowest
     slot.  Exact last-write-wins under sequential use (one shard). *)
  let best = ref (-1) and best_n = ref 0 in
  for s = 0 to capacity - 1 do
    let n = g.gn.(s * stride) in
    if n > !best_n then begin
      best_n := n;
      best := s
    end
  done;
  if !best < 0 then nan else g.gv.(!best * stride)

let timer_value t =
  let calls = ref 0 and total = ref 0.0 in
  for s = 0 to capacity - 1 do
    calls := !calls + t.tn.(s * stride);
    total := !total +. t.ts.(s * stride)
  done;
  Timer { calls = !calls; total_s = !total }

let hist_value hist =
  let n = ref 0 and sum = ref 0 and mn = ref max_int and mx = ref min_int in
  let buckets = Array.make n_buckets 0 in
  for s = 0 to capacity - 1 do
    let base = s * h_stride in
    let a = hist.h in
    if a.(base) > 0 then begin
      n := !n + a.(base);
      sum := !sum + a.(base + 1);
      if a.(base + 2) < !mn then mn := a.(base + 2);
      if a.(base + 3) > !mx then mx := a.(base + 3);
      for b = 0 to n_buckets - 1 do
        buckets.(b) <- buckets.(b) + a.(base + 4 + b)
      done
    end
  done;
  if !n = 0 then Hist { n = 0; sum = 0; min = 0; max = 0; buckets }
  else Hist { n = !n; sum = !sum; min = !mn; max = !mx; buckets }

let value_of_cell = function
  | C c -> Count (count c)
  | G g -> Gauge (gauge_value g)
  | T t -> timer_value t
  | H h -> hist_value h

type snapshot = (string * value) list

let snapshot ?(reg = global) () =
  if not (Atomic.get on) then []
  else begin
    Mutex.lock reg.lock;
    let entries = Hashtbl.fold (fun name cell acc -> (name, cell) :: acc) reg.cells [] in
    Mutex.unlock reg.lock;
    entries
    |> List.map (fun (name, cell) -> (name, value_of_cell cell))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  end

let value_of ?(reg = global) name =
  Mutex.lock reg.lock;
  let cell = Hashtbl.find_opt reg.cells name in
  Mutex.unlock reg.lock;
  Option.map value_of_cell cell

let reset ?(reg = global) () =
  Mutex.lock reg.lock;
  Hashtbl.iter
    (fun _ cell ->
      match cell with
      | C c -> Array.fill c.c 0 (Array.length c.c) 0
      | G g ->
          Array.fill g.gv 0 (Array.length g.gv) 0.0;
          Array.fill g.gn 0 (Array.length g.gn) 0
      | T t ->
          Array.fill t.tn 0 (Array.length t.tn) 0;
          Array.fill t.ts 0 (Array.length t.ts) 0.0
      | H h ->
          Array.fill h.h 0 (Array.length h.h) 0;
          init_histogram_slots h.h)
    reg.cells;
  Mutex.unlock reg.lock

(* ---- snapshot algebra ------------------------------------------------- *)

let value_delta before after =
  match (before, after) with
  | Some (Count b), Count a -> if a = b then None else Some (Count (a - b))
  | None, Count a -> if a = 0 then None else Some (Count a)
  | Some (Gauge b), Gauge a ->
      if a = b || (Float.is_nan a && Float.is_nan b) then None else Some (Gauge a)
  | None, Gauge a -> if Float.is_nan a then None else Some (Gauge a)
  | Some (Timer b), Timer a ->
      if a.calls = b.calls then None
      else Some (Timer { calls = a.calls - b.calls; total_s = a.total_s -. b.total_s })
  | None, (Timer a as v) -> if a.calls = 0 then None else Some v
  | Some (Hist b), Hist a ->
      if a.n = b.n then None
      else
        (* counts and sums subtract exactly; min/max cannot be un-merged,
           so the delta reports the cumulative extremes seen so far *)
        Some
          (Hist
             {
               n = a.n - b.n;
               sum = a.sum - b.sum;
               min = a.min;
               max = a.max;
               buckets = Array.init n_buckets (fun i -> a.buckets.(i) - b.buckets.(i));
             })
  | None, (Hist a as v) -> if a.n = 0 then None else Some v
  | _ -> Some after (* kind changed: report the new value *)

let diff ~before ~after =
  List.filter_map
    (fun (name, a) -> Option.map (fun d -> (name, d)) (value_delta (List.assoc_opt name before) a))
    after

let strip_timers snap =
  List.filter (fun (_, v) -> match v with Timer _ -> false | _ -> true) snap

(* ---- fixed export table (shared-memory segment) ------------------------ *)

(* The solver counters exported field-by-field into the serve tier's
   mmap'd counter segment (Rc_serve.Shm).  The order is part of the shm
   layout version: append within a version, never reorder — readers
   index by position.  Names that are not interned in the running
   process export as 0. *)
let export_names =
  [|
    "sparse.cg.solves";
    "sparse.cg.iterations";
    "lp.simplex.pivots";
    "netflow.mcmf.solves";
    "netflow.mcmf.augmentations";
    "netflow.mcmf.flow_units";
    "netflow.assignment.replays";
    "netflow.assignment.warm_solves";
    "assign.candidate_solves";
    "assign.tapcache.hits";
    "assign.tapcache.misses";
    "timing.sta.analyses";
    "timing.sta.pairs";
    "timing.sta.cone_recomputes";
    "timing.sta.cone_reuses";
    "ilp.rounding.rounds";
    (* appended for the ECO session tier (worker rows self-describe
       their solver-field count, so older readers stay compatible) *)
    "serve.session.opens";
    "serve.session.edits";
    "serve.session.evictions";
    "serve.session.rehydrations";
    "serve.session.resident";
  |]

(* collapse any cell kind to one shm-exportable integer *)
let export_value = function
  | Count n -> n
  | Gauge v -> if Float.is_nan v then 0 else int_of_float (Float.round v)
  | Timer { total_s; _ } -> int_of_float (Float.round (total_s *. 1000.0))
  | Hist { n; _ } -> n

let export_values ?reg () =
  Array.map
    (fun name -> match value_of ?reg name with None -> 0 | Some v -> export_value v)
    export_names

(* ---- rendering -------------------------------------------------------- *)

let value_text = function
  | Count n -> string_of_int n
  | Gauge v -> Printf.sprintf "%.4g" v
  | Timer { calls; total_s } -> Printf.sprintf "%d calls, %.3f s" calls total_s
  | Hist { n; sum; min; max; _ } ->
      if n = 0 then "empty"
      else
        Printf.sprintf "n %d, sum %d, min %d, max %d, mean %.1f" n sum min max
          (float_of_int sum /. float_of_int n)

let render ?(title = "Metrics") snap =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  if snap = [] then Buffer.add_string buf "  (registry disabled or empty)\n"
  else begin
    let w = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 snap in
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s  %s\n" w name (value_text v)))
      snap
  end;
  Buffer.contents buf

let value_to_json =
  let module J = Rc_util.Json in
  function
  | Count n -> J.Int n
  | Gauge v -> J.Float v
  | Timer { calls; total_s } ->
      J.Obj [ ("calls", J.Int calls); ("total_s", J.Float total_s) ]
  | Hist { n; sum; min; max; buckets } ->
      J.Obj
        [
          ("n", J.Int n);
          ("sum", J.Int sum);
          ("min", J.Int min);
          ("max", J.Int max);
          ("log2_buckets", J.List (Array.to_list (Array.map (fun b -> J.Int b) buckets)));
        ]

let to_json snap =
  Rc_util.Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) snap)

(** A small report-document model — titled sections of prose and tables
    — with GitHub-Markdown and JSON renderers.

    This module is layout only; it knows nothing about the flow.  The
    paper-style report content is assembled by [Rc_core.Paper_report]
    and rendered by [rotary_cli report]. *)

(** One table cell. Numeric constructors right-align their column in
    Markdown and serialize as JSON numbers. *)
type cell =
  | Str of string
  | Int of int
  | Float of float * int  (** value and decimal places; [nan] renders "-" *)
  | Pct of float  (** rendered ["12.3 %"] in Markdown, a plain number in JSON *)

type table = { title : string; columns : string list; rows : cell list list }

type section = {
  heading : string;
  prose : string;
  tables : table list;
  data : (string * Rc_util.Json.t) list;
      (** extra machine-readable payload (e.g. raw metric snapshots);
          emitted only in the JSON rendering, spliced into the section
          object *)
}

type doc = { title : string; intro : string; sections : section list }

val section :
  ?prose:string ->
  ?tables:table list ->
  ?data:(string * Rc_util.Json.t) list ->
  string ->
  section
(** [section heading] with optional prose, tables and JSON payload. *)

val cell_text : cell -> string

val to_markdown : doc -> string
(** GitHub-flavoured Markdown: [#]/[##]/[###] headings and pipe
    tables. *)

val to_json : doc -> Rc_util.Json.t
(** The whole document as one JSON object (schema in
    [docs/metrics.md]). *)

(** Process-global solver-metrics registry: counters, gauges, timers and
    log2 histograms with near-zero overhead when disabled and safe,
    deterministic use under {!Rc_par.Pool}.

    {1 Model}

    A metric is a named {e cell} interned once (typically in a
    module-level [let] next to the instrumented code) and updated through
    the recording functions below.  Every cell is sharded per domain:
    recording writes only the calling domain's cache-line-padded slot, so
    parallel regions never contend and never lose updates.  Reads
    ({!snapshot}, {!count}, …) merge the shards in fixed slot order and
    must only happen at sync points — after parallel regions have
    quiesced (e.g. after [Rc_par.Pool.for_] returns), which is when the
    pool's join provides the happens-before edge.

    Determinism: integer merges (counters, histograms) are commutative
    sums, so they are bit-identical for any job count.  Timer totals are
    float sums — deterministic for a fixed job count, but summation order
    across shards can differ across job counts.  Gauges are
    last-write-wins per domain; under parallel writers the shard with the
    most writes wins (ties to the lowest slot), so prefer setting gauges
    from sequential code.

    {1 Overhead}

    The registry starts disabled.  Every recording function first reads
    one atomic flag and returns immediately when it is unset — no
    allocation, no clock read, no hash lookup — so instrumentation can
    stay on hot paths unconditionally.  Enable with {!set_enabled}. *)

type t
(** A registry: a mutable name → cell table. *)

val global : t
(** The process-global registry all solver layers record into. *)

val enabled : unit -> bool
(** [enabled ()] is [true] iff recording is on. Useful to guard
    instrumentation whose {e inputs} are expensive to compute. *)

val set_enabled : bool -> unit
(** Turn recording on or off (off by default). The flag is global:
    flipping it mid-parallel-region affects all domains. *)

val reset : ?reg:t -> unit -> unit
(** Zero every cell (the cells stay interned). Call only at sync
    points. *)

(** {1 Cells}

    Interning is idempotent: the same name returns the same cell.
    Registering a name under two different kinds raises
    [Invalid_argument]. *)

type counter
(** A monotonically-growing integer (per-domain sharded). *)

type gauge
(** A last-write-wins float (see determinism caveat above). *)

type timer
(** A call-count plus total-seconds accumulator. *)

type histogram
(** An integer distribution: count/sum/min/max plus 32 log2 buckets
    (bucket 0 holds values ≤ 0; bucket [k ≥ 1] holds values with [k]
    significant bits, i.e. [2^(k-1) .. 2^k - 1]; the top bucket is
    open-ended). *)

val counter : ?reg:t -> string -> counter
val gauge : ?reg:t -> string -> gauge
val timer : ?reg:t -> string -> timer
val histogram : ?reg:t -> string -> histogram

(** {1 Recording (hot path)} *)

val add : counter -> int -> unit
val incr : counter -> unit
val set_gauge : gauge -> float -> unit

val add_time : timer -> float -> unit
(** [add_time t s] records one call taking [s] seconds. *)

val time : timer -> (unit -> 'a) -> 'a
(** [time t f] runs [f] and records its wall time; when the registry is
    disabled it is exactly [f ()] (no clock reads). *)

val observe : histogram -> int -> unit

(** {1 Merged reads (sync points only)} *)

val count : counter -> int
(** Sum of the counter over all shards. *)

(** The merged value of a cell. *)
type value =
  | Count of int
  | Gauge of float  (** [nan] when the gauge was never set *)
  | Timer of { calls : int; total_s : float }
  | Hist of { n : int; sum : int; min : int; max : int; buckets : int array }

type snapshot = (string * value) list
(** Merged values, sorted by metric name. *)

val snapshot : ?reg:t -> unit -> snapshot
(** All interned cells and their merged values; [[]] when the registry
    is disabled. *)

val value_of : ?reg:t -> string -> value option
(** The merged value of one metric by name, if interned. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** [diff ~before ~after] keeps only the metrics that changed, with
    counters / timer calls / histogram counts subtracted and gauges
    taking their [after] value. Histogram [min]/[max] cannot be
    un-merged and report the cumulative extremes from [after]. *)

val strip_timers : snapshot -> snapshot
(** Drop all [Timer] entries — used where output must be reproducible
    (golden tests, cross-job comparisons). *)

(** {1 Fixed export table (shared-memory segment)}

    The serve tier's supervisor exports each worker's metrics through an
    mmap'd counter segment with a versioned fixed layout
    ([Rc_serve.Shm], layout documented in [docs/operations.md]).  The
    table below names the solver counters in that layout, {e in order}:
    the order is part of the shm layout version — append within a
    version, never reorder. *)

val export_names : string array
(** The exported metric names, in shm field order. *)

val export_values : ?reg:t -> unit -> int array
(** Current merged values in {!export_names} order, collapsed to one
    integer per cell: counters and histogram counts as-is, gauges
    rounded, timers as total milliseconds.  Unlike {!snapshot} this
    reads the cells even while recording is disabled (the arrays always
    exist); names not interned in this process export as 0. *)

(** {1 Rendering} *)

val value_text : value -> string
val render : ?title:string -> snapshot -> string

val to_json : snapshot -> Rc_util.Json.t
(** An object keyed by metric name; counters become ints, gauges floats,
    timers [{calls; total_s}] objects, histograms
    [{n; sum; min; max; log2_buckets}] objects. *)

(** {1 Shard plumbing (used by [Rc_par.Pool])} *)

val set_shard_slot : int -> unit
(** Pin the calling domain to shard slot [0..63]. Called by pool worker
    domains at startup with their stable worker id; the pool guarantees
    no two live domains share an id. Out-of-range ids are ignored. *)

val shard_slot : unit -> int
(** The calling domain's shard slot (a lazily-drawn slot in [64..127]
    for domains that never called {!set_shard_slot}). *)

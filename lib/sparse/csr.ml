type ivec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n_rows : int;
  n_cols : int;
  row_ptr : ivec;  (* length n_rows + 1 *)
  col_idx : ivec;
  values : Vec.t;
}

external spmv_unsafe : ivec -> ivec -> Vec.t -> Vec.t -> Vec.t -> unit = "rc_csr_spmv"
  [@@noalloc]

let rows t = t.n_rows
let cols t = t.n_cols
let nnz t = Vec.length t.values

let ivec_of_array a =
  let v = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i x -> v.{i} <- x) a;
  v

let of_triplets ~rows:n_rows ~cols:n_cols triplets =
  if n_rows < 0 || n_cols < 0 then invalid_arg "Csr.of_triplets: negative dims";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= n_rows || j < 0 || j >= n_cols then
        invalid_arg "Csr.of_triplets: index out of range")
    triplets;
  (* Accumulate duplicates per row with a per-row association table. *)
  let row_tbls = Array.init n_rows (fun _ -> Hashtbl.create 4) in
  List.iter
    (fun (i, j, v) ->
      let tbl = row_tbls.(i) in
      let cur = Option.value (Hashtbl.find_opt tbl j) ~default:0.0 in
      Hashtbl.replace tbl j (cur +. v))
    triplets;
  let row_entries =
    Array.map
      (fun tbl ->
        let entries =
          Hashtbl.fold (fun j v acc -> if v <> 0.0 then (j, v) :: acc else acc) tbl []
        in
        List.sort (fun (a, _) (b, _) -> compare a b) entries)
      row_tbls
  in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 row_entries in
  let row_ptr = Array.make (n_rows + 1) 0 in
  let col_idx = Array.make total 0 and values = Array.make total 0.0 in
  let k = ref 0 in
  Array.iteri
    (fun i entries ->
      row_ptr.(i) <- !k;
      List.iter
        (fun (j, v) ->
          col_idx.(!k) <- j;
          values.(!k) <- v;
          incr k)
        entries)
    row_entries;
  row_ptr.(n_rows) <- !k;
  {
    n_rows;
    n_cols;
    row_ptr = ivec_of_array row_ptr;
    col_idx = ivec_of_array col_idx;
    values = Vec.of_array values;
  }

(* Array-buffer twin of [of_triplets], for million-entry assemblies: no
   per-row hashtables, no boxed triplet list.  Entries are the first
   [len] slots of three parallel arrays.  Duplicate (i, j) slots are
   summed left-associatively in REVERSE entry order — exactly the order
   [of_triplets] sums a prepend-built list — and exact-zero sums are
   dropped, so a caller that switches from prepending triplets to
   pushing array entries gets a bit-identical matrix. *)
let of_entries ~rows:n_rows ~cols:n_cols ~len ri ci vs =
  if n_rows < 0 || n_cols < 0 then invalid_arg "Csr.of_entries: negative dims";
  if len < 0 || len > Array.length ri || len > Array.length ci || len > Array.length vs
  then invalid_arg "Csr.of_entries: bad length";
  for k = 0 to len - 1 do
    if ri.(k) < 0 || ri.(k) >= n_rows || ci.(k) < 0 || ci.(k) >= n_cols then
      invalid_arg "Csr.of_entries: index out of range"
  done;
  (* stable counting sort of entry slots into rows, iterating k
     descending so each row's slot list is in reverse entry order *)
  let count = Array.make (n_rows + 1) 0 in
  for k = 0 to len - 1 do
    count.(ri.(k) + 1) <- count.(ri.(k) + 1) + 1
  done;
  for i = 1 to n_rows do
    count.(i) <- count.(i) + count.(i - 1)
  done;
  let start = Array.copy count in
  let slot = Array.make len 0 in
  let cursor = Array.copy count in
  for k = len - 1 downto 0 do
    let i = ri.(k) in
    slot.(cursor.(i)) <- k;
    cursor.(i) <- cursor.(i) + 1
  done;
  let row_ptr = Array.make (n_rows + 1) 0 in
  let col_idx = Array.make len 0 and values = Array.make len 0.0 in
  let out = ref 0 in
  for i = 0 to n_rows - 1 do
    row_ptr.(i) <- !out;
    let lo = start.(i) and hi = start.(i + 1) in
    if hi > lo then begin
      (* order the row's slots by column; ties keep descending entry
         index, i.e. reverse entry order, so duplicate sums below run in
         list order of the prepend-built equivalent *)
      let seg = Array.sub slot lo (hi - lo) in
      Array.sort
        (fun a b ->
          let c = compare ci.(a) ci.(b) in
          if c <> 0 then c else compare b a)
        seg;
      let k = ref 0 and nseg = Array.length seg in
      while !k < nseg do
        let col = ci.(seg.(!k)) in
        let acc = ref vs.(seg.(!k)) in
        incr k;
        while !k < nseg && ci.(seg.(!k)) = col do
          acc := !acc +. vs.(seg.(!k));
          incr k
        done;
        if !acc <> 0.0 then begin
          col_idx.(!out) <- col;
          values.(!out) <- !acc;
          incr out
        end
      done
    end
  done;
  row_ptr.(n_rows) <- !out;
  {
    n_rows;
    n_cols;
    row_ptr = ivec_of_array row_ptr;
    col_idx = ivec_of_array (Array.sub col_idx 0 !out);
    values = Vec.of_array (Array.sub values 0 !out);
  }

let get t i j =
  if i < 0 || i >= t.n_rows || j < 0 || j >= t.n_cols then
    invalid_arg "Csr.get: index out of range";
  let lo = ref t.row_ptr.{i} and hi = ref (t.row_ptr.{i + 1} - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.{mid} in
    if c = j then begin
      result := t.values.{mid};
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let spmv t x y =
  if Vec.length x <> t.n_cols || Vec.length y <> t.n_rows then
    invalid_arg "Csr.spmv: size mismatch";
  spmv_unsafe t.row_ptr t.col_idx t.values x y

let mul_vec_into t x y =
  if Array.length x <> t.n_cols || Array.length y <> t.n_rows then
    invalid_arg "Csr.mul_vec_into: size mismatch";
  for i = 0 to t.n_rows - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.{i} to t.row_ptr.{i + 1} - 1 do
      acc := !acc +. (t.values.{k} *. x.(t.col_idx.{k}))
    done;
    y.(i) <- !acc
  done

let mul_vec t x =
  let y = Array.make t.n_rows 0.0 in
  mul_vec_into t x y;
  y

let diag_into_vec t out =
  if t.n_rows <> t.n_cols then invalid_arg "Csr.diag_into_vec: not square";
  if Vec.length out <> t.n_rows then invalid_arg "Csr.diag_into_vec: size mismatch";
  for i = 0 to t.n_rows - 1 do
    out.{i} <- get t i i
  done

let diagonal_into t out =
  if t.n_rows <> t.n_cols then invalid_arg "Csr.diagonal_into: not square";
  if Array.length out <> t.n_rows then invalid_arg "Csr.diagonal_into: size mismatch";
  for i = 0 to t.n_rows - 1 do
    out.(i) <- get t i i
  done

let diagonal t =
  if t.n_rows <> t.n_cols then invalid_arg "Csr.diagonal: not square";
  Array.init t.n_rows (fun i -> get t i i)

let transpose t =
  let triplets = ref [] in
  for i = 0 to t.n_rows - 1 do
    for k = t.row_ptr.{i} to t.row_ptr.{i + 1} - 1 do
      triplets := (t.col_idx.{k}, i, t.values.{k}) :: !triplets
    done
  done;
  of_triplets ~rows:t.n_cols ~cols:t.n_rows !triplets

let iter_row t i f =
  if i < 0 || i >= t.n_rows then invalid_arg "Csr.iter_row: row out of range";
  for k = t.row_ptr.{i} to t.row_ptr.{i + 1} - 1 do
    f t.col_idx.{k} t.values.{k}
  done

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill v 0.0;
  v

let length = Bigarray.Array1.dim

let of_array a =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i x -> v.{i} <- x) a;
  v

let to_array v = Array.init (length v) (fun i -> v.{i})
let fill v x = Bigarray.Array1.fill v x

let blit src dst =
  if length src <> length dst then invalid_arg "Vec.blit: size mismatch";
  Bigarray.Array1.blit src dst

(* C kernels for the inner loops where OCaml float boxing and bounds
   checks bite.  All accumulate/update in ascending index order, exactly
   matching the sequential OCaml loops they replaced — results are
   bit-identical.  [@@noalloc] is safe: none allocate or raise. *)

external dot_unsafe : t -> t -> (float[@unboxed]) = "rc_vec_dot_byte" "rc_vec_dot"
  [@@noalloc]

external axpy_unsafe : (float[@unboxed]) -> t -> t -> unit
  = "rc_vec_axpy_byte" "rc_vec_axpy"
  [@@noalloc]

external axmy_unsafe : (float[@unboxed]) -> t -> t -> unit
  = "rc_vec_axmy_byte" "rc_vec_axmy"
  [@@noalloc]

external xpby_unsafe : t -> (float[@unboxed]) -> t -> unit
  = "rc_vec_xpby_byte" "rc_vec_xpby"
  [@@noalloc]

external had_unsafe : t -> t -> t -> unit = "rc_vec_had" [@@noalloc]
external rsub_unsafe : t -> t -> unit = "rc_vec_rsub" [@@noalloc]

let check2 name a b = if length a <> length b then invalid_arg (name ^ ": size mismatch")

let dot a b =
  check2 "Vec.dot" a b;
  dot_unsafe a b

let norm2 a = sqrt (dot a a)

let axpy a x y =
  check2 "Vec.axpy" x y;
  axpy_unsafe a x y

let axmy a x y =
  check2 "Vec.axmy" x y;
  axmy_unsafe a x y

let xpby z b p =
  check2 "Vec.xpby" z p;
  xpby_unsafe z b p

let had a b out =
  check2 "Vec.had" a b;
  check2 "Vec.had" a out;
  had_unsafe a b out

let rsub b r =
  check2 "Vec.rsub" b r;
  rsub_unsafe b r

(** Compressed sparse row matrices.

    Built once from coordinate triplets (duplicates are summed, which is
    exactly what assembling a quadratic-placement Laplacian needs), then
    used for fast mat-vec products inside conjugate gradient.

    Storage is flat Bigarray (int row pointers / column indices, float64
    values) so the {!spmv} C kernel streams the structure without
    boxing; the [float array] entry points remain for callers outside
    the hot path and produce bit-identical results. *)

type t

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Assemble from [(row, col, value)] triplets; duplicate coordinates
    are accumulated, exact zeros are kept out of the structure.
    @raise Invalid_argument on out-of-range indices or negative dims. *)

val of_entries :
  rows:int -> cols:int -> len:int -> int array -> int array -> float array -> t
(** [of_entries ~rows ~cols ~len ri ci vs] assembles from the first
    [len] slots of three parallel entry arrays — the million-entry
    counterpart of {!of_triplets} (counting sort, no per-row tables,
    no boxed list).  Duplicates are summed in reverse entry order and
    exact-zero sums dropped, which is precisely how {!of_triplets}
    treats a list built by prepending the same entries, so switching a
    caller from one to the other is bit-identical.
    @raise Invalid_argument on out-of-range indices, negative dims or a
    bad [len]. *)

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val get : t -> int -> int -> float
(** Value at (i, j); 0. when the entry is structurally absent.
    Logarithmic in the row's nonzero count. *)

val mul_vec : t -> float array -> float array
(** [mul_vec a x] is [a * x]. @raise Invalid_argument on size mismatch. *)

val mul_vec_into : t -> float array -> float array -> unit
(** Like {!mul_vec} but writes into a caller-provided output vector. *)

val spmv : t -> Vec.t -> Vec.t -> unit
(** [spmv a x y] sets [y <- a * x] through the C kernel.  Row sums
    accumulate left to right, exactly like {!mul_vec_into} — the two
    entry points are bit-identical.  @raise Invalid_argument on size
    mismatch. *)

val diag_into_vec : t -> Vec.t -> unit
(** {!diagonal_into} writing into a {!Vec.t} (square matrices only). *)

val diagonal : t -> float array
(** The main diagonal as a dense vector (square matrices only). *)

val diagonal_into : t -> float array -> unit
(** Like {!diagonal} but writes into a caller-provided vector.
    @raise Invalid_argument on size mismatch or a non-square matrix. *)

val transpose : t -> t

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** Iterate the nonzeros [(col, value)] of one row in column order. *)

type outcome = {
  x : float array;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let m_solves = Rc_obs.Metrics.counter "sparse.cg.solves"
let m_iterations = Rc_obs.Metrics.counter "sparse.cg.iterations"
let m_unconverged = Rc_obs.Metrics.counter "sparse.cg.unconverged"

(* Scratch buffers of one solve, reusable across solves of the same
   dimension.  Quadratic placement solves dozens of same-size systems
   (two per spreading round); reusing the buffers removes seven n-vector
   allocations per solve.  All vectors are flat float64 Bigarrays so the
   Vec/Csr C kernels stream them unboxed; [xv]/[bv] hold the iterate and
   rhs for the kernels' benefit, and only the returned solution is
   allocated fresh (as a plain float array, for the callers). *)
type workspace = {
  inv_diag : Vec.t;
  r : Vec.t;  (* residual *)
  z : Vec.t;  (* preconditioned residual *)
  p : Vec.t;  (* search direction *)
  ap : Vec.t;  (* A p *)
  xv : Vec.t;  (* iterate *)
  bv : Vec.t;  (* rhs *)
}

let workspace n =
  if n < 0 then invalid_arg "Cg.workspace: negative size";
  {
    inv_diag = Vec.create n;
    r = Vec.create n;
    z = Vec.create n;
    p = Vec.create n;
    ap = Vec.create n;
    xv = Vec.create n;
    bv = Vec.create n;
  }

let solve ?ws ?max_iter ?(tol = 1e-8) ?x0 a b =
  let n = Csr.rows a in
  if Csr.cols a <> n then invalid_arg "Cg.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Cg.solve: rhs size mismatch";
  let max_iter = Option.value max_iter ~default:(4 * n) in
  let ws =
    match ws with
    | Some w ->
        if Vec.length w.r <> n then invalid_arg "Cg.solve: workspace size mismatch";
        w
    | None -> workspace n
  in
  let inv_diag = ws.inv_diag and r = ws.r and z = ws.z and p = ws.p and ap = ws.ap in
  let x = ws.xv and bv = ws.bv in
  (match x0 with
  | None -> Vec.fill x 0.0
  | Some v ->
      if Array.length v <> n then invalid_arg "Cg.solve: x0 size mismatch";
      for i = 0 to n - 1 do
        x.{i} <- v.(i)
      done);
  for i = 0 to n - 1 do
    bv.{i} <- b.(i)
  done;
  Csr.diag_into_vec a inv_diag;
  for i = 0 to n - 1 do
    inv_diag.{i} <- (if Float.abs inv_diag.{i} > 1e-300 then 1.0 /. inv_diag.{i} else 1.0)
  done;
  Csr.spmv a x r;
  Vec.rsub bv r;
  Vec.had inv_diag r z;
  Vec.blit z p;
  let b_norm = Float.max (Vec.norm2 bv) 1e-300 in
  let rz = ref (Vec.dot r z) in
  let iter = ref 0 in
  let res = ref (Vec.norm2 r) in
  while !res /. b_norm > tol && !iter < max_iter do
    Csr.spmv a p ap;
    let pap = Vec.dot p ap in
    if Float.abs pap < 1e-300 then iter := max_iter
    else begin
      let alpha = !rz /. pap in
      Vec.axpy alpha p x;
      Vec.axmy alpha ap r;
      Vec.had inv_diag r z;
      let rz' = Vec.dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      Vec.xpby z beta p;
      res := Vec.norm2 r;
      incr iter
    end
  done;
  let converged = !res /. b_norm <= tol in
  Rc_obs.Metrics.incr m_solves;
  Rc_obs.Metrics.add m_iterations !iter;
  if not converged then Rc_obs.Metrics.incr m_unconverged;
  { x = Vec.to_array x; iterations = !iter; residual_norm = !res; converged }

type outcome = {
  x : float array;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let m_solves = Rc_obs.Metrics.counter "sparse.cg.solves"
let m_iterations = Rc_obs.Metrics.counter "sparse.cg.iterations"
let m_unconverged = Rc_obs.Metrics.counter "sparse.cg.unconverged"

(* Scratch buffers of one solve, reusable across solves of the same
   dimension.  Quadratic placement solves dozens of same-size systems
   (two per spreading round); reusing the residual/direction/
   preconditioner buffers removes four n-vector allocations per solve.
   Only [x] (the returned solution) is allocated fresh. *)
type workspace = {
  inv_diag : float array;
  r : float array;  (* residual *)
  z : float array;  (* preconditioned residual *)
  p : float array;  (* search direction *)
  ap : float array;  (* A p *)
}

let workspace n =
  if n < 0 then invalid_arg "Cg.workspace: negative size";
  {
    inv_diag = Array.make n 0.0;
    r = Array.make n 0.0;
    z = Array.make n 0.0;
    p = Array.make n 0.0;
    ap = Array.make n 0.0;
  }

let dot a b =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 a = sqrt (dot a a)

let solve ?ws ?max_iter ?(tol = 1e-8) ?x0 a b =
  let n = Csr.rows a in
  if Csr.cols a <> n then invalid_arg "Cg.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Cg.solve: rhs size mismatch";
  let max_iter = Option.value max_iter ~default:(4 * n) in
  let x =
    match x0 with
    | None -> Array.make n 0.0
    | Some v ->
        if Array.length v <> n then invalid_arg "Cg.solve: x0 size mismatch";
        Array.copy v
  in
  let ws =
    match ws with
    | Some w ->
        if Array.length w.r <> n then invalid_arg "Cg.solve: workspace size mismatch";
        w
    | None -> workspace n
  in
  let inv_diag = ws.inv_diag and r = ws.r and z = ws.z and p = ws.p and ap = ws.ap in
  Csr.diagonal_into a inv_diag;
  for i = 0 to n - 1 do
    inv_diag.(i) <- (if Float.abs inv_diag.(i) > 1e-300 then 1.0 /. inv_diag.(i) else 1.0)
  done;
  Csr.mul_vec_into a x r;
  for i = 0 to n - 1 do
    r.(i) <- b.(i) -. r.(i)
  done;
  for i = 0 to n - 1 do
    z.(i) <- inv_diag.(i) *. r.(i);
    p.(i) <- z.(i)
  done;
  let b_norm = Float.max (norm2 b) 1e-300 in
  let rz = ref (dot r z) in
  let iter = ref 0 in
  let res = ref (norm2 r) in
  while !res /. b_norm > tol && !iter < max_iter do
    Csr.mul_vec_into a p ap;
    let pap = dot p ap in
    if Float.abs pap < 1e-300 then iter := max_iter
    else begin
      let alpha = !rz /. pap in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (alpha *. p.(i));
        r.(i) <- r.(i) -. (alpha *. ap.(i))
      done;
      for i = 0 to n - 1 do
        z.(i) <- inv_diag.(i) *. r.(i)
      done;
      let rz' = dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      for i = 0 to n - 1 do
        p.(i) <- z.(i) +. (beta *. p.(i))
      done;
      res := norm2 r;
      incr iter
    end
  done;
  let converged = !res /. b_norm <= tol in
  Rc_obs.Metrics.incr m_solves;
  Rc_obs.Metrics.add m_iterations !iter;
  if not converged then Rc_obs.Metrics.incr m_unconverged;
  { x; iterations = !iter; residual_norm = !res; converged }

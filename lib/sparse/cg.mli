(** Jacobi-preconditioned conjugate gradient for symmetric positive
    definite systems — the inner solver of quadratic placement. *)

type outcome = {
  x : float array;  (** The (approximate) solution. *)
  iterations : int;
  residual_norm : float;  (** Final 2-norm of [b - A x]. *)
  converged : bool;
}

type workspace
(** Reusable scratch buffers (residual, preconditioned residual, search
    direction, [A p], inverse diagonal, iterate, rhs) for systems of one
    fixed size, held as flat float64 Bigarrays streamed by the {!Vec} C
    kernels.  Quadratic placement solves many same-size systems back to
    back; passing a workspace removes the per-solve vector allocations
    without changing a single bit of the result. *)

val workspace : int -> workspace
(** A workspace for [n]-dimensional systems. *)

val solve :
  ?ws:workspace ->
  ?max_iter:int ->
  ?tol:float ->
  ?x0:float array ->
  Csr.t ->
  float array ->
  outcome
(** [solve a b] iterates until the relative residual drops below [tol]
    (default 1e-8) or [max_iter] (default [4 * n]) is reached. [x0]
    warm-starts the iteration (defaults to the zero vector). [ws]
    provides scratch buffers (default: freshly allocated); the returned
    solution is always a fresh array, so a workspace may be reused for
    the next solve immediately — but never by two concurrent solves.
    @raise Invalid_argument on dimension mismatch, non-square [a], or a
    workspace of the wrong size. *)

(** Flat unboxed float64 vectors (Bigarray) with C inner-loop kernels.

    The numeric core's working vectors live here instead of in [float
    array]: contiguous unboxed storage the C kernels stream without
    boxing or bounds checks, and that parallel regions can hand between
    domains without copying.

    Every kernel updates or accumulates in ascending index order — the
    same order as the sequential OCaml loop it replaced — so switching a
    caller to these kernels changes no result bit. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** A zero-filled vector of length [n]. *)

val length : t -> int
val of_array : float array -> t
val to_array : t -> float array
val fill : t -> float -> unit

val blit : t -> t -> unit
(** [blit src dst] copies [src] into [dst].
    @raise Invalid_argument on size mismatch (as all kernels below). *)

val dot : t -> t -> float
(** Dot product, accumulated in ascending index order. *)

val norm2 : t -> float
(** [sqrt (dot a a)]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y.(i) <- y.(i) +. a *. x.(i)]. *)

val axmy : float -> t -> t -> unit
(** [axmy a x y] sets [y.(i) <- y.(i) -. a *. x.(i)]. *)

val xpby : t -> float -> t -> unit
(** [xpby z b p] sets [p.(i) <- z.(i) +. b *. p.(i)]. *)

val had : t -> t -> t -> unit
(** [had a b out] sets [out.(i) <- a.(i) *. b.(i)] (Hadamard product). *)

val rsub : t -> t -> unit
(** [rsub b r] sets [r.(i) <- b.(i) -. r.(i)] — turns [A x] into the
    residual [b - A x] in place. *)

/* Inner-loop kernels for the sparse numeric core (Vec / Csr).
 *
 * All loops run in ascending index order so results are bit-identical
 * to the sequential OCaml loops they replace.  None allocate on the
 * OCaml heap or raise, so the externals are [@@noalloc]; the hot
 * entries take unboxed doubles, with _byte wrappers for bytecode. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>

#define VEC(v) ((double *)Caml_ba_data_val(v))
#define IVEC(v) ((intnat *)Caml_ba_data_val(v))
#define DIM(v) (Caml_ba_array_val(v)->dim[0])

CAMLprim double rc_vec_dot(value va, value vb)
{
    const double *a = VEC(va), *b = VEC(vb);
    intnat n = DIM(va);
    double s = 0.0;
    for (intnat i = 0; i < n; i++)
        s += a[i] * b[i];
    return s;
}

CAMLprim value rc_vec_dot_byte(value va, value vb)
{
    return caml_copy_double(rc_vec_dot(va, vb));
}

/* y += a * x */
CAMLprim value rc_vec_axpy(double a, value vx, value vy)
{
    const double *x = VEC(vx);
    double *y = VEC(vy);
    intnat n = DIM(vy);
    for (intnat i = 0; i < n; i++)
        y[i] += a * x[i];
    return Val_unit;
}

CAMLprim value rc_vec_axpy_byte(value a, value vx, value vy)
{
    return rc_vec_axpy(Double_val(a), vx, vy);
}

/* y -= a * x */
CAMLprim value rc_vec_axmy(double a, value vx, value vy)
{
    const double *x = VEC(vx);
    double *y = VEC(vy);
    intnat n = DIM(vy);
    for (intnat i = 0; i < n; i++)
        y[i] -= a * x[i];
    return Val_unit;
}

CAMLprim value rc_vec_axmy_byte(value a, value vx, value vy)
{
    return rc_vec_axmy(Double_val(a), vx, vy);
}

/* p = z + b * p */
CAMLprim value rc_vec_xpby(value vz, double b, value vp)
{
    const double *z = VEC(vz);
    double *p = VEC(vp);
    intnat n = DIM(vp);
    for (intnat i = 0; i < n; i++)
        p[i] = z[i] + b * p[i];
    return Val_unit;
}

CAMLprim value rc_vec_xpby_byte(value vz, value b, value vp)
{
    return rc_vec_xpby(vz, Double_val(b), vp);
}

/* out = a .* b */
CAMLprim value rc_vec_had(value va, value vb, value vout)
{
    const double *a = VEC(va), *b = VEC(vb);
    double *out = VEC(vout);
    intnat n = DIM(vout);
    for (intnat i = 0; i < n; i++)
        out[i] = a[i] * b[i];
    return Val_unit;
}

/* r = b - r */
CAMLprim value rc_vec_rsub(value vb, value vr)
{
    const double *b = VEC(vb);
    double *r = VEC(vr);
    intnat n = DIM(vr);
    for (intnat i = 0; i < n; i++)
        r[i] = b[i] - r[i];
    return Val_unit;
}

/* y = A x for CSR (row_ptr, col_idx, values); row accumulation is a
 * single left-to-right sum, matching Csr.mul_vec_into exactly. */
CAMLprim value rc_csr_spmv(value vrp, value vci, value vvals, value vx, value vy)
{
    const intnat *rp = IVEC(vrp), *ci = IVEC(vci);
    const double *vals = VEC(vvals), *x = VEC(vx);
    double *y = VEC(vy);
    intnat n_rows = DIM(vy);
    for (intnat i = 0; i < n_rows; i++) {
        double acc = 0.0;
        intnat hi = rp[i + 1];
        for (intnat k = rp[i]; k < hi; k++)
            acc += vals[k] * x[ci[k]];
        y[i] = acc;
    }
    return Val_unit;
}

(** Minimal JSON for machine-readable artifacts (e.g. the bench
    harness's [BENCH_results.json]) and the serve-protocol / checkpoint
    metadata: a pretty-printing emitter plus a strict recursive-descent
    parser.  [of_string (to_string v)] is [Ok v] for every value whose
    floats are finite (nan/infinity are emitted as [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** nan/infinity are emitted as [null]. *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), newline-terminated. *)

val to_line : t -> string
(** Single-line rendering (no trailing newline) for line-delimited
    protocols: same escaping and number formatting as {!to_string},
    without any inserted whitespace. *)

val to_file : string -> t -> unit
(** [to_file path v] writes {!to_string}[ v] to [path] (truncating). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    non-whitespace is an error).  Numbers without [.], [e] or [E] that
    fit in [int] parse as {!Int}, every other number as {!Float};
    [\uXXXX] escapes decode to UTF-8 (surrogate pairs supported).
    Errors are ["offset N: message"] strings, never exceptions. *)

val of_string_exn : string -> t
(** {!of_string}, raising [Failure] on malformed input. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on
    missing keys and non-objects. *)

val to_int_opt : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float_opt : t -> float option
(** [Float] and [Int] (widened). *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option

val to_list_opt : t -> t list option
(** [List items] only. *)

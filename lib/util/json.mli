(** Minimal JSON emitter for machine-readable artifacts (e.g. the bench
    harness's [BENCH_results.json]).  Emit-only: the repo writes these
    files for external consumers and never parses them back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** nan/infinity are emitted as [null]. *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), newline-terminated. *)

val to_file : string -> t -> unit
(** [to_file path v] writes {!to_string}[ v] to [path] (truncating). *)

(* Elapsed-time measurement on the OS monotonic clock (clock_gettime
   CLOCK_MONOTONIC via timer_stubs.c), not gettimeofday: intervals,
   service latency metrics and scheduler deadlines must be immune to
   wall-clock jumps.  The epoch is arbitrary (boot time on Linux), so
   values are only meaningful as differences. *)

external monotonic_ns : unit -> int64 = "rc_timer_monotonic_ns"

type t = int64

let now_ns = monotonic_ns

let now_s () = Int64.to_float (monotonic_ns ()) *. 1e-9

let start () = monotonic_ns ()

let elapsed_s t = Int64.to_float (Int64.sub (monotonic_ns ()) t) *. 1e-9

let time f =
  let t = start () in
  let r = f () in
  (r, elapsed_s t)

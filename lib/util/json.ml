(* Minimal JSON for machine-readable artifacts (BENCH_results), the
   serve protocol and checkpoint metadata: a pretty-printing emitter
   plus a strict recursive-descent parser.  The parser exists because
   the flow service reads requests and checkpoint headers back; it
   accepts exactly the JSON grammar (RFC 8259), no extensions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no nan/infinity *)
let number f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.12g" f

let rec emit buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf k;
          Buffer.add_string buf ": ";
          emit buf (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string v))

(* single-line rendering for line-delimited protocols *)
let rec emit_line buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit_line buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit_line buf item)
        fields;
      Buffer.add_char buf '}'

let to_line v =
  let buf = Buffer.create 256 in
  emit_line buf v;
  Buffer.contents buf

(* ---- parser ----------------------------------------------------------- *)

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

(* strict recursive-descent over the input string; [pos] is a cursor *)
type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let n = String.length c.s in
  while
    c.pos < n
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos (Printf.sprintf "expected %c, found %c" ch x)
  | None -> fail c.pos (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "invalid literal (expected %s)" word)

(* UTF-8 encode one scalar value (the \uXXXX path) *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch ->
        let d =
          match ch with
          | '0' .. '9' -> Char.code ch - Char.code '0'
          | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
          | _ -> fail c.pos "invalid \\u escape (expected hex digit)"
        in
        v := (!v * 16) + d
    | None -> fail c.pos "unterminated \\u escape");
    advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | None -> fail c.pos "unterminated escape"
        | Some ch ->
            advance c;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let u = hex4 c in
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* high surrogate: require the low half *)
                  expect c '\\';
                  expect c 'u';
                  let lo = hex4 c in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail c.pos "invalid low surrogate"
                  else
                    add_utf8 buf
                      (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else if u >= 0xDC00 && u <= 0xDFFF then
                  fail c.pos "unpaired low surrogate"
                else add_utf8 buf u
            | _ -> fail (c.pos - 1) "invalid escape character"));
        go ()
    | Some ch when Char.code ch < 0x20 -> fail c.pos "unescaped control character"
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  if peek c = Some '-' then advance c;
  let digits () =
    let seen = ref false in
    let rec go () =
      match peek c with
      | Some ('0' .. '9') ->
          seen := true;
          advance c;
          go ()
      | _ -> ()
    in
    go ();
    if not !seen then fail c.pos "expected digit"
  in
  (* integer part: 0 | [1-9][0-9]* *)
  (match peek c with
  | Some '0' -> advance c
  | Some ('1' .. '9') -> digits ()
  | _ -> fail c.pos "expected digit");
  (match peek c with
  | Some '.' ->
      is_float := true;
      advance c;
      digits ()
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* out of int range *)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "expected a JSON value, found end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> fail c.pos "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> fail c.pos "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character %c" ch)

let of_string s =
  let c = { s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail c.pos "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "offset %d: %s" pos msg)
  | exception Failure msg -> Error (Printf.sprintf "offset %d: %s" c.pos msg)

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error e -> failwith ("Json.of_string_exn: " ^ e)

(* ---- accessors -------------------------------------------------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

(** Elapsed-time measurement for experiment CPU columns, service latency
    metrics and scheduler deadlines.

    Backed by the OS monotonic clock ([CLOCK_MONOTONIC]), so intervals
    are immune to wall-clock jumps (NTP corrections, manual clock
    changes).  The epoch is arbitrary: absolute values are only
    meaningful as differences. *)

type t
(** A started timer. *)

val start : unit -> t
(** Start a timer now. *)

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with elapsed seconds. *)

val now_ns : unit -> int64
(** The monotonic clock, nanoseconds since an arbitrary epoch. *)

val now_s : unit -> float
(** The monotonic clock in seconds — the time base for scheduler
    deadlines ({!Rc_serve.Cancel}) and latency percentiles. *)

/* Monotonic clock for Rc_util.Timer: immune to wall-clock jumps (NTP
 * slews, manual resets), which matters for service latency metrics and
 * scheduler deadlines.  CLOCK_MONOTONIC is POSIX; the Windows branch is
 * untested but keeps the stub portable in principle. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value rc_timer_monotonic_ns(value unit)
{
    static LARGE_INTEGER freq;
    LARGE_INTEGER now;
    if (freq.QuadPart == 0)
        QueryPerformanceFrequency(&freq);
    QueryPerformanceCounter(&now);
    return caml_copy_int64((int64_t)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>

CAMLprim value rc_timer_monotonic_ns(value unit)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    (void)unit;
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}

#endif

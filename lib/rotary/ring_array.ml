open Rc_geom

type t = {
  rings : Ring.t array;
  grid : int;
  chip : Rect.t;
  period : float;
}

let create ?(period = 1000.0) ?(t_ref = 0.0) ~chip ~grid () =
  if grid < 1 then invalid_arg "Ring_array.create: grid < 1";
  let pw = Rect.width chip /. float_of_int grid in
  let ph = Rect.height chip /. float_of_int grid in
  let rings =
    Array.init (grid * grid) (fun id ->
        let gx = id mod grid and gy = id / grid in
        let rect =
          Rect.make
            ~xmin:(chip.Rect.xmin +. (float_of_int gx *. pw))
            ~ymin:(chip.Rect.ymin +. (float_of_int gy *. ph))
            ~xmax:(chip.Rect.xmin +. (float_of_int (gx + 1) *. pw))
            ~ymax:(chip.Rect.ymin +. (float_of_int (gy + 1) *. ph))
        in
        (* checkerboard direction so abutting edges co-propagate *)
        let clockwise = (gx + gy) mod 2 = 0 in
        Ring.make ~id ~rect ~clockwise ~t_ref ~period)
  in
  { rings; grid; chip; period }

let n_rings t = Array.length t.rings

let ring t i =
  if i < 0 || i >= n_rings t then invalid_arg "Ring_array.ring: out of range";
  t.rings.(i)

let rings t = Array.copy t.rings
let grid t = t.grid
let period t = t.period

let containing_ring t (p : Point.t) =
  let pw = Rect.width t.chip /. float_of_int t.grid in
  let ph = Rect.height t.chip /. float_of_int t.grid in
  let clampi v hi = max 0 (min hi v) in
  let gx = clampi (int_of_float ((p.Point.x -. t.chip.Rect.xmin) /. pw)) (t.grid - 1) in
  let gy = clampi (int_of_float ((p.Point.y -. t.chip.Rect.ymin) /. ph)) (t.grid - 1) in
  (gy * t.grid) + gx

(* Nearest rings by (manhattan distance to ring center, ring id). The
   rings form a uniform grid, so instead of scoring all of them the
   search expands Chebyshev shells of tiles around the query's tile and
   stops once no unvisited shell can hold a center closer than the k-th
   best so far (strictly closer — equal distances tie-break on ring id,
   which only shells already visited can win). The collected superset is
   sorted with the same comparator as the full scan, and distinct ids
   make the order total, so the result is identical to sorting every
   ring. *)
let rings_near t p k =
  let nr = Array.length t.rings in
  let kk = min k nr in
  let score i = (Point.manhattan (Rect.center t.rings.(i).Ring.rect) p, i) in
  if t.grid <= 4 || 4 * kk >= nr then begin
    let scored = Array.init nr score in
    Array.sort compare scored;
    Array.to_list (Array.sub scored 0 kk) |> List.map snd
  end
  else begin
    (* Tile pitch is the ring pitch (ring 0's rect), not die/grid: the
       two agree on today's uniform arrays, but anchoring on the ring
       keeps the seed tile and shell bounds tied to actual ring geometry
       rather than the die extent, so the search stays O(shells) per
       query no matter how large the die grows around the array. *)
    let r0 = t.rings.(0).Ring.rect in
    let pw = Rect.width r0 and ph = Rect.height r0 in
    let clampi v hi = max 0 (min hi v) in
    let cx = clampi (int_of_float ((p.Point.x -. r0.Rect.xmin) /. pw)) (t.grid - 1) in
    let cy = clampi (int_of_float ((p.Point.y -. r0.Rect.ymin) /. ph)) (t.grid - 1) in
    let buf = ref [] and count = ref 0 in
    let add gx gy =
      if gx >= 0 && gx < t.grid && gy >= 0 && gy < t.grid then begin
        buf := score ((gy * t.grid) + gx) :: !buf;
        incr count
      end
    in
    let collect_shell s =
      if s = 0 then add cx cy
      else begin
        for gx = cx - s to cx + s do
          add gx (cy - s);
          add gx (cy + s)
        done;
        for gy = cy - s + 1 to cy + s - 1 do
          add (cx - s) gy;
          add (cx + s) gy
        done
      end
    in
    (* smallest possible distance from [p] to a center in any shell >= s:
       such a center is offset at least s tiles along some axis, putting
       its coordinate at least as far from [p] as the boundary row or
       column's actual ring-center coordinate — exact, not reconstructed
       from the die extent (bounds for directions that run off the grid
       don't exist) *)
    let center_x gx = (Rect.center t.rings.(gx).Ring.rect).Point.x in
    let center_y gy = (Rect.center t.rings.(gy * t.grid).Ring.rect).Point.y in
    let shell_lower_bound s =
      let left = if cx - s >= 0 then p.Point.x -. center_x (cx - s) else infinity
      and right =
        if cx + s <= t.grid - 1 then center_x (cx + s) -. p.Point.x else infinity
      and down = if cy - s >= 0 then p.Point.y -. center_y (cy - s) else infinity
      and up =
        if cy + s <= t.grid - 1 then center_y (cy + s) -. p.Point.y else infinity
      in
      Float.min (Float.min left right) (Float.min down up)
    in
    let result = ref [] and finished = ref false and s = ref 0 in
    while not !finished do
      collect_shell !s;
      if !count >= kk then begin
        let arr = Array.of_list !buf in
        Array.sort compare arr;
        let kth, _ = arr.(kk - 1) in
        if shell_lower_bound (!s + 1) > kth then begin
          result := Array.to_list (Array.sub arr 0 kk) |> List.map snd;
          finished := true
        end
      end;
      incr s
    done;
    !result
  end

let default_capacities t ~n_ffs ~slack =
  if n_ffs < 0 then invalid_arg "Ring_array.default_capacities: negative n_ffs";
  let per = int_of_float (Float.ceil (slack *. float_of_int n_ffs /. float_of_int (n_rings t))) in
  Array.make (n_rings t) (max per 1)

open Rc_geom

type tap = {
  ring : int;
  point : Point.t;
  arc : float;
  conductor : Ring.conductor;
  wirelength : float;
  snaked : bool;
  periods_shifted : int;
}

(* Stub-delay coefficients: A(l) = a2·l² + a1·l in picoseconds; a1
   depends on the lumped load hanging at the stub's far end. *)
let coeff_a2 (tech : Rc_tech.Tech.t) = 0.5 *. tech.Rc_tech.Tech.r_wire *. tech.Rc_tech.Tech.c_wire /. 1000.0
let coeff_a1 (tech : Rc_tech.Tech.t) ~load = tech.Rc_tech.Tech.r_wire *. load /. 1000.0

let stub_delay_with_load tech ~load l =
  (coeff_a2 tech *. l *. l) +. (coeff_a1 tech ~load *. l)

let stub_delay tech l = stub_delay_with_load tech ~load:tech.Rc_tech.Tech.c_ff l

(* Inverse of the stub delay: the unique l >= 0 with A(l) = d (d >= 0). *)
let stub_length_for_delay tech ~load d =
  if d <= 0.0 then 0.0
  else begin
    let a2 = coeff_a2 tech and a1 = coeff_a1 tech ~load in
    let disc = (a1 *. a1) +. (4.0 *. a2 *. d) in
    ((-.a1) +. sqrt disc) /. (2.0 *. a2)
  end

(* Unclamped projection parameter of p on segment s, plus the
   perpendicular offset. *)
let local_frame (s : Segment.t) (p : Point.t) =
  let len = Segment.length s in
  if Segment.is_horizontal s then begin
    let dir = if s.Segment.b.Point.x >= s.Segment.a.Point.x then 1.0 else -1.0 in
    let u = (p.Point.x -. s.Segment.a.Point.x) *. dir in
    (u, Float.abs (p.Point.y -. s.Segment.a.Point.y), len)
  end
  else begin
    let dir = if s.Segment.b.Point.y >= s.Segment.a.Point.y then 1.0 else -1.0 in
    let u = (p.Point.y -. s.Segment.a.Point.y) *. dir in
    (u, Float.abs (p.Point.x -. s.Segment.a.Point.x), len)
  end

(* Roots of a2·u² + b·u + c = 0 (a2 > 0), numerically stable form. *)
let quadratic_roots a2 b c =
  let disc = (b *. b) -. (4.0 *. a2 *. c) in
  if disc < 0.0 then []
  else begin
    let sq = sqrt disc in
    let q = if b >= 0.0 then -.(b +. sq) /. 2.0 else -.(b -. sq) /. 2.0 in
    let r1 = q /. a2 in
    if Float.abs q < 1e-300 then [ r1 ]
    else begin
      let r2 = c /. q in
      if Float.abs (r1 -. r2) < 1e-12 then [ r1 ] else [ r1; r2 ]
    end
  end

type seg_candidate = { u : float; l : float; snake : bool }

(* All tapping candidates on one segment for effective target tau
   (already period-shifted), measured from segment-start delay t0. *)
let segment_candidates tech ~load ~rho ~t0 ~u_f ~h ~len tau =
  let a2 = coeff_a2 tech and a1 = coeff_a1 tech ~load in
  let l_of u = Float.abs (u -. u_f) +. h in
  let eps = 1e-6 in
  let cands = ref [] in
  let keep u snake =
    if u >= -.eps && u <= len +. eps then begin
      let u = Rc_util.Approx.clamp ~lo:0.0 ~hi:len u in
      cands := { u; l = l_of u; snake } :: !cands
    end
  in
  (* right branch: u >= u_f, l = (u - u_f) + h = u - c1, c1 = u_f - h *)
  let c1 = u_f -. h in
  quadratic_roots a2
    (((-2.0) *. a2 *. c1) +. a1 +. rho)
    ((a2 *. c1 *. c1) -. (a1 *. c1) +. t0 -. tau)
  |> List.iter (fun u -> if u >= u_f -. eps then keep u false);
  (* left branch: u <= u_f, l = (u_f - u) + h = c2 - u, c2 = u_f + h *)
  let c2 = u_f +. h in
  quadratic_roots a2
    (((-2.0) *. a2 *. c2) -. a1 +. rho)
    ((a2 *. c2 *. c2) +. (a1 *. c2) +. t0 -. tau)
  |> List.iter (fun u -> if u <= u_f +. eps then keep u false);
  (* Case 4: tap the far end and snake the stub *)
  let needed = tau -. t0 -. (rho *. len) in
  let l_snake = stub_length_for_delay tech ~load needed in
  if l_snake >= l_of len -. eps then
    cands := { u = len; l = Float.max l_snake (l_of len); snake = true } :: !cands;
  !cands

(* Minimum of t_f over the segment, for the Case 1 period shift. *)
let segment_min_delay tech ~load ~rho ~t0 ~u_f ~h ~len =
  let a2 = coeff_a2 tech and a1 = coeff_a1 tech ~load in
  let l_of u = Float.abs (u -. u_f) +. h in
  let f u = t0 +. (rho *. u) +. stub_delay_with_load tech ~load (l_of u) in
  let candidates = ref [ 0.0; len ] in
  if u_f > 0.0 && u_f < len then candidates := u_f :: !candidates;
  (* vertices of the two parabola branches *)
  let c1 = u_f -. h and c2 = u_f +. h in
  let v_r = -.(((-2.0) *. a2 *. c1) +. a1 +. rho) /. (2.0 *. a2) in
  if v_r >= Float.max 0.0 u_f && v_r <= len then candidates := v_r :: !candidates;
  let v_l = -.(((-2.0) *. a2 *. c2) -. a1 +. rho) /. (2.0 *. a2) in
  if v_l >= 0.0 && v_l <= Float.min len u_f then candidates := v_l :: !candidates;
  List.fold_left (fun acc u -> Float.min acc (f u)) infinity !candidates

let segment_taps tech ~load ring ~seg ~arc_start ~conductor ~ff ~target =
  let period = ring.Ring.period in
  let rho = Ring.rho ring in
  let u_f, h, len = local_frame seg ff in
  let t0 =
    ring.Ring.t_ref +. (rho *. arc_start)
    +. (match conductor with Ring.Outer -> 0.0 | Ring.Inner -> period /. 2.0)
  in
  let t_min = segment_min_delay tech ~load ~rho ~t0 ~u_f ~h ~len in
  let k0 = int_of_float (Float.ceil ((t_min -. target) /. period -. 1e-12)) in
  (* the minimal shift, plus one above in case rounding put the first
     target a hair under the curve *)
  List.concat_map
    (fun k ->
      let tau = target +. (float_of_int k *. period) in
      segment_candidates tech ~load ~rho ~t0 ~u_f ~h ~len tau
      |> List.map (fun { u; l; snake } ->
             {
               ring = ring.Ring.id;
               point = Segment.point_at seg u;
               arc = arc_start +. u;
               conductor;
               wirelength = l;
               snaked = snake;
               periods_shifted = k;
             }))
    [ k0; k0 + 1 ]

type case = Two_root | Period_shift | Tangent | Snaked

let case_of (tap : tap) ~(ff : Point.t) =
  (* precedence mirrors the paper's narrative: snaking is always case 4;
     any period shift is case 1 even if the shifted tap is tangent *)
  if tap.snaked then Snaked
  else if tap.periods_shifted <> 0 then Period_shift
  else begin
    (* a tangent (case 3) tap sits at the flip-flop's projection onto
       the segment: one coordinate coincides with the flip-flop's *)
    let dx = Float.abs (tap.point.Point.x -. ff.Point.x)
    and dy = Float.abs (tap.point.Point.y -. ff.Point.y) in
    if Float.min dx dy < 1e-6 then Tangent else Two_root
  end

let best_of taps =
  List.fold_left
    (fun acc (t : tap) ->
      match acc with Some b when b.wirelength <= t.wirelength -> acc | _ -> Some t)
    None taps

let solve ?(use_complement = true) ?load tech ring ~ff ~target =
  let load = Option.value load ~default:tech.Rc_tech.Tech.c_ff in
  let conductors = if use_complement then [ Ring.Outer; Ring.Inner ] else [ Ring.Outer ] in
  let all =
    Array.to_list (Ring.segments ring)
    |> List.concat_map (fun (seg, arc_start) ->
           List.concat_map
             (fun conductor ->
               segment_taps tech ~load ring ~seg ~arc_start ~conductor ~ff ~target)
             conductors)
  in
  match best_of all with
  | Some t -> t
  | None ->
      (* unreachable: snaking always yields a candidate *)
      assert false

let solve_on_segment tech ring ~segment ~conductor ~ff ~target =
  if segment < 0 || segment > 3 then invalid_arg "Tapping.solve_on_segment: bad segment";
  let seg, arc_start = (Ring.segments ring).(segment) in
  let load = tech.Rc_tech.Tech.c_ff in
  match best_of (segment_taps tech ~load ring ~seg ~arc_start ~conductor ~ff ~target) with
  | Some t -> t
  | None -> assert false

let cost tech ring ~ff ~target = (solve tech ring ~ff ~target).wirelength

let curve tech ring ~segment ~ff ~samples =
  if segment < 0 || segment > 3 then invalid_arg "Tapping.curve: segment out of range";
  if samples < 2 then invalid_arg "Tapping.curve: need at least 2 samples";
  let seg, arc_start = (Ring.segments ring).(segment) in
  let rho = Ring.rho ring in
  let u_f, h, len = local_frame seg ff in
  let t0 = ring.Ring.t_ref +. (rho *. arc_start) in
  List.init samples (fun i ->
      let u = float_of_int i /. float_of_int (samples - 1) *. len in
      let l = Float.abs (u -. u_f) +. h in
      (u, t0 +. (rho *. u) +. stub_delay tech l))

(** Flexible tapping (Section III): find, for a flip-flop at an arbitrary
    location with a clock-delay target [t̂_f], the tapping point [p] on a
    rotary ring such that

      t_f(x) = t0 + ρ·x + ½rc·l² + r·l·C_ff = t̂_f        (Eq. 1)

    with [l] the Manhattan stub length from [p] to the flip-flop. The
    curve [t_f(x)] is two parabolas joined at the flip-flop's projection
    (Fig. 2) and the four solution cases of the paper are all handled:

    - Case 1 (target below the curve): reduce the target by whole clock
      periods — phase is unchanged — until a solution appears;
    - Case 2 (two roots): the smaller-stub root is selected;
    - Case 3 (tangent): the unique root;
    - Case 4 (target above the curve): tap at the segment end and snake
      the stub wire until the delay matches (wire detour [6]).

    Both conductors of the differential pair are tried — attaching to
    the complementary phase means flipping the flip-flop's polarity,
    which the paper permits. The cheapest of the 4 segments × 2
    conductors is returned; its stub length is the tapping cost. *)

type tap = {
  ring : int;  (** Ring id. *)
  point : Rc_geom.Point.t;  (** Tapping point on the ring edge. *)
  arc : float;  (** Arc position of [point] on the ring. *)
  conductor : Ring.conductor;
  wirelength : float;  (** Stub length (µm) — the tapping cost. *)
  snaked : bool;  (** True when Case 4 wire detouring was needed. *)
  periods_shifted : int;  (** Whole periods added to the target (Case 1). *)
}

(** Which of the four Eq. 1 solution cases produced a tap. *)
type case =
  | Two_root  (** Case 2: two roots, smaller stub chosen. *)
  | Period_shift  (** Case 1: whole periods were added to the target. *)
  | Tangent  (** Case 3: root at the flip-flop's projection (near-tangent). *)
  | Snaked  (** Case 4: wire detouring. *)

val case_of : tap -> ff:Rc_geom.Point.t -> case
(** Classify a tap for the flip-flop it was solved for. Precedence:
    snaking is always [Snaked]; any period shift is [Period_shift] even
    when the shifted solution is tangent; a non-shifted root at the
    flip-flop's projection (within 1e-6 µm) is [Tangent]; everything
    else is [Two_root]. Used for the tapping-case distribution metrics
    ([assign.tap.*]). *)

val solve :
  ?use_complement:bool ->
  ?load:float ->
  Rc_tech.Tech.t ->
  Ring.t ->
  ff:Rc_geom.Point.t ->
  target:float ->
  tap
(** Best tap on one ring for the given delay target (ps). Always
    succeeds: Case 4 snaking makes any target reachable.
    [use_complement] (default true) also offers the inner conductor —
    turning it off models designs that disallow polarity flipping (an
    ablation of the paper's complementary-phase trick). [load] overrides
    the stub's far-end capacitance (default [c_ff]) — local tapping
    trees hang a whole subtree off the stub. *)

val solve_on_segment :
  Rc_tech.Tech.t ->
  Ring.t ->
  segment:int ->
  conductor:Ring.conductor ->
  ff:Rc_geom.Point.t ->
  target:float ->
  tap
(** Best tap restricted to one of the four segments (index 0-3) and one
    conductor — the single-segment setting in which the paper's Fig. 2
    case analysis is stated. {!solve} is the minimum of the eight
    restricted solutions. @raise Invalid_argument on a bad segment
    index. *)

val cost : Rc_tech.Tech.t -> Ring.t -> ff:Rc_geom.Point.t -> target:float -> float
(** [wirelength] of {!solve} — the [c_{i,j}] of the Section V
    assignment problem. *)

val stub_delay : Rc_tech.Tech.t -> float -> float
(** Delay (ps) of a stub of length l driving one flip-flop:
    [½rc·l² + r·l·C_ff]. *)

val stub_delay_with_load : Rc_tech.Tech.t -> load:float -> float -> float
(** {!stub_delay} with an explicit far-end load (fF). *)

val curve : Rc_tech.Tech.t -> Ring.t -> segment:int -> ff:Rc_geom.Point.t ->
            samples:int -> (float * float) list
(** Sample [t_f(x)] along one segment (by index 0-3) for plotting the
    Fig. 2 curve: returns [(x, t_f(x))] pairs on the outer conductor,
    not reduced modulo the period. *)

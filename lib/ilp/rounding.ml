let m_rounds = Rc_obs.Metrics.counter "ilp.rounding.rounds"
let m_fractional = Rc_obs.Metrics.counter "ilp.rounding.fractional"
let m_gap = Rc_obs.Metrics.gauge "ilp.relaxation_gap"

let greedy_round ~n_items xlp =
  let best_val = Array.make n_items neg_infinity in
  let best_bin = Array.make n_items (-1) in
  List.iter
    (fun (i, j, v) ->
      if i < 0 || i >= n_items then invalid_arg "Rounding.greedy_round: item out of range";
      (* strict improvement, or equal value with smaller bin index *)
      if
        v > best_val.(i) +. 1e-12
        || (Float.abs (v -. best_val.(i)) <= 1e-12 && j < best_bin.(i))
      then begin
        best_val.(i) <- v;
        best_bin.(i) <- j
      end)
    xlp;
  Rc_obs.Metrics.incr m_rounds;
  if Rc_obs.Metrics.enabled () then
    (* items whose winning LP value is fractional: rounding actually
       made a choice there, rather than ratifying an integral solution *)
    Array.iter
      (fun v ->
        if v > neg_infinity && v < 0.999 then Rc_obs.Metrics.incr m_fractional)
      best_val;
  best_bin

let integrality_gap ~ilp_objective ~lp_optimum =
  let gap =
    if Float.abs lp_optimum < 1e-300 then
      if Float.abs ilp_objective < 1e-300 then 1.0 else nan
    else ilp_objective /. lp_optimum
  in
  Rc_obs.Metrics.set_gauge m_gap gap;
  gap

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  x : float array;
  objective : float;
  duals : float array;
  iterations : int;
}

(* Internal column-wise representation. Columns 0..nv-1 are structural,
   nv..nv+m-1 slacks, nv+m..nv+2m-1 artificials. *)

type eta = { pos : int; w : float array }

type state = {
  m : int;
  ncols : int;
  col_rows : int array array;  (* per column: row indices *)
  col_vals : float array array;
  lo : float array;
  hi : float array;
  cost : float array;  (* current-phase costs *)
  real_cost : float array;
  rhs : float array;
  basic_of_row : int array;
  pos_in_basis : int array;  (* -1 when nonbasic *)
  nb_val : float array;  (* value of each nonbasic column *)
  x_b : float array;  (* values of basic variables, by row position *)
  mutable lu : Rc_sparse.Sparse_lu.t;
  mutable etas : eta list;  (* newest first *)
  mutable n_etas : int;
}

let refactor_interval = 20

let col_dot st j (y : float array) =
  let rows = st.col_rows.(j) and vals = st.col_vals.(j) in
  let acc = ref 0.0 in
  for k = 0 to Array.length rows - 1 do
    acc := !acc +. (vals.(k) *. y.(rows.(k)))
  done;
  !acc

let col_to_dense st j =
  let v = Array.make st.m 0.0 in
  let rows = st.col_rows.(j) and vals = st.col_vals.(j) in
  for k = 0 to Array.length rows - 1 do
    v.(rows.(k)) <- vals.(k)
  done;
  v

(* FTRAN: solve B u = v in place of a fresh array. *)
let ftran st v =
  let u = Rc_sparse.Sparse_lu.solve st.lu v in
  List.iter
    (fun { pos; w } ->
      let ur = u.(pos) /. w.(pos) in
      for i = 0 to st.m - 1 do
        if i <> pos then u.(i) <- u.(i) -. (w.(i) *. ur)
      done;
      u.(pos) <- ur)
    (List.rev st.etas);
  u

(* BTRAN: solve Bᵀ y = c. *)
let btran st c =
  let v = Array.copy c in
  List.iter
    (fun { pos; w } ->
      let acc = ref v.(pos) in
      for i = 0 to st.m - 1 do
        if i <> pos then acc := !acc -. (w.(i) *. v.(i))
      done;
      v.(pos) <- !acc /. w.(pos))
    st.etas;
  Rc_sparse.Sparse_lu.solve_transpose st.lu v

let basis_columns st =
  Array.init st.m (fun k ->
      let j = st.basic_of_row.(k) in
      (st.col_rows.(j), st.col_vals.(j)))

let recompute_x_b st =
  (* x_B = B⁻¹ (rhs - Σ nonbasic A_j v_j) *)
  let r = Array.copy st.rhs in
  for j = 0 to st.ncols - 1 do
    if st.pos_in_basis.(j) < 0 && st.nb_val.(j) <> 0.0 then begin
      let rows = st.col_rows.(j) and vals = st.col_vals.(j) in
      for k = 0 to Array.length rows - 1 do
        r.(rows.(k)) <- r.(rows.(k)) -. (vals.(k) *. st.nb_val.(j))
      done
    end
  done;
  let xb = ftran st r in
  Array.blit xb 0 st.x_b 0 st.m

let m_solves = Rc_obs.Metrics.counter "lp.simplex.solves"
let m_pivots = Rc_obs.Metrics.counter "lp.simplex.pivots"
let m_refactorizations = Rc_obs.Metrics.counter "lp.simplex.refactorizations"

let refactorize st =
  Rc_obs.Metrics.incr m_refactorizations;
  match Rc_sparse.Sparse_lu.factor ~m:st.m ~cols:(basis_columns st) with
  | Some lu ->
      st.lu <- lu;
      st.etas <- [];
      st.n_etas <- 0;
      recompute_x_b st
  | None -> failwith "Simplex: singular basis during refactorization"

exception Done of status

let solve ?max_iter ?(eps = 1e-7) problem =
  let nv = Problem.n_vars problem and m = Problem.n_rows problem in
  let max_iter = Option.value max_iter ~default:(20000 + (50 * (m + nv))) in
  let ncols = nv + m + m in
  let col_rows = Array.make ncols [||] and col_vals = Array.make ncols [||] in
  let lo = Array.make ncols neg_infinity and hi = Array.make ncols infinity in
  let real_cost = Array.make ncols 0.0 in
  let rhs = Array.make m 0.0 in
  (* structural columns: gather per-column entries from rows *)
  let per_col = Array.make nv [] in
  Problem.iter_rows problem (fun i coeffs _sense r ->
      rhs.(i) <- r;
      List.iter (fun (j, v) -> per_col.(j) <- (i, v) :: per_col.(j)) coeffs);
  for j = 0 to nv - 1 do
    let entries = List.rev per_col.(j) in
    col_rows.(j) <- Array.of_list (List.map fst entries);
    col_vals.(j) <- Array.of_list (List.map snd entries);
    lo.(j) <- Problem.var_lo problem j;
    hi.(j) <- Problem.var_hi problem j;
    real_cost.(j) <- Problem.var_obj problem j
  done;
  (* slack columns *)
  Problem.iter_rows problem (fun i _ sense _ ->
      let j = nv + i in
      col_rows.(j) <- [| i |];
      col_vals.(j) <- [| 1.0 |];
      (match sense with
      | Problem.Le ->
          lo.(j) <- 0.0;
          hi.(j) <- infinity
      | Problem.Ge ->
          lo.(j) <- neg_infinity;
          hi.(j) <- 0.0
      | Problem.Eq ->
          lo.(j) <- 0.0;
          hi.(j) <- 0.0));
  (* initial nonbasic values for structural + slack columns *)
  let nb_val = Array.make ncols 0.0 in
  for j = 0 to nv + m - 1 do
    nb_val.(j) <-
      (if Float.is_finite lo.(j) then lo.(j) else if Float.is_finite hi.(j) then hi.(j) else 0.0)
  done;
  (* residuals decide artificial signs *)
  let resid = Array.copy rhs in
  for j = 0 to nv + m - 1 do
    if nb_val.(j) <> 0.0 then begin
      let rows = col_rows.(j) and vals = col_vals.(j) in
      for k = 0 to Array.length rows - 1 do
        resid.(rows.(k)) <- resid.(rows.(k)) -. (vals.(k) *. nb_val.(j))
      done
    end
  done;
  let cost = Array.make ncols 0.0 in
  for i = 0 to m - 1 do
    let j = nv + m + i in
    let sign = if resid.(i) >= 0.0 then 1.0 else -1.0 in
    col_rows.(j) <- [| i |];
    col_vals.(j) <- [| sign |];
    lo.(j) <- 0.0;
    hi.(j) <- infinity;
    cost.(j) <- 1.0
  done;
  let basic_of_row = Array.init m (fun i -> nv + m + i) in
  let pos_in_basis = Array.make ncols (-1) in
  Array.iteri (fun k j -> pos_in_basis.(j) <- k) basic_of_row;
  let x_b = Array.init m (fun i -> Float.abs resid.(i)) in
  let lu =
    let cols0 = Array.init m (fun k ->
        let j = basic_of_row.(k) in
        (col_rows.(j), col_vals.(j)))
    in
    match Rc_sparse.Sparse_lu.factor ~m ~cols:cols0 with
    | Some lu -> lu
    | None -> failwith "Simplex: initial basis singular"
  in
  let st =
    { m; ncols; col_rows; col_vals; lo; hi; cost; real_cost; rhs; basic_of_row; pos_in_basis;
      nb_val; x_b; lu; etas = []; n_etas = 0 }
  in
  let iterations = ref 0 in
  let stall = ref 0 in
  let last_obj = ref infinity in
  let current_obj () =
    let acc = ref 0.0 in
    for k = 0 to m - 1 do
      acc := !acc +. (st.cost.(st.basic_of_row.(k)) *. st.x_b.(k))
    done;
    for j = 0 to ncols - 1 do
      if st.pos_in_basis.(j) < 0 then acc := !acc +. (st.cost.(j) *. st.nb_val.(j))
    done;
    !acc
  in
  (* One simplex phase over current costs; returns terminal status. *)
  let run_phase phase_max =
    try
      while true do
        if !iterations >= phase_max then raise (Done Iteration_limit);
        incr iterations;
        if st.n_etas >= refactor_interval then refactorize st;
        (* pricing *)
        let cb = Array.init m (fun k -> st.cost.(st.basic_of_row.(k))) in
        let y = btran st cb in
        let use_bland = !stall > 80 in
        let enter = ref (-1) and enter_dir = ref 1.0 and best_score = ref eps in
        let examine j =
          if st.pos_in_basis.(j) < 0 && st.lo.(j) < st.hi.(j) then begin
            let d = st.cost.(j) -. col_dot st j y in
            let at_lo = Float.is_finite st.lo.(j) && st.nb_val.(j) <= st.lo.(j) +. 1e-9 in
            let at_hi = Float.is_finite st.hi.(j) && st.nb_val.(j) >= st.hi.(j) -. 1e-9 in
            let eligible_dir =
              if (not at_lo) && not at_hi then
                (* free variable *)
                if d < -.eps then Some 1.0 else if d > eps then Some (-1.0) else None
              else if at_lo && d < -.eps then Some 1.0
              else if at_hi && d > eps then Some (-1.0)
              else None
            in
            match eligible_dir with
            | Some dir ->
                let score = Float.abs d in
                if use_bland then begin
                  enter := j;
                  enter_dir := dir;
                  raise Exit
                end
                else if score > !best_score then begin
                  best_score := score;
                  enter := j;
                  enter_dir := dir
                end
            | None -> ()
          end
        in
        (* full Dantzig pricing: the worse entering choices of partial
           pricing cost more in extra degenerate pivots than the scan
           saves on these assignment-structured LPs *)

        (try
           for j = 0 to ncols - 1 do
             examine j
           done
         with Exit -> ());
        if !enter < 0 then raise (Done Optimal);
        let e = !enter and dir = !enter_dir in
        let w = ftran st (col_to_dense st e) in
        (* ratio test: x_b(k) changes by -t * dir * w(k) for step t >= 0 *)
        let t_best = ref infinity and leave = ref (-1) and leave_to_hi = ref false in
        for k = 0 to m - 1 do
          let g = dir *. w.(k) in
          let jb = st.basic_of_row.(k) in
          if g > 1e-9 then begin
            if Float.is_finite st.lo.(jb) then begin
              let t = (st.x_b.(k) -. st.lo.(jb)) /. g in
              if
                t < !t_best -. 1e-12
                || (t < !t_best +. 1e-12 && !leave >= 0 && jb < st.basic_of_row.(!leave))
              then begin
                t_best := Float.max t 0.0;
                leave := k;
                leave_to_hi := false
              end
            end
          end
          else if g < -1e-9 then begin
            if Float.is_finite st.hi.(jb) then begin
              let t = (st.x_b.(k) -. st.hi.(jb)) /. g in
              if
                t < !t_best -. 1e-12
                || (t < !t_best +. 1e-12 && !leave >= 0 && jb < st.basic_of_row.(!leave))
              then begin
                t_best := Float.max t 0.0;
                leave := k;
                leave_to_hi := true
              end
            end
          end
        done;
        let t_bound =
          if Float.is_finite st.lo.(e) && Float.is_finite st.hi.(e) then st.hi.(e) -. st.lo.(e)
          else infinity
        in
        if t_bound < !t_best then begin
          (* bound flip: entering moves to its opposite bound *)
          let t = t_bound in
          for k = 0 to m - 1 do
            st.x_b.(k) <- st.x_b.(k) -. (t *. dir *. w.(k))
          done;
          st.nb_val.(e) <- (if dir > 0.0 then st.hi.(e) else st.lo.(e))
        end
        else if !leave < 0 then raise (Done Unbounded)
        else begin
          let t = !t_best in
          let k = !leave in
          let jb = st.basic_of_row.(k) in
          for i = 0 to m - 1 do
            st.x_b.(i) <- st.x_b.(i) -. (t *. dir *. w.(i))
          done;
          let enter_val = st.nb_val.(e) +. (dir *. t) in
          (* swap basis *)
          st.basic_of_row.(k) <- e;
          st.pos_in_basis.(e) <- k;
          st.pos_in_basis.(jb) <- -1;
          st.nb_val.(jb) <- (if !leave_to_hi then st.hi.(jb) else st.lo.(jb));
          st.x_b.(k) <- enter_val;
          st.etas <- { pos = k; w } :: st.etas;
          st.n_etas <- st.n_etas + 1
        end;
        let obj = current_obj () in
        if obj < !last_obj -. 1e-10 then begin
          stall := 0;
          last_obj := obj
        end
        else incr stall
      done;
      assert false
    with Done s -> s
  in
  let finish status =
    Rc_obs.Metrics.incr m_solves;
    Rc_obs.Metrics.add m_pivots !iterations;
    let x = Array.make nv 0.0 in
    for j = 0 to nv - 1 do
      x.(j) <- (if st.pos_in_basis.(j) >= 0 then st.x_b.(st.pos_in_basis.(j)) else st.nb_val.(j))
    done;
    let objective = ref 0.0 in
    for j = 0 to nv - 1 do
      objective := !objective +. (st.real_cost.(j) *. x.(j))
    done;
    let cb = Array.init m (fun k -> st.real_cost.(st.basic_of_row.(k))) in
    let duals = if m > 0 then btran st cb else [||] in
    { status; x; objective = !objective; duals; iterations = !iterations }
  in
  (* Phase 1 *)
  let phase1_status = run_phase max_iter in
  (match phase1_status with
  | Iteration_limit -> ()
  | Unbounded -> failwith "Simplex: phase 1 unbounded (internal error)"
  | _ -> ());
  if phase1_status = Iteration_limit then finish Iteration_limit
  else begin
    let phase1_obj = current_obj () in
    if phase1_obj > 1e-6 then finish Infeasible
    else begin
      (* switch to phase 2: real costs, artificials pinned to zero *)
      for j = 0 to ncols - 1 do
        st.cost.(j) <- (if j < nv then st.real_cost.(j) else 0.0)
      done;
      for i = 0 to m - 1 do
        let j = nv + m + i in
        st.hi.(j) <- 0.0;
        if st.pos_in_basis.(j) < 0 then st.nb_val.(j) <- 0.0
      done;
      stall := 0;
      last_obj := infinity;
      let status2 = run_phase max_iter in
      finish status2
    end
  end

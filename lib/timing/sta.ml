open Rc_netlist

type adjacency = { src_ff : int; dst_ff : int; d_max : float; d_min : float }

type t = { pairs : adjacency list; critical : float }

let m_analyses = Rc_obs.Metrics.counter "timing.sta.analyses"
let m_pairs = Rc_obs.Metrics.counter "timing.sta.pairs"
let m_cone_sinks = Rc_obs.Metrics.histogram "timing.sta.cone_sinks"
let m_replays = Rc_obs.Metrics.counter "timing.sta.replays"
let m_cone_recomputes = Rc_obs.Metrics.counter "timing.sta.cone_recomputes"
let m_cone_reuses = Rc_obs.Metrics.counter "timing.sta.cone_reuses"
let m_dirty_cells = Rc_obs.Metrics.counter "timing.sta.dirty_cells"

(* below ~64 cones the traversals are cheaper than waking the pool *)
let par_cutoff = 64

(* Deterministic per-cell process-variation factor in [0.9, 1.1]. *)
let gate_factor c =
  let r = Rc_util.Rng.create ((c * 2654435761) + 97) in
  0.9 +. Rc_util.Rng.float r 0.2

(* One fanout edge. [target] and [load] are netlist structure; [wire] is
   the Elmore point delay at the positions of the last (re)evaluation —
   the only position-dependent quantity in the whole timing graph. *)
type oedge = { target : int; load : float; mutable wire : float }

(* Everything about the timing graph that does not depend on cell
   positions: fanout structure, gate variation factors, and the
   topological index that orders cone relaxation. *)
type structure = {
  tech : Rc_tech.Tech.t;
  netlist : Netlist.t;
  n : int;
  out : oedge list array;
  gmax : float array;
  gmin : float array;
  topo_idx : int array;
  ffs : int array;
}

let build_structure tech netlist ~positions =
  let n = Netlist.n_cells netlist in
  if Array.length positions <> n then invalid_arg "Sta.analyze: positions length mismatch";
  let pos c = positions.(c) in
  (* out-edges: targets restricted to logic and flip-flops *)
  let out = Array.make n [] in
  Netlist.iter_nets netlist (fun _ net ->
      Array.iter
        (fun s ->
          match Netlist.kind netlist s with
          | Logic | Flipflop ->
              let load = Elmore.sink_load tech netlist s in
              let wire = Elmore.point_delay tech (pos net.driver) (pos s) ~load in
              out.(net.driver) <- { target = s; load; wire } :: out.(net.driver)
          | Input_pad | Output_pad -> ())
        net.sinks);
  (* gate contribution when the signal leaves a logic cell *)
  let gmax = Array.make n 0.0 and gmin = Array.make n 0.0 in
  for c = 0 to n - 1 do
    if Netlist.kind netlist c = Logic then begin
      let f = gate_factor c in
      gmax.(c) <- tech.Rc_tech.Tech.gate_delay *. f;
      gmin.(c) <- tech.Rc_tech.Tech.gate_delay_min *. f
    end
  done;
  (* topological index of logic cells *)
  let logic_graph = Rc_graph.Digraph.create n in
  for c = 0 to n - 1 do
    if Netlist.kind netlist c = Logic then
      List.iter
        (fun e ->
          if Netlist.kind netlist e.target = Logic then
            Rc_graph.Digraph.add_edge logic_graph c e.target 0.0)
        out.(c)
  done;
  let topo_idx =
    match Rc_graph.Dag.topological_order logic_graph with
    | None -> invalid_arg "Sta.analyze: combinational cycle"
    | Some order ->
        let idx = Array.make n 0 in
        Array.iteri (fun i v -> idx.(v) <- i) order;
        idx
  in
  { tech; netlist; n; out; gmax; gmin; topo_idx; ffs = Netlist.flip_flops netlist }

(* Flat cone-stamp arena: the per-domain scratch of cone evaluation as
   six parallel arrays over cell ids, valid entries distinguished by a
   per-run token so the same arena is reused across cones, analyses,
   and flow iterations without any clearing.  Tokens are purely domain-
   local, so reuse cannot change any result bit. *)
type arena = {
  dist_max : float array;
  dist_min : float array;
  stamp : int array;
  rmax : float array;
  rmin : float array;
  rstamp : int array;
  mutable a_token : int;
}

let make_arena n () =
  {
    dist_max = Array.make n neg_infinity;
    dist_min = Array.make n infinity;
    stamp = Array.make n (-1);
    rmax = Array.make n neg_infinity;
    rmin = Array.make n infinity;
    rstamp = Array.make n (-1);
    a_token = 0;
  }

(* Evaluate the cone of launching FF [k], writing its (sink, max, min)
   entries — in first-touch order — into [entries.(k)]. [visit] is
   called once per cell whose position the cone's delays depend on
   (first touch of each target; the launching FF is the caller's to
   add): the support set recorded by incremental sessions. *)
let run_cone st arena ~visit entries k =
  let netlist = st.netlist in
  let f = st.ffs.(k) in
  arena.a_token <- arena.a_token + 1;
  let tok = arena.a_token in
  let dist_max = arena.dist_max
  and dist_min = arena.dist_min
  and stamp = arena.stamp
  and rmax = arena.rmax
  and rmin = arena.rmin
  and rstamp = arena.rstamp in
  let order = ref [] in
  let record g dmax dmin =
    if rstamp.(g) <> tok then begin
      rstamp.(g) <- tok;
      rmax.(g) <- dmax;
      rmin.(g) <- dmin;
      order := g :: !order;
      visit g
    end
    else begin
      rmax.(g) <- Float.max rmax.(g) dmax;
      rmin.(g) <- Float.min rmin.(g) dmin
    end
  in
  let heap = Rc_graph.Heap.create () in
  let touch c dmax dmin =
    if stamp.(c) <> tok then begin
      stamp.(c) <- tok;
      dist_max.(c) <- dmax;
      dist_min.(c) <- dmin;
      Rc_graph.Heap.push heap (float_of_int st.topo_idx.(c)) c;
      visit c
    end
    else begin
      if dmax > dist_max.(c) then dist_max.(c) <- dmax;
      if dmin < dist_min.(c) then dist_min.(c) <- dmin
    end
  in
  (* launch: straight wire from FF to each of its sinks *)
  List.iter
    (fun e ->
      match Netlist.kind netlist e.target with
      | Flipflop -> record e.target e.wire e.wire
      | Logic -> touch e.target e.wire e.wire
      | _ -> ())
    st.out.(f);
  (* cone relaxation in topological order: each logic cell is popped
     after all its in-cone predecessors (their topo indices are
     smaller), so its dist values are final when processed *)
  let rec drain () =
    match Rc_graph.Heap.pop_min heap with
    | None -> ()
    | Some (_, c) ->
        let dmax = dist_max.(c) +. st.gmax.(c) and dmin = dist_min.(c) +. st.gmin.(c) in
        List.iter
          (fun e ->
            match Netlist.kind netlist e.target with
            | Flipflop -> record e.target (dmax +. e.wire) (dmin +. e.wire)
            | Logic -> touch e.target (dmax +. e.wire) (dmin +. e.wire)
            | _ -> ())
          st.out.(c);
        drain ()
  in
  drain ();
  (* histogram merge is a commutative sum, so recording from inside
     the parallel region keeps the snapshot job-count independent *)
  if Rc_obs.Metrics.enabled () then
    Rc_obs.Metrics.observe m_cone_sinks (List.length !order);
  entries.(k) <- List.rev_map (fun g -> (g, rmax.(g), rmin.(g))) !order

(* Merge per-cone entries into the adjacency list. The pairs table is
   always rebuilt with the same key-insertion sequence (launching FFs in
   order, each cone's sinks in first-touch order), so the fold order —
   and hence the list and the critical-path fold — is identical whether
   an entry was recomputed or replayed from an incremental session, for
   any job count. *)
let assemble st entries =
  let pairs = Hashtbl.create 256 in
  Array.iteri
    (fun k f ->
      List.iter (fun (g, dmax, dmin) -> Hashtbl.replace pairs (f, g) (dmax, dmin)) entries.(k))
    st.ffs;
  let pair_list =
    Hashtbl.fold
      (fun (f, g) (d_max, d_min) acc -> { src_ff = f; dst_ff = g; d_max; d_min } :: acc)
      pairs []
  in
  let critical = List.fold_left (fun acc p -> Float.max acc p.d_max) 0.0 pair_list in
  Rc_obs.Metrics.incr m_analyses;
  Rc_obs.Metrics.add m_pairs (List.length pair_list);
  { pairs = pair_list; critical }

let analyze tech netlist ~positions =
  let st = build_structure tech netlist ~positions in
  let nffs = Array.length st.ffs in
  let entries = Array.make nffs [] in
  Rc_par.Pool.for_with ~min_items:par_cutoff ~init:(make_arena st.n) nffs (fun arena k ->
      run_cone st arena ~visit:ignore entries k);
  assemble st entries

(* --- Incremental sessions: keep the structure, wires, and per-cone
   entries alive across analyses and re-evaluate only the cones whose
   support cells moved. --- *)

type sstate = {
  st : structure;
  prev : Rc_geom.Point.t array;  (* positions of the last analysis *)
  entries : (int * float * float) list array;
  cone_of_cell : int list array;  (* cell -> cones whose delays it feeds *)
  dirty : bool array;  (* scratch, length n *)
  dirty_cone : bool array;  (* scratch, length nffs *)
  arenas : arena Rc_par.Pool.keepalive;  (* per-domain slabs, kept across calls *)
  mutable last : t;
}

type session = {
  tech : Rc_tech.Tech.t;
  netlist : Netlist.t;
  mutable state : sstate option;
}

let make_session tech netlist = { tech; netlist; state = None }

(* Poison the remembered position of each cell so the next analysis
   treats it as moved even if its coordinates compare equal (NaN never
   equals anything, including itself).  Re-evaluating a cone whose
   inputs did not change reproduces its entries bit-identically, so
   this only ever costs time, never results. *)
let invalidate_cells sess cells =
  match sess.state with
  | None -> ()
  | Some s ->
      let n = Array.length s.prev in
      let poison = { Rc_geom.Point.x = Float.nan; y = Float.nan } in
      List.iter (fun c -> if c >= 0 && c < n then s.prev.(c) <- poison) cells

let cold_analyze sess ~positions =
  let st = build_structure sess.tech sess.netlist ~positions in
  let nffs = Array.length st.ffs in
  let entries = Array.make nffs [] in
  let visited = Array.make nffs [] in
  let arenas = Rc_par.Pool.keepalive () in
  Rc_par.Pool.for_with ~min_items:par_cutoff ~reuse:arenas ~init:(make_arena st.n) nffs
    (fun arena k ->
      let vis = ref [ st.ffs.(k) ] in
      run_cone st arena ~visit:(fun c -> vis := c :: !vis) entries k;
      visited.(k) <- !vis);
  let cone_of_cell = Array.make st.n [] in
  (* invert from the last cone down so each cell's list ends up in
     increasing cone order *)
  for k = nffs - 1 downto 0 do
    List.iter (fun c -> cone_of_cell.(c) <- k :: cone_of_cell.(c)) visited.(k)
  done;
  let result = assemble st entries in
  sess.state <-
    Some
      {
        st;
        prev = Array.copy positions;
        entries;
        cone_of_cell;
        dirty = Array.make st.n false;
        dirty_cone = Array.make nffs false;
        arenas;
        last = result;
      };
  result

let analyze_batch sess ~positions =
  match sess.state with
  | None -> cold_analyze sess ~positions
  | Some s ->
      let st = s.st in
      if Array.length positions <> st.n then
        invalid_arg "Sta.analyze_incremental: positions length mismatch";
      let dirty = s.dirty in
      let n_dirty = ref 0 in
      for c = 0 to st.n - 1 do
        let p = positions.(c) and q = s.prev.(c) in
        let d = p.Rc_geom.Point.x <> q.Rc_geom.Point.x || p.Rc_geom.Point.y <> q.Rc_geom.Point.y in
        dirty.(c) <- d;
        if d then incr n_dirty
      done;
      if !n_dirty = 0 then begin
        Rc_obs.Metrics.incr m_replays;
        s.last
      end
      else begin
        Rc_obs.Metrics.add m_dirty_cells !n_dirty;
        (* one batch region for the whole dirty pass: the wire refresh
           and the cone recompute publish sub-jobs to the same captive
           workers instead of opening two pool regions *)
        Rc_par.Pool.region (fun () ->
            (* refresh the wire delays touched by a moved endpoint; each
               cell owns its out-edges, so the writes never collide *)
            Rc_par.Pool.for_ ~min_items:par_cutoff st.n (fun v ->
                let dv = dirty.(v) in
                List.iter
                  (fun e ->
                    if dv || dirty.(e.target) then
                      e.wire <-
                        Elmore.point_delay st.tech positions.(v) positions.(e.target)
                          ~load:e.load)
                  st.out.(v));
            (* cones reached by any dirty cell *)
            let nffs = Array.length st.ffs in
            Array.fill s.dirty_cone 0 nffs false;
            for c = 0 to st.n - 1 do
              if dirty.(c) then
                List.iter (fun k -> s.dirty_cone.(k) <- true) s.cone_of_cell.(c)
            done;
            let n_dirty_cones = ref 0 in
            for k = 0 to nffs - 1 do
              if s.dirty_cone.(k) then incr n_dirty_cones
            done;
            let dirty_cones = Array.make !n_dirty_cones 0 in
            let j = ref 0 in
            for k = 0 to nffs - 1 do
              if s.dirty_cone.(k) then begin
                dirty_cones.(!j) <- k;
                incr j
              end
            done;
            Rc_obs.Metrics.add m_cone_recomputes !n_dirty_cones;
            Rc_obs.Metrics.add m_cone_reuses (nffs - !n_dirty_cones);
            Rc_par.Pool.for_with ~min_items:par_cutoff ~reuse:s.arenas ~init:(make_arena st.n)
              !n_dirty_cones
              (fun arena i -> run_cone st arena ~visit:ignore s.entries dirty_cones.(i)));
        Array.blit positions 0 s.prev 0 st.n;
        let result = assemble st s.entries in
        s.last <- result;
        result
      end

let analyze_incremental = analyze_batch

let adjacencies t = t.pairs
let n_pairs t = List.length t.pairs
let critical_delay t = t.critical

let min_period_zero_skew t ~tech =
  List.fold_left
    (fun acc p -> Float.max acc (p.d_max +. tech.Rc_tech.Tech.t_setup))
    0.0 t.pairs

open Rc_netlist

type adjacency = { src_ff : int; dst_ff : int; d_max : float; d_min : float }

type t = { pairs : adjacency list; critical : float }

let m_analyses = Rc_obs.Metrics.counter "timing.sta.analyses"
let m_pairs = Rc_obs.Metrics.counter "timing.sta.pairs"
let m_cone_sinks = Rc_obs.Metrics.histogram "timing.sta.cone_sinks"

(* Deterministic per-cell process-variation factor in [0.9, 1.1]. *)
let gate_factor c =
  let r = Rc_util.Rng.create ((c * 2654435761) + 97) in
  0.9 +. Rc_util.Rng.float r 0.2

let analyze tech netlist ~positions =
  let n = Netlist.n_cells netlist in
  if Array.length positions <> n then invalid_arg "Sta.analyze: positions length mismatch";
  let pos c = positions.(c) in
  (* out-edges: (target, wire_max, wire_min) per cell; targets restricted
     to logic and flip-flops *)
  let out = Array.make n [] in
  Netlist.iter_nets netlist (fun _ net ->
      Array.iter
        (fun s ->
          match Netlist.kind netlist s with
          | Logic | Flipflop ->
              let load = Elmore.sink_load tech netlist s in
              let d = Elmore.point_delay tech (pos net.driver) (pos s) ~load in
              out.(net.driver) <- (s, d) :: out.(net.driver)
          | Input_pad | Output_pad -> ())
        net.sinks);
  (* gate contribution when the signal leaves a logic cell *)
  let gmax = Array.make n 0.0 and gmin = Array.make n 0.0 in
  for c = 0 to n - 1 do
    if Netlist.kind netlist c = Logic then begin
      let f = gate_factor c in
      gmax.(c) <- tech.Rc_tech.Tech.gate_delay *. f;
      gmin.(c) <- tech.Rc_tech.Tech.gate_delay_min *. f
    end
  done;
  (* topological index of logic cells *)
  let logic_graph = Rc_graph.Digraph.create n in
  for c = 0 to n - 1 do
    if Netlist.kind netlist c = Logic then
      List.iter
        (fun (s, _) ->
          if Netlist.kind netlist s = Logic then Rc_graph.Digraph.add_edge logic_graph c s 0.0)
        out.(c)
  done;
  let topo_idx =
    match Rc_graph.Dag.topological_order logic_graph with
    | None -> invalid_arg "Sta.analyze: combinational cycle"
    | Some order ->
        let idx = Array.make n 0 in
        Array.iteri (fun i v -> idx.(v) <- i) order;
        idx
  in
  (* per-launching-FF cone propagation, stamped to avoid O(n) clears.
     Cones are independent, so they fan out across the domain pool with
     per-domain scratch; each cone returns its (sink, max, min) entries
     in first-touch order, and a sequential replay below inserts them
     into the pairs table in launching-FF order — the same key-insertion
     sequence the sequential loop produces, so the fold order (and the
     adjacency list) is identical for any job count. *)
  let ffs = Netlist.flip_flops netlist in
  let nffs = Array.length ffs in
  let entries = Array.make nffs [] in
  Rc_par.Pool.for_with
    ~init:(fun () ->
      ( Array.make n neg_infinity,
        Array.make n infinity,
        Array.make n (-1),
        Array.make n neg_infinity,
        Array.make n infinity,
        Array.make n (-1) ))
    nffs
    (fun (dist_max, dist_min, stamp, rmax, rmin, rstamp) k ->
      let f = ffs.(k) in
      let order = ref [] in
      let record g dmax dmin =
        if rstamp.(g) <> f then begin
          rstamp.(g) <- f;
          rmax.(g) <- dmax;
          rmin.(g) <- dmin;
          order := g :: !order
        end
        else begin
          rmax.(g) <- Float.max rmax.(g) dmax;
          rmin.(g) <- Float.min rmin.(g) dmin
        end
      in
      let heap = Rc_graph.Heap.create () in
      let touch c dmax dmin =
        if stamp.(c) <> f then begin
          stamp.(c) <- f;
          dist_max.(c) <- dmax;
          dist_min.(c) <- dmin;
          Rc_graph.Heap.push heap (float_of_int topo_idx.(c)) c
        end
        else begin
          if dmax > dist_max.(c) then dist_max.(c) <- dmax;
          if dmin < dist_min.(c) then dist_min.(c) <- dmin
        end
      in
      (* launch: straight wire from FF to each of its sinks *)
      List.iter
        (fun (s, wire) ->
          match Netlist.kind netlist s with
          | Flipflop -> record s wire wire
          | Logic -> touch s wire wire
          | _ -> ())
        out.(f);
      (* cone relaxation in topological order: each logic cell is popped
         after all its in-cone predecessors (their topo indices are
         smaller), so its dist values are final when processed *)
      let rec drain () =
        match Rc_graph.Heap.pop_min heap with
        | None -> ()
        | Some (_, c) ->
            let dmax = dist_max.(c) +. gmax.(c) and dmin = dist_min.(c) +. gmin.(c) in
            List.iter
              (fun (s, wire) ->
                match Netlist.kind netlist s with
                | Flipflop -> record s (dmax +. wire) (dmin +. wire)
                | Logic -> touch s (dmax +. wire) (dmin +. wire)
                | _ -> ())
              out.(c);
            drain ()
      in
      drain ();
      (* histogram merge is a commutative sum, so recording from inside
         the parallel region keeps the snapshot job-count independent *)
      if Rc_obs.Metrics.enabled () then
        Rc_obs.Metrics.observe m_cone_sinks (List.length !order);
      entries.(k) <- List.rev_map (fun g -> (g, rmax.(g), rmin.(g))) !order);
  let pairs = Hashtbl.create 256 in
  Array.iteri
    (fun k f ->
      List.iter (fun (g, dmax, dmin) -> Hashtbl.replace pairs (f, g) (dmax, dmin)) entries.(k))
    ffs;
  let pair_list =
    Hashtbl.fold
      (fun (f, g) (d_max, d_min) acc -> { src_ff = f; dst_ff = g; d_max; d_min } :: acc)
      pairs []
  in
  let critical = List.fold_left (fun acc p -> Float.max acc p.d_max) 0.0 pair_list in
  Rc_obs.Metrics.incr m_analyses;
  Rc_obs.Metrics.add m_pairs (List.length pair_list);
  { pairs = pair_list; critical }

let adjacencies t = t.pairs
let n_pairs t = List.length t.pairs
let critical_delay t = t.critical

let min_period_zero_skew t ~tech =
  List.fold_left
    (fun acc p -> Float.max acc (p.d_max +. tech.Rc_tech.Tech.t_setup))
    0.0 t.pairs

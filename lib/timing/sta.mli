(** Block-oriented static timing analysis over the placed netlist.

    Produces, for every sequentially adjacent flip-flop pair [i ↦ j]
    (combinational logic only between them), the maximum and minimum
    combinational path delays [D_max]/[D_min] that the skew-scheduling
    constraints (Eqs. 6–7) consume. Gate delays carry a deterministic
    per-cell variation factor so the max/min spread is realistic. *)

type adjacency = {
  src_ff : int;  (** Launching flip-flop (cell id). *)
  dst_ff : int;  (** Capturing flip-flop (cell id). *)
  d_max : float;  (** Slowest combinational path, ps. *)
  d_min : float;  (** Fastest combinational path, ps. *)
}

type t

val analyze :
  Rc_tech.Tech.t ->
  Rc_netlist.Netlist.t ->
  positions:Rc_geom.Point.t array ->
  t
(** Run STA with every cell at the given position (indexed by cell id).
    @raise Invalid_argument if positions are missing or combinational
    logic contains a cycle. *)

type session
(** An incremental-analysis session over a fixed netlist: the fanout
    structure, gate variation factors, topological order, and per-cone
    results are kept alive between analyses, so only the cones whose
    support cells moved since the previous call are re-evaluated. *)

val make_session : Rc_tech.Tech.t -> Rc_netlist.Netlist.t -> session

val analyze_batch : session -> positions:Rc_geom.Point.t array -> t
(** Like {!analyze} at the given positions, but incremental against the
    session's previous call, processing all dirty cones in a single
    batch region: the wire-delay refresh and the cone re-evaluations
    fan out to the same captive worker set, and the session's flat
    cone-stamp arenas (one per domain) are reused across calls instead
    of being reallocated per analysis. Cells are compared by exact
    position, so the result — pairs list, its order, and the critical
    delay — is bit-identical to a fresh {!analyze} of the same
    positions; identical positions are a pure replay of the cached
    result. Reuse is reported under the [timing.sta.replays] /
    [timing.sta.cone_recomputes] / [timing.sta.cone_reuses] /
    [timing.sta.dirty_cells] metrics. *)

val analyze_incremental : session -> positions:Rc_geom.Point.t array -> t
(** Alias of {!analyze_batch} (the historical name). *)

val invalidate_cells : session -> int list -> unit
(** Mark cells dirty for the next analysis regardless of whether their
    coordinates changed — the targeted-invalidation hook used by the
    ECO edit path ({!Rc_core.Flow.apply_edits}).  Out-of-range ids and
    a session with no prior analysis are ignored.  Forcing a cone
    re-evaluation can never change results (exact recomputation), so
    this affects work, not values. *)

val adjacencies : t -> adjacency list
(** All sequentially adjacent pairs, each listed once. *)

val n_pairs : t -> int

val critical_delay : t -> float
(** Largest [d_max] over all pairs; 0. when there are no pairs. *)

val min_period_zero_skew : t -> tech:Rc_tech.Tech.t -> float
(** The smallest clock period feasible with zero skew:
    [max (d_max + t_setup)] — the reference point that skew scheduling
    improves on. *)

(** poll(2) readiness for event-driven clients, scaling past the
    1024-fd [Unix.select] cap (bench/loadgen drives thousands of
    connections from one thread through this).

    Usage per round: {!begin_round}, {!add} each fd with its interest
    bits, {!wait}, then read {!revents} back by the index {!add}
    returned. *)

type t

val pollin : int
val pollout : int
val pollerr : int

val create : int -> t
(** Preallocate scratch for up to [capacity] fds per round. *)

val begin_round : t -> unit

val add : t -> Unix.file_descr -> events:int -> int
(** Register [fd] for this round; returns its row index. *)

val wait : t -> timeout_ms:int -> int
(** Poll all registered fds.  Returns the ready count (0 on timeout or
    EINTR); readiness is read back per-row via {!revents}. *)

val revents : t -> int -> int
(** Ready bits ({!pollin} / {!pollout} / {!pollerr}) for row [i] after
    {!wait}. *)

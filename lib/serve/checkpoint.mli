(** Versioned binary snapshots of flow state at iteration boundaries,
    and the save/load/resume session hooks built on
    {!Rc_core.Flow.run}'s [on_iteration] / {!Rc_core.Flow.resume_on}.

    {1 Format}

    A checkpoint file is:
    - line 1: ASCII magic + format version (["RCCKPT 1"]);
    - line 2: one-line JSON metadata ({!meta}: bench, mode, iteration,
      payload byte count and MD5) — readable without touching the blob;
    - the rest: a [Marshal] blob of the closure-free payload record
      (placement, skew targets, assignment, convergence bookkeeping,
      snapshot history, best state, trace events, and the full config).

    The netlist and rings are {e not} stored: they are deterministic
    functions of the embedded config and are regenerated on load.  The
    incremental caches ({!Rc_core.Flow_cache}) are represented by their
    keys — the restored placement and targets — because every cache
    validates against exact inputs; {!load} re-warms the STA session
    from the restored placement so a resumed loop does incremental (not
    cold) timing updates from its first iteration.

    {1 Guarantee}

    Resuming a checkpoint saved at iteration [k] finishes the flow
    {b bit-identically} to the uninterrupted run, for any job count:
    the resumed context re-enters exactly the code path of
    {!Rc_core.Flow.run}'s remaining iterations.

    {1 Version policy}

    [format_version] bumps on any payload or header change; {!load} and
    {!inspect} reject other versions with a descriptive error, never a
    crash.  See [docs/serving.md]. *)

open Rc_core

val format_version : int

type meta = {
  version : int;
  bench : string;
  mode : string;  (** ["netflow"] or ["ilp"]. *)
  iteration : int;  (** The saved iteration boundary (0 = after prologue). *)
  converged : bool;
  payload_bytes : int;
  payload_md5 : string;  (** Hex MD5 of the marshal blob, checked on load. *)
}

val json_of_meta : meta -> Rc_util.Json.t

(** {1 Blob stores}

    Pluggable non-file checkpoint tiers, dispatched on a path prefix.
    The shm transport registers a ["shm:"] store backed by the
    segment's checkpoint arena ({!Transport}), so the serving hot path
    never touches the filesystem; files remain the cold/persistent
    tier.  A store carries the {e exact} RCCKPT bytes a file would
    hold — resume is bit-identical from either tier. *)

type blob_store = {
  bs_save : key:string -> iteration:int -> string -> (string, string) result;
      (** Persist one checkpoint's bytes under [key] (the
          checkpoint-dir token, e.g. ["shm:sid7"]); returns the resume
          token recorded in the {!saver}'s saved list.  Errors are
          treated as best-effort skips. *)
  bs_load : string -> (string, string) result;  (** Token -> bytes. *)
}

val register_blob_store : prefix:string -> blob_store -> unit
(** Route every [save]/[load]/[inspect]/{!saver} path starting with
    [prefix] through the store (replacing any store with the same
    prefix — process-wide, call once at worker startup). *)

val to_blob : Flow_ctx.t -> meta * string
(** The exact bytes {!save} would write — for blob stores. *)

val save : path:string -> Flow_ctx.t -> meta
(** Snapshot an iteration-boundary context.  The write is atomic
    (temp file + rename): a crash mid-save never leaves a torn
    checkpoint behind. *)

val inspect : path:string -> (meta, string) result
(** Read and validate only the header — cheap, no unmarshalling.
    Routes through a registered blob store when the path prefix
    matches, like {!load}. *)

val load :
  ?netlist:Rc_netlist.Netlist.t ->
  ?warm:bool ->
  path:string ->
  unit ->
  (meta * Flow_ctx.t, string) result
(** Rebuild a resumable context: regenerate the netlist from the
    embedded config (or use [netlist] for flows on imported circuits),
    restore every loop-visible field, and (unless [warm:false]) prime
    the incremental STA session from the restored placement.  Errors —
    wrong magic, unsupported version, truncation, digest mismatch — are
    returned, never raised. *)

val load_blob :
  ?netlist:Rc_netlist.Netlist.t ->
  ?warm:bool ->
  string ->
  (meta * Flow_ctx.t, string) result
(** {!load} over in-memory RCCKPT bytes instead of a path — the
    {!Session} store's rehydration path (it already holds the bytes
    from the shm checkpoint arena or an escrow file). *)

val resume :
  ?guard:(Flow_ctx.t -> unit) ->
  ?on_iteration:(Flow_ctx.t -> unit) ->
  path:string ->
  unit ->
  (Flow.outcome, string) result
(** {!load} then {!Rc_core.Flow.resume_on}: finish the flow from the
    saved boundary, bit-identically to never having stopped. *)

(** {1 Session hooks} *)

type saver = {
  save_iteration : Flow_ctx.t -> unit;
      (** Pass as [on_iteration] to {!Rc_core.Flow.run}. *)
  saved : unit -> (int * string) list;
      (** Checkpoints written so far: [(iteration, path)], oldest
          first. *)
}

val saver : ?every:int -> dir:string -> name:string -> unit -> saver
(** A hook that writes [dir/name.iter-<k>.ckpt] at every [every]-th
    iteration boundary (default every iteration, always including a
    converged one).  Creates [dir] if missing.  When [dir] matches a
    registered blob-store prefix, checkpoints go to the store instead
    (best-effort: a full store skips the save and the flow continues
    with its previous checkpoint). *)

val run_with_checkpoints :
  ?every:int ->
  dir:string ->
  name:string ->
  ?guard:(Flow_ctx.t -> unit) ->
  Flow.config ->
  Flow.outcome * (int * string) list
(** {!Rc_core.Flow.run} with a {!saver} attached; returns the outcome
    and the checkpoints written. *)

(** {1 Bit-identity digests} *)

val digest_of_ctx : Flow_ctx.t -> string
(** Canonical hex digest of the result-bearing state (placement, skew
    targets, assignment): equal digests iff bit-identical state. *)

val digest_of_outcome : Flow.outcome -> string
(** Same digest over a finished flow — what the serve protocol reports
    so clients can assert checkpoint/resume bit-identity. *)

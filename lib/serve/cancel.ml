(* Cooperative cancellation tokens with optional monotonic deadlines.

   A token is shared between the requester (who may cancel with a
   reason) and the job (which polls [check] at its cancellation points —
   the flow checks at every stage boundary via Flow's guard hook).
   Deadlines are absolute points on Rc_util.Timer's monotonic clock, so
   wall-clock jumps can neither fire nor postpone them. *)

exception Cancelled of string

type t = {
  lock : Mutex.t;
  mutable reason : string option;  (* set once; first cancel wins *)
  deadline : float option;  (* Timer.now_s seconds, absolute *)
}

let create ?deadline () = { lock = Mutex.create (); reason = None; deadline }

let none () = create ()

let deadline t = t.deadline

let cancel t ~reason =
  Mutex.lock t.lock;
  if t.reason = None then t.reason <- Some reason;
  Mutex.unlock t.lock

let reason t =
  Mutex.lock t.lock;
  let r = t.reason in
  Mutex.unlock t.lock;
  (* an expired deadline is a cancellation even if nobody polled yet *)
  match r with
  | Some _ -> r
  | None -> (
      match t.deadline with
      | Some d when Rc_util.Timer.now_s () > d -> Some "deadline exceeded"
      | _ -> None)

let cancelled t = reason t <> None

let check t = match reason t with Some r -> raise (Cancelled r) | None -> ()

let time_left t =
  match t.deadline with None -> None | Some d -> Some (d -. Rc_util.Timer.now_s ())

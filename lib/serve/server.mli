(** Concurrent request server speaking the {!Protocol} over a
    Unix-domain socket or stdio.

    The scheduler's worker {e domains} run the jobs; the server's
    {e threads} do I/O — one reader per connection plus one short-lived
    waiter per async job, writing its response under the connection's
    write mutex.  Responses interleave by completion order and are
    matched to requests by the echoed ["id"].

    Graceful drain — on SIGTERM, SIGINT, or the ["shutdown"] op — stops
    accepting connections and jobs, finishes every queued and running
    job, flushes every in-flight response, then returns.  A hard kill
    instead is what {!Checkpoint} recovery is for. *)

type t

type identity = { worker_id : int; restarts : int }
(** Who this server is within a multi-process tier: the {!Supervisor}
    spawns each worker with its slot id and restart generation, and the
    [status] op reports them so operators can tell which worker
    answered.  Defaults to [{worker_id = 0; restarts = 0}] for the
    single-process tier. *)

val create :
  ?workers:int ->
  ?max_pending:int ->
  ?identity:identity ->
  ?session_capacity:int ->
  ?session_tier:Session.tier ->
  ?session_dir:string ->
  unit ->
  t
(** A server with its own {!Scheduler} ([workers] domains, bounded
    queue of [max_pending]) and its own {!Session} store for the online
    ECO ops ([session_capacity] resident sessions, escrowed through
    [session_tier] — default a {!Session.file_tier} under [session_dir],
    itself defaulting to a per-process temp directory).  Exposed for
    in-process tests; the entry points below call it themselves. *)

val scheduler : t -> Scheduler.t
(** The server's scheduler — the {!Worker} heartbeat reads its counts
    into the shared-memory segment. *)

val sessions : t -> Session.t
(** The server's ECO session store. *)

val handle_line : t -> respond:(Rc_util.Json.t -> unit) -> string -> unit
(** Dispatch one request line.  [respond] is invoked exactly once per
    line — synchronously for [checkpoint]/[status]/[shutdown] and
    parse errors, from a waiter thread for async ops — so it must be
    thread-safe. *)

val status_json : t -> Rc_util.Json.t
(** The [status] result document: uptime, worker count, queue counts,
    completed-job latency percentiles, throughput. *)

val request_stop : t -> unit
(** Begin draining: idempotent, callable from signal handlers. *)

val stopping : t -> bool

val drain : t -> unit
(** Stop admitting, wait for all jobs and in-flight responses, shut the
    scheduler down. *)

val run_unix :
  ?workers:int ->
  ?max_pending:int ->
  ?session_capacity:int ->
  ?session_dir:string ->
  path:string ->
  unit ->
  unit
(** Listen on a Unix-domain socket at [path] (an existing socket file
    is replaced) and serve until drained. *)

val run_stdio :
  ?workers:int ->
  ?max_pending:int ->
  ?session_capacity:int ->
  ?session_dir:string ->
  unit ->
  unit
(** Serve newline-delimited requests from stdin, responses to stdout,
    until EOF or shutdown. *)

(* The serve wire protocol: line-delimited JSON requests and responses,
   and the job bodies each request dispatches to.

   One request per line, one response per line, matched by the client's
   "id" field (echoed verbatim), so responses may arrive out of request
   order — the whole point of a concurrent server.  Heavy operations
   (flow, report, sweep, variation) become scheduler jobs; cheap ones
   (checkpoint inspection, status, shutdown) are answered inline by the
   server.  Checkpoint payloads never cross the socket: requests carry
   checkpoint *paths*, which keeps the protocol small and the Marshal
   blob off the untrusted channel.

   Request envelope:   {"id": any, "op": string, "priority"?: int,
                        "deadline_ms"?: number, ...op-specific fields}
   Response envelope:  {"id": any, "ok": true,  "result": {...}}
                     | {"id": any, "ok": false, "error": "reason"} *)

open Rc_core
module Json = Rc_util.Json

(* ---- op-specific request payloads ------------------------------------- *)

type flow_request = {
  f_bench : Bench_suite.bench;
  f_mode : Flow.mode;
  f_max_iterations : int option;
  f_incremental : bool option;
  f_checkpoint_every : int option;  (* None = no checkpointing *)
  f_checkpoint_dir : string option;
  f_resume_from : string option;  (* checkpoint path; overrides a fresh run *)
}

type report_request = { r_benches : Bench_suite.bench list; r_timings : bool }

type sweep_request = { s_bench : Bench_suite.bench; s_grids : int list }

type variation_request = { v_bench : Bench_suite.bench; v_mode : Flow.mode }

type session_open_request = {
  so_flow : flow_request;
      (* the flow that seeds the session: a fresh run or a resume_from
         checkpoint — either way the session holds its shipped state *)
  so_session : int option;
      (* session id; the supervisor stamps its dispatch sid here so the
         id is cluster-unique, a single-process server assigns its own *)
}

type session_edit_request = {
  se_session : int;
  se_seq : int option;
      (* 1-based applied-batch sequence number; the supervisor stamps
         it so a crash-redispatched edit is applied exactly once *)
  se_edits : Flow.edit list;
}

type op =
  | Flow_op of flow_request
  | Report_op of report_request
  | Sweep_op of sweep_request
  | Variation_op of variation_request
  | Session_open_op of session_open_request
  | Session_edit_op of session_edit_request
  | Session_query_op of int
  | Session_close_op of int
  | Checkpoint_op of string  (* inspect a checkpoint file *)
  | Status_op
  | Restart_op  (* rolling worker restart; a supervisor-tier operation *)
  | Shutdown_op

type request = {
  req_id : Json.t;  (* echoed back; Null when the client sent none *)
  priority : int;
  deadline_s : float option;  (* relative seconds, from "deadline_ms" *)
  op : op;
}

(* ---- parsing ---------------------------------------------------------- *)

let ( let* ) = Result.bind

let bench_of_json j =
  match Option.bind j Json.to_string_opt with
  | None -> Error "missing or invalid \"bench\""
  | Some name -> (
      match Bench_suite.find name with
      | Some b -> Ok b
      | None ->
          Error
            (Printf.sprintf "unknown bench %S (known: %s)" name
               (String.concat ", " Bench_suite.names)))

let mode_of_json ?(default = Flow.Netflow) j =
  match Option.bind j Json.to_string_opt with
  | None -> Ok default
  | Some "netflow" -> Ok Flow.Netflow
  | Some "ilp" -> Ok Flow.Ilp
  | Some m -> Error (Printf.sprintf "unknown mode %S (netflow | ilp)" m)

let opt_field conv = function
  | None -> Ok None
  | Some j -> ( match conv j with Some v -> Ok (Some v) | None -> Error "invalid field")

let parse_flow j =
  let resuming =
    match Option.bind (Json.member "resume_from" j) Json.to_string_opt with
    | Some _ -> true
    | None -> false
  in
  let* f_bench =
    (* a resume takes its config from the checkpoint; "bench" is only
       required for fresh runs *)
    match Json.member "bench" j with
    | None when resuming -> Ok Bench_suite.tiny
    | b -> bench_of_json b
  in
  let* f_mode = mode_of_json (Json.member "mode" j) in
  let* f_max_iterations =
    Result.map_error
      (fun _ -> "invalid \"max_iterations\"")
      (opt_field Json.to_int_opt (Json.member "max_iterations" j))
  in
  let* f_incremental =
    Result.map_error
      (fun _ -> "invalid \"incremental\"")
      (opt_field Json.to_bool_opt (Json.member "incremental" j))
  in
  let* f_checkpoint_every =
    Result.map_error
      (fun _ -> "invalid \"checkpoint_every\"")
      (opt_field Json.to_int_opt (Json.member "checkpoint_every" j))
  in
  let* f_checkpoint_dir =
    Result.map_error
      (fun _ -> "invalid \"checkpoint_dir\"")
      (opt_field Json.to_string_opt (Json.member "checkpoint_dir" j))
  in
  let* f_resume_from =
    Result.map_error
      (fun _ -> "invalid \"resume_from\"")
      (opt_field Json.to_string_opt (Json.member "resume_from" j))
  in
  Ok
    (Flow_op
       {
         f_bench;
         f_mode;
         f_max_iterations;
         f_incremental;
         f_checkpoint_every;
         f_checkpoint_dir;
         f_resume_from;
       })

let parse_report j =
  let* r_benches =
    match Json.member "benches" j with
    | None -> Ok Bench_suite.quick
    | Some bs -> (
        match Json.to_list_opt bs with
        | None -> Error "invalid \"benches\" (expected a list of names)"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* b = bench_of_json (Some item) in
                Ok (b :: acc))
              (Ok []) items
            |> Result.map List.rev)
  in
  let* r_timings =
    Result.map_error
      (fun _ -> "invalid \"timings\"")
      (opt_field Json.to_bool_opt (Json.member "timings" j))
  in
  Ok (Report_op { r_benches; r_timings = Option.value r_timings ~default:false })

let parse_sweep j =
  let* s_bench = bench_of_json (Json.member "bench" j) in
  let* s_grids =
    match Json.member "grids" j with
    | None -> Ok [ 2; 3; 4; 5 ]
    | Some gs -> (
        match
          Option.map
            (List.map Json.to_int_opt)
            (Json.to_list_opt gs)
        with
        | Some ints when List.for_all Option.is_some ints ->
            Ok (List.map Option.get ints)
        | _ -> Error "invalid \"grids\" (expected a list of ints)")
  in
  if s_grids = [] then Error "\"grids\" must be non-empty"
  else Ok (Sweep_op { s_bench; s_grids })

let parse_variation j =
  let* v_bench = bench_of_json (Json.member "bench" j) in
  let* v_mode = mode_of_json (Json.member "mode" j) in
  Ok (Variation_op { v_bench; v_mode })

let parse_checkpoint j =
  match Option.bind (Json.member "path" j) Json.to_string_opt with
  | Some p -> Ok (Checkpoint_op p)
  | None -> Error "missing or invalid \"path\""

(* ---- session ops ------------------------------------------------------- *)

let session_of_json j = Option.bind (Json.member "session" j) Json.to_int_opt

let require_session j =
  match session_of_json j with
  | Some sid -> Ok sid
  | None -> Error "missing or invalid \"session\""

let parse_session_open j =
  let* flow_op = parse_flow j in
  let so_flow = match flow_op with Flow_op f -> f | _ -> assert false in
  Ok (Session_open_op { so_flow; so_session = session_of_json j })

let num_field name j =
  match Option.bind (Json.member name j) Json.to_float_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "edit: missing or invalid %S" name)

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "edit: missing or invalid %S" name)

(* one edit object: {"kind": "move" | "shift" | "retarget" | "period",
   ...kind-specific fields} *)
let parse_edit j =
  match Option.bind (Json.member "kind" j) Json.to_string_opt with
  | None -> Error "edit: missing or invalid \"kind\""
  | Some "move" ->
      let* c = int_field "cell" j in
      let* x = num_field "x" j in
      let* y = num_field "y" j in
      Ok (Flow.Move_cells [ (c, { Rc_geom.Point.x; y }) ])
  | Some "shift" ->
      let* xmin = num_field "xmin" j in
      let* ymin = num_field "ymin" j in
      let* xmax = num_field "xmax" j in
      let* ymax = num_field "ymax" j in
      let* dx = num_field "dx" j in
      let* dy = num_field "dy" j in
      if xmax < xmin || ymax < ymin then Error "edit: degenerate \"shift\" block"
      else Ok (Flow.Shift_block (Rc_geom.Rect.make ~xmin ~ymin ~xmax ~ymax, dx, dy))
  | Some "retarget" ->
      let* ff = int_field "ff" j in
      let* ring = int_field "ring" j in
      Ok (Flow.Retarget_ff (ff, ring))
  | Some "period" ->
      let* p = num_field "period" j in
      if Float.is_finite p && p > 0.0 then Ok (Flow.Set_clock_period p)
      else Error "edit: \"period\" must be positive"
  | Some k -> Error (Printf.sprintf "edit: unknown kind %S (move | shift | retarget | period)" k)

let parse_session_edit j =
  let* se_session = require_session j in
  let* se_seq =
    Result.map_error
      (fun _ -> "invalid \"seq\"")
      (opt_field Json.to_int_opt (Json.member "seq" j))
  in
  let* se_edits =
    match Option.bind (Json.member "edits" j) Json.to_list_opt with
    | None -> Error "missing or invalid \"edits\" (expected a list)"
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* e = parse_edit item in
            Ok (e :: acc))
          (Ok []) items
        |> Result.map List.rev
  in
  Ok (Session_edit_op { se_session; se_seq; se_edits })

(* Parse errors carry the request id (when one could be recovered) so
   the error response is still addressable, and the offending op name
   (when the request named one) so the error envelope can echo it —
   a client triaging a mixed workload sees *which* op was rejected,
   not just a generic parse error. *)
let parse_request line =
  let* j = Result.map_error (fun e -> (Json.Null, None, e)) (Json.of_string line) in
  let req_id = Option.value (Json.member "id" j) ~default:Json.Null in
  let attach op_result =
    let* op = op_result in
    let priority =
      Option.value (Option.bind (Json.member "priority" j) Json.to_int_opt) ~default:0
    in
    let deadline_s =
      Option.map
        (fun ms -> ms /. 1000.0)
        (Option.bind (Json.member "deadline_ms" j) Json.to_float_opt)
    in
    Ok { req_id; priority; deadline_s; op }
  in
  match Option.bind (Json.member "op" j) Json.to_string_opt with
  | None -> Error (req_id, None, "missing or invalid \"op\"")
  | Some name ->
      Result.map_error
        (fun e -> (req_id, Some name, e))
        (attach
           (match name with
           | "flow" -> parse_flow j
           | "report" -> parse_report j
           | "sweep" -> parse_sweep j
           | "variation" -> parse_variation j
           | "session_open" -> parse_session_open j
           | "session_edit" -> parse_session_edit j
           | "session_query" -> Result.map (fun s -> Session_query_op s) (require_session j)
           | "session_close" -> Result.map (fun s -> Session_close_op s) (require_session j)
           | "checkpoint" -> parse_checkpoint j
           | "status" -> Ok Status_op
           | "restart" -> Ok Restart_op
           | "shutdown" -> Ok Shutdown_op
           | other ->
               Error
                 (Printf.sprintf
                    "unknown op %S (flow | report | sweep | variation | session_open \
                     | session_edit | session_query | session_close | checkpoint | status \
                     | restart | shutdown)"
                    other)))

(* ---- response rendering ----------------------------------------------- *)

let response_ok ~id result = Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ]

let response_error ~id ?op msg =
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool false) ]
    @ (match op with Some o -> [ ("op", Json.String o) ] | None -> [])
    @ [ ("error", Json.String msg) ])

let json_of_snapshot (s : Flow.snapshot) =
  Json.Obj
    [
      ("iteration", Json.Int s.Flow.iteration);
      ("afd_um", Json.Float s.Flow.afd);
      ("tapping_wl_um", Json.Float s.Flow.tapping_wl);
      ("signal_wl_um", Json.Float s.Flow.signal_wl);
      ("total_wl_um", Json.Float s.Flow.total_wl);
      ("clock_mw", Json.Float s.Flow.clock_mw);
      ("signal_mw", Json.Float s.Flow.signal_mw);
      ("total_mw", Json.Float s.Flow.total_mw);
      ("max_load_ff", Json.Float s.Flow.max_load_ff);
    ]

let mode_name = function Flow.Netflow -> "netflow" | Flow.Ilp -> "ilp"

let json_of_outcome ?(checkpoints = []) (o : Flow.outcome) =
  Json.Obj
    [
      ("bench", Json.String o.Flow.cfg.Flow.bench.Bench_suite.bname);
      ("mode", Json.String (mode_name o.Flow.cfg.Flow.mode));
      ("iterations", Json.Int (List.length o.Flow.history));
      ("slack_ps", Json.Float o.Flow.slack);
      ("stage4_slack_ps", Json.Float o.Flow.stage4_slack);
      ("n_pairs", Json.Int o.Flow.n_pairs);
      ("base", json_of_snapshot o.Flow.base);
      ("final", json_of_snapshot o.Flow.final);
      ("history", Json.List (List.map json_of_snapshot o.Flow.history));
      ("digest", Json.String (Checkpoint.digest_of_outcome o));
      ( "checkpoints",
        Json.List
          (List.map
             (fun (k, path) ->
               Json.Obj [ ("iteration", Json.Int k); ("path", Json.String path) ])
             checkpoints) );
    ]

(* ---- job bodies -------------------------------------------------------- *)

(* the flow's cooperative-cancellation point: poll the token at every
   stage boundary *)
let guard_of token = fun (_ : Flow_ctx.t) -> Cancel.check token

let config_of_flow_request (r : flow_request) =
  let base = Flow.default_config ~mode:r.f_mode r.f_bench in
  {
    base with
    Flow.max_iterations = Option.value r.f_max_iterations ~default:base.Flow.max_iterations;
    incremental = Option.value r.f_incremental ~default:base.Flow.incremental;
  }

(* the flow that seeds a session: a resume or a fresh run, with the
   checkpointing fields ignored (the session store escrows its own
   state after every applied batch) *)
let outcome_of_flow_request (r : flow_request) token =
  match r.f_resume_from with
  | Some path -> (
      match Checkpoint.resume ~guard:(guard_of token) ~path () with
      | Ok outcome -> outcome
      | Error e -> failwith ("resume failed: " ^ e))
  | None -> Flow.run ~guard:(guard_of token) (config_of_flow_request r)

let run_flow (r : flow_request) token =
  match r.f_resume_from with
  | Some path -> (
      match Checkpoint.resume ~guard:(guard_of token) ~path () with
      | Ok outcome -> json_of_outcome outcome
      | Error e -> failwith ("resume failed: " ^ e))
  | None -> (
      let cfg = config_of_flow_request r in
      match r.f_checkpoint_every with
      | None ->
          json_of_outcome (Flow.run ~guard:(guard_of token) cfg)
      | Some every ->
          let dir = Option.value r.f_checkpoint_dir ~default:"checkpoints" in
          let name =
            Printf.sprintf "%s-%s" r.f_bench.Bench_suite.bname (mode_name r.f_mode)
          in
          let outcome, checkpoints =
            Checkpoint.run_with_checkpoints ~every ~dir ~name ~guard:(guard_of token) cfg
          in
          (* shm-arena checkpoints are supervisor plumbing, freed when
             the response lands — never expose their tokens to clients *)
          let checkpoints =
            List.filter
              (fun (_, p) -> not (String.starts_with ~prefix:"shm:" p))
              checkpoints
          in
          json_of_outcome ~checkpoints outcome)

let run_report (r : report_request) token =
  Cancel.check token;
  (* Paper_report runs its circuits sequentially; poll between them via
     the flow guard is not plumbed there, so the report job checks only
     at its start — the per-circuit flows are the atomic unit *)
  let reports = Paper_report.collect ~benches:r.r_benches () in
  Cancel.check token;
  Paper_report.json_of (Paper_report.build ~timings:r.r_timings reports)

let run_sweep (r : sweep_request) token =
  Cancel.check token;
  let points, best = Ring_sweep.sweep r.s_bench ~grids:r.s_grids in
  let json_of_point (p : Ring_sweep.point) =
    Json.Obj
      [
        ("grid", Json.Int p.Ring_sweep.grid);
        ("n_rings", Json.Int p.Ring_sweep.n_rings);
        ("ring_metal_um", Json.Float p.Ring_sweep.ring_metal);
        ("slack_ps", Json.Float p.Ring_sweep.slack);
        ("final", json_of_snapshot p.Ring_sweep.final);
      ]
  in
  Json.Obj
    [
      ("bench", Json.String r.s_bench.Bench_suite.bname);
      ("points", Json.List (List.map json_of_point points));
      ("best_grid", Json.Int best.Ring_sweep.grid);
    ]

let run_variation (r : variation_request) token =
  let outcome = Flow.run ~guard:(guard_of token) (Flow.default_config ~mode:r.v_mode r.v_bench) in
  Cancel.check token;
  let result = Variation_study.run outcome in
  let json_of_summary (s : Rc_variation.Variation.summary) =
    Json.Obj
      [
        ("nominal_max_path_ps", Json.Float s.Rc_variation.Variation.nominal_max_path);
        ("mean_spread_ps", Json.Float s.Rc_variation.Variation.mean_spread);
        ("p95_spread_ps", Json.Float s.Rc_variation.Variation.p95_spread);
        ("max_spread_ps", Json.Float s.Rc_variation.Variation.max_spread);
        ("relative_spread", Json.Float s.Rc_variation.Variation.relative_spread);
      ]
  in
  Json.Obj
    [
      ("bench", Json.String r.v_bench.Bench_suite.bname);
      ("tree", json_of_summary result.Variation_study.tree);
      ("rotary", json_of_summary result.Variation_study.rotary);
    ]

let inspect_checkpoint path =
  match Checkpoint.inspect ~path with
  | Ok meta -> Ok (Checkpoint.json_of_meta meta)
  | Error e -> Error e

(* the scheduler job body for an async op; sync ops (checkpoint, status,
   shutdown) are handled by the server inline, and session ops by the
   server's {!Session} store (which owns the resident state the job
   bodies need) *)
let job_of_op = function
  | Flow_op r -> Some (fun token -> run_flow r token)
  | Report_op r -> Some (fun token -> run_report r token)
  | Sweep_op r -> Some (fun token -> run_sweep r token)
  | Variation_op r -> Some (fun token -> run_variation r token)
  | Session_open_op _ | Session_edit_op _ | Session_query_op _ | Session_close_op _
  | Checkpoint_op _ | Status_op | Restart_op | Shutdown_op ->
      None

let op_name = function
  | Flow_op r ->
      Printf.sprintf "flow:%s/%s%s" r.f_bench.Bench_suite.bname (mode_name r.f_mode)
        (if r.f_resume_from <> None then ":resume" else "")
  | Report_op _ -> "report"
  | Sweep_op r -> "sweep:" ^ r.s_bench.Bench_suite.bname
  | Variation_op r -> "variation:" ^ r.v_bench.Bench_suite.bname
  | Session_open_op r ->
      Printf.sprintf "session_open:%s/%s" r.so_flow.f_bench.Bench_suite.bname
        (mode_name r.so_flow.f_mode)
  | Session_edit_op r -> Printf.sprintf "session_edit:%d" r.se_session
  | Session_query_op s -> Printf.sprintf "session_query:%d" s
  | Session_close_op s -> Printf.sprintf "session_close:%d" s
  | Checkpoint_op _ -> "checkpoint"
  | Status_op -> "status"
  | Restart_op -> "restart"
  | Shutdown_op -> "shutdown"

(* A supervised worker process: the exec'd side of one supervisor
   socketpair (`rotary_cli serve-worker`, socketpair dup2'd to stdin).
   Runs a full Server/Scheduler internally — a fresh image, so domain
   creation here has none of the fork hazards — and speaks the same
   NDJSON protocol over the inherited fd, plus one control form the
   supervisor uses for rolling restarts:

     {"ctl": "drain"}   finish queued + running jobs, flush responses,
                        write a final shm row, _exit 0

   A heartbeat thread publishes liveness, scheduler counts and the
   fixed solver-metric table into this slot's shm worker region every
   [heartbeat_interval_s].  Exit is always Unix._exit so the response
   fd is never double-flushed by at_exit machinery. *)

module Json = Rc_util.Json
module Timer = Rc_util.Timer
module Metrics = Rc_obs.Metrics

let heartbeat_interval_s = 0.05

(* stderr via Unix.write: no channel locks, safe post-fork *)
let logf fmt =
  Printf.ksprintf
    (fun s ->
      let line = s ^ "\n" in
      ignore (Unix.write_substring Unix.stderr line 0 (String.length line)))
    fmt

let job_wall_ms () =
  match Metrics.value_of "serve.job.wall" with
  | Some (Metrics.Timer { total_s; _ }) ->
      int_of_float (Float.round (total_s *. 1000.0))
  | _ -> 0

let worker_row ~slot:_ ~started_ns ~requests ~responses srv : Shm.worker_row =
  let c = Scheduler.counts (Server.scheduler srv) in
  {
    Shm.pid = Unix.getpid ();
    state = (if Server.stopping srv then Shm.W_draining else Shm.W_serving);
    started_ns;
    heartbeat_ns = Int64.to_int (Timer.now_ns ());
    requests = Atomic.get requests;
    responses = Atomic.get responses;
    submitted = c.Scheduler.submitted;
    completed = c.Scheduler.completed;
    failed = c.Scheduler.failed;
    cancelled = c.Scheduler.cancelled;
    rejected = c.Scheduler.rejected;
    queue_depth = c.Scheduler.pending;
    running = c.Scheduler.running;
    job_wall_ms = job_wall_ms ();
    solver = Metrics.export_values ();
  }

let run ?workers ?max_pending ~shm ~slot ~restarts ~fd () =
  (* the supervisor owns signal policy; a worker dies by drain ctl,
     socket EOF, or SIGKILL — a ^C on the supervisor's terminal must
     not take the workers down before they can drain *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sighup Sys.Signal_ignore with Invalid_argument _ -> ());
  let started_ns = Int64.to_int (Timer.now_ns ()) in
  let requests = Atomic.make 0 and responses = Atomic.make 0 in
  Shm.write_worker shm ~slot
    {
      Shm.empty_worker_row with
      Shm.pid = Unix.getpid ();
      state = Shm.W_starting;
      started_ns;
      heartbeat_ns = started_ns;
    };
  let srv =
    Server.create ?workers ?max_pending
      ~identity:{ Server.worker_id = slot; restarts }
      ()
  in
  let publish () =
    Shm.write_worker shm ~slot (worker_row ~slot ~started_ns ~requests ~responses srv)
  in
  let stopped = Atomic.make false in
  let heartbeat () =
    while not (Atomic.get stopped) do
      publish ();
      Thread.delay heartbeat_interval_s
    done
  in
  let hb = Thread.create heartbeat () in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wlock = Mutex.create () in
  let respond j =
    try
      Mutex.protect wlock (fun () ->
          output_string oc (Json.to_line j);
          output_char oc '\n';
          flush oc);
      Atomic.incr responses
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  let finish code =
    Server.drain srv;
    Atomic.set stopped true;
    Thread.join hb;
    Shm.write_worker shm ~slot
      { (worker_row ~slot ~started_ns ~requests ~responses srv) with Shm.state = Shm.W_stopped };
    (try flush oc with Sys_error _ -> ());
    Unix._exit code
  in
  let is_drain_ctl line =
    match Json.of_string line with
    | Ok j -> (
        match Option.bind (Json.member "ctl" j) Json.to_string_opt with
        | Some "drain" -> true
        | _ -> false)
    | Error _ -> false
  in
  logf "rotary worker[%d]: up (pid %d, restarts %d)" slot (Unix.getpid ()) restarts;
  (try
     let rec loop () =
       match input_line ic with
       | line ->
           let line = String.trim line in
           if line <> "" then
             if is_drain_ctl line then (
               logf "rotary worker[%d]: draining" slot;
               Server.request_stop srv;
               publish ())
             else (
               Atomic.incr requests;
               Server.handle_line srv ~respond line);
           if Server.stopping srv then () else loop ()
       | exception End_of_file -> ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  finish 0

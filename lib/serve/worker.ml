(* A supervised worker process: the exec'd side of one supervisor
   socketpair (`rotary_cli serve-worker`, socketpair dup2'd to stdin).
   Runs a full Server/Scheduler internally — a fresh image, so domain
   creation here has none of the fork hazards — and speaks the same
   NDJSON protocol over the inherited fd, plus two control forms:

     {"ctl": "drain"}   finish queued + running jobs, flush responses,
                        write a final shm row, _exit 0
     {"ctl": "ring"}    doorbell: descriptors were published into this
                        slot's shm job ring (shm transport only)

   Under `--transport shm` the fd is a doorbell + fallback channel:
   jobs normally arrive as ring descriptors with arena payloads, and
   responses leave the same way (falling back to NDJSON lines on the
   fd when an arena or ring is full).  The worker also registers the
   "shm:" checkpoint blob store so injected checkpoints and crash
   resumes go through the shared checkpoint arena, not the filesystem.

   A heartbeat thread publishes liveness, scheduler counts, transport
   counters and the fixed solver-metric table into this slot's shm
   worker region every [heartbeat_interval_s].  Exit is always
   Unix._exit so the response fd is never double-flushed by at_exit
   machinery. *)

module Json = Rc_util.Json
module Timer = Rc_util.Timer
module Metrics = Rc_obs.Metrics

let heartbeat_interval_s = 0.05

(* stderr via Unix.write: no channel locks, safe post-fork *)
let logf fmt =
  Printf.ksprintf
    (fun s ->
      let line = s ^ "\n" in
      ignore (Unix.write_substring Unix.stderr line 0 (String.length line)))
    fmt

let job_wall_ms () =
  match Metrics.value_of "serve.job.wall" with
  | Some (Metrics.Timer { total_s; _ }) ->
      int_of_float (Float.round (total_s *. 1000.0))
  | _ -> 0

let worker_row ~slot:_ ~started_ns ~requests ~responses ~core ~tr srv : Shm.worker_row =
  let c = Scheduler.counts (Server.scheduler srv) in
  let shm_jobs, shm_responses, shm_fallbacks, ckpt_saves, ckpt_skips =
    match tr with Some w -> Transport.counters w | None -> (0, 0, 0, 0, 0)
  in
  {
    Shm.pid = Unix.getpid ();
    state = (if Server.stopping srv then Shm.W_draining else Shm.W_serving);
    started_ns;
    heartbeat_ns = Int64.to_int (Timer.now_ns ());
    requests = Atomic.get requests;
    responses = Atomic.get responses;
    submitted = c.Scheduler.submitted;
    completed = c.Scheduler.completed;
    failed = c.Scheduler.failed;
    cancelled = c.Scheduler.cancelled;
    rejected = c.Scheduler.rejected;
    queue_depth = c.Scheduler.pending;
    running = c.Scheduler.running;
    job_wall_ms = job_wall_ms ();
    core;
    shm_jobs;
    shm_responses;
    shm_fallbacks;
    ckpt_saves;
    ckpt_skips;
    solver = Metrics.export_values ();
  }

let run ?workers ?max_pending ?(transport = Shm.Ndjson) ?pin_core
    ?session_capacity ?session_dir ~shm ~slot ~restarts ~fd () =
  (* the supervisor owns signal policy; a worker dies by drain ctl,
     socket EOF, or SIGKILL — a ^C on the supervisor's terminal must
     not take the workers down before they can drain *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sighup Sys.Signal_ignore with Invalid_argument _ -> ());
  (* the export table this worker publishes into its shm row is only
     live if the registry records; recording is sharded per domain and
     contention-free, so a dedicated worker always pays it *)
  Metrics.set_enabled true;
  let core =
    match pin_core with
    | None -> -1
    | Some c -> (
        match Affinity.pin_self c with
        | Affinity.Pinned -> c mod Affinity.ncores ()
        | Affinity.Failed ->
            logf "rotary worker[%d]: sched_setaffinity(core %d) failed, running unpinned" slot c;
            -1
        | Affinity.Unsupported ->
            logf "rotary worker[%d]: CPU pinning unsupported on this platform" slot;
            -1)
  in
  let started_ns = Int64.to_int (Timer.now_ns ()) in
  let requests = Atomic.make 0 and responses = Atomic.make 0 in
  let tr =
    match transport with
    | Shm.Shm_rings ->
        let w = Transport.worker_side shm ~slot in
        Checkpoint.register_blob_store ~prefix:"shm:" (Transport.blob_store w);
        Some w
    | Shm.Ndjson -> None
  in
  Shm.write_worker shm ~slot
    {
      Shm.empty_worker_row with
      Shm.pid = Unix.getpid ();
      state = Shm.W_starting;
      started_ns;
      heartbeat_ns = started_ns;
      core;
    };
  (* ECO session escrow: every worker shares [session_dir] so a sibling
     can rehydrate a crashed worker's sessions; under the shm transport
     the checkpoint arena is the hot tier with files as fallback *)
  let file_escrow =
    Session.file_tier
      ~dir:
        (match session_dir with
        | Some d -> d
        | None -> Filename.concat (Filename.get_temp_dir_name ()) "rotary-eco")
  in
  let session_tier =
    match tr with
    | None -> file_escrow
    | Some w ->
        let bs = Transport.blob_store w in
        let shm_escrow =
          {
            Session.t_save =
              (fun ~sid ~iteration bytes ->
                match
                  bs.Checkpoint.bs_save ~key:(Transport.key_of_sid sid)
                    ~iteration bytes
                with
                | Ok _ -> Ok ()
                | Error e -> Error e);
            t_load =
              (fun ~sid -> bs.Checkpoint.bs_load (Transport.key_of_sid sid));
            t_free = (fun ~sid -> Transport.ckpt_free shm ~sid);
          }
        in
        Session.chain shm_escrow file_escrow
  in
  let srv =
    Server.create ?workers ?max_pending
      ~identity:{ Server.worker_id = slot; restarts }
      ?session_capacity ~session_tier ()
  in
  let publish () =
    Shm.write_worker shm ~slot (worker_row ~slot ~started_ns ~requests ~responses ~core ~tr srv)
  in
  let stopped = Atomic.make false in
  let heartbeat () =
    while not (Atomic.get stopped) do
      publish ();
      Thread.delay heartbeat_interval_s
    done
  in
  let hb = Thread.create heartbeat () in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wlock = Mutex.create () in
  let write_line line =
    Mutex.protect wlock (fun () ->
        output_string oc line;
        output_char oc '\n';
        flush oc)
  in
  let respond_fd j =
    try
      write_line (Json.to_line j);
      Atomic.incr responses
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  (* shm-transport respond: serialize once (session id first, so the
     supervisor can splice the client id without parsing), publish via
     the response ring, degrade to the fd on arena/ring exhaustion *)
  let respond =
    match tr with
    | None -> respond_fd
    | Some w ->
        fun j ->
          let line = Json.to_line j in
          let sid = match Json.member "id" j with Some (Json.Int s) -> s | _ -> 0 in
          if sid <= 0 then respond_fd j
          else (
            match Transport.send_response w ~sid line with
            | `Sent true -> (
                try write_line Transport.doorbell_line
                with Sys_error _ | Unix.Unix_error _ -> ())
            | `Sent false -> ()
            | `Full -> (
                try
                  write_line line;
                  Atomic.incr responses
                with Sys_error _ | Unix.Unix_error _ -> ()))
  in
  let finish code =
    Server.drain srv;
    Atomic.set stopped true;
    Thread.join hb;
    Shm.write_worker shm ~slot
      {
        (worker_row ~slot ~started_ns ~requests ~responses ~core ~tr srv) with
        Shm.state = Shm.W_stopped;
      };
    (try flush oc with Sys_error _ -> ());
    Unix._exit code
  in
  let ctl_of line =
    match Json.of_string line with
    | Ok j -> Option.bind (Json.member "ctl" j) Json.to_string_opt
    | Error _ -> None
  in
  let handle_line line =
    Atomic.incr requests;
    Server.handle_line srv ~respond line
  in
  (* consume everything currently published in the job ring; a torn
     descriptor means the transport is compromised — exit nonzero and
     let the supervisor reset the rings and redispatch *)
  let drain_ring w =
    let d = Transport.recv_jobs w in
    List.iter (fun (_sid, body) -> handle_line body) d.Transport.items;
    if d.Transport.torn then begin
      logf "rotary worker[%d]: torn job-ring descriptor, exiting for respawn" slot;
      finish 3
    end
  in
  logf "rotary worker[%d]: up (pid %d, restarts %d%s)" slot (Unix.getpid ()) restarts
    (if core >= 0 then Printf.sprintf ", core %d" core else "");
  (try
     match tr with
     | None ->
         (* classic NDJSON loop: one request line in, responses out *)
         let rec loop () =
           match input_line ic with
           | line ->
               let line = String.trim line in
               (if line <> "" then
                  match ctl_of line with
                  | Some "drain" ->
                      logf "rotary worker[%d]: draining" slot;
                      Server.request_stop srv;
                      publish ()
                  | Some _ -> ()
                  | None -> handle_line line);
               if Server.stopping srv then () else loop ()
           | exception End_of_file -> ()
         in
         loop ()
     | Some w ->
         (* shm loop: drain the ring, arm the waiting flag, block on
            the fd for a doorbell / fallback request / drain ctl *)
         let ring = Shm.job_ring shm slot in
         let rec loop () =
           drain_ring w;
           if not (Ring.arm ring) then loop ()
           else
             match input_line ic with
             | line ->
                 Ring.disarm ring;
                 let line = String.trim line in
                 (if line <> "" then
                    match ctl_of line with
                    | Some "ring" -> ()
                    | Some "drain" ->
                        (* dispatches to this slot stopped before the
                           ctl was sent; take what's still in the ring,
                           then stop *)
                        logf "rotary worker[%d]: draining" slot;
                        drain_ring w;
                        Server.request_stop srv;
                        publish ()
                    | Some _ -> ()
                    | None -> handle_line line);
                 if Server.stopping srv then () else loop ()
             | exception End_of_file -> Ring.disarm ring
         in
         loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  finish 0

(* Single-producer/single-consumer descriptor ring in the shared
   segment, after snabb's link.lua: a fixed array of cache-line-sized
   slots plus free-running head (producer) and tail (consumer) indices.
   Indices count total descriptors ever published/consumed, so
   emptiness is [head = tail], fullness [head - tail = slots], and the
   slot of index [i] is [i mod slots] — no reserved empty slot.

   The producer stages descriptors into slots with plain release
   stores, then *publishes* them in a batch with one seq_cst store of
   [head]; the consumer's acquire load of [head] orders all slot and
   arena-payload reads after it.  Each slot carries a stamp word equal
   to its absolute index + 1, written last during staging — a consumer
   that finds a mismatched stamp (a half-written slot exposed by a
   buggy or crashed producer) reports [Torn] instead of decoding
   garbage.

   Blocking is delegated to a doorbell channel (the supervisor/worker
   NDJSON socketpair): the consumer *arms* a waiting flag before
   sleeping, and [publish] tells the producer whether the flag was
   armed so it can ring the doorbell.  The arm/publish handshake is a
   store-load (Dekker) pattern, hence the seq_cst accessors. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external get_acq : ba -> int -> int = "rc_shm_get" [@@noalloc]
external set_rel : ba -> int -> int -> unit = "rc_shm_set" [@@noalloc]
external get_sc : ba -> int -> int = "rc_shm_get_sc" [@@noalloc]
external set_sc : ba -> int -> int -> unit = "rc_shm_set_sc" [@@noalloc]

let header_words = 16
let desc_words = 8

(* header word offsets: head and tail on separate cache lines; the
   waiting flag shares the consumer's line (both are consumer-written,
   producer-read only at publish time) *)
let o_head = 0
let o_tail = 8
let o_waiting = 9

let words ~slots = header_words + (slots * desc_words)

type t = {
  ba : ba;
  base : int;
  slots : int;
  mutable staged : int;  (* producer-local: staged but unpublished *)
}

type desc = { kind : int; sid : int; handle : int; len : int; aux : int }

let attach ba ~base ~slots =
  if slots < 2 then invalid_arg "Ring: slots must be >= 2";
  { ba; base; slots; staged = 0 }

let init ba ~base ~slots =
  let t = attach ba ~base ~slots in
  set_rel ba (base + o_head) 0;
  set_rel ba (base + o_tail) 0;
  set_rel ba (base + o_waiting) 0;
  t

let head t = get_acq t.ba (t.base + o_head)
let tail t = get_acq t.ba (t.base + o_tail)
let capacity t = t.slots
let depth t = head t - tail t

let slot_base t i = t.base + header_words + (i mod t.slots * desc_words)

(* ---- producer ---------------------------------------------------------- *)

let try_stage t (d : desc) =
  let h = head t + t.staged in
  if h - tail t >= t.slots then false
  else begin
    let s = slot_base t h in
    let ba = t.ba in
    set_rel ba (s + 1) d.kind;
    set_rel ba (s + 2) d.sid;
    set_rel ba (s + 3) d.handle;
    set_rel ba (s + 4) d.len;
    set_rel ba (s + 5) d.aux;
    set_rel ba s (h + 1);
    t.staged <- t.staged + 1;
    true
  end

let publish t =
  if t.staged = 0 then false
  else begin
    let h = head t + t.staged in
    t.staged <- 0;
    set_sc t.ba (t.base + o_head) h;
    if get_sc t.ba (t.base + o_waiting) = 1 then begin
      set_sc t.ba (t.base + o_waiting) 0;
      true
    end
    else false
  end

let try_push t d = if try_stage t d then Some (publish t) else None

(* ---- consumer ---------------------------------------------------------- *)

type pop = Empty | Torn | Desc of desc

let try_pop t =
  let tl = tail t in
  if tl >= head t then Empty
  else begin
    let s = slot_base t tl in
    let ba = t.ba in
    if get_acq ba s <> tl + 1 then Torn
    else begin
      let d =
        {
          kind = get_acq ba (s + 1);
          sid = get_acq ba (s + 2);
          handle = get_acq ba (s + 3);
          len = get_acq ba (s + 4);
          aux = get_acq ba (s + 5);
        }
      in
      set_rel ba (t.base + o_tail) (tl + 1);
      Desc d
    end
  end

let arm t =
  set_sc t.ba (t.base + o_waiting) 1;
  if get_sc t.ba (t.base + o_head) > tail t then begin
    set_sc t.ba (t.base + o_waiting) 0;
    false
  end
  else true

let disarm t = set_sc t.ba (t.base + o_waiting) 0

(* ---- reset ------------------------------------------------------------- *)

let drain_reset t =
  let rec go acc =
    match try_pop t with
    | Desc d -> go (d :: acc)
    | Empty | Torn ->
        t.staged <- 0;
        set_rel t.ba (t.base + o_head) 0;
        set_rel t.ba (t.base + o_tail) 0;
        set_rel t.ba (t.base + o_waiting) 0;
        List.rev acc
  in
  go []

(* Versioned binary snapshots of flow state at iteration boundaries.

   File layout (all little parts verifiable before the heavy one):

     line 1   "RCCKPT <format-version>\n"        ASCII magic + version
     line 2   one-line JSON metadata "\n"        bench, mode, iteration,
                                                 payload byte count + MD5
     rest     Marshal blob of the [payload] record (plain data only —
              no closures, no custom blocks)

   The payload captures exactly the context fields the stage 4-6 loop
   reads: placement, skew targets, assignment, scalars (slack, pair
   count, convergence bookkeeping), snapshot history, the stage-5 best
   state, and the trace so far.  The netlist, rings and flip-flop index
   are NOT stored: they are deterministic functions of the config
   (regenerated on load), which keeps checkpoints small and makes a
   tampered file detectable by the digest.

   The Flow_cache warm state is deliberately represented by its *keys*
   (the restored positions/targets) rather than its contents: every
   cache in the flow validates against exact inputs, so a fresh cache
   produces bit-identical results, and [load] re-warms the incremental
   STA session from the restored placement so the resumed loop performs
   incremental (not cold) timing updates from the first iteration on.
   See docs/serving.md for the version policy. *)

open Rc_core

let format_version = 1

let magic = "RCCKPT"

type meta = {
  version : int;
  bench : string;
  mode : string;  (* "netflow" | "ilp" *)
  iteration : int;
  converged : bool;
  payload_bytes : int;
  payload_md5 : string;  (* hex MD5 of the marshal blob *)
}

(* everything the loop reads, as plain data; field order is part of the
   format — breaking changes must bump [format_version] *)
type payload = {
  p_cfg : Flow.config;
  p_arm : string;
  p_positions : Rc_geom.Point.t array;
  p_skews : float array;
  p_assignment : Rc_assign.Assign.t option;
  p_slack : float;
  p_stage4_slack : float;
  p_n_pairs : int;
  p_ilp_stats : Rc_assign.Assign.ilp_stats option;
  p_iteration : int;
  p_history : Flow_ctx.snapshot list;
  p_best : Flow_ctx.best option;
  p_current_cost : float;
  p_converged : bool;
  p_trace : Flow_trace.event list;
}

let mode_name = function Flow.Netflow -> "netflow" | Flow.Ilp -> "ilp"

let hex = Digest.to_hex

(* ---- digests ---------------------------------------------------------- *)

(* canonical digest of the result-bearing state: equal digests <=> the
   placement, schedule and assignment are bit-identical.  Marshal gives
   a canonical byte encoding for these closure-free values. *)
let digest_of_state ~(positions : Rc_geom.Point.t array) ~(skews : float array)
    ~(assignment : Rc_assign.Assign.t option) =
  hex (Digest.string (Marshal.to_string (positions, skews, assignment) []))

let digest_of_ctx (ctx : Flow_ctx.t) =
  digest_of_state ~positions:ctx.Flow_ctx.positions ~skews:ctx.Flow_ctx.skews
    ~assignment:ctx.Flow_ctx.assignment

let digest_of_outcome (o : Flow.outcome) =
  digest_of_state ~positions:o.Flow.positions ~skews:o.Flow.skews
    ~assignment:(Some o.Flow.assignment)

(* ---- metadata <-> JSON ------------------------------------------------ *)

let json_of_meta m =
  Rc_util.Json.Obj
    [
      ("version", Rc_util.Json.Int m.version);
      ("bench", Rc_util.Json.String m.bench);
      ("mode", Rc_util.Json.String m.mode);
      ("iteration", Rc_util.Json.Int m.iteration);
      ("converged", Rc_util.Json.Bool m.converged);
      ("payload_bytes", Rc_util.Json.Int m.payload_bytes);
      ("payload_md5", Rc_util.Json.String m.payload_md5);
    ]

let meta_of_json j =
  let open Rc_util.Json in
  let field name conv =
    match Option.bind (member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint metadata: missing or invalid %S" name)
  in
  let ( let* ) = Result.bind in
  let* version = field "version" to_int_opt in
  let* bench = field "bench" to_string_opt in
  let* mode = field "mode" to_string_opt in
  let* iteration = field "iteration" to_int_opt in
  let* converged = field "converged" to_bool_opt in
  let* payload_bytes = field "payload_bytes" to_int_opt in
  let* payload_md5 = field "payload_md5" to_string_opt in
  Ok { version; bench; mode; iteration; converged; payload_bytes; payload_md5 }

(* ---- blob stores ------------------------------------------------------ *)

(* Pluggable non-file checkpoint tiers, dispatched on a path prefix.
   The shm transport registers a "shm:" store backed by the segment's
   checkpoint arena (transport.ml); files remain the cold tier and the
   default.  A store receives/returns the exact RCCKPT bytes a file
   would hold, so the two tiers are interchangeable and resume is
   bit-identical either way. *)

type blob_store = {
  bs_save : key:string -> iteration:int -> string -> (string, string) result;
      (* returns the resume token recorded in the saved list *)
  bs_load : string -> (string, string) result;
}

let blob_stores : (string * blob_store) list ref = ref []

let register_blob_store ~prefix bs =
  blob_stores := (prefix, bs) :: List.remove_assoc prefix !blob_stores

let blob_store_for path =
  List.find_opt (fun (p, _) -> String.starts_with ~prefix:p path) !blob_stores

(* ---- save ------------------------------------------------------------- *)

let payload_of_ctx (ctx : Flow_ctx.t) =
  {
    p_cfg = ctx.Flow_ctx.cfg;
    p_arm = ctx.Flow_ctx.arm;
    p_positions = ctx.Flow_ctx.positions;
    p_skews = ctx.Flow_ctx.skews;
    p_assignment = ctx.Flow_ctx.assignment;
    p_slack = ctx.Flow_ctx.slack;
    p_stage4_slack = ctx.Flow_ctx.stage4_slack;
    p_n_pairs = ctx.Flow_ctx.n_pairs;
    p_ilp_stats = ctx.Flow_ctx.ilp_stats;
    p_iteration = ctx.Flow_ctx.iteration;
    p_history = ctx.Flow_ctx.history;
    p_best = ctx.Flow_ctx.best;
    p_current_cost = ctx.Flow_ctx.current_cost;
    p_converged = ctx.Flow_ctx.converged;
    p_trace = Flow_trace.events ctx.Flow_ctx.trace;
  }

(* the exact bytes a checkpoint file holds — shared by the file tier
   and the blob stores, so resume is bit-identical from either *)
let to_blob (ctx : Flow_ctx.t) =
  let payload = payload_of_ctx ctx in
  let blob = Marshal.to_string payload [] in
  let meta =
    {
      version = format_version;
      bench = ctx.Flow_ctx.cfg.Flow_ctx.bench.Bench_suite.bname;
      mode = mode_name ctx.Flow_ctx.cfg.Flow_ctx.mode;
      iteration = ctx.Flow_ctx.iteration;
      converged = ctx.Flow_ctx.converged;
      payload_bytes = String.length blob;
      payload_md5 = hex (Digest.string blob);
    }
  in
  let b = Buffer.create (String.length blob + 256) in
  Buffer.add_string b (Printf.sprintf "%s %d\n" magic format_version);
  Buffer.add_string b (Rc_util.Json.to_line (json_of_meta meta));
  Buffer.add_char b '\n';
  Buffer.add_string b blob;
  (meta, Buffer.contents b)

let save ~path (ctx : Flow_ctx.t) =
  let meta, bytes = to_blob ctx in
  (* atomic publish: never expose a torn file to a concurrent reader or
     leave one behind after a crash mid-write *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes);
  Sys.rename tmp path;
  meta

(* ---- load ------------------------------------------------------------- *)

let check_magic_line first =
  match String.split_on_char ' ' first with
  | [ m; v ] when m = magic -> (
      match int_of_string_opt v with
      | Some v when v = format_version -> Ok ()
      | Some v ->
          Error
            (Printf.sprintf "checkpoint: format version %d unsupported (this build reads %d)"
               v format_version)
      | None -> Error "checkpoint: malformed version in magic line")
  | _ -> Error "checkpoint: bad magic (not a rotary checkpoint file)"

let read_header ic =
  let ( let* ) = Result.bind in
  let* first =
    match input_line ic with
    | l -> Ok l
    | exception End_of_file -> Error "checkpoint: empty file"
  in
  let* () = check_magic_line first in
  let* meta_line =
    match input_line ic with
    | l -> Ok l
    | exception End_of_file -> Error "checkpoint: truncated before metadata"
  in
  let* j = Rc_util.Json.of_string meta_line in
  meta_of_json j

(* header + validated marshal blob out of in-memory RCCKPT bytes (a
   blob-store checkpoint); same checks as the file path *)
let parse_blob s =
  let ( let* ) = Result.bind in
  let* i1 =
    match String.index_opt s '\n' with
    | Some i -> Ok i
    | None -> Error "checkpoint: empty file"
  in
  let* () = check_magic_line (String.sub s 0 i1) in
  let* i2 =
    match String.index_from_opt s (i1 + 1) '\n' with
    | Some i -> Ok i
    | None -> Error "checkpoint: truncated before metadata"
  in
  let* j = Rc_util.Json.of_string (String.sub s (i1 + 1) (i2 - i1 - 1)) in
  let* meta = meta_of_json j in
  let* blob =
    if String.length s - i2 - 1 <> meta.payload_bytes then
      Error "checkpoint: truncated payload"
    else Ok (String.sub s (i2 + 1) meta.payload_bytes)
  in
  let* () =
    let d = hex (Digest.string blob) in
    if d = meta.payload_md5 then Ok ()
    else Error (Printf.sprintf "checkpoint: payload digest mismatch (%s != %s)" d meta.payload_md5)
  in
  Ok (meta, (Marshal.from_string (blob : string) 0 : payload))

let with_in_bin path f =
  match open_in_bin path with
  | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)
  | exception Sys_error e -> Error e

let inspect ~path =
  match blob_store_for path with
  | Some (_, bs) ->
      Result.bind (bs.bs_load path) (fun s -> Result.map fst (parse_blob s))
  | None -> with_in_bin path read_header

let read_payload ic (meta : meta) =
  let ( let* ) = Result.bind in
  let* blob =
    match really_input_string ic meta.payload_bytes with
    | b -> Ok b
    | exception End_of_file -> Error "checkpoint: truncated payload"
  in
  let* () =
    if pos_in ic <> in_channel_length ic then Error "checkpoint: trailing bytes after payload"
    else Ok ()
  in
  let* () =
    let d = hex (Digest.string blob) in
    if d = meta.payload_md5 then Ok ()
    else Error (Printf.sprintf "checkpoint: payload digest mismatch (%s != %s)" d meta.payload_md5)
  in
  (* the digest was verified above, so unmarshalling is safe for files
     written by [save]; a hand-crafted file with a matching digest can
     still crash Marshal, which is why sockets never carry blobs *)
  Ok (Marshal.from_string (blob : string) 0 : payload)

(* re-warm the incremental caches from the restored placement: one
   analyze on identical positions primes the STA session, after which
   the resumed loop performs the same incremental cone updates an
   uninterrupted run would (the candidate-tap and assignment caches
   re-warm on their first in-loop use) *)
let warm_caches (ctx : Flow_ctx.t) =
  if ctx.Flow_ctx.cfg.Flow_ctx.incremental && Array.length ctx.Flow_ctx.positions > 0 then begin
    let session =
      Flow_cache.sta_session ctx.Flow_ctx.caches ctx.Flow_ctx.cfg.Flow_ctx.tech
        ctx.Flow_ctx.netlist
    in
    ignore (Rc_timing.Sta.analyze_incremental session ~positions:ctx.Flow_ctx.positions)
  end

let ctx_of_payload ?netlist ?(warm = true) p =
  let cfg = p.p_cfg in
  let netlist =
    match netlist with
    | Some n -> n
    | None -> Bench_suite.netlist cfg.Flow_ctx.bench
  in
  let base = Flow_ctx.create ~arm:p.p_arm cfg netlist in
  let ctx =
    {
      base with
      Flow_ctx.positions = p.p_positions;
      skews = p.p_skews;
      assignment = p.p_assignment;
      slack = p.p_slack;
      stage4_slack = p.p_stage4_slack;
      n_pairs = p.p_n_pairs;
      ilp_stats = p.p_ilp_stats;
      iteration = p.p_iteration;
      history = p.p_history;
      best = p.p_best;
      current_cost = p.p_current_cost;
      converged = p.p_converged;
      trace = List.fold_left Flow_trace.record Flow_trace.empty p.p_trace;
    }
  in
  if warm then warm_caches ctx;
  ctx

(* rebuild a context straight from RCCKPT bytes — the session store's
   rehydration path, which holds the bytes already (shm arena entry or
   a just-read escrow file) *)
let load_blob ?netlist ?warm s =
  let ( let* ) = Result.bind in
  let* meta, payload = parse_blob s in
  Ok (meta, ctx_of_payload ?netlist ?warm payload)

let load ?netlist ?warm ~path () =
  match blob_store_for path with
  | Some (_, bs) ->
      let ( let* ) = Result.bind in
      let* s = bs.bs_load path in
      let* meta, payload = parse_blob s in
      Ok (meta, ctx_of_payload ?netlist ?warm payload)
  | None ->
      with_in_bin path (fun ic ->
          let ( let* ) = Result.bind in
          let* meta = read_header ic in
          let* payload = read_payload ic meta in
          Ok (meta, ctx_of_payload ?netlist ?warm payload))

(* ---- session conveniences --------------------------------------------- *)

type saver = {
  save_iteration : Flow_ctx.t -> unit;
  saved : unit -> (int * string) list;  (* (iteration, path), oldest first *)
}

let saver ?(every = 1) ~dir ~name () =
  if every < 1 then invalid_arg "Checkpoint.saver: every must be >= 1";
  match blob_store_for dir with
  | Some (_, bs) ->
      (* blob-store tier ("shm:sid<N>"): best-effort — a full arena or
         table skips the save (the store counts it) and the flow keeps
         going with its previous checkpoint *)
      let saved = ref [] in
      let save_iteration (ctx : Flow_ctx.t) =
        let k = ctx.Flow_ctx.iteration in
        if k mod every = 0 || ctx.Flow_ctx.converged then
          match bs.bs_save ~key:dir ~iteration:k (snd (to_blob ctx)) with
          | Ok token -> saved := (k, token) :: !saved
          | Error _ -> ()
      in
      { save_iteration; saved = (fun () -> List.rev !saved) }
  | None ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let saved = ref [] in
      let save_iteration (ctx : Flow_ctx.t) =
        let k = ctx.Flow_ctx.iteration in
        if k mod every = 0 || ctx.Flow_ctx.converged then begin
          let path = Filename.concat dir (Printf.sprintf "%s.iter-%d.ckpt" name k) in
          ignore (save ~path ctx);
          saved := (k, path) :: !saved
        end
      in
      { save_iteration; saved = (fun () -> List.rev !saved) }

let run_with_checkpoints ?every ~dir ~name ?guard cfg =
  let s = saver ?every ~dir ~name () in
  let outcome = Flow.run ?guard ~on_iteration:s.save_iteration cfg in
  (outcome, s.saved ())

let resume ?guard ?on_iteration ~path () =
  match load ~path () with
  | Error e -> Error e
  | Ok (_meta, ctx) -> Ok (Flow.resume_on ?guard ?on_iteration ctx)

(* Prefork supervisor: the front of the two-tier process model.

   The supervisor is an I/O router.  It accepts client connections on a
   TCP front door and/or the classic Unix socket, speaks the same NDJSON
   protocol, and forwards heavy ops over per-worker socketpairs to N
   forked worker processes, each running a full Server/Scheduler.
   Holding the client connections here is what makes worker crashes
   invisible to clients: a SIGKILLed worker's in-flight jobs are
   re-dispatched to a sibling — flows resuming from their latest
   checkpoint — and the responses flow back on the original connection.

   Fork discipline (OCaml 5): workers are spawned fork+exec.  A forked
   child of a multithreaded runtime inherits every mutex in whatever
   state it was at the fork — a lock held by another thread stays
   locked forever, and the child's GC aborts the process the moment it
   finalizes such a mutex (mutex_free: EBUSY).  exec wipes all of that:
   between fork and execv the child performs only dup2/close/execv (no
   allocation, no GC), the socketpair rides in as the worker's stdin,
   and every supervisor-held fd is close-on-exec.  The fresh image runs
   `rotary_cli serve-worker`, which re-attaches the shm segment by path
   (MAP_SHARED on the same file: same physical pages).

   Request routing:
     flow/report/sweep/variation  -> a worker (least in-flight wins)
     checkpoint/status            -> answered inline
     restart                      -> rolling drain/respawn (--drain-restart)
     shutdown                     -> drain every worker, then exit

   Crash recovery: fresh flow requests get checkpointing injected
   (checkpoint_every into a private per-request directory) unless the
   client manages its own; on a worker death the supervisor re-dispatches
   that worker's in-flight jobs, rewriting injected flows to resume from
   their newest checkpoint.  Injected checkpoints never leak to the
   client: the response's "checkpoints" field is reset to [] and the
   directory is deleted once the response is delivered.  Non-flow jobs
   (and client-managed-checkpoint flows) re-run from scratch — every job
   body is deterministic.  A job is failed back to the client after
   [max_attempts] dispatches. *)

module Json = Rc_util.Json
module Timer = Rc_util.Timer

let max_attempts = 3

type config = {
  workers : int;
  sched_workers : int option;
  max_pending : int option;
  unix_path : string option;
  tcp : (string * int) option;
  shm_path : string;
  checkpoint_dir : string;
  checkpoint_every : int;
  drain_grace_s : float;
  allow_restart : bool;
  handle_signals : bool;
  exe : string option;  (* worker executable; default Sys.executable_name *)
  transport : Shm.transport;
  ring_slots : int;  (* per-direction ring capacity under Shm_rings *)
  pin_cores : bool;  (* pin worker k to core k mod ncores *)
  session_dir : string option;  (* shared ECO escrow dir; default checkpoint_dir/sessions *)
  session_capacity : int option;  (* resident sessions per worker *)
}

type wstate = Up | Draining | Down

let wstate_name = function Up -> "up" | Draining -> "draining" | Down -> "down"

type wrec = {
  slot : int;
  mutable pid : int;
  mutable fd : Unix.file_descr option;  (* parent end of the socketpair *)
  mutable oc : out_channel option;
  mutable state : wstate;
  mutable restarts : int;  (* completed respawns of this slot *)
  mutable gen : int;  (* bumped per spawn; guards the grace-kill timer *)
  mutable inflight : int;
  mutable redispatched : int;
  mutable resumed : int;
  mutable spawned_ns : int;
}

type pending = {
  p_sid : int;
  p_client_id : Json.t;
  p_respond : string -> unit;  (* writes one NDJSON response line *)
  mutable p_fields : (string * Json.t) list;  (* request fields, "id" = sid *)
  p_injected_dir : string option;  (* injected checkpoint tier: a filesystem
                                      directory, or "shm:sid<N>" (arena) *)
  p_session : int option;  (* the ECO session a session_* op belongs to:
                              dispatch prefers the session's pinned worker *)
  p_session_close : bool;  (* a session_close: unpin on delivery *)
  mutable p_worker : int;  (* slot, or -1 while parked *)
  mutable p_attempts : int;
}

type event = Dead of int | Roll | Stop

type t = {
  cfg : config;
  shm : Shm.t;
  started : Timer.t;
  lock : Mutex.t;  (* workers, pendings, parked, roll, next_sid, stopping *)
  workers : wrec array;
  pendings : (int, pending) Hashtbl.t;
  parked : int Queue.t;
  (* sticky session→slot affinity (ECO edit traffic hits the worker
     holding the session resident) and the per-session edit sequence
     stamp; both under t.lock, cleared on close delivery, re-pinned
     after a worker death *)
  affinity : (int, int) Hashtbl.t;
  session_seqs : (int, int) Hashtbl.t;
  mutable next_sid : int;
  mutable stopping : bool;
  mutable roll : int list;  (* slots still to roll; the head is draining *)
  evq : event Queue.t;
  ev_lock : Mutex.t;
  ev_cond : Condition.t;
}

(* ---- small plumbing ---------------------------------------------------- *)

let push_event t e =
  Mutex.protect t.ev_lock (fun () ->
      Queue.push e t.evq;
      Condition.signal t.ev_cond)

let pop_event t =
  Mutex.protect t.ev_lock (fun () ->
      while Queue.is_empty t.evq do
        Condition.wait t.ev_cond t.ev_lock
      done;
      Queue.pop t.evq)

(* signal handlers may run in any thread, including one holding ev_lock;
   a fresh thread acquires it without risk of self-deadlock *)
let push_event_async t e = ignore (Thread.create (fun () -> push_event t e) ())

let rec mkdir_p dir =
  if dir = "" || dir = "/" || dir = "." || Sys.file_exists dir then ()
  else (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let remove_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        files;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* newest checkpoint in an injected per-request directory: files are
   name.iter-<k>.ckpt (Checkpoint.run_with_checkpoints), newest = max k *)
let latest_checkpoint dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | files ->
      let best = ref None in
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".ckpt" then
            let stem = Filename.chop_suffix f ".ckpt" in
            match String.rindex_opt stem '-' with
            | None -> ()
            | Some i -> (
                match
                  int_of_string_opt
                    (String.sub stem (i + 1) (String.length stem - i - 1))
                with
                | None -> ()
                | Some k -> (
                    match !best with
                    | Some (bk, _) when bk >= k -> ()
                    | _ -> best := Some (k, Filename.concat dir f))))
        files;
      Option.map snd !best

let control_row_of (w : wrec) : Shm.control_row =
  {
    Shm.c_pid = w.pid;
    c_state =
      (match w.state with Up -> Shm.C_up | Draining -> Shm.C_draining | Down -> Shm.C_down);
    c_restarts = w.restarts;
    c_spawned_ns = w.spawned_ns;
    c_inflight = w.inflight;
    c_redispatched = w.redispatched;
    c_resumed = w.resumed;
  }

let publish_control t w = Shm.write_control t.shm ~slot:w.slot (control_row_of w)

(* write one line to a worker's socketpair; false = the worker is gone
   (its Dead event is already in flight and will re-dispatch) *)
let send_line w line =
  match w.oc with
  | None -> false
  | Some oc -> (
      try
        output_string oc line;
        output_char oc '\n';
        flush oc;
        true
      with Sys_error _ | Unix.Unix_error _ -> false)

let send_fields w fields = send_line w (Json.to_line (Json.Obj fields))

let send_ctl_drain w = ignore (send_fields w [ ("ctl", Json.String "drain") ])

(* ---- responses back to the client -------------------------------------- *)

let clear_checkpoints = function
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) -> if k = "checkpoints" then (k, Json.List []) else (k, v))
           fields)
  | other -> other

let rewrite_response p j =
  match j with
  | Json.Obj fields ->
      let fields =
        ("id", p.p_client_id) :: List.filter (fun (k, _) -> k <> "id") fields
      in
      let fields =
        match p.p_injected_dir with
        | None -> fields
        | Some _ ->
            List.map
              (fun (k, v) -> if k = "result" then (k, clear_checkpoints v) else (k, v))
              fields
      in
      Json.Obj fields
  | other -> other

let is_shm_dir d = String.starts_with ~prefix:"shm:" d

(* drop whatever injected checkpoint tier a session used: the arena
   entry + blob for "shm:sid<N>" paths, the directory otherwise *)
let cleanup_injected t p =
  match p.p_injected_dir with
  | None -> ()
  | Some d when is_shm_dir d -> (
      match Transport.sid_of_key d with
      | Some sid -> Transport.ckpt_free t.shm ~sid
      | None -> ())
  | Some dir -> remove_dir dir

let fail_pending t p msg =
  p.p_respond (Json.to_line (Protocol.response_error ~id:p.p_client_id msg));
  cleanup_injected t p

(* a delivered session_close unpins its session.  NOT under t.lock
   (fail_pending runs under it; a leaked pin after a failed close is
   harmless — session ids are never reused) *)
let cleanup_session t p =
  if p.p_session_close then
    match p.p_session with
    | None -> ()
    | Some s ->
        Mutex.protect t.lock (fun () ->
            Hashtbl.remove t.affinity s;
            Hashtbl.remove t.session_seqs s)

(* ---- dispatch ----------------------------------------------------------- *)

let pick_worker t =
  Array.fold_left
    (fun best w ->
      if w.state <> Up then best
      else
        match best with
        | Some (b : wrec) when b.inflight <= w.inflight -> best
        | _ -> Some w)
    None t.workers

(* under t.lock: a session op goes to the worker holding the session
   resident; when that slot is not Up (crashed, draining) the session
   re-pins to the least-loaded sibling, which rehydrates the escrowed
   state on first touch *)
let pick_worker_for t p =
  match p.p_session with
  | None -> pick_worker t
  | Some s -> (
      match Hashtbl.find_opt t.affinity s with
      | Some slot when t.workers.(slot).state = Up -> Some t.workers.(slot)
      | _ -> (
          match pick_worker t with
          | Some w ->
              Hashtbl.replace t.affinity s w.slot;
              Some w
          | None -> None))

(* under t.lock.  Under Shm_rings the request body rides the job ring
   (arena payload + descriptor), degrading to an NDJSON line on the
   socketpair when a ring or the arena is full; [defer] batches ring
   staging — the caller publishes each touched slot once. *)
let dispatch_sid ?defer t sid =
  match Hashtbl.find_opt t.pendings sid with
  | None -> ()
  | Some p ->
      if t.stopping then (
        Hashtbl.remove t.pendings sid;
        fail_pending t p "supervisor shutting down")
      else (
        match pick_worker_for t p with
        | None ->
            p.p_worker <- -1;
            Queue.push sid t.parked
        | Some w ->
            let sent =
              match t.cfg.transport with
              | Shm.Shm_rings when w.oc <> None -> (
                  let line = Json.to_line (Json.Obj p.p_fields) in
                  match defer with
                  | Some touched ->
                      if Transport.stage_job t.shm ~slot:w.slot ~sid line then (
                        Hashtbl.replace touched w.slot ();
                        true)
                      else send_fields w p.p_fields
                  | None -> (
                      match Transport.send_job t.shm ~slot:w.slot ~sid line with
                      | `Sent doorbell ->
                          if doorbell then
                            ignore (send_line w Transport.doorbell_line);
                          true
                      | `Full -> send_fields w p.p_fields))
              | _ -> send_fields w p.p_fields
            in
            if sent then (
              p.p_worker <- w.slot;
              w.inflight <- w.inflight + 1;
              publish_control t w)
            else (
              p.p_worker <- -1;
              Queue.push sid t.parked))

(* under t.lock: batched re-dispatch — stage everything, then one
   publish + doorbell per touched ring *)
let unpark t =
  let sids = Queue.fold (fun acc sid -> sid :: acc) [] t.parked in
  Queue.clear t.parked;
  let sids = List.rev sids in
  match t.cfg.transport with
  | Shm.Ndjson -> List.iter (dispatch_sid t) sids
  | Shm.Shm_rings ->
      let touched = Hashtbl.create 4 in
      List.iter (dispatch_sid ~defer:touched t) sids;
      Hashtbl.iter
        (fun slot () ->
          if Transport.publish_jobs t.shm ~slot then
            ignore (send_line t.workers.(slot) Transport.doorbell_line))
        touched

(* ---- worker lifecycle --------------------------------------------------- *)

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error _ -> ()

let take_pending t sid =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.pendings sid with
      | None -> None
      | Some p ->
          Hashtbl.remove t.pendings sid;
          if p.p_worker >= 0 then (
            let w = t.workers.(p.p_worker) in
            w.inflight <- max 0 (w.inflight - 1);
            publish_control t w);
          Some p)

(* per-worker reader thread.  Ndjson: every line is a response.  Under
   Shm_rings the fd is the doorbell + fallback channel: drain the
   response ring, arm its waiting flag (re-draining if a publish beat
   the arm), and only then block on the fd; non-doorbell lines are
   fallback NDJSON responses. *)
let rec reader_loop t slot ic =
  match t.cfg.transport with
  | Shm.Ndjson -> (
      match input_line ic with
      | line ->
          deliver t (String.trim line);
          reader_loop t slot ic
      | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
          push_event t (Dead slot))
  | Shm.Shm_rings -> (
      drain_responses t slot;
      let ring = Shm.resp_ring t.shm slot in
      if not (Ring.arm ring) then reader_loop t slot ic
      else
        match input_line ic with
        | line ->
            Ring.disarm ring;
            let line = String.trim line in
            if line <> "" && not (Transport.is_doorbell line) then deliver t line;
            reader_loop t slot ic
        | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
            Ring.disarm ring;
            push_event t (Dead slot))

and drain_responses t slot =
  List.iter
    (fun (sid, body) -> deliver_shm t sid body)
    (Transport.recv_responses t.shm ~slot)

(* a ring-borne response: the worker serialized it with the session id
   first, so the client id is restored by byte splice — no JSON parse
   on the hot path (the parse fallback covers unexpected shapes) *)
and deliver_shm t sid body =
  match take_pending t sid with
  | None -> ()  (* stale response for a re-dispatched job *)
  | Some p ->
      (match Transport.splice_client_id body ~client_id:p.p_client_id with
      | Some line -> p.p_respond line
      | None -> (
          match Json.of_string body with
          | Ok j -> p.p_respond (Json.to_line (rewrite_response p j))
          | Error _ ->
              p.p_respond
                (Json.to_line
                   (Protocol.response_error ~id:p.p_client_id
                      "malformed worker response"))));
      cleanup_injected t p;
      cleanup_session t p

(* a finished job's response line from a worker: map the synthetic id
   back to the client's, normalise injected checkpoints, deliver *)
and deliver t line =
  if line <> "" then
    match Json.of_string line with
    | Error _ -> ()  (* not a response line; drop *)
    | Ok j -> (
        let sid =
          Option.value (Option.bind (Json.member "id" j) Json.to_int_opt) ~default:(-1)
        in
        match take_pending t sid with
        | None -> ()  (* stale response for a re-dispatched job *)
        | Some p ->
            p.p_respond (Json.to_line (rewrite_response p j));
            cleanup_injected t p;
            cleanup_session t p)

let spawn t w =
  let parent_end, child_end = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec parent_end;
  let exe = Option.value t.cfg.exe ~default:Sys.executable_name in
  let argv =
    Array.of_list
      ([
         exe;
         "serve-worker";
         "--shm"; t.cfg.shm_path;
         "--slot"; string_of_int w.slot;
         "--restarts"; string_of_int w.restarts;
         "--workers"; string_of_int (Option.value t.cfg.sched_workers ~default:2);
         "--max-pending"; string_of_int (Option.value t.cfg.max_pending ~default:64);
         "--transport"; Shm.transport_name t.cfg.transport;
         "--session-dir";
         Option.value t.cfg.session_dir
           ~default:(Filename.concat t.cfg.checkpoint_dir "sessions");
       ]
      @ (match t.cfg.session_capacity with
        | Some c -> [ "--session-capacity"; string_of_int c ]
        | None -> [])
      @ if t.cfg.pin_cores then [ "--pin-core"; string_of_int w.slot ] else [])
  in
  (* create_process (posix_spawn underneath), not Unix.fork: the OCaml 5
     runtime refuses fork in any process that ever created a domain, and
     a raw fork of a multithreaded runtime would inherit locked mutexes
     anyway.  The spawned image is fresh; only child_end crosses over,
     as the worker's stdin (every other supervisor fd is cloexec). *)
  let pid = Unix.create_process exe argv child_end Unix.stdout Unix.stderr in
  (try Unix.close child_end with Unix.Unix_error _ -> ());
  w.pid <- pid;
  w.fd <- Some parent_end;
  w.oc <- Some (Unix.out_channel_of_descr parent_end);
  w.state <- Up;
  w.gen <- w.gen + 1;
  w.inflight <- 0;
  w.spawned_ns <- Int64.to_int (Timer.now_ns ());
  publish_control t w;
  let ic = Unix.in_channel_of_descr parent_end in
  ignore (Thread.create (fun () -> reader_loop t w.slot ic) ())

(* under t.lock: mark a worker draining, tell it, arm the grace kill *)
let start_drain t slot =
  let w = t.workers.(slot) in
  if w.state = Up then (
    w.state <- Draining;
    publish_control t w;
    send_ctl_drain w;
    let gen = w.gen and pid = w.pid in
    ignore
      (Thread.create
         (fun () ->
           Thread.delay t.cfg.drain_grace_s;
           Mutex.protect t.lock (fun () ->
               let w = t.workers.(slot) in
               if w.gen = gen && w.state = Draining && w.pid = pid then (
                 Printf.eprintf
                   "rotary supervisor: worker %d drain grace expired, killing\n%!" slot;
                 try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())))
         ()))

(* re-dispatch one job that was in flight on a crashed worker *)
let redispatch t crashed p =
  p.p_attempts <- p.p_attempts + 1;
  if p.p_attempts >= max_attempts then (
    Hashtbl.remove t.pendings p.p_sid;
    fail_pending t p
      (Printf.sprintf "job failed after %d attempts (worker crashes)" p.p_attempts))
  else (
    crashed.redispatched <- crashed.redispatched + 1;
    let resume =
      match p.p_injected_dir with
      | Some d when is_shm_dir d ->
          (* the sibling worker resolves "shm:sid<N>" straight from the
             shared checkpoint arena — no filesystem round-trip *)
          if Option.is_some (Transport.ckpt_latest t.shm ~sid:p.p_sid) then Some d
          else None
      | Some dir -> latest_checkpoint dir
      | None -> None
    in
    (match resume with
    | Some path ->
        crashed.resumed <- crashed.resumed + 1;
        let keep = [ "priority"; "deadline_ms" ] in
        p.p_fields <-
          ("id", Json.Int p.p_sid)
          :: ("op", Json.String "flow")
          :: ("resume_from", Json.String path)
          :: List.filter (fun (k, _) -> List.mem k keep) p.p_fields
    | None -> ()  (* no checkpoint yet (or not a flow): re-run from scratch *));
    dispatch_sid t p.p_sid)

let handle_dead t slot =
  let pid = Mutex.protect t.lock (fun () -> t.workers.(slot).pid) in
  if pid > 0 then reap pid;
  (* responses the dead worker published but never rang for are still
     valid — deliver them before redispatching what's left (outside
     t.lock: the reader thread is gone once Dead is queued) *)
  if t.cfg.transport = Shm.Shm_rings then drain_responses t slot;
  Mutex.protect t.lock (fun () ->
      let w = t.workers.(slot) in
      (match w.fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      w.fd <- None;
      w.oc <- None;
      let was_draining = w.state = Draining in
      let victims =
        Hashtbl.fold (fun _ p acc -> if p.p_worker = slot then p :: acc else acc)
          t.pendings []
      in
      List.iter (fun p -> p.p_worker <- -1) victims;
      (* sessions pinned to the dead slot re-pin on their next dispatch;
         the sibling rehydrates from the shared escrow tier *)
      Hashtbl.filter_map_inplace
        (fun _ s -> if s = slot then None else Some s)
        t.affinity;
      (* reclaim the slot's rings before anything respawns: orphaned
         extents freed, head/tail/waiting zeroed for the fresh image *)
      if t.cfg.transport = Shm.Shm_rings then Transport.reset_rings t.shm ~slot;
      if t.stopping then (
        w.state <- Down;
        w.pid <- 0;
        publish_control t w;
        List.iter
          (fun p ->
            Hashtbl.remove t.pendings p.p_sid;
            fail_pending t p "supervisor shutting down")
          victims)
      else (
        if not was_draining then
          Printf.eprintf "rotary supervisor: worker %d (pid %d) died, respawning\n%!"
            slot pid;
        w.restarts <- w.restarts + 1;
        spawn t w;
        (* dispatch order by sid = original submission order, so a
           session's redispatched edits reach the sibling in sequence *)
        let victims = List.sort (fun a b -> compare a.p_sid b.p_sid) victims in
        List.iter (fun p -> redispatch t w p) victims;
        unpark t;
        (* advance a rolling restart once its current slot has cycled *)
        match t.roll with
        | s :: rest when s = slot -> (
            t.roll <- rest;
            match rest with next :: _ -> start_drain t next | [] -> ())
        | _ -> ()))

let handle_roll t =
  Mutex.protect t.lock (fun () ->
      if (not t.stopping) && t.roll = [] then (
        t.roll <- List.init (Array.length t.workers) Fun.id;
        match t.roll with s :: _ -> start_drain t s | [] -> ()))

let all_down t =
  Mutex.protect t.lock (fun () ->
      t.stopping && Array.for_all (fun w -> w.state = Down) t.workers)

(* ---- client-facing side ------------------------------------------------- *)

let status_json t =
  let uptime = Timer.elapsed_s t.started in
  let rows = Shm.read_all t.shm in
  let sum f = Array.fold_left (fun acc r -> acc + f r.Shm.worker) 0 rows in
  let per_worker =
    Mutex.protect t.lock (fun () ->
        Array.to_list
          (Array.map
             (fun w ->
               Json.Obj
                 [
                   ("slot", Json.Int w.slot);
                   ("pid", Json.Int w.pid);
                   ("state", Json.String (wstate_name w.state));
                   ("restarts", Json.Int w.restarts);
                   ("inflight", Json.Int w.inflight);
                   ("redispatched", Json.Int w.redispatched);
                   ("resumed", Json.Int w.resumed);
                 ])
             t.workers))
  in
  Json.Obj
    [
      ("uptime_s", Json.Float uptime);
      ("draining", Json.Bool (Mutex.protect t.lock (fun () -> t.stopping)));
      ( "supervisor",
        Json.Obj
          [
            ("pid", Json.Int (Unix.getpid ()));
            ("workers", Json.Int (Array.length t.workers));
            ("transport", Json.String (Shm.transport_name t.cfg.transport));
            ( "tcp_port",
              match Shm.tcp_port t.shm with Some p -> Json.Int p | None -> Json.Null );
            ("parked", Json.Int (Mutex.protect t.lock (fun () -> Queue.length t.parked)));
            ( "sessions_pinned",
              Json.Int (Mutex.protect t.lock (fun () -> Hashtbl.length t.affinity)) );
            ("per_worker", Json.List per_worker);
          ] );
      (* current-generation aggregate: a respawned worker's counters
         restart from zero (crash history lives in the control rows) *)
      ( "jobs",
        Json.Obj
          [
            ("submitted", Json.Int (sum (fun r -> r.Shm.submitted)));
            ("completed", Json.Int (sum (fun r -> r.Shm.completed)));
            ("failed", Json.Int (sum (fun r -> r.Shm.failed)));
            ("cancelled", Json.Int (sum (fun r -> r.Shm.cancelled)));
            ("rejected", Json.Int (sum (fun r -> r.Shm.rejected)));
            ("pending", Json.Int (sum (fun r -> r.Shm.queue_depth)));
            ("running", Json.Int (sum (fun r -> r.Shm.running)));
          ] );
    ]

let forward t ~respond_line ~(req : Protocol.request) line =
  let respond j = respond_line (Json.to_line j) in
  match Json.of_string line with
  | Ok (Json.Obj fields) ->
      let is_flow = match req.Protocol.op with Protocol.Flow_op _ -> true | _ -> false in
      let client_manages_checkpoints =
        List.exists
          (fun (k, _) -> k = "checkpoint_every" || k = "checkpoint_dir" || k = "resume_from")
          fields
      in
      Mutex.protect t.lock (fun () ->
          if t.stopping then respond (Protocol.response_error ~id:req.Protocol.req_id "supervisor shutting down")
          else (
            let sid = t.next_sid in
            t.next_sid <- sid + 1;
            let injected_dir =
              if is_flow && not client_manages_checkpoints then
                match t.cfg.transport with
                | Shm.Shm_rings ->
                    (* checkpoint straight into the shared arena; the
                       filesystem tier stays cold *)
                    Some (Transport.key_of_sid sid)
                | Shm.Ndjson ->
                    let dir =
                      Filename.concat t.cfg.checkpoint_dir (Printf.sprintf "sid%d" sid)
                    in
                    mkdir_p dir;
                    Some dir
              else None
            in
            (* session ops: pin the dispatch to the session's worker and
               stamp cluster-unique identity.  An open without a client
               session id adopts its own dispatch sid (sids are unique
               across all ops, so the escrow key never collides); an
               edit without a sequence number gets the next one, making
               crash-redispatched batches deduplicable at the worker. *)
            let stamped, p_session, p_session_close =
              match req.Protocol.op with
              | Protocol.Session_open_op so ->
                  let s =
                    match so.Protocol.so_session with Some s -> s | None -> sid
                  in
                  ([ ("session", Json.Int s) ], Some s, false)
              | Protocol.Session_edit_op se ->
                  let s = se.Protocol.se_session in
                  let k =
                    match se.Protocol.se_seq with
                    | Some k ->
                        let cur =
                          Option.value (Hashtbl.find_opt t.session_seqs s) ~default:0
                        in
                        if k > cur then Hashtbl.replace t.session_seqs s k;
                        k
                    | None ->
                        let k =
                          1 + Option.value (Hashtbl.find_opt t.session_seqs s) ~default:0
                        in
                        Hashtbl.replace t.session_seqs s k;
                        k
                  in
                  ([ ("seq", Json.Int k) ], Some s, false)
              | Protocol.Session_query_op s -> ([], Some s, false)
              | Protocol.Session_close_op s -> ([], Some s, true)
              | _ -> ([], None, false)
            in
            let stamped_keys = List.map fst stamped in
            let fields =
              ("id", Json.Int sid)
              :: List.filter
                   (fun (k, _) -> k <> "id" && not (List.mem k stamped_keys))
                   fields
              @ stamped
              @
              match injected_dir with
              | None -> []
              | Some dir ->
                  [
                    ("checkpoint_every", Json.Int t.cfg.checkpoint_every);
                    ("checkpoint_dir", Json.String dir);
                  ]
            in
            let p =
              {
                p_sid = sid;
                p_client_id = req.Protocol.req_id;
                p_respond = respond_line;
                p_fields = fields;
                p_injected_dir = injected_dir;
                p_session;
                p_session_close;
                p_worker = -1;
                p_attempts = 0;
              }
            in
            Hashtbl.replace t.pendings sid p;
            dispatch_sid t sid))
  | Ok _ | Error _ ->
      (* parse_request accepted it, so this cannot happen *)
      respond (Protocol.response_error ~id:req.Protocol.req_id "malformed request")

let handle_client_line t ~respond_line line =
  let respond j = respond_line (Json.to_line j) in
  match Protocol.parse_request line with
  | Error (id, op, msg) -> respond (Protocol.response_error ~id ?op msg)
  | Ok req -> (
      let id = req.Protocol.req_id in
      match req.Protocol.op with
      | Protocol.Checkpoint_op path -> (
          match Protocol.inspect_checkpoint path with
          | Ok meta -> respond (Protocol.response_ok ~id meta)
          | Error e -> respond (Protocol.response_error ~id e))
      | Protocol.Status_op -> respond (Protocol.response_ok ~id (status_json t))
      | Protocol.Restart_op ->
          if not t.cfg.allow_restart then
            respond
              (Protocol.response_error ~id
                 "rolling restart disabled (start the supervisor with --drain-restart)")
          else (
            respond
              (Protocol.response_ok ~id
                 (Json.Obj
                    [
                      ("rolling", Json.Bool true);
                      ("workers", Json.Int (Array.length t.workers));
                    ]));
            push_event t Roll)
      | Protocol.Shutdown_op ->
          respond
            (Protocol.response_ok ~id (Json.Obj [ ("draining", Json.Bool true) ]));
          push_event t Stop
      | Protocol.Flow_op _ | Protocol.Report_op _ | Protocol.Sweep_op _
      | Protocol.Variation_op _ | Protocol.Session_open_op _
      | Protocol.Session_edit_op _ | Protocol.Session_query_op _
      | Protocol.Session_close_op _ ->
          forward t ~respond_line ~req line)

(* one client connection: same discipline as Server.serve_connection —
   the fd stays open until every accepted request has its response *)
let serve_conn t fd =
  Unix.set_close_on_exec fd;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wlock = Mutex.create () in
  let clock = Mutex.create () in
  let ccond = Condition.create () in
  let outstanding = ref 0 in
  let respond_line line =
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect clock (fun () ->
            decr outstanding;
            Condition.broadcast ccond))
      (fun () ->
        try
          Mutex.protect wlock (fun () ->
              output_string oc line;
              output_char oc '\n';
              flush oc)
        with Sys_error _ | Unix.Unix_error _ -> ())
  in
  (try
     let rec loop () =
       match input_line ic with
       | line ->
           let line = String.trim line in
           if line <> "" then (
             Mutex.protect clock (fun () -> incr outstanding);
             handle_client_line t ~respond_line line);
           loop ()
       | exception End_of_file -> ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.protect clock (fun () ->
      while !outstanding > 0 do
        Condition.wait ccond clock
      done);
  close_out_noerr oc;
  close_in_noerr ic

(* ---- listeners ---------------------------------------------------------- *)

let stopping t = Mutex.protect t.lock (fun () -> t.stopping)

let accept_loop t lfd =
  let rec loop () =
    if not (stopping t) then (
      match Unix.accept lfd with
      | cfd, _ ->
          if stopping t then (try Unix.close cfd with Unix.Unix_error _ -> ())
          else ignore (Thread.create (fun () -> serve_conn t cfd) ());
          loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ())
  in
  loop ()

(* wake blocked accepts the same way Server does: a throw-away connect *)
let poke_listeners t =
  (match t.cfg.unix_path with
  | None -> ()
  | Some path -> (
      try
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> Unix.connect fd (Unix.ADDR_UNIX path))
      with Unix.Unix_error _ -> ()));
  match Shm.tcp_port t.shm with
  | None -> ()
  | Some port -> (
      try
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)))
      with Unix.Unix_error _ -> ())

let handle_stop t =
  Mutex.protect t.lock (fun () ->
      if not t.stopping then (
        t.stopping <- true;
        t.roll <- [];
        (* parked jobs have no worker to drain them *)
        Queue.iter
          (fun sid ->
            match Hashtbl.find_opt t.pendings sid with
            | None -> ()
            | Some p ->
                Hashtbl.remove t.pendings sid;
                fail_pending t p "supervisor shutting down")
          t.parked;
        Queue.clear t.parked));
  poke_listeners t;
  (* drain outside the state update so start_drain's own locking is simple *)
  Mutex.protect t.lock (fun () ->
      Array.iter
        (fun w ->
          if w.state = Up then (
            w.state <- Draining;
            publish_control t w;
            send_ctl_drain w;
            let gen = w.gen and pid = w.pid and slot = w.slot in
            ignore
              (Thread.create
                 (fun () ->
                   Thread.delay t.cfg.drain_grace_s;
                   Mutex.protect t.lock (fun () ->
                       let w = t.workers.(slot) in
                       if w.gen = gen && w.state = Draining && w.pid = pid then
                         try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()))
                 ())))
        t.workers)

(* ---- entry point -------------------------------------------------------- *)

let run cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  mkdir_p cfg.checkpoint_dir;
  mkdir_p (Filename.dirname cfg.shm_path);
  let shm =
    Shm.create ~ring_slots:cfg.ring_slots ~path:cfg.shm_path ~n_workers:cfg.workers ()
  in
  Shm.set_transport shm cfg.transport;
  let t =
    {
      cfg;
      shm;
      started = Timer.start ();
      lock = Mutex.create ();
      workers =
        Array.init cfg.workers (fun slot ->
            {
              slot;
              pid = 0;
              fd = None;
              oc = None;
              state = Down;
              restarts = 0;
              gen = 0;
              inflight = 0;
              redispatched = 0;
              resumed = 0;
              spawned_ns = 0;
            });
      pendings = Hashtbl.create 64;
      parked = Queue.create ();
      affinity = Hashtbl.create 16;
      session_seqs = Hashtbl.create 16;
      next_sid = 1;
      stopping = false;
      roll = [];
      evq = Queue.create ();
      ev_lock = Mutex.create ();
      ev_cond = Condition.create ();
    }
  in
  (* listeners first so every worker's fd snapshot includes them *)
  let unix_lfd =
    match cfg.unix_path with
    | None -> None
    | Some path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec fd;
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 1024;
        Some fd
  in
  let tcp_lfd =
    match cfg.tcp with
    | None -> None
    | Some (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec fd;
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let addr =
          if host = "" || host = "*" then Unix.inet_addr_any
          else Unix.inet_addr_of_string host
        in
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        Unix.listen fd 1024;
        (match Unix.getsockname fd with
        | Unix.ADDR_INET (_, actual) -> Shm.set_tcp_port shm actual
        | _ -> ());
        Some fd
  in
  Mutex.protect t.lock (fun () -> Array.iter (fun w -> spawn t w) t.workers);
  if cfg.handle_signals then (
    let stop _ = push_event_async t Stop in
    let roll _ = if cfg.allow_restart then push_event_async t Roll in
    try
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sighup (Sys.Signal_handle roll)
    with Invalid_argument _ -> ());
  Option.iter (fun fd -> ignore (Thread.create (fun () -> accept_loop t fd) ())) unix_lfd;
  Option.iter (fun fd -> ignore (Thread.create (fun () -> accept_loop t fd) ())) tcp_lfd;
  Printf.eprintf
    "rotary supervisor: %d worker processes, %s transport, shm %s%s%s\n%!" cfg.workers
    (Shm.transport_name cfg.transport) cfg.shm_path
    (match cfg.unix_path with Some p -> ", unix " ^ p | None -> "")
    (match Shm.tcp_port shm with
    | Some p -> Printf.sprintf ", tcp :%d" p
    | None -> "");
  let rec loop () =
    (match pop_event t with
    | Dead slot -> handle_dead t slot
    | Roll -> handle_roll t
    | Stop -> handle_stop t);
    if not (all_down t) then loop ()
  in
  loop ();
  Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) unix_lfd;
  Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) tcp_lfd;
  (match cfg.unix_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  (try Sys.remove cfg.shm_path with Sys_error _ -> ());
  Printf.eprintf "rotary supervisor: bye\n%!"

/* poll(2) binding for the loadgen event loop (evloop.ml).
 *
 * The stdlib only exposes select(2), whose fd_set caps at 1024 fds —
 * useless for driving thousands of concurrent connections from one
 * thread.  This stub polls an arbitrary fd set: fds and interest bits
 * come in via a scratch int Bigarray laid out [fd, events, revents] *
 * n (stable across the call, so no OCaml values are touched while the
 * runtime lock is released), and readiness goes back into the same
 * rows.
 */

#include <poll.h>
#include <stdlib.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <caml/fail.h>
#include <caml/threads.h>

/* events/revents bits, mirrored in evloop.ml */
#define RC_POLL_IN 1
#define RC_POLL_OUT 2
#define RC_POLL_ERR 4

CAMLprim value rc_poll(value ba, value vn, value vtimeout_ms)
{
  intnat *rows = (intnat *) Caml_ba_data_val(ba);
  long n = Long_val(vn);
  int timeout = (int) Long_val(vtimeout_ms);
  struct pollfd *pfd;
  long i;
  int rc;

  if (n < 0 || (intnat) (3 * n) > Caml_ba_array_val(ba)->dim[0])
    caml_invalid_argument("rc_poll: fd count exceeds scratch array");
  pfd = (struct pollfd *) malloc(n ? (size_t) n * sizeof(*pfd) : 1);
  if (pfd == NULL) caml_raise_out_of_memory();
  for (i = 0; i < n; i++) {
    pfd[i].fd = (int) rows[3 * i];
    pfd[i].events = 0;
    if (rows[3 * i + 1] & RC_POLL_IN) pfd[i].events |= POLLIN;
    if (rows[3 * i + 1] & RC_POLL_OUT) pfd[i].events |= POLLOUT;
    pfd[i].revents = 0;
  }

  caml_release_runtime_system();
  rc = poll(pfd, (nfds_t) n, timeout);
  caml_acquire_runtime_system();

  for (i = 0; i < n; i++) {
    intnat r = 0;
    if (pfd[i].revents & (POLLIN | POLLHUP)) r |= RC_POLL_IN;
    if (pfd[i].revents & POLLOUT) r |= RC_POLL_OUT;
    if (pfd[i].revents & (POLLERR | POLLNVAL)) r |= RC_POLL_ERR;
    rows[3 * i + 2] = r;
  }
  free(pfd);
  return Val_long(rc < 0 ? -1 : rc);
}

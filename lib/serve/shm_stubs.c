/* Atomic accessors for the shared-memory segment (shm.ml, ring.ml,
 * arena.ml).
 *
 * The segment is an mmap'd file of native-int cells shared between the
 * supervisor, its worker processes, and read-only observers
 * (`rotary_cli top`).  Seqlock consistency needs real load-acquire /
 * store-release ordering across processes; plain Bigarray accesses
 * only promise per-access atomicity on x86, so every cell access goes
 * through these stubs.
 *
 * On top of the v1 acquire/release pair, layout v2 adds:
 *   - seq_cst load/store for the ring doorbell handshake (a Dekker
 *     store-load pattern: consumer stores "waiting" then loads "head",
 *     producer stores "head" then loads "waiting" — release/acquire
 *     alone can lose the wakeup);
 *   - compare-and-swap and fetch-and-add for the arena freelists,
 *     extent refcounts and checkpoint-table claims (multi-writer);
 *   - bulk byte copies in/out of the mapping for arena payloads
 *     (descriptor publication via the ring's head store orders them).
 */

#include <string.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

CAMLprim value rc_shm_get(value ba, value i)
{
  intnat *p = (intnat *) Caml_ba_data_val(ba);
  return Val_long(__atomic_load_n(&p[Long_val(i)], __ATOMIC_ACQUIRE));
}

CAMLprim value rc_shm_set(value ba, value i, value v)
{
  intnat *p = (intnat *) Caml_ba_data_val(ba);
  __atomic_store_n(&p[Long_val(i)], Long_val(v), __ATOMIC_RELEASE);
  return Val_unit;
}

CAMLprim value rc_shm_get_sc(value ba, value i)
{
  intnat *p = (intnat *) Caml_ba_data_val(ba);
  return Val_long(__atomic_load_n(&p[Long_val(i)], __ATOMIC_SEQ_CST));
}

CAMLprim value rc_shm_set_sc(value ba, value i, value v)
{
  intnat *p = (intnat *) Caml_ba_data_val(ba);
  __atomic_store_n(&p[Long_val(i)], Long_val(v), __ATOMIC_SEQ_CST);
  return Val_unit;
}

CAMLprim value rc_shm_cas(value ba, value i, value expected, value desired)
{
  intnat *p = (intnat *) Caml_ba_data_val(ba);
  intnat exp = Long_val(expected);
  int ok = __atomic_compare_exchange_n(&p[Long_val(i)], &exp, Long_val(desired),
                                       0, __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
  return Val_bool(ok);
}

CAMLprim value rc_shm_faa(value ba, value i, value delta)
{
  intnat *p = (intnat *) Caml_ba_data_val(ba);
  return Val_long(__atomic_fetch_add(&p[Long_val(i)], Long_val(delta),
                                     __ATOMIC_SEQ_CST));
}

/* memcpy [len] bytes from [src] (an OCaml string/bytes, at [spos]) to
 * byte offset [off] of the mapping.  No OCaml allocation; the caller
 * sequences visibility via a ring publish or seqlock. */
CAMLprim value rc_shm_put_bytes(value ba, value off, value src, value spos,
                                value len)
{
  char *p = (char *) Caml_ba_data_val(ba);
  memcpy(p + Long_val(off), Bytes_val(src) + Long_val(spos), Long_val(len));
  return Val_unit;
}

CAMLprim value rc_shm_get_bytes(value ba, value off, value dst, value dpos,
                                value len)
{
  char *p = (char *) Caml_ba_data_val(ba);
  memcpy(Bytes_val(dst) + Long_val(dpos), p + Long_val(off), Long_val(len));
  return Val_unit;
}

/* Atomic accessors for the shared-memory counter segment (shm.ml).
 *
 * The segment is an mmap'd file of native-int cells shared between the
 * supervisor, its worker processes, and read-only observers
 * (`rotary_cli top`).  Seqlock consistency needs real load-acquire /
 * store-release ordering across processes; plain Bigarray accesses
 * only promise per-access atomicity on x86, so every cell access goes
 * through these two stubs.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

CAMLprim value rc_shm_get(value ba, value i)
{
  intnat *p = (intnat *) Caml_ba_data_val(ba);
  return Val_long(__atomic_load_n(&p[Long_val(i)], __ATOMIC_ACQUIRE));
}

CAMLprim value rc_shm_set(value ba, value i, value v)
{
  intnat *p = (intnat *) Caml_ba_data_val(ba);
  __atomic_store_n(&p[Long_val(i)], Long_val(v), __ATOMIC_RELEASE);
  return Val_unit;
}

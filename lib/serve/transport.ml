(* Zero-copy job transport over the shm segment: the glue between the
   supervisor/worker processes and the Ring/Arena/checkpoint-table
   regions of Shm.

   Data path per direction: the sender allocates a payload-arena
   extent, memcpys the NDJSON body into it, and publishes a descriptor
   (sid + arena handle + length) into the slot's SPSC ring; the
   receiver pops the descriptor, copies the body out and drops the
   extent.  Neither side re-encodes JSON in transit, and the
   supervisor's response path avoids parsing entirely: the worker
   serializes the response with the session id as its first field, and
   the supervisor splices the client's original id over it byte-wise
   ([splice_client_id]).

   Blocking waits ride the NDJSON socketpair as a doorbell: a producer
   whose publish finds the consumer's waiting flag armed sends one
   [{"ctl":"ring"}] line.  The socketpair also remains the fallback
   data path — any alloc/stage failure reports [`Full] and the caller
   degrades to plain NDJSON, so arena exhaustion costs latency, never
   correctness.

   The checkpoint tier ("shm:sid<N>" paths): workers register a
   Checkpoint blob store that claims a table entry per session and
   republishes the RCCKPT bytes into the checkpoint arena each
   checkpointed iteration; after a crash the supervisor finds the
   entry and redispatches with [resume_from = "shm:sid<N>"], which the
   sibling worker's store resolves straight from the segment — no
   filesystem on the recovery hot path. *)

module Json = Rc_util.Json

let kind_job = 1
let kind_resp = 2

let doorbell_line = "{\"ctl\":\"ring\"}"

let is_doorbell line =
  match Json.of_string line with
  | Ok j -> (
      match Option.bind (Json.member "ctl" j) Json.to_string_opt with
      | Some "ring" -> true
      | _ -> false)
  | Error _ -> false

(* ---- supervisor side --------------------------------------------------- *)

(* SPSC: callers must hold the supervisor state lock while staging or
   publishing on a job ring *)

let stage_job shm ~slot ~sid line =
  let arena = Shm.payload_arena shm in
  let len = String.length line in
  match Arena.alloc arena len with
  | None -> false
  | Some handle -> (
      Arena.write arena handle line;
      let ring = Shm.job_ring shm slot in
      match Ring.try_stage ring { Ring.kind = kind_job; sid; handle; len; aux = 0 } with
      | true -> true
      | false ->
          Arena.decref arena handle;
          false)

let publish_jobs shm ~slot = Ring.publish (Shm.job_ring shm slot)

let send_job shm ~slot ~sid line =
  if stage_job shm ~slot ~sid line then `Sent (publish_jobs shm ~slot) else `Full

(* drain the response ring: (sid, body) pairs, extents dropped.  A torn
   descriptor stops the drain — the supervisor resets the rings when
   the worker dies, which is the only way a tear can appear. *)
let recv_responses shm ~slot =
  let arena = Shm.payload_arena shm in
  let ring = Shm.resp_ring shm slot in
  let rec go acc =
    match Ring.try_pop ring with
    | Ring.Empty | Ring.Torn -> List.rev acc
    | Ring.Desc d ->
        let body = Arena.read arena d.Ring.handle ~len:d.Ring.len in
        Arena.decref arena d.Ring.handle;
        go ((d.Ring.sid, body) :: acc)
  in
  go []

(* reclaim a dead worker's rings: drop undelivered job extents, deliver
   nothing (the caller redispatches pendings), zero both rings *)
let reset_rings shm ~slot =
  let arena = Shm.payload_arena shm in
  let drop d = Arena.decref arena d.Ring.handle in
  List.iter drop (Ring.drain_reset (Shm.job_ring shm slot));
  List.iter drop (Ring.drain_reset (Shm.resp_ring shm slot))

(* ---- response-id splice ------------------------------------------------ *)

(* worker responses put the session id first: {"id":<sid>,...} — the
   supervisor restores the client's id by splicing bytes, no parse *)
let id_prefix = "{\"id\":"

let splice_client_id line ~client_id =
  let n = String.length line and p = String.length id_prefix in
  if n <= p || not (String.equal (String.sub line 0 p) id_prefix) then None
  else begin
    let i = ref p in
    if !i < n && line.[!i] = '-' then incr i;
    let digits0 = !i in
    while !i < n && line.[!i] >= '0' && line.[!i] <= '9' do
      incr i
    done;
    if !i = digits0 || !i >= n then None
    else Some (id_prefix ^ Json.to_line client_id ^ String.sub line !i (n - !i))
  end

(* ---- checkpoint tier --------------------------------------------------- *)

let ckpt_prefix = "shm:"

let key_of_sid sid = Printf.sprintf "%ssid%d" ckpt_prefix sid

let sid_of_key key =
  if not (String.starts_with ~prefix:(ckpt_prefix ^ "sid") key) then None
  else
    let p = String.length ckpt_prefix + 3 in
    match int_of_string_opt (String.sub key p (String.length key - p)) with
    | Some sid when sid > 0 -> Some sid
    | _ -> None

let ckpt_save shm ~sid ~iteration blob =
  match Shm.ckpt_claim shm ~sid with
  | None -> Error "shm checkpoint table full"
  | Some entry -> (
      let arena = Shm.ckpt_arena shm in
      let len = String.length blob in
      match Arena.alloc arena len with
      | None -> Error "shm checkpoint arena full"
      | Some handle ->
          Arena.write arena handle blob;
          (match Shm.ckpt_publish shm ~entry ~iteration ~handle ~len with
          | Some old -> Arena.decref arena old
          | None -> ());
          Ok ())

(* a load can race a live writer republishing the entry (the extent is
   decref'd under us); the md5 inside the RCCKPT bytes catches the tear
   and we retry.  In the crash-recovery case the writer is dead and the
   first read wins. *)
let ckpt_load shm ~sid =
  let arena = Shm.ckpt_arena shm in
  let rec go tries =
    match Shm.ckpt_find shm ~sid with
    | None -> Error (Printf.sprintf "no shm checkpoint for sid %d" sid)
    | Some (_, _, handle, len) ->
        let s = Arena.read arena handle ~len in
        if tries >= 3 then Ok s
        else if
          (* cheap self-check: magic intact and entry unchanged *)
          String.length s >= 6
          && String.equal (String.sub s 0 6) "RCCKPT"
          &&
          match Shm.ckpt_find shm ~sid with
          | Some (_, _, h2, l2) -> h2 = handle && l2 = len
          | None -> false
        then Ok s
        else go (tries + 1)
  in
  go 0

let ckpt_latest shm ~sid =
  match Shm.ckpt_find shm ~sid with Some (_, iteration, _, _) -> Some iteration | None -> None

let ckpt_free shm ~sid =
  match Shm.ckpt_release shm ~sid with
  | Some handle -> Arena.decref (Shm.ckpt_arena shm) handle
  | None -> ()

(* ---- worker side ------------------------------------------------------- *)

type wside = {
  w_shm : Shm.t;
  w_slot : int;
  w_lock : Mutex.t;  (* response-ring producer: many waiter threads *)
  w_jobs : int Atomic.t;
  w_responses : int Atomic.t;
  w_fallbacks : int Atomic.t;
  w_ckpt_saves : int Atomic.t;
  w_ckpt_skips : int Atomic.t;
}

let worker_side shm ~slot =
  {
    w_shm = shm;
    w_slot = slot;
    w_lock = Mutex.create ();
    w_jobs = Atomic.make 0;
    w_responses = Atomic.make 0;
    w_fallbacks = Atomic.make 0;
    w_ckpt_saves = Atomic.make 0;
    w_ckpt_skips = Atomic.make 0;
  }

type drained = { items : (int * string) list; torn : bool }

(* drain the job ring: bodies copied out, extents dropped immediately —
   the window in which a SIGKILL can leak a request extent is just this
   copy, not the job's runtime *)
let recv_jobs w =
  let arena = Shm.payload_arena w.w_shm in
  let ring = Shm.job_ring w.w_shm w.w_slot in
  let rec go acc =
    match Ring.try_pop ring with
    | Ring.Empty -> { items = List.rev acc; torn = false }
    | Ring.Torn -> { items = List.rev acc; torn = true }
    | Ring.Desc d ->
        let body = Arena.read arena d.Ring.handle ~len:d.Ring.len in
        Arena.decref arena d.Ring.handle;
        Atomic.incr w.w_jobs;
        go ((d.Ring.sid, body) :: acc)
  in
  go []

let send_response w ~sid line =
  let arena = Shm.payload_arena w.w_shm in
  let len = String.length line in
  match Arena.alloc arena len with
  | None ->
      Atomic.incr w.w_fallbacks;
      `Full
  | Some handle ->
      Arena.write arena handle line;
      let r =
        Mutex.protect w.w_lock (fun () ->
            let ring = Shm.resp_ring w.w_shm w.w_slot in
            if Ring.try_stage ring { Ring.kind = kind_resp; sid; handle; len; aux = 0 } then
              `Sent (Ring.publish ring)
            else `Full)
      in
      (match r with
      | `Full ->
          Arena.decref arena handle;
          Atomic.incr w.w_fallbacks
      | `Sent _ -> Atomic.incr w.w_responses);
      r

let counters w =
  ( Atomic.get w.w_jobs,
    Atomic.get w.w_responses,
    Atomic.get w.w_fallbacks,
    Atomic.get w.w_ckpt_saves,
    Atomic.get w.w_ckpt_skips )

(* the worker's Checkpoint blob store: "shm:sid<N>" -> checkpoint
   arena.  Save errors count as skips (best-effort durability); loads
   serve crash-recovery resumes on sibling workers. *)
let blob_store w =
  {
    Checkpoint.bs_save =
      (fun ~key ~iteration blob ->
        match sid_of_key key with
        | None -> Error (Printf.sprintf "malformed shm checkpoint key %S" key)
        | Some sid -> (
            match ckpt_save w.w_shm ~sid ~iteration blob with
            | Ok () ->
                Atomic.incr w.w_ckpt_saves;
                Ok key
            | Error e ->
                Atomic.incr w.w_ckpt_skips;
                Error e));
    bs_load =
      (fun token ->
        match sid_of_key token with
        | None -> Error (Printf.sprintf "malformed shm checkpoint token %S" token)
        | Some sid -> ckpt_load w.w_shm ~sid);
  }

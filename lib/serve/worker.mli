(** The exec'd side of one supervisor socketpair
    ([rotary_cli serve-worker], the socketpair dup2'd to stdin): a full
    {!Server}/{!Scheduler} speaking NDJSON over the inherited fd, plus
    the [{"ctl":"drain"}] control form used for rolling restarts, plus
    a heartbeat thread publishing this slot's liveness and counters
    into the {!Shm} segment every ~50 ms.

    The worker is a fresh process image (spawned via
    [Unix.create_process], see [docs/operations.md]), so creating
    scheduler domains here carries none of the multithreaded-fork
    hazards; it leaves only via [Unix._exit]. *)

val run :
  ?workers:int ->
  ?max_pending:int ->
  shm:Shm.t ->
  slot:int ->
  restarts:int ->
  fd:Unix.file_descr ->
  unit ->
  'a
(** [run ~shm ~slot ~restarts ~fd ()] serves request lines from [fd]
    until EOF or a drain control, then drains and [Unix._exit]s — it
    never returns.  [workers]/[max_pending] size the internal
    scheduler; [slot]/[restarts] become the server's
    {!Server.identity} and select the shm row written. *)

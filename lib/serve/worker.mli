(** The exec'd side of one supervisor socketpair
    ([rotary_cli serve-worker], the socketpair dup2'd to stdin): a full
    {!Server}/{!Scheduler} speaking NDJSON over the inherited fd, plus
    the [{"ctl":"drain"}] (rolling restart) and [{"ctl":"ring"}]
    (shm doorbell) control forms, plus a heartbeat thread publishing
    this slot's liveness, counters and transport stats into the {!Shm}
    segment every ~50 ms.

    Under [transport = Shm.Shm_rings], jobs arrive as descriptors in
    this slot's shm job ring (payloads in the shared arena) and
    responses return through the response ring, with the fd as
    doorbell + fallback; the worker also registers the ["shm:"]
    {!Checkpoint.blob_store} so checkpoints and crash resumes ride the
    shared checkpoint arena instead of the filesystem.

    The worker is a fresh process image (spawned via
    [Unix.create_process], see [docs/operations.md]), so creating
    scheduler domains here carries none of the multithreaded-fork
    hazards; it leaves only via [Unix._exit]. *)

val run :
  ?workers:int ->
  ?max_pending:int ->
  ?transport:Shm.transport ->
  ?pin_core:int ->
  ?session_capacity:int ->
  ?session_dir:string ->
  shm:Shm.t ->
  slot:int ->
  restarts:int ->
  fd:Unix.file_descr ->
  unit ->
  'a
(** [run ~shm ~slot ~restarts ~fd ()] serves request lines from [fd]
    (and, under the shm transport, from the slot's job ring) until EOF
    or a drain control, then drains and [Unix._exit]s — it never
    returns.  [workers]/[max_pending] size the internal scheduler;
    [slot]/[restarts] become the server's {!Server.identity} and select
    the shm row written; [pin_core] pins the process via
    {!Affinity.pin_self} (warns and continues if unsupported).

    [session_capacity]/[session_dir] configure the ECO {!Session}
    store: the escrow directory must be shared by all sibling workers
    (crash recovery rehydrates from it); under the shm transport the
    segment's checkpoint arena is the hot escrow tier and the directory
    the fallback. *)

(** Deadline-aware priority job scheduler over worker domains.

    Jobs are CPU-bound flow/sweep/report runs; cross-job parallelism
    comes from dedicated worker domains, and inside a worker every
    {!Rc_par.Pool} primitive is forced sequential
    ({!Rc_par.Pool.sequential_scope}) — the pool's determinism contract
    makes per-job results bit-identical to any other job count.

    Scheduling picks the highest priority first, FIFO within a
    priority.  Deadlines (relative seconds, tracked on the monotonic
    clock) are enforced twice: a job whose deadline passes while queued
    is cancelled without starting, and a running job's
    {!Cancel.t} token trips at the flow's next stage boundary.
    Admission is bounded — {!submit} rejects with a reason once
    [max_pending] jobs are queued.

    Per-job {!Rc_obs.Metrics} deltas are recorded around each run;
    they are exact when jobs run one at a time and approximate under
    concurrency (the registry is process-global), the same caveat as
    {!Rc_core.Flow_trace} deltas inside parallel suite arms. *)

type t

(** Terminal result of a job. *)
type outcome =
  | Done of Rc_util.Json.t  (** The job's result document. *)
  | Failed of string  (** The job raised; the exception text. *)
  | Cancelled of string  (** Token fired (deadline, client, shutdown). *)

type phase = Queued | Running | Finished of outcome

type info = {
  i_id : int;
  i_name : string;
  i_priority : int;
  i_phase : phase;
  i_wait_s : float;  (** Queue wait: submit → start (monotonic). *)
  i_run_s : float;  (** Execution wall time; 0 if never started. *)
  i_metrics : Rc_obs.Metrics.snapshot;  (** Delta across the run. *)
}

type counts = {
  submitted : int;
  rejected : int;
  completed : int;
  failed : int;
  cancelled : int;
  pending : int;
  running : int;
}

val create : ?workers:int -> ?max_pending:int -> unit -> t
(** Spawn [workers] (default 2) worker domains with a bounded queue of
    [max_pending] (default 64) jobs. *)

val n_workers : t -> int

val submit :
  t ->
  ?priority:int ->
  ?deadline_s:float ->
  ?name:string ->
  (Cancel.t -> Rc_util.Json.t) ->
  (int, string) result
(** Admit a job; returns its id, or [Error reason] when the queue is
    saturated or the scheduler is draining.  [priority] defaults to 0
    (higher runs first); [deadline_s] is relative seconds from now.
    The job receives its cancellation token and must poll it at its
    cancellation points (pass [Cancel.check token] as the flow
    guard). *)

val cancel : t -> int -> reason:string -> bool
(** Request cancellation.  A queued job finishes [Cancelled]
    immediately; a running job's token trips at its next poll.  [false]
    when the job is unknown or already finished. *)

val await : t -> int -> (outcome * info) option
(** Block until the job reaches a terminal phase.  [None] for unknown
    ids.  Safe to call from any thread or domain. *)

val info : t -> int -> info option
(** Non-blocking job status. *)

val counts : t -> counts

val latency_percentiles : t -> percentiles:float list -> (float * float) list
(** [(p, seconds)] over completed jobs' submit→finish latencies
    (linear interpolation); [nan] while no job has completed. *)

val drain : t -> unit
(** Stop admitting and block until every queued and running job has
    finished — the graceful-shutdown path. *)

val shutdown : ?cancel_pending:bool -> t -> unit
(** {!drain} then join the worker domains.  With [cancel_pending]
    (default false), queued jobs are cancelled instead of executed;
    running jobs always finish (their tokens are left alone). *)

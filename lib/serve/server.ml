(* Concurrent request server over a Unix-domain socket or stdio.

   Threading model: the scheduler owns worker *domains* (cross-job
   parallelism); the server uses lightweight *threads* for I/O — one
   reader thread per connection plus one short-lived waiter thread per
   async job, which blocks in Scheduler.await and writes the response
   under the connection's write mutex.  Responses therefore interleave
   by completion order, matched to requests by the echoed "id".

   Graceful drain (SIGTERM, SIGINT, or the "shutdown" op): stop
   accepting connections and jobs, let queued and running jobs finish,
   flush every in-flight response, then return.  kill -9 is the
   non-graceful path the checkpoint subsystem exists for. *)

module Json = Rc_util.Json
module Timer = Rc_util.Timer

(* who this server is within a multi-process tier: the supervisor spawns
   each worker with its slot id and restart generation, and the status
   op reports them so operators can tell which worker answered *)
type identity = { worker_id : int; restarts : int }

type t = {
  sched : Scheduler.t;
  identity : identity;
  sessions : Session.t;
  lock : Mutex.t;
  flushed : Condition.t;  (* signalled when in_flight drops *)
  mutable stop : bool;
  mutable in_flight : int;  (* submitted jobs whose response isn't written yet *)
  mutable sock_path : string option;  (* set in run_unix; used to wake accept *)
  started_s : float;  (* monotonic *)
}

let create ?workers ?max_pending ?(identity = { worker_id = 0; restarts = 0 })
    ?session_capacity ?session_tier ?session_dir () =
  let tier =
    match session_tier with
    | Some tier -> tier
    | None ->
        let dir =
          match session_dir with
          | Some d -> d
          | None ->
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "rotary-eco-%d" (Unix.getpid ()))
        in
        Session.file_tier ~dir
  in
  {
    sched = Scheduler.create ?workers ?max_pending ();
    identity;
    sessions = Session.create ?capacity:session_capacity ~tier ();
    lock = Mutex.create ();
    flushed = Condition.create ();
    stop = false;
    in_flight = 0;
    sock_path = None;
    started_s = Timer.now_s ();
  }

let scheduler t = t.sched
let sessions t = t.sessions

let stopping t = Mutex.protect t.lock (fun () -> t.stop)

(* Wake a blocked accept: closing the fd from another thread does not
   reliably interrupt it, but a throw-away connection always does. *)
let poke_listener t =
  match Mutex.protect t.lock (fun () -> t.sock_path) with
  | None -> ()
  | Some path -> (
      try
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> Unix.connect fd (Unix.ADDR_UNIX path))
      with Unix.Unix_error _ -> ())

let request_stop t =
  let fresh = Mutex.protect t.lock (fun () ->
      let fresh = not t.stop in
      t.stop <- true;
      fresh)
  in
  if fresh then poke_listener t

let status_json t =
  let c = Scheduler.counts t.sched in
  let pcts =
    Scheduler.latency_percentiles t.sched ~percentiles:[ 0.5; 0.9; 0.95; 0.99 ]
  in
  let uptime = Timer.now_s () -. t.started_s in
  Json.Obj
    [
      ("uptime_s", Json.Float uptime);
      ("workers", Json.Int (Scheduler.n_workers t.sched));
      ("draining", Json.Bool (stopping t));
      ( "worker",
        Json.Obj
          [
            ("id", Json.Int t.identity.worker_id);
            ("restarts", Json.Int t.identity.restarts);
            ("draining", Json.Bool (stopping t));
          ] );
      ( "jobs",
        Json.Obj
          [
            ("submitted", Json.Int c.Scheduler.submitted);
            ("rejected", Json.Int c.Scheduler.rejected);
            ("completed", Json.Int c.Scheduler.completed);
            ("failed", Json.Int c.Scheduler.failed);
            ("cancelled", Json.Int c.Scheduler.cancelled);
            ("pending", Json.Int c.Scheduler.pending);
            ("running", Json.Int c.Scheduler.running);
          ] );
      ( "latency_s",
        Json.Obj
          (List.map
             (fun (p, v) -> (Printf.sprintf "p%g" (p *. 100.0), Json.Float v))
             pcts) );
      ( "throughput_per_s",
        Json.Float
          (if uptime > 0.0 then float_of_int c.Scheduler.completed /. uptime else 0.0) );
      ( "sessions",
        let resident, known = Session.counts t.sessions in
        Json.Obj [ ("resident", Json.Int resident); ("known", Json.Int known) ]
      );
    ]

(* attach scheduler-side timing to a job's result document *)
let with_job_stats job_id (info : Scheduler.info option) result =
  let stats =
    Json.Obj
      (("id", Json.Int job_id)
      ::
      (match info with
      | None -> []
      | Some i ->
          [
            ("wait_s", Json.Float i.Scheduler.i_wait_s);
            ("run_s", Json.Float i.Scheduler.i_run_s);
          ]))
  in
  match result with
  | Json.Obj fields -> Json.Obj (fields @ [ ("job", stats) ])
  | other -> Json.Obj [ ("result", other); ("job", stats) ]

let handle_async t ~respond (req : Protocol.request) work =
  let id = req.Protocol.req_id in
  match
    Scheduler.submit t.sched ~priority:req.Protocol.priority
      ?deadline_s:req.Protocol.deadline_s
      ~name:(Protocol.op_name req.Protocol.op)
      work
  with
  | Error reason -> respond (Protocol.response_error ~id reason)
  | Ok job_id ->
      Mutex.protect t.lock (fun () -> t.in_flight <- t.in_flight + 1);
      let waiter () =
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect t.lock (fun () ->
                t.in_flight <- t.in_flight - 1;
                Condition.broadcast t.flushed))
          (fun () ->
            match Scheduler.await t.sched job_id with
            | None -> respond (Protocol.response_error ~id "job vanished")
            | Some (outcome, info) -> (
                match outcome with
                | Scheduler.Done result ->
                    respond
                      (Protocol.response_ok ~id
                         (with_job_stats job_id (Some info) result))
                | Scheduler.Failed msg ->
                    respond (Protocol.response_error ~id ("job failed: " ^ msg))
                | Scheduler.Cancelled reason ->
                    respond (Protocol.response_error ~id ("cancelled: " ^ reason))))
      in
      ignore (Thread.create waiter ())

let handle_line t ~respond line =
  match Protocol.parse_request line with
  | Error (id, op, msg) -> respond (Protocol.response_error ~id ?op msg)
  | Ok req -> (
      let id = req.Protocol.req_id in
      match req.Protocol.op with
      | Protocol.Checkpoint_op path -> (
          match Protocol.inspect_checkpoint path with
          | Ok meta -> respond (Protocol.response_ok ~id meta)
          | Error e -> respond (Protocol.response_error ~id e))
      | Protocol.Status_op -> respond (Protocol.response_ok ~id (status_json t))
      | Protocol.Restart_op ->
          (* meaningful only for the multi-process tier; the supervisor
             intercepts it before a worker ever sees the line *)
          respond
            (Protocol.response_error ~id
               "rolling restart needs the multi-process tier (rotary_cli serve \
                --workers-proc N --drain-restart)")
      | Protocol.Shutdown_op ->
          respond
            (Protocol.response_ok ~id (Json.Obj [ ("draining", Json.Bool true) ]));
          request_stop t
      | op -> (
          (* session ops get their job bodies from this server's store;
             everything else from the stateless protocol layer *)
          match Session.job_of_op t.sessions op with
          | Some work -> handle_async t ~respond req work
          | None -> (
              match Protocol.job_of_op op with
              | Some work -> handle_async t ~respond req work
              | None -> (* unreachable: sync ops matched above *) assert false)))

let drain t =
  request_stop t;
  Scheduler.drain t.sched;
  Mutex.protect t.lock (fun () ->
      while t.in_flight > 0 do
        Condition.wait t.flushed t.lock
      done);
  Scheduler.shutdown t.sched

let install_signal_handlers t =
  (* a dead client must raise EPIPE at the write, not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop _ = request_stop t in
  try
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
  with Invalid_argument _ -> ()

(* ---- connection I/O ---------------------------------------------------- *)

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wlock = Mutex.create () in
  (* every handled request produces exactly one response; a client may
     shut down its write side and keep reading, so the fd must stay
     open until this connection's outstanding responses are written *)
  let clock = Mutex.create () in
  let ccond = Condition.create () in
  let outstanding = ref 0 in
  let respond j =
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect clock (fun () ->
            decr outstanding;
            Condition.broadcast ccond))
      (fun () ->
        try
          Mutex.protect wlock (fun () ->
              output_string oc (Json.to_line j);
              output_char oc '\n';
              flush oc)
        with Sys_error _ | Unix.Unix_error _ -> ()  (* client went away *))
  in
  (try
     let rec loop () =
       match input_line ic with
       | line ->
           let line = String.trim line in
           if line <> "" then (
             Mutex.protect clock (fun () -> incr outstanding);
             handle_line t ~respond line);
           loop ()
       | exception End_of_file -> ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.protect clock (fun () ->
      while !outstanding > 0 do
        Condition.wait ccond clock
      done);
  (* close_out flushes and closes the shared fd; close_in then finds it
     closed, which close_in_noerr swallows *)
  close_out_noerr oc;
  close_in_noerr ic

let run_unix ?workers ?max_pending ?session_capacity ?session_dir ~path () =
  let t = create ?workers ?max_pending ?session_capacity ?session_dir () in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  Mutex.protect t.lock (fun () -> t.sock_path <- Some path);
  install_signal_handlers t;
  Printf.eprintf "rotary serve: listening on %s (%d workers)\n%!" path
    (Scheduler.n_workers t.sched);
  let rec accept_loop () =
    if not (stopping t) then (
      match Unix.accept fd with
      | cfd, _ ->
          if stopping t then (try Unix.close cfd with Unix.Unix_error _ -> ())
          else ignore (Thread.create (fun () -> serve_connection t cfd) ());
          accept_loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ())
  in
  accept_loop ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Printf.eprintf "rotary serve: draining\n%!";
  drain t;
  Printf.eprintf "rotary serve: bye\n%!"

let run_stdio ?workers ?max_pending ?session_capacity ?session_dir () =
  let t = create ?workers ?max_pending ?session_capacity ?session_dir () in
  install_signal_handlers t;
  let wlock = Mutex.create () in
  let respond j =
    try
      Mutex.protect wlock (fun () ->
          output_string stdout (Json.to_line j);
          output_char stdout '\n';
          flush stdout)
    with Sys_error _ -> ()
  in
  (try
     let rec loop () =
       if not (stopping t) then (
         match input_line stdin with
         | line ->
             let line = String.trim line in
             if line <> "" then handle_line t ~respond line;
             loop ()
         | exception End_of_file -> ())
     in
     loop ()
   with Sys_error _ -> ());
  drain t

(* Online ECO session store -- see session.mli for the model. *)

module Json = Rc_util.Json
module Metrics = Rc_obs.Metrics
open Rc_core

type tier = {
  t_save : sid:int -> iteration:int -> string -> (unit, string) result;
  t_load : sid:int -> (string, string) result;
  t_free : sid:int -> unit;
}

(* Session counters in the shm export table (Metrics.export_names).
   Residency is a delta counter (+1 on becoming resident, -1 on losing
   residency), not a gauge: counter shards sum exactly across the
   scheduler domains that touch a session, where a gauge's merge would
   keep a stale shard's last value. *)
let m_opens = Metrics.counter "serve.session.opens"
let m_edits = Metrics.counter "serve.session.edits"
let m_evictions = Metrics.counter "serve.session.evictions"
let m_rehydrations = Metrics.counter "serve.session.rehydrations"
let m_resident = Metrics.counter "serve.session.resident"

(* ---------- tiers ---------- *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let file_tier ~dir =
  let path sid = Filename.concat dir (Printf.sprintf "eco-sid%d.ckpt" sid) in
  let t_save ~sid ~iteration:_ bytes =
    try
      mkdir_p dir;
      let tmp = Filename.temp_file ~temp_dir:dir "eco-" ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc bytes;
      close_out oc;
      Sys.rename tmp (path sid);
      Ok ()
    with exn -> Error (Printexc.to_string exn)
  in
  let t_load ~sid =
    let p = path sid in
    if not (Sys.file_exists p) then
      Error (Printf.sprintf "no escrow for session %d under %s" sid dir)
    else
      try
        let ic = open_in_bin p in
        let bytes = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Ok bytes
      with exn -> Error (Printexc.to_string exn)
  in
  let t_free ~sid = try Sys.remove (path sid) with Sys_error _ -> () in
  { t_save; t_load; t_free }

let chain hot cold =
  let t_save ~sid ~iteration bytes =
    match hot.t_save ~sid ~iteration bytes with
    | Ok () -> Ok ()
    | Error _ -> cold.t_save ~sid ~iteration bytes
  in
  let t_load ~sid =
    match hot.t_load ~sid with Ok b -> Ok b | Error _ -> cold.t_load ~sid
  in
  let t_free ~sid =
    hot.t_free ~sid;
    cold.t_free ~sid
  in
  { t_save; t_load; t_free }

(* ---------- store ---------- *)

type entry = {
  e_sid : int;
  e_lock : Mutex.t;  (* serializes ops on one session; held across stage re-runs *)
  mutable e_ctx : Flow_ctx.t option;  (* [Some] = resident *)
  mutable e_applied : int;  (* applied edit batches; -1 = shell awaiting rehydration *)
  mutable e_digest : string;
  mutable e_stamp : int;  (* LRU clock tick of the last touch *)
  mutable e_escrowed : bool;  (* last escrow succeeded: safe to evict *)
  mutable e_closed : bool;
}

type t = {
  tier : tier;
  capacity : int;
  lock : Mutex.t;  (* guards [entries], [clock], [next_sid] *)
  entries : (int, entry) Hashtbl.t;
  mutable clock : int;
  mutable next_sid : int;  (* single-process id allocation *)
}

let create ?(capacity = 8) ~tier () =
  {
    tier;
    capacity = max 1 capacity;
    lock = Mutex.create ();
    entries = Hashtbl.create 16;
    clock = 0;
    next_sid = 1;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let touch t e =
  t.clock <- t.clock + 1;
  e.e_stamp <- t.clock

let residents t =
  Hashtbl.fold
    (fun _ e n -> match e.e_ctx with Some _ -> n + 1 | None -> n)
    t.entries 0

let counts t =
  with_lock t.lock (fun () -> (residents t, Hashtbl.length t.entries))

(* Call with [t.lock] held.  Evicting only drops the resident context:
   the escrow written after the entry's last applied batch is the
   authoritative copy.  Entries mid-operation (lock busy) or whose last
   escrow failed are skipped -- they stay resident rather than lose
   state. *)
let evict_over_capacity t ~keep =
  let overflow = residents t - t.capacity in
  if overflow > 0 then begin
    let eligible =
      Hashtbl.fold
        (fun _ e acc ->
          match e.e_ctx with
          | Some _ when e.e_sid <> keep && e.e_escrowed -> e :: acc
          | _ -> acc)
        t.entries []
    in
    let by_age = List.sort (fun a b -> compare a.e_stamp b.e_stamp) eligible in
    List.iteri
      (fun i e ->
        if i < overflow && Mutex.try_lock e.e_lock then begin
          (match e.e_ctx with
          | Some _ ->
              e.e_ctx <- None;
              Metrics.incr m_evictions;
              Metrics.add m_resident (-1)
          | None -> ());
          Mutex.unlock e.e_lock
        end)
      by_age
  end

let escrow t e ctx =
  let _meta, bytes = Checkpoint.to_blob ctx in
  match t.tier.t_save ~sid:e.e_sid ~iteration:ctx.Flow_ctx.iteration bytes with
  | Ok () -> e.e_escrowed <- true
  | Error msg ->
      (* Keep the session resident and non-evictable until the next
         successful escrow; crash recovery degrades to the last one. *)
      e.e_escrowed <- false;
      Printf.eprintf "[session] sid %d escrow failed: %s\n%!" e.e_sid msg

(* Call with [e.e_lock] held. *)
let rehydrate t e =
  match t.tier.t_load ~sid:e.e_sid with
  | Error msg -> Error msg
  | Ok bytes -> (
      match Checkpoint.load_blob bytes with
      | Error msg ->
          Error (Printf.sprintf "session %d escrow unreadable: %s" e.e_sid msg)
      | Ok (meta, ctx) ->
          e.e_ctx <- Some ctx;
          e.e_applied <- meta.Checkpoint.iteration;
          e.e_digest <- Checkpoint.digest_of_ctx ctx;
          e.e_escrowed <- true;
          Metrics.incr m_rehydrations;
          Metrics.add m_resident 1;
          Ok ctx)

(* Find the session's entry, admitting a shell for an unknown sid so a
   redispatched op can rehydrate a crashed sibling's escrow.  Returns
   with no locks held; the caller takes [e.e_lock]. *)
let find_or_admit t sid =
  with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.entries sid with
      | Some e ->
          touch t e;
          e
      | None ->
          let e =
            {
              e_sid = sid;
              e_lock = Mutex.create ();
              e_ctx = None;
              e_applied = -1;
              e_digest = "";
              e_stamp = 0;
              e_escrowed = false;
              e_closed = false;
            }
          in
          Hashtbl.replace t.entries sid e;
          touch t e;
          e)

(* Call with [e.e_lock] held: the resident context, rehydrating from
   escrow when evicted (or when the sid is only known to the shared
   tier -- the crash-recovery path).  A shell whose tier probe fails
   was never a session at all and is forgotten. *)
let resident_ctx t e =
  match e.e_ctx with
  | Some ctx -> Ok ctx
  | None -> (
      match rehydrate t e with
      | Ok ctx ->
          with_lock t.lock (fun () -> evict_over_capacity t ~keep:e.e_sid);
          Ok ctx
      | Error msg ->
          if e.e_applied < 0 then
            with_lock t.lock (fun () -> Hashtbl.remove t.entries e.e_sid);
          Error
            (if e.e_applied < 0 then
               Printf.sprintf "unknown session %d (%s)" e.e_sid msg
             else msg))

let fail fmt = Printf.ksprintf failwith fmt

(* ---------- responses ---------- *)

let mode_name = function Flow.Netflow -> "netflow" | Flow.Ilp -> "ilp"

let head_snapshot (ctx : Flow_ctx.t) =
  match ctx.history with
  | s :: _ -> s
  | [] -> Flow_ctx.take_snapshot ctx ~iteration:ctx.iteration

let session_fields sid e = [ ("session", Json.Int sid); ("applied", Json.Int e.e_applied); ("digest", Json.String e.e_digest) ]

let open_result sid e (ctx : Flow_ctx.t) =
  let cfg = ctx.cfg in
  let chip = ctx.chip in
  Json.Obj
    (session_fields sid e
    @ [
        ("bench", Json.String cfg.bench.Bench_suite.bname);
        ("mode", Json.String (mode_name cfg.mode));
        ("n_cells", Json.Int (Rc_netlist.Netlist.n_cells ctx.netlist));
        ("n_ffs", Json.Int (Array.length ctx.ffs));
        ("n_rings", Json.Int (Rc_rotary.Ring_array.n_rings ctx.rings));
        ("clock_period_ps", Json.Float cfg.tech.Rc_tech.Tech.clock_period);
        ( "chip",
          Json.Obj
            [
              ("xmin", Json.Float chip.Rc_geom.Rect.xmin);
              ("ymin", Json.Float chip.Rc_geom.Rect.ymin);
              ("xmax", Json.Float chip.Rc_geom.Rect.xmax);
              ("ymax", Json.Float chip.Rc_geom.Rect.ymax);
            ] );
        ("slack_ps", Json.Float ctx.slack);
        ("snapshot", Protocol.json_of_snapshot (head_snapshot ctx));
      ])

let edit_result sid e (report : Flow.edit_report) ~deduped =
  let b = report.Flow.er_before and a = report.Flow.er_after in
  Json.Obj
    (session_fields sid e
    @ [
        ("deduped", Json.Bool deduped);
        ( "stages",
          Json.List (List.map (fun s -> Json.String s) report.Flow.er_stages) );
        ("cells_moved", Json.Int report.Flow.er_cells_moved);
        ("slack_ps", Json.Float report.Flow.er_slack);
        ("before", Protocol.json_of_snapshot b);
        ("after", Protocol.json_of_snapshot a);
        ( "delta",
          Json.Obj
            [
              ("total_wl_um", Json.Float (a.Flow.total_wl -. b.Flow.total_wl));
              ( "tapping_wl_um",
                Json.Float (a.Flow.tapping_wl -. b.Flow.tapping_wl) );
              ("signal_wl_um", Json.Float (a.Flow.signal_wl -. b.Flow.signal_wl));
              ("total_mw", Json.Float (a.Flow.total_mw -. b.Flow.total_mw));
              ( "max_load_ff",
                Json.Float (a.Flow.max_load_ff -. b.Flow.max_load_ff) );
            ] );
      ])

(* ---------- ops ---------- *)

let open_session t (so : Protocol.session_open_request) token =
  let outcome = Protocol.outcome_of_flow_request so.Protocol.so_flow token in
  let ctx = Flow.context_of_outcome outcome in
  let digest = Checkpoint.digest_of_ctx ctx in
  let sid, e =
    with_lock t.lock (fun () ->
        let sid =
          match so.Protocol.so_session with
          | Some s -> s
          | None ->
              let s = t.next_sid in
              t.next_sid <- s + 1;
              s
        in
        let was_resident =
          match Hashtbl.find_opt t.entries sid with
          | Some old -> old.e_ctx <> None
          | None -> false
        in
        if not was_resident then Metrics.add m_resident 1;
        (* Replace wholesale: a crash-redispatched open re-runs the same
           deterministic flow, so the state (and digest) is identical. *)
        let e =
          {
            e_sid = sid;
            e_lock = Mutex.create ();
            e_ctx = Some ctx;
            e_applied = 0;
            e_digest = digest;
            e_stamp = 0;
            e_escrowed = false;
            e_closed = false;
          }
        in
        Hashtbl.replace t.entries sid e;
        touch t e;
        (sid, e))
  in
  with_lock e.e_lock (fun () -> escrow t e ctx);
  with_lock t.lock (fun () -> evict_over_capacity t ~keep:sid);
  Metrics.incr m_opens;
  open_result sid e ctx

(* An edit overtaken by a scheduler sibling (its predecessor's job still
   running) waits here for the predecessor to land.  Bounded: a genuine
   sequence gap (predecessor never dispatched) errors out. *)
let seq_wait_s = 10.0

let edit_session t (se : Protocol.session_edit_request) token =
  let sid = se.Protocol.se_session in
  let e = find_or_admit t sid in
  let deadline = Unix.gettimeofday () +. seq_wait_s in
  let rec run () =
    let r =
      with_lock e.e_lock (fun () ->
          if e.e_closed then fail "session %d is closed" sid;
          match resident_ctx t e with
          | Error msg -> failwith msg
          | Ok ctx ->
              let seq =
                match se.Protocol.se_seq with
                | Some s -> s
                | None -> e.e_applied + 1
              in
              if seq <= e.e_applied then
                (* Crash-redispatch dedupe: the batch already landed
                   (possibly on a sibling whose escrow we rehydrated). *)
                `Done (edit_result sid e Flow.{
                         er_before = head_snapshot ctx;
                         er_after = head_snapshot ctx;
                         er_stages = [];
                         er_cells_moved = 0;
                         er_slack = ctx.Flow_ctx.slack;
                       } ~deduped:true)
              else if seq > e.e_applied + 1 then `Wait seq
              else begin
                let ctx', report =
                  Flow.apply_edits ~guard:(Protocol.guard_of token) ctx
                    se.Protocol.se_edits
                in
                e.e_ctx <- Some ctx';
                e.e_applied <- seq;
                e.e_digest <- Checkpoint.digest_of_ctx ctx';
                escrow t e ctx';
                Metrics.incr m_edits;
                `Done (edit_result sid e report ~deduped:false)
              end)
    in
    match r with
    | `Done json -> json
    | `Wait seq ->
        if Unix.gettimeofday () > deadline then
          fail "session %d: edit seq %d ahead of applied %d (sequence gap)"
            sid seq e.e_applied
        else begin
          Cancel.check token;
          Thread.delay 0.01;
          run ()
        end
  in
  let json = run () in
  with_lock t.lock (fun () -> evict_over_capacity t ~keep:sid);
  json

let query_session t sid _token =
  let e = find_or_admit t sid in
  with_lock e.e_lock (fun () ->
      if e.e_closed then fail "session %d is closed" sid;
      match resident_ctx t e with
      | Error msg -> failwith msg
      | Ok ctx ->
          Json.Obj
            (session_fields sid e
            @ [
                ("snapshot", Protocol.json_of_snapshot (head_snapshot ctx));
                ("slack_ps", Json.Float ctx.Flow_ctx.slack);
              ]))

let close_session t sid _token =
  let e =
    with_lock t.lock (fun () -> Hashtbl.find_opt t.entries sid)
  in
  match e with
  | None ->
      (* Tolerate closing an escrow-only session (e.g. after a restart):
         just release the tier's copy. *)
      t.tier.t_free ~sid;
      Json.Obj [ ("session", Json.Int sid); ("closed", Json.Bool true) ]
  | Some e ->
      let json =
        with_lock e.e_lock (fun () ->
            e.e_closed <- true;
            if e.e_ctx <> None then Metrics.add m_resident (-1);
            e.e_ctx <- None;
            Json.Obj
              (session_fields sid e @ [ ("closed", Json.Bool true) ]))
      in
      with_lock t.lock (fun () -> Hashtbl.remove t.entries sid);
      t.tier.t_free ~sid;
      json

let job_of_op t (op : Protocol.op) =
  match op with
  | Protocol.Session_open_op so -> Some (fun token -> open_session t so token)
  | Protocol.Session_edit_op se -> Some (fun token -> edit_session t se token)
  | Protocol.Session_query_op sid -> Some (query_session t sid)
  | Protocol.Session_close_op sid -> Some (close_session t sid)
  | _ -> None

(** Cooperative cancellation tokens with optional monotonic deadlines.

    A token is shared between the requester (who may {!cancel} it with a
    reason) and the job, which polls {!check} at its cancellation points
    — the flow polls at every stage boundary through {!Flow.run}'s
    [guard] hook.  Deadlines are absolute values of
    {!Rc_util.Timer.now_s}, so wall-clock jumps can neither fire nor
    postpone them. *)

exception Cancelled of string
(** Raised by {!check}; carries the cancellation reason. *)

type t

val create : ?deadline:float -> unit -> t
(** A live token.  [deadline] is an absolute monotonic time
    ({!Rc_util.Timer.now_s} seconds); once passed, the token behaves as
    cancelled with reason ["deadline exceeded"] even if nobody polled
    before. *)

val none : unit -> t
(** A token that never fires unless explicitly cancelled. *)

val cancel : t -> reason:string -> unit
(** Request cancellation.  The first reason wins; later calls are
    no-ops. *)

val check : t -> unit
(** @raise Cancelled when the token was cancelled or its deadline has
    passed. *)

val cancelled : t -> bool

val reason : t -> string option
(** The cancellation reason, if cancelled (explicitly or by
    deadline). *)

val deadline : t -> float option
(** The absolute monotonic deadline, if any. *)

val time_left : t -> float option
(** Seconds until the deadline (negative once passed); [None] when the
    token has no deadline. *)

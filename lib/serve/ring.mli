(** Single-producer/single-consumer descriptor ring over a region of
    the shared segment (see [docs/serving.md] for the on-disk layout).

    A ring is a 16-word header — free-running [head] (producer) and
    [tail] (consumer) counters on separate cache lines plus a
    consumer-waiting flag — followed by [slots] descriptors of 8 words
    (one cache line) each.  Descriptors carry a kind, a session id, an
    {!Arena} handle + length for the bulk payload, and an aux word;
    slot word 0 is a stamp equal to the descriptor's absolute index +
    1, letting the consumer reject half-written slots ({!pop.Torn})
    instead of decoding garbage.

    Exactly one producer and one consumer may use a ring at a time
    (staging state is producer-local); multi-threaded producers must
    serialize externally.  Blocking waits ride an external doorbell
    channel: the consumer {!arm}s the waiting flag before sleeping and
    {!publish} reports whether a doorbell is owed. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

type desc = { kind : int; sid : int; handle : int; len : int; aux : int }

val header_words : int
val desc_words : int

val words : slots:int -> int
(** Region size in words for a ring of [slots] descriptors. *)

val init : ba -> base:int -> slots:int -> t
(** Zero the indices and return a handle (segment creator only). *)

val attach : ba -> base:int -> slots:int -> t
(** Handle onto an already-initialized ring at [base]. *)

val capacity : t -> int

val depth : t -> int
(** Published-but-unconsumed descriptors (either side may poll this). *)

val try_stage : t -> desc -> bool
(** Write a descriptor into the next free slot {e without} publishing
    it; [false] if the ring is full.  Staged descriptors become visible
    only at the next {!publish} — batch several stages per publish on
    the hot path. *)

val publish : t -> bool
(** Publish all staged descriptors with one release of [head].
    Returns [true] when the consumer had {!arm}ed the waiting flag —
    the producer owes it a doorbell. *)

val try_push : t -> desc -> bool option
(** Stage + publish one descriptor: [None] = full, [Some doorbell]
    otherwise. *)

type pop = Empty | Torn | Desc of desc

val try_pop : t -> pop
(** Consume the next descriptor.  [Torn] = stamp mismatch: the slot
    was exposed half-written (crashed or buggy producer) — the
    consumer should stop trusting the ring. *)

val arm : t -> bool
(** Arm the waiting flag before blocking on the doorbell channel:
    [true] = ring empty, safe to sleep; [false] = descriptors arrived
    during arming (flag cleared, consume instead).  Seq_cst handshake
    with {!publish} — no lost wakeups. *)

val disarm : t -> unit
(** Clear the waiting flag after a doorbell or spurious wakeup. *)

val drain_reset : t -> desc list
(** Pop everything consumable, then zero the ring (head, tail, flag,
    staged state).  Supervisor-only, with the peer process dead: used
    to reclaim descriptors (and their arena extents) after a worker
    crash before the slot respawns. *)

(** Per-process CPU affinity for the supervised worker tier
    ([rotary_cli serve --pin-cores]): pinning worker [i] to core
    [i mod ncores] keeps its shm ring/arena cache lines resident.
    Linux-only; elsewhere {!pin_self} reports [Unsupported] and the
    worker logs a warning instead of failing. *)

type outcome = Pinned | Failed | Unsupported

val ncores : unit -> int
(** Online CPU count (>= 1; 1 on unsupported platforms). *)

val pin_self : int -> outcome
(** Pin the calling process to core [core mod ncores ()]. *)

(** Mmap'd shared-memory counter segment: per-worker liveness, queue
    and solver metrics, written by the supervised worker processes and
    the supervisor, read live by [rotary_cli top] without touching the
    server.

    {1 Layout (version 1)}

    A segment is one 4096-byte header page plus one 4096-byte slot per
    worker; every cell is a native OCaml int (8 bytes).  A slot holds
    two independently seqlock'd regions: the {e worker region} (words
    0–255, written only by that worker's heartbeat thread — pid, state,
    heartbeat timestamp, scheduler counters, and the fixed
    {!Rc_obs.Metrics.export_names} solver table) and the {e control
    region} (words 256–511, written only by the supervisor — pid as the
    supervisor sees it, up/draining/down state, restart count, dispatch
    counters).  The field-by-field byte layout is documented in
    [docs/operations.md]; {!layout_version} bumps on any change and
    {!attach} rejects segments of other versions.

    {1 Consistency}

    Writers bump the region's sequence word odd, write, bump it even;
    readers retry while the sequence is odd or changed under them.  All
    cell accesses use acquire/release atomics (C stubs), so reads are
    consistent across processes.  A reader that exhausts its retry
    budget (e.g. the writer was SIGKILLed mid-write) gets the torn row
    back flagged inconsistent rather than spinning forever. *)

val layout_version : int

type t

(** {1 Worker-region rows} *)

type worker_state = W_starting | W_serving | W_draining | W_stopped

val worker_state_name : worker_state -> string

type worker_row = {
  pid : int;
  state : worker_state;
  started_ns : int;  (** CLOCK_MONOTONIC at worker start (machine-wide). *)
  heartbeat_ns : int;  (** CLOCK_MONOTONIC at the last heartbeat. *)
  requests : int;  (** request lines read from the supervisor. *)
  responses : int;  (** response lines written back. *)
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  rejected : int;
  queue_depth : int;
  running : int;
  job_wall_ms : int;  (** total scheduler job wall time, milliseconds. *)
  solver : int array;  (** {!Rc_obs.Metrics.export_names} order. *)
}

val empty_worker_row : worker_row

(** {1 Control-region rows} *)

type control_state = C_down | C_up | C_draining

val control_state_name : control_state -> string

type control_row = {
  c_pid : int;  (** 0 while down. *)
  c_state : control_state;
  c_restarts : int;  (** completed respawns of this slot. *)
  c_spawned_ns : int;
  c_inflight : int;  (** jobs currently dispatched to this worker. *)
  c_redispatched : int;  (** jobs moved off this slot after a crash. *)
  c_resumed : int;  (** flows resumed from a checkpoint after a crash. *)
}

val empty_control_row : control_row

type row = {
  worker : worker_row;
  control : control_row;
  w_consistent : bool;  (** [false] = torn read (writer died mid-write). *)
  c_consistent : bool;
}

(** {1 Lifecycle} *)

val create : path:string -> n_workers:int -> unit -> t
(** Create (truncating any existing file) and map a segment writable.
    The mapping is inherited across [fork], so worker processes write
    through the same {!t}. *)

val attach : path:string -> unit -> (t, string) result
(** Map an existing segment, validating magic, layout version and size.
    The mapping is writable at the OS level (a [Unix.map_file]
    limitation) but attachers must only read.  Errors are descriptive
    strings, never exceptions. *)

val n_workers : t -> int
val path : t -> string
val supervisor_pid : t -> int
val created_s : t -> int

val tcp_port : t -> int option
(** The supervisor's TCP front-door port, when one is bound — lets
    tools discover the server from the segment alone. *)

val set_tcp_port : t -> int -> unit

(** {1 Access} *)

val write_worker : t -> slot:int -> worker_row -> unit
(** Seqlock-publish the worker region of [slot].  One writer per region:
    only the owning worker's heartbeat thread may call this. *)

val write_control : t -> slot:int -> control_row -> unit
(** Seqlock-publish the control region of [slot] (supervisor only). *)

val read_row : t -> slot:int -> row
(** A consistent snapshot of both regions (retrying per the seqlock);
    torn regions are flagged via [w_consistent] / [c_consistent]. *)

val read_all : t -> row array

val to_json : t -> Rc_util.Json.t
(** The whole segment as JSON — header fields plus one object per
    worker — the [rotary_cli top --json] document. *)

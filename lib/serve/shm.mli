(** Mmap'd shared-memory segment: per-worker counters {e and} the
    zero-copy job transport of the supervised service tier.

    {1 Layout (version 2)}

    A segment is one 4096-byte header page, one 4096-byte counter slot
    per worker, then the transport regions: per-worker {!Ring} pairs
    (job ring supervisor→worker, response ring worker→supervisor), a
    size-classed payload {!Arena} for request/response bodies, a
    checkpoint {!Arena} holding RCCKPT blobs, and a checkpoint table
    mapping in-flight session ids to their latest blob.  Every cell is
    a native OCaml int (8 bytes); ring and arena geometry is recorded
    in the header so {!attach} reconstructs exact offsets.  The
    field-by-field layout is documented in [docs/serving.md];
    {!layout_version} bumps on any change and {!attach} rejects
    segments of other versions.

    A counter slot holds two independently seqlock'd regions: the
    {e worker region} (words 0–255, written only by that worker's
    heartbeat thread — pid, state, heartbeat timestamp, scheduler and
    transport counters, pinned core, and the fixed
    {!Rc_obs.Metrics.export_names} solver table) and the {e control
    region} (words 256–511, written only by the supervisor).

    {1 Consistency}

    Writers bump the region's sequence word odd, write, bump it even;
    readers retry while the sequence is odd or changed under them.  All
    cell accesses use acquire/release atomics (C stubs), so reads are
    consistent across processes.  A reader that exhausts its retry
    budget (e.g. the writer was SIGKILLed mid-write) gets the torn row
    back flagged inconsistent rather than spinning forever. *)

val layout_version : int

type t

type transport = Ndjson | Shm_rings

val transport_name : transport -> string
(** ["ndjson"] / ["shm"] — the [--transport] flag values. *)

val transport_of_name : string -> transport option

val default_ring_slots : int

(** {1 Worker-region rows} *)

type worker_state = W_starting | W_serving | W_draining | W_stopped

val worker_state_name : worker_state -> string

type worker_row = {
  pid : int;
  state : worker_state;
  started_ns : int;  (** CLOCK_MONOTONIC at worker start (machine-wide). *)
  heartbeat_ns : int;  (** CLOCK_MONOTONIC at the last heartbeat. *)
  requests : int;  (** request lines read from the supervisor. *)
  responses : int;  (** response lines written back. *)
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  rejected : int;
  queue_depth : int;
  running : int;
  job_wall_ms : int;  (** total scheduler job wall time, milliseconds. *)
  core : int;  (** CPU core this worker pinned itself to; -1 = unpinned. *)
  shm_jobs : int;  (** jobs received through the shm job ring. *)
  shm_responses : int;  (** responses sent through the shm response ring. *)
  shm_fallbacks : int;  (** messages that fell back to the socketpair. *)
  ckpt_saves : int;  (** checkpoints published into the shm arena. *)
  ckpt_skips : int;  (** checkpoint saves skipped (arena/table full). *)
  solver : int array;  (** {!Rc_obs.Metrics.export_names} order. *)
}

val empty_worker_row : worker_row

(** {1 Control-region rows} *)

type control_state = C_down | C_up | C_draining

val control_state_name : control_state -> string

type control_row = {
  c_pid : int;  (** 0 while down. *)
  c_state : control_state;
  c_restarts : int;  (** completed respawns of this slot. *)
  c_spawned_ns : int;
  c_inflight : int;  (** jobs currently dispatched to this worker. *)
  c_redispatched : int;  (** jobs moved off this slot after a crash. *)
  c_resumed : int;  (** flows resumed from a checkpoint after a crash. *)
}

val empty_control_row : control_row

type row = {
  worker : worker_row;
  control : control_row;
  w_consistent : bool;  (** [false] = torn read (writer died mid-write). *)
  c_consistent : bool;
}

(** {1 Lifecycle} *)

val create :
  ?ring_slots:int ->
  ?payload_spec:Arena.spec array ->
  ?ckpt_spec:Arena.spec array ->
  ?ckpt_entries:int ->
  path:string ->
  n_workers:int ->
  unit ->
  t
(** Create (truncating any existing file) and map a segment writable,
    initializing rings, arena freelists and the checkpoint table.  The
    geometry options default to the sizes in [docs/serving.md] and are
    recorded in the header. *)

val attach : path:string -> unit -> (t, string) result
(** Map an existing segment, validating magic, layout version and size,
    and reconstructing ring/arena offsets from the header.  Worker
    processes attach to produce/consume their slot's rings; observers
    ([rotary_cli top]) attach and must only read.  Errors are
    descriptive strings, never exceptions. *)

val n_workers : t -> int
val path : t -> string
val supervisor_pid : t -> int
val created_s : t -> int

val tcp_port : t -> int option
(** The supervisor's TCP front-door port, when one is bound — lets
    tools discover the server from the segment alone. *)

val set_tcp_port : t -> int -> unit

val transport : t -> transport
(** The transport the supervisor selected ([--transport]), for [top]
    and attaching workers. *)

val set_transport : t -> transport -> unit

val ring_slots : t -> int

(** {1 Transport regions} *)

val job_ring : t -> int -> Ring.t
(** Worker [i]'s job ring (producer: supervisor; consumer: worker). *)

val resp_ring : t -> int -> Ring.t
(** Worker [i]'s response ring (producer: worker; consumer: supervisor). *)

val payload_arena : t -> Arena.t
(** Request/response bodies referenced from ring descriptors. *)

val ckpt_arena : t -> Arena.t
(** RCCKPT blobs referenced from the checkpoint table. *)

(** {2 Checkpoint table}

    Fixed table of [sid -> latest checkpoint blob] entries.  Workers
    {!ckpt_claim} an entry per checkpointed session and republish it
    every checkpointed iteration ({!ckpt_publish}); after a crash the
    supervisor {!ckpt_find}s the entry and redispatches the flow with a
    ["shm:sid<N>"] resume path, and {!ckpt_release}s it once the
    session's response is delivered.  Blob field reads are seqlock'd;
    a torn entry (writer SIGKILLed mid-publish) reads as absent, which
    degrades to rerunning the flow from scratch — still
    digest-identical. *)

val ckpt_entries : t -> int
val ckpt_used : t -> int

val ckpt_claim : t -> sid:int -> int option
(** Entry index for [sid]: the existing entry, or a freshly CAS-claimed
    free one; [None] = table full (skip checkpointing). *)

val ckpt_publish : t -> entry:int -> iteration:int -> handle:int -> len:int -> int option
(** Seqlock-publish a new blob for the entry; returns the replaced
    blob's arena handle for the caller to {!Arena.decref}. *)

val ckpt_find : t -> sid:int -> (int * int * int * int) option
(** [(entry, iteration, handle, len)] of the latest published blob for
    [sid], or [None] (absent, unpublished, or torn). *)

val ckpt_release : t -> sid:int -> int option
(** Free the entry; returns the blob handle to {!Arena.decref}. *)

(** {1 Access} *)

val write_worker : t -> slot:int -> worker_row -> unit
(** Seqlock-publish the worker region of [slot].  One writer per region:
    only the owning worker's heartbeat thread may call this. *)

val write_control : t -> slot:int -> control_row -> unit
(** Seqlock-publish the control region of [slot] (supervisor only). *)

val read_row : t -> slot:int -> row
(** A consistent snapshot of both regions (retrying per the seqlock);
    torn regions are flagged via [w_consistent] / [c_consistent]. *)

val read_all : t -> row array

val to_json : t -> Rc_util.Json.t
(** The whole segment as JSON — header fields, ring depths, arena
    utilization, plus one object per worker — the [rotary_cli top
    --json] document. *)

(** Zero-copy job transport over the {!Shm} segment: descriptor
    traffic on the per-worker {!Ring} pairs, bulk bodies in the payload
    {!Arena}, checkpoints in the checkpoint arena/table, with the
    NDJSON socketpair demoted to doorbell + control channel + fallback
    data path.  See [docs/serving.md] for the protocol.

    Failure discipline: every send reports [`Full] when an arena or
    ring is exhausted and the caller degrades to plain NDJSON on the
    socketpair — exhaustion costs latency, never correctness. *)

val doorbell_line : string
(** The [{"ctl":"ring"}] line a producer writes on the socketpair when
    {!Ring.publish} reports the consumer armed its waiting flag. *)

val is_doorbell : string -> bool

(** {1 Supervisor side}

    Job-ring producers and response-ring consumers.  Callers must hold
    the supervisor state lock across staging/publishing (SPSC). *)

val stage_job : Shm.t -> slot:int -> sid:int -> string -> bool
(** Place one request body + descriptor without publishing — batch
    several, then {!publish_jobs} once.  [false] = arena or ring full. *)

val publish_jobs : Shm.t -> slot:int -> bool
(** Publish staged jobs; [true] = send {!doorbell_line} to the worker. *)

val send_job : Shm.t -> slot:int -> sid:int -> string -> [ `Sent of bool | `Full ]
(** {!stage_job} + {!publish_jobs} for a single request. *)

val recv_responses : Shm.t -> slot:int -> (int * string) list
(** Drain the worker's response ring: [(sid, body)] pairs, extents
    dropped. *)

val reset_rings : Shm.t -> slot:int -> unit
(** Reclaim a dead worker's rings before the slot respawns: undelivered
    extents are freed and both rings zeroed.  The caller redispatches
    the orphaned sessions. *)

val splice_client_id : string -> client_id:Rc_util.Json.t -> string option
(** Rewrite a worker response's leading [{"id":<sid>] to the client's
    original id by byte splice — the parse-free response hot path.
    [None] = unexpected shape; the caller falls back to a full parse. *)

(** {1 Checkpoint tier ("shm:sid<N>")} *)

val key_of_sid : int -> string
val sid_of_key : string -> int option

val ckpt_save : Shm.t -> sid:int -> iteration:int -> string -> (unit, string) result
(** Publish RCCKPT bytes as [sid]'s latest checkpoint (claiming a table
    entry on first save, replacing and freeing the prior blob after). *)

val ckpt_load : Shm.t -> sid:int -> (string, string) result

val ckpt_latest : Shm.t -> sid:int -> int option
(** Iteration of the latest published checkpoint, if any — the
    supervisor's crash-redispatch probe. *)

val ckpt_free : Shm.t -> sid:int -> unit
(** Release [sid]'s entry and blob (idempotent) — called when the
    session's response is delivered. *)

(** {1 Worker side} *)

type wside
(** Per-process transport state: job-ring consumer, response-ring
    producer (internally serialized — waiter threads may send
    concurrently), and the transport counters published in the shm
    worker row. *)

val worker_side : Shm.t -> slot:int -> wside

type drained = { items : (int * string) list; torn : bool }

val recv_jobs : wside -> drained
(** Drain the job ring: [(sid, body)] pairs, request extents dropped at
    copy time (so a mid-job SIGKILL cannot leak them).  [torn] = a
    half-written descriptor was found; the worker should exit and let
    the supervisor reset the rings. *)

val send_response : wside -> sid:int -> string -> [ `Sent of bool | `Full ]
(** Publish a response body; [`Sent true] = also write
    {!doorbell_line} on the socketpair.  [`Full] = fall back to writing
    the NDJSON line itself. *)

val blob_store : wside -> Checkpoint.blob_store
(** The store to {!Checkpoint.register_blob_store} under prefix
    ["shm:"]: saves count into the worker row's
    [ckpt_saves]/[ckpt_skips], loads serve crash-recovery resumes. *)

val counters : wside -> int * int * int * int * int
(** [(shm_jobs, shm_responses, shm_fallbacks, ckpt_saves, ckpt_skips)]
    for the heartbeat's worker row. *)

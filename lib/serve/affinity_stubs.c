/* CPU affinity for supervised worker processes (affinity.ml).
 *
 * Pinning each worker to its own core keeps the shm ring producer and
 * consumer cache lines resident and stops the scheduler migrating a
 * worker mid-flow.  Linux-only; other platforms report "unsupported"
 * and the caller warns instead of failing (the serve tier runs fine
 * unpinned).
 */

#ifdef __linux__
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif
#include <sched.h>
#include <unistd.h>
#include <errno.h>
#endif

#include <caml/mlvalues.h>

/* 0 = pinned, -1 = syscall failed, -2 = unsupported platform */
CAMLprim value rc_affinity_pin_self(value core)
{
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(Long_val(core), &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0)
    return Val_long(-1);
  return Val_long(0);
#else
  (void) core;
  return Val_long(-2);
#endif
}

CAMLprim value rc_affinity_ncores(value unit)
{
  (void) unit;
#ifdef __linux__
  long n = sysconf(_SC_NPROCESSORS_ONLN);
  return Val_long(n > 0 ? n : 1);
#else
  return Val_long(1);
#endif
}

(** Shared buffer arena: size-classed, refcounted extents in the
    mmap'd segment, handed between the supervisor and worker processes
    by packed handle (in {!Ring} descriptors and checkpoint-table
    entries) instead of by copy.

    Each class is a fixed pool of extents with a lock-free Treiber
    stack of free indices (CAS on a version-tagged head word, so ABA
    is harmless); any process mapping the segment may alloc and free
    concurrently.  {!alloc} picks the smallest class that fits and
    falls up to larger classes when one is exhausted; when all fit
    candidates are empty it returns [None] and the caller degrades to
    the NDJSON socketpath.  Extents carry a refcount ({!alloc} = 1);
    the {!decref} reaching zero returns the extent to its freelist.

    Byte payloads move with bulk-copy stubs and become visible to the
    peer through whatever publishes the handle (the ring's head store,
    or the checkpoint table's seqlock). *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

type spec = { size : int; count : int }
(** One size class: [count] extents of [size] payload bytes each. *)

type stat = { s_size : int; s_count : int; s_in_use : int }

val words_needed : spec array -> int
(** Segment words for an arena with these classes (control + data). *)

val init : ba -> base:int -> spec array -> t
(** Build the freelists at [base] (segment creator only). *)

val attach : ba -> base:int -> spec array -> t
(** Handle onto an already-initialized arena; [spec] must match the
    creator's (the segment header records it). *)

val alloc : t -> int -> int option
(** [alloc t len] claims an extent with capacity >= [len], refcount 1.
    [None] = every fitting class exhausted; callers fall back to the
    socketpair transport. *)

val capacity : t -> int -> int
(** Payload capacity of a handle's class, bytes. *)

val write : t -> int -> string -> unit
(** Copy a payload into the extent (must fit its capacity). *)

val read : t -> int -> len:int -> string

val incref : t -> int -> unit
(** Add an owner before handing the handle to another party. *)

val decref : t -> int -> unit
(** Drop ownership; the drop to zero frees the extent. *)

val stats : t -> stat array
(** Per-class occupancy, as shown by [rotary_cli top]. *)

val in_use : t -> int
(** Total extents currently allocated (0 = leak-free). *)

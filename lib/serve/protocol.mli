(** The serve wire protocol: line-delimited JSON requests/responses and
    the job bodies they dispatch to.

    One request per line; the server replies with one line per request,
    matched by the echoed ["id"] field — responses may arrive out of
    request order.  Envelope:

    {v
    request:   {"id": any, "op": str, "priority"?: int,
                "deadline_ms"?: num, ...op fields}
    response:  {"id": any, "ok": true,  "result": {...}}
             | {"id": any, "ok": false, "error": "reason"}
    v}

    Heavy ops ([flow], [report], [sweep], [variation]) become
    {!Scheduler} jobs; [checkpoint] (header inspection), [status] and
    [shutdown] are answered inline.  Checkpoint payloads never cross
    the socket — requests carry file paths.  See [docs/serving.md] for
    the full field reference. *)

open Rc_core

type flow_request = {
  f_bench : Bench_suite.bench;
  f_mode : Flow.mode;
  f_max_iterations : int option;
  f_incremental : bool option;
  f_checkpoint_every : int option;  (** [None] = no checkpointing. *)
  f_checkpoint_dir : string option;
  f_resume_from : string option;
      (** Checkpoint path; when set the other flow fields are ignored
          (the checkpoint embeds its config). *)
}

type report_request = { r_benches : Bench_suite.bench list; r_timings : bool }

type sweep_request = { s_bench : Bench_suite.bench; s_grids : int list }

type variation_request = { v_bench : Bench_suite.bench; v_mode : Flow.mode }

type session_open_request = {
  so_flow : flow_request;
      (** The flow that seeds the session (fresh run or [resume_from]);
          its checkpointing fields are ignored — the session store
          escrows its own state. *)
  so_session : int option;
      (** Session id.  The supervisor stamps its dispatch sid here so
          ids are cluster-unique; a single-process server assigns its
          own when absent. *)
}

type session_edit_request = {
  se_session : int;
  se_seq : int option;
      (** 1-based applied-batch sequence number, stamped by the
          supervisor: a crash-redispatched edit whose batch already
          landed is deduplicated instead of applied twice. *)
  se_edits : Flow.edit list;
}

type op =
  | Flow_op of flow_request
  | Report_op of report_request
  | Sweep_op of sweep_request
  | Variation_op of variation_request
  | Session_open_op of session_open_request
  | Session_edit_op of session_edit_request
  | Session_query_op of int  (** Session id. *)
  | Session_close_op of int  (** Session id. *)
  | Checkpoint_op of string  (** Inspect this checkpoint file's header. *)
  | Status_op
  | Restart_op
      (** Rolling worker restart — answered by the supervisor tier; a
          single-process server replies with an error. *)
  | Shutdown_op

type request = {
  req_id : Rc_util.Json.t;  (** Echoed back; [Null] when absent. *)
  priority : int;  (** Default 0; higher runs first. *)
  deadline_s : float option;  (** From ["deadline_ms"], converted to s. *)
  op : op;
}

val parse_request :
  string -> (request, Rc_util.Json.t * string option * string) result
(** Parse one request line.  Errors carry the request id (if one could
    be recovered) so the server can still address its error response,
    and the offending op name (when the request named one) so the error
    envelope echoes which op was rejected. *)

val response_ok : id:Rc_util.Json.t -> Rc_util.Json.t -> Rc_util.Json.t

val response_error : id:Rc_util.Json.t -> ?op:string -> string -> Rc_util.Json.t
(** The error envelope; [op] adds an ["op"] field naming the rejected
    operation. *)

val json_of_snapshot : Flow.snapshot -> Rc_util.Json.t

val json_of_outcome :
  ?checkpoints:(int * string) list -> Flow.outcome -> Rc_util.Json.t
(** The [flow] result document: metric snapshots, history, the
    bit-identity digest ({!Checkpoint.digest_of_outcome}) and any
    checkpoints written. *)

val job_of_op : op -> (Cancel.t -> Rc_util.Json.t) option
(** The scheduler job body for an async op ([Some]), or [None] for the
    ops the server answers inline ([checkpoint], [status], [restart],
    [shutdown]) and for the session ops (whose job bodies come from the
    server's {!Session} store).  Flow jobs poll their token at every
    stage boundary via {!Rc_core.Flow.run}'s [guard]. *)

val guard_of : Cancel.t -> Flow_ctx.t -> unit
(** The flow cooperative-cancellation hook: polls the token at every
    stage boundary. *)

val outcome_of_flow_request : flow_request -> Cancel.t -> Flow.outcome
(** Run (or resume) the flow a [session_open] seeds a session with,
    ignoring the request's checkpointing fields.
    @raise Failure when a [resume_from] checkpoint fails to load. *)

val inspect_checkpoint : string -> (Rc_util.Json.t, string) result

val op_name : op -> string
(** Short human-readable label for queue listings, e.g.
    ["flow:s1423/netflow"]. *)

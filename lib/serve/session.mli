(** The online ECO session store: completed flows held resident per
    worker and edited incrementally over the wire.

    A session is a {!Rc_core.Flow_ctx.t} seeded by a finished flow
    ([session_open]) and advanced one edit batch at a time
    ([session_edit] → {!Rc_core.Flow.apply_edits}), keeping the
    incremental machinery warm between batches: the STA session, the
    Eq. 1 candidate-tap cache, and the warm-started assignment solver.

    {1 Escrow and eviction}

    After {e every} applied batch the session's full state is escrowed
    through the {!tier} as RCCKPT bytes ({!Checkpoint.to_blob}) — the
    shm checkpoint arena when the worker runs the shm transport
    (["shm:sid<N>"], falling back to files when the arena is full), a
    session directory otherwise.  Eviction under the LRU [capacity]
    therefore just drops the resident context; the next op on the
    session rehydrates it transparently from escrow
    ({!Checkpoint.load_blob}, STA session re-warmed).  The same path
    serves crash recovery: a sibling worker that receives a
    redispatched edit finds no resident entry, loads the crashed
    worker's escrow from the shared tier, and continues.

    {1 Replay bit-identity}

    The stages {!Rc_core.Flow.apply_edits} re-runs are a function of
    the edit kinds alone and every cache validates against exact
    inputs, so any edit sequence replayed from scratch (fresh
    [session_open], same batches) produces digests
    ({!Checkpoint.digest_of_ctx}) identical to the live session's at
    every step — including across eviction, rehydration, and worker
    crashes.  Tests and the smoke script enforce this.

    {1 Idempotent edits}

    Each edit carries a 1-based sequence number (stamped by the
    supervisor).  A batch at or below the session's applied count is
    acknowledged without re-applying (the crash-redispatch dedupe); a
    batch ahead of the next expected number waits briefly for its
    predecessors (scheduler domains may overtake each other), then
    errors. *)

(** Where escrowed session state lives.  [t_save] persists one
    checkpoint's RCCKPT bytes for a session (replacing any prior one),
    [t_load] returns the latest bytes, [t_free] releases everything
    the session holds (idempotent). *)
type tier = {
  t_save : sid:int -> iteration:int -> string -> (unit, string) result;
  t_load : sid:int -> (string, string) result;
  t_free : sid:int -> unit;
}

val file_tier : dir:string -> tier
(** Escrow under [dir/eco-sid<N>.ckpt] (atomic temp-file + rename
    writes; the directory is created on first save).  The cold tier —
    and the whole tier for the ndjson transport, where the directory is
    shared by every worker so siblings can rehydrate each other's
    sessions. *)

val chain : tier -> tier -> tier
(** [chain hot cold]: save into [hot], falling back to [cold] when the
    hot tier refuses (e.g. a full shm arena); loads probe [hot] then
    [cold]; frees release both. *)

type t

val create : ?capacity:int -> tier:tier -> unit -> t
(** A store keeping at most [capacity] (default 8) sessions resident;
    beyond that the least-recently-used escrowed session is evicted.
    Counters surface as [serve.session.*] metrics (shm export table /
    [rotary_cli top]). *)

val job_of_op : t -> Protocol.op -> (Cancel.t -> Rc_util.Json.t) option
(** The scheduler job body for a session op ([Some] exactly when
    {!Protocol.job_of_op} returns [None] on a [Session_*] op).  Job
    bodies raise [Failure] on session errors (unknown id, sequence
    gap, closed session), which the server turns into error
    envelopes. *)

val counts : t -> int * int
(** [(resident, known)] sessions — for [status]. *)

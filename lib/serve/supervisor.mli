(** Prefork supervisor: the front of the two-tier process model.

    An I/O router that accepts client connections on a TCP front door
    and/or the classic Unix socket, forwards heavy protocol ops over
    per-worker socketpairs to [workers] forked {!Worker} processes, and
    restarts crashed workers — their in-flight flows resume from the
    supervisor-injected checkpoints on a sibling, bit-identical
    ({!Checkpoint}'s digest guarantee) to an uninterrupted run.  Every
    worker exports liveness and counters through the {!Shm} segment at
    [shm_path]; the supervisor writes each slot's control region
    (up/draining/down, restart count, dispatch counters).

    Inline ops: [status] (supervisor + per-worker aggregate), [restart]
    (rolling drain/respawn of one worker at a time, gated by
    [allow_restart]; also SIGHUP), [shutdown] and [checkpoint].

    Spawn discipline: workers are spawned with [Unix.create_process]
    (posix_spawn underneath) — a fresh [rotary_cli serve-worker] image
    that inherits no runtime state, with the socketpair as the worker's
    stdin and all supervisor fds close-on-exec.  See
    [docs/operations.md]. *)

type config = {
  workers : int;  (** Worker processes (slots). *)
  sched_workers : int option;  (** Scheduler domains per worker. *)
  max_pending : int option;  (** Queue bound per worker. *)
  unix_path : string option;  (** Unix-domain listener path. *)
  tcp : (string * int) option;
      (** TCP listener as [(host, port)]; ["" ] or ["*"] binds all
          interfaces, port [0] picks an ephemeral port (readable back
          via {!Shm.tcp_port}). *)
  shm_path : string;  (** Counter segment file, created (truncated). *)
  checkpoint_dir : string;
      (** Base directory for supervisor-injected per-request checkpoint
          directories. *)
  checkpoint_every : int;
      (** Injected [checkpoint_every] for fresh client flows that do
          not manage their own checkpointing. *)
  drain_grace_s : float;
      (** Rolling restart / shutdown: seconds a draining worker gets
          before SIGKILL (crash recovery then resumes its jobs). *)
  allow_restart : bool;  (** Accept the [restart] op and SIGHUP. *)
  handle_signals : bool;
      (** Install SIGTERM/SIGINT (shutdown) and SIGHUP (roll)
          handlers; off for in-process tests. *)
  exe : string option;
      (** Worker executable, exec'd as [EXE serve-worker --slot ...];
          defaults to [Sys.executable_name].  Embedders whose binary is
          not [rotary_cli] (e.g. the test runner) must point this at
          one that is. *)
  transport : Shm.transport;
      (** Job transport.  {!Shm.Shm_rings}: request/response bodies
          ride the per-worker shm rings + payload arena (socketpair
          demoted to doorbell/control/fallback) and injected
          checkpoints live in the shared checkpoint arena
          (["shm:sid<N>"] paths, no filesystem round-trip on crash
          resume).  {!Shm.Ndjson}: classic NDJSON socketpair. *)
  ring_slots : int;
      (** Per-direction ring capacity under {!Shm.Shm_rings}
          (descriptors; {!Shm.default_ring_slots} is a good default). *)
  pin_cores : bool;
      (** Spawn worker [k] with [--pin-core k] (pin to core
          [k mod ncores] via {!Affinity}; warn-noop where
          unsupported). *)
  session_dir : string option;
      (** ECO session escrow directory, shared by every worker so a
          sibling can rehydrate a crashed worker's sessions; defaults
          to [checkpoint_dir/sessions].  Under {!Shm.Shm_rings} the shm
          checkpoint arena is the hot escrow tier and this directory
          the fallback. *)
  session_capacity : int option;
      (** Resident-session LRU capacity per worker ({!Session}). *)
}

val run : config -> unit
(** Serve until a [shutdown] op or signal has drained every worker.
    Removes the socket and shm files on the way out.  Safe to call
    from any process and any thread — workers are spawned with
    [Unix.create_process] (posix_spawn underneath), which neither runs
    inherited runtime state in the child nor trips the OCaml 5 rule
    that [Unix.fork] is unavailable once a domain has been created. *)

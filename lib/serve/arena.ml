(* Shared buffer arena: size-classed extents in the mmap'd segment,
   handed between processes by reference (a packed handle in a ring
   descriptor) instead of by copy, after snabb's group_freelist.

   Each size class is a fixed pool of extents plus a lock-free Treiber
   stack of free extent indices.  The stack head packs a 31-bit ABA
   version with the top index ([(ver << 32) | (idx + 1)], 0 = empty)
   and is updated by CAS; the next-pointer lives in the extent's first
   word while free, which doubles as the refcount while allocated.
   Any process mapping the segment may alloc/free concurrently.

   Refcounted handoff: [alloc] returns the extent with refcount 1;
   [incref]/[decref] move it between owners, and the decref that hits
   zero pushes the extent back on its class freelist.  Payload bytes
   start 16 bytes into the extent and move via the bulk-copy stubs;
   visibility is sequenced by whoever publishes the handle (ring head
   store or checkpoint-table seqlock).

   A crashed process can leak extents it held unpublished (the window
   between alloc and ring publish is a few microseconds); the
   supervisor reclaims every extent referenced from a dead worker's
   rings and checkpoint entries, and `top` exposes per-class in_use
   counters so leaks are visible. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external get_acq : ba -> int -> int = "rc_shm_get" [@@noalloc]
external set_rel : ba -> int -> int -> unit = "rc_shm_set" [@@noalloc]
external cas : ba -> int -> int -> int -> bool = "rc_shm_cas" [@@noalloc]
external faa : ba -> int -> int -> int = "rc_shm_faa" [@@noalloc]

external put_bytes : ba -> int -> Bytes.t -> int -> int -> unit
  = "rc_shm_put_bytes"
[@@noalloc]

external get_bytes : ba -> int -> Bytes.t -> int -> int -> unit
  = "rc_shm_get_bytes"
[@@noalloc]

type spec = { size : int; count : int }

type cls = {
  c_size : int;  (* payload capacity, bytes *)
  c_count : int;
  c_ctl : int;  (* word offset: [freelist head; in_use; 6 pad] *)
  c_data : int;  (* word offset of extent 0 *)
  c_stride_w : int;  (* extent stride in words, 64-byte aligned *)
}

type t = { ba : ba; classes : cls array }

type stat = { s_size : int; s_count : int; s_in_use : int }

let ext_header_bytes = 16 (* word 0: next/refcount; word 1: spare *)

let stride_w size = (ext_header_bytes + size + 63) / 64 * 8

let layout ~base spec =
  let n = Array.length spec in
  let data = ref (base + (8 * n)) in
  Array.mapi
    (fun i s ->
      if s.size < 1 || s.count < 1 then invalid_arg "Arena: bad class spec";
      if s.count >= 1 lsl 24 then invalid_arg "Arena: class count too large";
      let sw = stride_w s.size in
      let c =
        { c_size = s.size; c_count = s.count; c_ctl = base + (8 * i); c_data = !data; c_stride_w = sw }
      in
      data := !data + (s.count * sw);
      c)
    spec

let words_needed spec =
  Array.fold_left (fun acc s -> acc + (s.count * stride_w s.size)) (8 * Array.length spec) spec

let ext_word c idx = c.c_data + (idx * c.c_stride_w)

(* freelist head packing: (version << 32) | (idx + 1); version is 31
   bits and wraps, the CAS compares the whole word *)
let mask32 = 0xFFFFFFFF
let bump_ver h next = ((((h asr 32) + 1) land 0x3FFFFFFF) lsl 32) lor (next land mask32)

let attach ba ~base spec = { ba; classes = layout ~base spec }

let init ba ~base spec =
  let t = attach ba ~base spec in
  Array.iter
    (fun c ->
      (* chain extent i -> i+1, last -> end-of-list (0) *)
      for i = 0 to c.c_count - 1 do
        set_rel ba (ext_word c i) (if i + 1 < c.c_count then i + 2 else 0)
      done;
      set_rel ba c.c_ctl 1 (* version 0, top = extent 0 *);
      set_rel ba (c.c_ctl + 1) 0)
    t.classes;
  t

let handle ~cls ~idx = (cls lsl 24) lor idx
let cls_of_handle h = h lsr 24
let idx_of_handle h = h land 0xFFFFFF

let rec pop_free t c =
  let h = get_acq t.ba c.c_ctl in
  let ip = h land mask32 in
  if ip = 0 then None
  else
    let idx = ip - 1 in
    let next = get_acq t.ba (ext_word c idx) in
    if cas t.ba c.c_ctl h (bump_ver h next) then Some idx
    else begin
      Domain.cpu_relax ();
      pop_free t c
    end

let rec push_free t c idx =
  let h = get_acq t.ba c.c_ctl in
  set_rel t.ba (ext_word c idx) (h land mask32);
  if not (cas t.ba c.c_ctl h (bump_ver h (idx + 1))) then begin
    Domain.cpu_relax ();
    push_free t c idx
  end

let alloc t len =
  let n = Array.length t.classes in
  let rec go ci =
    if ci >= n then None
    else
      let c = t.classes.(ci) in
      if c.c_size < len then go (ci + 1)
      else
        match pop_free t c with
        | None -> go (ci + 1) (* class empty: fall up to a larger one *)
        | Some idx ->
            set_rel t.ba (ext_word c idx) 1 (* refcount *);
            ignore (faa t.ba (c.c_ctl + 1) 1);
            Some (handle ~cls:ci ~idx)
  in
  if len < 0 then invalid_arg "Arena.alloc: negative length" else go 0

let check t h =
  let ci = cls_of_handle h and idx = idx_of_handle h in
  if ci >= Array.length t.classes || idx >= t.classes.(ci).c_count then
    invalid_arg "Arena: bad handle";
  (t.classes.(ci), idx)

let capacity t h =
  let c, _ = check t h in
  c.c_size

let write t h s =
  let c, idx = check t h in
  let len = String.length s in
  if len > c.c_size then invalid_arg "Arena.write: payload exceeds extent";
  put_bytes t.ba ((ext_word c idx * 8) + ext_header_bytes) (Bytes.unsafe_of_string s) 0 len

let read t h ~len =
  let c, idx = check t h in
  if len < 0 || len > c.c_size then invalid_arg "Arena.read: bad length";
  let b = Bytes.create len in
  get_bytes t.ba ((ext_word c idx * 8) + ext_header_bytes) b 0 len;
  Bytes.unsafe_to_string b

let incref t h =
  let c, idx = check t h in
  ignore (faa t.ba (ext_word c idx) 1)

let decref t h =
  let c, idx = check t h in
  let old = faa t.ba (ext_word c idx) (-1) in
  if old = 1 then begin
    ignore (faa t.ba (c.c_ctl + 1) (-1));
    push_free t c idx
  end
  else if old <= 0 then invalid_arg "Arena.decref: refcount underflow"

let stats t =
  Array.map
    (fun c -> { s_size = c.c_size; s_count = c.c_count; s_in_use = get_acq t.ba (c.c_ctl + 1) })
    t.classes

let in_use t = Array.fold_left (fun acc s -> acc + s.s_in_use) 0 (stats t)

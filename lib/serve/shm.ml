(* Shared-memory counter segment: per-worker metrics exported through an
   mmap'd file, readable by outside tools (`rotary_cli top`) without
   touching the server.

   The segment is a plain file mapped MAP_SHARED by every party: the
   supervisor creates it and owns the header plus one *control* region
   per worker (pid, restarts, dispatch state); each worker process owns
   the *worker* region of its slot (liveness heartbeat, scheduler
   counters, the fixed Rc_obs.Metrics export table).  `rotary_cli top`
   maps the file read-only.

   Consistency is seqlock-style, per region: the writer bumps the
   region's sequence word to odd, writes the fields, bumps it back to
   even; readers retry while the sequence is odd or changed across
   their read.  Every cell access goes through C stubs with
   acquire/release ordering (shm_stubs.c), so the protocol is sound
   across processes, not just on TSO hardware.  A reader that exhausts
   its retry budget — e.g. the writer was SIGKILLed mid-write, leaving
   the sequence odd forever — returns the torn row flagged
   [consistent = false] instead of spinning.

   Layout v1 (documented field-by-field in docs/operations.md; all
   cells are native 63-bit OCaml ints, 8 bytes each):

     page 0              header (write-once at create)
     page 1 + i          slot for worker i:
       words 0..255      worker region   (written by worker i)
       words 256..511    control region  (written by the supervisor)

   [layout_version] bumps on any relayout; [attach] rejects other
   versions (and foreign files) with a descriptive error. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external get_acq : ba -> int -> int = "rc_shm_get" [@@noalloc]
external set_rel : ba -> int -> int -> unit = "rc_shm_set" [@@noalloc]

let layout_version = 1
let magic = 0x4745534d48534352 (* the bytes "RCSHMSEG", read as a little-endian int *)
let slot_words = 512
let header_words = 512
let control_base = 256 (* word offset of the control region inside a slot *)
let n_solver = Array.length Rc_obs.Metrics.export_names

(* header word indices *)
let h_magic = 0
let h_version = 1
let h_workers = 2
let h_slot_words = 3
let h_pid = 4
let h_created_s = 5
let h_tcp_port = 6
let h_solver_fields = 7

type t = { ba : ba; n_workers : int; path : string }

(* ---- rows -------------------------------------------------------------- *)

type worker_state = W_starting | W_serving | W_draining | W_stopped

let worker_state_code = function
  | W_starting -> 0
  | W_serving -> 1
  | W_draining -> 2
  | W_stopped -> 3

let worker_state_of_code = function
  | 0 -> W_starting
  | 1 -> W_serving
  | 2 -> W_draining
  | _ -> W_stopped

let worker_state_name = function
  | W_starting -> "starting"
  | W_serving -> "serving"
  | W_draining -> "draining"
  | W_stopped -> "stopped"

type control_state = C_down | C_up | C_draining

let control_state_code = function C_down -> 0 | C_up -> 1 | C_draining -> 2
let control_state_of_code = function 1 -> C_up | 2 -> C_draining | _ -> C_down

let control_state_name = function
  | C_down -> "down"
  | C_up -> "up"
  | C_draining -> "draining"

type worker_row = {
  pid : int;
  state : worker_state;
  started_ns : int;
  heartbeat_ns : int;
  requests : int;
  responses : int;
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  rejected : int;
  queue_depth : int;
  running : int;
  job_wall_ms : int;
  solver : int array;  (* Rc_obs.Metrics.export_names order *)
}

let empty_worker_row =
  {
    pid = 0;
    state = W_starting;
    started_ns = 0;
    heartbeat_ns = 0;
    requests = 0;
    responses = 0;
    submitted = 0;
    completed = 0;
    failed = 0;
    cancelled = 0;
    rejected = 0;
    queue_depth = 0;
    running = 0;
    job_wall_ms = 0;
    solver = Array.make n_solver 0;
  }

type control_row = {
  c_pid : int;
  c_state : control_state;
  c_restarts : int;
  c_spawned_ns : int;
  c_inflight : int;
  c_redispatched : int;
  c_resumed : int;
}

let empty_control_row =
  {
    c_pid = 0;
    c_state = C_down;
    c_restarts = 0;
    c_spawned_ns = 0;
    c_inflight = 0;
    c_redispatched = 0;
    c_resumed = 0;
  }

type row = {
  worker : worker_row;
  control : control_row;
  w_consistent : bool;
  c_consistent : bool;
}

(* ---- mapping ----------------------------------------------------------- *)

let total_words n_workers = header_words + (n_workers * slot_words)

let map_fd fd ~words =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| words |])

let create ~path ~n_workers () =
  if n_workers < 1 then invalid_arg "Shm.create: n_workers must be >= 1";
  let words = total_words n_workers in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd (words * 8);
      let ba = map_fd fd ~words in
      set_rel ba h_magic magic;
      set_rel ba h_version layout_version;
      set_rel ba h_workers n_workers;
      set_rel ba h_slot_words slot_words;
      set_rel ba h_pid (Unix.getpid ());
      set_rel ba h_created_s (int_of_float (Unix.time ()));
      set_rel ba h_tcp_port 0;
      set_rel ba h_solver_fields n_solver;
      { ba; n_workers; path })

let attach ~path () =
  (* O_RDWR even for readers: Unix.map_file always maps the pages
     PROT_READ|PROT_WRITE, so a read-only fd is rejected with EACCES *)
  match Unix.openfile path [ Unix.O_RDWR ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let bytes = (Unix.fstat fd).Unix.st_size in
          if bytes < header_words * 8 then
            Error (Printf.sprintf "%s: too small for a segment header (%d bytes)" path bytes)
          else
            let header = map_fd fd ~words:header_words in
            if get_acq header h_magic <> magic then
              Error (Printf.sprintf "%s: not a rotary shm segment (bad magic)" path)
            else if get_acq header h_version <> layout_version then
              Error
                (Printf.sprintf "%s: layout version %d, this build reads %d" path
                   (get_acq header h_version) layout_version)
            else
              let n_workers = get_acq header h_workers in
              if n_workers < 1 || n_workers > 4096 then
                Error (Printf.sprintf "%s: implausible worker count %d" path n_workers)
              else if bytes < total_words n_workers * 8 then
                Error
                  (Printf.sprintf "%s: truncated (%d bytes < %d expected)" path bytes
                     (total_words n_workers * 8))
              else Ok { ba = map_fd fd ~words:(total_words n_workers); n_workers; path })

let n_workers t = t.n_workers
let path t = t.path
let supervisor_pid t = get_acq t.ba h_pid
let created_s t = get_acq t.ba h_created_s

let tcp_port t = match get_acq t.ba h_tcp_port with 0 -> None | p -> Some p
let set_tcp_port t port = set_rel t.ba h_tcp_port port

let slot_base t i =
  if i < 0 || i >= t.n_workers then invalid_arg "Shm: slot out of range";
  header_words + (i * slot_words)

(* ---- seqlock write ----------------------------------------------------- *)

(* One writer per region by construction (the worker's heartbeat thread;
   the supervisor under its state lock), so the sequence word needs no
   CAS — just the odd/even protocol. *)
let write_region ba ~base fill =
  set_rel ba base (get_acq ba base + 1);
  fill ();
  set_rel ba base (get_acq ba base + 1)

let write_worker t ~slot (r : worker_row) =
  let base = slot_base t slot in
  let ba = t.ba in
  write_region ba ~base (fun () ->
      set_rel ba (base + 1) r.pid;
      set_rel ba (base + 2) (worker_state_code r.state);
      set_rel ba (base + 3) r.started_ns;
      set_rel ba (base + 4) r.heartbeat_ns;
      set_rel ba (base + 5) r.requests;
      set_rel ba (base + 6) r.responses;
      set_rel ba (base + 7) r.submitted;
      set_rel ba (base + 8) r.completed;
      set_rel ba (base + 9) r.failed;
      set_rel ba (base + 10) r.cancelled;
      set_rel ba (base + 11) r.rejected;
      set_rel ba (base + 12) r.queue_depth;
      set_rel ba (base + 13) r.running;
      set_rel ba (base + 14) r.job_wall_ms;
      set_rel ba (base + 15) (Array.length r.solver);
      Array.iteri (fun k v -> set_rel ba (base + 16 + k) v) r.solver)

let write_control t ~slot (r : control_row) =
  let base = slot_base t slot + control_base in
  let ba = t.ba in
  write_region ba ~base (fun () ->
      set_rel ba (base + 1) r.c_pid;
      set_rel ba (base + 2) (control_state_code r.c_state);
      set_rel ba (base + 3) r.c_restarts;
      set_rel ba (base + 4) r.c_spawned_ns;
      set_rel ba (base + 5) r.c_inflight;
      set_rel ba (base + 6) r.c_redispatched;
      set_rel ba (base + 7) r.c_resumed)

(* ---- seqlock read ------------------------------------------------------ *)

let max_read_retries = 1000

(* read [len] words after the sequence word at [base] into a consistent
   snapshot; [false] marks a torn read (retry budget exhausted, e.g. a
   writer killed mid-write left the sequence odd) *)
let read_region ba ~base ~len =
  let buf = Array.make len 0 in
  let fill () =
    for k = 0 to len - 1 do
      buf.(k) <- get_acq ba (base + 1 + k)
    done
  in
  let rec go tries =
    let s1 = get_acq ba base in
    if s1 land 1 = 0 then begin
      fill ();
      if get_acq ba base = s1 then (buf, true)
      else if tries >= max_read_retries then (buf, false)
      else begin
        Domain.cpu_relax ();
        go (tries + 1)
      end
    end
    else if tries >= max_read_retries then begin
      fill ();
      (buf, false)
    end
    else begin
      Domain.cpu_relax ();
      go (tries + 1)
    end
  in
  go 0

let worker_words = 15 + n_solver
let control_words = 7

let read_row t ~slot =
  let base = slot_base t slot in
  let w, w_consistent = read_region t.ba ~base ~len:worker_words in
  let c, c_consistent = read_region t.ba ~base:(base + control_base) ~len:control_words in
  let n_solver_in = min n_solver (max 0 w.(14)) in
  {
    worker =
      {
        pid = w.(0);
        state = worker_state_of_code w.(1);
        started_ns = w.(2);
        heartbeat_ns = w.(3);
        requests = w.(4);
        responses = w.(5);
        submitted = w.(6);
        completed = w.(7);
        failed = w.(8);
        cancelled = w.(9);
        rejected = w.(10);
        queue_depth = w.(11);
        running = w.(12);
        job_wall_ms = w.(13);
        solver = Array.init n_solver (fun k -> if k < n_solver_in then w.(15 + k) else 0);
      };
    control =
      {
        c_pid = c.(0);
        c_state = control_state_of_code c.(1);
        c_restarts = c.(2);
        c_spawned_ns = c.(3);
        c_inflight = c.(4);
        c_redispatched = c.(5);
        c_resumed = c.(6);
      };
    w_consistent;
    c_consistent;
  }

let read_all t = Array.init t.n_workers (fun i -> read_row t ~slot:i)

(* ---- rendering --------------------------------------------------------- *)

let json_of_row i (r : row) =
  let module J = Rc_util.Json in
  J.Obj
    [
      ("worker", J.Int i);
      ("consistent", J.Bool (r.w_consistent && r.c_consistent));
      ("pid", J.Int r.worker.pid);
      ("state", J.String (worker_state_name r.worker.state));
      ("heartbeat_ns", J.Int r.worker.heartbeat_ns);
      ("requests", J.Int r.worker.requests);
      ("responses", J.Int r.worker.responses);
      ( "jobs",
        J.Obj
          [
            ("submitted", J.Int r.worker.submitted);
            ("completed", J.Int r.worker.completed);
            ("failed", J.Int r.worker.failed);
            ("cancelled", J.Int r.worker.cancelled);
            ("rejected", J.Int r.worker.rejected);
            ("pending", J.Int r.worker.queue_depth);
            ("running", J.Int r.worker.running);
            ("wall_ms", J.Int r.worker.job_wall_ms);
          ] );
      ( "solver",
        J.Obj
          (Array.to_list
             (Array.mapi
                (fun k name -> (name, J.Int r.worker.solver.(k)))
                Rc_obs.Metrics.export_names)) );
      ( "control",
        J.Obj
          [
            ("pid", J.Int r.control.c_pid);
            ("state", J.String (control_state_name r.control.c_state));
            ("restarts", J.Int r.control.c_restarts);
            ("inflight", J.Int r.control.c_inflight);
            ("redispatched", J.Int r.control.c_redispatched);
            ("resumed", J.Int r.control.c_resumed);
          ] );
    ]

let to_json t =
  let module J = Rc_util.Json in
  J.Obj
    [
      ("path", J.String t.path);
      ("layout_version", J.Int layout_version);
      ("supervisor_pid", J.Int (supervisor_pid t));
      ("created_unix_s", J.Int (created_s t));
      ("tcp_port", match tcp_port t with None -> J.Null | Some p -> J.Int p);
      ("workers", J.List (Array.to_list (Array.mapi json_of_row (read_all t))));
    ]

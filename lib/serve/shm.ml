(* Shared-memory segment: per-worker metrics *and* the zero-copy job
   transport between the supervisor and its worker processes.

   The segment is a plain file mapped MAP_SHARED by every party: the
   supervisor creates it and owns the header plus one *control* region
   per worker (pid, restarts, dispatch state); each worker process owns
   the *worker* region of its slot (liveness heartbeat, scheduler
   counters, the fixed Rc_obs.Metrics export table).  `rotary_cli top`
   maps the file read-only.

   Layout v2 appends the transport regions after the v1 counter slots:
   per-worker SPSC descriptor ring pairs (job ring supervisor->worker,
   response ring worker->supervisor; see ring.ml), a size-classed
   payload arena for request/response bodies (arena.ml), a checkpoint
   arena holding RCCKPT blobs so crash recovery never round-trips the
   filesystem, and a fixed table mapping in-flight session ids to their
   latest checkpoint blob.  Ring and arena geometry is recorded in the
   header, so [attach] reconstructs the exact offsets.

   Counter-region consistency is seqlock-style, per region: the writer
   bumps the region's sequence word to odd, writes the fields, bumps it
   back to even; readers retry while the sequence is odd or changed
   across their read.  Every cell access goes through C stubs with
   acquire/release ordering (shm_stubs.c), so the protocol is sound
   across processes, not just on TSO hardware.  A reader that exhausts
   its retry budget — e.g. the writer was SIGKILLed mid-write, leaving
   the sequence odd forever — returns the torn row flagged
   [consistent = false] instead of spinning.

   Layout v2 (documented field-by-field in docs/serving.md; all cells
   are native 63-bit OCaml ints, 8 bytes each):

     page 0              header (write-once at create; tcp_port and
                         transport are the mutable exceptions)
     page 1 + i          slot for worker i:
       words 0..255      worker region   (written by worker i)
       words 256..511    control region  (written by the supervisor)
     then                per-worker ring pairs (job, response)
     then                payload arena   (control words + extents)
     then                checkpoint arena
     then                checkpoint table (n_ckpt_entries x 8 words)

   [layout_version] bumps on any relayout; [attach] rejects other
   versions (and foreign files) with a descriptive error. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external get_acq : ba -> int -> int = "rc_shm_get" [@@noalloc]
external set_rel : ba -> int -> int -> unit = "rc_shm_set" [@@noalloc]
external cas : ba -> int -> int -> int -> bool = "rc_shm_cas" [@@noalloc]

let layout_version = 2
let magic = 0x4745534d48534352 (* the bytes "RCSHMSEG", read as a little-endian int *)
let slot_words = 512
let header_words = 512
let control_base = 256 (* word offset of the control region inside a slot *)
let n_solver = Array.length Rc_obs.Metrics.export_names

(* header word indices *)
let h_magic = 0
let h_version = 1
let h_workers = 2
let h_slot_words = 3
let h_pid = 4
let h_created_s = 5
let h_tcp_port = 6
let h_solver_fields = 7
let h_ring_slots = 8
let h_transport = 9
let h_pay_classes = 10
let h_ckpt_classes = 11
let h_ckpt_entries = 12
let h_pay_table = 16 (* (size, count) pairs, up to [max_classes] *)
let h_ckpt_table = 32
let max_classes = 8

(* transport defaults; the create-time spec is recorded in the header *)
let default_ring_slots = 512

let default_payload_spec =
  Arena.[| { size = 1 lsl 10; count = 1024 }; { size = 1 lsl 13; count = 256 };
           { size = 1 lsl 16; count = 128 }; { size = 1 lsl 19; count = 16 } |]

let default_ckpt_spec =
  Arena.[| { size = 1 lsl 16; count = 64 }; { size = 1 lsl 20; count = 16 } |]

let default_ckpt_entries = 256

type transport = Ndjson | Shm_rings

let transport_code = function Ndjson -> 0 | Shm_rings -> 1
let transport_of_code = function 1 -> Shm_rings | _ -> Ndjson
let transport_name = function Ndjson -> "ndjson" | Shm_rings -> "shm"

let transport_of_name = function
  | "ndjson" -> Some Ndjson
  | "shm" -> Some Shm_rings
  | _ -> None

(* ---- geometry ----------------------------------------------------------- *)

type geometry = {
  g_workers : int;
  g_ring_slots : int;
  g_pay_spec : Arena.spec array;
  g_ckpt_spec : Arena.spec array;
  g_ckpt_entries : int;
  g_rings_base : int;
  g_ring_words : int; (* one ring *)
  g_pay_base : int;
  g_ck_base : int;
  g_table_base : int;
  g_total_words : int;
}

let ckpt_entry_words = 8

let geometry ~n_workers ~ring_slots ~pay_spec ~ckpt_spec ~ckpt_entries =
  let rings_base = header_words + (n_workers * slot_words) in
  let ring_words = Ring.words ~slots:ring_slots in
  let pay_base = rings_base + (n_workers * 2 * ring_words) in
  let ck_base = pay_base + Arena.words_needed pay_spec in
  let table_base = ck_base + Arena.words_needed ckpt_spec in
  {
    g_workers = n_workers;
    g_ring_slots = ring_slots;
    g_pay_spec = pay_spec;
    g_ckpt_spec = ckpt_spec;
    g_ckpt_entries = ckpt_entries;
    g_rings_base = rings_base;
    g_ring_words = ring_words;
    g_pay_base = pay_base;
    g_ck_base = ck_base;
    g_table_base = table_base;
    g_total_words = table_base + (ckpt_entries * ckpt_entry_words);
  }

type t = {
  ba : ba;
  n_workers : int;
  path : string;
  geo : geometry;
  rings : (Ring.t * Ring.t) array; (* (job, response) per worker *)
  pay : Arena.t;
  ck : Arena.t;
}

(* ---- rows -------------------------------------------------------------- *)

type worker_state = W_starting | W_serving | W_draining | W_stopped

let worker_state_code = function
  | W_starting -> 0
  | W_serving -> 1
  | W_draining -> 2
  | W_stopped -> 3

let worker_state_of_code = function
  | 0 -> W_starting
  | 1 -> W_serving
  | 2 -> W_draining
  | _ -> W_stopped

let worker_state_name = function
  | W_starting -> "starting"
  | W_serving -> "serving"
  | W_draining -> "draining"
  | W_stopped -> "stopped"

type control_state = C_down | C_up | C_draining

let control_state_code = function C_down -> 0 | C_up -> 1 | C_draining -> 2
let control_state_of_code = function 1 -> C_up | 2 -> C_draining | _ -> C_down

let control_state_name = function
  | C_down -> "down"
  | C_up -> "up"
  | C_draining -> "draining"

type worker_row = {
  pid : int;
  state : worker_state;
  started_ns : int;
  heartbeat_ns : int;
  requests : int;
  responses : int;
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  rejected : int;
  queue_depth : int;
  running : int;
  job_wall_ms : int;
  core : int;  (* pinned CPU core, -1 = unpinned *)
  shm_jobs : int;
  shm_responses : int;
  shm_fallbacks : int;
  ckpt_saves : int;
  ckpt_skips : int;
  solver : int array;  (* Rc_obs.Metrics.export_names order *)
}

let empty_worker_row =
  {
    pid = 0;
    state = W_starting;
    started_ns = 0;
    heartbeat_ns = 0;
    requests = 0;
    responses = 0;
    submitted = 0;
    completed = 0;
    failed = 0;
    cancelled = 0;
    rejected = 0;
    queue_depth = 0;
    running = 0;
    job_wall_ms = 0;
    core = -1;
    shm_jobs = 0;
    shm_responses = 0;
    shm_fallbacks = 0;
    ckpt_saves = 0;
    ckpt_skips = 0;
    solver = Array.make n_solver 0;
  }

type control_row = {
  c_pid : int;
  c_state : control_state;
  c_restarts : int;
  c_spawned_ns : int;
  c_inflight : int;
  c_redispatched : int;
  c_resumed : int;
}

let empty_control_row =
  {
    c_pid = 0;
    c_state = C_down;
    c_restarts = 0;
    c_spawned_ns = 0;
    c_inflight = 0;
    c_redispatched = 0;
    c_resumed = 0;
  }

type row = {
  worker : worker_row;
  control : control_row;
  w_consistent : bool;
  c_consistent : bool;
}

(* ---- mapping ----------------------------------------------------------- *)

let map_fd fd ~words =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| words |])

let write_spec_table ba base spec =
  Array.iteri
    (fun i (s : Arena.spec) ->
      set_rel ba (base + (2 * i)) s.size;
      set_rel ba (base + (2 * i) + 1) s.count)
    spec

let read_spec_table ba base n =
  Array.init n (fun i ->
      Arena.{ size = get_acq ba (base + (2 * i)); count = get_acq ba (base + (2 * i) + 1) })

let build ~init ba geo path =
  let ring_at k = geo.g_rings_base + (k * geo.g_ring_words) in
  let mk_ring base =
    if init then Ring.init ba ~base ~slots:geo.g_ring_slots
    else Ring.attach ba ~base ~slots:geo.g_ring_slots
  in
  let rings =
    Array.init geo.g_workers (fun i -> (mk_ring (ring_at (2 * i)), mk_ring (ring_at ((2 * i) + 1))))
  in
  let pay =
    if init then Arena.init ba ~base:geo.g_pay_base geo.g_pay_spec
    else Arena.attach ba ~base:geo.g_pay_base geo.g_pay_spec
  in
  let ck =
    if init then Arena.init ba ~base:geo.g_ck_base geo.g_ckpt_spec
    else Arena.attach ba ~base:geo.g_ck_base geo.g_ckpt_spec
  in
  { ba; n_workers = geo.g_workers; path; geo; rings; pay; ck }

let create ?(ring_slots = default_ring_slots) ?(payload_spec = default_payload_spec)
    ?(ckpt_spec = default_ckpt_spec) ?(ckpt_entries = default_ckpt_entries) ~path ~n_workers () =
  if n_workers < 1 then invalid_arg "Shm.create: n_workers must be >= 1";
  if Array.length payload_spec > max_classes || Array.length ckpt_spec > max_classes then
    invalid_arg "Shm.create: too many arena classes";
  if ckpt_entries < 1 then invalid_arg "Shm.create: ckpt_entries must be >= 1";
  let geo =
    geometry ~n_workers ~ring_slots ~pay_spec:payload_spec ~ckpt_spec ~ckpt_entries
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd (geo.g_total_words * 8);
      let ba = map_fd fd ~words:geo.g_total_words in
      set_rel ba h_magic magic;
      set_rel ba h_version layout_version;
      set_rel ba h_workers n_workers;
      set_rel ba h_slot_words slot_words;
      set_rel ba h_pid (Unix.getpid ());
      set_rel ba h_created_s (int_of_float (Unix.time ()));
      set_rel ba h_tcp_port 0;
      set_rel ba h_solver_fields n_solver;
      set_rel ba h_ring_slots ring_slots;
      set_rel ba h_transport (transport_code Ndjson);
      set_rel ba h_pay_classes (Array.length payload_spec);
      set_rel ba h_ckpt_classes (Array.length ckpt_spec);
      set_rel ba h_ckpt_entries ckpt_entries;
      write_spec_table ba h_pay_table payload_spec;
      write_spec_table ba h_ckpt_table ckpt_spec;
      build ~init:true ba geo path)

let attach ~path () =
  (* O_RDWR even for readers: Unix.map_file always maps the pages
     PROT_READ|PROT_WRITE, so a read-only fd is rejected with EACCES *)
  match Unix.openfile path [ Unix.O_RDWR ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let bytes = (Unix.fstat fd).Unix.st_size in
          if bytes < header_words * 8 then
            Error (Printf.sprintf "%s: too small for a segment header (%d bytes)" path bytes)
          else
            let header = map_fd fd ~words:header_words in
            if get_acq header h_magic <> magic then
              Error (Printf.sprintf "%s: not a rotary shm segment (bad magic)" path)
            else if get_acq header h_version <> layout_version then
              Error
                (Printf.sprintf "%s: layout version %d, this build reads %d" path
                   (get_acq header h_version) layout_version)
            else
              let n_workers = get_acq header h_workers in
              let n_pay = get_acq header h_pay_classes in
              let n_ck = get_acq header h_ckpt_classes in
              if n_workers < 1 || n_workers > 4096 then
                Error (Printf.sprintf "%s: implausible worker count %d" path n_workers)
              else if n_pay < 1 || n_pay > max_classes || n_ck < 1 || n_ck > max_classes
              then Error (Printf.sprintf "%s: implausible arena class counts" path)
              else
                let geo =
                  geometry ~n_workers
                    ~ring_slots:(get_acq header h_ring_slots)
                    ~pay_spec:(read_spec_table header h_pay_table n_pay)
                    ~ckpt_spec:(read_spec_table header h_ckpt_table n_ck)
                    ~ckpt_entries:(get_acq header h_ckpt_entries)
                in
                if bytes < geo.g_total_words * 8 then
                  Error
                    (Printf.sprintf "%s: truncated (%d bytes < %d expected)" path bytes
                       (geo.g_total_words * 8))
                else Ok (build ~init:false (map_fd fd ~words:geo.g_total_words) geo path))

let n_workers t = t.n_workers
let path t = t.path
let supervisor_pid t = get_acq t.ba h_pid
let created_s t = get_acq t.ba h_created_s

let tcp_port t = match get_acq t.ba h_tcp_port with 0 -> None | p -> Some p
let set_tcp_port t port = set_rel t.ba h_tcp_port port

let transport t = transport_of_code (get_acq t.ba h_transport)
let set_transport t tr = set_rel t.ba h_transport (transport_code tr)
let ring_slots t = t.geo.g_ring_slots

let slot_base t i =
  if i < 0 || i >= t.n_workers then invalid_arg "Shm: slot out of range";
  header_words + (i * slot_words)

(* ---- transport accessors ----------------------------------------------- *)

let job_ring t i =
  if i < 0 || i >= t.n_workers then invalid_arg "Shm: slot out of range";
  fst t.rings.(i)

let resp_ring t i =
  if i < 0 || i >= t.n_workers then invalid_arg "Shm: slot out of range";
  snd t.rings.(i)

let payload_arena t = t.pay
let ckpt_arena t = t.ck

(* ---- checkpoint table ---------------------------------------------------

   [n_ckpt_entries] entries of 8 words: [seq; sid; iteration; handle;
   len; 3 pad].  An entry is claimed by CASing sid from 0 (workers
   racing on behalf of different sessions); the blob fields are
   seqlock'd under [seq] because the claiming worker republishes on
   every checkpointed iteration while the supervisor may be reading for
   a crash redispatch.  [len] = 0 means "claimed, no blob yet".  The
   supervisor releases the entry (and its extent) when the session's
   response is delivered. *)

let ckpt_entries t = t.geo.g_ckpt_entries
let entry_base t k = t.geo.g_table_base + (k * ckpt_entry_words)

let ckpt_used t =
  let used = ref 0 in
  for k = 0 to ckpt_entries t - 1 do
    if get_acq t.ba (entry_base t k + 1) <> 0 then incr used
  done;
  !used

let ckpt_claim t ~sid =
  if sid = 0 then invalid_arg "Shm.ckpt_claim: sid 0 is the free marker";
  let n = ckpt_entries t in
  let rec find k = (* already claimed for this sid (resume on a sibling)? *)
    if k >= n then None
    else if get_acq t.ba (entry_base t k + 1) = sid then Some k
    else find (k + 1)
  in
  match find 0 with
  | Some k -> Some k
  | None ->
      let rec grab k =
        if k >= n then None
        else
          let b = entry_base t k in
          if get_acq t.ba (b + 1) = 0 && cas t.ba (b + 1) 0 sid then Some k else grab (k + 1)
      in
      grab 0

(* returns the replaced blob's handle, for the caller to decref *)
let ckpt_publish t ~entry ~iteration ~handle ~len =
  let b = entry_base t entry in
  let ba = t.ba in
  let old_handle = get_acq ba (b + 3) and old_len = get_acq ba (b + 4) in
  set_rel ba b (get_acq ba b + 1);
  set_rel ba (b + 2) iteration;
  set_rel ba (b + 3) handle;
  set_rel ba (b + 4) len;
  set_rel ba b (get_acq ba b + 1);
  if old_len > 0 then Some old_handle else None

let max_read_retries = 1000

let ckpt_find t ~sid =
  let n = ckpt_entries t in
  let rec scan k =
    if k >= n then None
    else
      let b = entry_base t k in
      if get_acq t.ba (b + 1) <> sid then scan (k + 1)
      else
        let rec snap tries =
          let s1 = get_acq t.ba b in
          let iteration = get_acq t.ba (b + 2) in
          let handle = get_acq t.ba (b + 3) in
          let len = get_acq t.ba (b + 4) in
          if s1 land 1 = 0 && get_acq t.ba b = s1 then Some (k, iteration, handle, len)
          else if tries >= max_read_retries then None (* torn: writer died mid-publish *)
          else begin
            Domain.cpu_relax ();
            snap (tries + 1)
          end
        in
        (match snap 0 with
        | Some (_, _, _, len) when len = 0 -> None (* claimed, never published *)
        | r -> r)
  in
  scan 0

(* returns the blob handle to decref, if one was published *)
let ckpt_release t ~sid =
  let n = ckpt_entries t in
  let rec scan k =
    if k >= n then None
    else
      let b = entry_base t k in
      if get_acq t.ba (b + 1) <> sid then scan (k + 1)
      else begin
        let handle = get_acq t.ba (b + 3) and len = get_acq t.ba (b + 4) in
        set_rel t.ba b (get_acq t.ba b + 1);
        set_rel t.ba (b + 2) 0;
        set_rel t.ba (b + 3) 0;
        set_rel t.ba (b + 4) 0;
        set_rel t.ba (b + 1) 0;
        set_rel t.ba b (get_acq t.ba b + 1);
        if len > 0 then Some handle else None
      end
  in
  scan 0

(* ---- seqlock write ----------------------------------------------------- *)

(* One writer per region by construction (the worker's heartbeat thread;
   the supervisor under its state lock), so the sequence word needs no
   CAS — just the odd/even protocol. *)
let write_region ba ~base fill =
  set_rel ba base (get_acq ba base + 1);
  fill ();
  set_rel ba base (get_acq ba base + 1)

let write_worker t ~slot (r : worker_row) =
  let base = slot_base t slot in
  let ba = t.ba in
  write_region ba ~base (fun () ->
      set_rel ba (base + 1) r.pid;
      set_rel ba (base + 2) (worker_state_code r.state);
      set_rel ba (base + 3) r.started_ns;
      set_rel ba (base + 4) r.heartbeat_ns;
      set_rel ba (base + 5) r.requests;
      set_rel ba (base + 6) r.responses;
      set_rel ba (base + 7) r.submitted;
      set_rel ba (base + 8) r.completed;
      set_rel ba (base + 9) r.failed;
      set_rel ba (base + 10) r.cancelled;
      set_rel ba (base + 11) r.rejected;
      set_rel ba (base + 12) r.queue_depth;
      set_rel ba (base + 13) r.running;
      set_rel ba (base + 14) r.job_wall_ms;
      set_rel ba (base + 15) r.core;
      set_rel ba (base + 16) r.shm_jobs;
      set_rel ba (base + 17) r.shm_responses;
      set_rel ba (base + 18) r.shm_fallbacks;
      set_rel ba (base + 19) r.ckpt_saves;
      set_rel ba (base + 20) r.ckpt_skips;
      set_rel ba (base + 21) (Array.length r.solver);
      Array.iteri (fun k v -> set_rel ba (base + 22 + k) v) r.solver)

let write_control t ~slot (r : control_row) =
  let base = slot_base t slot + control_base in
  let ba = t.ba in
  write_region ba ~base (fun () ->
      set_rel ba (base + 1) r.c_pid;
      set_rel ba (base + 2) (control_state_code r.c_state);
      set_rel ba (base + 3) r.c_restarts;
      set_rel ba (base + 4) r.c_spawned_ns;
      set_rel ba (base + 5) r.c_inflight;
      set_rel ba (base + 6) r.c_redispatched;
      set_rel ba (base + 7) r.c_resumed)

(* ---- seqlock read ------------------------------------------------------ *)

(* read [len] words after the sequence word at [base] into a consistent
   snapshot; [false] marks a torn read (retry budget exhausted, e.g. a
   writer killed mid-write left the sequence odd) *)
let read_region ba ~base ~len =
  let buf = Array.make len 0 in
  let fill () =
    for k = 0 to len - 1 do
      buf.(k) <- get_acq ba (base + 1 + k)
    done
  in
  let rec go tries =
    let s1 = get_acq ba base in
    if s1 land 1 = 0 then begin
      fill ();
      if get_acq ba base = s1 then (buf, true)
      else if tries >= max_read_retries then (buf, false)
      else begin
        Domain.cpu_relax ();
        go (tries + 1)
      end
    end
    else if tries >= max_read_retries then begin
      fill ();
      (buf, false)
    end
    else begin
      Domain.cpu_relax ();
      go (tries + 1)
    end
  in
  go 0

let worker_words = 21 + n_solver
let control_words = 7

let read_row t ~slot =
  let base = slot_base t slot in
  let w, w_consistent = read_region t.ba ~base ~len:worker_words in
  let c, c_consistent = read_region t.ba ~base:(base + control_base) ~len:control_words in
  let n_solver_in = min n_solver (max 0 w.(20)) in
  {
    worker =
      {
        pid = w.(0);
        state = worker_state_of_code w.(1);
        started_ns = w.(2);
        heartbeat_ns = w.(3);
        requests = w.(4);
        responses = w.(5);
        submitted = w.(6);
        completed = w.(7);
        failed = w.(8);
        cancelled = w.(9);
        rejected = w.(10);
        queue_depth = w.(11);
        running = w.(12);
        job_wall_ms = w.(13);
        core = w.(14);
        shm_jobs = w.(15);
        shm_responses = w.(16);
        shm_fallbacks = w.(17);
        ckpt_saves = w.(18);
        ckpt_skips = w.(19);
        solver = Array.init n_solver (fun k -> if k < n_solver_in then w.(21 + k) else 0);
      };
    control =
      {
        c_pid = c.(0);
        c_state = control_state_of_code c.(1);
        c_restarts = c.(2);
        c_spawned_ns = c.(3);
        c_inflight = c.(4);
        c_redispatched = c.(5);
        c_resumed = c.(6);
      };
    w_consistent;
    c_consistent;
  }

let read_all t = Array.init t.n_workers (fun i -> read_row t ~slot:i)

(* ---- rendering --------------------------------------------------------- *)

let json_of_row t i (r : row) =
  let module J = Rc_util.Json in
  J.Obj
    [
      ("worker", J.Int i);
      ("consistent", J.Bool (r.w_consistent && r.c_consistent));
      ("pid", J.Int r.worker.pid);
      ("state", J.String (worker_state_name r.worker.state));
      ("heartbeat_ns", J.Int r.worker.heartbeat_ns);
      ("requests", J.Int r.worker.requests);
      ("responses", J.Int r.worker.responses);
      ("core", if r.worker.core < 0 then J.Null else J.Int r.worker.core);
      ( "rings",
        J.Obj
          [
            ("job_depth", J.Int (Ring.depth (job_ring t i)));
            ("resp_depth", J.Int (Ring.depth (resp_ring t i)));
            ("slots", J.Int (ring_slots t));
          ] );
      ( "shm",
        J.Obj
          [
            ("jobs", J.Int r.worker.shm_jobs);
            ("responses", J.Int r.worker.shm_responses);
            ("fallbacks", J.Int r.worker.shm_fallbacks);
            ("ckpt_saves", J.Int r.worker.ckpt_saves);
            ("ckpt_skips", J.Int r.worker.ckpt_skips);
          ] );
      ( "jobs",
        J.Obj
          [
            ("submitted", J.Int r.worker.submitted);
            ("completed", J.Int r.worker.completed);
            ("failed", J.Int r.worker.failed);
            ("cancelled", J.Int r.worker.cancelled);
            ("rejected", J.Int r.worker.rejected);
            ("pending", J.Int r.worker.queue_depth);
            ("running", J.Int r.worker.running);
            ("wall_ms", J.Int r.worker.job_wall_ms);
          ] );
      ( "solver",
        J.Obj
          (Array.to_list
             (Array.mapi
                (fun k name -> (name, J.Int r.worker.solver.(k)))
                Rc_obs.Metrics.export_names)) );
      ( "control",
        J.Obj
          [
            ("pid", J.Int r.control.c_pid);
            ("state", J.String (control_state_name r.control.c_state));
            ("restarts", J.Int r.control.c_restarts);
            ("inflight", J.Int r.control.c_inflight);
            ("redispatched", J.Int r.control.c_redispatched);
            ("resumed", J.Int r.control.c_resumed);
          ] );
    ]

let json_of_arena a =
  let module J = Rc_util.Json in
  J.List
    (Array.to_list
       (Array.map
          (fun (s : Arena.stat) ->
            J.Obj
              [
                ("size", J.Int s.s_size);
                ("count", J.Int s.s_count);
                ("in_use", J.Int s.s_in_use);
              ])
          (Arena.stats a)))

let to_json t =
  let module J = Rc_util.Json in
  J.Obj
    [
      ("path", J.String t.path);
      ("layout_version", J.Int layout_version);
      ("supervisor_pid", J.Int (supervisor_pid t));
      ("created_unix_s", J.Int (created_s t));
      ("tcp_port", match tcp_port t with None -> J.Null | Some p -> J.Int p);
      ("transport", J.String (transport_name (transport t)));
      ("ring_slots", J.Int (ring_slots t));
      ( "arena",
        J.Obj
          [
            ("payload", json_of_arena t.pay);
            ("checkpoint", json_of_arena t.ck);
            ( "ckpt_entries",
              J.Obj [ ("used", J.Int (ckpt_used t)); ("total", J.Int (ckpt_entries t)) ] );
          ] );
      ("workers", J.List (Array.to_list (Array.mapi (json_of_row t) (read_all t))));
    ]

(* CPU pinning for worker processes (`rotary_cli serve --pin-cores`).
   Thin wrapper over sched_setaffinity; unsupported platforms degrade
   to a warning, never an error. *)

external pin_self_raw : int -> int = "rc_affinity_pin_self" [@@noalloc]
external ncores_raw : unit -> int = "rc_affinity_ncores" [@@noalloc]

let ncores () = ncores_raw ()

type outcome = Pinned | Failed | Unsupported

let pin_self core =
  if core < 0 then invalid_arg "Affinity.pin_self: negative core";
  match pin_self_raw (core mod ncores ()) with
  | 0 -> Pinned
  | -1 -> Failed
  | _ -> Unsupported

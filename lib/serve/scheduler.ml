(* Deadline-aware priority job scheduler over worker domains.

   Jobs are CPU-bound flow/sweep/report runs, so cross-job parallelism
   comes from dedicated worker domains; inside a worker every
   Rc_par.Pool primitive is forced sequential (Pool.sequential_scope),
   because two concurrent pool regions would race on the pool's single
   region slot — and because the pool's determinism contract makes
   sequential execution bit-identical anyway.  Parallelism is therefore
   across jobs, not within one, exactly the serving trade-off.

   Scheduling: highest priority first, FIFO within a priority.  A job's
   deadline (absolute, monotonic clock) is enforced twice — a job whose
   deadline passed while queued is cancelled without starting, and a
   running job's cancellation token trips at the next stage boundary
   (the flow's guard hook polls it).  Admission is bounded: submit
   rejects with a reason once max_pending jobs are queued, so a
   saturated server fails fast instead of building unbounded backlog.

   Per-job Rc_obs.Metrics deltas are recorded around each run.  They
   are exact when one job runs at a time and approximate under
   concurrency (the registry is process-global) — same caveat as
   Flow_trace's per-stage deltas inside parallel suite arms. *)

type outcome =
  | Done of Rc_util.Json.t
  | Failed of string
  | Cancelled of string

type phase = Queued | Running | Finished of outcome

type job = {
  id : int;
  name : string;
  priority : int;
  token : Cancel.t;
  work : Cancel.t -> Rc_util.Json.t;
  submitted_s : float;  (* monotonic *)
  mutable started_s : float;
  mutable finished_s : float;
  mutable phase : phase;
  mutable metrics : Rc_obs.Metrics.snapshot;  (* delta across the run *)
}

type info = {
  i_id : int;
  i_name : string;
  i_priority : int;
  i_phase : phase;
  i_wait_s : float;  (* submit -> start (or now/finish while queued) *)
  i_run_s : float;  (* start -> finish (0 while queued) *)
  i_metrics : Rc_obs.Metrics.snapshot;
}

type counts = {
  submitted : int;
  rejected : int;
  completed : int;  (* Done *)
  failed : int;
  cancelled : int;
  pending : int;
  running : int;
}

type t = {
  lock : Mutex.t;
  work_cond : Condition.t;  (* signalled on submit and on quit *)
  done_cond : Condition.t;  (* broadcast on any job phase change *)
  max_pending : int;
  jobs : (int, job) Hashtbl.t;  (* every job ever admitted, by id *)
  mutable pending : job list;  (* unordered; workers pick by (priority, id) *)
  mutable next_id : int;
  mutable n_running : int;
  mutable accepting : bool;
  mutable quit : bool;
  mutable workers : unit Domain.t array;
  (* statistics *)
  mutable n_submitted : int;
  mutable n_rejected : int;
  mutable n_completed : int;
  mutable n_failed : int;
  mutable n_cancelled : int;
  mutable latencies_s : float list;  (* submit -> finish of Done jobs *)
}

(* serve-level observability, alongside the solver metrics *)
let m_submitted = Rc_obs.Metrics.counter "serve.jobs.submitted"
let m_rejected = Rc_obs.Metrics.counter "serve.jobs.rejected"
let m_completed = Rc_obs.Metrics.counter "serve.jobs.completed"
let m_failed = Rc_obs.Metrics.counter "serve.jobs.failed"
let m_cancelled = Rc_obs.Metrics.counter "serve.jobs.cancelled"
let m_queue_depth = Rc_obs.Metrics.gauge "serve.queue.depth"
let m_job_wall = Rc_obs.Metrics.timer "serve.job.wall"

let finish_locked t job outcome =
  job.finished_s <- Rc_util.Timer.now_s ();
  job.phase <- Finished outcome;
  (match outcome with
  | Done _ ->
      t.n_completed <- t.n_completed + 1;
      Rc_obs.Metrics.incr m_completed;
      t.latencies_s <- (job.finished_s -. job.submitted_s) :: t.latencies_s
  | Failed _ ->
      t.n_failed <- t.n_failed + 1;
      Rc_obs.Metrics.incr m_failed
  | Cancelled _ ->
      t.n_cancelled <- t.n_cancelled + 1;
      Rc_obs.Metrics.incr m_cancelled);
  Condition.broadcast t.done_cond

(* pick the best queued job: highest priority, then FIFO by id *)
let take_best_locked t =
  match t.pending with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left
          (fun best j ->
            if j.priority > best.priority || (j.priority = best.priority && j.id < best.id)
            then j
            else best)
          first rest
      in
      t.pending <- List.filter (fun j -> j.id <> best.id) t.pending;
      Rc_obs.Metrics.set_gauge m_queue_depth (float_of_int (List.length t.pending));
      Some best

let run_job job =
  let before = Rc_obs.Metrics.snapshot () in
  let outcome =
    match Rc_par.Pool.sequential_scope (fun () -> job.work job.token) with
    | v -> Done v
    | exception Cancel.Cancelled reason -> Cancelled reason
    | exception e -> Failed (Printexc.to_string e)
  in
  let after = Rc_obs.Metrics.snapshot () in
  job.metrics <- Rc_obs.Metrics.diff ~before ~after;
  Rc_obs.Metrics.add_time m_job_wall (Rc_util.Timer.now_s () -. job.started_s);
  outcome

let worker t () =
  let live = ref true in
  while !live do
    Mutex.lock t.lock;
    (* sleep until a job is available or the scheduler quits *)
    let rec next () =
      match take_best_locked t with
      | Some job -> Some job
      | None ->
          if t.quit then None
          else begin
            Condition.wait t.work_cond t.lock;
            next ()
          end
    in
    match next () with
    | None ->
        Mutex.unlock t.lock;
        live := false
    | Some job -> (
        (* a job whose token already fired (deadline passed while
           queued, or client cancel) never starts *)
        match Cancel.reason job.token with
        | Some r ->
            finish_locked t job (Cancelled (r ^ " (before start)"));
            Mutex.unlock t.lock
        | None ->
            job.started_s <- Rc_util.Timer.now_s ();
            job.phase <- Running;
            t.n_running <- t.n_running + 1;
            Mutex.unlock t.lock;
            let outcome = run_job job in
            Mutex.lock t.lock;
            t.n_running <- t.n_running - 1;
            finish_locked t job outcome;
            Mutex.unlock t.lock)
  done

let create ?(workers = 2) ?(max_pending = 64) () =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be >= 1";
  if max_pending < 1 then invalid_arg "Scheduler.create: max_pending must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      max_pending;
      jobs = Hashtbl.create 64;
      pending = [];
      next_id = 1;
      n_running = 0;
      accepting = true;
      quit = false;
      workers = [||];
      n_submitted = 0;
      n_rejected = 0;
      n_completed = 0;
      n_failed = 0;
      n_cancelled = 0;
      latencies_s = [];
    }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (worker t));
  t

let n_workers t = Array.length t.workers

let submit t ?(priority = 0) ?deadline_s ?(name = "job") work =
  let deadline = Option.map (fun d -> Rc_util.Timer.now_s () +. d) deadline_s in
  Mutex.lock t.lock;
  let result =
    if not t.accepting then begin
      t.n_rejected <- t.n_rejected + 1;
      Rc_obs.Metrics.incr m_rejected;
      Error "draining: server is shutting down"
    end
    else if List.length t.pending >= t.max_pending then begin
      t.n_rejected <- t.n_rejected + 1;
      Rc_obs.Metrics.incr m_rejected;
      Error
        (Printf.sprintf "queue saturated: %d jobs pending >= max_pending %d"
           (List.length t.pending) t.max_pending)
    end
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      let job =
        {
          id;
          name;
          priority;
          token = Cancel.create ?deadline ();
          work;
          submitted_s = Rc_util.Timer.now_s ();
          started_s = 0.0;
          finished_s = 0.0;
          phase = Queued;
          metrics = [];
        }
      in
      Hashtbl.replace t.jobs id job;
      t.pending <- job :: t.pending;
      t.n_submitted <- t.n_submitted + 1;
      Rc_obs.Metrics.incr m_submitted;
      Rc_obs.Metrics.set_gauge m_queue_depth (float_of_int (List.length t.pending));
      Condition.signal t.work_cond;
      Ok id
    end
  in
  Mutex.unlock t.lock;
  result

let cancel t id ~reason =
  Mutex.lock t.lock;
  let found =
    match Hashtbl.find_opt t.jobs id with
    | None -> false
    | Some job -> (
        Cancel.cancel job.token ~reason;
        match job.phase with
        | Queued -> begin
            (* finish it immediately so waiters unblock without a
               worker having to pick it up first *)
            t.pending <- List.filter (fun j -> j.id <> id) t.pending;
            Rc_obs.Metrics.set_gauge m_queue_depth (float_of_int (List.length t.pending));
            finish_locked t job (Cancelled reason);
            true
          end
        | Running -> true (* token trips at the next stage boundary *)
        | Finished _ -> false)
  in
  Mutex.unlock t.lock;
  found

let info_of_locked job =
  let now = Rc_util.Timer.now_s () in
  let wait_s, run_s =
    match job.phase with
    | Queued -> (now -. job.submitted_s, 0.0)
    | Running -> (job.started_s -. job.submitted_s, now -. job.started_s)
    | Finished _ ->
        (* started_s = 0 marks a job cancelled before it ever ran *)
        if job.started_s = 0.0 then (job.finished_s -. job.submitted_s, 0.0)
        else (job.started_s -. job.submitted_s, job.finished_s -. job.started_s)
  in
  {
    i_id = job.id;
    i_name = job.name;
    i_priority = job.priority;
    i_phase = job.phase;
    i_wait_s = wait_s;
    i_run_s = run_s;
    i_metrics = job.metrics;
  }

let info t id =
  Mutex.lock t.lock;
  let r = Option.map info_of_locked (Hashtbl.find_opt t.jobs id) in
  Mutex.unlock t.lock;
  r

let await t id =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> None
    | Some job ->
        let rec wait () =
          match job.phase with
          | Finished outcome -> (outcome, info_of_locked job)
          | _ ->
              Condition.wait t.done_cond t.lock;
              wait ()
        in
        Some (wait ())
  in
  Mutex.unlock t.lock;
  r

let counts t =
  Mutex.lock t.lock;
  let c =
    {
      submitted = t.n_submitted;
      rejected = t.n_rejected;
      completed = t.n_completed;
      failed = t.n_failed;
      cancelled = t.n_cancelled;
      pending = List.length t.pending;
      running = t.n_running;
    }
  in
  Mutex.unlock t.lock;
  c

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) and hi = int_of_float (Float.ceil rank) in
    let frac = rank -. Float.floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let latency_percentiles t ~percentiles =
  Mutex.lock t.lock;
  let xs = Array.of_list t.latencies_s in
  Mutex.unlock t.lock;
  Array.sort compare xs;
  List.map (fun p -> (p, percentile xs p)) percentiles

let drain t =
  Mutex.lock t.lock;
  t.accepting <- false;
  while t.pending <> [] || t.n_running > 0 do
    Condition.wait t.done_cond t.lock
  done;
  Mutex.unlock t.lock

let shutdown ?(cancel_pending = false) t =
  Mutex.lock t.lock;
  t.accepting <- false;
  if cancel_pending then
    List.iter
      (fun job ->
        Cancel.cancel job.token ~reason:"server shutting down";
        finish_locked t job (Cancelled "server shutting down"))
      t.pending;
  if cancel_pending then t.pending <- [];
  Mutex.unlock t.lock;
  drain t;
  Mutex.lock t.lock;
  t.quit <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* poll(2)-based readiness for event-driven clients (bench/loadgen).
   Unix.select's fd_set caps at 1024 descriptors; this scales to
   thousands of connections from a single thread.  The fd/interest
   rows live in a preallocated int Bigarray so the C stub can release
   the runtime lock across the poll. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external poll_raw : ba -> int -> int -> int = "rc_poll"

let pollin = 1
let pollout = 2
let pollerr = 4

type t = { scratch : ba; mutable n : int }

let create capacity =
  if capacity < 1 then invalid_arg "Evloop.create: capacity must be >= 1";
  { scratch = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (3 * capacity); n = 0 }

let fd_int : Unix.file_descr -> int = Obj.magic (* Unix fds are ints on Unix *)

let begin_round t = t.n <- 0

let add t fd ~events =
  let i = t.n in
  if 3 * (i + 1) > Bigarray.Array1.dim t.scratch then
    invalid_arg "Evloop.add: capacity exceeded";
  t.scratch.{3 * i} <- fd_int fd;
  t.scratch.{(3 * i) + 1} <- events;
  t.scratch.{(3 * i) + 2} <- 0;
  t.n <- i + 1;
  i

let wait t ~timeout_ms =
  let rc = poll_raw t.scratch t.n timeout_ms in
  if rc < 0 then
    (* EINTR etc. — treat as a timeout round; callers loop *)
    0
  else rc

let revents t i = t.scratch.{(3 * i) + 2}

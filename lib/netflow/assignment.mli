(** The paper's Section-V flip-flop-to-ring assignment network (Fig. 4):
    a source feeding one unit per flip-flop, candidate arcs carrying the
    tapping cost, and ring arcs capped by ring capacity [U_j]. Solved
    optimally by min-cost flow. *)

type candidate = { item : int; bin : int; cost : float }
(** One admissible (flip-flop, ring) pair with its tapping cost. *)

type result = {
  assignment : int array;  (** [assignment.(i)] is the bin of item [i], or -1 if unassigned. *)
  total_cost : float;  (** Sum of chosen candidate costs. *)
  assigned : int;  (** Number of items that received a bin. *)
}

val solve :
  n_items:int -> n_bins:int -> capacities:int array -> candidate list -> result
(** Assign each item to exactly one bin through its candidate arcs,
    minimizing total cost subject to per-bin capacities. Items whose
    candidates are all saturated stay unassigned (the caller widens the
    candidate set — the paper adds arcs only between nearby pairs).
    @raise Invalid_argument on shape mismatches or out-of-range
    candidates. *)

(** {2 Warm-started solving across placement iterations}

    A {!solver} keeps the min-cost-flow network of its last solve alive
    so that the next call can reuse it. Three tiers, coarsest first:

    - {b replay} — the candidate list is identical (same (item, bin)
      pairs in the same order, same costs): the cached result is
      returned without touching the network. This is what the flow
      epilogue's re-assignment hits.
    - {b warm} — same arc structure, but some items' costs changed and
      their fraction is at most [warm_threshold]: the dirty items'
      routed paths are evicted ({!Mcmf.unroute}), the cost deltas
      applied in place ({!Mcmf.set_cost}), optimality of the retained
      flow restored by negative-cycle cancellation, and only the evicted
      units re-routed from recomputed duals.
    - {b scratch} — anything else (structure changed, too many dirty
      items, or cycle cancellation hit its limit): a fresh network is
      built and solved exactly like {!solve}, so the result is
      bit-identical to the cold path by construction.

    Set the environment variable [ROTARY_WARM_CHECK=1] to cross-check
    every warm solve against a cold {!solve} of the same input (raises
    [Failure] on divergence) — the debug mode for the incremental
    layer. *)

type solver

val make_solver : n_items:int -> n_bins:int -> capacities:int array -> solver
(** A reusable solver for a fixed item/bin universe. Capacities are
    captured at creation time. *)

val solve_with : ?warm_threshold:float -> solver -> candidate list -> result
(** Solve through the tiered reuse logic above. [warm_threshold]
    (default 0.25) is the largest dirty-item fraction still worth a warm
    re-solve; above it the solver rebuilds from scratch. The returned
    arrays are fresh copies, never aliases of solver state.
    @raise Invalid_argument as {!solve}. *)

(** Min-cost max-flow by successive shortest paths with Johnson
    potentials — the solver behind the paper's Section V flip-flop
    assignment (Fig. 4). Capacities are integers, costs are floats
    (tapping wirelengths). *)

type t

type arc = int
(** Handle returned by {!add_arc}, usable to query flow afterwards. *)

val create : int -> t
(** [create n] builds an empty network on vertices [0 .. n-1]. *)

val add_arc : t -> src:int -> dst:int -> capacity:int -> cost:float -> arc
(** Add a directed arc. @raise Invalid_argument on negative capacity or
    out-of-range vertices. *)

type outcome = {
  flow : int;  (** Total flow shipped (may be less than requested). *)
  cost : float;  (** Sum of [cost * flow] over arcs. *)
}

val solve : ?amount:int -> t -> source:int -> sink:int -> outcome
(** Ship up to [amount] units (default: max flow) from source to sink at
    minimum cost. Negative-cost arcs are handled by a Bellman-Ford
    initialization of the potentials. Runs the bucket-Dijkstra core:
    successive shortest paths over a radix heap on reduced costs, with
    early sink termination and touched-set resets, so per-augmentation
    work scales with the explored region rather than the network. *)

val solve_reference : ?amount:int -> t -> source:int -> sink:int -> outcome
(** The pre-rewrite successive-shortest-path core (binary heap, full
    Dijkstra sweeps, O(n) potential updates), kept as the identity
    baseline: on networks where shortest paths are unique it ships the
    same flow at the bit-identical cost as {!solve}. Used by the QCheck
    A/B tests and the [mcmf_scaled] bench kernel. *)

val solve_warm :
  ?amount:int -> t -> potentials:float array -> source:int -> sink:int -> outcome
(** Like {!solve}, but resume from caller-supplied dual [potentials]
    instead of computing them fresh — the warm start after {!unroute} and
    {!set_cost} edits to a previously solved network. [potentials] must
    be feasible for the current residual (every residual arc's reduced
    cost non-negative, e.g. from {!feasible_potentials}); it is mutated
    in place and holds the final duals on return, ready for the next
    warm solve. A warm solve on an all-zero dual of a fresh
    non-negative-cost network behaves exactly like {!solve}. *)

val feasible_potentials : t -> source:int -> float array
(** Bellman-Ford duals of the current residual network: potentials under
    which every residual arc has non-negative reduced cost (assuming no
    negative residual cycle). Vertices unreachable from [source] are held
    at a large finite sentinel rather than collapsed to zero, so arcs
    leaving them never acquire negative reduced cost. *)

val set_cost : t -> arc -> float -> unit
(** Rewrite an arc's cost in place (the reverse arc gets the negated
    cost). Any flow already routed on the arc keeps its old accounted
    cost; warm-start callers re-route affected flow via {!unroute}. *)

val cost_of : t -> arc -> float
(** Current cost of an arc. *)

val unroute : t -> arc -> int -> unit
(** [unroute t a f] cancels [f] units of flow previously routed on arc
    [a], restoring its residual capacity. Used to evict a stale path
    before a warm re-solve.
    @raise Invalid_argument if [f] exceeds the routed flow. *)

val cancel_negative_cycles : ?limit:int -> t -> int option
(** Restore min-cost optimality of the currently routed flow after
    {!unroute}/{!set_cost} edits by cancelling negative residual cycles
    (Klein's method). Returns [Some k] with the number of cycles
    cancelled once the residual is clean, or [None] if more than [limit]
    cancellations were needed — the caller's cue to fall back to a
    scratch solve. *)

val flow_on : t -> arc -> int
(** Flow routed on an arc by the last {!solve} call. *)

val iter_residual : t -> (src:int -> dst:int -> cost:float -> unit) -> unit
(** Iterate every arc of the residual network (positive remaining
    capacity), including reverse arcs of routed flow. After an optimal
    solve the residual network has no negative cycle, so Bellman-Ford
    potentials over it recover the dual variables — how the weighted-sum
    skew scheduler extracts its schedule. *)

val n_vertices : t -> int

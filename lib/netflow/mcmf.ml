(* Residual-network representation: forward and backward arcs are stored
   interleaved; arc i and arc (i lxor 1) are mutual inverses.

   Two successive-shortest-path cores share this representation:

   - the {e bucket-Dijkstra} core (the default behind [solve] and
     [solve_warm]): Dijkstra on reduced costs over a 64-bucket radix
     heap keyed on the IEEE-754 bit pattern of the distance, with early
     termination once the sink is scanned, touched-set resets (per-
     augmentation work is proportional to the explored region, not the
     network), and a CSR-packed adjacency frozen lazily from the
     [first]/[next] chains;
   - the {e reference} core ([solve_reference]): the original
     binary-heap full-Dijkstra implementation, kept verbatim as the
     identity baseline for the QCheck A/B tests and the [mcmf_scaled]
     bench kernel.

   Both cores augment along exact shortest paths, so they ship the same
   flows at the same cost (bit-identical whenever shortest paths are
   unique, which holds for generic float costs). *)

type t = {
  n : int;
  mutable heads : int array;  (* arc -> dst *)
  mutable caps : int array;  (* residual capacity *)
  mutable costs : float array;
  mutable next : int array;  (* arc -> next arc of same tail *)
  first : int array;  (* vertex -> first arc, -1 terminated *)
  mutable m : int;  (* number of residual arcs (2x public arcs) *)
  (* CSR-packed adjacency, frozen lazily: [adj_arc] lists every arc id
     grouped by tail, each group in exactly the [first]/[next] chain
     order, so relaxation tie-breaking is unchanged. Invalidated by
     [add_arc] (topology edits), not by cap/cost edits. *)
  mutable adj_ptr : int array;
  mutable adj_arc : int array;
  mutable frozen_m : int;  (* m at last freeze, -1 = stale *)
  mutable scratch : scratch option;  (* per-network Dijkstra scratch *)
}

and scratch = {
  dist : float array;
  pred_arc : int array;
  scanned : bool array;
  touched : int array;  (* stack of vertices with non-default labels *)
  mutable n_touched : int;
  scan_order : int array;  (* scanned vertices, in scan order *)
  mutable n_scanned : int;
  heap : rheap;
}

(* 64-bucket radix heap over monotone non-negative float keys. The key
   is the top 62 bits of the IEEE-754 pattern ([bits lsr 1]): the map
   is order-preserving on non-negative floats, collapsing only pairs
   one ulp apart — within the 1e-12 comparison slack the Dijkstra loop
   already tolerates. The exact float is carried alongside for the
   stale-entry check. Pops are non-decreasing in the integer key;
   entries with equal keys pop newest-first (deterministic). *)
and rheap = {
  mutable hsize : int;
  mutable hlast : int;  (* monotone floor key *)
  mutable bkey : int array array;  (* 63 buckets, growable *)
  mutable bfk : float array array;  (* exact float keys *)
  mutable bval : int array array;  (* vertices *)
  blen : int array;
}

let n_buckets = 63

let rheap_create () =
  {
    hsize = 0;
    hlast = 0;
    bkey = Array.init n_buckets (fun _ -> Array.make 8 0);
    bfk = Array.init n_buckets (fun _ -> Array.make 8 0.0);
    bval = Array.init n_buckets (fun _ -> Array.make 8 0);
    blen = Array.make n_buckets 0;
  }

let rheap_clear h =
  h.hsize <- 0;
  h.hlast <- 0;
  Array.fill h.blen 0 n_buckets 0

let key_of_float d = Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float d) 1)

(* position of the highest set bit of x > 0 *)
let msb x =
  let r = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then begin r := !r + 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin r := !r + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin r := !r + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin r := !r + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin r := !r + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then incr r;
  !r

let bucket_of h k = if k = h.hlast then 0 else 1 + msb (k lxor h.hlast)

let rheap_push h k fk v =
  let b = bucket_of h k in
  let len = h.blen.(b) in
  if len = Array.length h.bkey.(b) then begin
    let cap = 2 * len in
    let nk = Array.make cap 0 and nf = Array.make cap 0.0 and nv = Array.make cap 0 in
    Array.blit h.bkey.(b) 0 nk 0 len;
    Array.blit h.bfk.(b) 0 nf 0 len;
    Array.blit h.bval.(b) 0 nv 0 len;
    h.bkey.(b) <- nk;
    h.bfk.(b) <- nf;
    h.bval.(b) <- nv
  end;
  h.bkey.(b).(len) <- k;
  h.bfk.(b).(len) <- fk;
  h.bval.(b).(len) <- v;
  h.blen.(b) <- len + 1;
  h.hsize <- h.hsize + 1

(* Pop a minimum-key entry; the float key and vertex land in the two
   refs. Returns false on an empty heap. *)
let rheap_pop h fk_out v_out =
  if h.hsize = 0 then false
  else begin
    if h.blen.(0) = 0 then begin
      (* find the lowest non-empty bucket, pull its minimum key out as
         the new floor, redistribute into strictly lower buckets *)
      let b = ref 1 in
      while h.blen.(!b) = 0 do
        incr b
      done;
      let b = !b in
      let len = h.blen.(b) in
      let keys = h.bkey.(b) and fks = h.bfk.(b) and vals = h.bval.(b) in
      let mn = ref keys.(0) in
      for i = 1 to len - 1 do
        if keys.(i) < !mn then mn := keys.(i)
      done;
      h.hlast <- !mn;
      h.blen.(b) <- 0;
      h.hsize <- h.hsize - len;
      for i = 0 to len - 1 do
        rheap_push h keys.(i) fks.(i) vals.(i)
      done
    end;
    let len = h.blen.(0) - 1 in
    fk_out := h.bfk.(0).(len);
    v_out := h.bval.(0).(len);
    h.blen.(0) <- len;
    h.hsize <- h.hsize - 1;
    true
  end

let create n =
  if n < 0 then invalid_arg "Mcmf.create";
  {
    n;
    heads = Array.make 16 0;
    caps = Array.make 16 0;
    costs = Array.make 16 0.0;
    next = Array.make 16 (-1);
    first = Array.make (max n 1) (-1);
    m = 0;
    adj_ptr = [||];
    adj_arc = [||];
    frozen_m = -1;
    scratch = None;
  }

let grow t =
  let cap = Array.length t.heads in
  let heads = Array.make (2 * cap) 0
  and caps = Array.make (2 * cap) 0
  and costs = Array.make (2 * cap) 0.0
  and next = Array.make (2 * cap) (-1) in
  Array.blit t.heads 0 heads 0 t.m;
  Array.blit t.caps 0 caps 0 t.m;
  Array.blit t.costs 0 costs 0 t.m;
  Array.blit t.next 0 next 0 t.m;
  t.heads <- heads;
  t.caps <- caps;
  t.costs <- costs;
  t.next <- next

let push_arc t tail head cap cost =
  if t.m = Array.length t.heads then grow t;
  let a = t.m in
  t.heads.(a) <- head;
  t.caps.(a) <- cap;
  t.costs.(a) <- cost;
  t.next.(a) <- t.first.(tail);
  t.first.(tail) <- a;
  t.m <- t.m + 1;
  t.frozen_m <- -1;
  a

let add_arc t ~src ~dst ~capacity ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_arc: vertex out of range";
  if capacity < 0 then invalid_arg "Mcmf.add_arc: negative capacity";
  let a = push_arc t src dst capacity cost in
  ignore (push_arc t dst src 0 (-.cost));
  a

(* Pack the adjacency chains into CSR form. Group order per vertex is
   the exact [first]/[next] walk, so scans relax arcs in the same order
   as a chain walk would. *)
let freeze t =
  if t.frozen_m <> t.m then begin
    if Array.length t.adj_ptr <> t.n + 1 then t.adj_ptr <- Array.make (t.n + 1) 0;
    if Array.length t.adj_arc < t.m then t.adj_arc <- Array.make (max t.m 16) 0;
    let k = ref 0 in
    for v = 0 to t.n - 1 do
      t.adj_ptr.(v) <- !k;
      let a = ref t.first.(v) in
      while !a >= 0 do
        t.adj_arc.(!k) <- !a;
        incr k;
        a := t.next.(!a)
      done
    done;
    t.adj_ptr.(t.n) <- !k;
    t.frozen_m <- t.m
  end

let scratch_of t =
  match t.scratch with
  | Some s -> s
  | None ->
      let s =
        {
          dist = Array.make t.n infinity;
          pred_arc = Array.make t.n (-1);
          scanned = Array.make t.n false;
          touched = Array.make t.n 0;
          n_touched = 0;
          scan_order = Array.make t.n 0;
          n_scanned = 0;
          heap = rheap_create ();
        }
      in
      t.scratch <- Some s;
      s

type arc = int

type outcome = { flow : int; cost : float }

let m_solves = Rc_obs.Metrics.counter "netflow.mcmf.solves"
let m_augmentations = Rc_obs.Metrics.counter "netflow.mcmf.augmentations"
let m_flow_units = Rc_obs.Metrics.counter "netflow.mcmf.flow_units"
let m_bf_runs = Rc_obs.Metrics.counter "netflow.mcmf.bellman_ford_runs"
let m_scanned = Rc_obs.Metrics.counter "netflow.mcmf.dijkstra_scans"

let bellman_ford_potentials t source =
  (* Vertices unreachable from [source] must NOT be mapped down to 0.0:
     an arc out of such a vertex into the reachable region would then get
     reduced cost [cost - pot(head)], which can be negative, and later
     augmentations (e.g. from a warm start) would see an inconsistent
     dual. Instead every non-source vertex starts at a large *finite*
     sentinel [big] and the sweep relaxes to a fixpoint; any fixpoint of
     the relaxation satisfies pot(head) <= pot(tail) + cost on every
     residual arc, which is all the Dijkstra stage needs. [big] exceeds
     twice the total absolute cost, so vertices reachable from [source]
     still converge to their true shortest-path distance (a source path
     costs at most the total, while any sentinel-seeded path costs at
     least [big] minus the total). *)
  let big = ref 1.0 in
  for a = 0 to t.m - 1 do
    big := !big +. Float.abs t.costs.(a)
  done;
  let pot = Array.make t.n !big in
  pot.(source) <- 0.0;
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds <= t.n do
    changed := false;
    incr rounds;
    for v = 0 to t.n - 1 do
      let a = ref t.first.(v) in
      while !a >= 0 do
        if t.caps.(!a) > 0 then begin
          let nd = pot.(v) +. t.costs.(!a) in
          if nd < pot.(t.heads.(!a)) -. 1e-12 then begin
            pot.(t.heads.(!a)) <- nd;
            changed := true
          end
        end;
        a := t.next.(!a)
      done
    done
  done;
  pot

(* ---- bucket-Dijkstra core (the default) ------------------------------ *)

(* Successive shortest paths from a given feasible dual. [pot] is
   mutated in place, so after the call it holds the final potentials —
   a warm start for a later re-solve of the mutated network.

   Each augmentation runs Dijkstra on reduced costs over the radix heap
   and stops as soon as the sink is scanned; the duals of scanned
   vertices are then updated by [dist(v) - dist(sink)] (unscanned
   vertices keep their dual), which preserves feasibility:
   - scanned u -> scanned v: rc' = rc + d(u) - d(v) >= 0 (v was relaxed
     from u when u was scanned);
   - scanned u -> unscanned v: v's tentative label is >= d(sink), and
     it was relaxed from u, so rc + d(u) >= d(sink) and rc' >= 0;
   - unscanned u -> scanned v: d(v) <= d(sink), so rc' >= rc >= 0;
   - unscanned -> unscanned: unchanged.
   Every label write is undone through the touched stack, so one
   augmentation costs O(explored region), not O(n). *)
let augment ?(amount = max_int) t ~pot ~source ~sink =
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Mcmf.solve: vertex out of range";
  if Array.length pot <> t.n then invalid_arg "Mcmf: potentials length mismatch";
  freeze t;
  let s = scratch_of t in
  let dist = s.dist
  and pred_arc = s.pred_arc
  and scanned = s.scanned
  and heap = s.heap in
  let adj_ptr = t.adj_ptr and adj_arc = t.adj_arc in
  let heads = t.heads and caps = t.caps and costs = t.costs in
  let total_flow = ref 0 and total_cost = ref 0.0 in
  let continue = ref true in
  let dq = ref 0.0 and vq = ref 0 in
  let touch v =
    s.touched.(s.n_touched) <- v;
    s.n_touched <- s.n_touched + 1
  in
  while !continue && !total_flow < amount do
    (* reset only what the previous augmentation touched *)
    for i = 0 to s.n_touched - 1 do
      let v = s.touched.(i) in
      dist.(v) <- infinity;
      pred_arc.(v) <- -1;
      scanned.(v) <- false
    done;
    s.n_touched <- 0;
    s.n_scanned <- 0;
    rheap_clear heap;
    dist.(source) <- 0.0;
    touch source;
    rheap_push heap (key_of_float 0.0) 0.0 source;
    let sink_done = ref false in
    while (not !sink_done) && rheap_pop heap dq vq do
      let v = !vq and d = !dq in
      if d <= dist.(v) +. 1e-12 && not scanned.(v) then begin
        scanned.(v) <- true;
        s.scan_order.(s.n_scanned) <- v;
        s.n_scanned <- s.n_scanned + 1;
        if v = sink then sink_done := true
        else begin
          let pv = pot.(v) in
          for k = adj_ptr.(v) to adj_ptr.(v + 1) - 1 do
            let a = adj_arc.(k) in
            if caps.(a) > 0 then begin
              let u = heads.(a) in
              let rc = costs.(a) +. pv -. pot.(u) in
              let rc = if rc < 0.0 then 0.0 else rc in
              let nd = d +. rc in
              if nd < dist.(u) -. 1e-12 then begin
                if pred_arc.(u) < 0 && dist.(u) = infinity then touch u;
                dist.(u) <- nd;
                pred_arc.(u) <- a;
                rheap_push heap (key_of_float nd) nd u
              end
            end
          done
        end
      end
    done;
    Rc_obs.Metrics.add m_scanned s.n_scanned;
    if not !sink_done then continue := false
    else begin
      let ds = dist.(sink) in
      for i = 0 to s.n_scanned - 1 do
        let v = s.scan_order.(i) in
        pot.(v) <- pot.(v) +. dist.(v) -. ds
      done;
      (* bottleneck along the path *)
      let bottleneck = ref (amount - !total_flow) in
      let v = ref sink in
      while !v <> source do
        let a = pred_arc.(!v) in
        if caps.(a) < !bottleneck then bottleneck := caps.(a);
        v := heads.(a lxor 1)
      done;
      let f = !bottleneck in
      let v = ref sink in
      while !v <> source do
        let a = pred_arc.(!v) in
        caps.(a) <- caps.(a) - f;
        caps.(a lxor 1) <- caps.(a lxor 1) + f;
        total_cost := !total_cost +. (float_of_int f *. costs.(a));
        v := heads.(a lxor 1)
      done;
      total_flow := !total_flow + f;
      Rc_obs.Metrics.incr m_augmentations;
      Rc_obs.Metrics.add m_flow_units f
    end
  done;
  Rc_obs.Metrics.incr m_solves;
  { flow = !total_flow; cost = !total_cost }

(* ---- reference core (binary heap, full Dijkstra) --------------------- *)

(* The pre-rewrite implementation, kept verbatim: full Dijkstra sweeps
   on a binary heap, potentials updated over every reachable vertex.
   The A/B identity baseline for tests and the [mcmf_scaled] bench. *)
let augment_reference ?(amount = max_int) t ~pot ~source ~sink =
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Mcmf.solve: vertex out of range";
  if Array.length pot <> t.n then invalid_arg "Mcmf: potentials length mismatch";
  let dist = Array.make t.n infinity in
  let pred_arc = Array.make t.n (-1) in
  let total_flow = ref 0 and total_cost = ref 0.0 in
  let continue = ref true in
  while !continue && !total_flow < amount do
    (* Dijkstra on reduced costs *)
    Array.fill dist 0 t.n infinity;
    Array.fill pred_arc 0 t.n (-1);
    dist.(source) <- 0.0;
    let heap = Rc_graph.Heap.create () in
    Rc_graph.Heap.push heap 0.0 source;
    let rec loop () =
      match Rc_graph.Heap.pop_min heap with
      | None -> ()
      | Some (d, v) ->
          if d <= dist.(v) +. 1e-12 then begin
            let a = ref t.first.(v) in
            while !a >= 0 do
              if t.caps.(!a) > 0 then begin
                let u = t.heads.(!a) in
                let rc = t.costs.(!a) +. pot.(v) -. pot.(u) in
                let rc = if rc < 0.0 then 0.0 else rc in
                let nd = d +. rc in
                if nd < dist.(u) -. 1e-12 then begin
                  dist.(u) <- nd;
                  pred_arc.(u) <- !a;
                  Rc_graph.Heap.push heap nd u
                end
              end;
              a := t.next.(!a)
            done
          end;
          loop ()
    in
    loop ();
    if dist.(sink) = infinity then continue := false
    else begin
      for v = 0 to t.n - 1 do
        if dist.(v) < infinity then pot.(v) <- pot.(v) +. dist.(v)
      done;
      (* bottleneck along the path *)
      let bottleneck = ref (amount - !total_flow) in
      let v = ref sink in
      while !v <> source do
        let a = pred_arc.(!v) in
        if t.caps.(a) < !bottleneck then bottleneck := t.caps.(a);
        v := t.heads.(a lxor 1)
      done;
      let f = !bottleneck in
      let v = ref sink in
      while !v <> source do
        let a = pred_arc.(!v) in
        t.caps.(a) <- t.caps.(a) - f;
        t.caps.(a lxor 1) <- t.caps.(a lxor 1) + f;
        total_cost := !total_cost +. (float_of_int f *. t.costs.(a));
        v := t.heads.(a lxor 1)
      done;
      total_flow := !total_flow + f;
      Rc_obs.Metrics.incr m_augmentations;
      Rc_obs.Metrics.add m_flow_units f
    end
  done;
  Rc_obs.Metrics.incr m_solves;
  { flow = !total_flow; cost = !total_cost }

let initial_potentials t source =
  let has_negative = ref false in
  for a = 0 to t.m - 1 do
    if t.caps.(a) > 0 && t.costs.(a) < 0.0 then has_negative := true
  done;
  if !has_negative then begin
    Rc_obs.Metrics.incr m_bf_runs;
    bellman_ford_potentials t source
  end
  else Array.make t.n 0.0

let solve ?amount t ~source ~sink =
  let pot = initial_potentials t source in
  augment ?amount t ~pot ~source ~sink

let solve_reference ?amount t ~source ~sink =
  let pot = initial_potentials t source in
  augment_reference ?amount t ~pot ~source ~sink

let solve_warm ?amount t ~potentials ~source ~sink =
  augment ?amount t ~pot:potentials ~source ~sink

let feasible_potentials t ~source =
  Rc_obs.Metrics.incr m_bf_runs;
  bellman_ford_potentials t source

let set_cost t a cost =
  if a < 0 || a >= t.m then invalid_arg "Mcmf.set_cost: bad arc";
  t.costs.(a) <- cost;
  t.costs.(a lxor 1) <- -.cost

let cost_of t a =
  if a < 0 || a >= t.m then invalid_arg "Mcmf.cost_of: bad arc";
  t.costs.(a)

let unroute t a amount =
  if a < 0 || a >= t.m then invalid_arg "Mcmf.unroute: bad arc";
  if amount < 0 || amount > t.caps.(a lxor 1) then
    invalid_arg "Mcmf.unroute: amount exceeds routed flow";
  t.caps.(a) <- t.caps.(a) + amount;
  t.caps.(a lxor 1) <- t.caps.(a lxor 1) - amount

let m_cancellations = Rc_obs.Metrics.counter "netflow.mcmf.cycle_cancellations"

(* After unrouting some flow and rewriting arc costs, the retained flow
   may no longer be min-cost for its own value — the residual then holds
   a negative cycle, and successive shortest paths would build on a
   broken dual. One Klein step: Bellman-Ford from a virtual super-source
   (all distances start at 0); continued relaxation past n rounds proves
   a negative residual cycle, recovered by scanning the predecessor
   forest. Returns [Some arcs] around the cycle, [None] if the residual
   is clean, raises [Exit] in the (theoretically impossible) case where
   relaxation persists but no predecessor cycle is found. *)
let find_negative_cycle t =
  let dist = Array.make t.n 0.0 and pred = Array.make t.n (-1) in
  let tail a = t.heads.(a lxor 1) in
  let improving = ref true and rounds = ref 0 in
  while !improving && !rounds <= t.n do
    improving := false;
    incr rounds;
    for v = 0 to t.n - 1 do
      let a = ref t.first.(v) in
      while !a >= 0 do
        if t.caps.(!a) > 0 then begin
          let u = t.heads.(!a) in
          let nd = dist.(v) +. t.costs.(!a) in
          if nd < dist.(u) -. 1e-9 then begin
            dist.(u) <- nd;
            pred.(u) <- !a;
            improving := true
          end
        end;
        a := t.next.(!a)
      done
    done
  done;
  if not !improving then None
  else begin
    (* find a cycle in the predecessor forest *)
    let mark = Array.make t.n (-1) in
    let found = ref (-1) in
    let v = ref 0 in
    while !found < 0 && !v < t.n do
      if mark.(!v) < 0 then begin
        let u = ref !v in
        while !found < 0 && !u >= 0 && mark.(!u) < 0 do
          mark.(!u) <- !v;
          u := if pred.(!u) < 0 then -1 else tail pred.(!u)
        done;
        if !found < 0 && !u >= 0 && mark.(!u) = !v then found := !u
      end;
      incr v
    done;
    if !found < 0 then raise Exit;
    let arcs = ref [] and u = ref !found in
    let finished = ref false in
    while not !finished do
      let a = pred.(!u) in
      arcs := a :: !arcs;
      u := tail a;
      if !u = !found then finished := true
    done;
    Some !arcs
  end

let cancel_negative_cycles ?(limit = max_int) t =
  let cancelled = ref 0 and outcome = ref None and stop = ref false in
  (try
     while not !stop do
       if !cancelled > limit then stop := true
       else
         match find_negative_cycle t with
         | None ->
             outcome := Some !cancelled;
             stop := true
         | Some arcs ->
             let bottleneck =
               List.fold_left (fun acc a -> min acc t.caps.(a)) max_int arcs
             in
             List.iter
               (fun a ->
                 t.caps.(a) <- t.caps.(a) - bottleneck;
                 t.caps.(a lxor 1) <- t.caps.(a lxor 1) + bottleneck)
               arcs;
             incr cancelled;
             Rc_obs.Metrics.incr m_cancellations
     done
   with Exit -> ());
  !outcome

let flow_on t a =
  if a < 0 || a >= t.m then invalid_arg "Mcmf.flow_on: bad arc";
  (* flow on forward arc = residual capacity of its reverse arc *)
  t.caps.(a lxor 1)

let iter_residual t f =
  for a = 0 to t.m - 1 do
    if t.caps.(a) > 0 then begin
      (* tail of arc a is the head of its partner *)
      let src = t.heads.(a lxor 1) in
      f ~src ~dst:t.heads.(a) ~cost:t.costs.(a)
    end
  done

let n_vertices t = t.n

(* Residual-network representation: forward and backward arcs are stored
   interleaved; arc i and arc (i lxor 1) are mutual inverses. *)

type t = {
  n : int;
  mutable heads : int array;  (* arc -> dst *)
  mutable caps : int array;  (* residual capacity *)
  mutable costs : float array;
  mutable next : int array;  (* arc -> next arc of same tail *)
  first : int array;  (* vertex -> first arc, -1 terminated *)
  mutable m : int;  (* number of residual arcs (2x public arcs) *)
}

type arc = int

let create n =
  if n < 0 then invalid_arg "Mcmf.create";
  {
    n;
    heads = Array.make 16 0;
    caps = Array.make 16 0;
    costs = Array.make 16 0.0;
    next = Array.make 16 (-1);
    first = Array.make (max n 1) (-1);
    m = 0;
  }

let grow t =
  let cap = Array.length t.heads in
  let heads = Array.make (2 * cap) 0
  and caps = Array.make (2 * cap) 0
  and costs = Array.make (2 * cap) 0.0
  and next = Array.make (2 * cap) (-1) in
  Array.blit t.heads 0 heads 0 t.m;
  Array.blit t.caps 0 caps 0 t.m;
  Array.blit t.costs 0 costs 0 t.m;
  Array.blit t.next 0 next 0 t.m;
  t.heads <- heads;
  t.caps <- caps;
  t.costs <- costs;
  t.next <- next

let push_arc t tail head cap cost =
  if t.m = Array.length t.heads then grow t;
  let a = t.m in
  t.heads.(a) <- head;
  t.caps.(a) <- cap;
  t.costs.(a) <- cost;
  t.next.(a) <- t.first.(tail);
  t.first.(tail) <- a;
  t.m <- t.m + 1;
  a

let add_arc t ~src ~dst ~capacity ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_arc: vertex out of range";
  if capacity < 0 then invalid_arg "Mcmf.add_arc: negative capacity";
  let a = push_arc t src dst capacity cost in
  ignore (push_arc t dst src 0 (-.cost));
  a

type outcome = { flow : int; cost : float }

let m_solves = Rc_obs.Metrics.counter "netflow.mcmf.solves"
let m_augmentations = Rc_obs.Metrics.counter "netflow.mcmf.augmentations"
let m_flow_units = Rc_obs.Metrics.counter "netflow.mcmf.flow_units"
let m_bf_runs = Rc_obs.Metrics.counter "netflow.mcmf.bellman_ford_runs"

let bellman_ford_potentials t source =
  (* Vertices unreachable from [source] must NOT be mapped down to 0.0:
     an arc out of such a vertex into the reachable region would then get
     reduced cost [cost - pot(head)], which can be negative, and later
     augmentations (e.g. from a warm start) would see an inconsistent
     dual. Instead every non-source vertex starts at a large *finite*
     sentinel [big] and the sweep relaxes to a fixpoint; any fixpoint of
     the relaxation satisfies pot(head) <= pot(tail) + cost on every
     residual arc, which is all the Dijkstra stage needs. [big] exceeds
     twice the total absolute cost, so vertices reachable from [source]
     still converge to their true shortest-path distance (a source path
     costs at most the total, while any sentinel-seeded path costs at
     least [big] minus the total). *)
  let big = ref 1.0 in
  for a = 0 to t.m - 1 do
    big := !big +. Float.abs t.costs.(a)
  done;
  let pot = Array.make t.n !big in
  pot.(source) <- 0.0;
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds <= t.n do
    changed := false;
    incr rounds;
    for v = 0 to t.n - 1 do
      let a = ref t.first.(v) in
      while !a >= 0 do
        if t.caps.(!a) > 0 then begin
          let nd = pot.(v) +. t.costs.(!a) in
          if nd < pot.(t.heads.(!a)) -. 1e-12 then begin
            pot.(t.heads.(!a)) <- nd;
            changed := true
          end
        end;
        a := t.next.(!a)
      done
    done
  done;
  pot

(* Successive shortest paths from a given feasible dual. [pot] is
   mutated in place, so after the call it holds the final potentials —
   a warm start for a later re-solve of the mutated network. *)
let augment ?(amount = max_int) t ~pot ~source ~sink =
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Mcmf.solve: vertex out of range";
  if Array.length pot <> t.n then invalid_arg "Mcmf: potentials length mismatch";
  let dist = Array.make t.n infinity in
  let pred_arc = Array.make t.n (-1) in
  let total_flow = ref 0 and total_cost = ref 0.0 in
  let continue = ref true in
  while !continue && !total_flow < amount do
    (* Dijkstra on reduced costs *)
    Array.fill dist 0 t.n infinity;
    Array.fill pred_arc 0 t.n (-1);
    dist.(source) <- 0.0;
    let heap = Rc_graph.Heap.create () in
    Rc_graph.Heap.push heap 0.0 source;
    let rec loop () =
      match Rc_graph.Heap.pop_min heap with
      | None -> ()
      | Some (d, v) ->
          if d <= dist.(v) +. 1e-12 then begin
            let a = ref t.first.(v) in
            while !a >= 0 do
              if t.caps.(!a) > 0 then begin
                let u = t.heads.(!a) in
                let rc = t.costs.(!a) +. pot.(v) -. pot.(u) in
                let rc = if rc < 0.0 then 0.0 else rc in
                let nd = d +. rc in
                if nd < dist.(u) -. 1e-12 then begin
                  dist.(u) <- nd;
                  pred_arc.(u) <- !a;
                  Rc_graph.Heap.push heap nd u
                end
              end;
              a := t.next.(!a)
            done
          end;
          loop ()
    in
    loop ();
    if dist.(sink) = infinity then continue := false
    else begin
      for v = 0 to t.n - 1 do
        if dist.(v) < infinity then pot.(v) <- pot.(v) +. dist.(v)
      done;
      (* bottleneck along the path *)
      let bottleneck = ref (amount - !total_flow) in
      let v = ref sink in
      while !v <> source do
        let a = pred_arc.(!v) in
        if t.caps.(a) < !bottleneck then bottleneck := t.caps.(a);
        v := t.heads.(a lxor 1)
      done;
      let f = !bottleneck in
      let v = ref sink in
      while !v <> source do
        let a = pred_arc.(!v) in
        t.caps.(a) <- t.caps.(a) - f;
        t.caps.(a lxor 1) <- t.caps.(a lxor 1) + f;
        total_cost := !total_cost +. (float_of_int f *. t.costs.(a));
        v := t.heads.(a lxor 1)
      done;
      total_flow := !total_flow + f;
      Rc_obs.Metrics.incr m_augmentations;
      Rc_obs.Metrics.add m_flow_units f
    end
  done;
  Rc_obs.Metrics.incr m_solves;
  { flow = !total_flow; cost = !total_cost }

let solve ?amount t ~source ~sink =
  let has_negative = ref false in
  for a = 0 to t.m - 1 do
    if t.caps.(a) > 0 && t.costs.(a) < 0.0 then has_negative := true
  done;
  let pot =
    if !has_negative then begin
      Rc_obs.Metrics.incr m_bf_runs;
      bellman_ford_potentials t source
    end
    else Array.make t.n 0.0
  in
  augment ?amount t ~pot ~source ~sink

let solve_warm ?amount t ~potentials ~source ~sink =
  augment ?amount t ~pot:potentials ~source ~sink

let feasible_potentials t ~source =
  Rc_obs.Metrics.incr m_bf_runs;
  bellman_ford_potentials t source

let set_cost t a cost =
  if a < 0 || a >= t.m then invalid_arg "Mcmf.set_cost: bad arc";
  t.costs.(a) <- cost;
  t.costs.(a lxor 1) <- -.cost

let cost_of t a =
  if a < 0 || a >= t.m then invalid_arg "Mcmf.cost_of: bad arc";
  t.costs.(a)

let unroute t a amount =
  if a < 0 || a >= t.m then invalid_arg "Mcmf.unroute: bad arc";
  if amount < 0 || amount > t.caps.(a lxor 1) then
    invalid_arg "Mcmf.unroute: amount exceeds routed flow";
  t.caps.(a) <- t.caps.(a) + amount;
  t.caps.(a lxor 1) <- t.caps.(a lxor 1) - amount

let m_cancellations = Rc_obs.Metrics.counter "netflow.mcmf.cycle_cancellations"

(* After unrouting some flow and rewriting arc costs, the retained flow
   may no longer be min-cost for its own value — the residual then holds
   a negative cycle, and successive shortest paths would build on a
   broken dual. One Klein step: Bellman-Ford from a virtual super-source
   (all distances start at 0); continued relaxation past n rounds proves
   a negative residual cycle, recovered by scanning the predecessor
   forest. Returns [Some arcs] around the cycle, [None] if the residual
   is clean, raises [Exit] in the (theoretically impossible) case where
   relaxation persists but no predecessor cycle is found. *)
let find_negative_cycle t =
  let dist = Array.make t.n 0.0 and pred = Array.make t.n (-1) in
  let tail a = t.heads.(a lxor 1) in
  let improving = ref true and rounds = ref 0 in
  while !improving && !rounds <= t.n do
    improving := false;
    incr rounds;
    for v = 0 to t.n - 1 do
      let a = ref t.first.(v) in
      while !a >= 0 do
        if t.caps.(!a) > 0 then begin
          let u = t.heads.(!a) in
          let nd = dist.(v) +. t.costs.(!a) in
          if nd < dist.(u) -. 1e-9 then begin
            dist.(u) <- nd;
            pred.(u) <- !a;
            improving := true
          end
        end;
        a := t.next.(!a)
      done
    done
  done;
  if not !improving then None
  else begin
    (* find a cycle in the predecessor forest *)
    let mark = Array.make t.n (-1) in
    let found = ref (-1) in
    let v = ref 0 in
    while !found < 0 && !v < t.n do
      if mark.(!v) < 0 then begin
        let u = ref !v in
        while !found < 0 && !u >= 0 && mark.(!u) < 0 do
          mark.(!u) <- !v;
          u := if pred.(!u) < 0 then -1 else tail pred.(!u)
        done;
        if !found < 0 && !u >= 0 && mark.(!u) = !v then found := !u
      end;
      incr v
    done;
    if !found < 0 then raise Exit;
    let arcs = ref [] and u = ref !found in
    let finished = ref false in
    while not !finished do
      let a = pred.(!u) in
      arcs := a :: !arcs;
      u := tail a;
      if !u = !found then finished := true
    done;
    Some !arcs
  end

let cancel_negative_cycles ?(limit = max_int) t =
  let cancelled = ref 0 and outcome = ref None and stop = ref false in
  (try
     while not !stop do
       if !cancelled > limit then stop := true
       else
         match find_negative_cycle t with
         | None ->
             outcome := Some !cancelled;
             stop := true
         | Some arcs ->
             let bottleneck =
               List.fold_left (fun acc a -> min acc t.caps.(a)) max_int arcs
             in
             List.iter
               (fun a ->
                 t.caps.(a) <- t.caps.(a) - bottleneck;
                 t.caps.(a lxor 1) <- t.caps.(a lxor 1) + bottleneck)
               arcs;
             incr cancelled;
             Rc_obs.Metrics.incr m_cancellations
     done
   with Exit -> ());
  !outcome

let flow_on t a =
  if a < 0 || a >= t.m then invalid_arg "Mcmf.flow_on: bad arc";
  (* flow on forward arc = residual capacity of its reverse arc *)
  t.caps.(a lxor 1)

let iter_residual t f =
  for a = 0 to t.m - 1 do
    if t.caps.(a) > 0 then begin
      (* tail of arc a is the head of its partner *)
      let src = t.heads.(a lxor 1) in
      f ~src ~dst:t.heads.(a) ~cost:t.costs.(a)
    end
  done

let n_vertices t = t.n

type candidate = { item : int; bin : int; cost : float }

type result = { assignment : int array; total_cost : float; assigned : int }

let validate ~n_items ~n_bins ~capacities candidates =
  if Array.length capacities <> n_bins then
    invalid_arg "Assignment.solve: capacities length mismatch";
  Array.iter
    (fun cap -> if cap < 0 then invalid_arg "Assignment.solve: negative capacity")
    capacities;
  List.iter
    (fun { item; bin; cost } ->
      if item < 0 || item >= n_items || bin < 0 || bin >= n_bins then
        invalid_arg "Assignment.solve: candidate out of range";
      if cost < 0.0 then invalid_arg "Assignment.solve: negative cost")
    candidates

(* vertices: 0 = source, 1..n_items = items, then bins, then sink *)
let build ~n_items ~n_bins ~capacities candidates =
  let source = 0 in
  let item_v i = 1 + i in
  let bin_v j = 1 + n_items + j in
  let sink = 1 + n_items + n_bins in
  let net = Mcmf.create (sink + 1) in
  let item_arcs =
    Array.init n_items (fun i ->
        Mcmf.add_arc net ~src:source ~dst:(item_v i) ~capacity:1 ~cost:0.0)
  in
  let bin_arcs =
    Array.init n_bins (fun j ->
        Mcmf.add_arc net ~src:(bin_v j) ~dst:sink ~capacity:capacities.(j) ~cost:0.0)
  in
  let cand_arcs =
    List.map
      (fun c ->
        let a =
          Mcmf.add_arc net ~src:(item_v c.item) ~dst:(bin_v c.bin) ~capacity:1 ~cost:c.cost
        in
        (c, a))
      candidates
  in
  (net, source, sink, item_arcs, bin_arcs, cand_arcs)

let solve ~n_items ~n_bins ~capacities candidates =
  validate ~n_items ~n_bins ~capacities candidates;
  let net, source, sink, _, _, cand_arcs = build ~n_items ~n_bins ~capacities candidates in
  let outcome = Mcmf.solve net ~source ~sink ~amount:n_items in
  let assignment = Array.make n_items (-1) in
  let total_cost = ref 0.0 in
  List.iter
    (fun ((c : candidate), a) ->
      if Mcmf.flow_on net a > 0 then begin
        assignment.(c.item) <- c.bin;
        total_cost := !total_cost +. c.cost
      end)
    cand_arcs;
  { assignment; total_cost = !total_cost; assigned = outcome.Mcmf.flow }

(* --- Warm-started solver: keeps the flow network of the previous solve
   alive across placement iterations so an unchanged candidate set is a
   pure replay and a mildly perturbed one only re-routes the items whose
   tapping costs actually moved. --- *)

type state = {
  net : Mcmf.t;
  source : int;
  sink : int;
  item_arcs : Mcmf.arc array;
  bin_arcs : Mcmf.arc array;
  cand_arcs : (candidate * Mcmf.arc) array;  (* insertion order of [build] *)
  pot : float array;  (* final duals of the last solve *)
  chosen : int array;  (* item -> index into cand_arcs, or -1 *)
  mutable last : result;
}

type solver = {
  s_n_items : int;
  s_n_bins : int;
  s_capacities : int array;
  mutable s_state : state option;
}

let m_replays = Rc_obs.Metrics.counter "netflow.assignment.replays"
let m_warm = Rc_obs.Metrics.counter "netflow.assignment.warm_solves"
let m_scratch = Rc_obs.Metrics.counter "netflow.assignment.scratch_solves"
let m_dirty = Rc_obs.Metrics.counter "netflow.assignment.dirty_items"

let make_solver ~n_items ~n_bins ~capacities =
  if Array.length capacities <> n_bins then
    invalid_arg "Assignment.make_solver: capacities length mismatch";
  { s_n_items = n_items; s_n_bins = n_bins; s_capacities = Array.copy capacities;
    s_state = None }

(* Read the routed flow back into a result, in candidate insertion order
   — the same traversal and summation order as {!solve}, so an identical
   chosen set yields bit-identical [total_cost]. *)
let read_result st n_items =
  let assignment = Array.make n_items (-1) in
  let total_cost = ref 0.0 and assigned = ref 0 in
  Array.fill st.chosen 0 n_items (-1);
  Array.iteri
    (fun k ((c : candidate), a) ->
      if Mcmf.flow_on st.net a > 0 then begin
        assignment.(c.item) <- c.bin;
        st.chosen.(c.item) <- k;
        total_cost := !total_cost +. c.cost
      end)
    st.cand_arcs;
  Array.iter (fun b -> if b >= 0 then incr assigned) assignment;
  let r = { assignment; total_cost = !total_cost; assigned = !assigned } in
  st.last <- r;
  r

let copy_result r = { r with assignment = Array.copy r.assignment }

let scratch solver cands =
  Rc_obs.Metrics.incr m_scratch;
  let n_items = solver.s_n_items in
  let net, source, sink, item_arcs, bin_arcs, cand_arcs =
    build ~n_items ~n_bins:solver.s_n_bins ~capacities:solver.s_capacities
      (Array.to_list cands)
  in
  let pot = Array.make (Mcmf.n_vertices net) 0.0 in
  (* all costs are non-negative, so a zero dual is feasible and this
     augmentation is step-for-step the one {!Mcmf.solve} would run — but
     [pot] ends up holding the final duals for the next warm start *)
  ignore (Mcmf.solve_warm net ~potentials:pot ~source ~sink ~amount:n_items);
  let st =
    { net; source; sink; item_arcs; bin_arcs; cand_arcs = Array.of_list cand_arcs;
      pot; chosen = Array.make n_items (-1);
      last = { assignment = [||]; total_cost = 0.0; assigned = 0 } }
  in
  solver.s_state <- Some st;
  read_result st n_items

(* cap on Klein cancellations before giving up on the warm path *)
let cancel_limit n_dirty = (4 * n_dirty) + 16

let warm solver st cands dirty n_dirty =
  let n_items = solver.s_n_items in
  (* 1. evict the routed paths of dirty items *)
  for i = 0 to n_items - 1 do
    if dirty.(i) && st.chosen.(i) >= 0 then begin
      let c, a = st.cand_arcs.(st.chosen.(i)) in
      Mcmf.unroute st.net st.item_arcs.(i) 1;
      Mcmf.unroute st.net a 1;
      Mcmf.unroute st.net st.bin_arcs.(c.bin) 1
    end
  done;
  (* 2. apply the cost deltas *)
  Array.iteri
    (fun k ((old : candidate), a) ->
      let c = cands.(k) in
      if c.cost <> old.cost then begin
        Mcmf.set_cost st.net a c.cost;
        st.cand_arcs.(k) <- (c, a)
      end)
    st.cand_arcs;
  (* 3. the retained (clean) flow may have lost optimality under the new
     costs; restore it, or bail out to a scratch solve *)
  match Mcmf.cancel_negative_cycles ~limit:(cancel_limit n_dirty) st.net with
  | None -> scratch solver cands
  | Some _ ->
      Rc_obs.Metrics.incr m_warm;
      Rc_obs.Metrics.add m_dirty n_dirty;
      (* 4. fresh feasible duals for the edited residual *)
      let pot = Mcmf.feasible_potentials st.net ~source:st.source in
      Array.blit pot 0 st.pot 0 (Array.length pot);
      (* 5. re-route only the evicted units *)
      ignore
        (Mcmf.solve_warm st.net ~potentials:st.pot ~source:st.source ~sink:st.sink
           ~amount:n_items);
      read_result st n_items

let warm_check_enabled () =
  match Sys.getenv_opt "ROTARY_WARM_CHECK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let solve_with ?(warm_threshold = 0.25) solver candidates =
  let n_items = solver.s_n_items in
  validate ~n_items ~n_bins:solver.s_n_bins ~capacities:solver.s_capacities candidates;
  let cands = Array.of_list candidates in
  (* every branch returns a copy so callers can't alias the cached state *)
  copy_result
    (match solver.s_state with
    | Some st
      when Array.length st.cand_arcs = Array.length cands
           && Array.for_all2
                (fun ((old : candidate), _) (c : candidate) ->
                  old.item = c.item && old.bin = c.bin)
                st.cand_arcs cands ->
        let dirty = Array.make n_items false in
        Array.iteri
          (fun k ((old : candidate), _) ->
            if cands.(k).cost <> old.cost then dirty.(old.item) <- true)
          st.cand_arcs;
        let n_dirty = Array.fold_left (fun n d -> if d then n + 1 else n) 0 dirty in
        if n_dirty = 0 then begin
          Rc_obs.Metrics.incr m_replays;
          st.last
        end
        else if float_of_int n_dirty > warm_threshold *. float_of_int (max 1 n_items)
        then scratch solver cands
        else begin
          let r = warm solver st cands dirty n_dirty in
          if warm_check_enabled () then begin
            let cold =
              solve ~n_items ~n_bins:solver.s_n_bins ~capacities:solver.s_capacities
                candidates
            in
            if cold.assignment <> r.assignment || cold.total_cost <> r.total_cost then
              failwith "Assignment.solve_with: warm solve diverged from cold solve"
          end;
          r
        end
    | _ -> scratch solver cands)

type edge = { src : int; dst : int; mutable weight : float; tag : int }

type t = { n : int; adj : edge list array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; adj = Array.make (max n 1) []; m = 0 }

let n_vertices g = g.n
let n_edges g = g.m

let check g v name =
  if v < 0 || v >= g.n then invalid_arg ("Digraph." ^ name ^ ": vertex out of range")

let add_edge_get ?(tag = -1) g u v w =
  check g u "add_edge";
  check g v "add_edge";
  let e = { src = u; dst = v; weight = w; tag } in
  g.adj.(u) <- e :: g.adj.(u);
  g.m <- g.m + 1;
  e

let add_edge ?tag g u v w = ignore (add_edge_get ?tag g u v w)

let set_weight (e : edge) w = e.weight <- w

let out_edges g v =
  check g v "out_edges";
  List.rev g.adj.(v)

let iter_out g v f =
  check g v "iter_out";
  List.iter f g.adj.(v)

let iter_edges g f =
  for v = 0 to g.n - 1 do
    List.iter f (List.rev g.adj.(v))
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun e -> acc := f !acc e);
  !acc

let in_degree g =
  let deg = Array.make g.n 0 in
  iter_edges g (fun e -> deg.(e.dst) <- deg.(e.dst) + 1);
  deg

(** Weighted directed graphs over integer vertices [0 .. n-1].

    This is the workhorse for static timing (combinational DAGs), skew
    scheduling (difference-constraint graphs), and the min-cost-flow
    residual network. Edges carry a float weight and an arbitrary
    payload index so algorithms can report which edge they used. *)

type edge = { src : int; dst : int; mutable weight : float; tag : int }

type t

val create : int -> t
(** [create n] is an empty graph on [n] vertices.
    @raise Invalid_argument if [n < 0]. *)

val n_vertices : t -> int
val n_edges : t -> int

val add_edge : ?tag:int -> t -> int -> int -> float -> unit
(** [add_edge g u v w] adds a directed edge [u -> v] of weight [w].
    Parallel edges are allowed. [tag] defaults to -1.
    @raise Invalid_argument on out-of-range vertices. *)

val add_edge_get : ?tag:int -> t -> int -> int -> float -> edge
(** Like {!add_edge} but returns the edge record, whose weight may later
    be rewritten in place with {!set_weight} — how the Δ binary search of
    cost-driven scheduling reuses one window graph across its probes. *)

val set_weight : edge -> float -> unit
(** Rewrite an edge's weight in place. The edge keeps its position in
    the adjacency structure, so iteration order is unchanged. *)

val out_edges : t -> int -> edge list
(** Outgoing edges of a vertex, in insertion order. *)

val iter_out : t -> int -> (edge -> unit) -> unit
(** Iterate a vertex's outgoing edges without allocating (reverse
    insertion order) — the hot path of the shortest-path solvers. *)

val iter_edges : t -> (edge -> unit) -> unit
(** Iterate over every edge once. *)

val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a

val in_degree : t -> int array
(** In-degree of every vertex (computed fresh on each call). *)

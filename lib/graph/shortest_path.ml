type result = { dist : float array; pred : int array }

let dijkstra_multi g ~sources =
  let n = Digraph.n_vertices g in
  let dist = Array.make n infinity and pred = Array.make n (-1) in
  let heap = Heap.create () in
  List.iter
    (fun s ->
      dist.(s) <- 0.0;
      Heap.push heap 0.0 s)
    sources;
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun (e : Digraph.edge) ->
              if e.weight < 0.0 then invalid_arg "Shortest_path.dijkstra: negative weight";
              let nd = d +. e.weight in
              if nd < dist.(e.dst) then begin
                dist.(e.dst) <- nd;
                pred.(e.dst) <- u;
                Heap.push heap nd e.dst
              end)
            (Digraph.out_edges g u);
        loop ()
  in
  loop ();
  { dist; pred }

let dijkstra g ~source = dijkstra_multi g ~sources:[ source ]

let extract_cycle pred start n =
  (* Walk predecessors with visit stamps; the first revisited vertex
     closes the cycle. Falls back to the start vertex alone if the
     current predecessor chain no longer carries the cycle (the caller
     only relies on infeasibility being reported). *)
  let seen = Hashtbl.create 16 in
  let rec walk v steps =
    if v < 0 || steps > 2 * (n + 1) then [ start ]
    else if Hashtbl.mem seen v then begin
      (* collect vertices from v around the predecessor cycle *)
      let cycle = ref [] and u = ref (pred.(v)) in
      cycle := [ v ];
      while !u <> v && !u >= 0 do
        cycle := !u :: !cycle;
        u := pred.(!u)
      done;
      !cycle
    end
    else begin
      Hashtbl.add seen v ();
      walk pred.(v) (steps + 1)
    end
  in
  walk start 0

(* Predecessor-forest cycle check: any cycle among the pred pointers
   certifies a negative cycle (each pointer was set by a strictly
   improving relaxation, and distances only decrease, so the cycle's
   weight sum is < 0). Returns a vertex on such a cycle, or -1. *)
let pred_cycle pred mark n =
  Array.fill mark 0 n (-1);
  let found = ref (-1) in
  let v = ref 0 in
  while !found < 0 && !v < n do
    if mark.(!v) < 0 then begin
      (* walk up the chain, stamping with this walk's root; hitting our
         own stamp closes a cycle, an older stamp merges into a chain
         already cleared *)
      let u = ref !v in
      while !found < 0 && !u >= 0 && mark.(!u) < 0 do
        mark.(!u) <- !v;
        u := pred.(!u)
      done;
      if !found < 0 && !u >= 0 && mark.(!u) = !v then found := !u
    end;
    incr v
  done;
  !found

(* Queue-based Bellman-Ford (SPFA): near-linear on the sparse
   difference-constraint graphs of skew scheduling. A vertex dequeued
   more than |V| times certifies a reachable negative cycle; on
   infeasible graphs that certificate is O(|V|·|E|), so the predecessor
   forest is additionally scanned for a cycle every ~|V| successful
   relaxations — amortized O(1) per relaxation, and it fires as soon as
   the negative cycle materializes instead of after |V| revisits.
   Feasible graphs never grow a predecessor cycle, so their distance
   output (and hence every caller-visible result) is unchanged. *)
let bellman_ford g ~sources =
  let n = Digraph.n_vertices g in
  let dist = Array.make n infinity and pred = Array.make n (-1) in
  let in_queue = Array.make n false and dequeues = Array.make n 0 in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) <> 0.0 then begin
        dist.(s) <- 0.0;
        in_queue.(s) <- true;
        Queue.add s queue
      end)
    sources;
  let cycle_at = ref (-1) in
  let mark = Array.make (max n 1) (-1) in
  let relaxations = ref 0 in
  let check_every = max 64 n in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       in_queue.(u) <- false;
       dequeues.(u) <- dequeues.(u) + 1;
       if dequeues.(u) > n then begin
         cycle_at := u;
         raise Exit
       end;
       Digraph.iter_out g u (fun (e : Digraph.edge) ->
           let nd = dist.(u) +. e.weight in
           if nd < dist.(e.dst) -. 1e-12 then begin
             dist.(e.dst) <- nd;
             pred.(e.dst) <- u;
             incr relaxations;
             if !relaxations >= check_every then begin
               relaxations := 0;
               let c = pred_cycle pred mark n in
               if c >= 0 then begin
                 cycle_at := c;
                 raise Exit
               end
             end;
             if not in_queue.(e.dst) then begin
               in_queue.(e.dst) <- true;
               Queue.add e.dst queue
             end
           end)
     done
   with Exit -> ());
  if !cycle_at >= 0 then Either.Right (extract_cycle pred !cycle_at n)
  else Either.Left { dist; pred }

let feasible_potentials g =
  let sources = List.init (Digraph.n_vertices g) Fun.id in
  match bellman_ford g ~sources with
  | Either.Left { dist; _ } -> Some dist
  | Either.Right _ -> None

let path_to r v =
  if v < 0 || v >= Array.length r.dist || r.dist.(v) = infinity then None
  else begin
    let rec build acc u = if u = -1 then acc else build (u :: acc) r.pred.(u) in
    Some (build [] v)
  end

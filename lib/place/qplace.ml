open Rc_geom
open Rc_netlist

type pseudo_net = { cell : int; anchor : Point.t; weight : float }

type result = {
  positions : Point.t array;
  hpwl : float;
  solver_iterations : int;
}

(* ---- quadratic system assembly ------------------------------------- *)

type system = {
  movable : int array;  (* movable cell ids *)
  index : int array;  (* cell id -> movable index or -1 *)
  matrix : Rc_sparse.Csr.t;
  rhs_x : float array;
  rhs_y : float array;
}

let center_anchor_weight = 1e-6

(* growable parallel entry buffer feeding Csr.of_entries; pushes happen
   in the same program order the old code prepended triplets, so the
   assembled matrix is bit-identical to the of_triplets path *)
type ebuf = {
  mutable ei : int array;
  mutable ej : int array;
  mutable ev : float array;
  mutable en : int;
}

let ebuf_create () = { ei = Array.make 1024 0; ej = Array.make 1024 0; ev = Array.make 1024 0.0; en = 0 }

let ebuf_push b i j v =
  if b.en = Array.length b.ei then begin
    let c = 2 * b.en in
    let gi = Array.make c 0 and gj = Array.make c 0 and gv = Array.make c 0.0 in
    Array.blit b.ei 0 gi 0 b.en;
    Array.blit b.ej 0 gj 0 b.en;
    Array.blit b.ev 0 gv 0 b.en;
    b.ei <- gi;
    b.ej <- gj;
    b.ev <- gv
  end;
  b.ei.(b.en) <- i;
  b.ej.(b.en) <- j;
  b.ev.(b.en) <- v;
  b.en <- b.en + 1

let movable_index netlist =
  let n = Netlist.n_cells netlist in
  let index = Array.make n (-1) in
  let m = ref 0 in
  for c = 0 to n - 1 do
    if Netlist.movable netlist c then incr m
  done;
  let movable = Array.make !m 0 in
  let i = ref 0 in
  for c = 0 to n - 1 do
    if Netlist.movable netlist c then begin
      movable.(!i) <- c;
      index.(c) <- !i;
      incr i
    end
  done;
  (movable, index)

let build_system netlist ~chip ~extra_springs =
  let movable, index = movable_index netlist in
  let m = Array.length movable in
  let buf = ebuf_create () in
  let rhs_x = Array.make m 0.0 and rhs_y = Array.make m 0.0 in
  let add_diag i w = ebuf_push buf i i w in
  let add_pair i j w =
    ebuf_push buf i i w;
    ebuf_push buf j j w;
    ebuf_push buf i j (-.w);
    ebuf_push buf j i (-.w)
  in
  let add_fixed i w (p : Point.t) =
    add_diag i w;
    rhs_x.(i) <- rhs_x.(i) +. (w *. p.Point.x);
    rhs_y.(i) <- rhs_y.(i) +. (w *. p.Point.y)
  in
  let connect a b w =
    match (index.(a), index.(b)) with
    | -1, -1 -> ()
    | ia, -1 -> add_fixed ia w (Netlist.pad_position netlist b)
    | -1, ib -> add_fixed ib w (Netlist.pad_position netlist a)
    | ia, ib -> if ia <> ib then add_pair ia ib w
  in
  Netlist.iter_nets netlist (fun _ net ->
      let k = 1 + Array.length net.sinks in
      let w = 2.0 /. float_of_int k in
      Array.iter (fun s -> connect net.driver s w) net.sinks);
  (* regularization: tie every movable cell very weakly to die center *)
  let c = Rect.center chip in
  for i = 0 to m - 1 do
    add_fixed i center_anchor_weight c
  done;
  List.iter
    (fun (cell, p, w) -> if index.(cell) >= 0 then add_fixed index.(cell) w p)
    extra_springs;
  let matrix = Rc_sparse.Csr.of_entries ~rows:m ~cols:m ~len:buf.en buf.ei buf.ej buf.ev in
  { movable; index; matrix; rhs_x; rhs_y }

(* The x and y systems share the matrix but are otherwise independent —
   the flow's first hot kernel.  With jobs > 1 the two CG solves run on
   two domains (each on its own workspace); each solve is sequential
   internally, so the results are bit-identical to the one-domain path.
   Below ~512 unknowns one CG solve finishes faster than the pool
   region starts, so small systems stay in the calling domain. *)
let solve_system ?wsx ?wsy ?x0 ?y0 sys =
  let rx, ry =
    Rc_par.Pool.both
      ~parallel:(Array.length sys.rhs_x >= 512)
      (fun () -> Rc_sparse.Cg.solve ?ws:wsx ?x0 ~tol:1e-7 sys.matrix sys.rhs_x)
      (fun () -> Rc_sparse.Cg.solve ?ws:wsy ?x0:y0 ~tol:1e-7 sys.matrix sys.rhs_y)
  in
  (rx.Rc_sparse.Cg.x, ry.Rc_sparse.Cg.x, rx.Rc_sparse.Cg.iterations + ry.Rc_sparse.Cg.iterations)

let assemble_positions netlist sys xs ys =
  let n = Netlist.n_cells netlist in
  Array.init n (fun c ->
      if sys.index.(c) >= 0 then Point.make xs.(sys.index.(c)) ys.(sys.index.(c))
      else Netlist.pad_position netlist c)

(* ---- recursive-bisection spreading targets -------------------------- *)

let spreading_targets rng chip m xs ys =
  let targets = Array.make m Point.zero in
  (* indices into the movable arrays *)
  let idx = Array.init m Fun.id in
  let rec go (region : Rect.t) lo hi horizontal =
    let count = hi - lo in
    if count <= 2 then
      for k = lo to hi - 1 do
        let jx = Rc_util.Rng.float_in rng 0.3 0.7 and jy = Rc_util.Rng.float_in rng 0.3 0.7 in
        targets.(idx.(k)) <-
          Point.make
            (region.Rect.xmin +. (jx *. Rect.width region))
            (region.Rect.ymin +. (jy *. Rect.height region))
      done
    else begin
      let sub = Array.sub idx lo count in
      if horizontal then
        Array.sort (fun a b -> compare xs.(a) xs.(b)) sub
      else Array.sort (fun a b -> compare ys.(a) ys.(b)) sub;
      Array.blit sub 0 idx lo count;
      let mid = lo + (count / 2) in
      let frac = float_of_int (mid - lo) /. float_of_int count in
      if horizontal then begin
        let split = region.Rect.xmin +. (frac *. Rect.width region) in
        go (Rect.make ~xmin:region.Rect.xmin ~ymin:region.Rect.ymin ~xmax:split
              ~ymax:region.Rect.ymax) lo mid (not horizontal);
        go (Rect.make ~xmin:split ~ymin:region.Rect.ymin ~xmax:region.Rect.xmax
              ~ymax:region.Rect.ymax) mid hi (not horizontal)
      end
      else begin
        let split = region.Rect.ymin +. (frac *. Rect.height region) in
        go (Rect.make ~xmin:region.Rect.xmin ~ymin:region.Rect.ymin ~xmax:region.Rect.xmax
              ~ymax:split) lo mid (not horizontal);
        go (Rect.make ~xmin:region.Rect.xmin ~ymin:split ~xmax:region.Rect.xmax
              ~ymax:region.Rect.ymax) mid hi (not horizontal)
      end
    end
  in
  go chip 0 m (Rect.width chip >= Rect.height chip);
  targets

(* ---- legalization ---------------------------------------------------- *)

let legalize netlist ~chip ~site positions =
  if site <= 0.0 then invalid_arg "Qplace.legalize: non-positive site pitch";
  let nx = max 1 (int_of_float (Rect.width chip /. site)) in
  let ny = max 1 (int_of_float (Rect.height chip /. site)) in
  let occupied = Hashtbl.create 1024 in
  let site_center ix iy =
    Point.make
      (chip.Rect.xmin +. ((float_of_int ix +. 0.5) *. site))
      (chip.Rect.ymin +. ((float_of_int iy +. 0.5) *. site))
  in
  let clamp v lo hi = max lo (min hi v) in
  let out = Array.copy positions in
  let n = Netlist.n_cells netlist in
  for c = 0 to n - 1 do
    if Netlist.movable netlist c then begin
      let p = positions.(c) in
      let ix0 = clamp (int_of_float ((p.Point.x -. chip.Rect.xmin) /. site)) 0 (nx - 1) in
      let iy0 = clamp (int_of_float ((p.Point.y -. chip.Rect.ymin) /. site)) 0 (ny - 1) in
      (* spiral outward over Chebyshev rings until a free in-bounds site *)
      let placed = ref false and r = ref 0 in
      while not !placed do
        let best = ref None in
        let consider ix iy =
          if ix >= 0 && ix < nx && iy >= 0 && iy < ny && not (Hashtbl.mem occupied (ix, iy))
          then begin
            let d = Point.manhattan p (site_center ix iy) in
            match !best with
            | Some (bd, _, _) when bd <= d -> ()
            | _ -> best := Some (d, ix, iy)
          end
        in
        if !r = 0 then consider ix0 iy0
        else begin
          for dx = - !r to !r do
            consider (ix0 + dx) (iy0 - !r);
            consider (ix0 + dx) (iy0 + !r)
          done;
          for dy = - !r + 1 to !r - 1 do
            consider (ix0 - !r) (iy0 + dy);
            consider (ix0 + !r) (iy0 + dy)
          done
        end;
        (match !best with
        | Some (_, ix, iy) ->
            Hashtbl.replace occupied (ix, iy) ();
            out.(c) <- site_center ix iy;
            placed := true
        | None ->
            incr r;
            if !r > nx + ny then failwith "Qplace.legalize: no free site found")
      done
    end
  done;
  out

(* ---- multilevel V-cycle (mPL-style clustered placement) -------------- *)

(* Above this many movable cells [initial] switches from the flat
   solve-and-spread schedule to the V-cycle below; every Table II
   circuit sits far under it, so the paper path stays bit-identical. *)
let multilevel_threshold = 50_000

(* stop coarsening once a level is this small: CG is cheap there and
   the bisection spreading still has room to work.  Scaled down for
   circuits (or tests) that enter the V-cycle near the threshold, so
   they still see a real cluster hierarchy. *)
let coarse_target m = max 2_000 (min 12_000 (m / 8))

(* A placement level: the star-model connectivity graph over movable
   vertices plus per-vertex fixed-anchor accumulators (pad connections,
   center regularization).  Fixed anchors are stored pre-multiplied
   (Σw, Σw·x, Σw·y) so coarsening them is pure accumulation. *)
type mgraph = {
  gm : int;  (* vertices *)
  ges : int array;  (* undirected edge endpoints, one slot per edge *)
  ged : int array;
  gew : float array;
  gne : int;
  gfw : float array;  (* per-vertex Σ anchor weight *)
  gfx : float array;  (* per-vertex Σ weight · anchor.x *)
  gfy : float array;
}

let mgraph_of_netlist netlist ~chip ~index ~m =
  let buf = ebuf_create () in
  let gfw = Array.make m 0.0 and gfx = Array.make m 0.0 and gfy = Array.make m 0.0 in
  let fixed i w (p : Point.t) =
    gfw.(i) <- gfw.(i) +. w;
    gfx.(i) <- gfx.(i) +. (w *. p.Point.x);
    gfy.(i) <- gfy.(i) +. (w *. p.Point.y)
  in
  let connect a b w =
    match (index.(a), index.(b)) with
    | -1, -1 -> ()
    | ia, -1 -> fixed ia w (Netlist.pad_position netlist b)
    | -1, ib -> fixed ib w (Netlist.pad_position netlist a)
    | ia, ib -> if ia <> ib then ebuf_push buf ia ib w
  in
  Netlist.iter_nets netlist (fun _ net ->
      let k = 1 + Array.length net.sinks in
      let w = 2.0 /. float_of_int k in
      Array.iter (fun s -> connect net.driver s w) net.sinks);
  let c = Rect.center chip in
  for i = 0 to m - 1 do
    fixed i center_anchor_weight c
  done;
  { gm = m; ges = buf.ei; ged = buf.ej; gew = buf.ev; gne = buf.en; gfw; gfx; gfy }

(* quadratic system of one level, optionally with uniform spreading
   springs of strength [alpha] toward per-vertex [targets] *)
let system_of_mgraph g ~springs =
  let buf = ebuf_create () in
  for e = 0 to g.gne - 1 do
    let i = g.ges.(e) and j = g.ged.(e) and w = g.gew.(e) in
    ebuf_push buf i i w;
    ebuf_push buf j j w;
    ebuf_push buf i j (-.w);
    ebuf_push buf j i (-.w)
  done;
  let rhs_x = Array.make g.gm 0.0 and rhs_y = Array.make g.gm 0.0 in
  for i = 0 to g.gm - 1 do
    let w, wx, wy =
      match springs with
      | None -> (g.gfw.(i), g.gfx.(i), g.gfy.(i))
      | Some (targets, alpha) ->
          let (t : Point.t) = targets.(i) in
          ( g.gfw.(i) +. alpha,
            g.gfx.(i) +. (alpha *. t.Point.x),
            g.gfy.(i) +. (alpha *. t.Point.y) )
    in
    if w <> 0.0 then ebuf_push buf i i w;
    rhs_x.(i) <- wx;
    rhs_y.(i) <- wy
  done;
  let matrix = Rc_sparse.Csr.of_entries ~rows:g.gm ~cols:g.gm ~len:buf.en buf.ei buf.ej buf.ev in
  (matrix, rhs_x, rhs_y)

(* one level of first-choice / heavy-edge coarsening: match each vertex
   (in index order) to its heaviest still-unmatched neighbor, merge the
   pairs, remap edges and accumulate anchors.  Cross-cluster multi-edges
   are merged by a keyed sort so every level's graph stays canonical. *)
let coarsen g =
  let m = g.gm in
  (* adjacency CSR over both edge directions *)
  let ptr = Array.make (m + 1) 0 in
  for e = 0 to g.gne - 1 do
    ptr.(g.ges.(e) + 1) <- ptr.(g.ges.(e) + 1) + 1;
    ptr.(g.ged.(e) + 1) <- ptr.(g.ged.(e) + 1) + 1
  done;
  for i = 1 to m do
    ptr.(i) <- ptr.(i) + ptr.(i - 1)
  done;
  let adj_v = Array.make (2 * g.gne) 0 and adj_w = Array.make (2 * g.gne) 0.0 in
  let cursor = Array.copy ptr in
  for e = 0 to g.gne - 1 do
    let u = g.ges.(e) and v = g.ged.(e) and w = g.gew.(e) in
    adj_v.(cursor.(u)) <- v;
    adj_w.(cursor.(u)) <- w;
    cursor.(u) <- cursor.(u) + 1;
    adj_v.(cursor.(v)) <- u;
    adj_w.(cursor.(v)) <- w;
    cursor.(v) <- cursor.(v) + 1
  done;
  let mate = Array.make m (-1) in
  for v = 0 to m - 1 do
    if mate.(v) < 0 then begin
      let best = ref (-1) and best_w = ref neg_infinity in
      for k = ptr.(v) to ptr.(v + 1) - 1 do
        let u = adj_v.(k) in
        if u <> v && mate.(u) < 0 && adj_w.(k) > !best_w then begin
          best := u;
          best_w := adj_w.(k)
        end
      done;
      if !best >= 0 then begin
        mate.(v) <- !best;
        mate.(!best) <- v
      end
      else mate.(v) <- v
    end
  done;
  let map = Array.make m (-1) in
  let mc = ref 0 in
  for v = 0 to m - 1 do
    if map.(v) < 0 then begin
      map.(v) <- !mc;
      if mate.(v) <> v then map.(mate.(v)) <- !mc;
      incr mc
    end
  done;
  let mc = !mc in
  let gfw = Array.make mc 0.0 and gfx = Array.make mc 0.0 and gfy = Array.make mc 0.0 in
  for v = 0 to m - 1 do
    let c = map.(v) in
    gfw.(c) <- gfw.(c) +. g.gfw.(v);
    gfx.(c) <- gfx.(c) +. g.gfx.(v);
    gfy.(c) <- gfy.(c) +. g.gfy.(v)
  done;
  (* surviving cross-cluster edges, normalized u < v and keyed for the
     duplicate merge *)
  let keep = Array.make g.gne 0 and nkeep = ref 0 in
  for e = 0 to g.gne - 1 do
    if map.(g.ges.(e)) <> map.(g.ged.(e)) then begin
      keep.(!nkeep) <- e;
      incr nkeep
    end
  done;
  let nkeep = !nkeep in
  let perm = Array.sub keep 0 nkeep in
  let key e =
    let u = map.(g.ges.(e)) and v = map.(g.ged.(e)) in
    if u < v then (u * mc) + v else (v * mc) + u
  in
  Array.sort
    (fun a b ->
      let c = compare (key a) (key b) in
      if c <> 0 then c else compare a b)
    perm;
  let ces = Array.make nkeep 0 and ced = Array.make nkeep 0 and cew = Array.make nkeep 0.0 in
  let out = ref 0 and k = ref 0 in
  while !k < nkeep do
    let ka = key perm.(!k) in
    let acc = ref g.gew.(perm.(!k)) in
    incr k;
    while !k < nkeep && key perm.(!k) = ka do
      acc := !acc +. g.gew.(perm.(!k));
      incr k
    done;
    ces.(!out) <- ka / mc;
    ced.(!out) <- ka mod mc;
    cew.(!out) <- !acc;
    incr out
  done;
  (map, { gm = mc; ges = ces; ged = ced; gew = cew; gne = !out; gfw; gfx; gfy })

(* the V-cycle: coarsen to [coarse_target], solve and spread there, then
   interpolate down the chain with one warm-started spreading relaxation
   per level (two at the finest, ending on the flat schedule's final
   anchor strength 0.01·2⁵) *)
let initial_multilevel ~seed netlist ~chip =
  let rng = Rc_util.Rng.create seed in
  let movable, index = movable_index netlist in
  let m = Array.length movable in
  let g0 = mgraph_of_netlist netlist ~chip ~index ~m in
  let coarse_target = coarse_target m in
  let rec chain acc g =
    if g.gm <= coarse_target then (acc, g)
    else
      let map, gc = coarsen g in
      (* a stalled level (under 10% reduction) would only add cost *)
      if gc.gm * 10 >= g.gm * 9 then (acc, g) else chain ((g, map) :: acc) gc
  in
  let levels, coarsest = chain [] g0 in
  let iters = ref 0 in
  let xs = ref [||] and ys = ref [||] in
  Rc_par.Pool.region (fun () ->
      let relax g ~wsx ~wsy ~springs ~x0 ~y0 =
        let matrix, rhs_x, rhs_y = system_of_mgraph g ~springs in
        let x, y, it =
          solve_system ~wsx ~wsy ?x0 ?y0
            { movable = [||]; index = [||]; matrix; rhs_x; rhs_y }
        in
        iters := !iters + it;
        (x, y)
      in
      (* coarsest level: cold connectivity solve + early spreading *)
      let wsx = Rc_sparse.Cg.workspace coarsest.gm
      and wsy = Rc_sparse.Cg.workspace coarsest.gm in
      let x, y = relax coarsest ~wsx ~wsy ~springs:None ~x0:None ~y0:None in
      xs := x;
      ys := y;
      List.iter
        (fun alpha ->
          let targets = spreading_targets rng chip coarsest.gm !xs !ys in
          let x, y =
            relax coarsest ~wsx ~wsy ~springs:(Some (targets, alpha)) ~x0:(Some !xs)
              ~y0:(Some !ys)
          in
          xs := x;
          ys := y)
        [ 0.02; 0.04 ];
      (* refinement sweep, finest level last *)
      List.iter
        (fun (g, map) ->
          let xf = Array.make g.gm 0.0 and yf = Array.make g.gm 0.0 in
          for i = 0 to g.gm - 1 do
            xf.(i) <- !xs.(map.(i));
            yf.(i) <- !ys.(map.(i))
          done;
          xs := xf;
          ys := yf;
          let wsx = Rc_sparse.Cg.workspace g.gm and wsy = Rc_sparse.Cg.workspace g.gm in
          let alphas = if g == g0 then [ 0.16; 0.32 ] else [ 0.08 ] in
          List.iter
            (fun alpha ->
              let targets = spreading_targets rng chip g.gm !xs !ys in
              let x, y =
                relax g ~wsx ~wsy ~springs:(Some (targets, alpha)) ~x0:(Some !xs)
                  ~y0:(Some !ys)
              in
              xs := x;
              ys := y)
            alphas)
        levels);
  let n = Netlist.n_cells netlist in
  let spread =
    Array.init n (fun c ->
        if index.(c) >= 0 then Point.make !xs.(index.(c)) !ys.(index.(c))
        else Netlist.pad_position netlist c)
  in
  let legal = legalize netlist ~chip ~site:10.0 spread in
  { positions = legal; hpwl = Wirelength.total netlist legal; solver_iterations = !iters }

(* ---- top-level entry points ------------------------------------------ *)

let initial_flat ~seed ~spread_rounds netlist ~chip =
  let rng = Rc_util.Rng.create seed in
  let iters = ref 0 in
  (* pass 1: pure connectivity solve *)
  let sys0 = build_system netlist ~chip ~extra_springs:[] in
  (* every round solves the same-size system: share two CG workspaces
     (one per axis — the solves run concurrently) across all rounds *)
  let m = Array.length sys0.movable in
  let wsx = Rc_sparse.Cg.workspace m and wsy = Rc_sparse.Cg.workspace m in
  let xs = ref [||] and ys = ref [||] in
  (* one batch region for the whole spreading stage: every round's x/y
     solve pair publishes a sub-job to the captive workers instead of
     waking the pool per solve *)
  Rc_par.Pool.region (fun () ->
      let x0, y0, it0 = solve_system ~wsx ~wsy sys0 in
      xs := x0;
      ys := y0;
      iters := !iters + it0;
      (* spreading rounds with growing anchor strength *)
      for round = 1 to spread_rounds do
        let targets = spreading_targets rng chip (Array.length sys0.movable) !xs !ys in
        let alpha = 0.01 *. (2.0 ** float_of_int round) in
        let springs =
          Array.to_list
            (Array.mapi (fun i c -> (c, targets.(i), alpha)) sys0.movable)
        in
        let sys = build_system netlist ~chip ~extra_springs:springs in
        let x, y, it = solve_system ~wsx ~wsy ~x0:!xs ~y0:!ys sys in
        xs := x;
        ys := y;
        iters := !iters + it
      done);
  let spread = assemble_positions netlist sys0 !xs !ys in
  let legal = legalize netlist ~chip ~site:10.0 spread in
  { positions = legal; hpwl = Wirelength.total netlist legal; solver_iterations = !iters }

(* [initial] keeps the paper circuits (well under the threshold) on the
   flat schedule byte for byte; the scaling suite takes the V-cycle *)
let initial ?(seed = 7) ?(spread_rounds = 5)
    ?(multilevel_threshold = multilevel_threshold) netlist ~chip =
  let n = Netlist.n_cells netlist in
  let m = ref 0 in
  for c = 0 to n - 1 do
    if Netlist.movable netlist c then incr m
  done;
  if !m >= multilevel_threshold then initial_multilevel ~seed netlist ~chip
  else initial_flat ~seed ~spread_rounds netlist ~chip

let incremental ?(stability = 0.004) netlist ~chip ~prev ~pseudo =
  let n = Netlist.n_cells netlist in
  if Array.length prev <> n then invalid_arg "Qplace.incremental: prev length mismatch";
  let rng = Rc_util.Rng.create 23 in
  let base_springs =
    List.filter_map
      (fun c -> if Netlist.movable netlist c then Some (c, prev.(c), stability) else None)
      (List.init n Fun.id)
    @ List.map (fun pn -> (pn.cell, pn.anchor, pn.weight)) pseudo
  in
  let sys0 = build_system netlist ~chip ~extra_springs:base_springs in
  let m = Array.length sys0.movable in
  let wsx = Rc_sparse.Cg.workspace m and wsy = Rc_sparse.Cg.workspace m in
  let x0 = Array.make m 0.0 and y0 = Array.make m 0.0 in
  Array.iteri
    (fun i c ->
      x0.(i) <- prev.(c).Point.x;
      y0.(i) <- prev.(c).Point.y)
    sys0.movable;
  let xs = ref x0 and ys = ref y0 and iters = ref 0 in
  (* same batch-region discipline as [initial] *)
  Rc_par.Pool.region (fun () ->
      let x, y, it = solve_system ~wsx ~wsy ~x0:!xs ~y0:!ys sys0 in
      xs := x;
      ys := y;
      iters := !iters + it;
      (* keep the density profile of the initial placement: the same
         bisection-spreading rounds, ending at the strength the initial
         pass ends with (0.01·2⁵), so incremental results stay
         comparable *)
      for round = 3 to 5 do
        let targets = spreading_targets rng chip (Array.length sys0.movable) !xs !ys in
        let alpha = 0.01 *. (2.0 ** float_of_int round) in
        let springs =
          base_springs
          @ Array.to_list (Array.mapi (fun i c -> (c, targets.(i), alpha)) sys0.movable)
        in
        let sys = build_system netlist ~chip ~extra_springs:springs in
        let x, y, it = solve_system ~wsx ~wsy ~x0:!xs ~y0:!ys sys in
        xs := x;
        ys := y;
        iters := !iters + it
      done);
  let spread = assemble_positions netlist sys0 !xs !ys in
  let legal = legalize netlist ~chip ~site:10.0 spread in
  { positions = legal; hpwl = Wirelength.total netlist legal; solver_iterations = !iters }

let relocate netlist ~chip ~site ~prev ~pseudo =
  if site <= 0.0 then invalid_arg "Qplace.relocate: non-positive site pitch";
  let n = Netlist.n_cells netlist in
  if Array.length prev <> n then invalid_arg "Qplace.relocate: prev length mismatch";
  let pos = Array.copy prev in
  let nx = max 1 (int_of_float (Rect.width chip /. site)) in
  let ny = max 1 (int_of_float (Rect.height chip /. site)) in
  let clampi v hi = max 0 (min hi v) in
  let site_of (p : Point.t) =
    ( clampi (int_of_float ((p.Point.x -. chip.Rect.xmin) /. site)) (nx - 1),
      clampi (int_of_float ((p.Point.y -. chip.Rect.ymin) /. site)) (ny - 1) )
  in
  let site_center ix iy =
    Point.make
      (chip.Rect.xmin +. ((float_of_int ix +. 0.5) *. site))
      (chip.Rect.ymin +. ((float_of_int iy +. 0.5) *. site))
  in
  let occ = Hashtbl.create 1024 in
  for c = 0 to n - 1 do
    if Netlist.movable netlist c then Hashtbl.replace occ (site_of pos.(c)) c
  done;
  List.iter
    (fun { cell; anchor; weight } ->
      if cell < 0 || cell >= n || not (Netlist.movable netlist cell) then
        invalid_arg "Qplace.relocate: bad pseudo-net cell";
      let lambda = Float.max 0.0 weight /. (Float.max 0.0 weight +. 1.0) in
      let target =
        Rect.clamp_point chip
          (Point.add (Point.scale (1.0 -. lambda) pos.(cell)) (Point.scale lambda anchor))
      in
      (* free the old site, spiral to a free site near the target *)
      Hashtbl.remove occ (site_of pos.(cell));
      let tix, tiy = site_of target in
      let placed = ref false and r = ref 0 in
      while not !placed do
        let best = ref None in
        let consider ix iy =
          if ix >= 0 && ix < nx && iy >= 0 && iy < ny && not (Hashtbl.mem occ (ix, iy))
          then begin
            let d = Point.manhattan target (site_center ix iy) in
            match !best with
            | Some (bd, _, _) when bd <= d -> ()
            | _ -> best := Some (d, ix, iy)
          end
        in
        if !r = 0 then consider tix tiy
        else begin
          for dx = - !r to !r do
            consider (tix + dx) (tiy - !r);
            consider (tix + dx) (tiy + !r)
          done;
          for dy = - !r + 1 to !r - 1 do
            consider (tix - !r) (tiy + dy);
            consider (tix + !r) (tiy + dy)
          done
        end;
        (match !best with
        | Some (_, ix, iy) ->
            Hashtbl.replace occ (ix, iy) cell;
            pos.(cell) <- site_center ix iy;
            placed := true
        | None ->
            incr r;
            if !r > nx + ny then failwith "Qplace.relocate: no free site")
      done)
    pseudo;
  pos

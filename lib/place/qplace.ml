open Rc_geom
open Rc_netlist

type pseudo_net = { cell : int; anchor : Point.t; weight : float }

type result = {
  positions : Point.t array;
  hpwl : float;
  solver_iterations : int;
}

(* ---- quadratic system assembly ------------------------------------- *)

type system = {
  movable : int array;  (* movable cell ids *)
  index : int array;  (* cell id -> movable index or -1 *)
  matrix : Rc_sparse.Csr.t;
  rhs_x : float array;
  rhs_y : float array;
}

let center_anchor_weight = 1e-6

let build_system netlist ~chip ~extra_springs =
  let n = Netlist.n_cells netlist in
  let index = Array.make n (-1) in
  let movable =
    Array.of_list
      (List.filter (fun c -> Netlist.movable netlist c) (List.init n Fun.id))
  in
  Array.iteri (fun i c -> index.(c) <- i) movable;
  let m = Array.length movable in
  let triplets = ref [] in
  let rhs_x = Array.make m 0.0 and rhs_y = Array.make m 0.0 in
  let add_diag i w = triplets := (i, i, w) :: !triplets in
  let add_pair i j w =
    triplets := (i, i, w) :: (j, j, w) :: (i, j, -.w) :: (j, i, -.w) :: !triplets
  in
  let add_fixed i w (p : Point.t) =
    add_diag i w;
    rhs_x.(i) <- rhs_x.(i) +. (w *. p.Point.x);
    rhs_y.(i) <- rhs_y.(i) +. (w *. p.Point.y)
  in
  let connect a b w =
    match (index.(a), index.(b)) with
    | -1, -1 -> ()
    | ia, -1 -> add_fixed ia w (Netlist.pad_position netlist b)
    | -1, ib -> add_fixed ib w (Netlist.pad_position netlist a)
    | ia, ib -> if ia <> ib then add_pair ia ib w
  in
  Netlist.iter_nets netlist (fun _ net ->
      let k = 1 + Array.length net.sinks in
      let w = 2.0 /. float_of_int k in
      Array.iter (fun s -> connect net.driver s w) net.sinks);
  (* regularization: tie every movable cell very weakly to die center *)
  let c = Rect.center chip in
  for i = 0 to m - 1 do
    add_fixed i center_anchor_weight c
  done;
  List.iter
    (fun (cell, p, w) -> if index.(cell) >= 0 then add_fixed index.(cell) w p)
    extra_springs;
  let matrix = Rc_sparse.Csr.of_triplets ~rows:m ~cols:m !triplets in
  { movable; index; matrix; rhs_x; rhs_y }

(* The x and y systems share the matrix but are otherwise independent —
   the flow's first hot kernel.  With jobs > 1 the two CG solves run on
   two domains (each on its own workspace); each solve is sequential
   internally, so the results are bit-identical to the one-domain path.
   Below ~512 unknowns one CG solve finishes faster than the pool
   region starts, so small systems stay in the calling domain. *)
let solve_system ?wsx ?wsy ?x0 ?y0 sys =
  let rx, ry =
    Rc_par.Pool.both
      ~parallel:(Array.length sys.rhs_x >= 512)
      (fun () -> Rc_sparse.Cg.solve ?ws:wsx ?x0 ~tol:1e-7 sys.matrix sys.rhs_x)
      (fun () -> Rc_sparse.Cg.solve ?ws:wsy ?x0:y0 ~tol:1e-7 sys.matrix sys.rhs_y)
  in
  (rx.Rc_sparse.Cg.x, ry.Rc_sparse.Cg.x, rx.Rc_sparse.Cg.iterations + ry.Rc_sparse.Cg.iterations)

let assemble_positions netlist sys xs ys =
  let n = Netlist.n_cells netlist in
  Array.init n (fun c ->
      if sys.index.(c) >= 0 then Point.make xs.(sys.index.(c)) ys.(sys.index.(c))
      else Netlist.pad_position netlist c)

(* ---- recursive-bisection spreading targets -------------------------- *)

let spreading_targets rng chip movable xs ys =
  let m = Array.length movable in
  let targets = Array.make m Point.zero in
  (* indices into the movable arrays *)
  let idx = Array.init m Fun.id in
  let rec go (region : Rect.t) lo hi horizontal =
    let count = hi - lo in
    if count <= 2 then
      for k = lo to hi - 1 do
        let jx = Rc_util.Rng.float_in rng 0.3 0.7 and jy = Rc_util.Rng.float_in rng 0.3 0.7 in
        targets.(idx.(k)) <-
          Point.make
            (region.Rect.xmin +. (jx *. Rect.width region))
            (region.Rect.ymin +. (jy *. Rect.height region))
      done
    else begin
      let sub = Array.sub idx lo count in
      if horizontal then
        Array.sort (fun a b -> compare xs.(a) xs.(b)) sub
      else Array.sort (fun a b -> compare ys.(a) ys.(b)) sub;
      Array.blit sub 0 idx lo count;
      let mid = lo + (count / 2) in
      let frac = float_of_int (mid - lo) /. float_of_int count in
      if horizontal then begin
        let split = region.Rect.xmin +. (frac *. Rect.width region) in
        go (Rect.make ~xmin:region.Rect.xmin ~ymin:region.Rect.ymin ~xmax:split
              ~ymax:region.Rect.ymax) lo mid (not horizontal);
        go (Rect.make ~xmin:split ~ymin:region.Rect.ymin ~xmax:region.Rect.xmax
              ~ymax:region.Rect.ymax) mid hi (not horizontal)
      end
      else begin
        let split = region.Rect.ymin +. (frac *. Rect.height region) in
        go (Rect.make ~xmin:region.Rect.xmin ~ymin:region.Rect.ymin ~xmax:region.Rect.xmax
              ~ymax:split) lo mid (not horizontal);
        go (Rect.make ~xmin:region.Rect.xmin ~ymin:split ~xmax:region.Rect.xmax
              ~ymax:region.Rect.ymax) mid hi (not horizontal)
      end
    end
  in
  go chip 0 m (Rect.width chip >= Rect.height chip);
  targets

(* ---- legalization ---------------------------------------------------- *)

let legalize netlist ~chip ~site positions =
  if site <= 0.0 then invalid_arg "Qplace.legalize: non-positive site pitch";
  let nx = max 1 (int_of_float (Rect.width chip /. site)) in
  let ny = max 1 (int_of_float (Rect.height chip /. site)) in
  let occupied = Hashtbl.create 1024 in
  let site_center ix iy =
    Point.make
      (chip.Rect.xmin +. ((float_of_int ix +. 0.5) *. site))
      (chip.Rect.ymin +. ((float_of_int iy +. 0.5) *. site))
  in
  let clamp v lo hi = max lo (min hi v) in
  let out = Array.copy positions in
  let n = Netlist.n_cells netlist in
  for c = 0 to n - 1 do
    if Netlist.movable netlist c then begin
      let p = positions.(c) in
      let ix0 = clamp (int_of_float ((p.Point.x -. chip.Rect.xmin) /. site)) 0 (nx - 1) in
      let iy0 = clamp (int_of_float ((p.Point.y -. chip.Rect.ymin) /. site)) 0 (ny - 1) in
      (* spiral outward over Chebyshev rings until a free in-bounds site *)
      let placed = ref false and r = ref 0 in
      while not !placed do
        let best = ref None in
        let consider ix iy =
          if ix >= 0 && ix < nx && iy >= 0 && iy < ny && not (Hashtbl.mem occupied (ix, iy))
          then begin
            let d = Point.manhattan p (site_center ix iy) in
            match !best with
            | Some (bd, _, _) when bd <= d -> ()
            | _ -> best := Some (d, ix, iy)
          end
        in
        if !r = 0 then consider ix0 iy0
        else begin
          for dx = - !r to !r do
            consider (ix0 + dx) (iy0 - !r);
            consider (ix0 + dx) (iy0 + !r)
          done;
          for dy = - !r + 1 to !r - 1 do
            consider (ix0 - !r) (iy0 + dy);
            consider (ix0 + !r) (iy0 + dy)
          done
        end;
        (match !best with
        | Some (_, ix, iy) ->
            Hashtbl.replace occupied (ix, iy) ();
            out.(c) <- site_center ix iy;
            placed := true
        | None ->
            incr r;
            if !r > nx + ny then failwith "Qplace.legalize: no free site found")
      done
    end
  done;
  out

(* ---- top-level entry points ------------------------------------------ *)

let initial ?(seed = 7) ?(spread_rounds = 5) netlist ~chip =
  let rng = Rc_util.Rng.create seed in
  let iters = ref 0 in
  (* pass 1: pure connectivity solve *)
  let sys0 = build_system netlist ~chip ~extra_springs:[] in
  (* every round solves the same-size system: share two CG workspaces
     (one per axis — the solves run concurrently) across all rounds *)
  let m = Array.length sys0.movable in
  let wsx = Rc_sparse.Cg.workspace m and wsy = Rc_sparse.Cg.workspace m in
  let xs = ref [||] and ys = ref [||] in
  (* one batch region for the whole spreading stage: every round's x/y
     solve pair publishes a sub-job to the captive workers instead of
     waking the pool per solve *)
  Rc_par.Pool.region (fun () ->
      let x0, y0, it0 = solve_system ~wsx ~wsy sys0 in
      xs := x0;
      ys := y0;
      iters := !iters + it0;
      (* spreading rounds with growing anchor strength *)
      for round = 1 to spread_rounds do
        let targets = spreading_targets rng chip sys0.movable !xs !ys in
        let alpha = 0.01 *. (2.0 ** float_of_int round) in
        let springs =
          Array.to_list
            (Array.mapi (fun i c -> (c, targets.(i), alpha)) sys0.movable)
        in
        let sys = build_system netlist ~chip ~extra_springs:springs in
        let x, y, it = solve_system ~wsx ~wsy ~x0:!xs ~y0:!ys sys in
        xs := x;
        ys := y;
        iters := !iters + it
      done);
  let spread = assemble_positions netlist sys0 !xs !ys in
  let legal = legalize netlist ~chip ~site:10.0 spread in
  { positions = legal; hpwl = Wirelength.total netlist legal; solver_iterations = !iters }

let incremental ?(stability = 0.004) netlist ~chip ~prev ~pseudo =
  let n = Netlist.n_cells netlist in
  if Array.length prev <> n then invalid_arg "Qplace.incremental: prev length mismatch";
  let rng = Rc_util.Rng.create 23 in
  let base_springs =
    List.filter_map
      (fun c -> if Netlist.movable netlist c then Some (c, prev.(c), stability) else None)
      (List.init n Fun.id)
    @ List.map (fun pn -> (pn.cell, pn.anchor, pn.weight)) pseudo
  in
  let sys0 = build_system netlist ~chip ~extra_springs:base_springs in
  let m = Array.length sys0.movable in
  let wsx = Rc_sparse.Cg.workspace m and wsy = Rc_sparse.Cg.workspace m in
  let x0 = Array.make m 0.0 and y0 = Array.make m 0.0 in
  Array.iteri
    (fun i c ->
      x0.(i) <- prev.(c).Point.x;
      y0.(i) <- prev.(c).Point.y)
    sys0.movable;
  let xs = ref x0 and ys = ref y0 and iters = ref 0 in
  (* same batch-region discipline as [initial] *)
  Rc_par.Pool.region (fun () ->
      let x, y, it = solve_system ~wsx ~wsy ~x0:!xs ~y0:!ys sys0 in
      xs := x;
      ys := y;
      iters := !iters + it;
      (* keep the density profile of the initial placement: the same
         bisection-spreading rounds, ending at the strength the initial
         pass ends with (0.01·2⁵), so incremental results stay
         comparable *)
      for round = 3 to 5 do
        let targets = spreading_targets rng chip sys0.movable !xs !ys in
        let alpha = 0.01 *. (2.0 ** float_of_int round) in
        let springs =
          base_springs
          @ Array.to_list (Array.mapi (fun i c -> (c, targets.(i), alpha)) sys0.movable)
        in
        let sys = build_system netlist ~chip ~extra_springs:springs in
        let x, y, it = solve_system ~wsx ~wsy ~x0:!xs ~y0:!ys sys in
        xs := x;
        ys := y;
        iters := !iters + it
      done);
  let spread = assemble_positions netlist sys0 !xs !ys in
  let legal = legalize netlist ~chip ~site:10.0 spread in
  { positions = legal; hpwl = Wirelength.total netlist legal; solver_iterations = !iters }

let relocate netlist ~chip ~site ~prev ~pseudo =
  if site <= 0.0 then invalid_arg "Qplace.relocate: non-positive site pitch";
  let n = Netlist.n_cells netlist in
  if Array.length prev <> n then invalid_arg "Qplace.relocate: prev length mismatch";
  let pos = Array.copy prev in
  let nx = max 1 (int_of_float (Rect.width chip /. site)) in
  let ny = max 1 (int_of_float (Rect.height chip /. site)) in
  let clampi v hi = max 0 (min hi v) in
  let site_of (p : Point.t) =
    ( clampi (int_of_float ((p.Point.x -. chip.Rect.xmin) /. site)) (nx - 1),
      clampi (int_of_float ((p.Point.y -. chip.Rect.ymin) /. site)) (ny - 1) )
  in
  let site_center ix iy =
    Point.make
      (chip.Rect.xmin +. ((float_of_int ix +. 0.5) *. site))
      (chip.Rect.ymin +. ((float_of_int iy +. 0.5) *. site))
  in
  let occ = Hashtbl.create 1024 in
  for c = 0 to n - 1 do
    if Netlist.movable netlist c then Hashtbl.replace occ (site_of pos.(c)) c
  done;
  List.iter
    (fun { cell; anchor; weight } ->
      if cell < 0 || cell >= n || not (Netlist.movable netlist cell) then
        invalid_arg "Qplace.relocate: bad pseudo-net cell";
      let lambda = Float.max 0.0 weight /. (Float.max 0.0 weight +. 1.0) in
      let target =
        Rect.clamp_point chip
          (Point.add (Point.scale (1.0 -. lambda) pos.(cell)) (Point.scale lambda anchor))
      in
      (* free the old site, spiral to a free site near the target *)
      Hashtbl.remove occ (site_of pos.(cell));
      let tix, tiy = site_of target in
      let placed = ref false and r = ref 0 in
      while not !placed do
        let best = ref None in
        let consider ix iy =
          if ix >= 0 && ix < nx && iy >= 0 && iy < ny && not (Hashtbl.mem occ (ix, iy))
          then begin
            let d = Point.manhattan target (site_center ix iy) in
            match !best with
            | Some (bd, _, _) when bd <= d -> ()
            | _ -> best := Some (d, ix, iy)
          end
        in
        if !r = 0 then consider tix tiy
        else begin
          for dx = - !r to !r do
            consider (tix + dx) (tiy - !r);
            consider (tix + dx) (tiy + !r)
          done;
          for dy = - !r + 1 to !r - 1 do
            consider (tix - !r) (tiy + dy);
            consider (tix + !r) (tiy + dy)
          done
        end;
        (match !best with
        | Some (_, ix, iy) ->
            Hashtbl.replace occ (ix, iy) cell;
            pos.(cell) <- site_center ix iy;
            placed := true
        | None ->
            incr r;
            if !r > nx + ny then failwith "Qplace.relocate: no free site")
      done)
    pseudo;
  pos

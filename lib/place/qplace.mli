(** Analytic global placement in the style of quadratic placers
    (mPL/FastPlace family): star/clique quadratic wirelength minimized by
    conjugate gradient, interleaved with recursive-bisection spreading,
    plus a greedy site legalizer.

    The incremental mode is the flow's stage 6: pseudo-nets pull
    flip-flops toward their assigned rotary-ring tapping positions while
    stability anchors keep the rest of the placement close to the
    previous iteration — exactly the "stable incremental placement" the
    paper requires. *)

type pseudo_net = {
  cell : int;  (** The flip-flop being pulled. *)
  anchor : Rc_geom.Point.t;  (** Its tapping target on the ring. *)
  weight : float;  (** Spring weight (grows over flow iterations). *)
}

type result = {
  positions : Rc_geom.Point.t array;  (** Indexed by cell id; pads included. *)
  hpwl : float;  (** Total signal HPWL of the result, µm. *)
  solver_iterations : int;  (** Total CG iterations spent. *)
}

val initial :
  ?seed:int ->
  ?spread_rounds:int ->
  ?multilevel_threshold:int ->
  Rc_netlist.Netlist.t ->
  chip:Rc_geom.Rect.t ->
  result
(** Global placement from scratch (flow stage 1). [spread_rounds]
    (default 5) controls how many solve/spread rounds run before
    legalization.

    Circuits with at least [multilevel_threshold] movable cells
    (default 50 000 — far above every Table II circuit, so the paper
    path is untouched) are placed by a multilevel V-cycle instead of
    the flat schedule: first-choice/heavy-edge clustering coarsens the
    star connectivity graph to ~12k vertices, the coarsest level is
    solved cold and spread, and each finer level interpolates the
    cluster positions and runs one (two at the finest) warm-started
    spreading relaxation, ending on the flat schedule's final anchor
    strength.  Deterministic and jobs-invariant like the flat path. *)

val incremental :
  ?stability:float ->
  Rc_netlist.Netlist.t ->
  chip:Rc_geom.Rect.t ->
  prev:Rc_geom.Point.t array ->
  pseudo:pseudo_net list ->
  result
(** Re-place starting from [prev] with pseudo-nets added. [stability]
    (default 0.004) is the per-cell spring to its previous location —
    larger values give a more stable (less disturbed) placement. *)

val relocate :
  Rc_netlist.Netlist.t ->
  chip:Rc_geom.Rect.t ->
  site:float ->
  prev:Rc_geom.Point.t array ->
  pseudo:pseudo_net list ->
  Rc_geom.Point.t array
(** Minimally-disturbing stage 6 for an already-refined placement: each
    pseudo-net's cell steps the fraction [weight / (weight + 1)] of the
    way to its anchor (weights grow over flow iterations, so the step
    approaches the anchor); every other cell stays put; the moved cells
    are re-legalized onto free sites. Pair with a flip-flop-frozen
    {!Detail.refine} pass to heal the signal wirelength around the
    moves. *)

val legalize :
  Rc_netlist.Netlist.t ->
  chip:Rc_geom.Rect.t ->
  site:float ->
  Rc_geom.Point.t array ->
  Rc_geom.Point.t array
(** Snap movable cells to distinct sites of a [site]-pitch grid,
    spiraling outward from the ideal site when occupied. *)

type anchor = { t_c : float; t_ci : float; weight : float }

type result = { skews : float array; objective : float }

let check_sizes problem anchors =
  if Array.length anchors <> problem.Skew_problem.n then
    invalid_arg "Cost_driven: anchors size mismatch"

let m_probes = Rc_obs.Metrics.counter "skew.minmax.probes"
let m_solves = Rc_obs.Metrics.counter "skew.minmax.solves"

let solve_minmax_graph ?(tolerance = 1e-3) problem ~slack ~anchors =
  check_sizes problem anchors;
  let n = problem.Skew_problem.n in
  (* Difference-constraint graph extended with a reference vertex [n]
     (clock value 0) encoding the window constraints at a given Δ:
       t̂_i ≤ t_c + Δ            — edge  ref → i  weight t_c + Δ
       t̂_i ≥ t_c + 2·t_ci − Δ   — edge  i → ref  weight Δ − t_c − 2·t_ci
     Only those 2n window edges depend on Δ, so the graph is built once
     and shared by every probe of the binary search, with the window
     weights rewritten in place.  [set_weight] keeps each edge's slot in
     the adjacency structure, so the SPFA oracle sees the same edge order
     a fresh build would produce and the search trajectory is unchanged —
     the probes just stop paying for 2·|pairs| edge allocations each. *)
  let base = Skew_problem.constraint_graph problem ~slack in
  let g = Rc_graph.Digraph.create (n + 1) in
  Rc_graph.Digraph.iter_edges base (fun e ->
      Rc_graph.Digraph.add_edge g e.Rc_graph.Digraph.src e.Rc_graph.Digraph.dst
        e.Rc_graph.Digraph.weight);
  let upper = Array.make n None and lower = Array.make n None in
  Array.iteri
    (fun i _ ->
      upper.(i) <- Some (Rc_graph.Digraph.add_edge_get g n i 0.0);
      lower.(i) <- Some (Rc_graph.Digraph.add_edge_get g i n 0.0))
    anchors;
  let probe delta =
    Rc_obs.Metrics.incr m_probes;
    Array.iteri
      (fun i a ->
        Option.iter (fun e -> Rc_graph.Digraph.set_weight e (a.t_c +. delta)) upper.(i);
        Option.iter
          (fun e -> Rc_graph.Digraph.set_weight e (delta -. a.t_c -. (2.0 *. a.t_ci)))
          lower.(i))
      anchors;
    match Rc_graph.Shortest_path.bellman_ford g ~sources:[ n ] with
    | Either.Right _ -> None
    | Either.Left r ->
        let skews =
          Array.init n (fun i ->
              if r.Rc_graph.Shortest_path.dist.(i) < infinity then
                r.Rc_graph.Shortest_path.dist.(i)
              else anchors.(i).t_c +. anchors.(i).t_ci)
        in
        Some skews
  in
  Rc_obs.Metrics.incr m_solves;
  (* a Δ large enough to be surely feasible when the timing constraints
     alone are: wide enough to cover every window plus the full period *)
  let span =
    Array.fold_left
      (fun acc a -> Float.max acc (Float.abs a.t_c +. (2.0 *. a.t_ci)))
      0.0 anchors
  in
  let hi0 = (2.0 *. span) +. (4.0 *. problem.Skew_problem.period) +. 1.0 in
  match probe hi0 with
  | None -> None
  | Some skews0 ->
      let lo = ref 0.0 and hi = ref hi0 and best = ref skews0 and best_d = ref hi0 in
      (match probe 0.0 with
      | Some s ->
          best := s;
          best_d := 0.0;
          hi := 0.0
      | None -> ());
      while !hi -. !lo > tolerance do
        let mid = 0.5 *. (!lo +. !hi) in
        match probe mid with
        | Some s ->
            best := s;
            best_d := mid;
            hi := mid
        | None -> lo := mid
      done;
      Some { skews = !best; objective = !best_d }

let solve_minmax_lp problem ~slack ~anchors =
  check_sizes problem anchors;
  let open Rc_lp in
  let p = Problem.create () in
  let n = problem.Skew_problem.n in
  let t_vars = Array.init n (fun _ -> Problem.add_var p) in
  let delta = Problem.add_var ~lo:0.0 ~obj:1.0 p in
  List.iter
    (fun { Skew_problem.i; j; d_max; d_min } ->
      ignore
        (Problem.add_row p
           [ (t_vars.(i), 1.0); (t_vars.(j), -1.0) ]
           Problem.Le
           (problem.Skew_problem.period -. d_max -. problem.Skew_problem.t_setup -. slack));
      ignore
        (Problem.add_row p
           [ (t_vars.(i), 1.0); (t_vars.(j), -1.0) ]
           Problem.Ge
           (slack +. problem.Skew_problem.t_hold -. d_min)))
    problem.Skew_problem.pairs;
  Array.iteri
    (fun i a ->
      ignore
        (Problem.add_row p
           [ (t_vars.(i), -1.0); (delta, -1.0) ]
           Problem.Le
           (-.a.t_c -. (2.0 *. a.t_ci)));
      ignore (Problem.add_row p [ (t_vars.(i), 1.0); (delta, -1.0) ] Problem.Le a.t_c))
    anchors;
  match Simplex.solve p with
  | { Simplex.status = Simplex.Optimal; x; _ } ->
      Some { skews = Array.map (fun v -> x.(v)) t_vars; objective = x.(delta) }
  | _ -> None

let solve_weighted_lp problem ~slack ~anchors =
  check_sizes problem anchors;
  let open Rc_lp in
  let p = Problem.create () in
  let n = problem.Skew_problem.n in
  let t_vars = Array.init n (fun _ -> Problem.add_var p) in
  let d_vars = Array.map (fun a -> Problem.add_var ~lo:0.0 ~obj:(Float.max a.weight 0.0) p) anchors in
  List.iter
    (fun { Skew_problem.i; j; d_max; d_min } ->
      ignore
        (Problem.add_row p
           [ (t_vars.(i), 1.0); (t_vars.(j), -1.0) ]
           Problem.Le
           (problem.Skew_problem.period -. d_max -. problem.Skew_problem.t_setup -. slack));
      ignore
        (Problem.add_row p
           [ (t_vars.(i), 1.0); (t_vars.(j), -1.0) ]
           Problem.Ge
           (slack +. problem.Skew_problem.t_hold -. d_min)))
    problem.Skew_problem.pairs;
  Array.iteri
    (fun i a ->
      let ideal = a.t_c +. a.t_ci in
      ignore
        (Problem.add_row p [ (t_vars.(i), 1.0); (d_vars.(i), -1.0) ] Problem.Le ideal);
      ignore
        (Problem.add_row p [ (t_vars.(i), -1.0); (d_vars.(i), -1.0) ] Problem.Le (-.ideal)))
    anchors;
  match Simplex.solve p with
  | { Simplex.status = Simplex.Optimal; x; objective; _ } ->
      Some { skews = Array.map (fun v -> x.(v)) t_vars; objective }
  | _ -> None

let refine_toward_anchors ?(sweeps = 8) problem ~slack ~anchors ~skews =
  check_sizes problem anchors;
  let n = problem.Skew_problem.n in
  let t = Array.copy skews in
  (* per-FF inequality lists derived from the pair constraints at the
     given slack: t_i <= t_j + ub, t_i >= t_j + lb *)
  let uppers = Array.make n [] and lowers = Array.make n [] in
  List.iter
    (fun { Skew_problem.i; j; d_max; d_min } ->
      if i <> j then begin
        let setup = problem.Skew_problem.period -. d_max -. problem.Skew_problem.t_setup -. slack in
        let hold = slack +. problem.Skew_problem.t_hold -. d_min in
        (* (6) t_i - t_j <= setup ; (7) t_i - t_j >= hold *)
        uppers.(i) <- (j, setup) :: uppers.(i);
        lowers.(i) <- (j, hold) :: lowers.(i);
        (* symmetric view for t_j *)
        lowers.(j) <- (i, -.setup) :: lowers.(j);
        uppers.(j) <- (i, -.hold) :: uppers.(j)
      end)
    problem.Skew_problem.pairs;
  for _ = 1 to sweeps do
    for i = 0 to n - 1 do
      let hi =
        List.fold_left (fun acc (j, ub) -> Float.min acc (t.(j) +. ub)) infinity uppers.(i)
      in
      let lo =
        List.fold_left (fun acc (j, lb) -> Float.max acc (t.(j) +. lb)) neg_infinity lowers.(i)
      in
      if lo <= hi then begin
        let ideal = anchors.(i).t_c +. anchors.(i).t_ci in
        t.(i) <- Float.min hi (Float.max lo ideal)
      end
    done
  done;
  t

(* Weighted-sum scheduling through the min-cost-flow dual.

   Primal:  min Σ w_i·|t_i − c_i|  s.t.  t_u − t_v ≤ b_e  (one arc per
   constraint). Its LP dual is a min-cost circulation over the variable
   nodes plus a reference node r: constraint arc u→v carries cost b_e
   (capacity effectively unbounded), and each node i exchanges up to w_i
   units with r at cost −c_i (r→i) / +c_i (i→r). Negative-cost arcs are
   pre-saturated (pushing their capacity and recording the imbalance),
   and the resulting excess/deficit transportation problem is solved by
   successive shortest paths. Any potentials with non-negative reduced
   costs over the optimal residual network certify optimality, and
   t_i = π_r − π_i is an optimal primal schedule. *)
let solve_weighted_mcf problem ~slack ~anchors =
  check_sizes problem anchors;
  let n = problem.Skew_problem.n in
  (* infeasible timing constraints: bail out like the LP engine *)
  let timing_graph = Skew_problem.constraint_graph problem ~slack in
  if Rc_graph.Shortest_path.feasible_potentials timing_graph = None then None
  else begin
    let r = n and source = n + 1 and sink = n + 2 in
    let net = Rc_netflow.Mcmf.create (n + 3) in
    let excess = Array.make (n + 1) 0 in
    let quantize w = if w <= 0.0 then 0 else max 1 (int_of_float (Float.round w)) in
    let big =
      Array.fold_left (fun acc a -> acc + quantize a.weight) 0 anchors |> max 1
    in
    (* add an arc, pre-saturating it when its cost is negative *)
    let arc u v cap cost =
      if cap > 0 then begin
        if cost >= 0.0 then ignore (Rc_netflow.Mcmf.add_arc net ~src:u ~dst:v ~capacity:cap ~cost)
        else begin
          ignore (Rc_netflow.Mcmf.add_arc net ~src:v ~dst:u ~capacity:cap ~cost:(-.cost));
          excess.(v) <- excess.(v) + cap;
          excess.(u) <- excess.(u) - cap
        end
      end
    in
    (* constraint arcs: t_u − t_v ≤ b  →  arc u→v with cost b *)
    List.iter
      (fun { Skew_problem.i; j; d_max; d_min } ->
        if i <> j then begin
          let setup =
            problem.Skew_problem.period -. d_max -. problem.Skew_problem.t_setup -. slack
          in
          let hold = d_min -. problem.Skew_problem.t_hold -. slack in
          (* (6): t_i − t_j ≤ setup ; (7): t_j − t_i ≤ hold *)
          arc i j big setup;
          arc j i big hold
        end)
      problem.Skew_problem.pairs;
    (* node arcs to the reference *)
    Array.iteri
      (fun i a ->
        let w = quantize a.weight in
        let ideal = a.t_c +. a.t_ci in
        arc r i w (-.ideal);
        arc i r w ideal)
      anchors;
    (* transportation between the pre-saturation imbalances *)
    let supply = ref 0 in
    Array.iteri
      (fun v e ->
        if e > 0 then begin
          ignore (Rc_netflow.Mcmf.add_arc net ~src:source ~dst:v ~capacity:e ~cost:0.0);
          supply := !supply + e
        end
        else if e < 0 then
          ignore (Rc_netflow.Mcmf.add_arc net ~src:v ~dst:sink ~capacity:(-e) ~cost:0.0))
      excess;
    let outcome = Rc_netflow.Mcmf.solve ~amount:!supply net ~source ~sink in
    if outcome.Rc_netflow.Mcmf.flow < !supply then None
    else begin
      (* potentials over the optimal residual network: multi-source
         Bellman-Ford (no negative cycles remain at optimality) *)
      let g = Rc_graph.Digraph.create (n + 3) in
      Rc_netflow.Mcmf.iter_residual net (fun ~src ~dst ~cost ->
          Rc_graph.Digraph.add_edge g src dst cost);
      match Rc_graph.Shortest_path.feasible_potentials g with
      | None -> None
      | Some d ->
          let skews = Array.init n (fun i -> d.(r) -. d.(i)) in
          let objective =
            Array.to_list
              (Array.mapi
                 (fun i a ->
                   Float.max a.weight 0.0 *. Float.abs (skews.(i) -. (a.t_c +. a.t_ci)))
                 anchors)
            |> List.fold_left ( +. ) 0.0
          in
          Some { skews; objective }
    end
  end

open Rc_util

type config = {
  name : string;
  n_logic : int;
  n_ffs : int;
  n_nets : int;
  n_inputs : int;
  n_outputs : int;
  depth : int;
  max_fanin : int;
  clusters : int;
  locality : float;
  chip : Rc_geom.Rect.t;
  seed : int;
}

let default_config =
  {
    name = "smoke200";
    n_logic = 200;
    n_ffs = 24;
    n_nets = 210;
    n_inputs = 8;
    n_outputs = 8;
    depth = 8;
    max_fanin = 3;
    clusters = 4;
    locality = 0.85;
    chip = Rc_geom.Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2200.0 ~ymax:2200.0;
    seed = 1;
  }

let pad_ring_positions chip count =
  (* evenly spaced positions walking the die boundary clockwise *)
  let open Rc_geom in
  let w = Rect.width chip and h = Rect.height chip in
  let perimeter = 2.0 *. (w +. h) in
  List.init count (fun i ->
      let d = float_of_int i /. float_of_int count *. perimeter in
      if d < w then Point.make (chip.Rect.xmin +. d) chip.Rect.ymin
      else if d < w +. h then Point.make chip.Rect.xmax (chip.Rect.ymin +. (d -. w))
      else if d < (2.0 *. w) +. h then
        Point.make (chip.Rect.xmax -. (d -. w -. h)) chip.Rect.ymax
      else Point.make chip.Rect.xmin (chip.Rect.ymax -. (d -. (2.0 *. w) -. h)))

type hier_config = {
  hname : string;
  n_cells : int;
  ff_fraction : float;
  rent_exponent : float;
  rent_coeff : float;
  block_cells : int;
  branching : int;
  hdepth : int;
  hmax_fanin : int;
  hchip : Rc_geom.Rect.t;
  hseed : int;
}

let hier ?(ff_fraction = 0.12) ?(rent_exponent = 0.65) ?(rent_coeff = 3.0)
    ?(block_cells = 4096) ?(branching = 4) ?(depth = 10) ?(max_fanin = 3) ~name
    ~n_cells ~chip ~seed () =
  {
    hname = name;
    n_cells;
    ff_fraction;
    rent_exponent;
    rent_coeff;
    block_cells;
    branching;
    hdepth = depth;
    hmax_fanin = max_fanin;
    hchip = chip;
    hseed = seed;
  }

(* Growable flat edge buffer — the whole hierarchical build streams
   (driver, sink) pairs into two int arrays and only materializes
   per-net sink arrays at the very end, so generation stays O(edges)
   in both time and allocation at million-cell scale. *)
type ebuf = { mutable esrc : int array; mutable edst : int array; mutable elen : int }

let ebuf_push b s d =
  let cap = Array.length b.esrc in
  if b.elen = cap then begin
    let nsrc = Array.make (2 * cap) 0 and ndst = Array.make (2 * cap) 0 in
    Array.blit b.esrc 0 nsrc 0 b.elen;
    Array.blit b.edst 0 ndst 0 b.elen;
    b.esrc <- nsrc;
    b.edst <- ndst
  end;
  b.esrc.(b.elen) <- s;
  b.edst.(b.elen) <- d;
  b.elen <- b.elen + 1

let hier_counts cfg =
  let nc = cfg.n_cells in
  let n_blocks = max 1 (nc / cfg.block_cells) in
  let bstart i = i * nc / n_blocks in
  let nff_of m = max 1 (int_of_float ((cfg.ff_fraction *. float_of_int m) +. 0.5)) in
  let ffs = ref 0 in
  for b = 0 to n_blocks - 1 do
    let m = bstart (b + 1) - bstart b in
    ffs := !ffs + min (m - 1) (nff_of m)
  done;
  (nc - !ffs, !ffs)

let generate_hier cfg =
  if cfg.n_cells < 16 then invalid_arg "Generator.generate_hier: n_cells < 16";
  if cfg.hdepth < 2 then invalid_arg "Generator.generate_hier: depth < 2";
  if cfg.hmax_fanin < 1 then invalid_arg "Generator.generate_hier: max_fanin < 1";
  if cfg.block_cells < 8 then invalid_arg "Generator.generate_hier: block_cells < 8";
  if cfg.branching < 2 then invalid_arg "Generator.generate_hier: branching < 2";
  if cfg.ff_fraction <= 0.0 || cfg.ff_fraction >= 0.5 then
    invalid_arg "Generator.generate_hier: ff_fraction out of (0, 0.5)";
  let rng = Rng.create cfg.hseed in
  let nc = cfg.n_cells in
  (* Rent's rule sizes the pad ring: T = t * G^p terminals for the whole
     die, split evenly between inputs and outputs. *)
  let rent g = cfg.rent_coeff *. (float_of_int g ** cfg.rent_exponent) in
  let n_io = max 16 (int_of_float (rent nc /. 2.0)) in
  let n_in = n_io / 2 in
  let n_out = n_io - n_in in
  let in_first = nc and out_first = nc + n_in in
  let n = nc + n_in + n_out in
  (* Even split into leaf blocks of ~block_cells; block i covers the
     contiguous id range [start i, start (i+1)). Within a block the
     first cells are its flip-flops (level 0) and the rest is logic,
     stratified so the level of a logic cell is a function of its index
     — every "random driver below level v" draw is then a single
     [Rng.int] over a prefix range, no per-level pools. *)
  let n_blocks = max 1 (nc / cfg.block_cells) in
  let bstart i = i * nc / n_blocks in
  let nff_of m = max 1 (int_of_float ((cfg.ff_fraction *. float_of_int m) +. 0.5)) in
  let kinds = Array.make n Netlist.Logic in
  let level = Array.make n 0 in
  for b = 0 to n_blocks - 1 do
    let s = bstart b and e = bstart (b + 1) in
    let m = e - s in
    let nff = min (m - 1) (nff_of m) in
    let nlogic = m - nff in
    for i = 0 to nff - 1 do
      kinds.(s + i) <- Netlist.Flipflop
    done;
    for j = 0 to nlogic - 1 do
      level.(s + nff + j) <- 1 + (j * cfg.hdepth / nlogic)
    done
  done;
  for c = in_first to out_first - 1 do
    kinds.(c) <- Netlist.Input_pad
  done;
  for c = out_first to n - 1 do
    kinds.(c) <- Netlist.Output_pad
  done;
  let edges =
    { esrc = Array.make (4 * nc) 0; edst = Array.make (4 * nc) 0; elen = 0 }
  in
  (* intra-block fan-ins and FF D-inputs *)
  let picks = Array.make (max cfg.hmax_fanin 1) (-1) in
  for b = 0 to n_blocks - 1 do
    let s = bstart b and e = bstart (b + 1) in
    let m = e - s in
    let nff = min (m - 1) (nff_of m) in
    let nlogic = m - nff in
    for j = 0 to nlogic - 1 do
      let c = s + nff + j in
      let v = level.(c) in
      (* drivers strictly below level v: the block's FFs plus the logic
         prefix whose stratified level is <= v - 1 *)
      let k_lo = min nlogic ((((v - 1) * nlogic) + cfg.hdepth - 1) / cfg.hdepth) in
      let pool = nff + k_lo in
      let k = 1 + Rng.int rng cfg.hmax_fanin in
      let n_picked = ref 0 in
      for _ = 1 to k do
        let r = Rng.int rng pool in
        let src = if r < nff then s + r else s + nff + (r - nff) in
        let dup = ref false in
        for q = 0 to !n_picked - 1 do
          if picks.(q) = src then dup := true
        done;
        if not !dup then begin
          picks.(!n_picked) <- src;
          incr n_picked;
          ebuf_push edges src c
        end
      done
    done;
    (* FF D-inputs come from the deep half of the block's logic, closing
       mostly-local FF->FF timing paths *)
    let k_half = min (nlogic - 1) (cfg.hdepth / 2 * nlogic / cfg.hdepth) in
    for i = 0 to nff - 1 do
      let src = s + nff + k_half + Rng.int rng (nlogic - k_half) in
      ebuf_push edges src (s + i)
    done
  done;
  (* Rent's-rule cross-block connectivity: at hierarchy level l the
     blocks group by branching^l; every group sources ceil(t * g^p)
     edges into sibling groups under the same parent. Sinks are chosen
     level-up (logic above the source's level, or a flip-flop), so the
     combinational graph stays acyclic across blocks. *)
  let pick_in_block b min_level =
    let s = bstart b and e = bstart (b + 1) in
    let m = e - s in
    let nff = min (m - 1) (nff_of m) in
    let nlogic = m - nff in
    let k_v = min nlogic (((min_level * nlogic) + cfg.hdepth - 1) / cfg.hdepth) in
    let pool = nff + (nlogic - k_v) in
    let r = Rng.int rng pool in
    if r < nff then s + r else s + nff + k_v + (r - nff)
  in
  let group_blocks = ref 1 in
  while !group_blocks < n_blocks do
    let gb = !group_blocks in
    let n_groups = (n_blocks + gb - 1) / gb in
    for g = 0 to n_groups - 1 do
      let gs = bstart (g * gb) and ge = bstart (min n_blocks ((g + 1) * gb)) in
      let ext = int_of_float (Float.ceil (rent (ge - gs))) in
      let parent = g / cfg.branching in
      let sib_lo = parent * cfg.branching in
      let sib_hi = min n_groups (sib_lo + cfg.branching) in
      let n_sibs = sib_hi - sib_lo in
      for _ = 1 to ext do
        let src = gs + Rng.int rng (ge - gs) in
        let tg =
          if n_sibs > 1 then begin
            let o = sib_lo + Rng.int rng (n_sibs - 1) in
            if o >= g then o + 1 else o
          end
          else begin
            let o = Rng.int rng (n_groups - 1) in
            if o >= g then o + 1 else o
          end
        in
        let tb = (tg * gb) + Rng.int rng (min n_blocks ((tg + 1) * gb) - (tg * gb)) in
        ebuf_push edges src (pick_in_block tb level.(src))
      done
    done;
    group_blocks := gb * cfg.branching
  done;
  (* primary inputs fan out to a few logic cells anywhere *)
  for c = in_first to out_first - 1 do
    let k = 1 + Rng.int rng 3 in
    for _ = 1 to k do
      ebuf_push edges c (pick_in_block (Rng.int rng n_blocks) 0)
    done
  done;
  (* out-degree census; every movable driver must end with a sink, so
     danglers (mostly top-level logic) feed the output-pad ring *)
  let outdeg = Array.make n 0 in
  for i = 0 to edges.elen - 1 do
    outdeg.(edges.esrc.(i)) <- outdeg.(edges.esrc.(i)) + 1
  done;
  for c = 0 to nc - 1 do
    if outdeg.(c) = 0 then begin
      ebuf_push edges c (out_first + (c mod n_out));
      outdeg.(c) <- 1
    end
  done;
  (* CSR by driver, preserving per-driver emission order *)
  let off = Array.make (n + 1) 0 in
  for c = 0 to n - 1 do
    off.(c + 1) <- off.(c) + outdeg.(c)
  done;
  let cursor = Array.make n 0 in
  let csr_dst = Array.make edges.elen 0 in
  for i = 0 to edges.elen - 1 do
    let s = edges.esrc.(i) in
    csr_dst.(off.(s) + cursor.(s)) <- edges.edst.(i);
    cursor.(s) <- cursor.(s) + 1
  done;
  let nets = Array.make (nc + n_in) { Netlist.driver = 0; sinks = [||] } in
  let ni = ref 0 in
  for c = 0 to n - 1 do
    if outdeg.(c) > 0 then begin
      nets.(!ni) <-
        { Netlist.driver = c; sinks = Array.sub csr_dst off.(c) outdeg.(c) };
      incr ni
    end
  done;
  let nets = if !ni = Array.length nets then nets else Array.sub nets 0 !ni in
  let pad_ids = List.init (n_in + n_out) (fun i -> in_first + i) in
  let pad_positions =
    List.combine pad_ids (pad_ring_positions cfg.hchip (n_in + n_out))
  in
  Netlist.make ~name:cfg.hname ~kinds ~nets ~pad_positions

let generate cfg =
  if cfg.n_logic <= 0 || cfg.n_ffs <= 0 then invalid_arg "Generator.generate: empty circuit";
  if cfg.depth < 1 then invalid_arg "Generator.generate: depth < 1";
  if cfg.max_fanin < 1 then invalid_arg "Generator.generate: max_fanin < 1";
  let n_logic_drivers = cfg.n_nets - cfg.n_ffs - cfg.n_inputs in
  if n_logic_drivers <= 0 || n_logic_drivers > cfg.n_logic then
    invalid_arg "Generator.generate: n_nets inconsistent with cell counts";
  let rng = Rng.create cfg.seed in
  let n = cfg.n_logic + cfg.n_ffs + cfg.n_inputs + cfg.n_outputs in
  let logic c = c < cfg.n_logic in
  let ff_first = cfg.n_logic in
  let in_first = cfg.n_logic + cfg.n_ffs in
  let out_first = in_first + cfg.n_inputs in
  let kinds =
    Array.init n (fun c ->
        if logic c then Netlist.Logic
        else if c < in_first then Netlist.Flipflop
        else if c < out_first then Netlist.Input_pad
        else Netlist.Output_pad)
  in
  (* choose which logic cells drive nets *)
  let logic_perm = Array.init cfg.n_logic Fun.id in
  Rng.shuffle rng logic_perm;
  let drives = Array.make n false in
  for k = 0 to n_logic_drivers - 1 do
    drives.(logic_perm.(k)) <- true
  done;
  for c = ff_first to out_first - 1 do
    drives.(c) <- true
  done;
  (* levelize: logic in 1..depth; sources (FFs + inputs) at 0 *)
  let level = Array.make n 0 in
  for c = 0 to cfg.n_logic - 1 do
    level.(c) <- 1 + Rng.int rng cfg.depth
  done;
  if cfg.clusters < 1 then invalid_arg "Generator.generate: clusters < 1";
  if cfg.locality < 0.0 || cfg.locality > 1.0 then
    invalid_arg "Generator.generate: locality out of [0,1]";
  (* locality clusters: logic, flip-flops and input pads each belong to a
     cluster; connectivity mostly stays inside it *)
  let cluster = Array.init n (fun _ -> Rng.int rng cfg.clusters) in
  (* pools of drivers per level, global and per cluster *)
  let by_level = Array.make (cfg.depth + 1) [] in
  let by_level_cl = Array.init (cfg.depth + 1) (fun _ -> Array.make cfg.clusters []) in
  for c = 0 to n - 1 do
    if drives.(c) && kinds.(c) <> Netlist.Output_pad then begin
      by_level.(level.(c)) <- c :: by_level.(level.(c));
      by_level_cl.(level.(c)).(cluster.(c)) <- c :: by_level_cl.(level.(c)).(cluster.(c))
    end
  done;
  let by_level = Array.map Array.of_list by_level in
  let by_level_cl = Array.map (Array.map Array.of_list) by_level_cl in
  if Array.length by_level.(0) = 0 then invalid_arg "Generator.generate: no level-0 sources";
  let sinks_of = Array.make n [] in
  let connect driver sink =
    if driver <> sink then sinks_of.(driver) <- sink :: sinks_of.(driver)
  in
  let pick_source v cl =
    (* a driver strictly below level v, biased toward the previous level
       and (with probability [locality]) toward the same cluster *)
    let local = Rng.float rng 1.0 < cfg.locality in
    let pool_at u =
      if local && Array.length by_level_cl.(u).(cl) > 0 then by_level_cl.(u).(cl)
      else by_level.(u)
    in
    let lvl =
      if v >= 1 && Rng.float rng 1.0 < 0.6 && Array.length (pool_at (v - 1)) > 0 then v - 1
      else begin
        let rec try_level attempts =
          if attempts = 0 then 0
          else
            let u = Rng.int rng v in
            if Array.length (pool_at u) > 0 then u else try_level (attempts - 1)
        in
        try_level 8
      end
    in
    Rng.choose rng (pool_at lvl)
  in
  (* fan-ins for every logic cell (drivers and sink-only cells alike) *)
  for c = 0 to cfg.n_logic - 1 do
    let k = 1 + Rng.int rng cfg.max_fanin in
    let chosen = Hashtbl.create 4 in
    for _ = 1 to k do
      let s = pick_source level.(c) cluster.(c) in
      if not (Hashtbl.mem chosen s) then begin
        Hashtbl.add chosen s ();
        connect s c
      end
    done
  done;
  (* flip-flop D inputs: prefer deep logic of the same cluster to create
     long, mostly-local FF->FF paths *)
  let logic_drivers_where pred =
    Array.of_list (List.filter (fun c -> logic c && drives.(c) && pred c) (List.init cfg.n_logic Fun.id))
  in
  let deep_drivers = logic_drivers_where (fun c -> level.(c) > cfg.depth / 2) in
  let any_logic_drivers = logic_drivers_where (fun _ -> true) in
  let deep_by_cluster =
    Array.init cfg.clusters (fun cl ->
        Array.of_list
          (List.filter (fun c -> cluster.(c) = cl) (Array.to_list deep_drivers)))
  in
  for f = ff_first to in_first - 1 do
    let local_pool = deep_by_cluster.(cluster.(f)) in
    let pool =
      if Rng.float rng 1.0 < cfg.locality && Array.length local_pool > 0 then local_pool
      else if Array.length deep_drivers > 0 then deep_drivers
      else any_logic_drivers
    in
    connect (Rng.choose rng pool) f
  done;
  (* output pads *)
  for o = out_first to n - 1 do
    let pool = if Array.length any_logic_drivers > 0 then any_logic_drivers else by_level.(0) in
    connect (Rng.choose rng pool) o
  done;
  (* every driver must end with at least one sink *)
  for c = 0 to n - 1 do
    if drives.(c) && sinks_of.(c) = [] then begin
      let v = level.(c) in
      (* logic cells above this level, otherwise an output pad *)
      let candidates =
        List.filter (fun d -> logic d && level.(d) > v) (List.init cfg.n_logic Fun.id)
      in
      match candidates with
      | [] ->
          if cfg.n_outputs > 0 then connect c (out_first + Rng.int rng cfg.n_outputs)
          else connect c (ff_first + Rng.int rng cfg.n_ffs)
      | l -> connect c (List.nth l (Rng.int rng (List.length l)))
    end
  done;
  let nets =
    Array.of_list
      (List.filter_map
         (fun c ->
           if drives.(c) && sinks_of.(c) <> [] then
             Some { Netlist.driver = c; sinks = Array.of_list (List.rev sinks_of.(c)) }
           else None)
         (List.init n Fun.id))
  in
  let pad_ids =
    List.init (cfg.n_inputs + cfg.n_outputs) (fun i -> in_first + i)
  in
  let pad_positions =
    List.combine pad_ids (pad_ring_positions cfg.chip (List.length pad_ids))
  in
  Netlist.make ~name:cfg.name ~kinds ~nets ~pad_positions

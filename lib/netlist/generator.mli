(** Synthetic sequential-circuit generator.

    Stands in for the ISCAS89 netlists synthesized through SIS in the
    paper: given the published circuit statistics (cell, flip-flop and
    net counts — Table II), it produces a random levelized DAG of logic
    between flip-flop boundaries with realistic fan-in/fan-out, so the
    placement, timing and skew-scheduling code paths see inputs of the
    same shape and scale. Deterministic in [seed]. *)

type config = {
  name : string;
  n_logic : int;  (** Number of combinational cells ("#Cells"). *)
  n_ffs : int;  (** Number of flip-flops. *)
  n_nets : int;  (** Exact number of nets to emit. *)
  n_inputs : int;  (** Primary-input pads. *)
  n_outputs : int;  (** Primary-output pads. *)
  depth : int;  (** Logic levels between flip-flop boundaries. *)
  max_fanin : int;  (** Maximum fan-in of a logic cell (≥ 1). *)
  clusters : int;  (** Locality clusters; cells mostly connect within their cluster, like the functional blocks of a real design (≥ 1). *)
  locality : float;  (** Probability that a fan-in stays inside the cluster (0-1). *)
  chip : Rc_geom.Rect.t;  (** Die outline; pads are placed on its boundary. *)
  seed : int;
}

val default_config : config
(** A small smoke-test circuit (200 cells / 24 FFs). *)

type hier_config = {
  hname : string;
  n_cells : int;  (** Total movable cells (logic + flip-flops). *)
  ff_fraction : float;  (** Flip-flop share of each block, in (0, 0.5). *)
  rent_exponent : float;  (** Rent's-rule exponent p in T = t·G{^p}. *)
  rent_coeff : float;  (** Rent's-rule coefficient t. *)
  block_cells : int;  (** Target leaf-block size (≥ 8). *)
  branching : int;  (** Hierarchy branching factor (≥ 2). *)
  hdepth : int;  (** Logic levels inside a block (≥ 2). *)
  hmax_fanin : int;  (** Maximum fan-in of a logic cell (≥ 1). *)
  hchip : Rc_geom.Rect.t;  (** Die outline; pads on its boundary. *)
  hseed : int;
}
(** Profile of a hierarchical circuit: contiguous leaf blocks of
    [block_cells] cells grouped [branching]-ways into a block tree,
    with cross-group connectivity sized by Rent's rule at every level
    of the tree — the million-cell counterpart of {!config}. *)

val hier :
  ?ff_fraction:float ->
  ?rent_exponent:float ->
  ?rent_coeff:float ->
  ?block_cells:int ->
  ?branching:int ->
  ?depth:int ->
  ?max_fanin:int ->
  name:string ->
  n_cells:int ->
  chip:Rc_geom.Rect.t ->
  seed:int ->
  unit ->
  hier_config
(** [hier ~name ~n_cells ~chip ~seed ()] with defaults: 12% flip-flops,
    Rent exponent 0.65 / coefficient 3.0, 4096-cell blocks, branching 4,
    depth 10, max fan-in 3. *)

val hier_counts : hier_config -> int * int
(** [(n_logic, n_ffs)] that {!generate_hier} will emit for this profile
    — exact, computed from the block layout without generating. *)

val generate_hier : hier_config -> Netlist.t
(** Build a hierarchical circuit. The construction streams edges through
    flat int arrays (O(edges) time and memory, no per-cell list or
    hashtable churn), so million-cell circuits generate in seconds.
    Guarantees: every movable cell drives a net and every logic cell and
    flip-flop sinks on one; combinational logic is acyclic (levelized
    inside blocks, cross-block sinks always at a strictly higher level
    or a flip-flop); pad count follows Rent's rule at die size.
    Deterministic in [hseed]. *)

val generate : config -> Netlist.t
(** Build the circuit. Guarantees: exactly [n_nets] nets; every
    flip-flop drives a net and sinks on a net (so every flip-flop takes
    part in sequential-adjacency constraints); combinational logic is
    acyclic by construction (levelized).
    @raise Invalid_argument when counts are inconsistent (e.g. [n_nets]
    smaller than [n_ffs + n_inputs] or larger than the number of
    potential drivers). *)

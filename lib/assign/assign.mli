(** Stage-3 flip-flop-to-ring assignment, in the paper's two flavors:

    - {!by_netflow} (Section V): minimize total tapping cost under ring
      capacities — solved optimally as a min-cost network flow (Fig. 4);
    - {!by_ilp} (Section VI): minimize the maximum load capacitance on
      any ring — LP relaxation plus the Fig. 5 greedy rounding;
    - {!by_branch_bound}: the generic exact ILP baseline of Table I,
      with a wall-clock budget standing in for the paper's 10-hour GLPK
      cap.

    Flip-flops are indexed [0 .. n-1] with positions and delay targets
    supplied per index. Candidate arcs connect each flip-flop only to
    its [candidates] nearest rings, as the paper prescribes for
    far-apart pairs. *)

type t = {
  ring_of_ff : int array;  (** Assigned ring per flip-flop. *)
  taps : Rc_rotary.Tapping.tap array;  (** The realizing tap per flip-flop. *)
  total_cost : float;  (** Total tapping wirelength, µm. *)
  loads : float array;  (** Load capacitance per ring, fF. *)
  max_load : float;  (** Max over [loads], fF. *)
}

val load_of_tap : Rc_tech.Tech.t -> Rc_rotary.Tapping.tap -> float
(** [C_p^{ij}]: stub wire capacitance plus the flip-flop input
    capacitance, fF. *)

type pool
(** All (flip-flop, candidate-ring) Eq. 1 solves of one assignment call
    in structure-of-arrays form: tap positions, arcs, costs, ring ids
    and case tags in parallel flat Bigarrays, segment [i] holding
    flip-flop [i]'s candidates in [Ring_array.rings_near] order.  The
    assignment hot loops stream these arrays directly; {!pool_tap}
    reconstructs the exact [Tapping.tap] a boxed candidate array would
    have held. *)

val candidate_taps_batch :
  Rc_tech.Tech.t ->
  Rc_rotary.Ring_array.t ->
  ff_positions:Rc_geom.Point.t array ->
  targets:float array ->
  candidates:int ->
  pool
(** Solve every flip-flop's [candidates] nearest-ring taps in one
    parallel batch.  Each flip-flop's solves write only its own pool
    segment, so the pool contents are identical for any job count. *)

val pool_count : pool -> int -> int
(** Candidates present for flip-flop [i] (≤ the call's [candidates]). *)

val pool_ring : pool -> int -> int -> int
(** [pool_ring p i q]: the ring id of flip-flop [i]'s [q]-th candidate. *)

val pool_tap : pool -> int -> int -> Rc_rotary.Tapping.tap
(** [pool_tap p i q]: the full tap record of candidate [(i, q)],
    bit-identical to the direct [Tapping.solve] result. *)

type cache
(** Cross-iteration reuse state for {!by_netflow}: a per-flip-flop cache
    of Eq. 1 candidate-tap solves (a slot is reused only when the
    flip-flop's position, delay target, and candidate count match the
    cached solve bit-for-bit) plus a warm-started
    {!Rc_netflow.Assignment.solver}. Reuse is reported under the
    [assign.tapcache.hits] / [misses] / [invalidations] and
    [netflow.assignment.*] metrics. *)

val make_cache : unit -> cache
(** An empty cache; pass it to successive {!by_netflow} calls of the
    same circuit to skip work whose inputs did not change. *)

val cache_invalidate : cache -> ff:int -> unit
(** Drop flip-flop [ff]'s cached candidate-tap segment so the next
    {!by_netflow} re-solves it even against identical inputs — the
    targeted hook for ECO edits that change a flip-flop's environment
    without moving it.  Out-of-range ids are ignored.  A forced
    re-solve reproduces the dropped segment bit-identically, so only
    work is affected, never results. *)

val cache_reset : cache -> unit
(** Empty the cache in place: candidate-tap segments, the retained
    pool, and the warm assignment solver.  Used when the ring array or
    technology changes (e.g. a clock-period edit), after which every
    cached solve is against the wrong geometry. *)

val retarget :
  Rc_tech.Tech.t ->
  Rc_rotary.Ring_array.t ->
  t ->
  ff_positions:Rc_geom.Point.t array ->
  ff:int ->
  ring:int ->
  target:float ->
  t
(** Reassign one flip-flop to [ring], re-solving its Eq. 1 tap against
    [target] and rebuilding the load/cost bookkeeping — the ECO
    "retarget a ring segment" edit.  Every other flip-flop's tap is
    kept verbatim.
    @raise Invalid_argument on an out-of-range [ff] or [ring]. *)

val by_netflow :
  ?candidates:int ->
  ?capacities:int array ->
  ?cache:cache ->
  Rc_tech.Tech.t ->
  Rc_rotary.Ring_array.t ->
  ff_positions:Rc_geom.Point.t array ->
  targets:float array ->
  t
(** Min-cost-flow assignment. [candidates] (default 6) nearest rings per
    flip-flop; [capacities] default to
    [Ring_array.default_capacities ~slack:1.3]. If capacities leave some
    flip-flop unassigned the candidate set is widened automatically.
    With [cache], unchanged flip-flops reuse their cached candidate taps
    and the flow network is replayed or warm-started when possible; the
    result is bit-identical to the uncached call.

    Above 4096 flip-flops (far past every Table II circuit, so the
    paper path keeps the exact global solve) the bipartite graph is
    sharded by ring neighborhood: the ring grid is tiled into
    contiguous square shards, each flip-flop joins the shard of its
    nearest candidate ring with its in-shard candidates, and the
    per-shard flows run as ordered pool sub-jobs — deterministic for
    any job count.  Flip-flops a shard cannot place locally are
    repaired sequentially against the remaining global capacity
    (nearest rings first), so the assignment is always complete; the
    warm tier is bypassed on this path.
    @raise Invalid_argument on size mismatches or infeasible total
    capacity. *)

type ilp_stats = {
  lp_optimum : float;  (** OPT(LP), fF. *)
  ilp_objective : float;  (** SOLN(ILP) after rounding, fF. *)
  integrality_gap : float;  (** Eq. 4. *)
  lp_iterations : int;
  elapsed_s : float;
}

val by_ilp :
  ?candidates:int ->
  Rc_tech.Tech.t ->
  Rc_rotary.Ring_array.t ->
  ff_positions:Rc_geom.Point.t array ->
  targets:float array ->
  t * ilp_stats
(** LP-relaxation + greedy rounding for the min-max-load formulation
    (Eq. 3). No capacity constraints — load balancing is implicit in the
    objective, as in the paper. *)

type bb_stats = {
  bb_objective : float;  (** Incumbent objective, fF ([infinity] if none). *)
  bb_gap : float;  (** Incumbent / LP-optimum (Table I's IG). *)
  proved_optimal : bool;
  bb_nodes : int;
  bb_elapsed_s : float;
}

val by_branch_bound :
  ?candidates:int ->
  ?limits:Rc_ilp.Branch_bound.limits ->
  Rc_tech.Tech.t ->
  Rc_rotary.Ring_array.t ->
  ff_positions:Rc_geom.Point.t array ->
  targets:float array ->
  t option * bb_stats
(** Exact branch & bound on the same ILP, truncated by [limits]
    (default 60 s). Returns [None] when no incumbent was found in
    budget — the paper saw the same on three of five circuits. *)

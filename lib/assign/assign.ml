open Rc_rotary

type t = {
  ring_of_ff : int array;
  taps : Tapping.tap array;
  total_cost : float;
  loads : float array;
  max_load : float;
}

let load_of_tap (tech : Rc_tech.Tech.t) (tap : Tapping.tap) =
  (tech.Rc_tech.Tech.c_wire *. tap.Tapping.wirelength) +. tech.Rc_tech.Tech.c_ff

let m_candidate_solves = Rc_obs.Metrics.counter "assign.candidate_solves"
let m_widen_retries = Rc_obs.Metrics.counter "assign.netflow.widen_retries"
let m_assignments = Rc_obs.Metrics.counter "assign.assignments"

(* the four Eq. 1 cases, counted over each *final* assignment's taps *)
let m_case1 = Rc_obs.Metrics.counter "assign.tap.case1_period_shift"
let m_case2 = Rc_obs.Metrics.counter "assign.tap.case2_two_root"
let m_case3 = Rc_obs.Metrics.counter "assign.tap.case3_tangent"
let m_case4 = Rc_obs.Metrics.counter "assign.tap.case4_snaked"

let count_tap_cases taps ff_positions =
  Array.iteri
    (fun i tap ->
      Rc_obs.Metrics.incr
        (match Tapping.case_of tap ~ff:ff_positions.(i) with
        | Tapping.Period_shift -> m_case1
        | Tapping.Two_root -> m_case2
        | Tapping.Tangent -> m_case3
        | Tapping.Snaked -> m_case4))
    taps

let check_inputs arr ff_positions targets =
  if Ring_array.n_rings arr = 0 then invalid_arg "Assign: empty ring array";
  if Array.length ff_positions <> Array.length targets then
    invalid_arg "Assign: positions/targets size mismatch"

(* Per-flip-flop candidates: the nearest rings and the Eq. 1 tap on
   each, as index-aligned arrays (the assignment hot path probes them
   per attempt, so no association lists). *)
type cand = { rings : int array; ctaps : Tapping.tap array }

(* Tap cache: solving Eq. 1 per (ff, ring) candidate once.  The per-FF
   solves are independent — the flow's second hot kernel — and fan out
   across the domain pool; the per-FF merge order is the array index,
   so the result is identical for any job count. *)
(* below ~64 flip-flops a solve is cheaper than waking the pool *)
let par_cutoff = 64

let candidate_taps tech arr ~ff_positions ~targets ~candidates =
  Rc_par.Pool.init ~min_items:par_cutoff (Array.length ff_positions) (fun i ->
      let rings = Array.of_list (Ring_array.rings_near arr ff_positions.(i) candidates) in
      let ctaps =
        Array.map
          (fun rj ->
            Tapping.solve tech (Ring_array.ring arr rj) ~ff:ff_positions.(i)
              ~target:targets.(i))
          rings
      in
      Rc_obs.Metrics.add m_candidate_solves (Array.length rings);
      { rings; ctaps })

(* --- Candidate-tap cache + warm-assignment session ---------------- *)

let m_tap_hits = Rc_obs.Metrics.counter "assign.tapcache.hits"
let m_tap_misses = Rc_obs.Metrics.counter "assign.tapcache.misses"
let m_tap_invalidations = Rc_obs.Metrics.counter "assign.tapcache.invalidations"

(* One cached Eq. 1 candidate solve. [key] is a quantized fingerprint of
   (position, delay target) for cheap rejection; the exact fields are
   the authority — a slot is reused only when position, target, and the
   candidate count match bit-for-bit, so a cached cand is
   indistinguishable from a fresh solve. *)
type tap_entry = {
  e_key : int;
  e_pos : Rc_geom.Point.t;
  e_target : float;
  e_k : int;
  e_cand : cand;
}

type cache = {
  mutable slots : tap_entry option array;  (* per flip-flop *)
  mutable slots_arr : Ring_array.t option;  (* ring array the slots refer to *)
  mutable solver : (Rc_netflow.Assignment.solver * int * int array) option;
      (* solver, n_items, capacities it was built for *)
}

let make_cache () = { slots = [||]; slots_arr = None; solver = None }

let quantized_key (p : Rc_geom.Point.t) target k =
  let q v = int_of_float (v *. 1024.0) in
  (q p.Rc_geom.Point.x * 31) + (q p.Rc_geom.Point.y * 17) + (q target * 7) + k

let candidate_taps_cached cache tech arr ~ff_positions ~targets ~candidates =
  let n = Array.length ff_positions in
  let fresh =
    match cache.slots_arr with Some a -> a != arr | None -> true
  in
  if fresh || Array.length cache.slots <> n then begin
    cache.slots <- Array.make n None;
    cache.slots_arr <- Some arr
  end;
  let slots = cache.slots in
  Rc_par.Pool.init ~min_items:par_cutoff n (fun i ->
      let p = ff_positions.(i) and target = targets.(i) in
      let key = quantized_key p target candidates in
      match slots.(i) with
      | Some e
        when e.e_key = key && e.e_k = candidates
             && e.e_pos.Rc_geom.Point.x = p.Rc_geom.Point.x
             && e.e_pos.Rc_geom.Point.y = p.Rc_geom.Point.y
             && e.e_target = target ->
          Rc_obs.Metrics.incr m_tap_hits;
          e.e_cand
      | prev ->
          Rc_obs.Metrics.incr
            (if prev = None then m_tap_misses else m_tap_invalidations);
          let rings = Array.of_list (Ring_array.rings_near arr p candidates) in
          let ctaps =
            Array.map
              (fun rj -> Tapping.solve tech (Ring_array.ring arr rj) ~ff:p ~target)
              rings
          in
          Rc_obs.Metrics.add m_candidate_solves (Array.length rings);
          let c = { rings; ctaps } in
          slots.(i) <- Some { e_key = key; e_pos = p; e_target = target; e_k = candidates; e_cand = c };
          c)

let tap_for c rj =
  let m = Array.length c.rings in
  let rec find k =
    if k >= m then raise Not_found else if c.rings.(k) = rj then c.ctaps.(k) else find (k + 1)
  in
  find 0

let finish tech arr ~ff_positions taps ring_of_ff =
  let loads = Array.make (Ring_array.n_rings arr) 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i (tap : Tapping.tap) ->
      total := !total +. tap.Tapping.wirelength;
      loads.(ring_of_ff.(i)) <- loads.(ring_of_ff.(i)) +. load_of_tap tech tap)
    taps;
  Rc_obs.Metrics.incr m_assignments;
  if Rc_obs.Metrics.enabled () then count_tap_cases taps ff_positions;
  {
    ring_of_ff;
    taps;
    total_cost = !total;
    loads;
    max_load = Array.fold_left Float.max 0.0 loads;
  }

let by_netflow ?(candidates = 6) ?capacities ?cache tech arr ~ff_positions ~targets =
  check_inputs arr ff_positions targets;
  let n = Array.length ff_positions in
  let capacities =
    match capacities with
    | Some c ->
        if Array.length c <> Ring_array.n_rings arr then
          invalid_arg "Assign.by_netflow: capacities size mismatch";
        c
    | None -> Ring_array.default_capacities arr ~n_ffs:n ~slack:1.3
  in
  if Array.fold_left ( + ) 0 capacities < n then
    invalid_arg "Assign.by_netflow: total capacity below flip-flop count";
  let solve_cands cands =
    match cache with
    | None ->
        Rc_netflow.Assignment.solve ~n_items:n ~n_bins:(Ring_array.n_rings arr) ~capacities
          cands
    | Some cc ->
        let solver =
          match cc.solver with
          | Some (s, sn, scaps) when sn = n && scaps = capacities -> s
          | _ ->
              let s =
                Rc_netflow.Assignment.make_solver ~n_items:n
                  ~n_bins:(Ring_array.n_rings arr) ~capacities
              in
              cc.solver <- Some (s, n, Array.copy capacities);
              s
        in
        Rc_netflow.Assignment.solve_with solver cands
  in
  let rec attempt k =
    let cand =
      match cache with
      | None -> candidate_taps tech arr ~ff_positions ~targets ~candidates:k
      | Some cc -> candidate_taps_cached cc tech arr ~ff_positions ~targets ~candidates:k
    in
    (* candidate arcs in (ff, nearest-ring) order, built back to front *)
    let cands = ref [] in
    for i = n - 1 downto 0 do
      let c = cand.(i) in
      for q = Array.length c.rings - 1 downto 0 do
        cands :=
          {
            Rc_netflow.Assignment.item = i;
            bin = c.rings.(q);
            cost = c.ctaps.(q).Tapping.wirelength;
          }
          :: !cands
      done
    done;
    let r = solve_cands !cands in
    if r.Rc_netflow.Assignment.assigned < n && k < Ring_array.n_rings arr then begin
      Rc_obs.Metrics.incr m_widen_retries;
      attempt (min (Ring_array.n_rings arr) (2 * k))
    end
    else begin
      let assignment = r.Rc_netflow.Assignment.assignment in
      let taps =
        Array.init n (fun i ->
            let rj = assignment.(i) in
            if rj < 0 then invalid_arg "Assign.by_netflow: unassignable flip-flop"
            else tap_for cand.(i) rj)
      in
      finish tech arr ~ff_positions taps assignment
    end
  in
  attempt candidates

type ilp_stats = {
  lp_optimum : float;
  ilp_objective : float;
  integrality_gap : float;
  lp_iterations : int;
  elapsed_s : float;
}

(* Build the Eq. 3 min-max ILP over the candidate arcs. Returns the LP
   problem, the (ff, ring, var, load) rows and the cap variable.
   Explicit loops keep the LP column order identical to the candidate
   enumeration order. *)
let build_minmax_problem tech arr cand =
  let open Rc_lp in
  let n = Array.length cand in
  let p = Problem.create () in
  let cap_var = Problem.add_var ~lo:0.0 ~obj:1.0 p in
  let triples = Array.make n [||] in
  for i = 0 to n - 1 do
    let c = cand.(i) in
    let m = Array.length c.rings in
    let row = Array.make m (0, 0, 0, 0.0) in
    for q = 0 to m - 1 do
      let v = Problem.add_var ~lo:0.0 ~hi:1.0 p in
      row.(q) <- (i, c.rings.(q), v, load_of_tap tech c.ctaps.(q))
    done;
    triples.(i) <- row
  done;
  (* each flip-flop on exactly one ring *)
  Array.iter
    (fun row ->
      ignore
        (Problem.add_row p
           (Array.to_list (Array.map (fun (_, _, v, _) -> (v, 1.0)) row))
           Problem.Eq 1.0))
    triples;
  (* per-ring load <= cap *)
  let per_ring = Array.make (Ring_array.n_rings arr) [] in
  Array.iter
    (fun row ->
      Array.iter (fun (_, rj, v, load) -> per_ring.(rj) <- (v, load) :: per_ring.(rj)) row)
    triples;
  Array.iter
    (fun entries ->
      if entries <> [] then
        ignore
          (Problem.add_row p
             ((cap_var, -1.0) :: List.map (fun (v, load) -> (v, load)) entries)
             Problem.Le 0.0))
    per_ring;
  (p, triples, cap_var)

let assignment_from_bins tech arr ~ff_positions cand bins =
  let n = Array.length cand in
  let taps = Array.init n (fun i -> tap_for cand.(i) bins.(i)) in
  finish tech arr ~ff_positions taps (Array.copy bins)

let by_ilp ?(candidates = 6) tech arr ~ff_positions ~targets =
  check_inputs arr ff_positions targets;
  let timer = Rc_util.Timer.start () in
  let n = Array.length ff_positions in
  let cand = candidate_taps tech arr ~ff_positions ~targets ~candidates in
  let p, triples, _cap = build_minmax_problem tech arr cand in
  let sol = Rc_lp.Simplex.solve p in
  if sol.Rc_lp.Simplex.status <> Rc_lp.Simplex.Optimal then
    failwith "Assign.by_ilp: LP relaxation did not solve";
  let xlp =
    Array.to_list triples
    |> List.concat_map (fun row ->
           Array.to_list
             (Array.map (fun (i, rj, v, _) -> (i, rj, sol.Rc_lp.Simplex.x.(v))) row))
  in
  let bins = Rc_ilp.Rounding.greedy_round ~n_items:n xlp in
  let result = assignment_from_bins tech arr ~ff_positions cand bins in
  let stats =
    {
      lp_optimum = sol.Rc_lp.Simplex.objective;
      ilp_objective = result.max_load;
      integrality_gap =
        Rc_ilp.Rounding.integrality_gap ~ilp_objective:result.max_load
          ~lp_optimum:sol.Rc_lp.Simplex.objective;
      lp_iterations = sol.Rc_lp.Simplex.iterations;
      elapsed_s = Rc_util.Timer.elapsed_s timer;
    }
  in
  (result, stats)

type bb_stats = {
  bb_objective : float;
  bb_gap : float;
  proved_optimal : bool;
  bb_nodes : int;
  bb_elapsed_s : float;
}

let by_branch_bound ?(candidates = 6) ?limits tech arr ~ff_positions ~targets =
  check_inputs arr ff_positions targets;
  let n = Array.length ff_positions in
  let cand = candidate_taps tech arr ~ff_positions ~targets ~candidates in
  let p, triples, _cap = build_minmax_problem tech arr cand in
  let lp = Rc_lp.Simplex.solve p in
  let lp_opt =
    if lp.Rc_lp.Simplex.status = Rc_lp.Simplex.Optimal then lp.Rc_lp.Simplex.objective else nan
  in
  let int_vars =
    Array.to_list triples
    |> List.concat_map (fun row -> Array.to_list (Array.map (fun (_, _, v, _) -> v) row))
  in
  let out = Rc_ilp.Branch_bound.solve ?limits p ~integer_vars:int_vars in
  let stats ok obj =
    {
      bb_objective = obj;
      bb_gap = (if ok then obj /. lp_opt else nan);
      proved_optimal = out.Rc_ilp.Branch_bound.status = Rc_ilp.Branch_bound.Proven_optimal;
      bb_nodes = out.Rc_ilp.Branch_bound.nodes;
      bb_elapsed_s = out.Rc_ilp.Branch_bound.elapsed_s;
    }
  in
  match out.Rc_ilp.Branch_bound.status with
  | Rc_ilp.Branch_bound.Proven_optimal | Rc_ilp.Branch_bound.Feasible ->
      let bins = Array.make n (-1) in
      Array.iter
        (fun row ->
          Array.iter
            (fun (i, rj, v, _) -> if out.Rc_ilp.Branch_bound.x.(v) > 0.5 then bins.(i) <- rj)
            row)
        triples;
      if Array.exists (fun b -> b < 0) bins then (None, stats false infinity)
      else begin
        let result = assignment_from_bins tech arr ~ff_positions cand bins in
        (Some result, stats true result.max_load)
      end
  | _ -> (None, stats false infinity)

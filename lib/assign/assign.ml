open Rc_rotary

type t = {
  ring_of_ff : int array;
  taps : Tapping.tap array;
  total_cost : float;
  loads : float array;
  max_load : float;
}

let load_of_tap (tech : Rc_tech.Tech.t) (tap : Tapping.tap) =
  (tech.Rc_tech.Tech.c_wire *. tap.Tapping.wirelength) +. tech.Rc_tech.Tech.c_ff

(* same expression over the pool's stored wirelength *)
let load_of_wl (tech : Rc_tech.Tech.t) wl =
  (tech.Rc_tech.Tech.c_wire *. wl) +. tech.Rc_tech.Tech.c_ff

let m_candidate_solves = Rc_obs.Metrics.counter "assign.candidate_solves"
let m_widen_retries = Rc_obs.Metrics.counter "assign.netflow.widen_retries"
let m_assignments = Rc_obs.Metrics.counter "assign.assignments"

(* the four Eq. 1 cases, counted over each *final* assignment's taps *)
let m_case1 = Rc_obs.Metrics.counter "assign.tap.case1_period_shift"
let m_case2 = Rc_obs.Metrics.counter "assign.tap.case2_two_root"
let m_case3 = Rc_obs.Metrics.counter "assign.tap.case3_tangent"
let m_case4 = Rc_obs.Metrics.counter "assign.tap.case4_snaked"

let count_tap_cases taps ff_positions =
  Array.iteri
    (fun i tap ->
      Rc_obs.Metrics.incr
        (match Tapping.case_of tap ~ff:ff_positions.(i) with
        | Tapping.Period_shift -> m_case1
        | Tapping.Two_root -> m_case2
        | Tapping.Tangent -> m_case3
        | Tapping.Snaked -> m_case4))
    taps

let check_inputs arr ff_positions targets =
  if Ring_array.n_rings arr = 0 then invalid_arg "Assign: empty ring array";
  if Array.length ff_positions <> Array.length targets then
    invalid_arg "Assign: positions/targets size mismatch"

(* --- Flat candidate pool ------------------------------------------ *)

type fvec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type ivec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* All (ff, candidate-ring) Eq. 1 solves of one assignment call as a
   structure of arrays: slot [i * stride + q] holds flip-flop [i]'s
   [q]-th candidate, in [Ring_array.rings_near] order.  Tap fields are
   spread across parallel Bigarrays (positions/arcs/costs as unboxed
   float64, ring ids and packed case tags as ints) so the hot
   enumeration loops stream flat memory instead of chasing per-FF
   record arrays; {!pool_tap} reconstructs the exact [Tapping.tap] on
   demand. *)
type pool = {
  n_ffs : int;
  stride : int;  (* the call's candidate count; per-FF counts may be less *)
  p_count : int array;  (* candidates actually present per flip-flop *)
  p_ring : ivec;
  p_x : fvec;
  p_y : fvec;
  p_arc : fvec;
  p_cost : fvec;  (* tap wirelength — the assignment cost *)
  p_tag : ivec;  (* (periods_shifted lsl 2) lor snaked lor conductor *)
}

let fvec n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n
let ivec n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let alloc_pool n_ffs stride =
  let slots = n_ffs * stride in
  {
    n_ffs;
    stride;
    p_count = Array.make n_ffs 0;
    p_ring = ivec slots;
    p_x = fvec slots;
    p_y = fvec slots;
    p_arc = fvec slots;
    p_cost = fvec slots;
    p_tag = ivec slots;
  }

let pool_count pl i = pl.p_count.(i)
let pool_ring pl i q = pl.p_ring.{(i * pl.stride) + q}
let pool_cost pl i q = pl.p_cost.{(i * pl.stride) + q}

let pool_tap pl i q =
  let o = (i * pl.stride) + q in
  let tag = pl.p_tag.{o} in
  {
    Tapping.ring = pl.p_ring.{o};
    point = { Rc_geom.Point.x = pl.p_x.{o}; y = pl.p_y.{o} };
    arc = pl.p_arc.{o};
    conductor = (if tag land 1 = 1 then Ring.Inner else Ring.Outer);
    wirelength = pl.p_cost.{o};
    snaked = tag land 2 <> 0;
    periods_shifted = tag asr 2;
  }

(* solve one flip-flop's candidates into its pool segment; returns the
   candidate count (= the Eq. 1 solves charged to assign.candidate_solves) *)
let fill_ff pl tech arr i p target =
  let rings = Ring_array.rings_near arr p pl.stride in
  let base = i * pl.stride in
  let q = ref 0 in
  List.iter
    (fun rj ->
      let tap = Tapping.solve tech (Ring_array.ring arr rj) ~ff:p ~target in
      let o = base + !q in
      pl.p_ring.{o} <- rj;
      pl.p_x.{o} <- tap.Tapping.point.Rc_geom.Point.x;
      pl.p_y.{o} <- tap.Tapping.point.Rc_geom.Point.y;
      pl.p_arc.{o} <- tap.Tapping.arc;
      pl.p_cost.{o} <- tap.Tapping.wirelength;
      pl.p_tag.{o} <-
        (tap.Tapping.periods_shifted lsl 2)
        lor (if tap.Tapping.snaked then 2 else 0)
        lor (match tap.Tapping.conductor with Ring.Inner -> 1 | Ring.Outer -> 0);
      incr q)
    rings;
  pl.p_count.(i) <- !q;
  !q

(* below ~64 flip-flops a solve is cheaper than waking the pool *)
let par_cutoff = 64

(* The per-FF solves are independent — the flow's second hot kernel —
   and fan out across the domain pool in one batch; every write lands in
   flip-flop [i]'s own pool segment, so the result is identical for any
   job count. *)
let candidate_taps_batch tech arr ~ff_positions ~targets ~candidates =
  let n = Array.length ff_positions in
  let pl = alloc_pool n candidates in
  Rc_par.Pool.for_ ~min_items:par_cutoff n (fun i ->
      let solves = fill_ff pl tech arr i ff_positions.(i) targets.(i) in
      Rc_obs.Metrics.add m_candidate_solves solves);
  pl

(* --- Candidate-tap cache + warm-assignment session ---------------- *)

let m_tap_hits = Rc_obs.Metrics.counter "assign.tapcache.hits"
let m_tap_misses = Rc_obs.Metrics.counter "assign.tapcache.misses"
let m_tap_invalidations = Rc_obs.Metrics.counter "assign.tapcache.invalidations"

(* The cache *is* a retained pool: a slot segment is reused only when
   the flip-flop's position, delay target, and the call's candidate
   count match the cached solve bit-for-bit ([c_key] is a quantized
   fingerprint for cheap rejection; the exact fields are the authority),
   so a cached segment is indistinguishable from a fresh solve.
   [c_valid] survives pool reallocation (a candidate-count change) to
   keep the hit/miss/invalidation accounting identical to a slot cache:
   a previously-cached flip-flop that must re-solve counts as an
   invalidation, a never-cached one as a miss. *)
type cache = {
  mutable c_pool : pool option;
  mutable c_valid : bool array;
  mutable c_key : int array;
  mutable c_x : float array;
  mutable c_y : float array;
  mutable c_t : float array;
  mutable c_arr : Ring_array.t option;  (* ring array the pool refers to *)
  mutable solver : (Rc_netflow.Assignment.solver * int * int array) option;
      (* solver, n_items, capacities it was built for *)
}

let make_cache () =
  {
    c_pool = None;
    c_valid = [||];
    c_key = [||];
    c_x = [||];
    c_y = [||];
    c_t = [||];
    c_arr = None;
    solver = None;
  }

let cache_invalidate cc ~ff =
  if ff >= 0 && ff < Array.length cc.c_valid then cc.c_valid.(ff) <- false

let cache_reset cc =
  cc.c_pool <- None;
  cc.c_valid <- [||];
  cc.c_key <- [||];
  cc.c_x <- [||];
  cc.c_y <- [||];
  cc.c_t <- [||];
  cc.c_arr <- None;
  cc.solver <- None

let quantized_key (p : Rc_geom.Point.t) target k =
  let q v = int_of_float (v *. 1024.0) in
  (q p.Rc_geom.Point.x * 31) + (q p.Rc_geom.Point.y * 17) + (q target * 7) + k

let candidate_taps_cached cc tech arr ~ff_positions ~targets ~candidates =
  let n = Array.length ff_positions in
  let fresh = match cc.c_arr with Some a -> a != arr | None -> true in
  if fresh || Array.length cc.c_valid <> n then begin
    cc.c_valid <- Array.make n false;
    cc.c_key <- Array.make n 0;
    cc.c_x <- Array.make n 0.0;
    cc.c_y <- Array.make n 0.0;
    cc.c_t <- Array.make n 0.0;
    cc.c_pool <- None;
    cc.c_arr <- Some arr
  end;
  let pl, retained =
    match cc.c_pool with
    | Some pl when pl.stride = candidates && pl.n_ffs = n -> (pl, true)
    | _ -> (alloc_pool n candidates, false)
  in
  Rc_par.Pool.for_ ~min_items:par_cutoff n (fun i ->
      let p = ff_positions.(i) and target = targets.(i) in
      let key = quantized_key p target candidates in
      if
        retained && cc.c_valid.(i) && cc.c_key.(i) = key
        && cc.c_x.(i) = p.Rc_geom.Point.x
        && cc.c_y.(i) = p.Rc_geom.Point.y
        && cc.c_t.(i) = target
      then Rc_obs.Metrics.incr m_tap_hits
      else begin
        Rc_obs.Metrics.incr
          (if cc.c_valid.(i) then m_tap_invalidations else m_tap_misses);
        let solves = fill_ff pl tech arr i p target in
        Rc_obs.Metrics.add m_candidate_solves solves;
        cc.c_valid.(i) <- true;
        cc.c_key.(i) <- key;
        cc.c_x.(i) <- p.Rc_geom.Point.x;
        cc.c_y.(i) <- p.Rc_geom.Point.y;
        cc.c_t.(i) <- target
      end);
  cc.c_pool <- Some pl;
  pl

let tap_for pl i rj =
  let m = pool_count pl i in
  let rec find q =
    if q >= m then raise Not_found
    else if pool_ring pl i q = rj then pool_tap pl i q
    else find (q + 1)
  in
  find 0

let finish tech arr ~ff_positions taps ring_of_ff =
  let loads = Array.make (Ring_array.n_rings arr) 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i (tap : Tapping.tap) ->
      total := !total +. tap.Tapping.wirelength;
      loads.(ring_of_ff.(i)) <- loads.(ring_of_ff.(i)) +. load_of_tap tech tap)
    taps;
  Rc_obs.Metrics.incr m_assignments;
  if Rc_obs.Metrics.enabled () then count_tap_cases taps ff_positions;
  {
    ring_of_ff;
    taps;
    total_cost = !total;
    loads;
    max_load = Array.fold_left Float.max 0.0 loads;
  }

(* One-flip-flop reassignment for the ECO edit path: re-solve only the
   retargeted flip-flop's tap and rebuild the aggregate bookkeeping
   (loads, total cost) over the otherwise-verbatim tap array. *)
let retarget tech arr t ~ff_positions ~ff ~ring ~target =
  let n = Array.length t.ring_of_ff in
  if ff < 0 || ff >= n then invalid_arg "Assign.retarget: flip-flop out of range";
  if ring < 0 || ring >= Ring_array.n_rings arr then
    invalid_arg "Assign.retarget: ring out of range";
  let tap = Tapping.solve tech (Ring_array.ring arr ring) ~ff:ff_positions.(ff) ~target in
  Rc_obs.Metrics.incr m_candidate_solves;
  let taps = Array.copy t.taps in
  let ring_of_ff = Array.copy t.ring_of_ff in
  taps.(ff) <- tap;
  ring_of_ff.(ff) <- ring;
  finish tech arr ~ff_positions taps ring_of_ff

(* --- Sharded netflow at scale ------------------------------------- *)

(* Above this many flip-flops the single global min-cost flow is
   replaced by one flow per ring-neighborhood shard; every paper
   circuit sits far under it, so the exact global solve (and its warm
   tiers) is untouched. *)
let shard_threshold = 4096

let m_shard_solves = Rc_obs.Metrics.counter "assign.netflow.shard_solves"
let m_shard_repairs = Rc_obs.Metrics.counter "assign.netflow.shard_repairs"

(* Partition the g×g ring grid into contiguous square tiles; each
   flip-flop belongs to the tile of its nearest candidate ring and only
   keeps candidates inside that tile, so the bipartite graph splits
   into independent shards solved as ordered [Pool.map] sub-jobs
   (deterministic merge by flip-flop index, any job count).  Shards are
   capacity-sliced from the global capacities; flip-flops a shard
   cannot place (local capacity exhausted) go through a sequential
   repair pass over the remaining global capacity, nearest rings
   first, so the result is always a complete assignment. *)
let solve_sharded tech arr ~capacities pl ~ff_positions ~targets =
  let n = pl.n_ffs in
  let g = Ring_array.grid arr in
  let nr = Ring_array.n_rings arr in
  let ts = max 4 (g / 8) in
  let tiles_x = (g + ts - 1) / ts in
  let n_shards = tiles_x * tiles_x in
  let shard_of_ring rj = (rj / g / ts * tiles_x) + (rj mod g / ts) in
  let shard_of_ff = Array.init n (fun i -> shard_of_ring (pool_ring pl i 0)) in
  (* flip-flops of each shard, bucketed in ascending index order *)
  let foff = Array.make (n_shards + 1) 0 in
  for i = 0 to n - 1 do
    foff.(shard_of_ff.(i) + 1) <- foff.(shard_of_ff.(i) + 1) + 1
  done;
  for s = 1 to n_shards do
    foff.(s) <- foff.(s) + foff.(s - 1)
  done;
  let fmem = Array.make n 0 in
  let cursor = Array.copy foff in
  for i = 0 to n - 1 do
    let s = shard_of_ff.(i) in
    fmem.(cursor.(s)) <- i;
    cursor.(s) <- cursor.(s) + 1
  done;
  (* rings of each shard and their shard-local indices *)
  let roff = Array.make (n_shards + 1) 0 in
  for rj = 0 to nr - 1 do
    roff.(shard_of_ring rj + 1) <- roff.(shard_of_ring rj + 1) + 1
  done;
  for s = 1 to n_shards do
    roff.(s) <- roff.(s) + roff.(s - 1)
  done;
  let rmem = Array.make nr 0 and rloc = Array.make nr 0 in
  let rcursor = Array.copy roff in
  for rj = 0 to nr - 1 do
    let s = shard_of_ring rj in
    rmem.(rcursor.(s)) <- rj;
    rloc.(rj) <- rcursor.(s) - roff.(s);
    rcursor.(s) <- rcursor.(s) + 1
  done;
  let solve_one s =
    let n_items = foff.(s + 1) - foff.(s) in
    if n_items = 0 then [||]
    else begin
      let n_bins = roff.(s + 1) - roff.(s) in
      let caps = Array.init n_bins (fun b -> capacities.(rmem.(roff.(s) + b))) in
      (* candidate arcs in (ff, nearest-ring) order, built back to front *)
      let cands = ref [] in
      for idx = n_items - 1 downto 0 do
        let i = fmem.(foff.(s) + idx) in
        for q = pool_count pl i - 1 downto 0 do
          let rj = pool_ring pl i q in
          if shard_of_ring rj = s then
            cands :=
              { Rc_netflow.Assignment.item = idx; bin = rloc.(rj); cost = pool_cost pl i q }
              :: !cands
        done
      done;
      let r =
        Rc_netflow.Assignment.solve ~n_items ~n_bins ~capacities:caps !cands
      in
      Rc_obs.Metrics.incr m_shard_solves;
      Array.map (fun b -> if b < 0 then -1 else rmem.(roff.(s) + b)) r.Rc_netflow.Assignment.assignment
    end
  in
  let shard_rings =
    Rc_par.Pool.map solve_one (Array.init n_shards Fun.id)
  in
  let ring_of_ff = Array.make n (-1) in
  Array.iteri
    (fun s rings ->
      Array.iteri (fun idx rj -> ring_of_ff.(fmem.(foff.(s) + idx)) <- rj) rings)
    shard_rings;
  (* sequential repair over the remaining global capacity *)
  let cap_left = Array.copy capacities in
  for i = 0 to n - 1 do
    let rj = ring_of_ff.(i) in
    if rj >= 0 then cap_left.(rj) <- cap_left.(rj) - 1
  done;
  let repair_taps = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    if ring_of_ff.(i) < 0 then begin
      Rc_obs.Metrics.incr m_shard_repairs;
      (* cheapest pooled candidate with capacity left ... *)
      let best = ref (-1) and best_cost = ref infinity in
      for q = 0 to pool_count pl i - 1 do
        let rj = pool_ring pl i q in
        if cap_left.(rj) > 0 && pool_cost pl i q < !best_cost then begin
          best := q;
          best_cost := pool_cost pl i q
        end
      done;
      if !best >= 0 then begin
        let rj = pool_ring pl i !best in
        ring_of_ff.(i) <- rj;
        cap_left.(rj) <- cap_left.(rj) - 1
      end
      else begin
        (* ... else walk outward over all rings (total capacity covers
           n, so this always terminates with a ring) *)
        let rec widen = function
          | [] -> invalid_arg "Assign.by_netflow: unassignable flip-flop"
          | rj :: rest ->
              if cap_left.(rj) > 0 then begin
                let tap =
                  Tapping.solve tech (Ring_array.ring arr rj) ~ff:ff_positions.(i)
                    ~target:targets.(i)
                in
                Rc_obs.Metrics.incr m_candidate_solves;
                ring_of_ff.(i) <- rj;
                cap_left.(rj) <- cap_left.(rj) - 1;
                Hashtbl.replace repair_taps i tap
              end
              else widen rest
        in
        widen (Ring_array.rings_near arr ff_positions.(i) nr)
      end
    end
  done;
  let taps =
    Array.init n (fun i ->
        match Hashtbl.find_opt repair_taps i with
        | Some tap -> tap
        | None -> tap_for pl i ring_of_ff.(i))
  in
  finish tech arr ~ff_positions taps ring_of_ff

let by_netflow ?(candidates = 6) ?capacities ?cache tech arr ~ff_positions ~targets =
  check_inputs arr ff_positions targets;
  let n = Array.length ff_positions in
  let capacities =
    match capacities with
    | Some c ->
        if Array.length c <> Ring_array.n_rings arr then
          invalid_arg "Assign.by_netflow: capacities size mismatch";
        c
    | None -> Ring_array.default_capacities arr ~n_ffs:n ~slack:1.3
  in
  if Array.fold_left ( + ) 0 capacities < n then
    invalid_arg "Assign.by_netflow: total capacity below flip-flop count";
  let solve_cands cands =
    match cache with
    | None ->
        Rc_netflow.Assignment.solve ~n_items:n ~n_bins:(Ring_array.n_rings arr) ~capacities
          cands
    | Some cc ->
        let solver =
          match cc.solver with
          | Some (s, sn, scaps) when sn = n && scaps = capacities -> s
          | _ ->
              let s =
                Rc_netflow.Assignment.make_solver ~n_items:n
                  ~n_bins:(Ring_array.n_rings arr) ~capacities
              in
              cc.solver <- Some (s, n, Array.copy capacities);
              s
        in
        Rc_netflow.Assignment.solve_with solver cands
  in
  let rec attempt k =
    let pl =
      match cache with
      | None -> candidate_taps_batch tech arr ~ff_positions ~targets ~candidates:k
      | Some cc -> candidate_taps_cached cc tech arr ~ff_positions ~targets ~candidates:k
    in
    if n >= shard_threshold then
      (* the sharded path replaces both the global solve and its warm
         tier; the widen/repair loop lives inside [solve_sharded] *)
      solve_sharded tech arr ~capacities pl ~ff_positions ~targets
    else begin
    (* candidate arcs in (ff, nearest-ring) order, built back to front *)
    let cands = ref [] in
    for i = n - 1 downto 0 do
      for q = pool_count pl i - 1 downto 0 do
        cands :=
          {
            Rc_netflow.Assignment.item = i;
            bin = pool_ring pl i q;
            cost = pool_cost pl i q;
          }
          :: !cands
      done
    done;
    let r = solve_cands !cands in
    if r.Rc_netflow.Assignment.assigned < n && k < Ring_array.n_rings arr then begin
      Rc_obs.Metrics.incr m_widen_retries;
      attempt (min (Ring_array.n_rings arr) (2 * k))
    end
    else begin
      let assignment = r.Rc_netflow.Assignment.assignment in
      let taps =
        Array.init n (fun i ->
            let rj = assignment.(i) in
            if rj < 0 then invalid_arg "Assign.by_netflow: unassignable flip-flop"
            else tap_for pl i rj)
      in
      finish tech arr ~ff_positions taps assignment
    end
    end
  in
  attempt candidates

type ilp_stats = {
  lp_optimum : float;
  ilp_objective : float;
  integrality_gap : float;
  lp_iterations : int;
  elapsed_s : float;
}

(* Build the Eq. 3 min-max ILP over the candidate arcs. Returns the LP
   problem, the (ff, ring, var, load) rows and the cap variable.
   Explicit loops keep the LP column order identical to the candidate
   enumeration order. *)
let build_minmax_problem tech arr pl =
  let open Rc_lp in
  let n = pl.n_ffs in
  let p = Problem.create () in
  let cap_var = Problem.add_var ~lo:0.0 ~obj:1.0 p in
  let triples = Array.make n [||] in
  for i = 0 to n - 1 do
    let m = pool_count pl i in
    let row = Array.make m (0, 0, 0, 0.0) in
    for q = 0 to m - 1 do
      let v = Problem.add_var ~lo:0.0 ~hi:1.0 p in
      row.(q) <- (i, pool_ring pl i q, v, load_of_wl tech (pool_cost pl i q))
    done;
    triples.(i) <- row
  done;
  (* each flip-flop on exactly one ring *)
  Array.iter
    (fun row ->
      ignore
        (Problem.add_row p
           (Array.to_list (Array.map (fun (_, _, v, _) -> (v, 1.0)) row))
           Problem.Eq 1.0))
    triples;
  (* per-ring load <= cap *)
  let per_ring = Array.make (Ring_array.n_rings arr) [] in
  Array.iter
    (fun row ->
      Array.iter (fun (_, rj, v, load) -> per_ring.(rj) <- (v, load) :: per_ring.(rj)) row)
    triples;
  Array.iter
    (fun entries ->
      if entries <> [] then
        ignore
          (Problem.add_row p
             ((cap_var, -1.0) :: List.map (fun (v, load) -> (v, load)) entries)
             Problem.Le 0.0))
    per_ring;
  (p, triples, cap_var)

let assignment_from_bins tech arr ~ff_positions pl bins =
  let n = pl.n_ffs in
  let taps = Array.init n (fun i -> tap_for pl i bins.(i)) in
  finish tech arr ~ff_positions taps (Array.copy bins)

let by_ilp ?(candidates = 6) tech arr ~ff_positions ~targets =
  check_inputs arr ff_positions targets;
  let timer = Rc_util.Timer.start () in
  let n = Array.length ff_positions in
  let pl = candidate_taps_batch tech arr ~ff_positions ~targets ~candidates in
  let p, triples, _cap = build_minmax_problem tech arr pl in
  let sol = Rc_lp.Simplex.solve p in
  if sol.Rc_lp.Simplex.status <> Rc_lp.Simplex.Optimal then
    failwith "Assign.by_ilp: LP relaxation did not solve";
  let xlp =
    Array.to_list triples
    |> List.concat_map (fun row ->
           Array.to_list
             (Array.map (fun (i, rj, v, _) -> (i, rj, sol.Rc_lp.Simplex.x.(v))) row))
  in
  let bins = Rc_ilp.Rounding.greedy_round ~n_items:n xlp in
  let result = assignment_from_bins tech arr ~ff_positions pl bins in
  let stats =
    {
      lp_optimum = sol.Rc_lp.Simplex.objective;
      ilp_objective = result.max_load;
      integrality_gap =
        Rc_ilp.Rounding.integrality_gap ~ilp_objective:result.max_load
          ~lp_optimum:sol.Rc_lp.Simplex.objective;
      lp_iterations = sol.Rc_lp.Simplex.iterations;
      elapsed_s = Rc_util.Timer.elapsed_s timer;
    }
  in
  (result, stats)

type bb_stats = {
  bb_objective : float;
  bb_gap : float;
  proved_optimal : bool;
  bb_nodes : int;
  bb_elapsed_s : float;
}

let by_branch_bound ?(candidates = 6) ?limits tech arr ~ff_positions ~targets =
  check_inputs arr ff_positions targets;
  let n = Array.length ff_positions in
  let pl = candidate_taps_batch tech arr ~ff_positions ~targets ~candidates in
  let p, triples, _cap = build_minmax_problem tech arr pl in
  let lp = Rc_lp.Simplex.solve p in
  let lp_opt =
    if lp.Rc_lp.Simplex.status = Rc_lp.Simplex.Optimal then lp.Rc_lp.Simplex.objective else nan
  in
  let int_vars =
    Array.to_list triples
    |> List.concat_map (fun row -> Array.to_list (Array.map (fun (_, _, v, _) -> v) row))
  in
  let out = Rc_ilp.Branch_bound.solve ?limits p ~integer_vars:int_vars in
  let stats ok obj =
    {
      bb_objective = obj;
      bb_gap = (if ok then obj /. lp_opt else nan);
      proved_optimal = out.Rc_ilp.Branch_bound.status = Rc_ilp.Branch_bound.Proven_optimal;
      bb_nodes = out.Rc_ilp.Branch_bound.nodes;
      bb_elapsed_s = out.Rc_ilp.Branch_bound.elapsed_s;
    }
  in
  match out.Rc_ilp.Branch_bound.status with
  | Rc_ilp.Branch_bound.Proven_optimal | Rc_ilp.Branch_bound.Feasible ->
      let bins = Array.make n (-1) in
      Array.iter
        (fun row ->
          Array.iter
            (fun (i, rj, v, _) -> if out.Rc_ilp.Branch_bound.x.(v) > 0.5 then bins.(i) <- rj)
            row)
        triples;
      if Array.exists (fun b -> b < 0) bins then (None, stats false infinity)
      else begin
        let result = assignment_from_bins tech arr ~ff_positions pl bins in
        (Some result, stats true result.max_load)
      end
  | _ -> (None, stats false infinity)

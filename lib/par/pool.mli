(** Deterministic domain-parallel execution for the flow's hot kernels.

    A single process-wide pool of worker domains executes chunked
    parallel loops and ordered maps.  The contract every caller relies
    on:

    - {b Determinism.} Every primitive produces output identical to its
      sequential execution, for any job count: ordered maps write
      result slot [i] from input [i] only, parallel loops own disjoint
      index ranges, and work is claimed by index, never racily merged.
    - {b jobs = 1 bypasses the pool entirely}: no domains are spawned
      and the body runs in the calling domain, so a single-job run is
      the sequential program, not a degenerate parallel one.
    - {b Nesting is sequential.} A parallel primitive called from inside
      a worker (e.g. a flow arm that itself solves CG systems) runs its
      body sequentially in that worker — no deadlock, same results.
    - {b Exceptions propagate.} The first exception raised by any
      participant is re-raised in the caller once the region quiesces.

    The job count comes from [ROTARY_JOBS], a [set_jobs] call (the
    CLI/bench [--jobs] flag), or [Domain.recommended_domain_count]
    capped at {!max_jobs}.  The pool is created lazily on first use and
    torn down via [at_exit]. *)

val max_jobs : int
(** Upper cap on the automatic job count (explicit settings may exceed
    it, up to 64). *)

val default_jobs : unit -> int
(** The job count a fresh pool would use: [ROTARY_JOBS] if set to a
    positive integer, otherwise [Domain.recommended_domain_count ()]
    capped at {!max_jobs}. *)

val set_jobs : int -> unit
(** Override the job count (clamped to [1 .. 64]).  Shuts down any
    existing pool; the next primitive re-creates one lazily. *)

val jobs : unit -> int
(** The job count currently in effect. *)

val in_parallel_region : unit -> bool
(** True inside a pool worker (where primitives run sequentially). *)

val sequential_scope : (unit -> 'a) -> 'a
(** [sequential_scope f] runs [f] with every pool primitive forced to
    its sequential path in the calling domain, and restores the previous
    behavior afterwards (also on exceptions).  For callers that provide
    their own cross-task parallelism — e.g. the serve scheduler's worker
    domains, which must not open concurrent pool regions — the pool's
    determinism contract makes this transparent: sequential execution
    produces bit-identical results. *)

val region : (unit -> 'a) -> 'a
(** [region f] runs [f] with the pool's workers held captive for its
    whole extent: every primitive called inside [f] publishes a sub-job
    to the waiting workers through a lock-free sub-barrier instead of
    waking the pool through its mutex — one domain wake-up per stage
    instead of one per solve.  Wrap a stage loop (placement iterations,
    the flow's assign/evaluate cycle) in [region]; leave leaf calls
    unchanged.

    Semantics are unchanged: work is claimed by index exactly as in a
    plain pool region, so results are bit-identical for any job count;
    exceptions raised by any participant re-raise in the caller; nested
    [region]s and primitives running inside sub-job bodies collapse to
    direct sequential calls.  When [jobs () = 1], inside a worker, or
    under {!sequential_scope}, [region f] is just [f ()]. *)

type 'a keepalive
(** Per-participant scratch slabs that survive across primitive calls.
    Slot [id] belongs exclusively to participant [id] of the pool, so
    reuse is race-free and does not affect determinism. *)

val keepalive : unit -> 'a keepalive
(** A fresh keepalive with no slabs allocated; {!for_with} fills slots
    on demand via its [init]. *)

val both : ?parallel:bool -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run the two thunks, concurrently when [jobs () > 1].  [both f g]
    equals [(f (), g ())] bit-for-bit when [f] and [g] are independent.
    Pass [~parallel:false] when the caller knows the work is too small
    to amortize a pool region — the thunks then run sequentially in the
    calling domain (identical results, no region overhead). *)

val for_ : ?chunk:int -> ?min_items:int -> int -> (int -> unit) -> unit
(** [for_ n body] runs [body i] for [i = 0 .. n-1], claimed in chunks of
    [chunk] (default: [n / (8 * jobs)], at least 1) by the
    participants.  [body] must only write state owned by index [i].
    When [n < min_items] (default 2) the loop runs sequentially in the
    calling domain: a per-call cutoff for bodies too cheap to amortize
    waking the pool.  Results are identical either way. *)

val for_with :
  ?chunk:int ->
  ?min_items:int ->
  ?reuse:'s keepalive ->
  init:(unit -> 's) ->
  int ->
  ('s -> int -> unit) ->
  unit
(** Like {!for_}, but each participating domain calls [init] once and
    passes the resulting scratch state to every [body] call it executes
    — per-domain scratch buffers without per-index allocation.

    With [~reuse:ka], the slab for participant [id] is looked up in
    [ka] first and stored there after creation, so repeated calls (a
    batch region's iteration loop) allocate scratch at most once per
    participant instead of once per call.  The caller owns [ka] and
    must pass it only to call sites whose [init] builds compatible
    scratch. *)

val map : ?min_items:int -> ('a -> 'b) -> 'a array -> 'b array
(** Ordered parallel map: result slot [i] is [f a.(i)].  Identical to
    [Array.map f a] for pure [f], for any job count.  Sequential below
    [min_items] elements (default 2), like {!for_}. *)

val mapi : ?min_items:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Ordered parallel mapi, same guarantees as {!map}. *)

val map_list : ?min_items:int -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map over a list (internally via arrays). *)

val init : ?min_items:int -> int -> (int -> 'a) -> 'a array
(** Ordered parallel [Array.init] (evaluation order of [f] is not
    left-to-right, but slot contents are identical for pure [f]).
    Sequential below [min_items] elements (default 2), like {!for_}. *)

val shutdown : unit -> unit
(** Join and discard the pool's domains (idempotent).  Registered with
    [at_exit]; callers only need it to force teardown early. *)

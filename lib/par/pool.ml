(* Persistent domain pool behind the deterministic parallel primitives.

   Design: one process-wide pool of [jobs - 1] worker domains plus the
   calling domain.  A "region" publishes one job function; every
   participant (workers + caller) runs it, claiming work by index from
   an atomic counter, so chunks never overlap and results land in
   caller-owned slots.  The caller waits until all workers quiesce
   before reading results — the pool mutex provides the happens-before
   edge for every slot written inside the region.

   Determinism holds by construction: parallel bodies only write state
   owned by their index (ordered maps) or their domain (for_with
   scratch), so scheduling cannot change any output bit.

   jobs = 1 (or nesting inside a worker) short-circuits every primitive
   to a plain sequential loop: no pool, no domains, no atomics. *)

let max_jobs = 8
let hard_cap = 64

let env_jobs () =
  match Sys.getenv_opt "ROTARY_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n hard_cap)
      | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (min (Domain.recommended_domain_count ()) max_jobs)

(* explicit --jobs / set_jobs override; None = resolve from environment *)
let requested = ref None
let jobs_value () = match !requested with Some n -> n | None -> default_jobs ()
let jobs = jobs_value

type pool = {
  n : int;  (* participants, including the calling domain *)
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a new region starts (epoch bump) *)
  quiet : Condition.t;  (* signalled when the last worker finishes *)
  mutable epoch : int;
  mutable job : (int -> unit) option;
  mutable running : int;  (* workers still inside the current region *)
  mutable failed : exn option;  (* first exception raised by a worker *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let in_region_key = Domain.DLS.new_key (fun () -> false)
let in_parallel_region () = Domain.DLS.get in_region_key

(* force every nested primitive to its sequential path for the duration
   of [f] — used by callers that provide their own cross-task
   parallelism (e.g. the serve scheduler's worker domains, where two
   concurrent pool regions would race on the single region slot) *)
let sequential_scope f =
  let saved = Domain.DLS.get in_region_key in
  Domain.DLS.set in_region_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_region_key saved) f

let worker pool id () =
  (* workers only ever execute region bodies: nested primitives must
     run sequentially, so the flag is set for the domain's lifetime *)
  Domain.DLS.set in_region_key true;
  (* metric shards: worker ids are stable and never concurrently reused
     (get_pool joins the previous generation before spawning), so the
     worker id doubles as this domain's shard slot *)
  Rc_obs.Metrics.set_shard_slot id;
  let my_epoch = ref 0 in
  let live = ref true in
  while !live do
    Mutex.lock pool.lock;
    while (not pool.stop) && pool.epoch = !my_epoch do
      Condition.wait pool.work pool.lock
    done;
    if pool.stop then begin
      Mutex.unlock pool.lock;
      live := false
    end
    else begin
      my_epoch := pool.epoch;
      let f = match pool.job with Some f -> f | None -> fun _ -> () in
      Mutex.unlock pool.lock;
      (try f id
       with e ->
         Mutex.lock pool.lock;
         if pool.failed = None then pool.failed <- Some e;
         Mutex.unlock pool.lock);
      Mutex.lock pool.lock;
      pool.running <- pool.running - 1;
      if pool.running = 0 then Condition.broadcast pool.quiet;
      Mutex.unlock pool.lock
    end
  done

(* the process-wide pool; guarded by [pool_lock].  Only the main domain
   creates or destroys it (workers never reach [get_pool]). *)
let the_pool = ref None
let pool_lock = Mutex.create ()

let shutdown_pool p =
  Mutex.lock p.lock;
  p.stop <- true;
  Condition.broadcast p.work;
  Mutex.unlock p.lock;
  Array.iter Domain.join p.domains

let shutdown () =
  Mutex.lock pool_lock;
  let p = !the_pool in
  the_pool := None;
  Mutex.unlock pool_lock;
  Option.iter shutdown_pool p

(* blocked workers would keep the runtime from shutting down *)
let () = at_exit shutdown

let set_jobs n =
  shutdown ();
  requested := Some (max 1 (min n hard_cap))

let create_pool n =
  let pool =
    {
      n;
      lock = Mutex.create ();
      work = Condition.create ();
      quiet = Condition.create ();
      epoch = 0;
      job = None;
      running = 0;
      failed = None;
      stop = false;
      domains = [||];
    }
  in
  pool.domains <- Array.init (n - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let get_pool () =
  Mutex.lock pool_lock;
  let p =
    match !the_pool with
    | Some p when p.n = jobs_value () -> p
    | existing ->
        Option.iter shutdown_pool existing;
        let p = create_pool (jobs_value ()) in
        the_pool := Some p;
        p
  in
  Mutex.unlock pool_lock;
  p

(* run one region: publish the job, participate as id 0, wait for the
   workers, re-raise the first exception seen *)
let run_region pool (g : int -> unit) =
  Mutex.lock pool.lock;
  pool.job <- Some g;
  pool.failed <- None;
  pool.running <- pool.n - 1;
  pool.epoch <- pool.epoch + 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  Domain.DLS.set in_region_key true;
  let caller_exn = (try g 0; None with e -> Some e) in
  Domain.DLS.set in_region_key false;
  Mutex.lock pool.lock;
  while pool.running > 0 do
    Condition.wait pool.quiet pool.lock
  done;
  pool.job <- None;
  let worker_exn = pool.failed in
  pool.failed <- None;
  Mutex.unlock pool.lock;
  match (caller_exn, worker_exn) with
  | Some e, _ | None, Some e -> raise e
  | None, None -> ()

(* ---- primitives ------------------------------------------------------ *)

let sequential () = jobs_value () <= 1 || in_parallel_region ()

let for_with ?chunk ?(min_items = 2) ~init n body =
  if n > 0 then
    if sequential () || n < min_items || n = 1 then begin
      let s = init () in
      for i = 0 to n - 1 do
        body s i
      done
    end
    else begin
      let pool = get_pool () in
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 (n / (8 * pool.n))
      in
      let n_chunks = (n + chunk - 1) / chunk in
      let next = Atomic.make 0 in
      run_region pool (fun _id ->
          (* init only when this participant actually claims work *)
          let scratch = ref None in
          let rec claim () =
            let c = Atomic.fetch_and_add next 1 in
            if c < n_chunks then begin
              let s =
                match !scratch with
                | Some s -> s
                | None ->
                    let s = init () in
                    scratch := Some s;
                    s
              in
              let lo = c * chunk in
              let hi = min n (lo + chunk) - 1 in
              for i = lo to hi do
                body s i
              done;
              claim ()
            end
          in
          claim ())
    end

let for_ ?chunk ?min_items n body =
  for_with ?chunk ?min_items ~init:(fun () -> ()) n (fun () i -> body i)

let unwrap = function Some v -> v | None -> assert false

let mapi ?(min_items = 2) f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if sequential () || n < min_items then Array.mapi f a
  else begin
    let out = Array.make n None in
    for_ n (fun i -> out.(i) <- Some (f i a.(i)));
    Array.map unwrap out
  end

let map ?min_items f a = mapi ?min_items (fun _ x -> f x) a

let init ?(min_items = 2) n f =
  if n <= 0 then [||]
  else if sequential () || n < min_items then Array.init n f
  else begin
    let out = Array.make n None in
    for_ n (fun i -> out.(i) <- Some (f i));
    Array.map unwrap out
  end

let map_list ?min_items f l = Array.to_list (map ?min_items f (Array.of_list l))

let both ?(parallel = true) f g =
  if (not parallel) || sequential () then begin
    let a = f () in
    let b = g () in
    (a, b)
  end
  else begin
    let pool = get_pool () in
    let ra = ref None and rb = ref None in
    let next = Atomic.make 0 in
    run_region pool (fun _id ->
        let rec claim () =
          let t = Atomic.fetch_and_add next 1 in
          if t = 0 then begin
            ra := Some (f ());
            claim ()
          end
          else if t = 1 then rb := Some (g ())
        in
        claim ());
    (unwrap !ra, unwrap !rb)
  end

(* Persistent domain pool behind the deterministic parallel primitives.

   Design: one process-wide pool of [min jobs cores - 1] worker domains
   plus the calling domain.  A "region" publishes one job function; every
   participant (workers + caller) runs it, claiming work by index from
   an atomic counter, so chunks never overlap and results land in
   caller-owned slots.  The caller waits until all workers quiesce
   before reading results — the pool mutex provides the happens-before
   edge for every slot written inside the region.

   Batch regions ([region f]) keep the workers captive for the whole
   extent of [f]: nested primitives publish *sub-jobs* through a pair of
   atomics instead of waking the pool through its mutex/condvar, and the
   workers wait on a spin-then-sleep sub-barrier between sub-jobs.  One
   wake per stage instead of one per solve — the claiming discipline is
   unchanged, so results stay bit-identical.

   Determinism holds by construction: parallel bodies only write state
   owned by their index (ordered maps) or their domain (for_with
   scratch), so scheduling cannot change any output bit.

   jobs = 1 (or nesting inside a worker) short-circuits every primitive
   to a plain sequential loop: no pool, no domains, no atomics. *)

let max_jobs = 8
let hard_cap = 64

let env_jobs () =
  match Sys.getenv_opt "ROTARY_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n hard_cap)
      | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (min (Domain.recommended_domain_count ()) max_jobs)

(* explicit --jobs / set_jobs override; None = resolve from environment *)
let requested = ref None
let jobs_value () = match !requested with Some n -> n | None -> default_jobs ()
let jobs = jobs_value

(* Domains beyond the physical core count cannot add throughput, but
   every one of them joins each stop-the-world minor collection — idle
   blocked domains made allocation-heavy flows an order of magnitude
   slower on a single-core host.  The pool therefore never spawns more
   participants than cores: the requested job count still decides
   sequential vs parallel (and the API contract), while results are
   identical for any participant count because chunks are claimed by
   index from one atomic counter. *)
let cores = Domain.recommended_domain_count ()

(* test hook: ROTARY_POOL_UNCAPPED=1 spawns the full requested job
   count regardless of cores, so the captive-scope machinery can be
   exercised on single-core CI hosts (at the GC cost above) *)
let uncapped () =
  match Sys.getenv_opt "ROTARY_POOL_UNCAPPED" with Some "1" -> true | _ -> false

let effective_jobs () =
  if uncapped () then jobs_value () else max 1 (min (jobs_value ()) cores)

type pool = {
  n : int;  (* participants, including the calling domain *)
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a new region starts (epoch bump) *)
  quiet : Condition.t;  (* signalled when the last worker finishes *)
  mutable epoch : int;
  mutable job : (int -> unit) option;
  mutable running : int;  (* workers still inside the current region *)
  mutable failed : exn option;  (* first exception raised by a worker *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

(* A batch-region scope: the caller owns it for the extent of [region f];
   workers sit in [scope_worker] claiming sub-jobs as they are
   published.  All fields are atomics — the scope never touches the pool
   mutex, which is what makes a sub-job publish cheap. *)
type scope = {
  sc_workers : int;  (* pool.n - 1 *)
  sc_job : (int -> unit) option Atomic.t;
  sc_epoch : int Atomic.t;  (* bumped once per published sub-job *)
  sc_done : int Atomic.t;  (* workers finished with the current sub-job *)
  sc_closing : bool Atomic.t;
  sc_failed : exn option Atomic.t;
}

let in_region_key = Domain.DLS.new_key (fun () -> false)
let in_parallel_region () = Domain.DLS.get in_region_key

(* the scope owned by this domain, when inside [region f] *)
let scope_key : scope option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* true while this domain executes a sub-job body: nested primitives
   must then run sequentially (they are already inside parallel work) *)
let in_subjob_key = Domain.DLS.new_key (fun () -> false)

let current_scope () =
  if Domain.DLS.get in_subjob_key then None else Domain.DLS.get scope_key

(* force every nested primitive to its sequential path for the duration
   of [f] — used by callers that provide their own cross-task
   parallelism (e.g. the serve scheduler's worker domains, where two
   concurrent pool regions would race on the single region slot) *)
let sequential_scope f =
  let saved = Domain.DLS.get in_region_key in
  let saved_scope = Domain.DLS.get scope_key in
  Domain.DLS.set in_region_key true;
  Domain.DLS.set scope_key None;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set in_region_key saved;
      Domain.DLS.set scope_key saved_scope)
    f

let worker pool id () =
  (* workers only ever execute region bodies: nested primitives must
     run sequentially, so the flag is set for the domain's lifetime *)
  Domain.DLS.set in_region_key true;
  (* metric shards: worker ids are stable and never concurrently reused
     (get_pool joins the previous generation before spawning), so the
     worker id doubles as this domain's shard slot *)
  Rc_obs.Metrics.set_shard_slot id;
  let my_epoch = ref 0 in
  let live = ref true in
  while !live do
    Mutex.lock pool.lock;
    while (not pool.stop) && pool.epoch = !my_epoch do
      Condition.wait pool.work pool.lock
    done;
    if pool.stop then begin
      Mutex.unlock pool.lock;
      live := false
    end
    else begin
      my_epoch := pool.epoch;
      let f = match pool.job with Some f -> f | None -> fun _ -> () in
      Mutex.unlock pool.lock;
      (try f id
       with e ->
         Mutex.lock pool.lock;
         if pool.failed = None then pool.failed <- Some e;
         Mutex.unlock pool.lock);
      Mutex.lock pool.lock;
      pool.running <- pool.running - 1;
      if pool.running = 0 then Condition.broadcast pool.quiet;
      Mutex.unlock pool.lock
    end
  done

(* the process-wide pool; guarded by [pool_lock].  Only the main domain
   creates or destroys it (workers never reach [get_pool]). *)
let the_pool = ref None
let pool_lock = Mutex.create ()

let shutdown_pool p =
  Mutex.lock p.lock;
  p.stop <- true;
  Condition.broadcast p.work;
  Mutex.unlock p.lock;
  Array.iter Domain.join p.domains

let shutdown () =
  Mutex.lock pool_lock;
  let p = !the_pool in
  the_pool := None;
  Mutex.unlock pool_lock;
  Option.iter shutdown_pool p

(* blocked workers would keep the runtime from shutting down *)
let () = at_exit shutdown

let set_jobs n =
  shutdown ();
  requested := Some (max 1 (min n hard_cap))

let create_pool n =
  let pool =
    {
      n;
      lock = Mutex.create ();
      work = Condition.create ();
      quiet = Condition.create ();
      epoch = 0;
      job = None;
      running = 0;
      failed = None;
      stop = false;
      domains = [||];
    }
  in
  pool.domains <- Array.init (n - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let get_pool () =
  Mutex.lock pool_lock;
  let p =
    match !the_pool with
    | Some p when p.n = effective_jobs () -> p
    | existing ->
        Option.iter shutdown_pool existing;
        let p = create_pool (effective_jobs ()) in
        the_pool := Some p;
        p
  in
  Mutex.unlock pool_lock;
  p

(* run one region: publish the job, participate as id 0, wait for the
   workers, re-raise the first exception seen *)
let run_region pool (g : int -> unit) =
  Mutex.lock pool.lock;
  pool.job <- Some g;
  pool.failed <- None;
  pool.running <- pool.n - 1;
  pool.epoch <- pool.epoch + 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  let saved = Domain.DLS.get in_region_key in
  Domain.DLS.set in_region_key true;
  let caller_exn = (try g 0; None with e -> Some e) in
  Domain.DLS.set in_region_key saved;
  Mutex.lock pool.lock;
  while pool.running > 0 do
    Condition.wait pool.quiet pool.lock
  done;
  pool.job <- None;
  let worker_exn = pool.failed in
  pool.failed <- None;
  Mutex.unlock pool.lock;
  match (caller_exn, worker_exn) with
  | Some e, _ | None, Some e -> raise e
  | None, None -> ()

(* ---- batch-region scopes --------------------------------------------- *)

(* Sub-barrier wait: spin briefly (the publish gap between two kernels
   of one stage is short), then back off to micro-sleeps so idle workers
   do not steal cycles from the caller's sequential sections on
   oversubscribed machines. *)
let spin_budget = 2000
let nap_s = 5e-5

let scope_worker sc id =
  let my_epoch = ref 0 in
  let spin = ref 0 in
  let live = ref true in
  while !live do
    if Atomic.get sc.sc_closing then live := false
    else begin
      let e = Atomic.get sc.sc_epoch in
      if e <> !my_epoch then begin
        my_epoch := e;
        spin := 0;
        (match Atomic.get sc.sc_job with
        | Some g -> (
            try g id
            with exn -> ignore (Atomic.compare_and_set sc.sc_failed None (Some exn)))
        | None -> ());
        Atomic.incr sc.sc_done
      end
      else if !spin < spin_budget then begin
        Domain.cpu_relax ();
        incr spin
      end
      else Unix.sleepf nap_s
    end
  done

(* publish one sub-job inside a scope: the caller participates as id 0
   (with nested primitives forced sequential), then waits on the
   sub-barrier until every worker has finished the sub-job *)
let scope_run sc (g : int -> unit) =
  Atomic.set sc.sc_failed None;
  Atomic.set sc.sc_done 0;
  Atomic.set sc.sc_job (Some g);
  Atomic.incr sc.sc_epoch;
  Domain.DLS.set in_subjob_key true;
  let caller_exn = (try g 0; None with e -> Some e) in
  Domain.DLS.set in_subjob_key false;
  let spin = ref 0 in
  while Atomic.get sc.sc_done < sc.sc_workers do
    if !spin < spin_budget then begin
      Domain.cpu_relax ();
      incr spin
    end
    else Unix.sleepf nap_s
  done;
  Atomic.set sc.sc_job None;
  match (caller_exn, Atomic.get sc.sc_failed) with
  | Some e, _ | None, Some e -> raise e
  | None, None -> ()

(* ---- primitives ------------------------------------------------------ *)

let sequential () = jobs_value () <= 1 || in_parallel_region ()

(* can this call fan work out right now?  Either through the live scope
   (batch region) or by opening a fresh pool region *)
let backend () =
  match current_scope () with
  | Some sc -> `Scope sc
  | None -> if sequential () then `Seq else `Pool

type 'a keepalive = 'a option array

let keepalive () = Array.make hard_cap None

let slab ka init id =
  match ka.(id) with
  | Some s -> s
  | None ->
      let s = init () in
      ka.(id) <- Some s;
      s

(* the chunk-claiming job shared by the pool-region and scope paths:
   participants grab chunk indices from one atomic counter; scratch is
   per participant — from the keepalive when given (reused across calls,
   one slab per participant id), else created lazily per region *)
let claim_job ?reuse ~init ~chunk ~n body =
  let n_chunks = (n + chunk - 1) / chunk in
  let next = Atomic.make 0 in
  fun id ->
    let local = ref None in
    let get_scratch () =
      match reuse with
      | Some ka -> slab ka init id
      | None -> (
          match !local with
          | Some s -> s
          | None ->
              let s = init () in
              local := Some s;
              s)
    in
    let rec claim () =
      let c = Atomic.fetch_and_add next 1 in
      if c < n_chunks then begin
        let s = get_scratch () in
        let lo = c * chunk in
        let hi = min n (lo + chunk) - 1 in
        for i = lo to hi do
          body s i
        done;
        claim ()
      end
    in
    claim ()

let resolve_chunk chunk n participants =
  match chunk with Some c -> max 1 c | None -> max 1 (n / (8 * participants))

let for_with ?chunk ?(min_items = 2) ?reuse ~init n body =
  if n > 0 then begin
    let seq_run () =
      let s = match reuse with Some ka -> slab ka init 0 | None -> init () in
      for i = 0 to n - 1 do
        body s i
      done
    in
    if n < min_items || n = 1 then seq_run ()
    else
      match backend () with
      | `Seq -> seq_run ()
      | `Scope sc ->
          let chunk = resolve_chunk chunk n (sc.sc_workers + 1) in
          scope_run sc (claim_job ?reuse ~init ~chunk ~n body)
      | `Pool ->
          let pool = get_pool () in
          let chunk = resolve_chunk chunk n pool.n in
          run_region pool (claim_job ?reuse ~init ~chunk ~n body)
  end

let for_ ?chunk ?min_items n body =
  for_with ?chunk ?min_items ~init:(fun () -> ()) n (fun () i -> body i)

let unwrap = function Some v -> v | None -> assert false

let parallelizable () = match backend () with `Seq -> false | `Scope _ | `Pool -> true

let mapi ?(min_items = 2) f a =
  let n = Array.length a in
  if n = 0 then [||]
  else if n < min_items || not (parallelizable ()) then Array.mapi f a
  else begin
    let out = Array.make n None in
    for_ n (fun i -> out.(i) <- Some (f i a.(i)));
    Array.map unwrap out
  end

let map ?min_items f a = mapi ?min_items (fun _ x -> f x) a

let init ?(min_items = 2) n f =
  if n <= 0 then [||]
  else if n < min_items || not (parallelizable ()) then Array.init n f
  else begin
    let out = Array.make n None in
    for_ n (fun i -> out.(i) <- Some (f i));
    Array.map unwrap out
  end

let map_list ?min_items f l = Array.to_list (map ?min_items f (Array.of_list l))

let both ?(parallel = true) f g =
  let seq () =
    let a = f () in
    let b = g () in
    (a, b)
  in
  if not parallel then seq ()
  else
    match backend () with
    | `Seq -> seq ()
    | (`Scope _ | `Pool) as be ->
        let ra = ref None and rb = ref None in
        let next = Atomic.make 0 in
        let job _id =
          let rec claim () =
            let t = Atomic.fetch_and_add next 1 in
            if t = 0 then begin
              ra := Some (f ());
              claim ()
            end
            else if t = 1 then rb := Some (g ())
          in
          claim ()
        in
        (match be with
        | `Scope sc -> scope_run sc job
        | `Pool -> run_region (get_pool ()) job);
        (unwrap !ra, unwrap !rb)

let region f =
  if sequential () then f ()
  else begin
    let pool = get_pool () in
    if pool.n <= 1 then
      (* single participant (jobs=1 or a single-core host): captive
         workers would only preempt the owner — run the region body with
         every sub-job claimed by the caller, nested primitives inline *)
      sequential_scope f
    else begin
      let sc =
        {
          sc_workers = pool.n - 1;
          sc_job = Atomic.make None;
          sc_epoch = Atomic.make 0;
          sc_done = Atomic.make 0;
          sc_closing = Atomic.make false;
          sc_failed = Atomic.make None;
        }
      in
      let result = ref None in
      run_region pool (fun id ->
          if id = 0 then begin
            Domain.DLS.set scope_key (Some sc);
            Fun.protect
              ~finally:(fun () ->
                Domain.DLS.set scope_key None;
                Atomic.set sc.sc_closing true)
              (fun () -> result := Some (f ()))
          end
          else scope_worker sc id);
      unwrap !result
    end
  end

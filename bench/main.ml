(* Benchmark harness.

   Part 1 regenerates every table (I-VII) and figure (Fig. 2) of the
   paper's evaluation on the five Table II circuits — the primary
   reproduction artifact (tee to bench_output.txt).

   Part 2 runs one Bechamel micro-benchmark per table, timing the
   computational kernel behind that table on a small instance, so
   per-kernel performance regressions are visible independently of the
   full reproduction. Pass --quick to restrict part 1 to two small
   circuits, --micro-only / --tables-only to run a single part.

   Part 3 times the flow and the experiment suite sequentially (jobs=1)
   and at every job count of the sweep (--jobs N or --jobs N1,N2,... /
   ROTARY_JOBS), and writes every measurement — per-kernel micro
   timings, per-circuit flow wall times with per-job-count speedups,
   the suite walls, job counts and git revision — to BENCH_results.json
   (schema v4: DESIGN.md "Bench results file").  --walls-only skips
   parts 1 and 2 (except that --quick still runs a reduced micro pass,
   so quick CI artifacts never carry an empty micro_kernels array);
   --min-suite-speedup F exits nonzero when the suite speedup at the
   highest job count falls below F (the CI floor, recorded in the
   artifact).

   Part 4 (--sizes 20k,100k,1m) runs the scaling suite: for each
   requested size the full six-stage flow at the highest sweep job
   count, recording generation wall, flow wall and the per-stage split
   into the schema-v4 size_sweep array.  --max-size-wall F exits
   nonzero when any requested size's flow wall exceeds F seconds (the
   CI scaling floor). *)

open Rc_core

let quick = Array.exists (( = ) "--quick") Sys.argv
let micro_only = Array.exists (( = ) "--micro-only") Sys.argv
let tables_only = Array.exists (( = ) "--tables-only") Sys.argv
let walls_only = Array.exists (( = ) "--walls-only") Sys.argv

let flag_value name =
  let n = Array.length Sys.argv in
  let eq = name ^ "=" in
  let le = String.length eq in
  let rec scan i =
    if i >= n then None
    else if Sys.argv.(i) = name && i + 1 < n then Some Sys.argv.(i + 1)
    else if
      String.length Sys.argv.(i) > le && String.sub Sys.argv.(i) 0 le = eq
    then Some (String.sub Sys.argv.(i) le (String.length Sys.argv.(i) - le))
    else scan (i + 1)
  in
  scan 1

(* --jobs accepts a single count or a comma-separated sweep ("1,8") *)
let jobs_arg =
  match flag_value "--jobs" with
  | None -> None
  | Some s ->
      let parts = String.split_on_char ',' s in
      let counts = List.filter_map (fun p -> int_of_string_opt (String.trim p)) parts in
      if counts = [] then None else Some (List.sort_uniq compare counts)

let min_suite_speedup =
  Option.bind (flag_value "--min-suite-speedup") float_of_string_opt

(* --sizes accepts a comma-separated subset of the scaling suite, by
   short size ("20k") or full benchmark name ("size20k") *)
let sizes_arg =
  match flag_value "--sizes" with
  | None -> []
  | Some s ->
      List.map
        (fun part ->
          let p = String.trim (String.lowercase_ascii part) in
          let name = if String.length p > 0 && p.[0] <> 's' then "size" ^ p else p in
          match
            List.find_opt (fun b -> b.Bench_suite.bname = name) Bench_suite.sizes
          with
          | Some b -> b
          | None ->
              Printf.eprintf "[bench] unknown size %S (valid: %s)\n%!" part
                (String.concat ", "
                   (List.map (fun b -> b.Bench_suite.bname) Bench_suite.sizes));
              exit 2)
        (String.split_on_char ',' s)

let max_size_wall =
  Option.bind (flag_value "--max-size-wall") float_of_string_opt

let () = Option.iter (fun l -> Rc_par.Pool.set_jobs (List.fold_left max 1 l)) jobs_arg

let benches = if quick then Bench_suite.quick else Bench_suite.all

(* ---- part 1: reproduction ------------------------------------------- *)

let reproduce () =
  Printf.printf
    "=== Reproduction: Integrated Placement and Skew Optimization for Rotary Clocking ===\n\n%!";
  let _, t2 = Experiments.table2 ~benches () in
  print_endline t2;
  print_newline ();
  let _, t1 = Experiments.table1 ~benches ~bb_seconds:(if quick then 5.0 else 120.0) () in
  print_endline t1;
  print_newline ();
  Printf.eprintf "[bench] running flow suite (netflow + ILP) on %d circuits...\n%!"
    (List.length benches);
  let suite = Experiments.run_suite ~benches ~with_ilp:true ~log:true () in
  print_endline (Experiments.table3 suite);
  print_newline ();
  print_endline (Experiments.table4 suite);
  print_newline ();
  print_endline (Experiments.table5 suite);
  print_newline ();
  print_endline (Experiments.table6 suite);
  print_newline ();
  print_endline (Experiments.table7 suite);
  print_newline ();
  let _, fig2 = Experiments.fig2 () in
  print_endline fig2;
  print_newline ();
  (* design-choice ablations (DESIGN.md section 6) *)
  Printf.eprintf "[bench] running ablations...\n%!";
  print_endline (Ablation.all ());
  print_newline ();
  (* Section IX future-work extensions *)
  Printf.eprintf "[bench] running extensions (ring sweep, local trees)...\n%!";
  print_endline (Ring_sweep.report (Ring_sweep.sweep Bench_suite.tiny ~grids:[ 1; 2; 3; 4 ]));
  print_newline ();
  let o = Flow.run (Flow.default_config Bench_suite.tiny) in
  (* per-stage regression surface: aggregated stage timings of the flow
     just run, independent of the end-to-end numbers above *)
  print_endline
    (Flow_trace.summary ~title:"Per-stage summary (tiny, default flow)" o.Flow.trace);
  print_newline ();
  let ffs, _ = Flow.ff_index o.Flow.netlist in
  let ff_positions = Array.map (fun c -> o.Flow.positions.(c)) ffs in
  Printf.printf "Local tapping trees (tiny, Section IX future work):\n";
  List.iter
    (fun tol ->
      let lt =
        Rc_assign.Local_trees.build ~phase_tolerance:tol o.Flow.cfg.Flow.tech o.Flow.rings
          ~assignment:o.Flow.assignment ~ff_positions ~targets:o.Flow.skews
      in
      Printf.printf
        "  tolerance %5.1f ps: %2d taps for %d FFs, wire %6.0f um (plain %6.0f, %+.1f%%)\n" tol
        lt.Rc_assign.Local_trees.n_taps (Array.length ffs)
        lt.Rc_assign.Local_trees.total_wirelength lt.Rc_assign.Local_trees.plain_wirelength
        (-.Report.pct_improvement ~from:lt.Rc_assign.Local_trees.plain_wirelength
             ~to_:lt.Rc_assign.Local_trees.total_wirelength))
    [ 1.0; 3.0; 5.0; 10.0 ];
  print_newline ();
  (* the Section I motivation, quantified on our own layouts *)
  Printf.eprintf "[bench] running variation study (s9234)...\n%!";
  let ov = Flow.run (Flow.default_config Bench_suite.s9234) in
  print_string (Variation_study.run ov).Variation_study.report;
  print_newline ();
  print_endline (snd (Clocking_compare.run ov));
  print_newline ();
  Printf.eprintf "[bench] routing study (s9234)...\n%!";
  print_string (Routing_study.run ov).Routing_study.report;
  print_newline ();
  (* beyond the paper: detailed placement + relocate-and-heal stage 6 *)
  Printf.eprintf "[bench] running beyond-paper flow comparison...\n%!";
  print_endline
    (Report.render
       ~title:
         "Beyond the paper: detailed placement + relocate-and-heal stage 6 vs the paper's pseudo-net flow"
       ~header:
         [ "Circuit"; "Paper flow tap WL"; "Tap red."; "Improved tap WL"; "Tap red.";
           "Improved signal vs paper's" ]
       (List.map
          (fun bench ->
            let d = Flow.run (Flow.default_config bench) in
            let i = Flow.run (Flow.improved_config bench) in
            [
              bench.Bench_suite.bname;
              Report.fmt_f ~dp:0 d.Flow.final.Flow.tapping_wl;
              Report.fmt_pct
                (Report.pct_improvement ~from:d.Flow.base.Flow.tapping_wl
                   ~to_:d.Flow.final.Flow.tapping_wl);
              Report.fmt_f ~dp:0 i.Flow.final.Flow.tapping_wl;
              Report.fmt_pct
                (Report.pct_improvement ~from:i.Flow.base.Flow.tapping_wl
                   ~to_:i.Flow.final.Flow.tapping_wl);
              Report.fmt_pct
                (-.Report.pct_improvement ~from:d.Flow.final.Flow.signal_wl
                     ~to_:i.Flow.final.Flow.signal_wl);
            ])
          benches))

(* ---- part 2: Bechamel micro-benchmarks ------------------------------- *)

open Bechamel
open Toolkit

(* shared small state for the kernels *)
let kernel_state =
  lazy
    (let bench = Bench_suite.tiny in
     let tech = Rc_tech.Tech.default in
     let netlist = Bench_suite.netlist bench in
     let chip = Bench_suite.chip bench in
     let rings =
       Rc_rotary.Ring_array.create ~chip ~grid:bench.Bench_suite.ring_grid ()
     in
     let placed = Rc_place.Qplace.initial netlist ~chip in
     let sta = Rc_timing.Sta.analyze tech netlist ~positions:placed.Rc_place.Qplace.positions in
     let problem = Flow.skew_problem_of_sta tech netlist sta in
     let schedule = Option.get (Rc_skew.Max_slack.solve_graph problem) in
     let ffs, _ = Flow.ff_index netlist in
     let ff_positions = Array.map (fun c -> placed.Rc_place.Qplace.positions.(c)) ffs in
     let targets = schedule.Rc_skew.Max_slack.skews in
     let assignment =
       Rc_assign.Assign.by_netflow tech rings ~ff_positions ~targets
     in
     (tech, netlist, chip, rings, placed, problem, schedule, ff_positions, targets, assignment))

let test_table1 =
  Test.make ~name:"table1:lp-relax+greedy-rounding"
    (Staged.stage (fun () ->
         let tech, _, _, rings, _, _, _, ff_positions, targets, _ = Lazy.force kernel_state in
         ignore (Rc_assign.Assign.by_ilp tech rings ~ff_positions ~targets)))

let test_table2 =
  Test.make ~name:"table2:zero-skew-clock-tree"
    (Staged.stage (fun () ->
         let tech, _, _, _, _, _, _, ff_positions, _, _ = Lazy.force kernel_state in
         let sinks = Array.to_list (Array.map (fun p -> (p, tech.Rc_tech.Tech.c_ff)) ff_positions) in
         ignore (Rc_ctree.Ctree.build tech ~sinks)))

let test_table3 =
  Test.make ~name:"table3:netflow-assignment"
    (Staged.stage (fun () ->
         let tech, _, _, rings, _, _, _, ff_positions, targets, _ = Lazy.force kernel_state in
         ignore (Rc_assign.Assign.by_netflow tech rings ~ff_positions ~targets)))

let test_table4 =
  Test.make ~name:"table4:cost-driven-scheduling"
    (Staged.stage (fun () ->
         let tech, _, _, rings, _, problem, schedule, ff_positions, _, assignment =
           Lazy.force kernel_state
         in
         let anchors =
           Flow.anchors_of_assignment tech rings assignment ~ff_positions
             ~skews:schedule.Rc_skew.Max_slack.skews
         in
         match Rc_skew.Cost_driven.solve_minmax_graph problem ~slack:0.0 ~anchors with
         | Some r ->
             ignore
               (Rc_skew.Cost_driven.refine_toward_anchors problem ~slack:0.0 ~anchors
                  ~skews:r.Rc_skew.Cost_driven.skews)
         | None -> ()))

let test_table5 =
  Test.make ~name:"table5:max-slack-scheduling"
    (Staged.stage (fun () ->
         let _, _, _, _, _, problem, _, _, _, _ = Lazy.force kernel_state in
         ignore (Rc_skew.Max_slack.solve_graph problem)))

let test_table6 =
  Test.make ~name:"table6:power-model"
    (Staged.stage (fun () ->
         let tech, netlist, _, _, placed, _, _, _, _, assignment = Lazy.force kernel_state in
         ignore
           (Rc_power.Power.clock_power_mw tech
              ~tapping_wirelength:assignment.Rc_assign.Assign.total_cost
              ~n_ffs:(Rc_netlist.Netlist.n_ffs netlist));
         ignore (Rc_power.Power.signal_power_mw tech netlist placed.Rc_place.Qplace.positions)))

let test_table7 =
  Test.make ~name:"table7:incremental-placement"
    (Staged.stage (fun () ->
         let _, netlist, chip, _, placed, _, _, _, _, assignment = Lazy.force kernel_state in
         let ffs, _ = Flow.ff_index netlist in
         let pseudo =
           Array.to_list
             (Array.mapi
                (fun i cell ->
                  {
                    Rc_place.Qplace.cell;
                    anchor = assignment.Rc_assign.Assign.taps.(i).Rc_rotary.Tapping.point;
                    weight = 0.35;
                  })
                ffs)
         in
         ignore
           (Rc_place.Qplace.incremental netlist ~chip ~prev:placed.Rc_place.Qplace.positions
              ~pseudo)))

let test_fig2 =
  Test.make ~name:"fig2:tapping-point-solver"
    (Staged.stage (fun () ->
         let tech, _, _, rings, _, _, _, ff_positions, targets, _ = Lazy.force kernel_state in
         let ring = Rc_rotary.Ring_array.ring rings 0 in
         Array.iteri
           (fun i ff -> ignore (Rc_rotary.Tapping.solve tech ring ~ff ~target:targets.(i)))
           ff_positions))

(* --- solver kernels behind the incremental layer (PR 4): the four hot
   solves the flow reuses across iterations, timed in isolation so the
   cold-path cost and the incremental win stay visible per kernel --- *)

(* CG on a qplace-shaped SPD system: 1-D Laplacian + unit diagonal
   (strictly diagonally dominant), seeded RHS *)
let cg_state =
  lazy
    (let n = 600 in
     let rng = Rc_util.Rng.create 4242 in
     let triplets = ref [] in
     for i = 0 to n - 1 do
       triplets := (i, i, 3.0) :: !triplets;
       if i + 1 < n then triplets := (i, i + 1, -1.0) :: (i + 1, i, -1.0) :: !triplets
     done;
     let m = Rc_sparse.Csr.of_triplets ~rows:n ~cols:n !triplets in
     let b = Array.init n (fun _ -> Rc_util.Rng.float rng 100.0) in
     (m, b, Rc_sparse.Cg.workspace n))

let test_cg =
  Test.make ~name:"cg:spd-solve"
    (Staged.stage (fun () ->
         let m, b, ws = Lazy.force cg_state in
         ignore (Rc_sparse.Cg.solve ~ws ~tol:1e-7 m b)))

(* the Fig. 4 min-cost-flow assignment on a seeded bipartite instance *)
let mcmf_state =
  lazy
    (let n_items = 200 and n_bins = 16 in
     let rng = Rc_util.Rng.create 1717 in
     let cands =
       List.concat
         (List.init n_items (fun i ->
              List.init 6 (fun k ->
                  {
                    Rc_netflow.Assignment.item = i;
                    bin = (i + (k * 5)) mod n_bins;
                    cost = Rc_util.Rng.float rng 50.0;
                  })))
     in
     (n_items, n_bins, Array.make n_bins ((n_items / n_bins) + 4), cands))

let test_mcmf =
  Test.make ~name:"mcmf:assignment-solve"
    (Staged.stage (fun () ->
         let n_items, n_bins, capacities, cands = Lazy.force mcmf_state in
         ignore (Rc_netflow.Assignment.solve ~n_items ~n_bins ~capacities cands)))

(* old vs new MCMF core at scaling-suite size: a bipartite instance
   shaped like the size20k assignment (~12% flip-flops of 20k cells
   over an 8x8 ring array).  Each run rebuilds the network (solve
   consumes capacity), so both variants carry the identical build
   overhead and the delta is pure solver time. *)
let mcmf_scaled_state =
  lazy
    (let n_items = 2400 and n_bins = 64 in
     let rng = Rc_util.Rng.create 20026 in
     let cand_bin = Array.init (n_items * 6) (fun k -> ((k / 6) + (k mod 6 * 11)) mod n_bins) in
     let cand_cost = Array.init (n_items * 6) (fun _ -> Rc_util.Rng.float rng 50.0) in
     (n_items, n_bins, cand_bin, cand_cost))

let build_mcmf_scaled () =
  let n_items, n_bins, cand_bin, cand_cost = Lazy.force mcmf_scaled_state in
  let source = 0 and sink = 1 + n_items + n_bins in
  let net = Rc_netflow.Mcmf.create (sink + 1) in
  for i = 0 to n_items - 1 do
    ignore (Rc_netflow.Mcmf.add_arc net ~src:source ~dst:(1 + i) ~capacity:1 ~cost:0.0)
  done;
  let bin_cap = (n_items / n_bins) + 4 in
  for j = 0 to n_bins - 1 do
    ignore
      (Rc_netflow.Mcmf.add_arc net ~src:(1 + n_items + j) ~dst:sink ~capacity:bin_cap
         ~cost:0.0)
  done;
  Array.iteri
    (fun k bin ->
      ignore
        (Rc_netflow.Mcmf.add_arc net ~src:(1 + (k / 6)) ~dst:(1 + n_items + bin)
           ~capacity:1 ~cost:cand_cost.(k)))
    cand_bin;
  (net, source, sink, n_items)

let test_mcmf_scaled_new =
  Test.make ~name:"mcmf_scaled:bucket-dijkstra"
    (Staged.stage (fun () ->
         let net, source, sink, amount = build_mcmf_scaled () in
         ignore (Rc_netflow.Mcmf.solve net ~source ~sink ~amount)))

let test_mcmf_scaled_old =
  Test.make ~name:"mcmf_scaled:reference"
    (Staged.stage (fun () ->
         let net, source, sink, amount = build_mcmf_scaled () in
         ignore (Rc_netflow.Mcmf.solve_reference net ~source ~sink ~amount)))

(* per-flip-flop Eq. 1 candidate construction: nearest rings + one tap
   solve per candidate (the input to stage 3, cached by Assign.cache) *)
let test_eq1_candidates =
  Test.make ~name:"eq1:candidate-taps"
    (Staged.stage (fun () ->
         let tech, _, _, rings, _, _, _, ff_positions, targets, _ = Lazy.force kernel_state in
         Array.iteri
           (fun i ff ->
             List.iter
               (fun rj ->
                 ignore
                   (Rc_rotary.Tapping.solve tech
                      (Rc_rotary.Ring_array.ring rings rj)
                      ~ff ~target:targets.(i)))
               (Rc_rotary.Ring_array.rings_near rings ff 6))
           ff_positions))

let test_sta_cold =
  Test.make ~name:"sta:analyze-cold"
    (Staged.stage (fun () ->
         let tech, netlist, _, _, placed, _, _, _, _, _ = Lazy.force kernel_state in
         ignore (Rc_timing.Sta.analyze tech netlist ~positions:placed.Rc_place.Qplace.positions)))

(* incremental STA: alternate between two placements differing in every
   8th cell, so every run re-evaluates the same dirty cone set *)
let sta_inc_state =
  lazy
    (let tech, netlist, _, _, placed, _, _, _, _, _ = Lazy.force kernel_state in
     let pos_a = placed.Rc_place.Qplace.positions in
     let pos_b =
       Array.mapi
         (fun c (p : Rc_geom.Point.t) ->
           if c mod 8 = 0 then Rc_geom.Point.make (p.Rc_geom.Point.x +. 1.0) p.Rc_geom.Point.y
           else p)
         pos_a
     in
     let sess = Rc_timing.Sta.make_session tech netlist in
     ignore (Rc_timing.Sta.analyze_incremental sess ~positions:pos_a);
     (sess, pos_a, pos_b, ref false))

let test_sta_incremental =
  Test.make ~name:"sta:analyze-incremental"
    (Staged.stage (fun () ->
         let sess, pos_a, pos_b, flip = Lazy.force sta_inc_state in
         let positions = if !flip then pos_a else pos_b in
         flip := not !flip;
         ignore (Rc_timing.Sta.analyze_incremental sess ~positions)))

let micro ?(reduced = false) () =
  Printf.printf "=== Bechamel micro-benchmarks (one kernel per table)%s ===\n%!"
    (if reduced then " [reduced reps]" else "");
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        test_table1;
        test_table2;
        test_table3;
        test_table4;
        test_table5;
        test_table6;
        test_table7;
        test_fig2;
        test_cg;
        test_mcmf;
        test_mcmf_scaled_new;
        test_mcmf_scaled_old;
        test_eq1_candidates;
        test_sta_cold;
        test_sta_incremental;
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  (* reduced mode (--quick): same kernels, fewer reps — the artifact
     still carries every kernel, just with wider error bars *)
  let limit = if reduced then 300 else 2000
  and quota = Time.second (if reduced then 0.1 else 0.5) in
  let cfg = Benchmark.cfg ~limit ~quota ~stabilize:true ~compaction:false () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (Instance.monotonic_clock :> Measure.witness) raw in
  let timings =
    List.sort compare
      (Hashtbl.fold
         (fun name ols_result acc ->
           match Analyze.OLS.estimates ols_result with
           | Some [ t ] -> (name, Some t) :: acc
           | _ -> (name, None) :: acc)
         results [])
  in
  List.iter
    (fun (name, t) ->
      match t with
      | Some t -> Printf.printf "  %-38s %12.1f ns/run\n" name t
      | None -> Printf.printf "  %-38s (no estimate)\n" name)
    timings;
  print_newline ();
  timings

(* ---- part 3: sequential vs parallel wall time + results file --------- *)

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None)
  with _ -> None

let wall f = snd (Rc_util.Timer.time f)

(* the parallel job counts to sweep (always measured against jobs=1) *)
let sweep_jobs =
  let explicit = match jobs_arg with Some l -> l | None -> [ Rc_par.Pool.jobs () ] in
  match List.filter (fun j -> j > 1) explicit with [] -> [ Rc_par.Pool.jobs () ] | l -> l

let top_jobs = List.fold_left max 1 sweep_jobs
let speedup_of seq par = seq /. Float.max par 1e-9

(* one sequential run plus one run per sweep job count per circuit (and
   the suite as a whole, which also parallelizes across circuit arms).
   The sequential run of each circuit also records its final quality
   snapshot and its solver-metric delta, so the bench trajectory carries
   comparable quality numbers alongside the wall times. *)
let compare_walls () =
  let at j f =
    Rc_par.Pool.set_jobs j;
    f ()
  in
  let flows =
    List.map
      (fun bench ->
        let outcome = ref None in
        let seq =
          at 1 (fun () ->
              Rc_obs.Metrics.set_enabled true;
              let before = Rc_obs.Metrics.snapshot () in
              let w = wall (fun () -> outcome := Some (Flow.run (Flow.default_config bench))) in
              let metrics =
                Rc_obs.Metrics.diff ~before ~after:(Rc_obs.Metrics.snapshot ())
              in
              Rc_obs.Metrics.set_enabled false;
              (w, metrics))
        in
        let runs =
          List.map
            (fun j ->
              (j, at j (fun () -> wall (fun () -> ignore (Flow.run (Flow.default_config bench))))))
            sweep_jobs
        in
        let wall_seq, metrics = seq in
        (bench.Bench_suite.bname, wall_seq, runs, Option.get !outcome, metrics))
      benches
  in
  let suite_seq =
    at 1 (fun () -> wall (fun () -> ignore (Experiments.run_suite ~benches ~with_ilp:false ())))
  in
  let suite_runs =
    List.map
      (fun j ->
        (j, at j (fun () -> wall (fun () -> ignore (Experiments.run_suite ~benches ~with_ilp:false ())))))
      sweep_jobs
  in
  Rc_par.Pool.set_jobs top_jobs;
  print_endline
    (Report.render
       ~title:
         (Printf.sprintf "Wall time: sequential (--jobs 1) vs parallel (--jobs %s)"
            (String.concat "," (List.map string_of_int sweep_jobs)))
       ~header:[ "Run"; "Jobs"; "Seq (s)"; "Par (s)"; "Speedup" ]
       (List.concat_map
          (fun (name, seq, runs) ->
            List.map
              (fun (j, par) ->
                [ name; string_of_int j; Report.fmt_f ~dp:2 seq; Report.fmt_f ~dp:2 par;
                  Report.fmt_f ~dp:2 (speedup_of seq par) ])
              runs)
          (List.map (fun (name, seq, runs, _, _) -> (name, seq, runs)) flows
          @ [ ("suite", suite_seq, suite_runs) ])));
  print_newline ();
  (flows, (suite_seq, suite_runs))

(* ---- part 4: scaling-suite size sweep (--sizes) ---------------------- *)

(* aggregate the flow trace into one wall-time bucket per stage name *)
let stage_split trace =
  List.map
    (fun stage ->
      let w =
        List.fold_left
          (fun acc (e : Flow_trace.event) ->
            if e.Flow_trace.stage = stage then acc +. e.Flow_trace.wall_s else acc)
          0.0 (Flow_trace.events trace)
      in
      (stage, w))
    (Flow_trace.stage_names trace)

(* one full-flow run per requested size at the top sweep job count;
   generation is timed separately so the table shows where the wall
   goes as the circuits grow two orders of magnitude *)
let run_sizes benches =
  Rc_par.Pool.set_jobs top_jobs;
  let rows =
    List.map
      (fun bench ->
        let n_logic, n_ffs = Bench_suite.profile bench in
        let n_cells = n_logic + n_ffs in
        Printf.eprintf "[bench] size sweep: %s (%d cells) at jobs=%d...\n%!"
          bench.Bench_suite.bname n_cells top_jobs;
        let gen_s = wall (fun () -> ignore (Bench_suite.netlist bench)) in
        let outcome = ref None in
        let flow_s =
          wall (fun () -> outcome := Some (Flow.run (Flow.default_config bench)))
        in
        let o = Option.get !outcome in
        (bench.Bench_suite.bname, n_cells, n_ffs, gen_s, flow_s, o))
      benches
  in
  print_endline
    (Report.render
       ~title:(Printf.sprintf "Scaling suite: full flow at jobs=%d" top_jobs)
       ~header:[ "Circuit"; "Cells"; "FFs"; "Gen (s)"; "Flow (s)"; "Tap WL (um)"; "AFD (um)" ]
       (List.map
          (fun (name, n_cells, n_ffs, gen_s, flow_s, (o : Flow.outcome)) ->
            [
              name; string_of_int n_cells; string_of_int n_ffs;
              Report.fmt_f ~dp:1 gen_s; Report.fmt_f ~dp:1 flow_s;
              Report.fmt_f ~dp:0 o.Flow.final.Flow.tapping_wl;
              Report.fmt_f ~dp:1 o.Flow.final.Flow.afd;
            ])
          rows));
  print_newline ();
  rows

let size_sweep_json rows =
  let module J = Rc_util.Json in
  J.List
    (List.map
       (fun (name, n_cells, n_ffs, gen_s, flow_s, (o : Flow.outcome)) ->
         J.Obj
           [
             ("circuit", J.String name);
             ("n_cells", J.Int n_cells);
             ("n_ffs", J.Int n_ffs);
             ("jobs", J.Int top_jobs);
             ("gen_s", J.Float gen_s);
             ("flow_s", J.Float flow_s);
             ( "stages",
               J.Obj
                 (List.map (fun (s, w) -> (s, J.Float w)) (stage_split o.Flow.trace)) );
             ( "final",
               J.Obj
                 [
                   ("tapping_wl_um", J.Float o.Flow.final.Flow.tapping_wl);
                   ("signal_wl_um", J.Float o.Flow.final.Flow.signal_wl);
                   ("total_mw", J.Float o.Flow.final.Flow.total_mw);
                   ("afd_um", J.Float o.Flow.final.Flow.afd);
                 ] );
           ])
       rows)

let sweep_json seq runs =
  let module J = Rc_util.Json in
  J.List
    (List.map
       (fun (j, par) ->
         J.Obj
           [
             ("jobs", J.Int j);
             ("wall_s", J.Float par);
             ("speedup_vs_seq", J.Float (speedup_of seq par));
           ])
       runs)

let results_json micro_timings size_rows (flows, (suite_seq, suite_runs)) =
  let module J = Rc_util.Json in
  let top_of runs = List.assoc top_jobs runs in
  J.Obj
    [
      (* schema v5: a "service" key (supervisor loadgen run) may be
         merged in by bench/loadgen.exe --key service; absent until a
         loadgen run has been recorded.  schema v7: loadgen --mix eco
         additionally merges ECO edit-latency percentiles under
         service.<transport>.eco *)
      ("schema_version", J.Int 7);
      ("git_rev", match git_rev () with Some r -> J.String r | None -> J.Null);
      ("jobs", J.Int (Rc_par.Pool.jobs ()));
      ("jobs_sweep", J.List (List.map (fun j -> J.Int j) (1 :: sweep_jobs)));
      (* schema v3: the CI regression floor on the top-job-count suite
         speedup, recorded in the artifact next to the measurement *)
      ( "suite_speedup_floor",
        match min_suite_speedup with Some f -> J.Float f | None -> J.Null );
      ("quick", J.Bool quick);
      ( "micro_kernels",
        J.List
          (List.map
             (fun (name, t) ->
               J.Obj
                 [
                   ("name", J.String name);
                   ("ns_per_run", match t with Some t -> J.Float t | None -> J.Null);
                 ])
             micro_timings) );
      ( "flow_wall_s",
        J.List
          (List.map
             (fun (name, seq, runs, (outcome : Flow.outcome), metrics) ->
               let s = outcome.Flow.final in
               let par = top_of runs in
               J.Obj
                 [
                   ("circuit", J.String name);
                   ("jobs1_s", J.Float seq);
                   ("jobsN_s", J.Float par);
                   ("speedup", J.Float (speedup_of seq par));
                   (* schema v3: per-circuit speedup at the top job
                      count plus the full per-job-count sweep *)
                   ("speedup_vs_seq", J.Float (speedup_of seq par));
                   ("sweep", sweep_json seq runs);
                   (* schema v2: quality of the converged flow, so the
                      trajectory records what the time bought *)
                   ( "final",
                     J.Obj
                       [
                         ("tapping_wl_um", J.Float s.Flow.tapping_wl);
                         ("signal_wl_um", J.Float s.Flow.signal_wl);
                         ("total_wl_um", J.Float s.Flow.total_wl);
                         ("max_load_ff", J.Float s.Flow.max_load_ff);
                         ("total_mw", J.Float s.Flow.total_mw);
                         ("afd_um", J.Float s.Flow.afd);
                       ] );
                   (* schema v2: solver-metric delta of the jobs=1 run *)
                   ("metrics", Rc_obs.Metrics.to_json metrics);
                 ])
             flows) );
      ( "suite_wall_s",
        J.Obj
          [
            ("jobs1_s", J.Float suite_seq);
            ("jobsN_s", J.Float (top_of suite_runs));
            ("speedup", J.Float (speedup_of suite_seq (top_of suite_runs)));
            ("speedup_vs_seq", J.Float (speedup_of suite_seq (top_of suite_runs)));
            ("sweep", sweep_json suite_seq suite_runs);
          ] );
      (* schema v4: the scaling-suite sweep (empty unless --sizes ran),
         plus its CI wall-time floor recorded next to the measurement *)
      ("size_sweep", size_sweep_json size_rows);
      ( "max_size_wall_s",
        match max_size_wall with Some f -> J.Float f | None -> J.Null );
    ]

let () =
  Printf.printf "[bench] jobs = %d%s\n%!" (Rc_par.Pool.jobs ())
    (if quick then " (quick)" else "");
  if (not micro_only) && not walls_only then reproduce ();
  (* --quick always runs the micro pass (reduced reps under --walls-only)
     so quick artifacts never carry an empty micro_kernels array *)
  let micro_timings =
    if tables_only then []
    else if walls_only && not quick then []
    else micro ~reduced:quick ()
  in
  let walls = compare_walls () in
  let size_rows = if sizes_arg = [] then [] else run_sizes sizes_arg in
  let path = "BENCH_results.json" in
  Rc_util.Json.to_file path (results_json micro_timings size_rows walls);
  Printf.printf "[bench] wrote %s\n%!" path;
  (match max_size_wall with
  | Some floor ->
      List.iter
        (fun (name, _, _, _, flow_s, _) ->
          if flow_s > floor then begin
            Printf.printf "[bench] FAIL: %s flow wall %.1fs above floor %.1fs\n%!" name
              flow_s floor;
            exit 1
          end
          else
            Printf.printf "[bench] %s flow wall %.1fs (floor %.1fs)\n%!" name flow_s floor)
        size_rows
  | None -> ());
  let _, (suite_seq, suite_runs) = walls in
  let suite_speedup = speedup_of suite_seq (List.assoc top_jobs suite_runs) in
  match min_suite_speedup with
  | Some floor when suite_speedup < floor ->
      Printf.printf "[bench] FAIL: suite speedup %.2fx at jobs=%d below floor %.2fx\n%!"
        suite_speedup top_jobs floor;
      exit 1
  | Some floor ->
      Printf.printf "[bench] suite speedup %.2fx at jobs=%d (floor %.2fx)\n%!" suite_speedup
        top_jobs floor
  | None -> ()

(* CI perf-smoke for the incremental layer.

   Two checks per --quick circuit, fast enough for every push:

   1. Correctness: the flow's final quality snapshot with the
      cross-iteration caches enabled is bit-identical to the flow with
      them disabled (incremental = false is the original cold path).
   2. Reuse actually happens: on the medium circuit (s9234) the reuse
      counters — STA replays, assignment-network replays, tap-cache
      hits — must all be non-zero.  A refactor that silently stops the
      caches from firing fails CI even though the results would still
      be correct.  The counters are deterministic for any job count, so
      both checks hold at every -j value.

   -j/--jobs N selects the job count (default 1) so CI can exercise the
   parallel regions; exit status 0 on success, 1 with a diagnostic on
   any failure. *)

open Rc_core

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let ok fmt = Printf.ksprintf (fun s -> Printf.printf "ok   %s\n" s) fmt

let check_field name circuit a b =
  if a = b then ok "%s %s: %.17g" circuit name a
  else fail "%s %s: incremental %.17g <> cold %.17g" circuit name a b

let counter_value snap name =
  match List.assoc_opt name snap with Some (Rc_obs.Metrics.Count n) -> n | _ -> 0

let check_reuse snap circuit name =
  let n = counter_value snap name in
  if n > 0 then ok "%s %s = %d" circuit name n
  else fail "%s %s = 0: the incremental layer never fired" circuit name

let run_flow ~incremental bench =
  let cfg = { (Flow.default_config bench) with Flow.incremental } in
  Flow.run cfg

let jobs =
  let n = Array.length Sys.argv in
  let value s = Option.value (int_of_string_opt s) ~default:1 in
  let rec scan i =
    if i >= n then 1
    else if (Sys.argv.(i) = "-j" || Sys.argv.(i) = "--jobs") && i + 1 < n then
      value Sys.argv.(i + 1)
    else if String.length Sys.argv.(i) > 7 && String.sub Sys.argv.(i) 0 7 = "--jobs=" then
      value (String.sub Sys.argv.(i) 7 (String.length Sys.argv.(i) - 7))
    else scan (i + 1)
  in
  scan 1

let () =
  Rc_par.Pool.set_jobs jobs;
  Printf.printf "perf smoke: jobs = %d\n%!" jobs;
  List.iter
    (fun bench ->
      let name = bench.Bench_suite.bname in
      Rc_obs.Metrics.set_enabled true;
      let before = Rc_obs.Metrics.snapshot () in
      let inc = run_flow ~incremental:true bench in
      let snap = Rc_obs.Metrics.diff ~before ~after:(Rc_obs.Metrics.snapshot ()) in
      Rc_obs.Metrics.set_enabled false;
      let cold = run_flow ~incremental:false bench in
      let a = inc.Flow.final and b = cold.Flow.final in
      check_field "tapping_wl" name a.Flow.tapping_wl b.Flow.tapping_wl;
      check_field "signal_wl" name a.Flow.signal_wl b.Flow.signal_wl;
      check_field "total_wl" name a.Flow.total_wl b.Flow.total_wl;
      check_field "max_load_ff" name a.Flow.max_load_ff b.Flow.max_load_ff;
      check_field "total_mw" name a.Flow.total_mw b.Flow.total_mw;
      check_field "afd" name a.Flow.afd b.Flow.afd;
      if name = "s9234" then begin
        check_reuse snap name "timing.sta.replays";
        check_reuse snap name "netflow.assignment.replays";
        check_reuse snap name "assign.tapcache.hits"
      end)
    Bench_suite.quick;
  if !failures > 0 then begin
    Printf.printf "perf smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "perf smoke: all checks passed"

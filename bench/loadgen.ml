(* Concurrent load generator for `rotary_cli serve`.

   Opens N client connections to a running server's Unix-domain socket
   or TCP port, pipelines a deterministic mix of requests (flow /
   sweep / status / checkpoint-inspect) across them, and measures
   client-side latency per request: write completion to response
   arrival on the monotonic clock.  Results — ok/error counts, latency
   percentiles, throughput — are printed and merged under --key
   (optionally nested under --label, e.g. service.shm vs
   service.ndjson) of BENCH_results.json (schema: DESIGN.md "Bench
   results file"), read and rewritten with Rc_util.Json.

   Connection engine: a single thread drives every connection through
   poll(2) (Rc_serve.Evloop) — nonblocking connects, per-connection
   write/read buffers — so thousands of connections (--conns 2048)
   cost one thread and no per-connection stacks, instead of the old
   thread-per-connection model that fell over around the default
   thread cap.

   Usage:
     loadgen.exe --socket PATH | --tcp HOST:PORT
                 [--conns N | -n N] [--requests TOTAL]
                 [--mix default|light|eco] [--bench NAME]
                 [--sessions N] [--edits N] [--verify-replay]
                 [--deadline-ms MS] [--out FILE.json]
                 [--key NAME] [--label NAME] [--expect-digest HEX]
                 [--chaos-kill K --shm PATH]

   The request mix is a fixed rotation, so a given (--requests,
   --conns) pair always issues the same workload — comparable across
   runs.

   --mix eco switches to the ECO session driver: --sessions blocking
   client threads each open a held-open session (session_open), stream
   --edits deterministic seeded edit batches (session_edit), and close.
   Edit latency percentiles are reported separately from opens/closes.
   --verify-replay then opens a fresh session per finished one,
   replays the identical batches, and requires the final digest to be
   bit-identical to the incremental session's — the replay-identity
   anchor of docs/serving.md.  Session ids are stamped by the server,
   so the same binary drives both the supervisor and a single-process
   server.

   Chaos mode (--chaos-kill K with --shm PATH) is the supervisor tier's
   CI drill: once K responses have arrived, the busiest worker process
   (highest in-flight per the shm control rows) is SIGKILLed mid-batch;
   the run still requires every request to get exactly one successful
   response, and --expect-digest HEX additionally pins every flow
   response's digest — a resumed flow must be bit-identical to an
   uninterrupted one. *)

module Json = Rc_util.Json
module Timer = Rc_util.Timer
module Evloop = Rc_serve.Evloop

let socket_path = ref ""
let tcp_spec = ref ""
let n_conns = ref 4
let n_requests = ref 16
let mix = ref "default"
let bench_name = ref "tiny"
let deadline_ms = ref 0.0 (* 0 = no deadline field *)
let out_path = ref "BENCH_results.json"
let out_key = ref "loadgen"
let out_label = ref ""
let expect_digest = ref ""
let chaos_kill = ref 0 (* 0 = no chaos *)
let shm_path = ref ""
let n_sessions = ref 4
let n_edits = ref 6
let verify_replay = ref false

let args =
  [
    ("--socket", Arg.Set_string socket_path, "PATH server Unix-domain socket");
    ("--tcp", Arg.Set_string tcp_spec, "HOST:PORT connect over TCP instead of the Unix socket");
    ("--conns", Arg.Set_int n_conns, "N concurrent client connections (default 4)");
    ("-n", Arg.Set_int n_conns, "N alias for --conns");
    ("--requests", Arg.Set_int n_requests, "N total requests across all connections (default 16)");
    ( "--mix",
      Arg.Set_string mix,
      "MIX request mix: default (flow/sweep/status), light (status-heavy, 1-in-5 flow), \
       or eco (held-open edit sessions)" );
    ("--bench", Arg.Set_string bench_name, "NAME circuit used by flow requests (default tiny)");
    ("--sessions", Arg.Set_int n_sessions, "N concurrent ECO sessions under --mix eco (default 4)");
    ("--edits", Arg.Set_int n_edits, "N edit batches per ECO session (default 6)");
    ( "--verify-replay",
      Arg.Set verify_replay,
      " replay each ECO session's batches onto a fresh session and require digest identity" );
    ( "--deadline-ms",
      Arg.Set_float deadline_ms,
      "MS attach this deadline to every async request (default: none)" );
    ("--out", Arg.Set_string out_path, "FILE merge results into this JSON file (default BENCH_results.json)");
    ("--key", Arg.Set_string out_key, "NAME top-level key to merge under (default loadgen)");
    ( "--label",
      Arg.Set_string out_label,
      "NAME nest the result under KEY.LABEL instead of KEY (per-transport comparisons)" );
    ( "--expect-digest",
      Arg.Set_string expect_digest,
      "HEX require every flow response's digest to equal HEX (bit-identity check)" );
    ( "--chaos-kill",
      Arg.Set_int chaos_kill,
      "K after K responses, SIGKILL the busiest worker from the shm segment (needs --shm)" );
    ("--shm", Arg.Set_string shm_path, "PATH supervisor shm segment (for --chaos-kill and restart counts)");
  ]

(* deterministic mixed workloads.  "default": mostly flow, plus sweep
   and cheap status probes.  "light": status-heavy with 1-in-5 flows —
   high request counts without hours of flow compute; note that a
   supervisor answers status inline, so only the flows exercise the
   worker tier. *)
let request_body k =
  if !mix = "light" then
    if k mod 5 = 0 then [ ("op", Json.String "flow"); ("bench", Json.String !bench_name) ]
    else [ ("op", Json.String "status") ]
  else
    match k mod 4 with
    | 0 | 1 -> [ ("op", Json.String "flow"); ("bench", Json.String !bench_name) ]
    | 2 ->
        [
          ("op", Json.String "sweep");
          ("bench", Json.String !bench_name);
          ("grids", Json.List [ Json.Int 2; Json.Int 3 ]);
        ]
    | _ -> [ ("op", Json.String "status") ]

let is_flow k = if !mix = "light" then k mod 5 = 0 else k mod 4 < 2
let is_async k = if !mix = "light" then k mod 5 = 0 else k mod 4 <> 3

(* ---- chaos: SIGKILL the busiest worker once the batch is rolling ---- *)

let responses_seen = Atomic.make 0
let chaos_killed_pid = Atomic.make 0

let chaos_thread () =
  let module Shm = Rc_serve.Shm in
  match Shm.attach ~path:!shm_path () with
  | Error e ->
      Printf.eprintf "[loadgen] chaos: cannot attach %s: %s\n%!" !shm_path e;
      exit 2
  | Ok shm ->
      (* wait for the trigger count, then for a worker with work *)
      while Atomic.get responses_seen < !chaos_kill do
        Thread.delay 0.002
      done;
      let victim = ref 0 in
      while !victim = 0 do
        let rows = Shm.read_all shm in
        let busiest = ref (-1, 0) in
        Array.iter
          (fun (r : Shm.row) ->
            let c = r.Shm.control in
            if c.Shm.c_state = Shm.C_up && c.Shm.c_inflight > fst !busiest then
              busiest := (c.Shm.c_inflight, c.Shm.c_pid))
          rows;
        if fst !busiest >= 1 && snd !busiest > 0 then victim := snd !busiest
        else Thread.delay 0.002
      done;
      Printf.eprintf "[loadgen] chaos: SIGKILL worker pid %d after %d responses\n%!"
        !victim (Atomic.get responses_seen);
      (try Unix.kill !victim Sys.sigkill with Unix.Unix_error _ -> ());
      Atomic.set chaos_killed_pid !victim

let restarts_survived () =
  if !shm_path = "" then None
  else
    let module Shm = Rc_serve.Shm in
    match Shm.attach ~path:!shm_path () with
    | Error _ -> None
    | Ok shm ->
        Some
          (Array.fold_left
             (fun acc (r : Shm.row) -> acc + r.Shm.control.Shm.c_restarts)
             0 (Shm.read_all shm))

type reply = { ok : bool; error : string; latency_s : float }

let server_addr () =
  if !tcp_spec <> "" then (
    let host, port =
      match String.rindex_opt !tcp_spec ':' with
      | Some i ->
          ( String.sub !tcp_spec 0 i,
            String.sub !tcp_spec (i + 1) (String.length !tcp_spec - i - 1) )
      | None -> ("127.0.0.1", !tcp_spec)
    in
    let host = if host = "" then "127.0.0.1" else host in
    match int_of_string_opt port with
    | None ->
        prerr_endline ("loadgen: bad --tcp spec (want [HOST:]PORT): " ^ !tcp_spec);
        exit 2
    | Some p -> Unix.ADDR_INET (Unix.inet_addr_of_string host, p))
  else Unix.ADDR_UNIX !socket_path

(* ---- the poll-driven connection engine --------------------------------- *)

type cstate =
  | Backoff of float  (* connect refused (backlog burst); retry at this time *)
  | Connecting  (* nonblocking connect in flight; wait for POLLOUT *)
  | Running  (* write the request block / read response lines *)
  | Closed

type conn = {
  cid : int;
  mutable fd : Unix.file_descr;
  mutable st : cstate;
  mutable attempts : int;  (* connect attempts *)
  out : string;  (* every request line of this connection, pre-rendered *)
  marks : (int * int) array;  (* (end offset in [out], id), ascending *)
  mutable next_mark : int;
  mutable written : int;
  sent : (int, float) Hashtbl.t;  (* id -> t0, stamped at write completion *)
  flow_ids : (int, unit) Hashtbl.t;
  expected : int;
  mutable answered : int;
  inbuf : Buffer.t;  (* partial response line *)
  mutable replies : reply list;
}

let make_conn ~cid ~count ~first_id =
  let b = Buffer.create (count * 64) in
  let marks = Array.make count (0, 0) in
  let flow_ids = Hashtbl.create count in
  for i = 0 to count - 1 do
    let id = first_id + i in
    let body = request_body (cid + i) in
    let body =
      if is_async (cid + i) && !deadline_ms > 0.0 then
        body @ [ ("deadline_ms", Json.Float !deadline_ms) ]
      else body
    in
    if is_flow (cid + i) then Hashtbl.replace flow_ids id ();
    Buffer.add_string b (Json.to_line (Json.Obj (("id", Json.Int id) :: body)));
    Buffer.add_char b '\n';
    marks.(i) <- (Buffer.length b, id)
  done;
  {
    cid;
    fd = Unix.stdin;
    st = Backoff 0.0;
    attempts = 0;
    out = Buffer.contents b;
    marks;
    next_mark = 0;
    written = 0;
    sent = Hashtbl.create count;
    flow_ids;
    expected = count;
    answered = 0;
    inbuf = Buffer.create 256;
    replies = [];
  }

let max_connect_attempts = 10_000

let start_connect c =
  let addr = server_addr () in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  c.fd <- fd;
  c.attempts <- c.attempts + 1;
  match Unix.connect fd addr with
  | () -> c.st <- Running
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
      c.st <- Connecting
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EAGAIN | Unix.ECONNRESET), _, _)
    when c.attempts < max_connect_attempts ->
      (* a connect burst can momentarily overflow the listen backlog;
         back off briefly and retry *)
      (try Unix.close fd with Unix.Unix_error _ -> ());
      c.st <- Backoff (Timer.now_s () +. 0.005)
  | exception Unix.Unix_error (e, _, _) ->
      failwith
        (Printf.sprintf "connection %d: connect failed: %s" c.cid (Unix.error_message e))

let close_conn c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  c.st <- Closed

let handle_response c line now =
  if line <> "" then
    match Json.of_string line with
    | Error e -> failwith ("unparseable response: " ^ e)
    | Ok j -> (
        match Option.bind (Json.member "id" j) Json.to_int_opt with
        | None -> failwith ("response without id: " ^ line)
        | Some id -> (
            match Hashtbl.find_opt c.sent id with
            | None -> failwith (Printf.sprintf "unexpected response id %d" id)
            | Some t0 ->
                Hashtbl.remove c.sent id;
                c.answered <- c.answered + 1;
                Atomic.incr responses_seen;
                let ok =
                  match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false
                in
                let ok, error =
                  if not ok then
                    ( false,
                      Option.value
                        (Option.bind (Json.member "error" j) Json.to_string_opt)
                        ~default:"?" )
                  else if !expect_digest <> "" && Hashtbl.mem c.flow_ids id then
                    let digest =
                      Option.bind (Json.member "result" j) (Json.member "digest")
                      |> Fun.flip Option.bind Json.to_string_opt
                    in
                    match digest with
                    | Some d when d = !expect_digest -> (true, "")
                    | Some d ->
                        (false, Printf.sprintf "digest mismatch: got %s want %s" d !expect_digest)
                    | None -> (false, "flow response without result.digest")
                  else (true, "")
                in
                c.replies <- { ok; error; latency_s = now -. t0 } :: c.replies))

let chunk = Bytes.create 65536

let do_read c =
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 ->
      if c.answered < c.expected then
        failwith
          (Printf.sprintf "connection %d: server closed with %d responses outstanding"
             c.cid (c.expected - c.answered))
      else close_conn c
  | n ->
      let now = Timer.now_s () in
      for i = 0 to n - 1 do
        let ch = Bytes.get chunk i in
        if ch = '\n' then (
          handle_response c (String.trim (Buffer.contents c.inbuf)) now;
          Buffer.clear c.inbuf)
        else Buffer.add_char c.inbuf ch
      done;
      if c.answered >= c.expected then close_conn c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

(* flush as much of the request block as the socket accepts; each
   request's t0 is stamped when its last byte enters the kernel *)
let do_write c =
  let len = String.length c.out in
  let rec go () =
    if c.written < len then
      match Unix.write_substring c.fd c.out c.written (min 65536 (len - c.written)) with
      | n ->
          let now = Timer.now_s () in
          c.written <- c.written + n;
          while
            c.next_mark < Array.length c.marks && fst c.marks.(c.next_mark) <= c.written
          do
            Hashtbl.replace c.sent (snd c.marks.(c.next_mark)) now;
            c.next_mark <- c.next_mark + 1
          done;
          if n > 0 then go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
  in
  go ()

let run_engine conns =
  let ev = Evloop.create (Array.length conns) in
  let regs = Array.make (Array.length conns) conns.(0) in
  let live () = Array.exists (fun c -> c.st <> Closed) conns in
  while live () do
    let now = Timer.now_s () in
    Array.iter
      (fun c -> match c.st with Backoff t when now >= t -> start_connect c | _ -> ())
      conns;
    Evloop.begin_round ev;
    let nreg = ref 0 in
    Array.iter
      (fun c ->
        let events =
          match c.st with
          | Connecting -> Evloop.pollout
          | Running ->
              Evloop.pollin
              lor (if c.written < String.length c.out then Evloop.pollout else 0)
          | Backoff _ | Closed -> 0
        in
        if events <> 0 then (
          let i = Evloop.add ev c.fd ~events in
          regs.(i) <- c;
          incr nreg))
      conns;
    if !nreg = 0 then Thread.delay 0.002
    else if Evloop.wait ev ~timeout_ms:100 > 0 then
      for i = 0 to !nreg - 1 do
        let c = regs.(i) in
        let r = Evloop.revents ev i in
        match c.st with
        | Connecting ->
            if r land (Evloop.pollout lor Evloop.pollerr) <> 0 then (
              match Unix.getsockopt_error c.fd with
              | None ->
                  c.st <- Running;
                  do_write c
              | Some (Unix.ECONNREFUSED | Unix.EAGAIN | Unix.ECONNRESET)
                when c.attempts < max_connect_attempts ->
                  (try Unix.close c.fd with Unix.Unix_error _ -> ());
                  c.st <- Backoff (Timer.now_s () +. 0.005)
              | Some e ->
                  failwith
                    (Printf.sprintf "connection %d: connect failed: %s" c.cid
                       (Unix.error_message e)))
        | Running ->
            if r land Evloop.pollout <> 0 then do_write c;
            if c.st = Running && r land (Evloop.pollin lor Evloop.pollerr) <> 0 then
              do_read c
        | Backoff _ | Closed -> ()
      done
  done;
  Array.to_list conns |> List.concat_map (fun c -> c.replies)

(* ---- ECO session driver (--mix eco) ------------------------------------ *)

(* The poll engine pre-renders every request byte, which cannot work
   for sessions: each edit needs the session id from the open response
   and must wait for its predecessor (one in-flight edit per session
   keeps seq = applied+1 on every tier).  So the eco mix runs one
   blocking thread per session over its own connection. *)

(* Lehmer MINSTD: deterministic per (seed), so --verify-replay can
   re-derive the exact batches without shipping them around. *)
type rng = { mutable s : int }

let rng_make seed =
  let s = (seed * 7919) + 104729 in
  { s = (if s mod 0x7FFFFFFF = 0 then 1 else s mod 0x7FFFFFFF) }

let rng_next r =
  r.s <- r.s * 48271 mod 0x7FFFFFFF;
  r.s

let rng_int r n = rng_next r mod max 1 n
let rng_float r = float_of_int (rng_next r) /. 2147483647.0

(* geometry the edit generator needs, straight from the open response *)
type eco_info = {
  i_n_cells : int;
  i_n_ffs : int;
  i_n_rings : int;
  i_period : float;
  i_chip : float * float * float * float;
}

let gen_edit rng info =
  let xmin, ymin, xmax, ymax = info.i_chip in
  let w = xmax -. xmin and h = ymax -. ymin in
  match rng_int rng 4 with
  | 0 ->
      Json.Obj
        [
          ("kind", Json.String "move");
          ("cell", Json.Int (rng_int rng info.i_n_cells));
          ("x", Json.Float (xmin +. (rng_float rng *. w)));
          ("y", Json.Float (ymin +. (rng_float rng *. h)));
        ]
  | 1 ->
      let bx = xmin +. (rng_float rng *. w *. 0.8) in
      let by = ymin +. (rng_float rng *. h *. 0.8) in
      Json.Obj
        [
          ("kind", Json.String "shift");
          ("xmin", Json.Float bx);
          ("ymin", Json.Float by);
          ("xmax", Json.Float (bx +. (w *. 0.2)));
          ("ymax", Json.Float (by +. (h *. 0.2)));
          ("dx", Json.Float ((rng_float rng -. 0.5) *. w *. 0.04));
          ("dy", Json.Float ((rng_float rng -. 0.5) *. h *. 0.04));
        ]
  | 2 when info.i_n_ffs > 0 && info.i_n_rings > 0 ->
      Json.Obj
        [
          ("kind", Json.String "retarget");
          ("ff", Json.Int (rng_int rng info.i_n_ffs));
          ("ring", Json.Int (rng_int rng info.i_n_rings));
        ]
  | _ ->
      (* absolute target period in [p0, 1.2 p0] so a replay that
         regenerates the stream lands on the same value regardless of
         the session's current period *)
      Json.Obj
        [
          ("kind", Json.String "period");
          ("period", Json.Float (info.i_period *. (1.0 +. (0.2 *. rng_float rng))));
        ]

let gen_batch rng info = List.init (1 + rng_int rng 3) (fun _ -> gen_edit rng info)

(* one blocking round trip: write the request line, read lines until
   the matching id answers.  Latency is write completion to response
   arrival, same clock discipline as the poll engine. *)
let eco_roundtrip fd ic ~id body =
  let line = Json.to_line (Json.Obj (("id", Json.Int id) :: body)) ^ "\n" in
  let rec write_all off =
    if off < String.length line then
      write_all (off + Unix.write_substring fd line off (String.length line - off))
  in
  write_all 0;
  let t0 = Timer.now_s () in
  let rec read_reply () =
    let l = String.trim (input_line ic) in
    if l = "" then read_reply ()
    else
      match Json.of_string l with
      | Error e -> failwith ("unparseable response: " ^ e)
      | Ok j -> (
          match Option.bind (Json.member "id" j) Json.to_int_opt with
          | Some i when i = id -> j
          | _ -> read_reply ())
  in
  let j = read_reply () in
  Atomic.incr responses_seen;
  let lat = Timer.now_s () -. t0 in
  match Json.member "ok" j with
  | Some (Json.Bool true) -> (
      match Json.member "result" j with
      | Some r -> (r, lat)
      | None -> failwith "ok response without result")
  | _ ->
      failwith
        (Option.value
           (Option.bind (Json.member "error" j) Json.to_string_opt)
           ~default:"server error")

let eco_open fd ic ~id =
  let r, lat =
    eco_roundtrip fd ic ~id
      [ ("op", Json.String "session_open"); ("bench", Json.String !bench_name) ]
  in
  let int_of name =
    match Option.bind (Json.member name r) Json.to_int_opt with
    | Some v -> v
    | None -> failwith (Printf.sprintf "session_open response missing %S" name)
  in
  let num_of ?inside name =
    let j = match inside with Some k -> Option.value (Json.member k r) ~default:Json.Null | None -> r in
    match Option.bind (Json.member name j) Json.to_float_opt with
    | Some v -> v
    | None -> failwith (Printf.sprintf "session_open response missing %S" name)
  in
  let digest =
    match Option.bind (Json.member "digest" r) Json.to_string_opt with
    | Some d -> d
    | None -> failwith "session_open response missing \"digest\""
  in
  let info =
    {
      i_n_cells = int_of "n_cells";
      i_n_ffs = int_of "n_ffs";
      i_n_rings = int_of "n_rings";
      i_period = num_of "clock_period_ps";
      i_chip =
        ( num_of ~inside:"chip" "xmin",
          num_of ~inside:"chip" "ymin",
          num_of ~inside:"chip" "xmax",
          num_of ~inside:"chip" "ymax" );
    }
  in
  (int_of "session", info, digest, lat)

let eco_edit fd ic ~id ~sid batch =
  let r, lat =
    eco_roundtrip fd ic ~id
      [
        ("op", Json.String "session_edit");
        ("session", Json.Int sid);
        ("edits", Json.List batch);
      ]
  in
  match Option.bind (Json.member "digest" r) Json.to_string_opt with
  | Some d -> (d, lat)
  | None -> failwith "session_edit response missing \"digest\""

let eco_close fd ic ~id ~sid =
  ignore
    (eco_roundtrip fd ic ~id
       [ ("op", Json.String "session_close"); ("session", Json.Int sid) ])

(* drive session [idx]: open, stream the seeded batches, close; then
   optionally replay the identical stream on a fresh session and pin
   the final digest.  Returns (edit latencies, error strings, replays). *)
let eco_session idx =
  let edit_lats = ref [] and errors = ref [] and replays = ref 0 in
  let with_conn f =
    let addr = server_addr () in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    let rec connect tries =
      match Unix.connect fd addr with
      | () -> ()
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EAGAIN), _, _)
        when tries < 1000 ->
          Thread.delay 0.005;
          connect (tries + 1)
    in
    connect 0;
    let ic = Unix.in_channel_of_descr fd in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f fd ic)
  in
  (* run one full session with the batch stream of [idx]; returns the
     final digest.  [record] controls whether edit latencies count —
     replay traffic verifies, it does not skew the percentiles. *)
  let run_stream ~record fd ic ~first_id =
    let sid, info, digest0, _open_lat = eco_open fd ic ~id:first_id in
    let rng = rng_make ((idx * 131) + 7) in
    let digest = ref digest0 in
    for b = 1 to !n_edits do
      let batch = gen_batch rng info in
      let d, lat = eco_edit fd ic ~id:(first_id + b) ~sid batch in
      digest := d;
      if record then edit_lats := lat :: !edit_lats
    done;
    eco_close fd ic ~id:(first_id + !n_edits + 1) ~sid;
    !digest
  in
  (try
     let base = (idx * 100000) + 1 in
     let final = with_conn (fun fd ic -> run_stream ~record:true fd ic ~first_id:base) in
     if !verify_replay then begin
       let replayed =
         with_conn (fun fd ic -> run_stream ~record:false fd ic ~first_id:(base + 50000))
       in
       incr replays;
       if replayed <> final then
         errors :=
           Printf.sprintf "session %d: replay digest %s <> incremental %s" idx replayed
             final
           :: !errors
     end
   with
  | Failure e -> errors := Printf.sprintf "session %d: %s" idx e :: !errors
  | End_of_file -> errors := Printf.sprintf "session %d: connection closed" idx :: !errors
  | Unix.Unix_error (e, fn, _) ->
      errors := Printf.sprintf "session %d: %s: %s" idx fn (Unix.error_message e) :: !errors);
  (!edit_lats, !errors, !replays)

let run_eco () =
  let t0 = Timer.now_s () in
  let n = max 1 !n_sessions in
  let parts = Array.make n ([], [], 0) in
  let slots =
    Array.init n
      (fun idx -> Thread.create (fun () -> parts.(idx) <- eco_session idx) ())
  in
  Array.iter Thread.join slots;
  let wall_s = Timer.now_s () -. t0 in
  let lats =
    Array.to_list parts |> List.concat_map (fun (l, _, _) -> l) |> Array.of_list
  in
  let errors = Array.to_list parts |> List.concat_map (fun (_, e, _) -> e) in
  let replays = Array.fold_left (fun acc (_, _, r) -> acc + r) 0 parts in
  Array.sort compare lats;
  (wall_s, lats, errors, replays)

(* ---- reporting --------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

(* merge under --key, or KEY.LABEL with --label (other labels kept).
   [sub] nests one level deeper still — KEY.LABEL.SUB — preserving the
   sibling fields of KEY.LABEL, which is how the eco mix lands under
   service.<transport>.eco without clobbering the transport's flow
   numbers. *)
let merge_results ?sub doc =
  let existing =
    if Sys.file_exists !out_path then
      let ic = open_in_bin !out_path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Json.of_string s with Ok (Json.Obj fields) -> fields | _ -> []
    else []
  in
  let obj_fields = function Some (Json.Obj fields) -> fields | _ -> [] in
  let put fields name v = List.remove_assoc name fields @ [ (name, v) ] in
  let doc =
    match (!out_label, sub) with
    | "", None -> doc
    | "", Some s ->
        (* no transport label: nest SUB directly under KEY *)
        Json.Obj (put (obj_fields (List.assoc_opt !out_key existing)) s doc)
    | label, None ->
        Json.Obj (put (obj_fields (List.assoc_opt !out_key existing)) label doc)
    | label, Some s ->
        let prior = obj_fields (List.assoc_opt !out_key existing) in
        let inner = obj_fields (List.assoc_opt label prior) in
        Json.Obj (put prior label (Json.Obj (put inner s doc)))
  in
  let fields = put existing !out_key doc in
  Json.to_file !out_path (Json.Obj fields)

(* chaos verdict shared by both drivers: every request must still be
   answered (checked by each driver), and the kill must actually have
   landed for the drill to count *)
let chaos_verdict () =
  if !chaos_kill = 0 then true
  else begin
    (* the kill races with batch completion; give it a moment to land *)
    let deadline = Timer.now_s () +. 2.0 in
    while Atomic.get chaos_killed_pid = 0 && Timer.now_s () < deadline do
      Thread.delay 0.01
    done;
    let pid = Atomic.get chaos_killed_pid in
    if pid = 0 then
      Printf.eprintf "[loadgen] chaos: batch finished before any worker could be killed\n";
    pid <> 0
  end

let restart_fields () =
  match restarts_survived () with
  | None -> []
  | Some n ->
      Printf.printf "[loadgen] restarts survived: %d\n" n;
      [ ("restarts_survived", Json.Int n) ]

let chaos_fields () =
  if !chaos_kill = 0 then []
  else
    [
      ( "chaos",
        Json.Obj
          [
            ("trigger_responses", Json.Int !chaos_kill);
            ("killed_pid", Json.Int (Atomic.get chaos_killed_pid));
          ] );
    ]

let pcts = [ (0.50, "p50"); (0.90, "p90"); (0.95, "p95"); (0.99, "p99") ]

let latency_fields lats =
  List.map (fun (p, name) -> (name ^ "_s", Json.Float (percentile lats p))) pcts
  @ [
      ( "max_s",
        Json.Float (if Array.length lats = 0 then nan else lats.(Array.length lats - 1))
      );
    ]

let main_eco () =
  let sessions = max 1 !n_sessions in
  let wall_s, lats, errors, replays = run_eco () in
  List.iter (fun e -> Printf.eprintf "[loadgen] eco error: %s\n" e) errors;
  let lat_fields = latency_fields lats in
  Printf.printf
    "[loadgen] eco: %d sessions x %d edits: %d edits timed, %d errors, %.2f s wall\n"
    sessions !n_edits (Array.length lats) (List.length errors) wall_s;
  List.iter
    (function
      | name, Json.Float v -> Printf.printf "[loadgen]   edit %-6s %8.4f s\n" name v
      | _ -> ())
    lat_fields;
  if !verify_replay then
    Printf.printf "[loadgen] replay: %d/%d sessions digest-identical\n"
      (replays - List.length errors |> max 0)
      sessions;
  let chaos_ok = chaos_verdict () in
  let doc =
    Json.Obj
      ([
         ("sessions", Json.Int sessions);
         ("edits_per_session", Json.Int !n_edits);
         ("edits_timed", Json.Int (Array.length lats));
         ("errors", Json.Int (List.length errors));
         ("wall_s", Json.Float wall_s);
         ( "edits_per_s",
           Json.Float (float_of_int (Array.length lats) /. Float.max wall_s 1e-9) );
         ("replayed", Json.Int replays);
         ("edit_latency", Json.Obj lat_fields);
       ]
      @ restart_fields () @ chaos_fields ())
  in
  merge_results ~sub:"eco" doc;
  Printf.printf "[loadgen] merged into %s (key %s%s.eco)\n" !out_path !out_key
    (if !out_label = "" then "" else "." ^ !out_label);
  if errors <> [] || (not chaos_ok) || (!verify_replay && replays < sessions) then exit 1

let () =
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "loadgen.exe (--socket PATH | --tcp HOST:PORT) [--conns N] [--requests TOTAL]";
  if !socket_path = "" && !tcp_spec = "" then (
    prerr_endline "loadgen: --socket or --tcp is required";
    exit 2);
  if !chaos_kill > 0 && !shm_path = "" then (
    prerr_endline "loadgen: --chaos-kill needs --shm PATH";
    exit 2);
  if !chaos_kill > 0 then ignore (Thread.create chaos_thread ());
  if !mix = "eco" then (
    main_eco ();
    exit 0);
  let conns = max 1 !n_conns and total = max 1 !n_requests in
  (* split TOTAL across connections, remainder to the first ones *)
  let share c = (total / conns) + if c < total mod conns then 1 else 0 in
  let t0 = Timer.now_s () in
  let cs =
    Array.init conns (fun c ->
        make_conn ~cid:c ~count:(share c) ~first_id:((c * total) + 1))
  in
  let replies = run_engine cs in
  let wall_s = Timer.now_s () -. t0 in
  let n_ok = List.length (List.filter (fun r -> r.ok) replies) in
  let n_err = List.length replies - n_ok in
  List.iter
    (fun r -> if not r.ok then Printf.eprintf "[loadgen] error response: %s\n" r.error)
    replies;
  let lats =
    List.map (fun r -> r.latency_s) (List.filter (fun r -> r.ok) replies)
    |> Array.of_list
  in
  Array.sort compare lats;
  let lat_fields = latency_fields lats in
  Printf.printf "[loadgen] %d requests over %d connections: %d ok, %d errors, %.2f s wall\n"
    (List.length replies) conns n_ok n_err wall_s;
  List.iter
    (function name, Json.Float v -> Printf.printf "[loadgen]   %-6s %8.4f s\n" name v | _ -> ())
    lat_fields;
  Printf.printf "[loadgen] throughput %.2f req/s\n"
    (float_of_int (List.length replies) /. Float.max wall_s 1e-9);
  let chaos_ok = chaos_verdict () in
  let doc =
    Json.Obj
      ([
         ("connections", Json.Int conns);
         ("requests", Json.Int (List.length replies));
         ("ok", Json.Int n_ok);
         ("errors", Json.Int n_err);
         ("wall_s", Json.Float wall_s);
         ("throughput_per_s", Json.Float (float_of_int (List.length replies) /. Float.max wall_s 1e-9));
         ("latency", Json.Obj lat_fields);
       ]
      @ restart_fields () @ chaos_fields ())
  in
  merge_results doc;
  Printf.printf "[loadgen] merged into %s (key %s%s)\n" !out_path !out_key
    (if !out_label = "" then "" else "." ^ !out_label);
  if n_err > 0 || List.length replies <> total || not chaos_ok then exit 1

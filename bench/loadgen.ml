(* Concurrent load generator for `rotary_cli serve`.

   Opens N client connections to a running server's Unix-domain socket
   or TCP port, pipelines a deterministic mix of requests (flow /
   sweep / status / checkpoint-inspect) across them, and measures
   client-side latency per request: write completion to response
   arrival on the monotonic clock.  Results — ok/error counts, latency
   percentiles, throughput — are printed and merged under --key
   (optionally nested under --label, e.g. service.shm vs
   service.ndjson) of BENCH_results.json (schema: DESIGN.md "Bench
   results file"), read and rewritten with Rc_util.Json.

   Connection engine: a single thread drives every connection through
   poll(2) (Rc_serve.Evloop) — nonblocking connects, per-connection
   write/read buffers — so thousands of connections (--conns 2048)
   cost one thread and no per-connection stacks, instead of the old
   thread-per-connection model that fell over around the default
   thread cap.

   Usage:
     loadgen.exe --socket PATH | --tcp HOST:PORT
                 [--conns N | -n N] [--requests TOTAL]
                 [--mix default|light] [--bench NAME]
                 [--deadline-ms MS] [--out FILE.json]
                 [--key NAME] [--label NAME] [--expect-digest HEX]
                 [--chaos-kill K --shm PATH]

   The request mix is a fixed rotation, so a given (--requests,
   --conns) pair always issues the same workload — comparable across
   runs.

   Chaos mode (--chaos-kill K with --shm PATH) is the supervisor tier's
   CI drill: once K responses have arrived, the busiest worker process
   (highest in-flight per the shm control rows) is SIGKILLed mid-batch;
   the run still requires every request to get exactly one successful
   response, and --expect-digest HEX additionally pins every flow
   response's digest — a resumed flow must be bit-identical to an
   uninterrupted one. *)

module Json = Rc_util.Json
module Timer = Rc_util.Timer
module Evloop = Rc_serve.Evloop

let socket_path = ref ""
let tcp_spec = ref ""
let n_conns = ref 4
let n_requests = ref 16
let mix = ref "default"
let bench_name = ref "tiny"
let deadline_ms = ref 0.0 (* 0 = no deadline field *)
let out_path = ref "BENCH_results.json"
let out_key = ref "loadgen"
let out_label = ref ""
let expect_digest = ref ""
let chaos_kill = ref 0 (* 0 = no chaos *)
let shm_path = ref ""

let args =
  [
    ("--socket", Arg.Set_string socket_path, "PATH server Unix-domain socket");
    ("--tcp", Arg.Set_string tcp_spec, "HOST:PORT connect over TCP instead of the Unix socket");
    ("--conns", Arg.Set_int n_conns, "N concurrent client connections (default 4)");
    ("-n", Arg.Set_int n_conns, "N alias for --conns");
    ("--requests", Arg.Set_int n_requests, "N total requests across all connections (default 16)");
    ( "--mix",
      Arg.Set_string mix,
      "MIX request mix: default (flow/sweep/status) or light (status-heavy, 1-in-5 flow)" );
    ("--bench", Arg.Set_string bench_name, "NAME circuit used by flow requests (default tiny)");
    ( "--deadline-ms",
      Arg.Set_float deadline_ms,
      "MS attach this deadline to every async request (default: none)" );
    ("--out", Arg.Set_string out_path, "FILE merge results into this JSON file (default BENCH_results.json)");
    ("--key", Arg.Set_string out_key, "NAME top-level key to merge under (default loadgen)");
    ( "--label",
      Arg.Set_string out_label,
      "NAME nest the result under KEY.LABEL instead of KEY (per-transport comparisons)" );
    ( "--expect-digest",
      Arg.Set_string expect_digest,
      "HEX require every flow response's digest to equal HEX (bit-identity check)" );
    ( "--chaos-kill",
      Arg.Set_int chaos_kill,
      "K after K responses, SIGKILL the busiest worker from the shm segment (needs --shm)" );
    ("--shm", Arg.Set_string shm_path, "PATH supervisor shm segment (for --chaos-kill and restart counts)");
  ]

(* deterministic mixed workloads.  "default": mostly flow, plus sweep
   and cheap status probes.  "light": status-heavy with 1-in-5 flows —
   high request counts without hours of flow compute; note that a
   supervisor answers status inline, so only the flows exercise the
   worker tier. *)
let request_body k =
  if !mix = "light" then
    if k mod 5 = 0 then [ ("op", Json.String "flow"); ("bench", Json.String !bench_name) ]
    else [ ("op", Json.String "status") ]
  else
    match k mod 4 with
    | 0 | 1 -> [ ("op", Json.String "flow"); ("bench", Json.String !bench_name) ]
    | 2 ->
        [
          ("op", Json.String "sweep");
          ("bench", Json.String !bench_name);
          ("grids", Json.List [ Json.Int 2; Json.Int 3 ]);
        ]
    | _ -> [ ("op", Json.String "status") ]

let is_flow k = if !mix = "light" then k mod 5 = 0 else k mod 4 < 2
let is_async k = if !mix = "light" then k mod 5 = 0 else k mod 4 <> 3

(* ---- chaos: SIGKILL the busiest worker once the batch is rolling ---- *)

let responses_seen = Atomic.make 0
let chaos_killed_pid = Atomic.make 0

let chaos_thread () =
  let module Shm = Rc_serve.Shm in
  match Shm.attach ~path:!shm_path () with
  | Error e ->
      Printf.eprintf "[loadgen] chaos: cannot attach %s: %s\n%!" !shm_path e;
      exit 2
  | Ok shm ->
      (* wait for the trigger count, then for a worker with work *)
      while Atomic.get responses_seen < !chaos_kill do
        Thread.delay 0.002
      done;
      let victim = ref 0 in
      while !victim = 0 do
        let rows = Shm.read_all shm in
        let busiest = ref (-1, 0) in
        Array.iter
          (fun (r : Shm.row) ->
            let c = r.Shm.control in
            if c.Shm.c_state = Shm.C_up && c.Shm.c_inflight > fst !busiest then
              busiest := (c.Shm.c_inflight, c.Shm.c_pid))
          rows;
        if fst !busiest >= 1 && snd !busiest > 0 then victim := snd !busiest
        else Thread.delay 0.002
      done;
      Printf.eprintf "[loadgen] chaos: SIGKILL worker pid %d after %d responses\n%!"
        !victim (Atomic.get responses_seen);
      (try Unix.kill !victim Sys.sigkill with Unix.Unix_error _ -> ());
      Atomic.set chaos_killed_pid !victim

let restarts_survived () =
  if !shm_path = "" then None
  else
    let module Shm = Rc_serve.Shm in
    match Shm.attach ~path:!shm_path () with
    | Error _ -> None
    | Ok shm ->
        Some
          (Array.fold_left
             (fun acc (r : Shm.row) -> acc + r.Shm.control.Shm.c_restarts)
             0 (Shm.read_all shm))

type reply = { ok : bool; error : string; latency_s : float }

let server_addr () =
  if !tcp_spec <> "" then (
    let host, port =
      match String.rindex_opt !tcp_spec ':' with
      | Some i ->
          ( String.sub !tcp_spec 0 i,
            String.sub !tcp_spec (i + 1) (String.length !tcp_spec - i - 1) )
      | None -> ("127.0.0.1", !tcp_spec)
    in
    let host = if host = "" then "127.0.0.1" else host in
    match int_of_string_opt port with
    | None ->
        prerr_endline ("loadgen: bad --tcp spec (want [HOST:]PORT): " ^ !tcp_spec);
        exit 2
    | Some p -> Unix.ADDR_INET (Unix.inet_addr_of_string host, p))
  else Unix.ADDR_UNIX !socket_path

(* ---- the poll-driven connection engine --------------------------------- *)

type cstate =
  | Backoff of float  (* connect refused (backlog burst); retry at this time *)
  | Connecting  (* nonblocking connect in flight; wait for POLLOUT *)
  | Running  (* write the request block / read response lines *)
  | Closed

type conn = {
  cid : int;
  mutable fd : Unix.file_descr;
  mutable st : cstate;
  mutable attempts : int;  (* connect attempts *)
  out : string;  (* every request line of this connection, pre-rendered *)
  marks : (int * int) array;  (* (end offset in [out], id), ascending *)
  mutable next_mark : int;
  mutable written : int;
  sent : (int, float) Hashtbl.t;  (* id -> t0, stamped at write completion *)
  flow_ids : (int, unit) Hashtbl.t;
  expected : int;
  mutable answered : int;
  inbuf : Buffer.t;  (* partial response line *)
  mutable replies : reply list;
}

let make_conn ~cid ~count ~first_id =
  let b = Buffer.create (count * 64) in
  let marks = Array.make count (0, 0) in
  let flow_ids = Hashtbl.create count in
  for i = 0 to count - 1 do
    let id = first_id + i in
    let body = request_body (cid + i) in
    let body =
      if is_async (cid + i) && !deadline_ms > 0.0 then
        body @ [ ("deadline_ms", Json.Float !deadline_ms) ]
      else body
    in
    if is_flow (cid + i) then Hashtbl.replace flow_ids id ();
    Buffer.add_string b (Json.to_line (Json.Obj (("id", Json.Int id) :: body)));
    Buffer.add_char b '\n';
    marks.(i) <- (Buffer.length b, id)
  done;
  {
    cid;
    fd = Unix.stdin;
    st = Backoff 0.0;
    attempts = 0;
    out = Buffer.contents b;
    marks;
    next_mark = 0;
    written = 0;
    sent = Hashtbl.create count;
    flow_ids;
    expected = count;
    answered = 0;
    inbuf = Buffer.create 256;
    replies = [];
  }

let max_connect_attempts = 10_000

let start_connect c =
  let addr = server_addr () in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  c.fd <- fd;
  c.attempts <- c.attempts + 1;
  match Unix.connect fd addr with
  | () -> c.st <- Running
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
      c.st <- Connecting
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EAGAIN | Unix.ECONNRESET), _, _)
    when c.attempts < max_connect_attempts ->
      (* a connect burst can momentarily overflow the listen backlog;
         back off briefly and retry *)
      (try Unix.close fd with Unix.Unix_error _ -> ());
      c.st <- Backoff (Timer.now_s () +. 0.005)
  | exception Unix.Unix_error (e, _, _) ->
      failwith
        (Printf.sprintf "connection %d: connect failed: %s" c.cid (Unix.error_message e))

let close_conn c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  c.st <- Closed

let handle_response c line now =
  if line <> "" then
    match Json.of_string line with
    | Error e -> failwith ("unparseable response: " ^ e)
    | Ok j -> (
        match Option.bind (Json.member "id" j) Json.to_int_opt with
        | None -> failwith ("response without id: " ^ line)
        | Some id -> (
            match Hashtbl.find_opt c.sent id with
            | None -> failwith (Printf.sprintf "unexpected response id %d" id)
            | Some t0 ->
                Hashtbl.remove c.sent id;
                c.answered <- c.answered + 1;
                Atomic.incr responses_seen;
                let ok =
                  match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false
                in
                let ok, error =
                  if not ok then
                    ( false,
                      Option.value
                        (Option.bind (Json.member "error" j) Json.to_string_opt)
                        ~default:"?" )
                  else if !expect_digest <> "" && Hashtbl.mem c.flow_ids id then
                    let digest =
                      Option.bind (Json.member "result" j) (Json.member "digest")
                      |> Fun.flip Option.bind Json.to_string_opt
                    in
                    match digest with
                    | Some d when d = !expect_digest -> (true, "")
                    | Some d ->
                        (false, Printf.sprintf "digest mismatch: got %s want %s" d !expect_digest)
                    | None -> (false, "flow response without result.digest")
                  else (true, "")
                in
                c.replies <- { ok; error; latency_s = now -. t0 } :: c.replies))

let chunk = Bytes.create 65536

let do_read c =
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 ->
      if c.answered < c.expected then
        failwith
          (Printf.sprintf "connection %d: server closed with %d responses outstanding"
             c.cid (c.expected - c.answered))
      else close_conn c
  | n ->
      let now = Timer.now_s () in
      for i = 0 to n - 1 do
        let ch = Bytes.get chunk i in
        if ch = '\n' then (
          handle_response c (String.trim (Buffer.contents c.inbuf)) now;
          Buffer.clear c.inbuf)
        else Buffer.add_char c.inbuf ch
      done;
      if c.answered >= c.expected then close_conn c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

(* flush as much of the request block as the socket accepts; each
   request's t0 is stamped when its last byte enters the kernel *)
let do_write c =
  let len = String.length c.out in
  let rec go () =
    if c.written < len then
      match Unix.write_substring c.fd c.out c.written (min 65536 (len - c.written)) with
      | n ->
          let now = Timer.now_s () in
          c.written <- c.written + n;
          while
            c.next_mark < Array.length c.marks && fst c.marks.(c.next_mark) <= c.written
          do
            Hashtbl.replace c.sent (snd c.marks.(c.next_mark)) now;
            c.next_mark <- c.next_mark + 1
          done;
          if n > 0 then go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
  in
  go ()

let run_engine conns =
  let ev = Evloop.create (Array.length conns) in
  let regs = Array.make (Array.length conns) conns.(0) in
  let live () = Array.exists (fun c -> c.st <> Closed) conns in
  while live () do
    let now = Timer.now_s () in
    Array.iter
      (fun c -> match c.st with Backoff t when now >= t -> start_connect c | _ -> ())
      conns;
    Evloop.begin_round ev;
    let nreg = ref 0 in
    Array.iter
      (fun c ->
        let events =
          match c.st with
          | Connecting -> Evloop.pollout
          | Running ->
              Evloop.pollin
              lor (if c.written < String.length c.out then Evloop.pollout else 0)
          | Backoff _ | Closed -> 0
        in
        if events <> 0 then (
          let i = Evloop.add ev c.fd ~events in
          regs.(i) <- c;
          incr nreg))
      conns;
    if !nreg = 0 then Thread.delay 0.002
    else if Evloop.wait ev ~timeout_ms:100 > 0 then
      for i = 0 to !nreg - 1 do
        let c = regs.(i) in
        let r = Evloop.revents ev i in
        match c.st with
        | Connecting ->
            if r land (Evloop.pollout lor Evloop.pollerr) <> 0 then (
              match Unix.getsockopt_error c.fd with
              | None ->
                  c.st <- Running;
                  do_write c
              | Some (Unix.ECONNREFUSED | Unix.EAGAIN | Unix.ECONNRESET)
                when c.attempts < max_connect_attempts ->
                  (try Unix.close c.fd with Unix.Unix_error _ -> ());
                  c.st <- Backoff (Timer.now_s () +. 0.005)
              | Some e ->
                  failwith
                    (Printf.sprintf "connection %d: connect failed: %s" c.cid
                       (Unix.error_message e)))
        | Running ->
            if r land Evloop.pollout <> 0 then do_write c;
            if c.st = Running && r land (Evloop.pollin lor Evloop.pollerr) <> 0 then
              do_read c
        | Backoff _ | Closed -> ()
      done
  done;
  Array.to_list conns |> List.concat_map (fun c -> c.replies)

(* ---- reporting --------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

(* merge under --key, or KEY.LABEL with --label (other labels kept) *)
let merge_results doc =
  let existing =
    if Sys.file_exists !out_path then
      let ic = open_in_bin !out_path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Json.of_string s with Ok (Json.Obj fields) -> fields | _ -> []
    else []
  in
  let doc =
    if !out_label = "" then doc
    else
      let prior =
        match List.assoc_opt !out_key existing with
        | Some (Json.Obj fields) -> List.remove_assoc !out_label fields
        | _ -> []
      in
      Json.Obj (prior @ [ (!out_label, doc) ])
  in
  let fields = List.remove_assoc !out_key existing @ [ (!out_key, doc) ] in
  Json.to_file !out_path (Json.Obj fields)

let () =
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "loadgen.exe (--socket PATH | --tcp HOST:PORT) [--conns N] [--requests TOTAL]";
  if !socket_path = "" && !tcp_spec = "" then (
    prerr_endline "loadgen: --socket or --tcp is required";
    exit 2);
  if !chaos_kill > 0 && !shm_path = "" then (
    prerr_endline "loadgen: --chaos-kill needs --shm PATH";
    exit 2);
  if !chaos_kill > 0 then ignore (Thread.create chaos_thread ());
  let conns = max 1 !n_conns and total = max 1 !n_requests in
  (* split TOTAL across connections, remainder to the first ones *)
  let share c = (total / conns) + if c < total mod conns then 1 else 0 in
  let t0 = Timer.now_s () in
  let cs =
    Array.init conns (fun c ->
        make_conn ~cid:c ~count:(share c) ~first_id:((c * total) + 1))
  in
  let replies = run_engine cs in
  let wall_s = Timer.now_s () -. t0 in
  let n_ok = List.length (List.filter (fun r -> r.ok) replies) in
  let n_err = List.length replies - n_ok in
  List.iter
    (fun r -> if not r.ok then Printf.eprintf "[loadgen] error response: %s\n" r.error)
    replies;
  let lats =
    List.map (fun r -> r.latency_s) (List.filter (fun r -> r.ok) replies)
    |> Array.of_list
  in
  Array.sort compare lats;
  let pcts = [ (0.50, "p50"); (0.90, "p90"); (0.95, "p95"); (0.99, "p99") ] in
  let lat_fields =
    List.map (fun (p, name) -> (name ^ "_s", Json.Float (percentile lats p))) pcts
    @ [ ("max_s", Json.Float (if Array.length lats = 0 then nan else lats.(Array.length lats - 1))) ]
  in
  Printf.printf "[loadgen] %d requests over %d connections: %d ok, %d errors, %.2f s wall\n"
    (List.length replies) conns n_ok n_err wall_s;
  List.iter
    (function name, Json.Float v -> Printf.printf "[loadgen]   %-6s %8.4f s\n" name v | _ -> ())
    lat_fields;
  Printf.printf "[loadgen] throughput %.2f req/s\n"
    (float_of_int (List.length replies) /. Float.max wall_s 1e-9);
  (* chaos verdict: every request still answered (checked above), and the
     kill must actually have landed for the drill to count *)
  let chaos_ok =
    if !chaos_kill = 0 then true
    else begin
      (* the kill races with batch completion; give it a moment to land *)
      let deadline = Timer.now_s () +. 2.0 in
      while Atomic.get chaos_killed_pid = 0 && Timer.now_s () < deadline do
        Thread.delay 0.01
      done;
      let pid = Atomic.get chaos_killed_pid in
      if pid = 0 then
        Printf.eprintf "[loadgen] chaos: batch finished before any worker could be killed\n";
      pid <> 0
    end
  in
  let restart_fields =
    match restarts_survived () with
    | None -> []
    | Some n ->
        Printf.printf "[loadgen] restarts survived: %d\n" n;
        [ ("restarts_survived", Json.Int n) ]
  in
  let chaos_fields =
    if !chaos_kill = 0 then []
    else
      [
        ( "chaos",
          Json.Obj
            [
              ("trigger_responses", Json.Int !chaos_kill);
              ("killed_pid", Json.Int (Atomic.get chaos_killed_pid));
            ] );
      ]
  in
  let doc =
    Json.Obj
      ([
         ("connections", Json.Int conns);
         ("requests", Json.Int (List.length replies));
         ("ok", Json.Int n_ok);
         ("errors", Json.Int n_err);
         ("wall_s", Json.Float wall_s);
         ("throughput_per_s", Json.Float (float_of_int (List.length replies) /. Float.max wall_s 1e-9));
         ("latency", Json.Obj lat_fields);
       ]
      @ restart_fields @ chaos_fields)
  in
  merge_results doc;
  Printf.printf "[loadgen] merged into %s (key %s%s)\n" !out_path !out_key
    (if !out_label = "" then "" else "." ^ !out_label);
  if n_err > 0 || List.length replies <> total || not chaos_ok then exit 1

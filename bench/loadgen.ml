(* Concurrent load generator for `rotary_cli serve`.

   Opens N client connections to a running server's Unix-domain socket,
   pipelines a deterministic mix of requests (flow / sweep / status /
   checkpoint-inspect) across them, and measures client-side latency
   per request: send instant to response instant on the monotonic
   clock.  Results — ok/error counts, latency percentiles, throughput —
   are printed and merged under the "loadgen" key of
   BENCH_results.json (schema: DESIGN.md "Bench results file"), read
   and rewritten with Rc_util.Json.

   Usage:
     loadgen.exe --socket PATH [-n CONNS] [--requests TOTAL]
                 [--deadline-ms MS] [--out FILE.json]

   The request mix is a fixed rotation, so a given (--requests, -n)
   pair always issues the same workload — comparable across runs. *)

module Json = Rc_util.Json
module Timer = Rc_util.Timer

let socket_path = ref ""
let n_conns = ref 4
let n_requests = ref 16
let deadline_ms = ref 0.0 (* 0 = no deadline field *)
let out_path = ref "BENCH_results.json"

let args =
  [
    ("--socket", Arg.Set_string socket_path, "PATH server Unix-domain socket (required)");
    ("-n", Arg.Set_int n_conns, "N concurrent client connections (default 4)");
    ("--requests", Arg.Set_int n_requests, "N total requests across all connections (default 16)");
    ( "--deadline-ms",
      Arg.Set_float deadline_ms,
      "MS attach this deadline to every async request (default: none)" );
    ("--out", Arg.Set_string out_path, "FILE merge results into this JSON file (default BENCH_results.json)");
  ]

(* deterministic mixed workload: mostly flow, plus sweep and cheap
   status probes interleaved *)
let request_body k =
  match k mod 4 with
  | 0 | 1 -> [ ("op", Json.String "flow"); ("bench", Json.String "tiny") ]
  | 2 ->
      [
        ("op", Json.String "sweep");
        ("bench", Json.String "tiny");
        ("grids", Json.List [ Json.Int 2; Json.Int 3 ]);
      ]
  | _ -> [ ("op", Json.String "status") ]

let is_async k = k mod 4 <> 3

type reply = { ok : bool; error : string; latency_s : float }

(* one connection: pipeline our requests, then collect until every id
   has answered (responses arrive in completion order) *)
let run_connection ~conn ~count ~first_id =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX !socket_path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sent = Hashtbl.create count in
  for i = 0 to count - 1 do
    let id = first_id + i in
    let body = request_body (conn + i) in
    let body =
      if is_async (conn + i) && !deadline_ms > 0.0 then
        body @ [ ("deadline_ms", Json.Float !deadline_ms) ]
      else body
    in
    let line = Json.to_line (Json.Obj (("id", Json.Int id) :: body)) in
    Hashtbl.replace sent id (Timer.now_s ());
    output_string oc line;
    output_char oc '\n'
  done;
  flush oc;
  let replies = ref [] in
  (try
     while Hashtbl.length sent > 0 do
       let line = input_line ic in
       let now = Timer.now_s () in
       match Json.of_string line with
       | Error e -> failwith ("unparseable response: " ^ e)
       | Ok j -> (
           match Option.bind (Json.member "id" j) Json.to_int_opt with
           | None -> failwith ("response without id: " ^ line)
           | Some id -> (
               match Hashtbl.find_opt sent id with
               | None -> failwith (Printf.sprintf "unexpected response id %d" id)
               | Some t0 ->
                   Hashtbl.remove sent id;
                   let ok =
                     match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false
                   in
                   let error =
                     if ok then ""
                     else
                       Option.value
                         (Option.bind (Json.member "error" j) Json.to_string_opt)
                         ~default:"?"
                   in
                   replies := { ok; error; latency_s = now -. t0 } :: !replies))
     done
   with End_of_file ->
     failwith
       (Printf.sprintf "connection %d: server closed with %d responses outstanding" conn
          (Hashtbl.length sent)));
  close_out_noerr oc;
  close_in_noerr ic;
  !replies

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let merge_results loadgen_doc =
  let existing =
    if Sys.file_exists !out_path then
      let ic = open_in_bin !out_path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      match Json.of_string s with Ok (Json.Obj fields) -> fields | _ -> []
    else []
  in
  let fields = List.remove_assoc "loadgen" existing @ [ ("loadgen", loadgen_doc) ] in
  Json.to_file !out_path (Json.Obj fields)

let () =
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "loadgen.exe --socket PATH [-n CONNS] [--requests TOTAL]";
  if !socket_path = "" then (
    prerr_endline "loadgen: --socket is required";
    exit 2);
  let conns = max 1 !n_conns and total = max 1 !n_requests in
  (* split TOTAL across connections, remainder to the first ones *)
  let share c = (total / conns) + if c < total mod conns then 1 else 0 in
  let t0 = Timer.now_s () in
  let results = Array.make conns [] in
  let threads =
    List.init conns (fun c ->
        Thread.create
          (fun () ->
            let first_id = (c * total) + 1 in
            results.(c) <- run_connection ~conn:c ~count:(share c) ~first_id)
          ())
  in
  List.iter Thread.join threads;
  let wall_s = Timer.now_s () -. t0 in
  let replies = Array.to_list results |> List.concat in
  let n_ok = List.length (List.filter (fun r -> r.ok) replies) in
  let n_err = List.length replies - n_ok in
  List.iter
    (fun r -> if not r.ok then Printf.eprintf "[loadgen] error response: %s\n" r.error)
    replies;
  let lats =
    List.map (fun r -> r.latency_s) (List.filter (fun r -> r.ok) replies)
    |> Array.of_list
  in
  Array.sort compare lats;
  let pcts = [ (0.50, "p50"); (0.90, "p90"); (0.95, "p95"); (0.99, "p99") ] in
  let lat_fields =
    List.map (fun (p, name) -> (name ^ "_s", Json.Float (percentile lats p))) pcts
    @ [ ("max_s", Json.Float (if Array.length lats = 0 then nan else lats.(Array.length lats - 1))) ]
  in
  Printf.printf "[loadgen] %d requests over %d connections: %d ok, %d errors, %.2f s wall\n"
    (List.length replies) conns n_ok n_err wall_s;
  List.iter
    (function name, Json.Float v -> Printf.printf "[loadgen]   %-6s %8.4f s\n" name v | _ -> ())
    lat_fields;
  Printf.printf "[loadgen] throughput %.2f req/s\n"
    (float_of_int (List.length replies) /. Float.max wall_s 1e-9);
  let doc =
    Json.Obj
      [
        ("connections", Json.Int conns);
        ("requests", Json.Int (List.length replies));
        ("ok", Json.Int n_ok);
        ("errors", Json.Int n_err);
        ("wall_s", Json.Float wall_s);
        ("throughput_per_s", Json.Float (float_of_int (List.length replies) /. Float.max wall_s 1e-9));
        ("latency", Json.Obj lat_fields);
      ]
  in
  merge_results doc;
  Printf.printf "[loadgen] merged into %s\n" !out_path;
  if n_err > 0 || List.length replies <> total then exit 1

#!/usr/bin/env bash
# Serve-layer smoke: start the server, fire a mixed concurrent batch,
# kill it -9 mid-flow, resume from an on-disk checkpoint with a fresh
# server, and assert the resumed result is bit-identical to an
# uninterrupted run.  Exercises, end to end: the NDJSON protocol, the
# scheduler, checkpoint save/load/resume, crash robustness (atomic
# checkpoint writes), and graceful SIGTERM drain.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-_build/default/bin/rotary_cli.exe}
LOADGEN=${LOADGEN:-_build/default/bench/loadgen.exe}
DIR=$(mktemp -d)
SOCK="$DIR/serve.sock"
CKDIR="$DIR/ck"
trap 'kill -9 $SERVER_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

# one-request NDJSON client: send a line, print the response line
request() {
  python3 - "$SOCK" "$1" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall((sys.argv[2] + "\n").encode())
f = s.makefile("r")
print(f.readline().strip())
EOF
}

digest_of() {
  python3 -c 'import json,sys; r = json.loads(sys.argv[1]); assert r["ok"], r; print(r["result"]["digest"])' "$1"
}

echo "== reference: uninterrupted run via the CLI"
REF=$("$BIN" flow -b tiny --digest | sed -n 's/^digest: //p')
echo "   digest $REF"

echo "== server A up"
"$BIN" serve --socket "$SOCK" --workers 2 &
SERVER_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "server socket never appeared"; exit 1; }

echo "== mixed concurrent batch (loadgen fails on any dropped response)"
"$LOADGEN" --socket "$SOCK" -n 4 --requests 12 --out "$DIR/BENCH_loadgen.json"

echo "== checkpointed flow through the server"
RESP=$(request "{\"id\":1,\"op\":\"flow\",\"bench\":\"tiny\",\"checkpoint_every\":1,\"checkpoint_dir\":\"$CKDIR\"}")
D0=$(digest_of "$RESP")
[ "$D0" = "$REF" ] || { echo "server flow digest $D0 != CLI digest $REF"; exit 1; }
CKPT="$CKDIR/tiny-netflow.iter-1.ckpt"
[ -f "$CKPT" ] || { echo "expected checkpoint $CKPT missing"; exit 1; }

echo "== kill -9 mid-flow"
# start a flow and kill the server while it runs; the checkpoints
# already on disk must be unharmed (atomic writes)
python3 - "$SOCK" <<'EOF' &
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall(b'{"id":2,"op":"flow","bench":"tiny"}\n')
try:
    s.makefile("r").readline()
except OSError:
    pass
EOF
sleep 0.3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "== server B resumes from the mid-flow checkpoint"
"$BIN" serve --socket "$SOCK" --workers 2 &
SERVER_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
RESP=$(request "{\"id\":3,\"op\":\"flow\",\"resume_from\":\"$CKPT\"}")
D1=$(digest_of "$RESP")
[ "$D1" = "$REF" ] || { echo "resumed digest $D1 != uninterrupted digest $REF"; exit 1; }
echo "   resumed bit-identically: $D1"

echo "== graceful SIGTERM drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
[ ! -S "$SOCK" ] || { echo "socket not removed on drain"; exit 1; }

echo "serve smoke: OK (digest $REF reproduced across server crash + resume)"

#!/usr/bin/env bash
# Serve-layer smoke: start the server, fire a mixed concurrent batch,
# kill it -9 mid-flow, resume from an on-disk checkpoint with a fresh
# server, and assert the resumed result is bit-identical to an
# uninterrupted run.  Exercises, end to end: the NDJSON protocol, the
# scheduler, checkpoint save/load/resume, crash robustness (atomic
# checkpoint writes), and graceful SIGTERM drain.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-_build/default/bin/rotary_cli.exe}
LOADGEN=${LOADGEN:-_build/default/bench/loadgen.exe}
DIR=$(mktemp -d)
SOCK="$DIR/serve.sock"
CKDIR="$DIR/ck"
trap 'kill -9 $SERVER_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

# one-request NDJSON client: send a line, print the response line
request_on() {
  python3 - "$1" "$2" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall((sys.argv[2] + "\n").encode())
f = s.makefile("r")
print(f.readline().strip())
EOF
}

request() { request_on "$SOCK" "$1"; }

digest_of() {
  python3 -c 'import json,sys; r = json.loads(sys.argv[1]); assert r["ok"], r; print(r["result"]["digest"])' "$1"
}

echo "== reference: uninterrupted run via the CLI"
REF=$("$BIN" flow -b tiny --digest | sed -n 's/^digest: //p')
echo "   digest $REF"

echo "== server A up"
"$BIN" serve --socket "$SOCK" --workers 2 &
SERVER_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "server socket never appeared"; exit 1; }

echo "== mixed concurrent batch (loadgen fails on any dropped response)"
"$LOADGEN" --socket "$SOCK" -n 4 --requests 12 --out "$DIR/BENCH_loadgen.json"

echo "== checkpointed flow through the server"
RESP=$(request "{\"id\":1,\"op\":\"flow\",\"bench\":\"tiny\",\"checkpoint_every\":1,\"checkpoint_dir\":\"$CKDIR\"}")
D0=$(digest_of "$RESP")
[ "$D0" = "$REF" ] || { echo "server flow digest $D0 != CLI digest $REF"; exit 1; }
CKPT="$CKDIR/tiny-netflow.iter-1.ckpt"
[ -f "$CKPT" ] || { echo "expected checkpoint $CKPT missing"; exit 1; }

echo "== kill -9 mid-flow"
# start a flow and kill the server while it runs; the checkpoints
# already on disk must be unharmed (atomic writes)
python3 - "$SOCK" <<'EOF' &
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall(b'{"id":2,"op":"flow","bench":"tiny"}\n')
try:
    s.makefile("r").readline()
except OSError:
    pass
EOF
sleep 0.3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "== server B resumes from the mid-flow checkpoint"
"$BIN" serve --socket "$SOCK" --workers 2 &
SERVER_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
RESP=$(request "{\"id\":3,\"op\":\"flow\",\"resume_from\":\"$CKPT\"}")
D1=$(digest_of "$RESP")
[ "$D1" = "$REF" ] || { echo "resumed digest $D1 != uninterrupted digest $REF"; exit 1; }
echo "   resumed bit-identically: $D1"

echo "== graceful SIGTERM drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
[ ! -S "$SOCK" ] || { echo "socket not removed on drain"; exit 1; }

# ---------------------------------------------------------------------------
# Supervisor tier: prefork workers behind a TCP front door, chaos drill,
# live shm counters via `top`, rolling restart under load.
# ---------------------------------------------------------------------------

SUPSOCK="$DIR/sup.sock"
SHM="$SUPSOCK.shm"

echo "== supervisor up (2 worker processes, TCP front door)"
"$BIN" serve --socket "$SUPSOCK" --workers-proc 2 --tcp 127.0.0.1:0 --drain-restart &
SERVER_PID=$!
for _ in $(seq 100); do [ -S "$SUPSOCK" ] && [ -f "$SHM" ] && break; sleep 0.1; done
[ -S "$SUPSOCK" ] || { echo "supervisor socket never appeared"; exit 1; }

# the supervisor publishes its ephemeral TCP port in the shm header
PORT=$("$BIN" top --shm "$SHM" --once --json \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["tcp_port"])')
echo "   tcp port $PORT"

echo "== chaos drill: 600-request TCP batch, kill -9 one worker mid-batch"
# light mix = 1-in-5 flows; every flow response's digest must equal the
# uninterrupted reference, including the flows resumed after the kill
"$LOADGEN" --tcp "127.0.0.1:$PORT" -n 32 --requests 600 --mix light --bench tiny \
  --chaos-kill 50 --shm "$SHM" --expect-digest "$REF" \
  --key service --out BENCH_results.json

echo "== top reads live per-worker counters from shm"
TOP=$("$BIN" top --shm "$SHM" --once --json)
python3 - "$TOP" <<'EOF'
import json, sys
doc = json.loads(sys.argv[1])
assert doc["layout_version"] == 1, doc
workers = doc["workers"]
assert len(workers) == 2, workers
for w in workers:
    assert w["consistent"], w
    assert w["pid"] > 0, w
    assert w["control"]["state"] == "up", w
# the chaos kill above must be visible as a completed respawn
assert sum(w["control"]["restarts"] for w in workers) >= 1, workers
# the batch's flows ran on the workers
assert sum(w["jobs"]["completed"] for w in workers) > 0, workers
print("   top: %d workers up, %d restarts, %d jobs completed"
      % (len(workers),
         sum(w["control"]["restarts"] for w in workers),
         sum(w["jobs"]["completed"] for w in workers)))
EOF

echo "== rolling restart under load (zero dropped requests)"
"$LOADGEN" --socket "$SUPSOCK" -n 4 --requests 20 --mix light --bench tiny \
  --expect-digest "$REF" --key service_roll --out "$DIR/BENCH_roll.json" &
LOADGEN_PID=$!
sleep 0.2
ROLL=$(request_on "$SUPSOCK" '{"id":9,"op":"restart"}')
python3 -c 'import json,sys; r = json.loads(sys.argv[1]); assert r["ok"], r' "$ROLL"
wait "$LOADGEN_PID"

echo "== supervisor status aggregates the worker tier"
STATUS=$(request_on "$SUPSOCK" '{"id":10,"op":"status"}')
python3 - "$STATUS" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"], r
sup = r["result"]["supervisor"]
assert sup["workers"] == 2, sup
assert len(sup["per_worker"]) == 2, sup
print("   status: supervisor pid %d, %d workers" % (sup["pid"], sup["workers"]))
EOF

echo "== graceful supervisor shutdown"
SHUT=$(request_on "$SUPSOCK" '{"id":11,"op":"shutdown"}')
python3 -c 'import json,sys; r = json.loads(sys.argv[1]); assert r["ok"], r' "$SHUT"
wait "$SERVER_PID"
[ ! -S "$SUPSOCK" ] || { echo "supervisor socket not removed on drain"; exit 1; }
[ ! -f "$SHM" ] || { echo "shm segment not removed on drain"; exit 1; }

echo "serve smoke: OK (digest $REF reproduced across server crash, worker kill -9, and rolling restart)"

#!/usr/bin/env bash
# Serve-layer smoke: start the server, fire a mixed concurrent batch,
# kill it -9 mid-flow, resume from an on-disk checkpoint with a fresh
# server, and assert the resumed result is bit-identical to an
# uninterrupted run.  Exercises, end to end: the NDJSON protocol, the
# scheduler, checkpoint save/load/resume, crash robustness (atomic
# checkpoint writes), and graceful SIGTERM drain.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-_build/default/bin/rotary_cli.exe}
LOADGEN=${LOADGEN:-_build/default/bench/loadgen.exe}
DIR=$(mktemp -d)
SOCK="$DIR/serve.sock"
CKDIR="$DIR/ck"
trap 'kill -9 $SERVER_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

# one-request NDJSON client: send a line, print the response line
request_on() {
  python3 - "$1" "$2" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall((sys.argv[2] + "\n").encode())
f = s.makefile("r")
print(f.readline().strip())
EOF
}

request() { request_on "$SOCK" "$1"; }

digest_of() {
  python3 -c 'import json,sys; r = json.loads(sys.argv[1]); assert r["ok"], r; print(r["result"]["digest"])' "$1"
}

echo "== reference: uninterrupted run via the CLI"
REF=$("$BIN" flow -b tiny --digest | sed -n 's/^digest: //p')
echo "   digest $REF"

echo "== server A up"
"$BIN" serve --socket "$SOCK" --workers 2 &
SERVER_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "server socket never appeared"; exit 1; }

echo "== mixed concurrent batch (loadgen fails on any dropped response)"
"$LOADGEN" --socket "$SOCK" -n 4 --requests 12 --out "$DIR/BENCH_loadgen.json"

echo "== checkpointed flow through the server"
RESP=$(request "{\"id\":1,\"op\":\"flow\",\"bench\":\"tiny\",\"checkpoint_every\":1,\"checkpoint_dir\":\"$CKDIR\"}")
D0=$(digest_of "$RESP")
[ "$D0" = "$REF" ] || { echo "server flow digest $D0 != CLI digest $REF"; exit 1; }
CKPT="$CKDIR/tiny-netflow.iter-1.ckpt"
[ -f "$CKPT" ] || { echo "expected checkpoint $CKPT missing"; exit 1; }

echo "== kill -9 mid-flow"
# start a flow and kill the server while it runs; the checkpoints
# already on disk must be unharmed (atomic writes)
python3 - "$SOCK" <<'EOF' &
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall(b'{"id":2,"op":"flow","bench":"tiny"}\n')
try:
    s.makefile("r").readline()
except OSError:
    pass
EOF
sleep 0.3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "== server B resumes from the mid-flow checkpoint"
"$BIN" serve --socket "$SOCK" --workers 2 &
SERVER_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
RESP=$(request "{\"id\":3,\"op\":\"flow\",\"resume_from\":\"$CKPT\"}")
D1=$(digest_of "$RESP")
[ "$D1" = "$REF" ] || { echo "resumed digest $D1 != uninterrupted digest $REF"; exit 1; }
echo "   resumed bit-identically: $D1"

echo "== graceful SIGTERM drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
[ ! -S "$SOCK" ] || { echo "socket not removed on drain"; exit 1; }

# ---------------------------------------------------------------------------
# Supervisor tier: prefork workers behind a TCP front door, chaos drill,
# live shm counters via `top`, rolling restart under load — once per
# transport (shm rings and the ndjson fallback), then a light-mix
# throughput comparison with a minimum shm/ndjson ratio gate.
# ---------------------------------------------------------------------------

supervisor_drill() {
  local T=$1
  local SUPSOCK="$DIR/sup-$T.sock"
  local SHM="$SUPSOCK.shm"

  echo "== [$T] supervisor up (2 worker processes, TCP front door)"
  "$BIN" serve --socket "$SUPSOCK" --workers-proc 2 --tcp 127.0.0.1:0 \
    --drain-restart --transport "$T" --pin-cores &
  SERVER_PID=$!
  for _ in $(seq 100); do [ -S "$SUPSOCK" ] && [ -f "$SHM" ] && break; sleep 0.1; done
  [ -S "$SUPSOCK" ] || { echo "supervisor socket never appeared"; exit 1; }

  # the supervisor publishes its ephemeral TCP port in the shm header
  PORT=$("$BIN" top --shm "$SHM" --once --json \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["tcp_port"])')
  echo "   tcp port $PORT"

  echo "== [$T] chaos drill: 600-request TCP batch, kill -9 one worker mid-batch"
  # light mix = 1-in-5 flows; every flow response's digest must equal the
  # uninterrupted reference, including the flows resumed after the kill
  "$LOADGEN" --tcp "127.0.0.1:$PORT" --conns 32 --requests 600 --mix light \
    --bench tiny --chaos-kill 50 --shm "$SHM" --expect-digest "$REF" \
    --key service_chaos --label "$T" --out "$DIR/BENCH_chaos.json"

  echo "== [$T] ECO act: flow + edit-session traffic, kill -9 mid-edit-sequence"
  # a background flow batch and held-open edit sessions in flight
  # together; the chaos kill lands while edits stream; afterwards
  # --verify-replay replays every session's exact batches onto fresh
  # sessions and requires the final digests to be bit-identical
  "$LOADGEN" --socket "$SUPSOCK" --conns 2 --requests 6 --mix light --bench tiny \
    --expect-digest "$REF" --key service_eco_bg --label "$T" \
    --out "$DIR/BENCH_eco_bg.json" &
  MIXED_PID=$!
  "$LOADGEN" --socket "$SUPSOCK" --mix eco --bench tiny --sessions 3 --edits 5 \
    --verify-replay --chaos-kill 8 --shm "$SHM" \
    --key service_eco --label "$T" --out "$DIR/BENCH_eco.json"
  wait "$MIXED_PID"
  python3 - "$DIR/BENCH_eco.json" "$T" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
eco = doc["service_eco"][sys.argv[2]]["eco"]
assert eco["errors"] == 0, eco
assert eco["replayed"] == eco["sessions"], eco
assert eco["edit_latency"]["p99_s"] > 0, eco
print("   eco: %d sessions x %d edits, p50 %.4f s p99 %.4f s, replays digest-identical"
      % (eco["sessions"], eco["edits_per_session"],
         eco["edit_latency"]["p50_s"], eco["edit_latency"]["p99_s"]))
EOF
  # the per-worker session-store line (resident/opens/evictions/...) is
  # live in `top`'s text view
  "$BIN" top --shm "$SHM" --once | grep -q "sess" \
    || { echo "top missing session-store line"; exit 1; }

  echo "== [$T] top reads live per-worker counters from shm"
  TOP=$("$BIN" top --shm "$SHM" --once --json)
  python3 - "$TOP" "$T" <<'EOF'
import json, sys
doc = json.loads(sys.argv[1])
transport = sys.argv[2]
assert doc["layout_version"] == 2, doc
assert doc["transport"] == transport, doc
workers = doc["workers"]
assert len(workers) == 2, workers
for w in workers:
    assert w["consistent"], w
    assert w["pid"] > 0, w
    assert w["control"]["state"] == "up", w
    assert w["rings"]["slots"] > 0, w
# the chaos kill above must be visible as a completed respawn
assert sum(w["control"]["restarts"] for w in workers) >= 1, workers
# the batch's flows ran on the workers
assert sum(w["jobs"]["completed"] for w in workers) > 0, workers
if transport == "shm":
    # flows moved through the rings, not the socketpair fallback
    assert sum(w["shm"]["jobs"] for w in workers) > 0, workers
    assert sum(w["shm"]["responses"] for w in workers) > 0, workers
cores = [w["core"] for w in workers]
pinned = sum(1 for c in cores if c is not None)
if pinned == 0:
    print("   top: warning: no worker reports a pinned core (unsupported platform?)")
print("   top: %d workers up, %d restarts, %d jobs completed, cores %s"
      % (len(workers),
         sum(w["control"]["restarts"] for w in workers),
         sum(w["jobs"]["completed"] for w in workers), cores))
EOF

  echo "== [$T] rolling restart under load (zero dropped requests)"
  "$LOADGEN" --socket "$SUPSOCK" --conns 4 --requests 20 --mix light --bench tiny \
    --expect-digest "$REF" --key service_roll --out "$DIR/BENCH_roll.json" &
  LOADGEN_PID=$!
  sleep 0.2
  ROLL=$(request_on "$SUPSOCK" '{"id":9,"op":"restart"}')
  python3 -c 'import json,sys; r = json.loads(sys.argv[1]); assert r["ok"], r' "$ROLL"
  wait "$LOADGEN_PID"

  echo "== [$T] arena leak check: every extent and table entry returned"
  TOP=$("$BIN" top --shm "$SHM" --once --json)
  python3 - "$TOP" <<'EOF'
import json, sys
doc = json.loads(sys.argv[1])
arena = doc["arena"]
for tier in ("payload", "checkpoint"):
    for cls in arena[tier]:
        assert cls["in_use"] == 0, (tier, arena[tier])
assert arena["ckpt_entries"]["used"] == 0, arena
for w in doc["workers"]:
    assert w["rings"]["job_depth"] == 0 and w["rings"]["resp_depth"] == 0, w
print("   arenas leak-free, rings drained")
EOF

  echo "== [$T] supervisor status aggregates the worker tier"
  STATUS=$(request_on "$SUPSOCK" '{"id":10,"op":"status"}')
  python3 - "$STATUS" "$T" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"], r
sup = r["result"]["supervisor"]
assert sup["workers"] == 2, sup
assert sup["transport"] == sys.argv[2], sup
assert len(sup["per_worker"]) == 2, sup
print("   status: supervisor pid %d, %d workers, transport %s"
      % (sup["pid"], sup["workers"], sup["transport"]))
EOF

  echo "== [$T] graceful supervisor shutdown"
  SHUT=$(request_on "$SUPSOCK" '{"id":11,"op":"shutdown"}')
  python3 -c 'import json,sys; r = json.loads(sys.argv[1]); assert r["ok"], r' "$SHUT"
  wait "$SERVER_PID"
  [ ! -S "$SUPSOCK" ] || { echo "supervisor socket not removed on drain"; exit 1; }
  [ ! -f "$SHM" ] || { echo "shm segment not removed on drain"; exit 1; }
}

supervisor_drill shm
supervisor_drill ndjson

# ---------------------------------------------------------------------------
# Throughput comparison: the same light-mix batch against a clean
# supervisor on each transport, merged under BENCH service.<transport>,
# then a minimum shm/ndjson throughput ratio gate (SMOKE_MIN_SHM_RATIO;
# kept modest for CI — the flows' solver time dominates a small batch).
# ---------------------------------------------------------------------------

BENCH_CONNS=${SMOKE_BENCH_CONNS:-64}
BENCH_REQUESTS=${SMOKE_BENCH_REQUESTS:-600}

bench_pass() {
  local T=$1
  local SUPSOCK="$DIR/bench-$T.sock"
  local SHM="$SUPSOCK.shm"
  echo "== [$T] light-mix throughput: $BENCH_REQUESTS requests over $BENCH_CONNS conns"
  "$BIN" serve --socket "$SUPSOCK" --workers-proc 2 --tcp 127.0.0.1:0 \
    --transport "$T" --pin-cores &
  SERVER_PID=$!
  for _ in $(seq 100); do [ -S "$SUPSOCK" ] && [ -f "$SHM" ] && break; sleep 0.1; done
  [ -S "$SUPSOCK" ] || { echo "supervisor socket never appeared"; exit 1; }
  PORT=$("$BIN" top --shm "$SHM" --once --json \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["tcp_port"])')
  "$LOADGEN" --tcp "127.0.0.1:$PORT" --conns "$BENCH_CONNS" --requests "$BENCH_REQUESTS" \
    --mix light --bench tiny --expect-digest "$REF" \
    --key service --label "$T" --out BENCH_results.json
  # edit-latency percentiles for the artifact, merged as service.<T>.eco
  # (schema v7) next to the transport's flow numbers
  "$LOADGEN" --tcp "127.0.0.1:$PORT" --mix eco --bench tiny --sessions 2 --edits 4 \
    --verify-replay --key service --label "$T" --out BENCH_results.json
  SHUT=$(request_on "$SUPSOCK" '{"id":11,"op":"shutdown"}')
  python3 -c 'import json,sys; r = json.loads(sys.argv[1]); assert r["ok"], r' "$SHUT"
  wait "$SERVER_PID"
}

bench_pass shm
bench_pass ndjson

python3 - "${SMOKE_MIN_SHM_RATIO:-0.9}" <<'EOF'
import json, sys
doc = json.load(open("BENCH_results.json"))
svc = doc["service"]
shm, nd = svc["shm"], svc["ndjson"]
ratio = shm["throughput_per_s"] / nd["throughput_per_s"]
print("   shm   : %8.2f req/s, p99 %.4f s" % (shm["throughput_per_s"], shm["latency"]["p99_s"]))
print("   ndjson: %8.2f req/s, p99 %.4f s" % (nd["throughput_per_s"], nd["latency"]["p99_s"]))
print("   shm/ndjson throughput ratio %.3f (gate %s)" % (ratio, sys.argv[1]))
assert ratio >= float(sys.argv[1]), (ratio, sys.argv[1])
EOF

echo "serve smoke: OK (digest $REF reproduced across server crash, worker kill -9 on both transports, rolling restart, and ECO edit sessions)"

(* Command-line driver: run the integrated placement + skew optimization
   flow and regenerate the paper's tables. *)

open Cmdliner
open Rc_core

let bench_conv =
  let parse s =
    match Bench_suite.find s with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown benchmark %s (known: %s)" s
               (String.concat ", " Bench_suite.names)))
  in
  let print fmt b = Format.pp_print_string fmt b.Bench_suite.bname in
  Arg.conv (parse, print)

let benches_arg =
  Arg.(
    value
    & opt_all bench_conv []
    & info [ "b"; "bench" ] ~docv:"NAME" ~doc:"Benchmark circuit (repeatable); default: all five")

let pick_benches = function [] -> Bench_suite.all | l -> l

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Restrict to tiny + s9234 for a fast sanity pass")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel kernels (default: the ROTARY_JOBS environment \
           variable, else the machine's core count, capped at 8). Results are identical for \
           any value; 1 runs fully sequentially.")

let setup_jobs jobs = Option.iter Rc_par.Pool.set_jobs jobs

let effective_benches benches quick =
  if quick then Bench_suite.quick else pick_benches benches

(* --- flow command --- *)

let mode_arg =
  let mode_conv = Arg.enum [ ("netflow", Flow.Netflow); ("ilp", Flow.Ilp) ] in
  Arg.(
    value & opt mode_conv Flow.Netflow
    & info [ "mode" ] ~docv:"MODE" ~doc:"Assignment mode: netflow or ilp")

let run_flow jobs bench mode trace metrics no_incremental checkpoint_every checkpoint_dir
    resume digest =
  setup_jobs jobs;
  if metrics then Rc_obs.Metrics.set_enabled true;
  let cfg = { (Flow.default_config ~mode bench) with Flow.incremental = not no_incremental } in
  let plan = Flow.plan_of_config cfg in
  let o, checkpoints =
    match resume with
    | Some path -> (
        match Rc_serve.Checkpoint.resume ~path () with
        | Ok o -> (o, [])
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 1)
    | None -> (
        match checkpoint_every with
        | None -> (Flow.run ~plan cfg, [])
        | Some every ->
            let name =
              Printf.sprintf "%s-%s" bench.Bench_suite.bname
                (match mode with Flow.Netflow -> "netflow" | Flow.Ilp -> "ilp")
            in
            Rc_serve.Checkpoint.run_with_checkpoints ~every ~dir:checkpoint_dir ~name cfg)
  in
  Printf.printf "circuit %s: %d flip-flops, %d sequential pairs, max slack %.2f ps\n"
    o.Flow.cfg.Flow.bench.Bench_suite.bname
    (Rc_netlist.Netlist.n_ffs o.Flow.netlist)
    o.Flow.n_pairs o.Flow.slack;
  List.iter
    (fun (s : Flow.snapshot) ->
      Printf.printf
        "  iter %d: AFD %8.1f um, tapping %10.0f um, signal %10.0f um, power %7.2f mW\n"
        s.Flow.iteration s.Flow.afd s.Flow.tapping_wl s.Flow.signal_wl s.Flow.total_mw)
    o.Flow.history;
  Printf.printf "CPU: flow %.2f s, placer %.2f s\n" o.Flow.cpu_flow_s o.Flow.cpu_placer_s;
  List.iter
    (fun (k, path) -> Printf.printf "checkpoint: iter %d -> %s\n" k path)
    checkpoints;
  if digest then
    Printf.printf "digest: %s\n" (Rc_serve.Checkpoint.digest_of_outcome o);
  if trace then begin
    print_newline ();
    print_endline "Stage plan:";
    List.iter (fun l -> print_endline ("  " ^ l)) (Flow.describe_plan plan);
    print_newline ();
    print_endline
      (Flow_trace.render
         ~title:(Printf.sprintf "Per-stage trace (%s)" bench.Bench_suite.bname)
         o.Flow.trace);
    print_newline ();
    print_endline (Flow_trace.summary o.Flow.trace)
  end;
  if metrics then begin
    print_newline ();
    print_string
      (Rc_obs.Metrics.render
         ~title:(Printf.sprintf "Solver metrics (%s)" bench.Bench_suite.bname)
         (Rc_obs.Metrics.snapshot ()))
  end

let flow_cmd =
  let bench =
    Arg.(value & opt bench_conv Bench_suite.tiny & info [ "b"; "bench" ] ~docv:"NAME" ~doc:"Circuit")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the stage plan and the structured per-stage trace (wall time and cost delta per stage execution)")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Enable the solver-metrics registry and print the merged totals after the run \
                (CG iterations, simplex pivots, netflow augmentations, Eq. 1 tapping cases, ...)")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:"Disable the cross-iteration incremental caches (dirty-set STA, Eq. 1 tap cache, \
                warm-started assignment); results are bit-identical either way, only slower")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Write a checkpoint every N iteration boundaries (resumable with --resume; \
                resuming finishes bit-identically to the uninterrupted run)")
  in
  let checkpoint_dir =
    Arg.(
      value & opt string "checkpoints"
      & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc:"Directory for checkpoint files")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE.ckpt"
          ~doc:"Resume a checkpointed flow instead of starting fresh ($(b,-b)/$(b,--mode) are \
                ignored; the checkpoint embeds its configuration)")
  in
  let digest =
    Arg.(
      value & flag
      & info [ "digest" ]
          ~doc:"Print the bit-identity digest of the final placement/skews/assignment \
                (equal digests = bit-identical results)")
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Run the six-stage flow on one circuit and print per-iteration metrics")
    Term.(
      const run_flow $ jobs_arg $ bench $ mode_arg $ trace $ metrics $ no_incremental
      $ checkpoint_every $ checkpoint_dir $ resume $ digest)

(* --- tables command --- *)

(* table selectors are validated by cmdliner itself: an unknown TABLE is
   a usage error (listed alternatives, non-zero exit), not a crash *)
let table_conv =
  Arg.enum
    [
      ("1", `T1); ("2", `T2); ("3", `T3); ("4", `T4); ("5", `T5); ("6", `T6); ("7", `T7);
      ("fig2", `Fig2);
    ]

let run_tables jobs tables benches quick bb_seconds =
  setup_jobs jobs;
  let benches = effective_benches benches quick in
  let wanted =
    match tables with [] -> [ `T1; `T2; `T3; `T4; `T5; `T6; `T7; `Fig2 ] | l -> l
  in
  let needs_suite = List.exists (fun t -> List.mem t [ `T3; `T4; `T5; `T6; `T7 ]) wanted in
  let suite =
    if needs_suite then Experiments.run_suite ~benches ~with_ilp:true ~log:true () else []
  in
  List.iter
    (fun t ->
      let text =
        match t with
        | `T1 -> snd (Experiments.table1 ~benches ~bb_seconds ())
        | `T2 -> snd (Experiments.table2 ~benches ())
        | `T3 -> Experiments.table3 suite
        | `T4 -> Experiments.table4 suite
        | `T5 -> Experiments.table5 suite
        | `T6 -> Experiments.table6 suite
        | `T7 -> Experiments.table7 suite
        | `Fig2 -> snd (Experiments.fig2 ())
      in
      print_endline text;
      print_newline ())
    wanted

let tables_cmd =
  let tables =
    Arg.(
      value & pos_all table_conv []
      & info [] ~docv:"TABLE" ~doc:"Tables to produce: 1-7 and/or fig2 (default: all)")
  in
  let bb_seconds =
    Arg.(value & opt float 30.0 & info [ "bb-seconds" ] ~doc:"Branch-and-bound budget for Table I")
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables (I-VII) and the Fig. 2 curve")
    Term.(const run_tables $ jobs_arg $ tables $ benches_arg $ quick_arg $ bb_seconds)

(* --- info command --- *)

let run_info jobs benches quick =
  setup_jobs jobs;
  let benches = effective_benches benches quick in
  print_endline (snd (Experiments.table2 ~benches ()))

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Print benchmark characteristics (Table II)")
    Term.(const run_info $ jobs_arg $ benches_arg $ quick_arg)

(* --- ablation command --- *)

let run_ablation jobs which =
  setup_jobs jobs;
  let text =
    match which with
    | `Pseudo -> Ablation.pseudo_weight_schedule ()
    | `Candidates -> Ablation.candidate_rings ()
    | `Objective -> Ablation.skew_objectives ()
    | `Incremental -> Ablation.incremental_engines ()
    | `Engine -> Ablation.scheduling_engines ()
    | `Complement -> Ablation.complementary_phase ()
    | `All -> Ablation.all ()
  in
  print_endline text

let ablation_cmd =
  (* like table_conv: an unknown WHICH is a cmdliner usage error *)
  let which_conv =
    Arg.enum
      [
        ("pseudo", `Pseudo);
        ("candidates", `Candidates);
        ("objective", `Objective);
        ("incremental", `Incremental);
        ("engine", `Engine);
        ("complement", `Complement);
        ("all", `All);
      ]
  in
  let which =
    Arg.(
      value & pos 0 which_conv `All
      & info [] ~docv:"WHICH"
          ~doc:"pseudo | candidates | objective | incremental | engine | complement | all")
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run the design-choice ablations from DESIGN.md")
    Term.(const run_ablation $ jobs_arg $ which)

(* --- sweep command (future-work: ring count as a variable) --- *)

let run_sweep jobs bench grids =
  setup_jobs jobs;
  let grids = match grids with [] -> [ 2; 3; 4; 5; 6 ] | l -> l in
  print_endline (Ring_sweep.report (Ring_sweep.sweep bench ~grids))

let sweep_cmd =
  let bench =
    Arg.(value & opt bench_conv Bench_suite.tiny & info [ "b"; "bench" ] ~docv:"NAME" ~doc:"Circuit")
  in
  let grids = Arg.(value & pos_all int [] & info [] ~docv:"GRID" ~doc:"Grid sizes to sweep") in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep the rotary ring count (Section IX future work)")
    Term.(const run_sweep $ jobs_arg $ bench $ grids)

(* --- render command --- *)

let run_render jobs bench mode out =
  setup_jobs jobs;
  let cfg = Flow.default_config ~mode bench in
  let o = Flow.run cfg in
  let ffs, _ = Flow.ff_index o.Flow.netlist in
  let taps =
    Array.to_list
      (Array.mapi (fun i c -> (c, o.Flow.assignment.Rc_assign.Assign.taps.(i))) ffs)
  in
  Rc_viz.Layout.write ~path:out
    ~chip:(Rc_core.Bench_suite.chip bench)
    ~netlist:o.Flow.netlist ~positions:o.Flow.positions ~rings:o.Flow.rings ~taps ();
  Printf.printf "wrote %s (%d flip-flops, %d rings, tapping WL %.0f um)\n" out
    (Array.length ffs)
    (Rc_rotary.Ring_array.n_rings o.Flow.rings)
    o.Flow.final.Flow.tapping_wl

let render_cmd =
  let bench =
    Arg.(value & opt bench_conv Bench_suite.tiny & info [ "b"; "bench" ] ~docv:"NAME" ~doc:"Circuit")
  in
  let out =
    Arg.(value & opt string "layout.svg" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"SVG path")
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Run the flow and render the layout (rings, cells, taps) as SVG")
    Term.(const run_render $ jobs_arg $ bench $ mode_arg $ out)

(* --- export command --- *)

let run_export jobs bench out_net out_pl =
  setup_jobs jobs;
  let netlist = Rc_core.Bench_suite.netlist bench in
  let chip = Rc_core.Bench_suite.chip bench in
  Rc_netlist.Serialize.write_file ~path:out_net ~chip netlist;
  Printf.printf "wrote %s (%d cells, %d nets)\n" out_net
    (Rc_netlist.Netlist.n_cells netlist)
    (Rc_netlist.Netlist.n_nets netlist);
  match out_pl with
  | None -> ()
  | Some path ->
      let placed = Rc_place.Qplace.initial netlist ~chip in
      let oc = open_out path in
      output_string oc (Rc_netlist.Serialize.placement_to_string placed.Rc_place.Qplace.positions);
      close_out oc;
      Printf.printf "wrote %s (HPWL %.0f um)\n" path placed.Rc_place.Qplace.hpwl

let export_cmd =
  let bench =
    Arg.(value & opt bench_conv Bench_suite.tiny & info [ "b"; "bench" ] ~docv:"NAME" ~doc:"Circuit")
  in
  let out_net =
    Arg.(value & opt string "circuit.net" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Netlist path")
  in
  let out_pl =
    Arg.(value & opt (some string) None & info [ "placement" ] ~docv:"FILE" ~doc:"Also place and write a .pl file")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a benchmark circuit (and optionally its placement) to disk")
    Term.(const run_export $ jobs_arg $ bench $ out_net $ out_pl)

(* --- import command (.bench) --- *)

let run_import jobs path grid pitch =
  setup_jobs jobs;
  let side = float_of_int grid *. pitch in
  let chip = Rc_geom.Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:side ~ymax:side in
  match Rc_netlist.Bench_format.read_file ~chip path with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  | Ok netlist ->
      Printf.printf "parsed %s: %d cells, %d flip-flops, %d nets\n"
        (Rc_netlist.Netlist.name netlist)
        (Rc_netlist.Netlist.n_cells netlist)
        (Rc_netlist.Netlist.n_ffs netlist)
        (Rc_netlist.Netlist.n_nets netlist);
      let bench =
        {
          Bench_suite.bname = Rc_netlist.Netlist.name netlist;
          ring_grid = grid;
          gen = Bench_suite.Flat { Rc_netlist.Generator.default_config with Rc_netlist.Generator.chip };
        }
      in
      let o = Flow.run_on (Flow.default_config bench) netlist in
      List.iter
        (fun (s : Flow.snapshot) ->
          Printf.printf "  iter %d: AFD %8.1f um, tapping %10.0f um, signal %10.0f um\n"
            s.Flow.iteration s.Flow.afd s.Flow.tapping_wl s.Flow.signal_wl)
        o.Flow.history

let import_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.bench") in
  let grid =
    Arg.(value & opt int 4 & info [ "grid" ] ~docv:"N" ~doc:"Rotary ring array is N x N")
  in
  let pitch =
    Arg.(value & opt float 600.0 & info [ "pitch" ] ~docv:"UM" ~doc:"Ring tile pitch, um")
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Run the flow on an ISCAS89 .bench netlist")
    Term.(const run_import $ jobs_arg $ path $ grid $ pitch)

(* --- report command --- *)

let run_report jobs benches quick out no_timings =
  setup_jobs jobs;
  let benches = effective_benches benches quick in
  let reports = Paper_report.collect ~benches () in
  let doc = Paper_report.build ~timings:(not no_timings) reports in
  let md = Rc_obs.Report.to_markdown doc in
  print_string md;
  let md_path = out ^ ".md" and json_path = out ^ ".json" in
  let oc = open_out md_path in
  output_string oc md;
  close_out oc;
  Rc_util.Json.to_file json_path (Paper_report.json_of doc);
  Printf.eprintf "wrote %s and %s\n" md_path json_path

let report_cmd =
  let out =
    Arg.(
      value & opt string "REPORT"
      & info [ "o"; "output" ] ~docv:"PREFIX"
          ~doc:"Write the Markdown to PREFIX.md and the JSON to PREFIX.json")
  in
  let no_timings =
    Arg.(
      value & flag
      & info [ "no-timings" ]
          ~doc:"Omit wall-clock columns and timer metrics, making the output bit-reproducible \
                across runs and machines")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run the flow per circuit with solver metrics enabled and emit the paper-table report \
          (skew-scheduling slack, tapping WL / ring load, Table-I ILP vs greedy, solver metrics) \
          as Markdown + JSON")
    Term.(const run_report $ jobs_arg $ benches_arg $ quick_arg $ out $ no_timings)

(* --- serve command --- *)

let tcp_conv =
  let parse s =
    let host, port =
      match String.rindex_opt s ':' with
      | None -> ("127.0.0.1", s)
      | Some i ->
          (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    in
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 -> Ok (host, p)
    | _ -> Error (`Msg (Printf.sprintf "invalid TCP spec %S (expected [HOST:]PORT)" s))
  in
  let print fmt (h, p) = Format.fprintf fmt "%s:%d" h p in
  Arg.conv (parse, print)

let run_serve jobs socket stdio workers max_pending workers_proc tcp shm drain_restart
    checkpoint_every checkpoint_dir drain_grace transport ring_slots pin_cores session_dir
    session_capacity =
  if workers_proc > 0 then begin
    if stdio then begin
      Printf.eprintf "error: --stdio and --workers-proc are mutually exclusive\n";
      exit 1
    end;
    Rc_serve.Supervisor.run
      {
        Rc_serve.Supervisor.workers = workers_proc;
        sched_workers = Some workers;
        max_pending = Some max_pending;
        unix_path = Some socket;
        tcp;
        shm_path = Option.value shm ~default:(socket ^ ".shm");
        checkpoint_dir = Option.value checkpoint_dir ~default:(socket ^ ".ckpt");
        checkpoint_every;
        drain_grace_s = drain_grace;
        allow_restart = drain_restart;
        handle_signals = true;
        exe = None;
        transport;
        ring_slots;
        pin_cores;
        session_dir;
        session_capacity;
      }
  end
  else begin
    setup_jobs jobs;
    let session_dir = Some (Option.value session_dir ~default:(socket ^ ".eco")) in
    if stdio then
      Rc_serve.Server.run_stdio ~workers ~max_pending ?session_capacity ?session_dir ()
    else
      Rc_serve.Server.run_unix ~workers ~max_pending ?session_capacity ?session_dir
        ~path:socket ()
  end

let serve_cmd =
  let socket =
    Arg.(
      value & opt string "rotary.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on")
  in
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve requests from stdin / responses to stdout instead of a socket")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing jobs concurrently (per process with \
                $(b,--workers-proc))")
  in
  let max_pending =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Admission bound: reject new jobs once N are queued (per process with \
                $(b,--workers-proc))")
  in
  let workers_proc =
    Arg.(
      value & opt int 0
      & info [ "workers-proc" ] ~docv:"N"
          ~doc:"Supervised multi-process tier: fork N worker processes behind a supervisor \
                that restarts crashed workers and resumes their in-flight flows from \
                checkpoints (docs/operations.md); 0 = classic single process")
  in
  let tcp =
    Arg.(
      value & opt (some tcp_conv) None
      & info [ "tcp" ] ~docv:"[HOST:]PORT"
          ~doc:"Also listen on TCP (supervisor mode); port 0 picks an ephemeral port, \
                published in the shm segment")
  in
  let shm =
    Arg.(
      value & opt (some string) None
      & info [ "shm" ] ~docv:"PATH"
          ~doc:"Shared-memory counter segment for $(b,rotary_cli top) (default: \
                SOCKET.shm)")
  in
  let drain_restart =
    Arg.(
      value & flag
      & info [ "drain-restart" ]
          ~doc:"Accept the restart op (and SIGHUP): rolling drain/checkpoint/respawn of \
                workers one at a time under load")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Supervisor-injected checkpoint cadence (iteration boundaries) for crash \
                recovery of client flows that do not checkpoint themselves")
  in
  let checkpoint_dir =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"Base directory for injected per-request checkpoints (default: SOCKET.ckpt)")
  in
  let drain_grace =
    Arg.(
      value & opt float 30.0
      & info [ "drain-grace" ] ~docv:"SEC"
          ~doc:"Seconds a draining worker gets to finish before SIGKILL (its jobs then \
                resume from checkpoints)")
  in
  let transport =
    let tconv =
      Arg.enum [ ("shm", Rc_serve.Shm.Shm_rings); ("ndjson", Rc_serve.Shm.Ndjson) ]
    in
    Arg.(
      value & opt tconv Rc_serve.Shm.Shm_rings
      & info [ "transport" ] ~docv:"NAME"
          ~doc:"Supervisor-worker job transport: $(b,shm) (zero-copy shared-memory rings + \
                arena, the default) or $(b,ndjson) (classic socketpair lines); see \
                docs/serving.md for the matrix")
  in
  let ring_slots =
    Arg.(
      value & opt int Rc_serve.Shm.default_ring_slots
      & info [ "ring-slots" ] ~docv:"N"
          ~doc:"Per-direction shm ring capacity in descriptors (power of two; raise it \
                before raising worker counts if p99 climbs under bursty load)")
  in
  let pin_cores =
    Arg.(
      value & flag
      & info [ "pin-cores" ]
          ~doc:"Pin worker K to CPU core K mod ncores via sched_setaffinity (warn-noop on \
                unsupported platforms); pinning shows in $(b,rotary_cli top)'s CORE column")
  in
  let session_dir =
    Arg.(
      value & opt (some string) None
      & info [ "session-dir" ] ~docv:"DIR"
          ~doc:"ECO session escrow directory, shared by all workers so sessions survive \
                crashes and eviction (default: SOCKET.eco single-process, \
                CHECKPOINT_DIR/sessions supervised)")
  in
  let session_capacity =
    Arg.(
      value & opt (some int) None
      & info [ "session-capacity" ] ~docv:"N"
          ~doc:"Resident ECO sessions per worker before LRU eviction to escrow (default 8)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve flow/report/sweep/variation requests and held-open ECO edit sessions \
          concurrently over line-delimited JSON (see docs/serving.md for the protocol); \
          SIGTERM drains gracefully. With $(b,--workers-proc) N, run the supervised \
          multi-process tier (docs/operations.md)")
    Term.(
      const run_serve $ jobs_arg $ socket $ stdio $ workers $ max_pending $ workers_proc
      $ tcp $ shm $ drain_restart $ checkpoint_every $ checkpoint_dir $ drain_grace
      $ transport $ ring_slots $ pin_cores $ session_dir $ session_capacity)

(* --- serve-worker command (internal) --- *)

(* the exec'd child of a supervisor: the socketpair is stdin, the shm
   segment re-attaches by path.  Not meant to be invoked by hand. *)
let run_serve_worker shm_path slot restarts workers max_pending transport pin_core
    session_dir session_capacity =
  match Rc_serve.Shm.attach ~path:shm_path () with
  | Error e ->
      Printf.eprintf "serve-worker: %s\n" e;
      exit 1
  | Ok shm ->
      Rc_serve.Worker.run ~workers ~max_pending ~transport ?pin_core ?session_dir
        ?session_capacity ~shm ~slot ~restarts ~fd:Unix.stdin ()

let serve_worker_cmd =
  let shm = Arg.(required & opt (some string) None & info [ "shm" ] ~docv:"PATH") in
  let slot = Arg.(required & opt (some int) None & info [ "slot" ] ~docv:"N") in
  let restarts = Arg.(value & opt int 0 & info [ "restarts" ] ~docv:"N") in
  let workers = Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N") in
  let max_pending = Arg.(value & opt int 64 & info [ "max-pending" ] ~docv:"N") in
  let transport =
    let tconv =
      Arg.enum [ ("ndjson", Rc_serve.Shm.Ndjson); ("shm", Rc_serve.Shm.Shm_rings) ]
    in
    Arg.(value & opt tconv Rc_serve.Shm.Ndjson & info [ "transport" ] ~docv:"NAME")
  in
  let pin_core =
    Arg.(value & opt (some int) None & info [ "pin-core" ] ~docv:"K")
  in
  let session_dir =
    Arg.(value & opt (some string) None & info [ "session-dir" ] ~docv:"DIR")
  in
  let session_capacity =
    Arg.(value & opt (some int) None & info [ "session-capacity" ] ~docv:"N")
  in
  Cmd.v
    (Cmd.info "serve-worker"
       ~doc:
         "Internal: one worker process of a $(b,serve --workers-proc) supervisor \
          (exec'd with the job socketpair as stdin); do not invoke directly")
    Term.(
      const run_serve_worker $ shm $ slot $ restarts $ workers $ max_pending $ transport
      $ pin_core $ session_dir $ session_capacity)

(* --- top command --- *)

let render_top shm =
  let module Shm = Rc_serve.Shm in
  let module Ring = Rc_serve.Ring in
  let module Arena = Rc_serve.Arena in
  let now = Int64.to_int (Rc_util.Timer.now_ns ()) in
  let b = Buffer.create 1024 in
  Printf.bprintf b "rotary top — %s (layout v%d, supervisor pid %d%s)\n" (Shm.path shm)
    Shm.layout_version (Shm.supervisor_pid shm)
    (match Shm.tcp_port shm with
    | Some p -> Printf.sprintf ", tcp :%d" p
    | None -> "");
  let arena_util a =
    Array.fold_left
      (fun (u, t) (s : Arena.stat) -> (u + s.Arena.s_in_use, t + s.Arena.s_count))
      (0, 0) (Arena.stats a)
  in
  let pu, pt = arena_util (Shm.payload_arena shm) in
  let cu, ct = arena_util (Shm.ckpt_arena shm) in
  Printf.bprintf b
    "transport %s, rings %d slots/dir; payload arena %d/%d extents; ckpt arena %d/%d; \
     ckpt table %d/%d\n"
    (Shm.transport_name (Shm.transport shm))
    (Shm.ring_slots shm) pu pt cu ct (Shm.ckpt_used shm) (Shm.ckpt_entries shm);
  Printf.bprintf b
    "%4s %-9s %7s %4s %4s %7s %5s %4s %4s %7s %7s %4s %4s %7s %5s %5s %7s %7s %8s\n" "SLOT"
    "CTL" "PID" "RST" "CORE" "HB_MS" "INFL" "JRQ" "RRQ" "REQ" "RESP" "QD" "RUN" "DONE"
    "FAIL" "FALLB" "REDISP" "RESUME" "WALL_MS";
  Array.iteri
    (fun slot (r : Shm.row) ->
      let w = r.Shm.worker and c = r.Shm.control in
      let hb_ms =
        if w.Shm.heartbeat_ns = 0 then -1 else (now - w.Shm.heartbeat_ns) / 1_000_000
      in
      Printf.bprintf b
        "%4d %-9s %7d %4d %4s %7d %5d %4d %4d %7d %7d %4d %4d %7d %5d %5d %7d %7d %8d%s\n"
        slot
        (Shm.control_state_name c.Shm.c_state)
        w.Shm.pid c.Shm.c_restarts
        (if w.Shm.core >= 0 then string_of_int w.Shm.core else "-")
        hb_ms c.Shm.c_inflight
        (Ring.depth (Shm.job_ring shm slot))
        (Ring.depth (Shm.resp_ring shm slot))
        w.Shm.requests w.Shm.responses w.Shm.queue_depth w.Shm.running w.Shm.completed
        w.Shm.failed w.Shm.shm_fallbacks c.Shm.c_redispatched c.Shm.c_resumed
        w.Shm.job_wall_ms
        (if r.Shm.w_consistent && r.Shm.c_consistent then "" else "  !torn"))
    (Shm.read_all shm);
  (* ECO session store per worker, read from the fixed solver export
     table (names resolved by position so layout changes stay visible) *)
  let sidx name =
    let found = ref (-1) in
    Array.iteri
      (fun i n -> if n = name then found := i)
      Rc_obs.Metrics.export_names;
    !found
  in
  let i_res = sidx "serve.session.resident"
  and i_open = sidx "serve.session.opens"
  and i_edit = sidx "serve.session.edits"
  and i_evict = sidx "serve.session.evictions"
  and i_rehy = sidx "serve.session.rehydrations" in
  Array.iteri
    (fun slot (r : Shm.row) ->
      let sv i =
        let s = r.Shm.worker.Shm.solver in
        if i >= 0 && i < Array.length s then s.(i) else 0
      in
      Printf.bprintf b
        "sess %4d  resident %d  opens %d  edits %d  evictions %d  rehydrations %d\n" slot
        (sv i_res) (sv i_open) (sv i_edit) (sv i_evict) (sv i_rehy))
    (Shm.read_all shm);
  Buffer.contents b

let run_top shm_path once interval json =
  match Rc_serve.Shm.attach ~path:shm_path () with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  | Ok shm ->
      let tick () =
        if json then print_string (Rc_util.Json.to_string (Rc_serve.Shm.to_json shm))
        else print_string (render_top shm);
        flush stdout
      in
      if once then tick ()
      else
        while true do
          if not json then print_string "\027[H\027[2J";
          tick ();
          Unix.sleepf interval
        done

let top_cmd =
  let shm =
    Arg.(
      value & opt string "rotary.sock.shm"
      & info [ "shm" ] ~docv:"PATH" ~doc:"Shared-memory counter segment to read")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Print one snapshot and exit (for scripts)")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SEC" ~doc:"Refresh period when not $(b,--once)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full segment as JSON instead of columns")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live per-worker counters of a running supervisor, read from its shared-memory \
          segment without touching the server (column reference in docs/operations.md)")
    Term.(const run_top $ shm $ once $ interval $ json)

let subcommands =
  [
    flow_cmd;
    tables_cmd;
    info_cmd;
    ablation_cmd;
    sweep_cmd;
    render_cmd;
    export_cmd;
    import_cmd;
    report_cmd;
    serve_cmd;
    serve_worker_cmd;
    top_cmd;
  ]

let main_cmd =
  Cmd.group
    (Cmd.info "rotary_cli" ~version:"1.0.0"
       ~doc:"Integrated placement and skew optimization for rotary clocking")
    subcommands

(* Exit-code contract: 0 for success/--help/--version; cli_error (124)
   for every command-line usage error — unknown subcommand, bad flag,
   invalid value (cmdliner splits these across `Term and `Parse) — with
   a usage listing of every subcommand; internal_error (125) for
   uncaught exceptions. *)
let list_subcommands () =
  Printf.eprintf "usage: rotary_cli COMMAND [OPTIONS], where COMMAND is one of:\n";
  List.iter
    (fun (name, doc) -> Printf.eprintf "  %-10s %s\n" name doc)
    [
      ("flow", "run the six-stage flow on one circuit");
      ("tables", "regenerate the paper's tables (I-VII) and the Fig. 2 curve");
      ("info", "print benchmark characteristics (Table II)");
      ("ablation", "run the design-choice ablations");
      ("sweep", "sweep the rotary ring count");
      ("render", "render the placed layout as SVG");
      ("export", "write a benchmark circuit to disk");
      ("import", "run the flow on an ISCAS89 .bench netlist");
      ("report", "emit the paper-table report as Markdown + JSON");
      ("serve", "serve concurrent flow requests over JSON (docs/serving.md)");
      ("top", "live per-worker counters from a supervisor's shm segment");
    ]

let () =
  match Cmd.eval_value main_cmd with
  | Ok (`Ok ()) -> exit Cmd.Exit.ok
  | Ok (`Version | `Help) -> exit Cmd.Exit.ok
  | Error (`Parse | `Term) ->
      list_subcommands ();
      exit Cmd.Exit.cli_error
  | Error `Exn -> exit Cmd.Exit.internal_error

(* Rotary-ring design exploration (Fig. 1 of the paper):

   - build a ring array, inspect the phase profile along a ring;
   - show the complementary-phase property of the differential pair;
   - tap flip-flops at arbitrary delay targets (the four Eq. 1 cases);
   - watch the oscillation frequency degrade with load (Eq. 2).

     dune exec examples/ring_design.exe *)

open Rc_geom
open Rc_rotary

let tech = Rc_tech.Tech.default

let () =
  let chip = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2400.0 ~ymax:2400.0 in
  let arr = Ring_array.create ~chip ~grid:4 () in
  Printf.printf "ring array: %d rings of %.0f um pitch, period %.0f ps\n\n"
    (Ring_array.n_rings arr)
    (Rect.width (Ring_array.ring arr 0).Ring.rect)
    (Ring_array.period arr);

  (* phase profile along ring 0 *)
  let ring = Ring_array.ring arr 0 in
  Printf.printf "phase profile of ring %d (%s):\n" ring.Ring.id
    (if ring.Ring.clockwise then "clockwise" else "counter-clockwise");
  Printf.printf "  %8s %18s %12s %12s\n" "arc(um)" "position" "outer(ps)" "inner(ps)";
  let perim = Ring.perimeter ring in
  for k = 0 to 7 do
    let arc = float_of_int k /. 8.0 *. perim in
    let p = Ring.point_at ring ~arc in
    Printf.printf "  %8.0f (%7.1f,%7.1f) %12.1f %12.1f\n" arc p.Point.x p.Point.y
      (Ring.delay_at ring ~arc ~conductor:Ring.Outer)
      (Ring.delay_at ring ~arc ~conductor:Ring.Inner)
  done;
  Printf.printf
    "  -> every point offers a phase and its complement (+T/2): a flip-flop\n\
    \     needing the complement is attached with flipped polarity.\n\n";

  (* tapping at various targets *)
  let ff = Point.make 150.0 250.0 in
  Printf.printf "tapping a flip-flop at (%.0f, %.0f), inside ring 0:\n" ff.Point.x ff.Point.y;
  List.iter
    (fun target ->
      let tap = Tapping.solve tech ring ~ff ~target in
      let realized =
        Ring.delay_at ring ~arc:tap.Tapping.arc ~conductor:tap.Tapping.conductor
        +. Tapping.stub_delay tech tap.Tapping.wirelength
      in
      Printf.printf
        "  target %7.1f ps -> tap at (%6.1f,%6.1f) %s, stub %6.1f um, realized %7.2f ps%s\n"
        target tap.Tapping.point.Point.x tap.Tapping.point.Point.y
        (match tap.Tapping.conductor with Ring.Outer -> "outer" | Ring.Inner -> "inner")
        tap.Tapping.wirelength realized
        (if tap.Tapping.snaked then " (snaked)" else ""))
    [ 0.0; 125.0; 250.0; 500.0; 875.0 ];
  print_newline ();

  (* loading vs oscillation frequency (Eq. 2) *)
  Printf.printf "oscillation frequency vs load capacitance (Eq. 2):\n";
  List.iter
    (fun load ->
      Printf.printf "  load %6.0f fF -> f_osc %6.3f GHz\n" load
        (Ring.oscillation_frequency_ghz tech ring ~load_cap:load))
    [ 0.0; 200.0; 500.0; 1000.0; 2000.0 ];
  Printf.printf
    "  -> minimizing the maximum ring load (the Section VI ILP) maximizes the\n\
    \     achievable clock frequency.\n";
  print_newline ();

  (* first-principles check: simulate the ring as an LC-ladder Moebius
     loop with cross-coupled inverters and compare with the phase model *)
  Printf.printf "time-domain LC-ladder simulation of one ring (startup from noise):\n";
  let sim = Wave_sim.simulate Wave_sim.default_config in
  Printf.printf "  locked: %b, measured period %.2f ps vs Eq. 2 prediction %.2f ps\n"
    sim.Wave_sim.locked sim.Wave_sim.period sim.Wave_sim.predicted_period;
  Printf.printf "  phase linearity error: %.2f%% of a period (delay_at assumes linear)\n"
    (100.0 *. sim.Wave_sim.phase_linearity);
  Printf.printf "  conductor anti-phase error: %.2f%% (the complementary taps of Sec. III)\n"
    (100.0 *. sim.Wave_sim.antiphase_error);
  print_newline ();

  (* two mistuned rings pull each other into lock when bridged — the
     array-level phase averaging behind Fig. 1(b) *)
  Printf.printf "injection locking of two mistuned rings (4%% inductance difference):\n";
  let cpl =
    Wave_sim.simulate_coupled { Wave_sim.default_config with Wave_sim.periods = 80.0 }
  in
  Printf.printf "  period mismatch: %.2f%% uncoupled -> %.3f%% with 40-ohm bridges (locked: %b)\n"
    (100.0 *. cpl.Wave_sim.uncoupled_mismatch)
    (100.0 *. cpl.Wave_sim.coupled_mismatch)
    cpl.Wave_sim.locked_together

(* Quickstart: run the whole integrated placement + skew optimization
   flow on a small synthetic circuit and print what happened.

     dune exec examples/quickstart.exe *)

open Rc_core

let () =
  (* The "tiny" benchmark: ~220 logic cells, 32 flip-flops, a 2x2 rotary
     ring array on a 1.2 mm die. *)
  let bench = Bench_suite.tiny in
  let cfg = Flow.default_config ~mode:Flow.Netflow bench in
  let o = Flow.run cfg in

  Printf.printf "circuit %s: %d cells, %d flip-flops, %d rings\n"
    bench.Bench_suite.bname
    (Rc_netlist.Netlist.n_cells o.Flow.netlist)
    (Rc_netlist.Netlist.n_ffs o.Flow.netlist)
    (Rc_rotary.Ring_array.n_rings o.Flow.rings);
  Printf.printf "sequential pairs: %d, max slack from scheduling: %.1f ps\n\n" o.Flow.n_pairs
    o.Flow.slack;

  Printf.printf "%-5s %12s %14s %14s %10s\n" "iter" "AFD (um)" "tapping (um)" "signal (um)"
    "power(mW)";
  List.iter
    (fun (s : Flow.snapshot) ->
      Printf.printf "%-5d %12.1f %14.0f %14.0f %10.2f\n" s.Flow.iteration s.Flow.afd
        s.Flow.tapping_wl s.Flow.signal_wl s.Flow.total_mw)
    o.Flow.history;

  let b = o.Flow.base and f = o.Flow.final in
  Printf.printf "\ntapping wirelength: %.0f -> %.0f um (%.1f%% reduction)\n" b.Flow.tapping_wl
    f.Flow.tapping_wl
    (Report.pct_improvement ~from:b.Flow.tapping_wl ~to_:f.Flow.tapping_wl);
  Printf.printf "signal wirelength : %.0f -> %.0f um (%.1f%% change)\n" b.Flow.signal_wl
    f.Flow.signal_wl
    (-.Report.pct_improvement ~from:b.Flow.signal_wl ~to_:f.Flow.signal_wl);

  (* every flip-flop ends up with a tap realizing its delay target *)
  let ffs, _ = Flow.ff_index o.Flow.netlist in
  let worst = ref 0.0 in
  Array.iteri
    (fun i _ ->
      let tap = o.Flow.assignment.Rc_assign.Assign.taps.(i) in
      let ring = Rc_rotary.Ring_array.ring o.Flow.rings tap.Rc_rotary.Tapping.ring in
      let got =
        Rc_rotary.Ring.delay_at ring ~arc:tap.Rc_rotary.Tapping.arc
          ~conductor:tap.Rc_rotary.Tapping.conductor
        +. Rc_rotary.Tapping.stub_delay cfg.Flow.tech tap.Rc_rotary.Tapping.wirelength
      in
      let period = Rc_rotary.Ring_array.period o.Flow.rings in
      let d = Float.rem (Float.abs (got -. o.Flow.skews.(i))) period in
      worst := Float.max !worst (Float.min d (period -. d)))
    ffs;
  Printf.printf "\nworst phase error across all taps: %.4f ps (targets are met modulo T)\n" !worst

examples/ring_design.mli:

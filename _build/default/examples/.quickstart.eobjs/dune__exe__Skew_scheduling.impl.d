examples/skew_scheduling.ml: Array Cost_driven Float Max_slack Option Printf Rc_skew Skew_problem

examples/local_trees.ml: Array Bench_suite Flow List Printf Rc_assign Rc_core Report

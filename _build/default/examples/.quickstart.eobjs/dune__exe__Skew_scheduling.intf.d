examples/skew_scheduling.mli:

examples/ring_design.ml: List Point Printf Rc_geom Rc_rotary Rc_tech Rect Ring Ring_array Tapping Wave_sim

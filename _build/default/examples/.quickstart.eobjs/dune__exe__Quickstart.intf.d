examples/quickstart.mli:

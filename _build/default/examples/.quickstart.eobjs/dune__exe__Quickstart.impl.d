examples/quickstart.ml: Array Bench_suite Float Flow List Printf Rc_assign Rc_core Rc_netlist Rc_rotary Report

examples/local_trees.mli:

examples/assignment_compare.mli:

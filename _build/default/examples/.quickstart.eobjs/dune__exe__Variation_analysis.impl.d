examples/variation_analysis.ml: Bench_suite Clocking_compare Flow List Printf Rc_core Rc_variation Variation_study

examples/assignment_compare.ml: Array Bench_suite Flow Option Printf Rc_assign Rc_core Rc_ilp Rc_netlist Rc_place Rc_rotary Rc_skew Rc_tech Rc_timing

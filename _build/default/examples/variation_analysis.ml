(* Why rotary clocking? The Section I motivation, reproduced:

   - Monte-Carlo wire variation on a conventional zero-skew tree vs the
     rotary design the flow produced;
   - the three-way comparison against a clock mesh (power vs skew).

     dune exec examples/variation_analysis.exe *)

open Rc_core

let () =
  let bench = Bench_suite.s9234 in
  Printf.printf "running the flow on %s...\n%!" bench.Bench_suite.bname;
  let o = Flow.run (Flow.default_config bench) in

  let vs = Variation_study.run o in
  print_newline ();
  print_string vs.Variation_study.report;
  print_newline ();

  let _, table = Clocking_compare.run o in
  print_endline table;

  (* sensitivity: how the rotary advantage scales with variation *)
  Printf.printf "\nsensitivity to the wire-variation sigma:\n";
  Printf.printf "  %8s %18s %18s %10s\n" "sigma" "tree spread (ps)" "rotary spread (ps)" "ratio";
  List.iter
    (fun sigma ->
      let model =
        { Rc_variation.Variation.default_model with Rc_variation.Variation.sigma_wire = sigma }
      in
      let r = Variation_study.run ~model o in
      let t = r.Variation_study.tree.Rc_variation.Variation.mean_spread in
      let v = r.Variation_study.rotary.Rc_variation.Variation.mean_spread in
      Printf.printf "  %7.0f%% %18.2f %18.2f %9.1fx\n" (100.0 *. sigma) t v
        (if v > 0.0 then t /. v else nan))
    [ 0.02; 0.05; 0.10; 0.20 ];
  Printf.printf
    "\nthe tree's spread scales with its millimeters of source-sink path; the\n\
     rotary design only exposes short stubs and junction-averaged ring arcs —\n\
     the variability gap the paper builds its case on.\n"

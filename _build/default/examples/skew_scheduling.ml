(* Skew scheduling walkthrough (Section VII):

   - a hand-built five-stage pipeline with a feedback loop;
   - max-slack scheduling (Eq. 5-7), graph engine vs LP engine;
   - cost-driven rescheduling toward rotary-ring anchor phases.

     dune exec examples/skew_scheduling.exe *)

open Rc_skew

let () =
  (* five flip-flops: a pipeline 0 -> 1 -> 2 -> 3 -> 4 with a loop
     4 -> 0; stage delays are deliberately unbalanced so zero skew is
     far from optimal *)
  let pairs =
    [
      { Skew_problem.i = 0; j = 1; d_max = 700.0; d_min = 500.0 };
      { Skew_problem.i = 1; j = 2; d_max = 300.0; d_min = 150.0 };
      { Skew_problem.i = 2; j = 3; d_max = 600.0; d_min = 420.0 };
      { Skew_problem.i = 3; j = 4; d_max = 250.0; d_min = 120.0 };
      { Skew_problem.i = 4; j = 0; d_max = 450.0; d_min = 300.0 };
    ]
  in
  let problem =
    Skew_problem.make ~n:5 ~pairs ~period:1000.0 ~t_setup:40.0 ~t_hold:15.0
  in

  Printf.printf "zero-skew slack      : %8.2f ps\n" (Max_slack.zero_skew_slack problem);
  Printf.printf "two-cycle upper bound: %8.2f ps\n\n" (Skew_problem.slack_upper_bound problem);

  let graph = Option.get (Max_slack.solve_graph problem) in
  let lp = Option.get (Max_slack.solve_lp problem) in
  Printf.printf "max-slack scheduling:\n";
  Printf.printf "  graph engine: M = %.3f ps, skews:" graph.Max_slack.slack;
  Array.iter (Printf.printf " %7.1f") graph.Max_slack.skews;
  Printf.printf "\n  LP engine   : M = %.3f ps, skews:" lp.Max_slack.slack;
  Array.iter (Printf.printf " %7.1f") lp.Max_slack.skews;
  Printf.printf "\n  (the two engines agree on the optimum; schedules may differ\n";
  Printf.printf "   by a feasible translation)\n\n";

  (* verify both schedules *)
  assert (Skew_problem.check problem ~slack:graph.Max_slack.slack ~skews:graph.Max_slack.skews);
  assert (Skew_problem.check problem ~slack:lp.Max_slack.slack ~skews:lp.Max_slack.skews);

  (* cost-driven rescheduling: each flip-flop has a preferred phase from
     its assigned rotary ring (here: made-up anchors spread over the
     period) *)
  let anchors =
    [|
      { Cost_driven.t_c = 120.0; t_ci = 1.0; weight = 50.0 };
      { Cost_driven.t_c = 840.0; t_ci = 2.5; weight = 210.0 };
      { Cost_driven.t_c = 400.0; t_ci = 0.4; weight = 25.0 };
      { Cost_driven.t_c = 990.0; t_ci = 1.8; weight = 140.0 };
      { Cost_driven.t_c = 330.0; t_ci = 3.0; weight = 260.0 };
    |]
  in
  let m = 0.5 *. graph.Max_slack.slack in
  Printf.printf "cost-driven rescheduling at prespecified M = %.2f ps:\n" m;
  (match Cost_driven.solve_minmax_graph problem ~slack:m ~anchors with
  | None -> print_endline "  infeasible"
  | Some r ->
      Printf.printf "  min-max engine: Delta = %.2f ps\n" r.Cost_driven.objective;
      let refined =
        Cost_driven.refine_toward_anchors problem ~slack:m ~anchors ~skews:r.Cost_driven.skews
      in
      Printf.printf "  %-6s %10s %10s %10s %10s\n" "FF" "anchor" "minmax" "refined" "|gap|";
      Array.iteri
        (fun i a ->
          let ideal = a.Cost_driven.t_c +. a.Cost_driven.t_ci in
          Printf.printf "  %-6d %10.1f %10.1f %10.1f %10.1f\n" i ideal r.Cost_driven.skews.(i)
            refined.(i)
            (Float.abs (refined.(i) -. ideal)))
        anchors;
      assert (Skew_problem.check problem ~slack:m ~skews:refined));
  (match Cost_driven.solve_weighted_lp problem ~slack:m ~anchors with
  | None -> print_endline "  weighted LP infeasible"
  | Some r ->
      Printf.printf "  weighted-sum LP objective (sum w*|dev|): %.1f\n" r.Cost_driven.objective);
  Printf.printf
    "\nflip-flops whose anchors fit the timing window sit exactly on their\n\
     ring phases; the pipeline loop constrains the rest.\n"

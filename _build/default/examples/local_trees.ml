(* Local tapping trees (Section IX future work, implemented):

   flip-flops on the same ring with delay targets within a small phase
   tolerance share one tapping point driving a zero-skew subtree,
   saving stub wirelength and ring attachment points.

     dune exec examples/local_trees.exe *)

open Rc_core

let () =
  let bench = Bench_suite.tiny in
  let cfg = Flow.default_config bench in
  let o = Flow.run cfg in
  let tech = cfg.Flow.tech in
  let ffs, _ = Flow.ff_index o.Flow.netlist in
  let ff_positions = Array.map (fun c -> o.Flow.positions.(c)) ffs in

  Printf.printf "%s after the full flow: %d flip-flops, tapping WL %.0f um\n\n"
    bench.Bench_suite.bname (Array.length ffs) o.Flow.final.Flow.tapping_wl;

  Printf.printf "%-12s %8s %10s %12s %14s %12s\n" "tolerance" "taps" "groups>=2" "tree WL(um)"
    "total WL(um)" "saving";
  List.iter
    (fun tol ->
      let lt =
        Rc_assign.Local_trees.build ~phase_tolerance:tol tech o.Flow.rings
          ~assignment:o.Flow.assignment ~ff_positions ~targets:o.Flow.skews
      in
      let multi =
        List.length
          (List.filter
             (fun g -> Array.length g.Rc_assign.Local_trees.members > 1)
             lt.Rc_assign.Local_trees.groups)
      in
      let tree_wl =
        List.fold_left
          (fun acc g -> acc +. g.Rc_assign.Local_trees.tree_wirelength)
          0.0 lt.Rc_assign.Local_trees.groups
      in
      let err = Rc_assign.Local_trees.max_phase_error tech o.Flow.rings lt ~targets:o.Flow.skews in
      Printf.printf "%-12s %8d %10d %12.0f %14.0f %11.1f%%  (max phase err %.2f ps)\n"
        (Printf.sprintf "%.1f ps" tol)
        lt.Rc_assign.Local_trees.n_taps multi tree_wl lt.Rc_assign.Local_trees.total_wirelength
        (Report.pct_improvement ~from:lt.Rc_assign.Local_trees.plain_wirelength
           ~to_:lt.Rc_assign.Local_trees.total_wirelength)
        err)
    [ 0.5; 2.0; 5.0; 10.0; 25.0 ];

  Printf.printf
    "\nlarger tolerances merge more flip-flops per tap (fewer ring attachments,\n\
     less stub wire) at the price of a larger phase error — exactly the skew\n\
     permissible-range trade-off the paper's conclusion anticipates.\n"

(** Gate-level sequential circuit model.

    Cells are integers [0 .. n_cells-1]; each cell is a logic gate, a
    flip-flop, or an I/O pad. Every net has one driver cell and one or
    more sink cells. Pads carry fixed positions on the chip boundary;
    all other cells are placed by [Rc_place]. *)

type kind = Logic | Flipflop | Input_pad | Output_pad

type net = { driver : int; sinks : int array }

type t

val make :
  name:string ->
  kinds:kind array ->
  nets:net array ->
  pad_positions:(int * Rc_geom.Point.t) list ->
  t
(** Build and validate a netlist: net endpoints in range, output pads
    drive nothing, input pads sink nothing, every pad has a position.
    @raise Invalid_argument when structure is inconsistent. *)

val name : t -> string
val n_cells : t -> int
val n_nets : t -> int

val kind : t -> int -> kind
val is_ff : t -> int -> bool

val flip_flops : t -> int array
(** Ids of all flip-flops, ascending. *)

val logic_cells : t -> int array
val pads : t -> int array

val n_ffs : t -> int

val net : t -> int -> net

val iter_nets : t -> (int -> net -> unit) -> unit

val driver_net : t -> int -> int
(** Net driven by a cell, or [-1] if it drives nothing. *)

val fanin_nets : t -> int -> int list
(** Nets on which the cell is a sink. *)

val pad_position : t -> int -> Rc_geom.Point.t
(** @raise Invalid_argument if the cell is not a pad. *)

val movable : t -> int -> bool
(** True for logic cells and flip-flops (pads are fixed). *)

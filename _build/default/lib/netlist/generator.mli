(** Synthetic sequential-circuit generator.

    Stands in for the ISCAS89 netlists synthesized through SIS in the
    paper: given the published circuit statistics (cell, flip-flop and
    net counts — Table II), it produces a random levelized DAG of logic
    between flip-flop boundaries with realistic fan-in/fan-out, so the
    placement, timing and skew-scheduling code paths see inputs of the
    same shape and scale. Deterministic in [seed]. *)

type config = {
  name : string;
  n_logic : int;  (** Number of combinational cells ("#Cells"). *)
  n_ffs : int;  (** Number of flip-flops. *)
  n_nets : int;  (** Exact number of nets to emit. *)
  n_inputs : int;  (** Primary-input pads. *)
  n_outputs : int;  (** Primary-output pads. *)
  depth : int;  (** Logic levels between flip-flop boundaries. *)
  max_fanin : int;  (** Maximum fan-in of a logic cell (≥ 1). *)
  clusters : int;  (** Locality clusters; cells mostly connect within their cluster, like the functional blocks of a real design (≥ 1). *)
  locality : float;  (** Probability that a fan-in stays inside the cluster (0-1). *)
  chip : Rc_geom.Rect.t;  (** Die outline; pads are placed on its boundary. *)
  seed : int;
}

val default_config : config
(** A small smoke-test circuit (200 cells / 24 FFs). *)

val generate : config -> Netlist.t
(** Build the circuit. Guarantees: exactly [n_nets] nets; every
    flip-flop drives a net and sinks on a net (so every flip-flop takes
    part in sequential-adjacency constraints); combinational logic is
    acyclic by construction (levelized).
    @raise Invalid_argument when counts are inconsistent (e.g. [n_nets]
    smaller than [n_ffs + n_inputs] or larger than the number of
    potential drivers). *)

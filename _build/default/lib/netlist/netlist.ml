type kind = Logic | Flipflop | Input_pad | Output_pad

type net = { driver : int; sinks : int array }

type t = {
  name : string;
  kinds : kind array;
  nets : net array;
  driver_net : int array;
  fanin_nets : int list array;
  pad_pos : (int, Rc_geom.Point.t) Hashtbl.t;
  ffs : int array;
  logic : int array;
  pad_ids : int array;
}

let make ~name ~kinds ~nets ~pad_positions =
  let n = Array.length kinds in
  let driver_net = Array.make n (-1) in
  let fanin_nets = Array.make n [] in
  Array.iteri
    (fun ni { driver; sinks } ->
      if driver < 0 || driver >= n then invalid_arg "Netlist.make: driver out of range";
      if Array.length sinks = 0 then invalid_arg "Netlist.make: net without sinks";
      if kinds.(driver) = Output_pad then invalid_arg "Netlist.make: output pad drives a net";
      if driver_net.(driver) >= 0 then invalid_arg "Netlist.make: cell drives two nets";
      driver_net.(driver) <- ni;
      Array.iter
        (fun s ->
          if s < 0 || s >= n then invalid_arg "Netlist.make: sink out of range";
          if s = driver then invalid_arg "Netlist.make: self-loop net";
          if kinds.(s) = Input_pad then invalid_arg "Netlist.make: input pad used as sink";
          fanin_nets.(s) <- ni :: fanin_nets.(s))
        sinks)
    nets;
  let pad_pos = Hashtbl.create 64 in
  List.iter
    (fun (c, p) ->
      if c < 0 || c >= n then invalid_arg "Netlist.make: pad id out of range";
      (match kinds.(c) with
      | Input_pad | Output_pad -> ()
      | _ -> invalid_arg "Netlist.make: position given for non-pad");
      Hashtbl.replace pad_pos c p)
    pad_positions;
  let collect pred =
    let acc = ref [] in
    for c = n - 1 downto 0 do
      if pred kinds.(c) then acc := c :: !acc
    done;
    Array.of_list !acc
  in
  let pad_ids = collect (fun k -> k = Input_pad || k = Output_pad) in
  Array.iter
    (fun c ->
      if not (Hashtbl.mem pad_pos c) then invalid_arg "Netlist.make: pad without position")
    pad_ids;
  {
    name;
    kinds;
    nets;
    driver_net;
    fanin_nets;
    pad_pos;
    ffs = collect (fun k -> k = Flipflop);
    logic = collect (fun k -> k = Logic);
    pad_ids;
  }

let name t = t.name
let n_cells t = Array.length t.kinds
let n_nets t = Array.length t.nets

let kind t c =
  if c < 0 || c >= n_cells t then invalid_arg "Netlist.kind: out of range";
  t.kinds.(c)

let is_ff t c = kind t c = Flipflop
let flip_flops t = Array.copy t.ffs
let logic_cells t = Array.copy t.logic
let pads t = Array.copy t.pad_ids
let n_ffs t = Array.length t.ffs

let net t ni =
  if ni < 0 || ni >= n_nets t then invalid_arg "Netlist.net: out of range";
  t.nets.(ni)

let iter_nets t f = Array.iteri f t.nets

let driver_net t c =
  if c < 0 || c >= n_cells t then invalid_arg "Netlist.driver_net: out of range";
  t.driver_net.(c)

let fanin_nets t c =
  if c < 0 || c >= n_cells t then invalid_arg "Netlist.fanin_nets: out of range";
  t.fanin_nets.(c)

let pad_position t c =
  match Hashtbl.find_opt t.pad_pos c with
  | Some p -> p
  | None -> invalid_arg "Netlist.pad_position: not a pad"

let movable t c =
  match kind t c with Logic | Flipflop -> true | Input_pad | Output_pad -> false

lib/netlist/bench_format.ml: Array Buffer Filename Fun Hashtbl List Netlist Option Point Printf Rc_geom Rect String

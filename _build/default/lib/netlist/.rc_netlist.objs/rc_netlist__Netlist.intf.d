lib/netlist/netlist.mli: Rc_geom

lib/netlist/serialize.mli: Netlist Rc_geom

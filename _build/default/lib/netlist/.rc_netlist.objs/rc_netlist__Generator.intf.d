lib/netlist/generator.mli: Netlist Rc_geom

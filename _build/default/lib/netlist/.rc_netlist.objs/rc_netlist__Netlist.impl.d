lib/netlist/netlist.ml: Array Hashtbl List Rc_geom

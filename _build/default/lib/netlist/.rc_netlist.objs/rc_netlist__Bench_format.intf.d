lib/netlist/bench_format.mli: Netlist Rc_geom

lib/netlist/generator.ml: Array Fun Hashtbl List Netlist Point Rc_geom Rc_util Rect Rng

lib/netlist/serialize.ml: Array Buffer Fun List Netlist Printf Rc_geom String

(** Plain-text netlist interchange, in a small line-oriented format
    reminiscent of the bench/net formats academic placers consume:

    {v
    # comment
    circuit <name>
    chip <xmin> <ymin> <xmax> <ymax>
    cell <id> logic|ff
    pad <id> in|out <x> <y>
    net <driver> <sink> <sink> ...
    v}

    Cells must be declared before the nets that reference them. The
    writer emits cells in id order so a round-trip is the identity. *)

val to_string : chip:Rc_geom.Rect.t -> Netlist.t -> string

val write_file : path:string -> chip:Rc_geom.Rect.t -> Netlist.t -> unit

val of_string : string -> (Rc_geom.Rect.t * Netlist.t, string) result
(** Parse a document. Returns a descriptive error on malformed input
    (unknown directive, out-of-range ids, missing sections). *)

val read_file : string -> (Rc_geom.Rect.t * Netlist.t, string) result

val placement_to_string : Rc_geom.Point.t array -> string
(** One "<cell-id> <x> <y>" line per cell — a .pl-style companion file. *)

val placement_of_string : n_cells:int -> string -> (Rc_geom.Point.t array, string) result

(** Reader for the ISCAS89 ".bench" netlist format — the format the
    paper's actual benchmark circuits (s9234, s5378, ...) are distributed
    in, so real netlists can be fed to the flow in place of the synthetic
    generator:

    {v
    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NAND(G0, G10)
    G14 = NOT(G11)
    v}

    Gate types map to [Logic] cells (the delay model is type-agnostic),
    [DFF]/[DFFSR] to flip-flops, [INPUT]/[OUTPUT] to boundary pads placed
    evenly around the given die outline. Fan-out is reconstructed from
    signal usage. *)

val of_string :
  ?name:string -> chip:Rc_geom.Rect.t -> string -> (Netlist.t, string) result
(** Parse a .bench document. Errors carry a line number and reason
    (unknown gate type, undefined signal, duplicate definition...). *)

val read_file : chip:Rc_geom.Rect.t -> string -> (Netlist.t, string) result
(** Parse a file; the circuit name defaults to the file's basename. *)

val to_string : Netlist.t -> string
(** Render a netlist back to .bench (logic cells as generic [AND];
    pad positions are not representable and are dropped). Mainly for
    interchange tests. *)

let to_string ~chip netlist =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "# rotary-clock netlist format v1\n");
  Buffer.add_string b (Printf.sprintf "circuit %s\n" (Netlist.name netlist));
  Buffer.add_string b
    (Printf.sprintf "chip %.10g %.10g %.10g %.10g\n" chip.Rc_geom.Rect.xmin chip.Rc_geom.Rect.ymin
       chip.Rc_geom.Rect.xmax chip.Rc_geom.Rect.ymax);
  for c = 0 to Netlist.n_cells netlist - 1 do
    match Netlist.kind netlist c with
    | Netlist.Logic -> Buffer.add_string b (Printf.sprintf "cell %d logic\n" c)
    | Netlist.Flipflop -> Buffer.add_string b (Printf.sprintf "cell %d ff\n" c)
    | Netlist.Input_pad ->
        let p = Netlist.pad_position netlist c in
        Buffer.add_string b
          (Printf.sprintf "pad %d in %.10g %.10g\n" c p.Rc_geom.Point.x p.Rc_geom.Point.y)
    | Netlist.Output_pad ->
        let p = Netlist.pad_position netlist c in
        Buffer.add_string b
          (Printf.sprintf "pad %d out %.10g %.10g\n" c p.Rc_geom.Point.x p.Rc_geom.Point.y)
  done;
  Netlist.iter_nets netlist (fun _ net ->
      Buffer.add_string b (Printf.sprintf "net %d" net.Netlist.driver);
      Array.iter (fun s -> Buffer.add_string b (Printf.sprintf " %d" s)) net.Netlist.sinks;
      Buffer.add_char b '\n');
  Buffer.contents b

let write_file ~path ~chip netlist =
  let oc = open_out path in
  output_string oc (to_string ~chip netlist);
  close_out oc

type parse_state = {
  mutable name : string option;
  mutable chip : Rc_geom.Rect.t option;
  mutable kinds : (int * Netlist.kind) list;
  mutable pads : (int * Rc_geom.Point.t) list;
  mutable nets : Netlist.net list;
}

let of_string text =
  let st = { name = None; chip = None; kinds = []; pads = []; nets = [] } in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let exception Fail of string in
  try
    String.split_on_char '\n' text
    |> List.iteri (fun idx line ->
           let lineno = idx + 1 in
           let line = String.trim line in
           if line = "" || line.[0] = '#' then ()
           else
             let fields =
               String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
             in
             let fail msg = raise (Fail (Printf.sprintf "line %d: %s" lineno msg)) in
             let int_of s =
               match int_of_string_opt s with Some v -> v | None -> fail ("bad integer " ^ s)
             in
             let float_of s =
               match float_of_string_opt s with Some v -> v | None -> fail ("bad number " ^ s)
             in
             match fields with
             | [ "circuit"; n ] -> st.name <- Some n
             | [ "chip"; a; b; c; d ] ->
                 st.chip <-
                   Some
                     (Rc_geom.Rect.make ~xmin:(float_of a) ~ymin:(float_of b) ~xmax:(float_of c)
                        ~ymax:(float_of d))
             | [ "cell"; id; "logic" ] -> st.kinds <- (int_of id, Netlist.Logic) :: st.kinds
             | [ "cell"; id; "ff" ] -> st.kinds <- (int_of id, Netlist.Flipflop) :: st.kinds
             | [ "pad"; id; dir; x; y ] ->
                 let kind =
                   match dir with
                   | "in" -> Netlist.Input_pad
                   | "out" -> Netlist.Output_pad
                   | _ -> fail ("bad pad direction " ^ dir)
                 in
                 let id = int_of id in
                 st.kinds <- (id, kind) :: st.kinds;
                 st.pads <- (id, Rc_geom.Point.make (float_of x) (float_of y)) :: st.pads
             | "net" :: driver :: (_ :: _ as sinks) ->
                 st.nets <-
                   {
                     Netlist.driver = int_of driver;
                     sinks = Array.of_list (List.map int_of sinks);
                   }
                   :: st.nets
             | directive :: _ -> fail ("unknown or malformed directive " ^ directive)
             | [] -> ());
    match (st.name, st.chip) with
    | None, _ -> err 0 "missing circuit directive"
    | _, None -> err 0 "missing chip directive"
    | Some name, Some chip ->
        let n =
          List.fold_left (fun acc (id, _) -> max acc (id + 1)) 0 st.kinds
        in
        if List.length st.kinds <> n then Error "cell ids are not contiguous from 0"
        else begin
          let kinds = Array.make n Netlist.Logic in
          let seen = Array.make n false in
          List.iter
            (fun (id, k) ->
              if id < 0 || id >= n then raise (Fail "cell id out of range");
              if seen.(id) then raise (Fail (Printf.sprintf "duplicate cell id %d" id));
              seen.(id) <- true;
              kinds.(id) <- k)
            st.kinds;
          match
            Netlist.make ~name ~kinds ~nets:(Array.of_list (List.rev st.nets))
              ~pad_positions:st.pads
          with
          | nl -> Ok (chip, nl)
          | exception Invalid_argument m -> Error m
        end
  with Fail m -> Error m

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let placement_to_string positions =
  let b = Buffer.create 1024 in
  Array.iteri
    (fun c (p : Rc_geom.Point.t) ->
      Buffer.add_string b (Printf.sprintf "%d %.10g %.10g\n" c p.Rc_geom.Point.x p.Rc_geom.Point.y))
    positions;
  Buffer.contents b

let placement_of_string ~n_cells text =
  let out = Array.make n_cells Rc_geom.Point.zero in
  let seen = Array.make n_cells false in
  let exception Fail of string in
  try
    String.split_on_char '\n' text
    |> List.iteri (fun idx line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then ()
           else
             match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
             | [ id; x; y ] -> (
                 match (int_of_string_opt id, float_of_string_opt x, float_of_string_opt y) with
                 | Some id, Some x, Some y when id >= 0 && id < n_cells ->
                     out.(id) <- Rc_geom.Point.make x y;
                     seen.(id) <- true
                 | _ -> raise (Fail (Printf.sprintf "line %d: malformed placement" (idx + 1))))
             | _ -> raise (Fail (Printf.sprintf "line %d: malformed placement" (idx + 1))));
    if Array.for_all Fun.id seen then Ok out
    else Error "placement is missing cells"
  with Fail m -> Error m

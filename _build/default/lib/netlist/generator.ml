open Rc_util

type config = {
  name : string;
  n_logic : int;
  n_ffs : int;
  n_nets : int;
  n_inputs : int;
  n_outputs : int;
  depth : int;
  max_fanin : int;
  clusters : int;
  locality : float;
  chip : Rc_geom.Rect.t;
  seed : int;
}

let default_config =
  {
    name = "smoke200";
    n_logic = 200;
    n_ffs = 24;
    n_nets = 210;
    n_inputs = 8;
    n_outputs = 8;
    depth = 8;
    max_fanin = 3;
    clusters = 4;
    locality = 0.85;
    chip = Rc_geom.Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2200.0 ~ymax:2200.0;
    seed = 1;
  }

let pad_ring_positions chip count =
  (* evenly spaced positions walking the die boundary clockwise *)
  let open Rc_geom in
  let w = Rect.width chip and h = Rect.height chip in
  let perimeter = 2.0 *. (w +. h) in
  List.init count (fun i ->
      let d = float_of_int i /. float_of_int count *. perimeter in
      if d < w then Point.make (chip.Rect.xmin +. d) chip.Rect.ymin
      else if d < w +. h then Point.make chip.Rect.xmax (chip.Rect.ymin +. (d -. w))
      else if d < (2.0 *. w) +. h then
        Point.make (chip.Rect.xmax -. (d -. w -. h)) chip.Rect.ymax
      else Point.make chip.Rect.xmin (chip.Rect.ymax -. (d -. (2.0 *. w) -. h)))

let generate cfg =
  if cfg.n_logic <= 0 || cfg.n_ffs <= 0 then invalid_arg "Generator.generate: empty circuit";
  if cfg.depth < 1 then invalid_arg "Generator.generate: depth < 1";
  if cfg.max_fanin < 1 then invalid_arg "Generator.generate: max_fanin < 1";
  let n_logic_drivers = cfg.n_nets - cfg.n_ffs - cfg.n_inputs in
  if n_logic_drivers <= 0 || n_logic_drivers > cfg.n_logic then
    invalid_arg "Generator.generate: n_nets inconsistent with cell counts";
  let rng = Rng.create cfg.seed in
  let n = cfg.n_logic + cfg.n_ffs + cfg.n_inputs + cfg.n_outputs in
  let logic c = c < cfg.n_logic in
  let ff_first = cfg.n_logic in
  let in_first = cfg.n_logic + cfg.n_ffs in
  let out_first = in_first + cfg.n_inputs in
  let kinds =
    Array.init n (fun c ->
        if logic c then Netlist.Logic
        else if c < in_first then Netlist.Flipflop
        else if c < out_first then Netlist.Input_pad
        else Netlist.Output_pad)
  in
  (* choose which logic cells drive nets *)
  let logic_perm = Array.init cfg.n_logic Fun.id in
  Rng.shuffle rng logic_perm;
  let drives = Array.make n false in
  for k = 0 to n_logic_drivers - 1 do
    drives.(logic_perm.(k)) <- true
  done;
  for c = ff_first to out_first - 1 do
    drives.(c) <- true
  done;
  (* levelize: logic in 1..depth; sources (FFs + inputs) at 0 *)
  let level = Array.make n 0 in
  for c = 0 to cfg.n_logic - 1 do
    level.(c) <- 1 + Rng.int rng cfg.depth
  done;
  if cfg.clusters < 1 then invalid_arg "Generator.generate: clusters < 1";
  if cfg.locality < 0.0 || cfg.locality > 1.0 then
    invalid_arg "Generator.generate: locality out of [0,1]";
  (* locality clusters: logic, flip-flops and input pads each belong to a
     cluster; connectivity mostly stays inside it *)
  let cluster = Array.init n (fun _ -> Rng.int rng cfg.clusters) in
  (* pools of drivers per level, global and per cluster *)
  let by_level = Array.make (cfg.depth + 1) [] in
  let by_level_cl = Array.init (cfg.depth + 1) (fun _ -> Array.make cfg.clusters []) in
  for c = 0 to n - 1 do
    if drives.(c) && kinds.(c) <> Netlist.Output_pad then begin
      by_level.(level.(c)) <- c :: by_level.(level.(c));
      by_level_cl.(level.(c)).(cluster.(c)) <- c :: by_level_cl.(level.(c)).(cluster.(c))
    end
  done;
  let by_level = Array.map Array.of_list by_level in
  let by_level_cl = Array.map (Array.map Array.of_list) by_level_cl in
  if Array.length by_level.(0) = 0 then invalid_arg "Generator.generate: no level-0 sources";
  let sinks_of = Array.make n [] in
  let connect driver sink =
    if driver <> sink then sinks_of.(driver) <- sink :: sinks_of.(driver)
  in
  let pick_source v cl =
    (* a driver strictly below level v, biased toward the previous level
       and (with probability [locality]) toward the same cluster *)
    let local = Rng.float rng 1.0 < cfg.locality in
    let pool_at u =
      if local && Array.length by_level_cl.(u).(cl) > 0 then by_level_cl.(u).(cl)
      else by_level.(u)
    in
    let lvl =
      if v >= 1 && Rng.float rng 1.0 < 0.6 && Array.length (pool_at (v - 1)) > 0 then v - 1
      else begin
        let rec try_level attempts =
          if attempts = 0 then 0
          else
            let u = Rng.int rng v in
            if Array.length (pool_at u) > 0 then u else try_level (attempts - 1)
        in
        try_level 8
      end
    in
    Rng.choose rng (pool_at lvl)
  in
  (* fan-ins for every logic cell (drivers and sink-only cells alike) *)
  for c = 0 to cfg.n_logic - 1 do
    let k = 1 + Rng.int rng cfg.max_fanin in
    let chosen = Hashtbl.create 4 in
    for _ = 1 to k do
      let s = pick_source level.(c) cluster.(c) in
      if not (Hashtbl.mem chosen s) then begin
        Hashtbl.add chosen s ();
        connect s c
      end
    done
  done;
  (* flip-flop D inputs: prefer deep logic of the same cluster to create
     long, mostly-local FF->FF paths *)
  let logic_drivers_where pred =
    Array.of_list (List.filter (fun c -> logic c && drives.(c) && pred c) (List.init cfg.n_logic Fun.id))
  in
  let deep_drivers = logic_drivers_where (fun c -> level.(c) > cfg.depth / 2) in
  let any_logic_drivers = logic_drivers_where (fun _ -> true) in
  let deep_by_cluster =
    Array.init cfg.clusters (fun cl ->
        Array.of_list
          (List.filter (fun c -> cluster.(c) = cl) (Array.to_list deep_drivers)))
  in
  for f = ff_first to in_first - 1 do
    let local_pool = deep_by_cluster.(cluster.(f)) in
    let pool =
      if Rng.float rng 1.0 < cfg.locality && Array.length local_pool > 0 then local_pool
      else if Array.length deep_drivers > 0 then deep_drivers
      else any_logic_drivers
    in
    connect (Rng.choose rng pool) f
  done;
  (* output pads *)
  for o = out_first to n - 1 do
    let pool = if Array.length any_logic_drivers > 0 then any_logic_drivers else by_level.(0) in
    connect (Rng.choose rng pool) o
  done;
  (* every driver must end with at least one sink *)
  for c = 0 to n - 1 do
    if drives.(c) && sinks_of.(c) = [] then begin
      let v = level.(c) in
      (* logic cells above this level, otherwise an output pad *)
      let candidates =
        List.filter (fun d -> logic d && level.(d) > v) (List.init cfg.n_logic Fun.id)
      in
      match candidates with
      | [] ->
          if cfg.n_outputs > 0 then connect c (out_first + Rng.int rng cfg.n_outputs)
          else connect c (ff_first + Rng.int rng cfg.n_ffs)
      | l -> connect c (List.nth l (Rng.int rng (List.length l)))
    end
  done;
  let nets =
    Array.of_list
      (List.filter_map
         (fun c ->
           if drives.(c) && sinks_of.(c) <> [] then
             Some { Netlist.driver = c; sinks = Array.of_list (List.rev sinks_of.(c)) }
           else None)
         (List.init n Fun.id))
  in
  let pad_ids =
    List.init (cfg.n_inputs + cfg.n_outputs) (fun i -> in_first + i)
  in
  let pad_positions =
    List.combine pad_ids (pad_ring_positions cfg.chip (List.length pad_ids))
  in
  Netlist.make ~name:cfg.name ~kinds ~nets ~pad_positions

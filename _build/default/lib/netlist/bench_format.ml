(* .bench surface syntax:
     INPUT(sig)  OUTPUT(sig)  dest = GATE(src, src, ...)
   Signals name the cell driving them; every referenced signal must be
   defined by an INPUT or a gate. *)

let gate_types =
  [ "AND"; "NAND"; "OR"; "NOR"; "XOR"; "XNOR"; "NOT"; "BUF"; "BUFF" ]

let known_ff = [ "DFF"; "DFFSR" ]

type def =
  | Din  (* primary input *)
  | Dgate of string list  (* logic gate with source signals *)
  | Dff of string list

let parse_lines text =
  let defs = Hashtbl.create 64 in
  let outputs = ref [] in
  let order = ref [] in
  let exception Fail of string in
  let fail lineno msg = raise (Fail (Printf.sprintf "line %d: %s" lineno msg)) in
  try
    String.split_on_char '\n' text
    |> List.iteri (fun idx raw ->
           let lineno = idx + 1 in
           let line = String.trim raw in
           if line = "" || line.[0] = '#' then ()
           else begin
             let paren_arg prefix =
               (* PREFIX(arg) *)
               let plen = String.length prefix in
               if
                 String.length line > plen + 1
                 && String.uppercase_ascii (String.sub line 0 plen) = prefix
                 && line.[plen] = '('
                 && line.[String.length line - 1] = ')'
               then Some (String.trim (String.sub line (plen + 1) (String.length line - plen - 2)))
               else None
             in
             match (paren_arg "INPUT", paren_arg "OUTPUT") with
             | Some s, _ ->
                 if s = "" then fail lineno "empty INPUT name";
                 if Hashtbl.mem defs s then fail lineno ("duplicate definition of " ^ s);
                 Hashtbl.replace defs s Din;
                 order := s :: !order
             | None, Some s ->
                 if s = "" then fail lineno "empty OUTPUT name";
                 outputs := s :: !outputs
             | None, None -> (
                 match String.index_opt line '=' with
                 | None -> fail lineno "expected INPUT(..), OUTPUT(..) or assignment"
                 | Some eq ->
                     let dest = String.trim (String.sub line 0 eq) in
                     let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
                     if dest = "" then fail lineno "empty destination";
                     if Hashtbl.mem defs dest then fail lineno ("duplicate definition of " ^ dest);
                     (match (String.index_opt rhs '(', String.rindex_opt rhs ')') with
                     | Some o, Some c when c > o ->
                         let gate = String.uppercase_ascii (String.trim (String.sub rhs 0 o)) in
                         let args =
                           String.sub rhs (o + 1) (c - o - 1)
                           |> String.split_on_char ','
                           |> List.map String.trim
                           |> List.filter (fun s -> s <> "")
                         in
                         if args = [] then fail lineno "gate without inputs";
                         if List.mem gate known_ff then Hashtbl.replace defs dest (Dff args)
                         else if List.mem gate gate_types then
                           Hashtbl.replace defs dest (Dgate args)
                         else fail lineno ("unknown gate type " ^ gate);
                         order := dest :: !order
                     | _ -> fail lineno "malformed gate expression"))
           end);
    Ok (List.rev !order, defs, List.rev !outputs)
  with Fail m -> Error m

let pad_ring_positions chip count =
  let open Rc_geom in
  let w = Rect.width chip and h = Rect.height chip in
  let perimeter = 2.0 *. (w +. h) in
  List.init (max count 1) (fun i ->
      let d = float_of_int i /. float_of_int (max count 1) *. perimeter in
      if d < w then Point.make (chip.Rect.xmin +. d) chip.Rect.ymin
      else if d < w +. h then Point.make chip.Rect.xmax (chip.Rect.ymin +. (d -. w))
      else if d < (2.0 *. w) +. h then Point.make (chip.Rect.xmax -. (d -. w -. h)) chip.Rect.ymax
      else Point.make chip.Rect.xmin (chip.Rect.ymax -. (d -. (2.0 *. w) -. h)))

let of_string ?(name = "bench") ~chip text =
  match parse_lines text with
  | Error m -> Error m
  | Ok (order, defs, outputs) ->
      (* cell ids: definition order, then one output pad per OUTPUT *)
      let id_of = Hashtbl.create 64 in
      List.iteri (fun i s -> Hashtbl.replace id_of s i) order;
      let n_defs = List.length order in
      let n = n_defs + List.length outputs in
      let kinds = Array.make (max n 1) Netlist.Logic in
      List.iteri
        (fun i s ->
          kinds.(i) <-
            (match Hashtbl.find defs s with
            | Din -> Netlist.Input_pad
            | Dgate _ -> Netlist.Logic
            | Dff _ -> Netlist.Flipflop))
        order;
      List.iteri (fun k _ -> kinds.(n_defs + k) <- Netlist.Output_pad) outputs;
      (* sinks per driving signal *)
      let sinks = Hashtbl.create 64 in
      let add_sink src dest_id =
        Hashtbl.replace sinks src (dest_id :: Option.value (Hashtbl.find_opt sinks src) ~default:[])
      in
      let missing = ref None in
      List.iteri
        (fun i s ->
          match Hashtbl.find defs s with
          | Din -> ()
          | Dgate args | Dff args ->
              List.iter
                (fun a ->
                  if not (Hashtbl.mem id_of a) then missing := Some a else add_sink a i)
                args)
        order;
      List.iteri
        (fun k s ->
          if not (Hashtbl.mem id_of s) then missing := Some s else add_sink s (n_defs + k))
        outputs;
      (match !missing with
      | Some s -> Error (Printf.sprintf "undefined signal %s" s)
      | None ->
          let nets =
            List.filter_map
              (fun s ->
                match Hashtbl.find_opt sinks s with
                | Some l when l <> [] ->
                    Some
                      {
                        Netlist.driver = Hashtbl.find id_of s;
                        sinks = Array.of_list (List.rev l);
                      }
                | _ -> None)
              order
          in
          let pad_ids =
            List.filteri (fun i _ -> kinds.(i) = Netlist.Input_pad) (List.init n_defs Fun.id)
            @ List.init (List.length outputs) (fun k -> n_defs + k)
          in
          let pad_positions =
            List.combine pad_ids (pad_ring_positions chip (List.length pad_ids))
          in
          (match Netlist.make ~name ~kinds ~nets:(Array.of_list nets) ~pad_positions with
          | nl -> Ok nl
          | exception Invalid_argument m -> Error m))

let read_file ~chip path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string ~name:(Filename.remove_extension (Filename.basename path)) ~chip text

let to_string netlist =
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "# %s\n" (Netlist.name netlist));
  let sig_of c = Printf.sprintf "G%d" c in
  let n = Netlist.n_cells netlist in
  for c = 0 to n - 1 do
    if Netlist.kind netlist c = Netlist.Input_pad then
      Buffer.add_string b (Printf.sprintf "INPUT(%s)\n" (sig_of c))
  done;
  for c = 0 to n - 1 do
    if Netlist.kind netlist c = Netlist.Output_pad then begin
      match Netlist.fanin_nets netlist c with
      | ni :: _ -> Buffer.add_string b
          (Printf.sprintf "OUTPUT(%s)\n" (sig_of (Netlist.net netlist ni).Netlist.driver))
      | [] -> ()
    end
  done;
  for c = 0 to n - 1 do
    let fanins =
      List.map (fun ni -> sig_of (Netlist.net netlist ni).Netlist.driver)
        (List.rev (Netlist.fanin_nets netlist c))
    in
    match Netlist.kind netlist c with
    | Netlist.Logic when fanins <> [] ->
        Buffer.add_string b
          (Printf.sprintf "%s = AND(%s)\n" (sig_of c) (String.concat ", " fanins))
    | Netlist.Flipflop when fanins <> [] ->
        Buffer.add_string b
          (Printf.sprintf "%s = DFF(%s)\n" (sig_of c) (String.concat ", " fanins))
    | _ -> ()
  done;
  Buffer.contents b

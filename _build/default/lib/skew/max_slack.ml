type result = { skews : float array; slack : float }

let normalize skews =
  let lo = Array.fold_left Float.min infinity skews in
  if lo = infinity then skews else Array.map (fun s -> s -. lo) skews

let feasible_skews problem ~slack =
  let g = Skew_problem.constraint_graph problem ~slack in
  Rc_graph.Shortest_path.feasible_potentials g

let solve_graph ?(tolerance = 1e-3) problem =
  let hi0 = Skew_problem.slack_upper_bound problem in
  if hi0 = infinity then
    (* no pairs: any schedule works, slack unbounded — report zero skews
       with the trivial bound *)
    Some { skews = Array.make problem.Skew_problem.n 0.0; slack = infinity }
  else begin
    match feasible_skews problem ~slack:hi0 with
    | Some p -> Some { skews = normalize p; slack = hi0 }
    | None ->
        (* find a feasible lower bracket by doubling downward *)
        let rec find_lo lo attempts =
          if attempts = 0 then None
          else
            match feasible_skews problem ~slack:lo with
            | Some p -> Some (lo, p)
            | None -> find_lo (lo -. (2.0 *. (hi0 -. lo) +. 1.0)) (attempts - 1)
        in
        (match find_lo (Float.min 0.0 hi0) 64 with
        | None -> None
        | Some (lo0, p0) ->
            let lo = ref lo0 and hi = ref hi0 and best = ref p0 in
            while !hi -. !lo > tolerance do
              let mid = 0.5 *. (!lo +. !hi) in
              match feasible_skews problem ~slack:mid with
              | Some p ->
                  best := p;
                  lo := mid
              | None -> hi := mid
            done;
            Some { skews = normalize !best; slack = !lo })
  end

let solve_lp problem =
  let open Rc_lp in
  let p = Problem.create () in
  let n = problem.Skew_problem.n in
  let t_vars = Array.init n (fun _ -> Problem.add_var p) in
  let m_var = Problem.add_var ~obj:(-1.0) p in
  List.iter
    (fun { Skew_problem.i; j; d_max; d_min } ->
      ignore
        (Problem.add_row p
           [ (t_vars.(i), 1.0); (t_vars.(j), -1.0); (m_var, 1.0) ]
           Problem.Le
           (problem.Skew_problem.period -. d_max -. problem.Skew_problem.t_setup));
      ignore
        (Problem.add_row p
           [ (t_vars.(i), 1.0); (t_vars.(j), -1.0); (m_var, -1.0) ]
           Problem.Ge
           (problem.Skew_problem.t_hold -. d_min)))
    problem.Skew_problem.pairs;
  (* anchor one flip-flop to pin down the free translation *)
  if n > 0 then ignore (Problem.add_row p [ (t_vars.(0), 1.0) ] Problem.Eq 0.0);
  (* slack is bounded by the two-cycle bound, keep the LP bounded *)
  let ub = Skew_problem.slack_upper_bound problem in
  if Float.is_finite ub then Problem.set_bounds p m_var ~lo:neg_infinity ~hi:ub;
  match Simplex.solve p with
  | { Simplex.status = Simplex.Optimal; x; _ } ->
      let skews = normalize (Array.map (fun v -> x.(v)) t_vars) in
      Some { skews; slack = x.(m_var) }
  | { Simplex.status = Simplex.Unbounded; _ } ->
      Some { skews = Array.make n 0.0; slack = infinity }
  | _ -> None

let zero_skew_slack problem =
  List.fold_left
    (fun acc { Skew_problem.d_max; d_min; _ } ->
      Float.min acc
        (Float.min
           (problem.Skew_problem.period -. d_max -. problem.Skew_problem.t_setup)
           (d_min -. problem.Skew_problem.t_hold)))
    infinity problem.Skew_problem.pairs

(** The shared input of all skew-scheduling formulations: sequentially
    adjacent pairs with their extreme combinational delays, plus the
    clocking constants. Flip-flops are indexed [0 .. n-1] (dense — the
    caller maps cell ids to this range). *)

type pair = {
  i : int;  (** Launching flip-flop index. *)
  j : int;  (** Capturing flip-flop index. [i = j] (a state register
                feeding itself) is allowed — the skew terms cancel and
                the pair becomes a pure bound on the slack. *)
  d_max : float;  (** Slowest path i→j, ps. *)
  d_min : float;  (** Fastest path i→j, ps. *)
}

type t = {
  n : int;  (** Number of flip-flops. *)
  pairs : pair list;
  period : float;  (** Clock period T, ps. *)
  t_setup : float;
  t_hold : float;
}

val make :
  n:int -> pairs:pair list -> period:float -> t_setup:float -> t_hold:float -> t
(** @raise Invalid_argument on out-of-range indices or
    [d_min > d_max]. *)

val constraint_graph : t -> slack:float -> Rc_graph.Digraph.t
(** The difference-constraint graph at a given slack [M]: an edge
    [u → v] of weight [w] encodes [t̂_v ≤ t̂_u + w]. Constraint (6)
    contributes the setup edge [j → i] with weight
    [T − D_max − t_setup − M]; constraint (7) the hold edge [i → j]
    with weight [D_min − t_hold − M]. *)

val check : t -> slack:float -> skews:float array -> bool
(** Verify that a skew assignment satisfies every long- and short-path
    constraint at slack [M] (with 1e-6 tolerance). *)

val slack_upper_bound : t -> float
(** The two-cycle bound: [min over pairs of
    (T − D_max − t_setup + D_min − t_hold) / 2] — no schedule can beat
    it (cycling constraint (6) and (7) of one pair). [infinity] when
    there are no pairs. *)

(** Stage-2 skew scheduling: Fishburn's max-slack formulation (Eq. 5-7).

    Two interchangeable engines are provided. The graph engine binary-
    searches the slack [M] with a Bellman-Ford feasibility oracle on the
    difference-constraint graph — this is the scalable path ([23], [24]
    solve the same problem by graph means). The LP engine states the
    formulation verbatim over the simplex and is used to cross-validate
    the graph engine on small instances. *)

type result = {
  skews : float array;  (** Clock-delay target t̂ per flip-flop, min-normalized to 0. *)
  slack : float;  (** The achieved M. *)
}

val solve_graph : ?tolerance:float -> Skew_problem.t -> result option
(** Binary search on M (default tolerance 1e-3 ps). [None] when even
    arbitrarily negative slack admits no schedule (a combinational
    constraint cycle is structurally infeasible — cannot happen for
    [d_min ≤ d_max] inputs with a finite two-cycle bound). *)

val solve_lp : Skew_problem.t -> result option
(** The same optimum via the LP [max M]. Intended for small problems
    (the basis is dense). *)

val zero_skew_slack : Skew_problem.t -> float
(** The slack of the trivial all-zero schedule:
    [min(T − D_max − t_setup, D_min − t_hold)] over pairs — the baseline
    that optimization improves on. *)

(** Stage-4 cost-driven skew scheduling (Section VII).

    After flip-flops are assigned to rings, delay targets are re-chosen
    so that each flip-flop's tapping point can sit at the ring point [c]
    nearest to it, shrinking the tapping stub. Per flip-flop [i] the
    inputs are the clock delay [t_c] at its nearest ring point and the
    stub delay [t_ci] of the shortest stub; the achievable ideal is
    [t_i = t_c + t_ci].

    Two formulations from the paper:

    - min-max: minimize Δ subject to the timing constraints at a
      prespecified slack M and, per flip-flop,
      [t_c + 2·t_ci − t̂_i ≤ Δ] and [t̂_i − t_c ≤ Δ]
      (equivalent to [|t_i − t̂_i| + t_ci ≤ Δ]). Solved by binary search
      on Δ over the Bellman-Ford oracle (scalable) or by LP.

    - weighted-sum: minimize [Σ w_i·δ_i] with [δ_i ≥ |t̂_i − t_i|],
      natural weights [w_i = l_i] (stub length). Solved by LP. *)

type anchor = {
  t_c : float;  (** Clock delay at the nearest ring point, ps. *)
  t_ci : float;  (** Stub delay from that point to the flip-flop, ps. *)
  weight : float;  (** w_i for the weighted formulation (e.g. l_i). *)
}

type result = {
  skews : float array;  (** New delay targets t̂. *)
  objective : float;  (** Δ for min-max; Σ w·δ for weighted-sum. *)
}

val solve_minmax_graph :
  ?tolerance:float -> Skew_problem.t -> slack:float -> anchors:anchor array -> result option
(** Binary search on Δ. [None] if the timing constraints alone are
    infeasible at the given slack. @raise Invalid_argument if the anchor
    array size differs from the problem size. *)

val solve_minmax_lp :
  Skew_problem.t -> slack:float -> anchors:anchor array -> result option
(** Same optimum by LP (small instances / cross-validation). *)

val solve_weighted_lp :
  Skew_problem.t -> slack:float -> anchors:anchor array -> result option
(** The weighted-sum formulation by LP. Each flip-flop's ideal is
    [t_c + t_ci]; deviations are charged [weight·|t̂_i − ideal_i|]. *)

val solve_weighted_mcf :
  Skew_problem.t -> slack:float -> anchors:anchor array -> result option
(** The weighted-sum formulation solved exactly through its network
    dual: minimizing [Σ w_i·|t̂_i − ideal_i|] over difference constraints
    is the LP dual of a min-cost circulation in which every constraint
    becomes an uncapacitated arc (cost = its bound) and every flip-flop
    a pair of arcs to a reference node (capacity [w_i], cost [∓ideal_i]).
    Negative arcs are canceled by pre-saturation and the residual
    transportation problem is solved by successive shortest paths; the
    schedule is read back from Bellman-Ford potentials of the optimal
    residual network. Scales to the full benchmarks where the LP engine
    cannot (weights are quantized to integer capacities — 1 µm
    resolution). [None] when the timing constraints are infeasible at
    the given slack. *)

val refine_toward_anchors :
  ?sweeps:int ->
  Skew_problem.t ->
  slack:float ->
  anchors:anchor array ->
  skews:float array ->
  float array
(** Large-scale polish for the min-max solution: coordinate descent on
    [Σ w_i·|t̂_i − ideal_i|] over the difference-constraint polytope.
    Starting from a feasible schedule, each sweep moves every target to
    the point of its current feasible interval closest to its ideal
    [t_c + t_ci] — monotone, feasibility-preserving, and linear-time per
    sweep. Returns the refined schedule (the input array is not
    modified). Defaults to 8 sweeps. *)

(** Permissible skew ranges [4]: for each sequentially adjacent pair
    [i ↦ j], the interval of skews [t̂_i − t̂_j] that keeps both the
    long-path (setup) and short-path (hold) constraints satisfied at a
    given slack. The paper's introduction frames clock-period limits in
    terms of these ranges — a higher clock period widens them — and the
    safety margin of a schedule is how far each realized skew sits from
    its range boundaries. *)

type range = {
  pr_i : int;  (** Launching flip-flop. *)
  pr_j : int;  (** Capturing flip-flop. *)
  lo : float;  (** Minimum permissible skew t̂_i − t̂_j, ps. *)
  hi : float;  (** Maximum permissible skew, ps. *)
}

val ranges : ?slack:float -> Skew_problem.t -> range list
(** One range per pair ([slack] defaults to 0):
    [lo = M + t_hold − D_min], [hi = T − D_max − t_setup − M].
    Self-pairs give the degenerate range around zero. *)

val width : range -> float
(** [hi − lo]; negative when the pair is unsatisfiable at this slack. *)

val margin : range -> skews:float array -> float
(** Distance of the realized skew from the nearer boundary (negative if
    violated). *)

val min_margin : ?slack:float -> Skew_problem.t -> skews:float array -> float
(** The schedule's worst margin over all pairs — the safety metric that
    process variation erodes. [infinity] with no pairs. *)

val histogram_widths : ?slack:float -> Skew_problem.t -> bins:int -> (float * int) array
(** Distribution of range widths — summarizes how much scheduling
    freedom a circuit offers at a period. *)

type range = { pr_i : int; pr_j : int; lo : float; hi : float }

let ranges ?(slack = 0.0) (p : Skew_problem.t) =
  List.map
    (fun { Skew_problem.i; j; d_max; d_min } ->
      {
        pr_i = i;
        pr_j = j;
        lo = slack +. p.Skew_problem.t_hold -. d_min;
        hi = p.Skew_problem.period -. d_max -. p.Skew_problem.t_setup -. slack;
      })
    p.Skew_problem.pairs

let width r = r.hi -. r.lo

let margin r ~skews =
  let s = skews.(r.pr_i) -. skews.(r.pr_j) in
  Float.min (s -. r.lo) (r.hi -. s)

let min_margin ?slack p ~skews =
  List.fold_left (fun acc r -> Float.min acc (margin r ~skews)) infinity (ranges ?slack p)

let histogram_widths ?slack p ~bins =
  let ws = Array.of_list (List.map width (ranges ?slack p)) in
  if Array.length ws = 0 then [||] else Rc_util.Stats.histogram ws ~bins

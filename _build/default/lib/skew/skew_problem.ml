type pair = { i : int; j : int; d_max : float; d_min : float }

type t = {
  n : int;
  pairs : pair list;
  period : float;
  t_setup : float;
  t_hold : float;
}

let make ~n ~pairs ~period ~t_setup ~t_hold =
  if n < 0 then invalid_arg "Skew_problem.make: negative n";
  List.iter
    (fun { i; j; d_max; d_min } ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Skew_problem.make: pair index out of range";
      if d_min > d_max +. 1e-9 then invalid_arg "Skew_problem.make: d_min > d_max")
    pairs;
  { n; pairs; period; t_setup; t_hold }

let constraint_graph t ~slack =
  let g = Rc_graph.Digraph.create t.n in
  List.iter
    (fun { i; j; d_max; d_min } ->
      (* (6)  t̂_i − t̂_j ≤ T − D_max − t_setup − M  :  edge j → i *)
      Rc_graph.Digraph.add_edge g j i (t.period -. d_max -. t.t_setup -. slack);
      (* (7)  t̂_j − t̂_i ≤ D_min − t_hold − M       :  edge i → j *)
      Rc_graph.Digraph.add_edge g i j (d_min -. t.t_hold -. slack))
    t.pairs;
  g

let check t ~slack ~skews =
  Array.length skews = t.n
  && List.for_all
       (fun { i; j; d_max; d_min } ->
         skews.(i) -. skews.(j) +. slack <= t.period -. d_max -. t.t_setup +. 1e-6
         && skews.(i) -. skews.(j) >= slack +. t.t_hold -. d_min -. 1e-6)
       t.pairs

let slack_upper_bound t =
  List.fold_left
    (fun acc { i; j; d_max; d_min } ->
      if i = j then
        (* a flip-flop feeding itself constrains M directly: t̂ cancels *)
        Float.min acc
          (Float.min (t.period -. d_max -. t.t_setup) (d_min -. t.t_hold))
      else Float.min acc ((t.period -. d_max -. t.t_setup +. d_min -. t.t_hold) /. 2.0))
    infinity t.pairs

lib/skew/permissible.mli: Skew_problem

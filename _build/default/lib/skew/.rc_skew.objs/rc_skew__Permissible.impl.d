lib/skew/permissible.ml: Array Float List Rc_util Skew_problem

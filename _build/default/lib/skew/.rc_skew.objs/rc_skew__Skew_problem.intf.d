lib/skew/skew_problem.mli: Rc_graph

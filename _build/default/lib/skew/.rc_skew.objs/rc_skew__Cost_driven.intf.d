lib/skew/cost_driven.mli: Skew_problem

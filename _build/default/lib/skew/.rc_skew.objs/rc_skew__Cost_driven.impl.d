lib/skew/cost_driven.ml: Array Either Float List Problem Rc_graph Rc_lp Rc_netflow Simplex Skew_problem

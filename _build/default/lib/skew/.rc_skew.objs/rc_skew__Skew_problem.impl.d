lib/skew/skew_problem.ml: Array Float List Rc_graph

lib/skew/max_slack.mli: Skew_problem

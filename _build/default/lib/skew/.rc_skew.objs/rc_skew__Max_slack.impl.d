lib/skew/max_slack.ml: Array Float List Problem Rc_graph Rc_lp Simplex Skew_problem

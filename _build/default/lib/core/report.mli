(** Plain-text table rendering for the experiment harness — fixed-width
    columns in the style of the paper's tables. *)

type align = L | R

val render :
  title:string -> header:string list -> ?aligns:align list -> string list list -> string
(** [render ~title ~header rows] lays the rows out under the header with
    column widths fitted to content. [aligns] defaults to right-aligned
    everywhere except the first column. *)

val fmt_f : ?dp:int -> float -> string
(** Fixed-point float with [dp] decimals (default 1); dashes for NaN. *)

val fmt_pct : float -> string
(** Signed percentage with one decimal, e.g. [+4.2%]; dashes for NaN. *)

val pct_improvement : from:float -> to_:float -> float
(** [(from - to_) / from * 100] — positive when [to_] is smaller
    (an improvement in the paper's sign convention). *)

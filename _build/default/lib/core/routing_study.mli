(** Routability check of a flow result: global-route the signal nets and
    the clock tapping stubs, and report routed wirelength against the
    HPWL and Steiner estimates plus the congestion picture. The paper
    reports wirelength as its cost metric; this closes the loop from
    estimated to routed wire. *)

type result = {
  signal_routed : float;  (** Routed signal wire, µm. *)
  signal_hpwl : float;
  signal_steiner : float;
  clock_routed : float;  (** Routed tapping stubs, µm. *)
  clock_estimate : float;  (** The flow's stub-length total. *)
  overflow : int;  (** Unresolved over-capacity track count. *)
  max_congestion : float;  (** Peak usage/capacity ratio. *)
  report : string;
}

val run : ?nx:int -> ?ny:int -> ?capacity:int -> Flow.outcome -> result
(** Grid defaults: 32×32 g-cells, 48 tracks per boundary. *)

(** The introduction's three-way comparison, quantified on our layouts:
    conventional zero-skew tree vs clock mesh [11] vs rotary clocking —
    clock wirelength, switched capacitance, dynamic power (Eq. 8), and
    Monte-Carlo skew spread. The mesh achieves low skew variation at a
    large switched-capacitance cost; the rotary design gets both low
    variation (short stubs + phase-locked rings) and low switched
    capacitance (the ring energy recirculates). *)

type row = {
  scheme : string;
  clock_wire : float;  (** Switched clock wire, µm (ring metal excluded — it recirculates). *)
  clock_cap : float;  (** Switched capacitance, fF. *)
  clock_power : float;  (** mW at α = 1. *)
  skew_spread : float;  (** Monte-Carlo mean worst spread, ps. *)
  extra : string;  (** Scheme-specific note. *)
}

val run :
  ?model:Rc_variation.Variation.model -> Flow.outcome -> row list * string
(** Evaluate all three schemes over the outcome's flip-flops. The mesh uses a
    realistic ~100 µm pitch (dense grids are how meshes achieve low skew). *)

lib/core/bench_suite.ml: List Rc_geom Rc_netlist

lib/core/experiments.mli: Bench_suite Flow Rc_assign

lib/core/bench_suite.mli: Rc_netlist

lib/core/routing_study.ml: Array Bench_suite Float Flow Printf Rc_assign Rc_netlist Rc_place Rc_rotary Rc_route

lib/core/clocking_compare.mli: Flow Rc_variation

lib/core/flow.mli: Bench_suite Rc_assign Rc_geom Rc_netlist Rc_rotary Rc_skew Rc_tech Rc_timing

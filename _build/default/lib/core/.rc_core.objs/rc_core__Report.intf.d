lib/core/report.mli:

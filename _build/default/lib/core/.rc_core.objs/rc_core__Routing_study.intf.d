lib/core/routing_study.mli: Flow

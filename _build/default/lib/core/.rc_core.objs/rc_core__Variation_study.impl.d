lib/core/variation_study.ml: Array Float Flow Rc_assign Rc_ctree Rc_geom Rc_rotary Rc_tech Rc_variation

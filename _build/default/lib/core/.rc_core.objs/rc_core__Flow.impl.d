lib/core/flow.ml: Array Bench_suite Float List Point Rc_assign Rc_geom Rc_netlist Rc_place Rc_power Rc_rotary Rc_skew Rc_tech Rc_timing Rc_util Ring Ring_array Tapping

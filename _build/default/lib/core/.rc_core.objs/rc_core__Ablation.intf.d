lib/core/ablation.mli: Bench_suite

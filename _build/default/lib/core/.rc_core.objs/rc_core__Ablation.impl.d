lib/core/ablation.ml: Array Bench_suite Flow List Option Printf Rc_assign Rc_netlist Rc_place Rc_rotary Rc_skew Rc_tech Rc_timing Rc_util Report String

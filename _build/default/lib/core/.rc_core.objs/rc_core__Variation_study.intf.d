lib/core/variation_study.mli: Flow Rc_variation

lib/core/ring_sweep.ml: Array Bench_suite Flow List Rc_rotary Report

lib/core/experiments.ml: Array Bench_suite Buffer Float Flow List Option Printf Rc_assign Rc_ctree Rc_geom Rc_ilp Rc_netlist Rc_place Rc_power Rc_rotary Rc_skew Rc_tech Rc_timing Report

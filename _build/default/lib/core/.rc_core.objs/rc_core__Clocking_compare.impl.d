lib/core/clocking_compare.ml: Array Bench_suite Float Flow List Printf Rc_ctree Rc_geom Rc_netlist Rc_power Rc_rotary Rc_tech Rc_variation Report Variation_study

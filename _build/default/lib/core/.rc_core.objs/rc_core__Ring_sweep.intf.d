lib/core/ring_sweep.mli: Bench_suite Flow

type result = {
  tree : Rc_variation.Variation.summary;
  rotary : Rc_variation.Variation.summary;
  report : string;
}

let run ?(model = Rc_variation.Variation.default_model) (o : Flow.outcome) =
  let tech = o.Flow.cfg.Flow.tech in
  let ffs, _ = Flow.ff_index o.Flow.netlist in
  let sinks =
    Array.to_list
      (Array.map (fun c -> (o.Flow.positions.(c), tech.Rc_tech.Tech.c_ff)) ffs)
  in
  let ctree = Rc_ctree.Ctree.build tech ~sinks in
  let tree = Rc_variation.Variation.tree_skew model ctree in
  let rotary_sinks =
    Array.mapi
      (fun i (tap : Rc_rotary.Tapping.tap) ->
        let ring =
          Rc_rotary.Ring_array.ring o.Flow.rings
            o.Flow.assignment.Rc_assign.Assign.ring_of_ff.(i)
        in
        (* the variation-exposed on-ring path is the travel from the
           nearest phase-locking junction (a ring corner, where abutting
           rings couple and average) to the tap *)
        let side = Rc_geom.Rect.width ring.Rc_rotary.Ring.rect in
        let arc_in_side = Float.rem tap.Rc_rotary.Tapping.arc side in
        let to_corner = Float.min arc_in_side (side -. arc_in_side) in
        {
          Rc_variation.Variation.ring_delay = Rc_rotary.Ring.rho ring *. to_corner;
          stub_delay = Rc_rotary.Tapping.stub_delay tech tap.Rc_rotary.Tapping.wirelength;
        })
      o.Flow.assignment.Rc_assign.Assign.taps
  in
  let rotary = Rc_variation.Variation.rotary_skew model rotary_sinks in
  { tree; rotary; report = Rc_variation.Variation.compare_report ~tree ~rotary }

(** Ring-count exploration — the paper's second future-work extension
    (Section IX): the formulations take the number of rotary rings as an
    input; sweeping it and picking the best completed flow turns it into
    a decision variable. Fewer rings mean longer stubs (the array is
    coarser); more rings mean more ring metal and smaller per-ring
    capacity — the sweep exposes the trade-off. *)

type point = {
  grid : int;  (** g, for a g×g array. *)
  n_rings : int;
  final : Flow.snapshot;  (** End-of-flow metrics at this ring count. *)
  slack : float;  (** Stage-2 slack (unchanged by the ring count). *)
  ring_metal : float;  (** Total ring conductor length, µm (2 conductors). *)
}

val sweep :
  ?mode:Flow.mode -> Bench_suite.bench -> grids:int list -> point list * point
(** Run the full flow once per grid size and return all points plus the
    winner by total wirelength including ring metal.
    @raise Invalid_argument on an empty grid list. *)

val report : point list * point -> string
(** Render the sweep as a table. *)

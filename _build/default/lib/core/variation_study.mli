(** The motivating comparison of Section I, run on our own layouts:
    skew variability of a conventional zero-skew tree vs the rotary
    design the flow produced, under the same Monte-Carlo wire-variation
    model. *)

type result = {
  tree : Rc_variation.Variation.summary;
  rotary : Rc_variation.Variation.summary;
  report : string;
}

val run :
  ?model:Rc_variation.Variation.model -> Flow.outcome -> result
(** Build a zero-skew tree over the outcome's flip-flop positions,
    extract the rotary sinks from the outcome's taps, and run both
    Monte-Carlo analyses. *)

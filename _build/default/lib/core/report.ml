type align = L | R

let fmt_f ?(dp = 1) v =
  if Float.is_nan v then "--"
  else if Float.is_integer v && Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" dp v

let fmt_pct v = if Float.is_nan v then "--" else Printf.sprintf "%+.1f%%" v

let pct_improvement ~from ~to_ =
  if Float.abs from < 1e-300 then nan else (from -. to_) /. from *. 100.0

let render ~title ~header ?aligns rows =
  let ncols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Report.render: ragged row")
    rows;
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> ncols then invalid_arg "Report.render: aligns length";
        a
    | None -> List.mapi (fun i _ -> if i = 0 then L else R) header
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | L -> s ^ String.make gap ' '
    | R -> String.make gap ' ' ^ s
  in
  let line cells =
    let padded = List.mapi (fun i c -> pad (List.nth aligns i) widths.(i) c) cells in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

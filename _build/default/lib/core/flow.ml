open Rc_geom
open Rc_rotary

type mode = Netflow | Ilp

type config = {
  tech : Rc_tech.Tech.t;
  bench : Bench_suite.bench;
  mode : mode;
  candidates : int;
  capacity_slack : float;
  max_iterations : int;
  pseudo_weight : float;
  pseudo_growth : float;
  stability : float;
  slack_fraction : float;
  use_weighted_skew : bool;
  convergence_tol : float;
  detail_passes : int;
  tapping_weight : float;
}

let default_config ?(mode = Netflow) bench =
  {
    tech = Rc_tech.Tech.default;
    bench;
    mode;
    candidates = 6;
    capacity_slack = 3.0;
    max_iterations = 5;
    pseudo_weight = 0.08;
    pseudo_growth = 1.8;
    stability = 0.004;
    slack_fraction = 0.5;
    use_weighted_skew = false;
    convergence_tol = 0.002;
    detail_passes = 0;
    tapping_weight = 8.0;
  }

(* Beyond-paper configuration: detailed-placement refinement after the
   global placement, and a direct relocate-and-heal stage 6 instead of
   pseudo-net springs in a quadratic re-solve. *)
let improved_config ?mode bench =
  { (default_config ?mode bench) with detail_passes = 3; pseudo_weight = 0.35 }

type snapshot = {
  iteration : int;
  afd : float;
  tapping_wl : float;
  signal_wl : float;
  total_wl : float;
  clock_mw : float;
  signal_mw : float;
  total_mw : float;
  max_load_ff : float;
}

type outcome = {
  cfg : config;
  netlist : Rc_netlist.Netlist.t;
  rings : Ring_array.t;
  base : snapshot;
  final : snapshot;
  history : snapshot list;
  positions : Point.t array;
  assignment : Rc_assign.Assign.t;
  skews : float array;
  slack : float;
  stage4_slack : float;
  n_pairs : int;
  ilp_stats : Rc_assign.Assign.ilp_stats option;
  cpu_flow_s : float;
  cpu_placer_s : float;
}

let ff_index netlist =
  let ffs = Rc_netlist.Netlist.flip_flops netlist in
  let index = Array.make (Rc_netlist.Netlist.n_cells netlist) (-1) in
  Array.iteri (fun i c -> index.(c) <- i) ffs;
  (ffs, fun c -> index.(c))

let skew_problem_of_sta tech netlist sta =
  let _, idx = ff_index netlist in
  let pairs =
    List.map
      (fun (a : Rc_timing.Sta.adjacency) ->
        {
          Rc_skew.Skew_problem.i = idx a.Rc_timing.Sta.src_ff;
          j = idx a.Rc_timing.Sta.dst_ff;
          d_max = a.Rc_timing.Sta.d_max;
          d_min = a.Rc_timing.Sta.d_min;
        })
      (Rc_timing.Sta.adjacencies sta)
  in
  Rc_skew.Skew_problem.make
    ~n:(Rc_netlist.Netlist.n_ffs netlist)
    ~pairs ~period:tech.Rc_tech.Tech.clock_period ~t_setup:tech.Rc_tech.Tech.t_setup
    ~t_hold:tech.Rc_tech.Tech.t_hold

let anchors_of_assignment tech rings assignment ~ff_positions ~skews =
  let period = Ring_array.period rings in
  Array.mapi
    (fun i pos ->
      let ring = Ring_array.ring rings assignment.Rc_assign.Assign.ring_of_ff.(i) in
      let l_i = Ring.closest_boundary_distance ring pos in
      let arc = Ring.arc_of_point ring pos in
      let t_ci = Tapping.stub_delay tech l_i in
      (* pick the conductor and whole-period shift that land t_c nearest
         to the current target *)
      let representative conductor =
        let tc = Ring.delay_at ring ~arc ~conductor in
        let k = Float.round ((skews.(i) -. tc) /. period) in
        tc +. (k *. period)
      in
      let t_outer = representative Ring.Outer and t_inner = representative Ring.Inner in
      let t_c =
        if Float.abs (skews.(i) -. t_outer) <= Float.abs (skews.(i) -. t_inner) then t_outer
        else t_inner
      in
      { Rc_skew.Cost_driven.t_c; t_ci; weight = l_i })
    ff_positions

let take_snapshot cfg netlist positions (assignment : Rc_assign.Assign.t) ~iteration =
  let tech = cfg.tech in
  let n_ffs = Rc_netlist.Netlist.n_ffs netlist in
  let tapping_wl = assignment.Rc_assign.Assign.total_cost in
  let signal_wl = Rc_place.Wirelength.total netlist positions in
  let clock_mw = Rc_power.Power.clock_power_mw tech ~tapping_wirelength:tapping_wl ~n_ffs in
  let signal_mw = Rc_power.Power.signal_power_mw tech netlist positions in
  {
    iteration;
    afd = (if n_ffs = 0 then 0.0 else tapping_wl /. float_of_int n_ffs);
    tapping_wl;
    signal_wl;
    total_wl = tapping_wl +. signal_wl;
    clock_mw;
    signal_mw;
    total_mw = clock_mw +. signal_mw;
    max_load_ff = assignment.Rc_assign.Assign.max_load;
  }

let run_on cfg netlist =
  let tech = cfg.tech in
  let bench = cfg.bench in
  let chip = bench.Bench_suite.gen.Rc_netlist.Generator.chip in
  let rings =
    Ring_array.create ~period:tech.Rc_tech.Tech.clock_period ~chip
      ~grid:bench.Bench_suite.ring_grid ()
  in
  let ffs, _ = ff_index netlist in
  let n_ffs = Array.length ffs in
  let cpu_placer = ref 0.0 and cpu_flow = ref 0.0 in
  (* stage 1: initial placement (global + detailed refinement) *)
  let init, t_place =
    Rc_util.Timer.time (fun () ->
        let global = Rc_place.Qplace.initial netlist ~chip in
        if cfg.detail_passes > 0 then
          fst
            (Rc_place.Detail.refine ~max_passes:cfg.detail_passes netlist ~chip ~site:10.0
               global.Rc_place.Qplace.positions)
        else global.Rc_place.Qplace.positions)
  in
  cpu_placer := !cpu_placer +. t_place;
  let positions = ref init in
  (* stage 2: max-slack scheduling *)
  let (problem0, schedule), t_sched =
    Rc_util.Timer.time (fun () ->
        let sta = Rc_timing.Sta.analyze tech netlist ~positions:!positions in
        let problem = skew_problem_of_sta tech netlist sta in
        match Rc_skew.Max_slack.solve_graph problem with
        | Some s -> (problem, s)
        | None -> failwith "Flow.run: max-slack scheduling infeasible")
  in
  cpu_flow := !cpu_flow +. t_sched;
  let slack_star = schedule.Rc_skew.Max_slack.slack in
  let stage4_slack =
    if Float.is_finite slack_star then cfg.slack_fraction *. Float.max slack_star 0.0 else 0.0
  in
  let skews = ref schedule.Rc_skew.Max_slack.skews in
  let n_pairs = List.length problem0.Rc_skew.Skew_problem.pairs in
  let ff_positions () = Array.map (fun c -> !positions.(c)) ffs in
  (* stage 3 runner *)
  let ilp_stats = ref None in
  let assign () =
    match cfg.mode with
    | Netflow ->
        let capacities =
          Ring_array.default_capacities rings ~n_ffs ~slack:cfg.capacity_slack
        in
        Rc_assign.Assign.by_netflow ~candidates:cfg.candidates ~capacities tech rings
          ~ff_positions:(ff_positions ()) ~targets:!skews
    | Ilp ->
        let a, st =
          Rc_assign.Assign.by_ilp ~candidates:cfg.candidates tech rings
            ~ff_positions:(ff_positions ()) ~targets:!skews
        in
        ilp_stats := Some st;
        a
  in
  let (assignment0 : Rc_assign.Assign.t), t_assign = Rc_util.Timer.time assign in
  cpu_flow := !cpu_flow +. t_assign;
  let assignment = ref assignment0 in
  let base = take_snapshot cfg netlist !positions assignment0 ~iteration:0 in
  let history = ref [ base ] in
  (* stage-5 objective: weighted sum of tapping and signal wirelength *)
  let cost_of snap = snap.signal_wl +. (cfg.tapping_weight *. snap.tapping_wl) in
  let current_cost = ref (cost_of base) in
  (* stage 5 keeps the best state seen so a regressing last iteration
     cannot ship *)
  let best_total = ref (cost_of base) in
  let best_positions = ref !positions
  and best_skews = ref !skews
  and best_assignment = ref assignment0 in
  let remember snap =
    if cost_of snap < !best_total then begin
      best_total := cost_of snap;
      best_positions := !positions;
      best_skews := !skews;
      best_assignment := !assignment
    end
  in
  (* stage 4-6 iterations *)
  let iter = ref 0 and converged = ref false in
  while (not !converged) && !iter < cfg.max_iterations do
    incr iter;
    let (), t_iter =
      Rc_util.Timer.time (fun () ->
          (* stage 4: cost-driven skew scheduling on fresh timing *)
          let sta = Rc_timing.Sta.analyze tech netlist ~positions:!positions in
          let problem = skew_problem_of_sta tech netlist sta in
          let anchors =
            anchors_of_assignment tech rings !assignment ~ff_positions:(ff_positions ())
              ~skews:!skews
          in
          let scheduled =
            if cfg.use_weighted_skew then
              Rc_skew.Cost_driven.solve_weighted_mcf problem ~slack:stage4_slack ~anchors
            else Rc_skew.Cost_driven.solve_minmax_graph problem ~slack:stage4_slack ~anchors
          in
          (match scheduled with
          | Some r ->
              (* polish the extreme-point schedule: pull every target as
                 close to its anchor as the constraints allow *)
              skews :=
                Rc_skew.Cost_driven.refine_toward_anchors problem ~slack:stage4_slack ~anchors
                  ~skews:r.Rc_skew.Cost_driven.skews
          | None -> ());
          (* re-assign with the new targets *)
          assignment := assign ())
    in
    cpu_flow := !cpu_flow +. t_iter;
    (* stage 5: evaluate *)
    let snap = take_snapshot cfg netlist !positions !assignment ~iteration:!iter in
    history := snap :: !history;
    remember snap;
    let improvement = (!current_cost -. cost_of snap) /. Float.max !current_cost 1.0 in
    current_cost := Float.min !current_cost (cost_of snap);
    if improvement < cfg.convergence_tol && !iter > 1 then converged := true
    else if !iter < cfg.max_iterations then begin
      (* stage 6: incremental placement with pseudo-nets to tap points *)
      let weight = cfg.pseudo_weight *. (cfg.pseudo_growth ** float_of_int (!iter - 1)) in
      let pseudo =
        Array.to_list
          (Array.mapi
             (fun i cell ->
               {
                 Rc_place.Qplace.cell;
                 anchor = !assignment.Rc_assign.Assign.taps.(i).Tapping.point;
                 weight;
               })
             ffs)
      in
      let inc, t_inc =
        Rc_util.Timer.time (fun () ->
            if cfg.detail_passes > 0 then begin
              (* minimal disturbance: step flip-flops toward their taps
                 and heal the logic around them with flip-flops frozen,
                 preserving the refined placement's quality *)
              let moved =
                Rc_place.Qplace.relocate netlist ~chip ~site:10.0 ~prev:!positions ~pseudo
              in
              fst
                (Rc_place.Detail.refine ~max_passes:cfg.detail_passes
                   ~frozen:(Rc_netlist.Netlist.is_ff netlist) netlist ~chip ~site:10.0 moved)
            end
            else
              (Rc_place.Qplace.incremental ~stability:cfg.stability netlist ~chip
                 ~prev:!positions ~pseudo)
                .Rc_place.Qplace.positions)
      in
      cpu_placer := !cpu_placer +. t_inc;
      positions := inc
    end
  done;
  (* final evaluation after the last movement *)
  let (last_assignment : Rc_assign.Assign.t), t_final = Rc_util.Timer.time assign in
  cpu_flow := !cpu_flow +. t_final;
  assignment := last_assignment;
  let last = take_snapshot cfg netlist !positions last_assignment ~iteration:(!iter + 1) in
  remember last;
  (* ship the best state stage 5 saw *)
  positions := !best_positions;
  skews := !best_skews;
  assignment := !best_assignment;
  let final_assignment = !best_assignment in
  let final = { (take_snapshot cfg netlist !positions final_assignment ~iteration:(!iter + 1)) with iteration = !iter + 1 } in
  {
    cfg;
    netlist;
    rings;
    base;
    final;
    history = List.rev (final :: !history);
    positions = !positions;
    assignment = final_assignment;
    skews = !skews;
    slack = slack_star;
    stage4_slack;
    n_pairs;
    ilp_stats = !ilp_stats;
    cpu_flow_s = !cpu_flow;
    cpu_placer_s = !cpu_placer;
  }

let run cfg = run_on cfg (Rc_netlist.Generator.generate cfg.bench.Bench_suite.gen)

type point = {
  grid : int;
  n_rings : int;
  final : Flow.snapshot;
  slack : float;
  ring_metal : float;
}

let sweep ?(mode = Flow.Netflow) bench ~grids =
  if grids = [] then invalid_arg "Ring_sweep.sweep: no grids";
  let points =
    List.map
      (fun grid ->
        let b = { bench with Bench_suite.ring_grid = grid } in
        let o = Flow.run (Flow.default_config ~mode b) in
        let ring_metal =
          Array.fold_left
            (fun acc r -> acc +. (2.0 *. Rc_rotary.Ring.perimeter r))
            0.0
            (Rc_rotary.Ring_array.rings o.Flow.rings)
        in
        {
          grid;
          n_rings = grid * grid;
          final = o.Flow.final;
          slack = o.Flow.slack;
          ring_metal;
        })
      grids
  in
  let best =
    List.fold_left
      (fun acc p ->
        if p.final.Flow.total_wl +. p.ring_metal < acc.final.Flow.total_wl +. acc.ring_metal
        then p
        else acc)
      (List.hd points) (List.tl points)
  in
  (points, best)

let report (points, best) =
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.grid ^ "x" ^ string_of_int p.grid
          ^ (if p.grid = best.grid then " *" else "");
          string_of_int p.n_rings;
          Report.fmt_f ~dp:1 p.final.Flow.afd;
          Report.fmt_f ~dp:0 p.final.Flow.tapping_wl;
          Report.fmt_f ~dp:0 p.final.Flow.signal_wl;
          Report.fmt_f ~dp:0 p.ring_metal;
          Report.fmt_f ~dp:0 (p.final.Flow.total_wl +. p.ring_metal);
          Report.fmt_f ~dp:2 p.final.Flow.total_mw;
        ])
      points
  in
  Report.render ~title:"Ring-count sweep (* = best by total wire incl. ring metal)"
    ~header:[ "Array"; "#Rings"; "AFD"; "Tap WL"; "Signal WL"; "Ring metal"; "Total"; "Power(mW)" ]
    rows

lib/viz/svg.ml: Buffer Point Printf Rc_geom Rect

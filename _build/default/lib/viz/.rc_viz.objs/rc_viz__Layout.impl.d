lib/viz/layout.ml: Array List Point Printf Rc_geom Rc_netlist Rc_rotary Rect Svg

lib/viz/svg.mli: Rc_geom

lib/viz/layout.mli: Rc_geom Rc_netlist Rc_rotary

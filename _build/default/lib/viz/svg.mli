(** Minimal SVG emission — enough to draw placements, ring arrays and
    tapping stubs. Coordinates are in the chip's micrometer frame; the
    document flips the y axis so the origin sits bottom-left like a
    layout viewer. *)

type t

val create : ?margin:float -> width:float -> height:float -> unit -> t
(** A drawing surface covering [0,width] × [0,height] µm. *)

val line :
  t -> ?stroke:string -> ?width:float -> ?dash:string -> Rc_geom.Point.t -> Rc_geom.Point.t -> unit

val rect :
  t -> ?stroke:string -> ?fill:string -> ?width:float -> Rc_geom.Rect.t -> unit

val circle : t -> ?fill:string -> ?r:float -> Rc_geom.Point.t -> unit

val square_marker : t -> ?fill:string -> ?half:float -> Rc_geom.Point.t -> unit
(** A small filled square centered at the point (flip-flop marker). *)

val text : t -> ?size:float -> ?fill:string -> Rc_geom.Point.t -> string -> unit

val to_string : t -> string
(** The complete SVG document. *)

val write : t -> string -> unit
(** Write the document to a file. *)

open Rc_geom

type t = {
  width : float;
  height : float;
  margin : float;
  buf : Buffer.t;
}

let create ?(margin = 20.0) ~width ~height () =
  { width; height; margin; buf = Buffer.create 4096 }

(* layout viewers put the origin bottom-left; SVG is top-left *)
let tx t (p : Point.t) = p.Point.x +. t.margin
let ty t (p : Point.t) = t.height -. p.Point.y +. t.margin

let line t ?(stroke = "#444") ?(width = 1.0) ?dash (a : Point.t) (b : Point.t) =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"%.2f\"%s/>\n"
       (tx t a) (ty t a) (tx t b) (ty t b) stroke width
       (match dash with None -> "" | Some d -> Printf.sprintf " stroke-dasharray=\"%s\"" d))

let rect t ?(stroke = "#222") ?(fill = "none") ?(width = 1.0) (r : Rect.t) =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" stroke=\"%s\" fill=\"%s\" stroke-width=\"%.2f\"/>\n"
       (r.Rect.xmin +. t.margin)
       (t.height -. r.Rect.ymax +. t.margin)
       (Rect.width r) (Rect.height r) stroke fill width)

let circle t ?(fill = "#1f77b4") ?(r = 2.0) (p : Point.t) =
  Buffer.add_string t.buf
    (Printf.sprintf "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"/>\n" (tx t p) (ty t p)
       r fill)

let square_marker t ?(fill = "#d62728") ?(half = 4.0) (p : Point.t) =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\"/>\n"
       (tx t p -. half) (ty t p -. half) (2.0 *. half) (2.0 *. half) fill)

let text t ?(size = 14.0) ?(fill = "#000") (p : Point.t) s =
  Buffer.add_string t.buf
    (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%.1f\" fill=\"%s\">%s</text>\n"
       (tx t p) (ty t p) size fill s)

let to_string t =
  let w = t.width +. (2.0 *. t.margin) and h = t.height +. (2.0 *. t.margin) in
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
     <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n\
     <rect width=\"%.0f\" height=\"%.0f\" fill=\"white\"/>\n%s</svg>\n"
    w h w h w h (Buffer.contents t.buf)

let write t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

(** Layout rendering: placement + rotary ring array + tapping stubs as a
    single SVG — the picture Fig. 1(b) sketches, drawn from real flow
    data. *)

val render :
  ?show_cells:bool ->
  ?show_taps:bool ->
  chip:Rc_geom.Rect.t ->
  netlist:Rc_netlist.Netlist.t ->
  positions:Rc_geom.Point.t array ->
  rings:Rc_rotary.Ring_array.t ->
  taps:(int * Rc_rotary.Tapping.tap) list ->
  unit ->
  string
(** SVG document: die outline, logic cells (dots), flip-flops (squares),
    rings (nested square pair per ring, arrows omitted), and a stub line
    from each flip-flop cell id to its tapping point ([taps] pairs cell
    ids with taps). *)

val write :
  ?show_cells:bool ->
  ?show_taps:bool ->
  path:string ->
  chip:Rc_geom.Rect.t ->
  netlist:Rc_netlist.Netlist.t ->
  positions:Rc_geom.Point.t array ->
  rings:Rc_rotary.Ring_array.t ->
  taps:(int * Rc_rotary.Tapping.tap) list ->
  unit ->
  unit

open Rc_geom

let render ?(show_cells = true) ?(show_taps = true) ~chip ~netlist ~positions ~rings ~taps () =
  let svg = Svg.create ~width:(Rect.width chip) ~height:(Rect.height chip) () in
  Svg.rect svg ~stroke:"#000" ~width:2.0 chip;
  (* rings: the differential pair drawn as two nested squares *)
  Array.iter
    (fun (r : Rc_rotary.Ring.t) ->
      Svg.rect svg ~stroke:"#2ca02c" ~width:2.0 r.Rc_rotary.Ring.rect;
      Svg.rect svg ~stroke:"#98df8a" ~width:1.0 (Rect.expand r.Rc_rotary.Ring.rect (-6.0)))
    (Rc_rotary.Ring_array.rings rings);
  (* cells *)
  if show_cells then
    for c = 0 to Rc_netlist.Netlist.n_cells netlist - 1 do
      match Rc_netlist.Netlist.kind netlist c with
      | Rc_netlist.Netlist.Logic -> Svg.circle svg ~fill:"#9ecae1" ~r:1.5 positions.(c)
      | Rc_netlist.Netlist.Flipflop -> ()
      | _ -> Svg.circle svg ~fill:"#7f7f7f" ~r:2.5 (Rc_netlist.Netlist.pad_position netlist c)
    done;
  (* tapping stubs then flip-flop markers on top *)
  if show_taps then
    List.iter
      (fun (cell, (tap : Rc_rotary.Tapping.tap)) ->
        Svg.line svg ~stroke:"#d62728" ~width:1.2 positions.(cell) tap.Rc_rotary.Tapping.point;
        Svg.circle svg ~fill:"#2ca02c" ~r:2.5 tap.Rc_rotary.Tapping.point)
      taps;
  Array.iter
    (fun c -> Svg.square_marker svg ~fill:"#d62728" ~half:3.0 positions.(c))
    (Rc_netlist.Netlist.flip_flops netlist);
  Svg.text svg ~size:24.0
    (Point.make 10.0 (Rect.height chip -. 10.0))
    (Printf.sprintf "%s: %d cells, %d FFs, %d rings" (Rc_netlist.Netlist.name netlist)
       (Rc_netlist.Netlist.n_cells netlist)
       (Rc_netlist.Netlist.n_ffs netlist)
       (Rc_rotary.Ring_array.n_rings rings));
  Svg.to_string svg

let write ?show_cells ?show_taps ~path ~chip ~netlist ~positions ~rings ~taps () =
  let doc = render ?show_cells ?show_taps ~chip ~netlist ~positions ~rings ~taps () in
  let oc = open_out path in
  output_string oc doc;
  close_out oc

lib/power/power.ml: Array Rc_netlist Rc_place Rc_tech Tech

lib/power/power.mli: Rc_geom Rc_netlist Rc_tech

lib/power/activity.mli: Rc_geom Rc_netlist Rc_tech

lib/power/activity.ml: Array Float Int64 List Netlist Option Power Rc_graph Rc_netlist Rc_place Rc_tech Rc_util

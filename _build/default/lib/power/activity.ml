open Rc_netlist

type gate = Gand | Gnand | Gor | Gnor | Gxor | Gnot

type t = {
  prob : float array;  (* per cell: probability its output is 1 *)
  act : float array;  (* per cell: switching activity of its output *)
  drivers : int list;  (* cells that drive a net *)
  settled : bool;
}

let default_gate_of seed c =
  match (Rc_util.Rng.bits64 (Rc_util.Rng.create ((c * 31) + seed)) |> Int64.to_int) land 3 with
  | 0 -> Gnand
  | 1 -> Gnor
  | 2 -> Gand
  | _ -> Gxor

let eval_gate gate inputs =
  let p_and = List.fold_left ( *. ) 1.0 inputs in
  let p_or = 1.0 -. List.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 inputs in
  match (gate, inputs) with
  | _, [] -> 0.5
  | Gnot, p :: _ -> 1.0 -. p
  | Gand, _ -> p_and
  | Gnand, _ -> 1.0 -. p_and
  | Gor, _ -> p_or
  | Gnor, _ -> 1.0 -. p_or
  | Gxor, ps ->
      List.fold_left (fun acc p -> (acc *. (1.0 -. p)) +. ((1.0 -. acc) *. p)) 0.0 ps

let estimate ?(seed = 11) ?(iterations = 30) ?gate_of netlist =
  let n = Netlist.n_cells netlist in
  let gate_of = Option.value gate_of ~default:(default_gate_of seed) in
  let prob = Array.make n 0.5 in
  (* topological order of the logic cells (sources excluded) *)
  let g = Rc_graph.Digraph.create n in
  Netlist.iter_nets netlist (fun _ net ->
      if Netlist.kind netlist net.Netlist.driver = Logic then
        Array.iter
          (fun s -> if Netlist.kind netlist s = Logic then Rc_graph.Digraph.add_edge g net.Netlist.driver s 1.0)
          net.Netlist.sinks);
  let order =
    match Rc_graph.Dag.topological_order g with
    | Some o -> Array.to_list o
    | None -> invalid_arg "Activity.estimate: combinational cycle"
  in
  let inputs_of c =
    List.filter_map
      (fun ni ->
        let net = Netlist.net netlist ni in
        Some prob.(net.Netlist.driver))
      (Netlist.fanin_nets netlist c)
  in
  let propagate_logic () =
    List.iter
      (fun c ->
        if Netlist.kind netlist c = Logic then prob.(c) <- eval_gate (gate_of c) (inputs_of c))
      order
  in
  (* sequential fixpoint: FF output next cycle = its D-input probability *)
  let settled = ref false in
  let iter = ref 0 in
  propagate_logic ();
  while (not !settled) && !iter < iterations do
    incr iter;
    let delta = ref 0.0 in
    Array.iter
      (fun f ->
        match inputs_of f with
        | d :: _ ->
            delta := Float.max !delta (Float.abs (prob.(f) -. d));
            (* damping stabilizes oscillating loops *)
            prob.(f) <- (0.5 *. prob.(f)) +. (0.5 *. d)
        | [] -> ())
      (Netlist.flip_flops netlist);
    propagate_logic ();
    if !delta < 1e-4 then settled := true
  done;
  let act = Array.map (fun p -> 2.0 *. p *. (1.0 -. p)) prob in
  let drivers = ref [] in
  for c = n - 1 downto 0 do
    if Netlist.driver_net netlist c >= 0 then drivers := c :: !drivers
  done;
  { prob; act; drivers = !drivers; settled = !settled }

let probability t c = t.prob.(c)
let activity t c = t.act.(c)

let mean_activity t =
  match t.drivers with
  | [] -> 0.0
  | l -> List.fold_left (fun acc c -> acc +. t.act.(c)) 0.0 l /. float_of_int (List.length l)

let converged t = t.settled

let signal_power_mw tech netlist positions t =
  let acc = ref 0.0 in
  Netlist.iter_nets netlist (fun ni net ->
      let len = Rc_place.Wirelength.net_star_length netlist positions ni in
      let cap = ref (tech.Rc_tech.Tech.c_wire *. len) in
      cap :=
        !cap
        +. float_of_int (Power.estimated_buffers tech ~length:len) *. tech.Rc_tech.Tech.buffer_c_in;
      Array.iter
        (fun s ->
          match Netlist.kind netlist s with
          | Flipflop -> cap := !cap +. tech.Rc_tech.Tech.c_ff
          | Logic -> cap := !cap +. tech.Rc_tech.Tech.c_gate
          | _ -> ())
        net.Netlist.sinks;
      acc := !acc +. Power.dynamic_mw tech ~alpha:t.act.(net.Netlist.driver) ~cap_ff:!cap);
  !acc

(** Switching-activity estimation by signal-probability propagation.

    The paper sets a flat α = 0.15 on signal nets (citing [30]); this
    module computes per-net activities instead: each logic cell gets a
    Boolean function (the netlist is function-less, so functions are
    assigned deterministically per cell unless provided), signal
    probabilities propagate through the combinational DAG under the
    usual independence approximation, flip-flop outputs iterate to a
    fixpoint around the sequential loops, and the per-cycle switching
    activity of a net is [2·p·(1−p)] (temporal-independence model). *)

type gate = Gand | Gnand | Gor | Gnor | Gxor | Gnot

type t

val estimate :
  ?seed:int ->
  ?iterations:int ->
  ?gate_of:(int -> gate) ->
  Rc_netlist.Netlist.t ->
  t
(** Compute probabilities and activities. [gate_of] overrides the
    deterministic per-cell function assignment; [iterations] (default
    30) bounds the sequential fixpoint; primary inputs are p = 0.5. *)

val probability : t -> int -> float
(** Probability that the cell's output is 1. *)

val activity : t -> int -> float
(** Per-cycle switching activity of the cell's output net, in [0, 0.5]. *)

val mean_activity : t -> float
(** Average activity over driving cells — comparable to the paper's
    flat 0.15. *)

val converged : t -> bool
(** Whether the sequential fixpoint settled within the iteration budget. *)

val signal_power_mw :
  Rc_tech.Tech.t -> Rc_netlist.Netlist.t -> Rc_geom.Point.t array -> t -> float
(** Signal-net dynamic power with per-net activities in place of the
    flat [alpha_signal]. *)

(** Power models of Section VIII.

    Dynamic power follows Eq. 8: [P = ½·α·V_dd²·f_clk·C_load], with
    α = 1 for the clock net and α = 0.15 for signal nets [30]. The
    clock-net load of a rotary design is the tapping stubs plus the
    flip-flop clock pins — the ring's own charge recirculates, which is
    the technology's selling point. Signal-net load is interconnect plus
    logic input pins plus estimated repeaters ([31]-style length-based
    estimate). Leakage follows Eq. 9 and is unaffected by this flow. *)

val dynamic_mw : Rc_tech.Tech.t -> alpha:float -> cap_ff:float -> float
(** Eq. 8 for a given switched capacitance (fF), result in mW. *)

val clock_power_mw : Rc_tech.Tech.t -> tapping_wirelength:float -> n_ffs:int -> float
(** Clock-net dynamic power: stub wire capacitance over the total
    tapping wirelength (µm) plus [n_ffs] flip-flop clock pins, α = 1. *)

val estimated_buffers : Rc_tech.Tech.t -> length:float -> int
(** Repeaters inserted on a net of routed length [length] µm: one per
    [buffer_interval] beyond the first. *)

val signal_cap_ff :
  Rc_tech.Tech.t -> Rc_netlist.Netlist.t -> Rc_geom.Point.t array -> float
(** Total signal-net capacitance: star-routed interconnect + sink input
    pins + estimated repeaters, fF. *)

val signal_power_mw :
  Rc_tech.Tech.t -> Rc_netlist.Netlist.t -> Rc_geom.Point.t array -> float
(** Signal-net dynamic power at α = [alpha_signal]. *)

val leakage_mw :
  Rc_tech.Tech.t -> i_off_na:float -> total_inverter_size:float -> n_ffs:int ->
  ff_gate_size:float -> float
(** Eq. 9: [V_dd·I_off·(S + N_F·S_F)] with [I_off] in nA per unit size. *)

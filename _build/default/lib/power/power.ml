open Rc_tech

(* ½·α·V²·f·C — with C in fF and f in GHz this is
   0.5·α·V²·(f·1e9)·(C·1e-15) W = 0.5·α·V²·f·C·1e-6 W = 0.5·α·V²·f·C·1e-3 mW. *)
let dynamic_mw tech ~alpha ~cap_ff =
  0.5 *. alpha *. tech.Tech.vdd *. tech.Tech.vdd *. Tech.f_clk_ghz tech *. cap_ff *. 1e-3

let clock_power_mw tech ~tapping_wirelength ~n_ffs =
  let cap =
    (tech.Tech.c_wire *. tapping_wirelength) +. (float_of_int n_ffs *. tech.Tech.c_ff)
  in
  dynamic_mw tech ~alpha:tech.Tech.alpha_clock ~cap_ff:cap

let estimated_buffers tech ~length =
  if length <= 0.0 then 0 else int_of_float (length /. tech.Tech.buffer_interval)

let signal_cap_ff tech netlist positions =
  let acc = ref 0.0 in
  Rc_netlist.Netlist.iter_nets netlist (fun ni net ->
      let len = Rc_place.Wirelength.net_star_length netlist positions ni in
      acc := !acc +. (tech.Tech.c_wire *. len);
      acc := !acc +. (float_of_int (estimated_buffers tech ~length:len) *. tech.Tech.buffer_c_in);
      Array.iter
        (fun s ->
          match Rc_netlist.Netlist.kind netlist s with
          | Rc_netlist.Netlist.Flipflop -> acc := !acc +. tech.Tech.c_ff
          | Rc_netlist.Netlist.Logic -> acc := !acc +. tech.Tech.c_gate
          | _ -> ())
        net.Rc_netlist.Netlist.sinks);
  !acc

let signal_power_mw tech netlist positions =
  dynamic_mw tech ~alpha:tech.Tech.alpha_signal ~cap_ff:(signal_cap_ff tech netlist positions)

(* V·I_off·(S + N_F·S_F): I_off in nA per unit width gives nW; report mW. *)
let leakage_mw tech ~i_off_na ~total_inverter_size ~n_ffs ~ff_gate_size =
  tech.Tech.vdd *. i_off_na
  *. (total_inverter_size +. (float_of_int n_ffs *. ff_gate_size))
  *. 1e-6

lib/timing/sta.ml: Array Elmore Float Hashtbl List Netlist Rc_graph Rc_netlist Rc_tech Rc_util

lib/timing/sta.mli: Rc_geom Rc_netlist Rc_tech

lib/timing/elmore.ml: Rc_geom Rc_netlist Rc_tech

lib/timing/buffering.mli: Rc_tech

lib/timing/buffering.ml: Float List Option Rc_tech

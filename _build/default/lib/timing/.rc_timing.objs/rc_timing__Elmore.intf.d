lib/timing/elmore.mli: Rc_geom Rc_netlist Rc_tech

type rctree =
  | Sink of { cap : float; tag : int }
  | Wire of { length : float; child : rctree }
  | Branch of rctree * rctree

type buffer = { t_intrinsic : float; r_out : float; c_in : float }

let default_buffer = { t_intrinsic = 30.0; r_out = 180.0; c_in = 12.0 }

type result = {
  buffered_delay : float;
  unbuffered_delay : float;
  n_buffers : int;
  driver_load : float;
}

(* A DP option: subtree seen from the current point upward. *)
type option_ = { cap : float; delay : float; buffers : int }

(* Pareto prune: sort by cap; keep strictly improving delay. *)
let prune options =
  let sorted = List.sort (fun a b -> compare (a.cap, a.delay) (b.cap, b.delay)) options in
  let rec go best_delay = function
    | [] -> []
    | o :: rest ->
        if o.delay < best_delay -. 1e-12 then o :: go o.delay rest else go best_delay rest
  in
  go infinity sorted

let optimize ?(buffer = default_buffer) ?(segment = 200.0) ?driver_r tech tree =
  if segment <= 0.0 then invalid_arg "Buffering.optimize: non-positive segment";
  let driver_r = Option.value driver_r ~default:buffer.r_out in
  let r = tech.Rc_tech.Tech.r_wire and c = tech.Rc_tech.Tech.c_wire in
  (* delay of a wire piece of length l driving downstream cap cd (ps) *)
  let wire_delay l cd = (r *. l *. ((0.5 *. c *. l) +. cd)) /. 1000.0 in
  let add_buffer o =
    {
      cap = buffer.c_in;
      delay = o.delay +. buffer.t_intrinsic +. (buffer.r_out *. o.cap /. 1000.0);
      buffers = o.buffers + 1;
    }
  in
  let with_buffer_choice options =
    prune (options @ List.map add_buffer options)
  in
  (* push options up through a wire, subdividing into candidate points *)
  let rec up_wire length options =
    if length <= 0.0 then options
    else begin
      let piece = Float.min segment length in
      let stepped =
        List.map
          (fun o -> { o with cap = o.cap +. (c *. piece); delay = o.delay +. wire_delay piece o.cap })
          options
      in
      up_wire (length -. piece) (with_buffer_choice stepped)
    end
  in
  let rec solve ?(allow_buffers = true) = function
    | Sink { cap; _ } -> [ { cap; delay = 0.0; buffers = 0 } ]
    | Wire { length; child } ->
        let below = solve ~allow_buffers child in
        if allow_buffers then up_wire length (with_buffer_choice below)
        else
          List.map
            (fun o ->
              { o with cap = o.cap +. (c *. length); delay = o.delay +. wire_delay length o.cap })
            below
    | Branch (a, b) ->
        let oa = solve ~allow_buffers a and ob = solve ~allow_buffers b in
        prune
          (List.concat_map
             (fun x ->
               List.map
                 (fun y ->
                   {
                     cap = x.cap +. y.cap;
                     delay = Float.max x.delay y.delay;
                     buffers = x.buffers + y.buffers;
                   })
                 ob)
             oa)
  in
  let finish options =
    List.fold_left
      (fun (bd, bo) o ->
        let total = o.delay +. (driver_r *. o.cap /. 1000.0) in
        if total < bd then (total, Some o) else (bd, bo))
      (infinity, None) options
  in
  let buffered = solve tree in
  let unbuffered = solve ~allow_buffers:false tree in
  match (finish buffered, finish unbuffered) with
  | (bd, Some bo), (ud, Some _) ->
      {
        buffered_delay = bd;
        unbuffered_delay = ud;
        n_buffers = bo.buffers;
        driver_load = bo.cap;
      }
  | _ -> invalid_arg "Buffering.optimize: empty tree"

let two_pin ~length ~load = Wire { length; child = Sink { cap = load; tag = 0 } }

(** Block-oriented static timing analysis over the placed netlist.

    Produces, for every sequentially adjacent flip-flop pair [i ↦ j]
    (combinational logic only between them), the maximum and minimum
    combinational path delays [D_max]/[D_min] that the skew-scheduling
    constraints (Eqs. 6–7) consume. Gate delays carry a deterministic
    per-cell variation factor so the max/min spread is realistic. *)

type adjacency = {
  src_ff : int;  (** Launching flip-flop (cell id). *)
  dst_ff : int;  (** Capturing flip-flop (cell id). *)
  d_max : float;  (** Slowest combinational path, ps. *)
  d_min : float;  (** Fastest combinational path, ps. *)
}

type t

val analyze :
  Rc_tech.Tech.t ->
  Rc_netlist.Netlist.t ->
  positions:Rc_geom.Point.t array ->
  t
(** Run STA with every cell at the given position (indexed by cell id).
    @raise Invalid_argument if positions are missing or combinational
    logic contains a cycle. *)

val adjacencies : t -> adjacency list
(** All sequentially adjacent pairs, each listed once. *)

val n_pairs : t -> int

val critical_delay : t -> float
(** Largest [d_max] over all pairs; 0. when there are no pairs. *)

val min_period_zero_skew : t -> tech:Rc_tech.Tech.t -> float
(** The smallest clock period feasible with zero skew:
    [max (d_max + t_setup)] — the reference point that skew scheduling
    improves on. *)

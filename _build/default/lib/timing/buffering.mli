(** Van Ginneken buffer insertion on RC trees.

    The paper estimates signal-net repeater counts with the
    floorplan-stage model of [31]; this module provides the exact
    reference: the classic dynamic program that, given a routed RC tree
    and a buffer library entry, chooses buffer positions minimizing the
    maximum driver-to-sink Elmore delay. Candidate positions subdivide
    every wire; option lists are pruned to their Pareto front
    (capacitance vs delay), which keeps the DP quadratic. *)

type rctree =
  | Sink of { cap : float  (** fF *); tag : int }
  | Wire of { length : float  (** µm *); child : rctree }
  | Branch of rctree * rctree

type buffer = {
  t_intrinsic : float;  (** Buffer intrinsic delay, ps. *)
  r_out : float;  (** Output resistance, Ω. *)
  c_in : float;  (** Input capacitance, fF. *)
}

val default_buffer : buffer
(** A mid-size repeater consistent with [Tech.default]. *)

type result = {
  buffered_delay : float;  (** Best achievable max source-sink delay, ps. *)
  unbuffered_delay : float;  (** The same tree with no buffers, ps. *)
  n_buffers : int;  (** Buffers used by the best option. *)
  driver_load : float;  (** Capacitance presented to the driver, fF. *)
}

val optimize :
  ?buffer:buffer ->
  ?segment:float ->
  ?driver_r:float ->
  Rc_tech.Tech.t ->
  rctree ->
  result
(** Run the DP. [segment] (default 200 µm) is the wire subdivision pitch
    that defines candidate positions; [driver_r] (default the buffer's
    [r_out]) models the net's driver for the final delay.
    @raise Invalid_argument on non-positive [segment] or an empty tree
    ([length <= 0] wires are fine). *)

val two_pin : length:float -> load:float -> rctree
(** Convenience: a single wire to one sink. *)

let wire_delay tech ~length ~load = Rc_tech.Tech.wire_elmore tech length load

let point_delay tech a b ~load =
  wire_delay tech ~length:(Rc_geom.Point.manhattan a b) ~load

let sink_load (tech : Rc_tech.Tech.t) netlist c =
  match Rc_netlist.Netlist.kind netlist c with
  | Rc_netlist.Netlist.Flipflop -> tech.Rc_tech.Tech.c_ff
  | Rc_netlist.Netlist.Logic -> tech.Rc_tech.Tech.c_gate
  | Rc_netlist.Netlist.Input_pad | Rc_netlist.Netlist.Output_pad ->
      tech.Rc_tech.Tech.buffer_c_in

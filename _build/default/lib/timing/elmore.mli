(** Elmore delay model [21] for point-to-point routed wires, the timing
    model the paper's static timing analyzer uses. *)

val wire_delay : Rc_tech.Tech.t -> length:float -> load:float -> float
(** Delay (ps) of a wire of the given Manhattan [length] (µm) driving a
    lumped [load] (fF) at the far end: ½rcl² + rl·C_load. *)

val point_delay :
  Rc_tech.Tech.t -> Rc_geom.Point.t -> Rc_geom.Point.t -> load:float -> float
(** {!wire_delay} over the Manhattan distance between two points. *)

val sink_load : Rc_tech.Tech.t -> Rc_netlist.Netlist.t -> int -> float
(** Input capacitance (fF) presented by a sink cell: [c_ff] for
    flip-flops, [c_gate] for logic, [buffer_c_in] for output pads. *)

(** Linear-program model builder.

    Problems are stated as: minimize [cᵀx] subject to per-row linear
    constraints (≤ / ≥ / =) and per-variable bounds. Variables default
    to free (unbounded both ways) with zero objective coefficient;
    maximization is expressed by negating the objective. *)

type sense = Le | Ge | Eq

type t

val create : unit -> t

val add_var : ?lo:float -> ?hi:float -> ?obj:float -> ?name:string -> t -> int
(** Add a variable and return its index. [lo] defaults to
    [neg_infinity], [hi] to [infinity], [obj] to 0.
    @raise Invalid_argument if [lo > hi]. *)

val add_vars : ?lo:float -> ?hi:float -> ?obj:float -> t -> int -> int
(** [add_vars t k] adds [k] identical variables, returning the index of
    the first (indices are contiguous). *)

val set_obj : t -> int -> float -> unit
(** Overwrite a variable's objective coefficient. *)

val set_bounds : t -> int -> lo:float -> hi:float -> unit

val add_row : t -> (int * float) list -> sense -> float -> int
(** [add_row t coeffs sense rhs] adds constraint
    [Σ coeff·var (sense) rhs] and returns the row index. Duplicate
    variable mentions in [coeffs] are summed.
    @raise Invalid_argument on out-of-range variable indices. *)

val n_vars : t -> int
val n_rows : t -> int

val var_lo : t -> int -> float
val var_hi : t -> int -> float
val var_obj : t -> int -> float
val var_name : t -> int -> string option

val row : t -> int -> (int * float) list * sense * float
(** The stored (deduplicated) form of a row. *)

val iter_rows : t -> (int -> (int * float) list -> sense -> float -> unit) -> unit

type sense = Le | Ge | Eq

type var = {
  mutable lo : float;
  mutable hi : float;
  mutable obj : float;
  name : string option;
}

type row = { coeffs : (int * float) list; sense : sense; rhs : float }

type t = {
  mutable vars : var array;
  mutable nv : int;
  mutable rows : row array;
  mutable nr : int;
}

let create () =
  {
    vars = Array.init 8 (fun _ -> { lo = neg_infinity; hi = infinity; obj = 0.0; name = None });
    nv = 0;
    rows = Array.make 8 { coeffs = []; sense = Eq; rhs = 0.0 };
    nr = 0;
  }

let ensure_var_capacity t =
  if t.nv = Array.length t.vars then begin
    let bigger =
      Array.init (2 * t.nv) (fun i ->
          if i < t.nv then t.vars.(i)
          else { lo = neg_infinity; hi = infinity; obj = 0.0; name = None })
    in
    t.vars <- bigger
  end

let add_var ?(lo = neg_infinity) ?(hi = infinity) ?(obj = 0.0) ?name t =
  if lo > hi then invalid_arg "Problem.add_var: lo > hi";
  ensure_var_capacity t;
  t.vars.(t.nv) <- { lo; hi; obj; name };
  t.nv <- t.nv + 1;
  t.nv - 1

let add_vars ?lo ?hi ?obj t k =
  if k <= 0 then invalid_arg "Problem.add_vars: k <= 0";
  let first = add_var ?lo ?hi ?obj t in
  for _ = 2 to k do
    ignore (add_var ?lo ?hi ?obj t)
  done;
  first

let check_var t j name =
  if j < 0 || j >= t.nv then invalid_arg ("Problem." ^ name ^ ": var out of range")

let set_obj t j v =
  check_var t j "set_obj";
  t.vars.(j).obj <- v

let set_bounds t j ~lo ~hi =
  check_var t j "set_bounds";
  if lo > hi then invalid_arg "Problem.set_bounds: lo > hi";
  t.vars.(j).lo <- lo;
  t.vars.(j).hi <- hi

let dedup coeffs =
  let tbl = Hashtbl.create (List.length coeffs) in
  List.iter
    (fun (j, v) ->
      let cur = Option.value (Hashtbl.find_opt tbl j) ~default:0.0 in
      Hashtbl.replace tbl j (cur +. v))
    coeffs;
  Hashtbl.fold (fun j v acc -> if v <> 0.0 then (j, v) :: acc else acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let add_row t coeffs sense rhs =
  List.iter (fun (j, _) -> check_var t j "add_row") coeffs;
  if t.nr = Array.length t.rows then begin
    let bigger =
      Array.init (2 * t.nr) (fun i ->
          if i < t.nr then t.rows.(i) else { coeffs = []; sense = Eq; rhs = 0.0 })
    in
    t.rows <- bigger
  end;
  t.rows.(t.nr) <- { coeffs = dedup coeffs; sense; rhs };
  t.nr <- t.nr + 1;
  t.nr - 1

let n_vars t = t.nv
let n_rows t = t.nr

let var_lo t j =
  check_var t j "var_lo";
  t.vars.(j).lo

let var_hi t j =
  check_var t j "var_hi";
  t.vars.(j).hi

let var_obj t j =
  check_var t j "var_obj";
  t.vars.(j).obj

let var_name t j =
  check_var t j "var_name";
  t.vars.(j).name

let row t i =
  if i < 0 || i >= t.nr then invalid_arg "Problem.row: out of range";
  let r = t.rows.(i) in
  (r.coeffs, r.sense, r.rhs)

let iter_rows t f =
  for i = 0 to t.nr - 1 do
    let r = t.rows.(i) in
    f i r.coeffs r.sense r.rhs
  done

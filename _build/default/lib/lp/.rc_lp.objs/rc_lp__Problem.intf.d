lib/lp/problem.mli:

lib/lp/simplex.ml: Array Float List Option Problem Rc_sparse

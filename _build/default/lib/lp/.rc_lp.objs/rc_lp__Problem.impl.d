lib/lp/problem.ml: Array Hashtbl List Option

(** Two-phase revised primal simplex with bounded variables.

    This is the LP engine behind the paper's LP-relaxation of the
    min-max load-capacitance ILP (Sec. VI) and the LP forms of skew
    scheduling (Sec. VII) — the role Soplex plays in the paper. The
    basis is kept as a dense LU factorization plus an eta file,
    refactorized periodically. *)

type status =
  | Optimal
  | Infeasible  (** Phase 1 could not drive artificials to zero. *)
  | Unbounded
  | Iteration_limit

type solution = {
  status : status;
  x : float array;  (** Structural variable values (valid for [Optimal]). *)
  objective : float;  (** [cᵀx] at the returned point. *)
  duals : float array;  (** One multiplier per row (valid for [Optimal]). *)
  iterations : int;
}

val solve : ?max_iter:int -> ?eps:float -> Problem.t -> solution
(** Solve a minimization problem. [eps] (default 1e-7) is the
    feasibility/optimality tolerance; [max_iter] defaults to
    [20000 + 50 * (rows + vars)]. *)

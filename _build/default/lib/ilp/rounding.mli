(** Greedy rounding of fractional assignment solutions (Fig. 5 of the
    paper): every item goes to the bin whose LP assignment variable is
    largest, which preserves the "each item in exactly one bin"
    feasibility row by construction and is linear in the number of
    nonzero LP values. *)

val greedy_round : n_items:int -> (int * int * float) list -> int array
(** [greedy_round ~n_items xlp] takes the nonzero LP values as
    [(item, bin, value)] triples and returns the chosen bin per item
    ([-1] for items that had no candidate at all). Already-integral
    items (value within 1e-6 of 1) keep their bin, per step 1.1 of the
    paper's procedure. Ties break toward the lower bin index. *)

val integrality_gap : ilp_objective:float -> lp_optimum:float -> float
(** Eq. 4: [SOLN(ILP) / OPT(LP)]. Returns [nan] when the LP optimum is
    zero and the ILP objective is not. *)

type limits = { max_nodes : int; max_seconds : float }

let default_limits = { max_nodes = 200_000; max_seconds = 60.0 }

type status = Proven_optimal | Feasible | No_solution | Ilp_infeasible

type outcome = {
  status : status;
  x : float array;
  objective : float;
  best_bound : float;
  nodes : int;
  elapsed_s : float;
}

type node = { bound : float; fixes : (int * float * float) list }

let integrality_eps = 1e-6


let solve ?(limits = default_limits) problem ~integer_vars =
  let timer = Rc_util.Timer.start () in
  let int_vars = Array.of_list integer_vars in
  let saved_bounds =
    Array.map (fun j -> (Rc_lp.Problem.var_lo problem j, Rc_lp.Problem.var_hi problem j)) int_vars
  in
  let restore () =
    Array.iteri
      (fun k j ->
        let lo, hi = saved_bounds.(k) in
        Rc_lp.Problem.set_bounds problem j ~lo ~hi)
      int_vars
  in
  let with_fixes fixes f =
    List.iter (fun (j, lo, hi) -> Rc_lp.Problem.set_bounds problem j ~lo ~hi) fixes;
    let r = f () in
    restore ();
    r
  in
  let relax fixes = with_fixes fixes (fun () -> Rc_lp.Simplex.solve problem) in
  let incumbent = ref None and incumbent_obj = ref infinity in
  let nodes = ref 0 in
  let queue = Rc_graph.Heap.create () in
  let root = relax [] in
  let final status best_bound =
    let x, objective =
      match !incumbent with Some x -> (x, !incumbent_obj) | None -> ([||], infinity)
    in
    { status; x; objective; best_bound; nodes = !nodes; elapsed_s = Rc_util.Timer.elapsed_s timer }
  in
  match root.Rc_lp.Simplex.status with
  | Rc_lp.Simplex.Infeasible -> final Ilp_infeasible infinity
  | Rc_lp.Simplex.Unbounded | Rc_lp.Simplex.Iteration_limit -> final No_solution neg_infinity
  | Rc_lp.Simplex.Optimal ->
      (* primal plunge heuristic (as generic MIP solvers run at the
         root): repeatedly fix near-integral variables to their rounded
         values and re-solve; an integral end point becomes the first
         incumbent. Sound because it only ever supplies incumbents — the
         tree search below remains a complete partition. *)
      let plunge_budget = 0.4 *. limits.max_seconds in
      let rec plunge sol fixes steps =
        if steps > 400 then ()
        else begin
          match sol.Rc_lp.Simplex.status with
          | Rc_lp.Simplex.Optimal ->
              let fractional =
                Array.to_list int_vars
                |> List.filter_map (fun j ->
                       let v = sol.Rc_lp.Simplex.x.(j) in
                       let frac = Float.abs (v -. Float.round v) in
                       if frac > integrality_eps then Some (j, v, frac) else None)
              in
              if fractional = [] then begin
                if sol.Rc_lp.Simplex.objective < !incumbent_obj then begin
                  incumbent := Some (Array.copy sol.Rc_lp.Simplex.x);
                  incumbent_obj := sol.Rc_lp.Simplex.objective
                end
              end
              else begin
                (* pin everything already close to integral, else the
                   least fractional variable, to its rounded value *)
                let close = List.filter (fun (_, _, f) -> f < 0.05) fractional in
                let to_fix =
                  if close <> [] then close
                  else
                    [ List.fold_left
                        (fun (bj, bv, bf) (j, v, f) ->
                          if f < bf then (j, v, f) else (bj, bv, bf))
                        (List.hd fractional) (List.tl fractional) ]
                in
                let new_fixes =
                  List.map (fun (j, v, _) -> (j, Float.round v, Float.round v)) to_fix
                  @ List.filter
                      (fun (j, _, _) -> not (List.exists (fun (k, _, _) -> k = j) to_fix))
                      fixes
                in
                if Rc_util.Timer.elapsed_s timer <= plunge_budget then
                  plunge (relax new_fixes) new_fixes (steps + 1)
              end
          | _ -> ()
        end
      in
      plunge root [] 0;
      Rc_graph.Heap.push queue root.Rc_lp.Simplex.objective
        { bound = root.Rc_lp.Simplex.objective; fixes = [] };
      (* until the first incumbent exists, dive depth-first (finds a
         feasible point after ~one fixing per fractional variable); then
         switch to best-first to prove optimality *)
      let dive_stack = ref [] in
      let truncated = ref false in
      let best_open_bound = ref root.Rc_lp.Simplex.objective in
      let pop_node () =
        if Option.is_none !incumbent then
          match !dive_stack with
          | n :: rest ->
              dive_stack := rest;
              Some (n.bound, n)
          | [] -> Rc_graph.Heap.pop_min queue
        else begin
          (* flush any leftover dive nodes into the best-first queue *)
          List.iter (fun n -> Rc_graph.Heap.push queue n.bound n) !dive_stack;
          dive_stack := [];
          Rc_graph.Heap.pop_min queue
        end
      in
      let rec search () =
        match pop_node () with
        | None -> ()
        | Some (_, node) ->
            (* the root LP is always a valid global lower bound; report it
               unless the search completes (then the incumbent is exact) *)
            if node.bound >= !incumbent_obj -. 1e-9 then
              (* best-first: every remaining node is no better, so the
                 incumbent is proven optimal *)
              Rc_graph.Heap.clear queue
            else if !nodes >= limits.max_nodes || Rc_util.Timer.elapsed_s timer > limits.max_seconds
            then truncated := true
            else begin
              incr nodes;
              let sol = relax node.fixes in
              (match sol.Rc_lp.Simplex.status with
              | Rc_lp.Simplex.Infeasible | Rc_lp.Simplex.Unbounded
              | Rc_lp.Simplex.Iteration_limit ->
                  ()
              | Rc_lp.Simplex.Optimal when sol.Rc_lp.Simplex.objective >= !incumbent_obj -. 1e-9
                ->
                  ()
              | Rc_lp.Simplex.Optimal -> (
                  (* most fractional integer variable *)
                  let branch_var = ref (-1) and worst = ref integrality_eps in
                  Array.iter
                    (fun j ->
                      let v = sol.Rc_lp.Simplex.x.(j) in
                      let frac = Float.abs (v -. Float.round v) in
                      if frac > !worst then begin
                        worst := frac;
                        branch_var := j
                      end)
                    int_vars;
                  if !branch_var < 0 then begin
                    (* integral: new incumbent *)
                    incumbent := Some (Array.copy sol.Rc_lp.Simplex.x);
                    incumbent_obj := sol.Rc_lp.Simplex.objective
                  end
                  else
                    let j = !branch_var in
                    let v = sol.Rc_lp.Simplex.x.(j) in
                    let jlo = Rc_lp.Problem.var_lo problem j
                    and jhi = Rc_lp.Problem.var_hi problem j in
                    (* child bounds intersected with any fixes already on j *)
                    let cur_lo, cur_hi =
                      List.fold_left
                        (fun (l, h) (k, lo, hi) -> if k = j then (lo, hi) else (l, h))
                        (jlo, jhi) node.fixes
                    in
                    let down = (j, cur_lo, Float.min cur_hi (Float.floor v)) in
                    let up = (j, Float.max cur_lo (Float.ceil v), cur_hi) in
                    let others = List.filter (fun (k, _, _) -> k <> j) node.fixes in
                    let child fix =
                      let _, lo, hi = fix in
                      if lo <= hi then begin
                        let n = { bound = sol.Rc_lp.Simplex.objective; fixes = fix :: others } in
                        if Option.is_none !incumbent then dive_stack := n :: !dive_stack
                        else Rc_graph.Heap.push queue n.bound n
                      end
                    in
                    (* push the up child first so the dive explores the
                       rounded-down branch before it *)
                    child up;
                    child down));
              search ()
            end
      in
      search ();
      let exhausted = Rc_graph.Heap.is_empty queue && !dive_stack = [] && not !truncated in
      let bound = if exhausted then !incumbent_obj else !best_open_bound in
      if Option.is_some !incumbent then
        if exhausted then final Proven_optimal bound else final Feasible bound
      else if !truncated then final No_solution bound
      else final Ilp_infeasible infinity

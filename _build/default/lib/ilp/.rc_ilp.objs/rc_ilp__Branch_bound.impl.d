lib/ilp/branch_bound.ml: Array Float List Option Rc_graph Rc_lp Rc_util

lib/ilp/rounding.mli:

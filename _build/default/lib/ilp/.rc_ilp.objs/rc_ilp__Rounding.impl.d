lib/ilp/rounding.ml: Array Float List

lib/ilp/branch_bound.mli: Rc_lp

(** Generic 0-1 / integer branch-and-bound over the [Rc_lp] simplex.

    Plays the role of the paper's "public domain ILP solver" (GLPK in
    Table I): an exact but slow baseline. The search is best-first on the
    LP bound, branching on the most fractional integer variable, and is
    stopped by node or wall-clock budgets — the paper did the same by
    capping GLPK at ten hours and reporting the incumbent. *)

type limits = {
  max_nodes : int;  (** Maximum explored B&B nodes. *)
  max_seconds : float;  (** Wall-clock budget. *)
}

val default_limits : limits
(** 200_000 nodes / 60 s. *)

type status =
  | Proven_optimal
  | Feasible  (** Search truncated with an incumbent in hand. *)
  | No_solution  (** Truncated (or exhausted) without any incumbent. *)
  | Ilp_infeasible  (** Root relaxation already infeasible. *)

type outcome = {
  status : status;
  x : float array;  (** Incumbent values (integral on integer vars). *)
  objective : float;  (** Incumbent objective; [infinity] when none. *)
  best_bound : float;  (** Global lower bound on the ILP optimum. *)
  nodes : int;
  elapsed_s : float;
}

val solve : ?limits:limits -> Rc_lp.Problem.t -> integer_vars:int list -> outcome
(** Minimize the problem with the listed variables required integral.
    Integer variables should carry finite bounds (0-1 in this paper). *)

lib/graph/shortest_path.ml: Array Digraph Either Fun Hashtbl Heap List Queue

lib/graph/dag.ml: Array Digraph List Option Queue

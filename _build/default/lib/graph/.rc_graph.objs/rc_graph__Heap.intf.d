lib/graph/heap.mli:

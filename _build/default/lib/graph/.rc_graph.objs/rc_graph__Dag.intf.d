lib/graph/dag.mli: Digraph

lib/graph/digraph.mli:

(** Single-source shortest paths.

    [dijkstra] requires non-negative weights (used on reduced costs in
    min-cost flow). [bellman_ford] accepts negative weights and detects
    negative cycles — the feasibility oracle of difference-constraint
    systems that underlies skew scheduling. *)

type result = {
  dist : float array;  (** [infinity] for unreachable vertices. *)
  pred : int array;  (** Predecessor vertex, [-1] at sources/unreached. *)
}

val dijkstra : Digraph.t -> source:int -> result
(** @raise Invalid_argument if any edge has negative weight. *)

val dijkstra_multi : Digraph.t -> sources:int list -> result
(** Shortest distance from the nearest of several sources. *)

val bellman_ford : Digraph.t -> sources:int list -> (result, int list) Either.t
(** [Left result] when no negative cycle is reachable; [Right cycle]
    returns the vertex list of one reachable negative cycle (in order). *)

val feasible_potentials : Digraph.t -> float array option
(** Solve the difference-constraint system where each edge [u -> v] of
    weight [w] encodes [p(v) <= p(u) + w]: runs Bellman-Ford from a
    virtual super-source connected to every vertex with weight 0 and
    returns the potentials, or [None] if a negative cycle makes the
    system infeasible. *)

val path_to : result -> int -> int list option
(** Reconstruct the source-to-vertex path from predecessor pointers;
    [None] when unreachable. *)

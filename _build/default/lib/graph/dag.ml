let topological_order g =
  let n = Digraph.n_vertices g in
  let deg = Digraph.in_degree g in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) deg;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!k) <- u;
    incr k;
    List.iter
      (fun (e : Digraph.edge) ->
        deg.(e.dst) <- deg.(e.dst) - 1;
        if deg.(e.dst) = 0 then Queue.add e.dst queue)
      (Digraph.out_edges g u)
  done;
  if !k = n then Some order else None

let is_acyclic g = Option.is_some (topological_order g)

let propagate g ~sources ~init ~better =
  match topological_order g with
  | None -> invalid_arg "Dag: graph is cyclic"
  | Some order ->
      let n = Digraph.n_vertices g in
      let dist = Array.make n init in
      List.iter (fun s -> dist.(s) <- 0.0) sources;
      Array.iter
        (fun u ->
          if dist.(u) <> init then
            List.iter
              (fun (e : Digraph.edge) ->
                let d = dist.(u) +. e.weight in
                if better d dist.(e.dst) then dist.(e.dst) <- d)
              (Digraph.out_edges g u))
        order;
      dist

let longest_from g ~sources =
  propagate g ~sources ~init:neg_infinity ~better:(fun a b -> a > b)

let shortest_from g ~sources =
  propagate g ~sources ~init:infinity ~better:(fun a b -> a < b)

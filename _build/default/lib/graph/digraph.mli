(** Weighted directed graphs over integer vertices [0 .. n-1].

    This is the workhorse for static timing (combinational DAGs), skew
    scheduling (difference-constraint graphs), and the min-cost-flow
    residual network. Edges carry a float weight and an arbitrary
    payload index so algorithms can report which edge they used. *)

type edge = { src : int; dst : int; weight : float; tag : int }

type t

val create : int -> t
(** [create n] is an empty graph on [n] vertices.
    @raise Invalid_argument if [n < 0]. *)

val n_vertices : t -> int
val n_edges : t -> int

val add_edge : ?tag:int -> t -> int -> int -> float -> unit
(** [add_edge g u v w] adds a directed edge [u -> v] of weight [w].
    Parallel edges are allowed. [tag] defaults to -1.
    @raise Invalid_argument on out-of-range vertices. *)

val out_edges : t -> int -> edge list
(** Outgoing edges of a vertex, in insertion order. *)

val iter_out : t -> int -> (edge -> unit) -> unit
(** Iterate a vertex's outgoing edges without allocating (reverse
    insertion order) — the hot path of the shortest-path solvers. *)

val iter_edges : t -> (edge -> unit) -> unit
(** Iterate over every edge once. *)

val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a

val in_degree : t -> int array
(** In-degree of every vertex (computed fresh on each call). *)

(** DAG algorithms for static timing analysis: topological order and
    longest/shortest path propagation from a set of launch vertices. *)

val topological_order : Digraph.t -> int array option
(** Kahn's algorithm; [None] if the graph has a directed cycle. *)

val is_acyclic : Digraph.t -> bool

val longest_from : Digraph.t -> sources:int list -> float array
(** Maximum path weight from any source to each vertex ([neg_infinity]
    when unreachable). @raise Invalid_argument on cyclic input. *)

val shortest_from : Digraph.t -> sources:int list -> float array
(** Minimum path weight from any source ([infinity] when unreachable).
    Weights may be negative — the graph must be acyclic.
    @raise Invalid_argument on cyclic input. *)

type 'a t = {
  mutable keys : float array;
  mutable vals : 'a option array;
  mutable n : int;
}

let create ?(capacity = 16) () =
  { keys = Array.make (max capacity 1) 0.0; vals = Array.make (max capacity 1) None; n = 0 }

let size h = h.n
let is_empty h = h.n = 0

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (2 * cap) 0.0 and vals = Array.make (2 * cap) None in
  Array.blit h.keys 0 keys 0 h.n;
  Array.blit h.vals 0 vals 0 h.n;
  h.keys <- keys;
  h.vals <- vals

let swap h i j =
  let k = h.keys.(i) and v = h.vals.(i) in
  h.keys.(i) <- h.keys.(j);
  h.vals.(i) <- h.vals.(j);
  h.keys.(j) <- k;
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if h.keys.(p) > h.keys.(i) then begin
      swap h i p;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.n && h.keys.(l) < h.keys.(i) then l else i in
  let m = if r < h.n && h.keys.(r) < h.keys.(m) then r else m in
  if m <> i then begin
    swap h i m;
    sift_down h m
  end

let push h key v =
  if h.n = Array.length h.keys then grow h;
  h.keys.(h.n) <- key;
  h.vals.(h.n) <- Some v;
  h.n <- h.n + 1;
  sift_up h (h.n - 1)

let pop_min h =
  if h.n = 0 then None
  else begin
    let k = h.keys.(0) and v = h.vals.(0) in
    h.n <- h.n - 1;
    h.keys.(0) <- h.keys.(h.n);
    h.vals.(0) <- h.vals.(h.n);
    h.vals.(h.n) <- None;
    if h.n > 0 then sift_down h 0;
    match v with Some v -> Some (k, v) | None -> assert false
  end

let peek_min h =
  if h.n = 0 then None
  else match h.vals.(0) with Some v -> Some (h.keys.(0), v) | None -> assert false

let clear h =
  Array.fill h.vals 0 h.n None;
  h.n <- 0

(** Binary min-heap keyed by floats, used by Dijkstra and the placer's
    legalizer. Stale-entry (lazy deletion) discipline is the caller's
    responsibility: [push] never updates an existing element. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the minimum-key entry, or [None] when empty. *)

val peek_min : 'a t -> (float * 'a) option
(** The minimum-key entry without removing it. *)

val clear : 'a t -> unit

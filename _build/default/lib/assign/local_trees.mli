(** Local tapping trees — the paper's first future-work extension
    (Section IX): instead of a dedicated stub per flip-flop, flip-flops
    assigned to the same ring whose delay targets are within a small
    tolerance share one tapping point driving a zero-skew subtree. The
    subtree delivers an equal delay to every member, so the tap solves
    Eq. 1 for the common target minus the tree's root-to-sink delay,
    with the whole subtree's capacitance as the stub load.

    The tolerance models the skew permissible range the paper says such
    a construction must respect: members' targets differ by at most
    [phase_tolerance], so each flip-flop's realized arrival is within
    half of it from its own target. *)

type group = {
  ring : int;
  members : int array;  (** Flip-flop indices sharing the tap. *)
  tap : Rc_rotary.Tapping.tap;  (** The shared tapping point. *)
  tree_wirelength : float;  (** Zero-skew subtree wire, µm (0 for singletons). *)
  tree_delay : float;  (** Root-to-sink Elmore delay of the subtree, ps. *)
  stub_load : float;  (** Capacitance hanging off the stub (tree + pins), fF. *)
  common_target : float;  (** The group's representative delay target, ps. *)
}

type t = {
  groups : group list;  (** Every flip-flop appears in exactly one group. *)
  total_wirelength : float;  (** Stubs + subtrees, µm. *)
  plain_wirelength : float;  (** The per-flip-flop stub total it replaces, µm. *)
  n_taps : int;  (** Tapping points used (≤ number of flip-flops). *)
}

val build :
  ?phase_tolerance:float ->
  Rc_tech.Tech.t ->
  Rc_rotary.Ring_array.t ->
  assignment:Assign.t ->
  ff_positions:Rc_geom.Point.t array ->
  targets:float array ->
  t
(** Group and re-tap an existing assignment. [phase_tolerance] defaults
    to 3 ps. The input assignment's taps provide [plain_wirelength] for
    comparison. *)

val max_phase_error : Rc_tech.Tech.t -> Rc_rotary.Ring_array.t -> t -> targets:float array -> float
(** Largest deviation (ps) between a member's own target and the arrival
    its group realizes — bounded by [phase_tolerance] up to the Eq. 1
    solve tolerance. *)

lib/assign/assign.mli: Rc_geom Rc_ilp Rc_rotary Rc_tech

lib/assign/local_trees.mli: Assign Rc_geom Rc_rotary Rc_tech

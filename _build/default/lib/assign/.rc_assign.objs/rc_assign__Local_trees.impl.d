lib/assign/local_trees.ml: Array Assign Float Hashtbl List Option Rc_ctree Rc_rotary Rc_tech Rc_util Ring Ring_array Tapping

lib/assign/assign.ml: Array Float List Problem Rc_ilp Rc_lp Rc_netflow Rc_rotary Rc_tech Rc_util Ring_array Tapping

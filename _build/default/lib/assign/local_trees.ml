open Rc_rotary

type group = {
  ring : int;
  members : int array;
  tap : Tapping.tap;
  tree_wirelength : float;
  tree_delay : float;
  stub_load : float;
  common_target : float;
}

type t = {
  groups : group list;
  total_wirelength : float;
  plain_wirelength : float;
  n_taps : int;
}

let build ?(phase_tolerance = 3.0) tech arr ~(assignment : Assign.t) ~ff_positions ~targets =
  let n = Array.length ff_positions in
  if Array.length targets <> n || Array.length assignment.Assign.ring_of_ff <> n then
    invalid_arg "Local_trees.build: size mismatch";
  (* bucket flip-flops by ring, then sweep each ring's members in target
     order, closing a group when the span would exceed the tolerance *)
  let by_ring = Hashtbl.create 32 in
  for i = 0 to n - 1 do
    let r = assignment.Assign.ring_of_ff.(i) in
    Hashtbl.replace by_ring r (i :: Option.value (Hashtbl.find_opt by_ring r) ~default:[])
  done;
  let groups = ref [] in
  Hashtbl.iter
    (fun ring_id members ->
      let sorted =
        List.sort (fun a b -> compare targets.(a) targets.(b)) members |> Array.of_list
      in
      let start = ref 0 in
      let flush stop =
        (* members [start, stop) form one group *)
        let mem = Array.sub sorted !start (stop - !start) in
        let ring = Ring_array.ring arr ring_id in
        let common_target =
          Rc_util.Stats.mean (Array.map (fun i -> targets.(i)) mem)
        in
        let g =
          if Array.length mem = 1 then
            let i = mem.(0) in
            {
              ring = ring_id;
              members = mem;
              tap = Tapping.solve tech ring ~ff:ff_positions.(i) ~target:targets.(i);
              tree_wirelength = 0.0;
              tree_delay = 0.0;
              stub_load = tech.Rc_tech.Tech.c_ff;
              common_target = targets.(i);
            }
          else begin
            let sinks =
              Array.to_list
                (Array.map (fun i -> (ff_positions.(i), tech.Rc_tech.Tech.c_ff)) mem)
            in
            let tree = Rc_ctree.Ctree.build tech ~sinks in
            let stats = Rc_ctree.Ctree.stats tree in
            let tree_cap =
              (stats.Rc_ctree.Ctree.total_wirelength *. tech.Rc_tech.Tech.c_wire)
              +. (float_of_int (Array.length mem) *. tech.Rc_tech.Tech.c_ff)
            in
            let tap =
              Tapping.solve ~load:tree_cap tech ring
                ~ff:(Rc_ctree.Ctree.root_position tree)
                ~target:(common_target -. stats.Rc_ctree.Ctree.root_delay)
            in
            {
              ring = ring_id;
              members = mem;
              tap;
              tree_wirelength = stats.Rc_ctree.Ctree.total_wirelength;
              tree_delay = stats.Rc_ctree.Ctree.root_delay;
              stub_load = tree_cap;
              common_target;
            }
          end
        in
        groups := g :: !groups;
        start := stop
      in
      let len = Array.length sorted in
      for k = 1 to len do
        if
          k = len
          || targets.(sorted.(k)) -. targets.(sorted.(!start)) > phase_tolerance
        then flush k
      done)
    by_ring;
  let total =
    List.fold_left
      (fun acc g -> acc +. g.tap.Tapping.wirelength +. g.tree_wirelength)
      0.0 !groups
  in
  let plain =
    Array.fold_left (fun acc (t : Tapping.tap) -> acc +. t.Tapping.wirelength) 0.0
      assignment.Assign.taps
  in
  {
    groups = !groups;
    total_wirelength = total;
    plain_wirelength = plain;
    n_taps = List.length !groups;
  }

let max_phase_error tech arr t ~targets =
  let period = Ring_array.period arr in
  let mod_diff a b =
    let d = Float.rem (Float.abs (a -. b)) period in
    Float.min d (period -. d)
  in
  List.fold_left
    (fun acc g ->
      let ring = Ring_array.ring arr g.ring in
      (* each member's arrival: on-ring delay at the tap + the stub delay
         (with the subtree's capacitance as load) + the zero-skew tree's
         root-to-sink delay *)
      let arrival =
        Ring.delay_at ring ~arc:g.tap.Tapping.arc ~conductor:g.tap.Tapping.conductor
        +. Tapping.stub_delay_with_load tech ~load:g.stub_load g.tap.Tapping.wirelength
        +. g.tree_delay
      in
      Array.fold_left
        (fun acc i -> Float.max acc (mod_diff arrival targets.(i)))
        acc g.members)
    0.0 t.groups

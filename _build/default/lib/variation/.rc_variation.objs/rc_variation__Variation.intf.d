lib/variation/variation.mli: Rc_ctree

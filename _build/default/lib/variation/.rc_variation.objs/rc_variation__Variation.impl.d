lib/variation/variation.ml: Array Buffer Float Printf Rc_ctree Rc_util

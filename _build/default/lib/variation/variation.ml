type model = {
  sigma_corr : float;
  sigma_wire : float;
  ring_averaging : float;
  trials : int;
  seed : int;
}

let default_model =
  { sigma_corr = 0.05; sigma_wire = 0.10; ring_averaging = 0.2; trials = 500; seed = 2024 }

type summary = {
  nominal_max_path : float;
  mean_spread : float;
  p95_spread : float;
  max_spread : float;
  relative_spread : float;
}

let summarize ~nominal_max_path spreads =
  let mean_spread = Rc_util.Stats.mean spreads in
  {
    nominal_max_path;
    mean_spread;
    p95_spread = Rc_util.Stats.percentile spreads 95.0;
    max_spread = (let _, hi = Rc_util.Stats.min_max spreads in hi);
    relative_spread =
      (if nominal_max_path > 0.0 then mean_spread /. nominal_max_path else 0.0);
  }

(* deviation spread of one trial: worst pairwise skew change = range of
   per-sink deviations *)
let spread_of_deviation deviations =
  let lo, hi = Rc_util.Stats.min_max deviations in
  hi -. lo

let tree_skew model tree =
  if model.trials <= 0 then invalid_arg "Variation.tree_skew: trials <= 0";
  let rng = Rc_util.Rng.create model.seed in
  let nominal = Rc_ctree.Ctree.sink_delays tree in
  let nominal_max_path = Array.fold_left Float.max 0.0 nominal in
  let spreads =
    Array.init model.trials (fun _ ->
        let corr = Rc_util.Rng.gaussian rng ~mean:0.0 ~sigma:model.sigma_corr in
        let perturbed =
          Rc_ctree.Ctree.sink_delays_perturbed tree ~edge_factor:(fun _wl ->
              let local = Rc_util.Rng.gaussian rng ~mean:0.0 ~sigma:model.sigma_wire in
              Float.max 0.1 (1.0 +. corr +. local))
        in
        spread_of_deviation (Array.map2 ( -. ) perturbed nominal))
  in
  summarize ~nominal_max_path spreads

type rotary_sink = { ring_delay : float; stub_delay : float }

let rotary_skew model sinks =
  if model.trials <= 0 then invalid_arg "Variation.rotary_skew: trials <= 0";
  if Array.length sinks = 0 then invalid_arg "Variation.rotary_skew: no sinks";
  let rng = Rc_util.Rng.create (model.seed + 1) in
  let nominal_max_path =
    Array.fold_left (fun acc s -> Float.max acc (s.ring_delay +. s.stub_delay)) 0.0 sinks
  in
  let spreads =
    Array.init model.trials (fun _ ->
        let corr = Rc_util.Rng.gaussian rng ~mean:0.0 ~sigma:model.sigma_corr in
        let deviations =
          Array.map
            (fun s ->
              (* the coupled ring array averages neighboring rings'
                 variations, attenuating the on-ring component *)
              let ring_eps =
                (corr +. Rc_util.Rng.gaussian rng ~mean:0.0 ~sigma:model.sigma_wire)
                *. model.ring_averaging
              in
              let stub_eps = corr +. Rc_util.Rng.gaussian rng ~mean:0.0 ~sigma:model.sigma_wire in
              (s.ring_delay *. ring_eps) +. (s.stub_delay *. stub_eps))
            sinks
        in
        spread_of_deviation deviations)
  in
  summarize ~nominal_max_path spreads

let compare_report ~tree ~rotary =
  let b = Buffer.create 512 in
  Buffer.add_string b "Skew variation under process variation (Monte-Carlo):\n";
  Buffer.add_string b
    (Printf.sprintf "  %-22s %14s %12s %12s %12s\n" "clocking" "nominal path" "mean spread"
       "p95 spread" "relative");
  let row name (s : summary) =
    Buffer.add_string b
      (Printf.sprintf "  %-22s %11.1f ps %9.2f ps %9.2f ps %11.1f%%\n" name s.nominal_max_path
         s.mean_spread s.p95_spread (100.0 *. s.relative_spread))
  in
  row "zero-skew tree" tree;
  row "rotary (taps)" rotary;
  if rotary.mean_spread > 0.0 then
    Buffer.add_string b
      (Printf.sprintf "  -> rotary reduces mean skew spread by %.1fx\n"
         (tree.mean_spread /. rotary.mean_spread));
  Buffer.contents b

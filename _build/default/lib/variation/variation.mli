(** Monte-Carlo skew-variation analysis — the paper's motivation
    quantified (Section I cites interconnect variation alone causing 25%
    clock-skew deviation on a conventional network, against 5.5 ps
    measured on a rotary test chip [13]).

    The model perturbs every wire's delay by a correlated (die-wide)
    plus an independent (per-segment) Gaussian factor. A conventional
    zero-skew tree accumulates the perturbations of millimeters of
    source-to-sink path; a rotary design exposes only the short tapping
    stub, with the ring array's phase averaging [13] shrinking the
    on-ring component. The comparison reports the distribution of the
    worst pairwise skew deviation per trial. *)

type model = {
  sigma_corr : float;  (** Die-wide correlated wire variation (σ, fraction). *)
  sigma_wire : float;  (** Independent per-segment wire variation (σ, fraction). *)
  ring_averaging : float;  (** Attenuation of on-ring delay variation from the coupled array's phase averaging (0-1; [13] measures a strong effect). *)
  trials : int;
  seed : int;
}

val default_model : model
(** σ_corr = 5 %, σ_wire = 10 %, ring averaging ×0.2, 500 trials. *)

type summary = {
  nominal_max_path : float;  (** Largest nominal delay the variation scales, ps. *)
  mean_spread : float;  (** Mean over trials of the worst skew deviation, ps. *)
  p95_spread : float;
  max_spread : float;
  relative_spread : float;  (** [mean_spread / nominal_max_path]; the paper's "25 %" style figure. *)
}

val tree_skew : model -> Rc_ctree.Ctree.t -> summary
(** Variation of a conventional zero-skew clock tree: every tree edge
    perturbed; spread = max-min sink-delay deviation per trial. *)

type rotary_sink = {
  ring_delay : float;  (** Nominal on-ring delay at the tap, ps. *)
  stub_delay : float;  (** Nominal stub delay, ps. *)
}

val rotary_skew : model -> rotary_sink array -> summary
(** Variation of a rotary design: the on-ring component is attenuated by
    [ring_averaging]; each stub is an independent wire segment. *)

val compare_report :
  tree:summary -> rotary:summary -> string
(** Render the two summaries side by side with the improvement factor. *)

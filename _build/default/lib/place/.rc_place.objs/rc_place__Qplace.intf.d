lib/place/qplace.mli: Rc_geom Rc_netlist

lib/place/detail.ml: Array Hashtbl List Netlist Option Point Rc_geom Rc_netlist Rc_util Rect Wirelength

lib/place/qplace.ml: Array Float Fun Hashtbl List Netlist Point Rc_geom Rc_netlist Rc_sparse Rc_util Rect Wirelength

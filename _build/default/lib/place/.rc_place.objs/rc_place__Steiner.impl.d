lib/place/steiner.ml: Array List Point Rc_geom Rc_netlist

lib/place/wirelength.ml: Array Netlist Rc_geom Rc_netlist

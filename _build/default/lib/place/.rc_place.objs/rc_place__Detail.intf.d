lib/place/detail.mli: Rc_geom Rc_netlist

lib/place/wirelength.mli: Rc_geom Rc_netlist

lib/place/steiner.mli: Rc_geom Rc_netlist
